// Golden determinism test: the noisy-MVM hot path is only allowed to change
// if fixed-seed predictions, logit bit patterns, and per-scheme ECU stat
// digests stay byte-identical. Any refactor that perturbs the RNG draw order
// (an extra draw, a reordered loop, a float reassociation) fails here loudly
// instead of silently shifting every Monte-Carlo result in the repo.
//
// Regenerate (only for an intentional, documented model change) with:
//
//	go test -run TestGoldenDeterminism -update-golden
package mnn

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/accel"
	"repro/internal/nn"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden determinism testdata")

const goldenPath = "testdata/golden_determinism.json"

// goldenImage is one fixed-seed inference outcome.
type goldenImage struct {
	// Seed is the session noise stream the image was evaluated under.
	Seed uint64 `json:"seed"`
	// Pred is the argmax class.
	Pred int `json:"pred"`
	// LogitsHash is the FNV-64a digest of the raw logit float64 bit
	// patterns — bit-for-bit output identity, not just argmax identity.
	LogitsHash string `json:"logits_hash"`
}

// goldenScheme is the digest of one protection scheme's evaluation.
type goldenScheme struct {
	Scheme string        `json:"scheme"`
	Images []goldenImage `json:"images"`
	// Stats is the cumulative ECU accounting across all images.
	Stats accel.Stats `json:"stats"`
}

type goldenFile struct {
	// Note documents what the file pins.
	Note    string         `json:"note"`
	Schemes []goldenScheme `json:"schemes"`
}

// goldenWorkload builds the deterministic trained model and test set the
// golden digests are pinned to (same shape as the benchmark workload, but
// independent of testing.B plumbing).
func goldenWorkload() (*nn.Network, []*nn.Tensor) {
	rng := rand.New(rand.NewPCG(3, 3))
	net := &nn.Network{Name: "golden", InShape: []int{16},
		Layers: []nn.Layer{nn.NewDense(16, 12, rng), &nn.ReLU{}, nn.NewDense(12, 4, rng)}}
	var train []nn.Example
	var test []*nn.Tensor
	for i := 0; i < 160; i++ {
		x := make([]float64, 16)
		label := i % 4
		for j := range x {
			x[j] = rng.Float64() * 0.3
		}
		x[label*4] += 0.8
		if i < 120 {
			train = append(train, nn.Example{Input: nn.FromSlice(x, 16), Label: label})
		} else {
			test = append(test, nn.FromSlice(x, 16))
		}
	}
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 8
	nn.Train(net, train, cfg)
	return net, test
}

// goldenConfig is the accelerator configuration the digests are pinned to:
// nonzero stuck-at and giant-prone populations plus spares and retries, so
// the fault-scan, retry, and verify code paths all consume draws.
func goldenConfig(s accel.Scheme) accel.Config {
	cfg := accel.DefaultConfig(s)
	cfg.Device.BitsPerCell = 2
	cfg.Device.FailureRate = 0.003
	cfg.Device.GiantProneProb = 0.003
	cfg.SpareRows = 2
	return cfg
}

func hashLogits(t *nn.Tensor) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range t.Data {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// computeGolden evaluates every scheme's digest with the current code.
func computeGolden(t *testing.T) goldenFile {
	t.Helper()
	net, test := goldenWorkload()
	out := goldenFile{
		Note: "fixed-seed predictions + ECU stat digests; regenerate only for intentional model changes (-update-golden)",
	}
	for _, sch := range []accel.Scheme{accel.SchemeNoECC(), accel.SchemeStatic128(), accel.SchemeABN(9)} {
		eng, err := accel.Map(net, goldenConfig(sch))
		if err != nil {
			t.Fatalf("mapping %s: %v", sch.Name, err)
		}
		sess := eng.NewSession(7)
		gs := goldenScheme{Scheme: sch.Name}
		for i, x := range test[:16] {
			seed := uint64(100 + i)
			sess.Reseed(seed)
			logits := sess.Forward(x)
			gs.Images = append(gs.Images, goldenImage{
				Seed: seed, Pred: logits.ArgMax(), LogitsHash: hashLogits(logits),
			})
		}
		gs.Stats = sess.DrainStats()
		out.Schemes = append(out.Schemes, gs)
	}
	return out
}

func TestGoldenDeterminism(t *testing.T) {
	got := computeGolden(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden testdata rewritten: %s", goldenPath)
		return
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden testdata (run with -update-golden to create): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("decoding %s: %v", goldenPath, err)
	}
	if len(got.Schemes) != len(want.Schemes) {
		t.Fatalf("scheme count %d, golden has %d", len(got.Schemes), len(want.Schemes))
	}
	for i, gs := range got.Schemes {
		ws := want.Schemes[i]
		if gs.Scheme != ws.Scheme {
			t.Fatalf("scheme %d is %s, golden has %s", i, gs.Scheme, ws.Scheme)
		}
		if gs.Stats != ws.Stats {
			t.Errorf("%s: ECU stats diverged from golden:\n got %+v\nwant %+v", gs.Scheme, gs.Stats, ws.Stats)
		}
		for j, im := range gs.Images {
			if !reflect.DeepEqual(im, ws.Images[j]) {
				t.Errorf("%s image %d diverged: got %+v, want %+v (RNG draw order changed?)",
					gs.Scheme, j, im, ws.Images[j])
			}
		}
	}
}
