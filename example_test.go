package mnn_test

import (
	"fmt"

	mnn "repro"
)

// The paper's Figure 4 walk-through: encode with A=19, corrupt, correct.
func ExampleNewStaticTable() {
	table, _ := mnn.NewStaticTable(19, 9)
	code := &mnn.Code{A: 19, B: 1, Table: table}
	enc, _ := code.EncodeU64(26)
	bad, _ := enc.Add(mnn.WordFromU64(2))
	fixed, status := code.Correct(bad)
	dec, _ := code.Decode(fixed)
	fmt.Println(enc, bad, status, dec)
	// Output: 494 496 corrected 26
}

// AN codes conserve addition; that is the whole trick.
func ExampleCode_Encode() {
	table, _ := mnn.NewStaticTable(19, 9)
	code := &mnn.Code{A: 19, B: 1, Table: table}
	x, _ := code.EncodeU64(11)
	y, _ := code.EncodeU64(15)
	sum, _ := x.Add(y)
	xy, _ := code.EncodeU64(26)
	fmt.Println(sum == xy)
	// Output: true
}

// The minimal single-error-correcting A values the paper cites.
func ExampleMinimalSingleErrorA() {
	fmt.Println(mnn.MinimalSingleErrorA(9, 1), mnn.MinimalSingleErrorA(39, 1))
	// Output: 19 79
}

// SECDED does not conserve addition (paper Section III, Figure 5).
func ExampleHamming84Encode() {
	sum := uint64(mnn.Hamming84Encode(3)) + uint64(mnn.Hamming84Encode(4))
	direct := uint64(mnn.Hamming84Encode(7))
	fmt.Println(sum == direct)
	// Output: false
}

// The endurance analysis of Section II-C6.
func ExampleSystemLifetimeYears() {
	fmt.Printf("%.1f\n", mnn.SystemLifetimeYears(1e6, 1827))
	// Output: 1.5
}
