package noise

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/stats"
)

// stepFloor discards levels whose RTN excess is too small to ever matter
// (level 0 sits at 5 MΩ and contributes microsteps).
const stepFloor = 1e-6

// RowSampler draws the quantization error of one physical-row read. It
// aggregates the per-level cell populations of the row into a single
// binomial RTN term plus a Gaussian term for programming, thermal, and shot
// noise — the same model the analytic prediction of Section V-B5 uses, so
// the errors the simulator injects match the probabilities the data-aware
// code construction optimizes for.
type RowSampler struct {
	params DeviceParams
	// stepExcess[k] is the current excess, in ADC steps, of one level-k
	// cell while in its RTN error state.
	stepExcess []float64
	// compSteps[k] is the programming-time RTN offset applied to one
	// level-k cell, in steps (clamped: a cell cannot be programmed below
	// the minimum conductance).
	compSteps []float64
	// gSteps[k] is the level conductance in units of DeltaG.
	gSteps []float64
	// progVar[k], thermVar[k] are per-cell noise variances in steps^2.
	progVar  []float64
	thermVar []float64
	// shotVarPerStep converts row current (in steps) to shot variance.
	shotVarPerStep float64
	// invSqrtK scales the zero-mean RTN fluctuation for the ADC's
	// temporal averaging window (1/sqrt(RTNAveraging)).
	invSqrtK float64
	// giantMag[k] is the step magnitude of a giant RTN event on a level-k
	// cell; giant events are not attenuated by averaging.
	giantMag []float64
	// binom caches the CDF tables of the Binomial(n, PRTN) draw so the hot
	// path does not rebuild the pmf recurrence (a math.Pow per draw) for
	// every (row, input-bit). Draw-identical to stats.SampleBinomial.
	binom *stats.Binomial
	// terms mirrors the per-level slices above in array-of-structs layout so
	// the per-(row, bit-plane) aggregation touches one cache line per level
	// instead of six slices. Values are bit-copies of the originals.
	terms []levelTerms
}

// levelTerms is the per-level noise model in hot-path layout.
type levelTerms struct {
	stepExcess, compSteps, progVar, thermVar, gSteps float64
	// rtnActive caches stepExcess > stepFloor.
	rtnActive bool
}

// NewRowSampler precomputes the per-level terms for a device configuration.
func NewRowSampler(p DeviceParams) (*RowSampler, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	levels := p.LevelConductances()
	dg := p.DeltaG()
	di := p.VHi * dg // ADC current step
	s := &RowSampler{
		params:     p,
		stepExcess: make([]float64, len(levels)),
		compSteps:  make([]float64, len(levels)),
		gSteps:     make([]float64, len(levels)),
		progVar:    make([]float64, len(levels)),
		thermVar:   make([]float64, len(levels)),
		giantMag:   make([]float64, len(levels)),
	}
	for k, g := range levels {
		excess := p.RTNCurrentExcess(g) / di
		s.stepExcess[k] = excess
		// Full Hu-style mean compensation (Section IV); a cell cannot be
		// programmed below GMin, bounding the offset.
		comp := p.PRTN * excess
		if maxComp := (g - p.GMin()) / dg; comp > maxComp {
			comp = maxComp
		}
		s.compSteps[k] = comp
		s.gSteps[k] = g / dg
		// Programming error: uniform within +/- ProgErrFrac of the target
		// conductance, capped at the program-verify LSB tolerance;
		// variance tol^2/3.
		pe := p.ProgErrFrac * g / dg
		if p.ProgVerifyLSB > 0 && pe > p.ProgVerifyLSB {
			pe = p.ProgVerifyLSB
		}
		s.progVar[k] = pe * pe / 3
		th := p.ThermalNoiseSigma(1/g) / di
		s.thermVar[k] = th * th
		// A giant event drops R by GiantDeltaR: current rises by
		// V*g*d/(1-d) (resistance-domain drop).
		s.giantMag[k] = g / dg * p.GiantDeltaR / (1 - p.GiantDeltaR)
	}
	// Shot variance in steps^2 is 2qfI/di^2 with I = curSteps*di.
	s.shotVarPerStep = 2 * electronCharge * p.SampleFreq / di
	s.invSqrtK = 1 / math.Sqrt(float64(p.RTNAveraging))
	s.binom = stats.NewBinomial(p.PRTN)
	s.terms = make([]levelTerms, len(levels))
	for k := range levels {
		s.terms[k] = levelTerms{
			stepExcess: s.stepExcess[k],
			compSteps:  s.compSteps[k],
			progVar:    s.progVar[k],
			thermVar:   s.thermVar[k],
			gSteps:     s.gSteps[k],
			rtnActive:  s.stepExcess[k] > stepFloor,
		}
	}
	return s, nil
}

// Params returns the device configuration the sampler was built for.
func (s *RowSampler) Params() DeviceParams { return s.params }

// aggregate reduces the per-level active-cell counts to the effective
// single-binomial model: population n, mean RTN step sbar, the residual
// mean shift left after the programming-time compensation, the static
// (programming) and dynamic (thermal+shot) Gaussian variances, and the
// row current in steps.
func (s *RowSampler) aggregate(counts []int) (n int, sbar, residMean, statVar, dynVar float64) {
	var stepSum, meanExcess, comp, curSteps float64
	for k, c := range counts {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if s.stepExcess[k] > stepFloor {
			n += c
			stepSum += fc * s.stepExcess[k]
			meanExcess += fc * s.params.PRTN * s.stepExcess[k]
		}
		comp += fc * s.compSteps[k]
		statVar += fc * s.progVar[k]
		dynVar += fc * s.thermVar[k]
		curSteps += fc * s.gSteps[k]
	}
	dynVar += s.shotVarPerStep * curSteps
	if n > 0 {
		sbar = stepSum / float64(n)
	}
	return n, sbar, meanExcess - comp, statVar, dynVar
}

// aggregateLevels is aggregate restricted to the given ascending level list
// (a crossbar.Array present-level list). It visits exactly the levels
// aggregate would have found nonzero — counts of unlisted levels must be
// zero — in the same ascending order, so the float accumulation is
// identical.
func (s *RowSampler) aggregateLevels(levels []uint8, counts []int) (n int, sbar, residMean, statVar, dynVar float64) {
	var stepSum, meanExcess, comp, curSteps float64
	for _, lv := range levels {
		k := int(lv)
		c := counts[k]
		if c == 0 {
			continue
		}
		fc := float64(c)
		if s.stepExcess[k] > stepFloor {
			n += c
			stepSum += fc * s.stepExcess[k]
			meanExcess += fc * s.params.PRTN * s.stepExcess[k]
		}
		comp += fc * s.compSteps[k]
		statVar += fc * s.progVar[k]
		dynVar += fc * s.thermVar[k]
		curSteps += fc * s.gSteps[k]
	}
	dynVar += s.shotVarPerStep * curSteps
	if n > 0 {
		sbar = stepSum / float64(n)
	}
	return n, sbar, meanExcess - comp, statVar, dynVar
}

// RowAgg is the deterministic part of one row read's noise model: everything
// SampleDeviation derives from the active-cell counts before it touches the
// RNG. Precomputing it lets the accelerator reuse one aggregate across ECU
// retry re-reads instead of re-reducing the counts per attempt.
type RowAgg struct {
	// N is the RTN-active cell population.
	N int
	// Sbar is the mean RTN excess per active cell, in steps.
	Sbar float64
	// Resid is the residual mean shift after programming-time compensation.
	Resid float64
	// Sigma is the combined Gaussian deviation sqrt(statVar + dynVar/K),
	// zero when the variance is non-positive.
	Sigma float64
}

// AggregateRow reduces active-cell counts to the reusable aggregate.
func (s *RowSampler) AggregateRow(counts []int) RowAgg {
	return s.finishAgg(s.aggregate(counts))
}

// AggregateRowLevels is AggregateRow over a present-level list: counts of
// unlisted levels must be zero.
func (s *RowSampler) AggregateRowLevels(levels []uint8, counts []int) RowAgg {
	return s.finishAgg(s.aggregateLevels(levels, counts))
}

// AggregateRowLevelsIdeal is AggregateRowLevels fused with the ideal ADC
// output reduction sum(level*count): the accelerator's precompute pass needs
// both per (row, bit-plane), and one walk of the level list serves the two.
// The extra integer accumulation cannot perturb the float sequence, so the
// aggregate stays bit-identical to AggregateRowLevels.
func (s *RowSampler) AggregateRowLevelsIdeal(levels []uint8, counts []int) (RowAgg, int) {
	var stepSum, meanExcess, comp, curSteps float64
	var n, ideal int
	var sbar, statVar, dynVar float64
	p := s.params.PRTN
	for _, lv := range levels {
		k := int(lv)
		c := counts[k]
		if c == 0 {
			continue
		}
		ideal += k * c
		fc := float64(c)
		t := &s.terms[k]
		if t.rtnActive {
			n += c
			stepSum += fc * t.stepExcess
			meanExcess += fc * p * t.stepExcess
		}
		comp += fc * t.compSteps
		statVar += fc * t.progVar
		dynVar += fc * t.thermVar
		curSteps += fc * t.gSteps
	}
	dynVar += s.shotVarPerStep * curSteps
	if n > 0 {
		sbar = stepSum / float64(n)
	}
	return s.finishAgg(n, sbar, meanExcess-comp, statVar, dynVar), ideal
}

// AggAccum is one (image, bit-plane)'s in-flight state in the batched
// level-list reduction: the running sums AggregateRowLevelsIdeal keeps in
// locals, exposed so a single walk of a row's level list can advance B
// independent reductions side by side (level-major, so the per-level noise
// terms stay in registers and the count loads are unit-stride). Finish with
// FinishAccum.
type AggAccum struct {
	stepSum, meanExcess, comp, statVar, dynVar, curSteps float64
	n, ideal                                             int
}

// AccumulateRowLevelsBatch advances len(accs) independent aggregations in
// one pass over a row's present-level list. counts is the flat level-major
// buffer crossbar.ActiveCountsBatch fills: counts[k*len(accs)+i] is
// reduction i's active-cell count at level k (only listed levels are read,
// matching what the crossbar kernel writes). The accumulators are reset
// first, so one call per row is the whole reduction.
//
// Each reduction is bit-identical to AggregateRowLevelsIdeal on its own
// counts: like the serial kernel it skips zero counts (which is also a pure
// identity — every per-level term is non-negative, so each accumulator
// starts at +0.0 and never turns negative, and adding the +0.0 products a
// zero count would produce leaves every float bit unchanged), and the
// per-level expression shapes and ascending visit order match the serial
// kernel exactly.
func (s *RowSampler) AccumulateRowLevelsBatch(levels []uint8, counts []int, accs []AggAccum) {
	clear(accs)
	stride := len(accs)
	p := s.params.PRTN
	for _, lv := range levels {
		k := int(lv)
		t := &s.terms[k]
		cs := counts[k*stride : k*stride+stride]
		if t.rtnActive {
			for i, c := range cs {
				if c == 0 {
					continue
				}
				a := &accs[i]
				fc := float64(c)
				a.n += c
				a.ideal += k * c
				a.stepSum += fc * t.stepExcess
				a.meanExcess += fc * p * t.stepExcess
				a.comp += fc * t.compSteps
				a.statVar += fc * t.progVar
				a.dynVar += fc * t.thermVar
				a.curSteps += fc * t.gSteps
			}
		} else {
			for i, c := range cs {
				if c == 0 {
					continue
				}
				a := &accs[i]
				fc := float64(c)
				a.ideal += k * c
				a.comp += fc * t.compSteps
				a.statVar += fc * t.progVar
				a.dynVar += fc * t.thermVar
				a.curSteps += fc * t.gSteps
			}
		}
	}
}

// FinishAccum closes one batched reduction, returning exactly what
// AggregateRowLevelsIdeal would have for the same counts.
func (s *RowSampler) FinishAccum(a *AggAccum) (RowAgg, int) {
	dynVar := a.dynVar + s.shotVarPerStep*a.curSteps
	var sbar float64
	if a.n > 0 {
		sbar = a.stepSum / float64(a.n)
	}
	return s.finishAgg(a.n, sbar, a.meanExcess-a.comp, a.statVar, dynVar), a.ideal
}

// AggregateActivity reduces a row's full programmed-level histogram under a
// mean column-activity alpha to two things: the expected-activity aggregate
// (each level contributes alpha*count cells) and the standard deviation, in
// steps, of the residual mean shift across random activity patterns. Each
// cell is active independently with probability alpha and contributes
// r_k = PRTN*stepExcess_k - compSteps_k to the row's mean shift when it is,
// so across patterns the shift fluctuates with variance
// alpha*(1-alpha)*sum_k hist_k*r_k^2 around the mean AggregateRow sees. The
// pattern — and hence the shift — is frozen for the duration of one read's
// retry loop (the input does not change between attempts), which is what
// makes this spread matter: rows whose mean sits inside the rounding window
// can still land persistently outside it on unlucky activity draws.
func (s *RowSampler) AggregateActivity(hist []int, alpha float64) (RowAgg, float64) {
	var stepSum, meanExcess, comp, curSteps, statVar, dynVar, nF, residVar float64
	p := s.params.PRTN
	av := alpha * (1 - alpha)
	for k, c := range hist {
		if c == 0 {
			continue
		}
		fc := alpha * float64(c)
		t := &s.terms[k]
		rk := -t.compSteps
		if t.rtnActive {
			nF += fc
			stepSum += fc * t.stepExcess
			meanExcess += fc * p * t.stepExcess
			rk += p * t.stepExcess
		}
		comp += fc * t.compSteps
		statVar += fc * t.progVar
		dynVar += fc * t.thermVar
		curSteps += fc * t.gSteps
		residVar += av * float64(c) * rk * rk
	}
	dynVar += s.shotVarPerStep * curSteps
	n := int(math.Round(nF))
	var sbar float64
	if n > 0 {
		sbar = stepSum / nF
	}
	return s.finishAgg(n, sbar, meanExcess-comp, statVar, dynVar), math.Sqrt(residVar)
}

func (s *RowSampler) finishAgg(n int, sbar, residMean, statVar, dynVar float64) RowAgg {
	agg := RowAgg{N: n, Sbar: sbar, Resid: residMean}
	if v := statVar + dynVar*s.invSqrtK*s.invSqrtK; v > 0 {
		agg.Sigma = math.Sqrt(v)
	}
	return agg
}

// SampleAgg draws the continuous row-read deviation from a precomputed
// aggregate. SampleAgg(rng, AggregateRow(counts)) is draw-for-draw and
// bit-for-bit identical to SampleDeviation(rng, counts).
func (s *RowSampler) SampleAgg(rng *rand.Rand, agg RowAgg) float64 {
	dev := agg.Resid
	p := s.params.PRTN
	if agg.N > 0 && agg.Sbar > 0 && p > 0 {
		m := s.binom.Sample(rng, agg.N)
		dev += (float64(m) - float64(agg.N)*p) * agg.Sbar * s.invSqrtK
	}
	if agg.Sigma > 0 {
		dev += rng.NormFloat64() * agg.Sigma
	}
	return dev
}

// BinomSnapshot captures the RTN binomial sampler's table cache for a run
// of SampleAggFast calls (one snapshot per MVM; see stats.BinomSnapshot).
func (s *RowSampler) BinomSnapshot() stats.BinomSnapshot { return s.binom.Snapshot() }

// SampleAggFast is SampleAgg on the devirtualized hot-path RNG, bit-for-bit
// and draw-for-draw identical to SampleAgg over the same PCG state. sn must
// come from this sampler's BinomSnapshot.
func (s *RowSampler) SampleAggFast(rng *stats.FastRand, sn *stats.BinomSnapshot, agg *RowAgg) float64 {
	dev := agg.Resid
	p := s.params.PRTN
	if agg.N > 0 && agg.Sbar > 0 && p > 0 {
		m := sn.Sample(rng, agg.N)
		dev += (float64(m) - float64(agg.N)*p) * agg.Sbar * s.invSqrtK
	}
	if agg.Sigma > 0 {
		dev += rng.NormFloat64() * agg.Sigma
	}
	return dev
}

// SampleError draws one signed quantization error (in ADC steps) for a row
// read with the given active-cell counts per level. counts must have
// NumLevels entries. The zero-mean RTN fluctuation and the per-conversion
// thermal/shot noise are attenuated by the ADC's temporal averaging; the
// residual mean shift and the static programming error are not.
func (s *RowSampler) SampleError(rng *rand.Rand, counts []int) int {
	return int(math.Round(s.SampleDeviation(rng, counts)))
}

// SampleDeviation draws the continuous current deviation (in steps) of one
// row read, before quantization. The accelerator adds the discrete
// contributions of giant-prone and stuck cells on top of this core before
// rounding.
func (s *RowSampler) SampleDeviation(rng *rand.Rand, counts []int) float64 {
	return s.SampleAgg(rng, s.AggregateRow(counts))
}

// GiantMagnitude returns the current excess, in ADC steps, of a giant-prone
// cell programmed to the given level while it occupies its error state.
func (s *RowSampler) GiantMagnitude(level int) float64 {
	return s.giantMag[level]
}

// PulseFailProbs returns, per cell level, the probability that a single
// programming pulse lands outside the program-verify tolerance and must be
// re-issued by the closed-loop write path. An open-loop pulse lands
// uniformly within +/- ProgErrFrac of the target conductance; the verify
// comparator accepts only landings within ProgVerifyLSB of one conductance
// step, so the miss probability is 1 - tol/pe once the landing zone
// outgrows the tolerance (high levels at fine step spacings). With
// ProgVerifyLSB disabled the result is all zeros — every pulse verifies.
func (s *RowSampler) PulseFailProbs() []float64 {
	p := s.params
	out := make([]float64, p.NumLevels())
	if p.ProgVerifyLSB <= 0 {
		return out
	}
	dg := p.DeltaG()
	for k, g := range p.LevelConductances() {
		pe := p.ProgErrFrac * g / dg
		if pe > p.ProgVerifyLSB {
			out[k] = 1 - p.ProgVerifyLSB/pe
		}
	}
	return out
}

// StepProbs holds the per-read probabilities of small quantization errors:
// P(+1), P(-1), P(>=+2), P(<=-2), indexed to match core.RowErr.StepProb.
type StepProbs [4]float64

// Total returns the probability of any error.
func (sp StepProbs) Total() float64 { return sp[0] + sp[1] + sp[2] + sp[3] }

// PredictStepProbs computes the analytic error probabilities for a row with
// the given active-cell counts, following Section V-B5: the error-free
// current offset (residual after compensation) is compared against the
// quantization boundaries and the crossing probability evaluated with a
// binomial CDF over the RTN cell population.
func (s *RowSampler) PredictStepProbs(counts []int) StepProbs {
	n, sbar, residMean, _, _ := s.aggregate(counts)
	var sp StepProbs
	if n == 0 {
		return sp
	}
	p := s.params.PRTN
	if p <= 0 || sbar <= 0 {
		return sp
	}
	np := float64(n) * p
	scale := sbar * s.invSqrtK
	// dev(m) = (m - np)*sbar/sqrt(K) + residMean.
	// P(dev > t): smallest m crossing t.
	above := func(t float64) float64 {
		m := int(math.Floor(np+(t-residMean)/scale)) + 1
		return stats.BinomSF(m-1, n, p)
	}
	// P(dev < -t): largest m below.
	below := func(t float64) float64 {
		m := int(math.Ceil(np-(t+residMean)/scale)) - 1
		if m < 0 {
			return 0
		}
		return stats.BinomCDF(m, n, p)
	}
	hi1, hi2 := above(0.5), above(1.5)
	lo1, lo2 := below(0.5), below(1.5)
	sp[0] += hi1 - hi2
	sp[1] += lo1 - lo2
	sp[2] += hi2
	sp[3] += lo2
	return sp
}

// StepDistribution computes the full quantized error distribution of one
// row read from its precomputed aggregate: P(rounded deviation = s) for
// s in -maxStep..maxStep, returned as a slice of length 2*maxStep+1 indexed
// by s+maxStep, with the tail mass beyond +/-maxStep folded into the end
// buckets. Unlike PredictStepProbs — a syndrome-ranking heuristic that keeps
// only the binomial RTN crossing — this includes the Gaussian
// programming/thermal core, which dominates at fine cell precisions, and
// resolves magnitudes beyond +/-2, which decide whether an error's syndrome
// is correctable at all. The exact binomial mixture is evaluated term by
// term (each occupancy m shifts the Gaussian mean), so the result matches
// what SampleAgg draws, in distribution, up to rounding.
func (s *RowSampler) StepDistribution(agg RowAgg, maxStep int, out []float64) []float64 {
	width := 2*maxStep + 1
	if cap(out) < width {
		out = make([]float64, width)
	}
	out = out[:width]
	for i := range out {
		out[i] = 0
	}
	p := s.params.PRTN
	scale := agg.Sbar * s.invSqrtK
	// fold adds P(deviation in [s-0.5, s+0.5)) for a Gaussian centered at
	// mu with deviation sigma, weighted by w, clamping s into the range.
	fold := func(mu, w, sigma float64) {
		if w <= 0 {
			return
		}
		if sigma <= 0 {
			st := int(math.Round(mu))
			if st > maxStep {
				st = maxStep
			}
			if st < -maxStep {
				st = -maxStep
			}
			out[st+maxStep] += w
			return
		}
		inv := 1 / (sigma * math.Sqrt2)
		lo := 0.0 // CDF at the lower edge of the current bucket
		for st := -maxStep; st <= maxStep; st++ {
			var hi float64
			if st == maxStep {
				hi = 1
			} else {
				hi = 0.5 * (1 + math.Erf((float64(st)+0.5-mu)*inv))
			}
			out[st+maxStep] += w * (hi - lo)
			lo = hi
		}
	}
	if agg.N == 0 || p <= 0 || scale == 0 {
		fold(agg.Resid, 1, agg.Sigma)
		return out
	}
	np := float64(agg.N) * p
	if np*(1-p) > 9 {
		// CLT fast path: a well-populated binomial is indistinguishable from
		// the Gaussian it converges to at the +/-0.5 bucket resolution, so
		// absorb its variance into one fold instead of enumerating N terms.
		fold(agg.Resid, 1, math.Sqrt(agg.Sigma*agg.Sigma+np*(1-p)*scale*scale))
		return out
	}
	for m := 0; m <= agg.N; m++ {
		w := stats.BinomPMF(m, agg.N, p)
		if w < 1e-14 {
			// The PMF is unimodal: skip the left tail, stop after the right.
			if float64(m) > np {
				break
			}
			continue
		}
		fold(agg.Resid+(float64(m)-np)*scale, w, agg.Sigma)
	}
	// Renormalize the PMF truncation so the buckets sum to one.
	var total float64
	for _, v := range out {
		total += v
	}
	if total > 0 && math.Abs(total-1) > 1e-12 {
		for i := range out {
			out[i] /= total
		}
	}
	return out
}

// WorstCaseRowCounts returns the all-ones-input cell population of a row
// given its programmed level histogram — the worst-case susceptibility the
// paper uses for syndrome allocation (every cell active).
func WorstCaseRowCounts(levelHistogram []int) []int {
	out := make([]int, len(levelHistogram))
	copy(out, levelHistogram)
	return out
}

// discreteJitter is the assumed residual Gaussian jitter (in steps) used to
// blur a discrete error magnitude across the quantization boundaries when
// ranking syndromes: a 1.3-step event sometimes quantizes to 2, and a
// 0.4-step event sometimes crosses into 1.
const discreteJitter = 0.15

// AddDiscrete folds one independent discrete error source into the step
// probabilities: an event of signed step magnitude mag occurring with
// probability p, blurred by the residual read jitter (first-order
// approximation, adequate for syndrome ranking).
func (sp *StepProbs) AddDiscrete(mag float64, p float64) {
	if p <= 0 {
		return
	}
	a := math.Abs(mag)
	if a < 0.2 {
		return
	}
	gt := func(t float64) float64 { // P(a + jitter > t)
		return 0.5 * (1 + math.Erf((a-t)/(discreteJitter*math.Sqrt2)))
	}
	p1 := gt(0.5) - gt(1.5) // quantizes to +/-1
	p2 := gt(1.5)           // quantizes to magnitude >= 2
	if mag >= 0 {
		sp[0] += p * p1
		sp[2] += p * p2
	} else {
		sp[1] += p * p1
		sp[3] += p * p2
	}
}

// GiantCell is one member of the giant-RTN-prone population: a fixed,
// characterizable defect of the fabricated array.
type GiantCell struct {
	Row, Col int
	// Neg is true for the minority of cells whose error state decreases
	// the current.
	Neg bool
}

// SampleCells draws the indices of cells hit by an independent
// per-cell event of probability p over a population of n cells, in
// ascending order, using geometric skipping (jump straight between hits
// instead of flipping a coin per cell). It is the shared sampler behind
// stuck-at, giant-RTN, and lifetime fault injection; identical (rng, n, p)
// inputs reproduce identical hit sets.
func SampleCells(rng *rand.Rand, n int, p float64) []int {
	if p <= 0 || n <= 0 {
		return nil
	}
	if p >= 1 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	var out []int
	idx := -1
	lnq := math.Log1p(-p)
	for {
		u := rng.Float64()
		skip := int(math.Floor(math.Log(1-u) / lnq))
		idx += skip + 1
		if idx >= n || idx < 0 {
			return out
		}
		out = append(out, idx)
	}
}

// InjectGiantProne draws the giant-RTN-prone population for a rows x cols
// array, analogous to InjectStuck: each cell is prone independently with
// p.GiantProneProb, with sign split per GiantHighFrac. The skip and sign
// draws stay interleaved exactly as released — recorded experiment seeds
// must keep reproducing — so this does not share SampleCells.
func InjectGiantProne(rng *rand.Rand, rows, cols int, p DeviceParams) []GiantCell {
	if p.GiantProneProb <= 0 {
		return nil
	}
	var out []GiantCell
	total := rows * cols
	idx := -1
	lnq := math.Log1p(-p.GiantProneProb)
	for {
		u := rng.Float64()
		skip := int(math.Floor(math.Log(1-u) / lnq))
		idx += skip + 1
		if idx >= total {
			return out
		}
		out = append(out, GiantCell{
			Row: idx / cols,
			Col: idx % cols,
			Neg: rng.Float64() >= p.GiantHighFrac,
		})
	}
}

// StuckCell records a hard fault: the cell at (Row, Col) reads as Level
// regardless of what is programmed (yield or endurance failure,
// Section II-C5/6).
type StuckCell struct {
	Row, Col int
	Level    uint8
}

// InjectStuck draws the stuck-at fault population for a rows x cols array:
// each cell fails independently with p.FailureRate and sticks at a uniform
// random level.
func InjectStuck(rng *rand.Rand, rows, cols int, p DeviceParams) []StuckCell {
	if p.FailureRate <= 0 {
		return nil
	}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("noise: invalid params: %v", err))
	}
	var out []StuckCell
	k := p.NumLevels()
	// Geometric skipping: jump straight between failures instead of
	// flipping a coin per cell.
	total := rows * cols
	idx := -1
	lnq := math.Log1p(-p.FailureRate)
	for {
		u := rng.Float64()
		skip := int(math.Floor(math.Log(1-u) / lnq))
		idx += skip + 1
		if idx >= total {
			return out
		}
		out = append(out, StuckCell{
			Row:   idx / cols,
			Col:   idx % cols,
			Level: uint8(rng.IntN(k)),
		})
	}
}
