package noise

import (
	"math"
	"testing"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultDeviceParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	mod := func(f func(*DeviceParams)) DeviceParams {
		p := DefaultDeviceParams()
		f(&p)
		return p
	}
	bad := []DeviceParams{
		mod(func(p *DeviceParams) { p.RLo = 0 }),
		mod(func(p *DeviceParams) { p.RHi = p.RLo }),
		mod(func(p *DeviceParams) { p.VHi = 0 }),
		mod(func(p *DeviceParams) { p.BitsPerCell = 0 }),
		mod(func(p *DeviceParams) { p.BitsPerCell = 9 }),
		mod(func(p *DeviceParams) { p.DeltaRLoFrac = 0 }),
		mod(func(p *DeviceParams) { p.DeltaRLoFrac = 0.6 }),
		mod(func(p *DeviceParams) { p.PRTN = 1.5 }),
		mod(func(p *DeviceParams) { p.CompensationFactor = -0.1 }),
		mod(func(p *DeviceParams) { p.FailureRate = 0.9 }),
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestLevelConductances(t *testing.T) {
	p := DefaultDeviceParams()
	p.BitsPerCell = 2
	ls := p.LevelConductances()
	if len(ls) != 4 {
		t.Fatalf("levels = %d", len(ls))
	}
	if math.Abs(ls[0]-1/p.RHi) > 1e-15 {
		t.Errorf("level 0 = %g, want GMin", ls[0])
	}
	if math.Abs(ls[3]-1/p.RLo) > 1e-15 {
		t.Errorf("top level = %g, want GMax", ls[3])
	}
	for i := 1; i < len(ls); i++ {
		if d := ls[i] - ls[i-1]; math.Abs(d-p.DeltaG()) > 1e-15 {
			t.Errorf("nonuniform step at %d: %g", i, d)
		}
	}
}

func TestNumLevels(t *testing.T) {
	p := DefaultDeviceParams()
	for bits, want := range map[int]int{1: 2, 2: 4, 3: 8, 4: 16, 5: 32} {
		p.BitsPerCell = bits
		if got := p.NumLevels(); got != want {
			t.Errorf("bits=%d: levels=%d, want %d", bits, got, want)
		}
	}
}

// TestIelminiAnchors checks the model reproduces the paper's derived RTN
// amplitudes: 2.8% at RLo = 2 kΩ and ~50% at RHi = 5 MΩ (Section VII-B).
func TestIelminiAnchors(t *testing.T) {
	p := DefaultDeviceParams()
	if got := p.DeltaROverR(p.RLo); math.Abs(got-0.028) > 1e-9 {
		t.Errorf("DeltaR/R(RLo) = %g, want 0.028", got)
	}
	if got := p.DeltaROverR(p.RHi); got < 0.49 || got > 0.50 {
		t.Errorf("DeltaR/R(RHi) = %g, want ~0.50", got)
	}
}

// TestIelminiShape checks the qualitative Ielmini behaviour: amplitude
// grows monotonically with resistance and saturates.
func TestIelminiShape(t *testing.T) {
	p := DefaultDeviceParams()
	prev := 0.0
	for _, r := range []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8} {
		d := p.DeltaROverR(r)
		if d <= prev {
			t.Fatalf("DeltaR/R not increasing at R=%g", r)
		}
		if d >= p.DeltaRSat {
			t.Fatalf("DeltaR/R exceeded saturation at R=%g", r)
		}
		prev = d
	}
	if p.DeltaROverR(0) != 0 || p.DeltaROverR(-5) != 0 {
		t.Error("nonpositive resistance must give zero deviation")
	}
}

// TestTrapRadiusPhysical checks the calibrated trap radius is consistent
// with the filament geometry: sub-filament at RLo, nanometer scale.
func TestTrapRadiusPhysical(t *testing.T) {
	p := DefaultDeviceParams()
	rt := p.TrapRadius()
	rf := p.FilamentRadius(p.RLo)
	if rt <= 0 || rt >= rf {
		t.Fatalf("trap radius %g must be positive and below the RLo filament radius %g", rt, rf)
	}
	if rt > 100e-9 {
		t.Fatalf("trap radius %g not nanoscale", rt)
	}
	if !math.IsInf(p.FilamentRadius(0), 1) {
		t.Error("zero resistance must give infinite filament radius")
	}
}

func TestRTNCurrentExcessScaling(t *testing.T) {
	p := DefaultDeviceParams()
	// The top level (RLo) has a small relative deviation but the largest
	// absolute excess; level 0 (RHi) has a 50% deviation of almost nothing.
	hi := p.RTNCurrentExcess(p.GMax())
	lo := p.RTNCurrentExcess(p.GMin())
	if hi <= lo {
		t.Fatalf("absolute excess must grow with conductance: %g vs %g", hi, lo)
	}
	if p.RTNCurrentExcess(0) != 0 {
		t.Error("zero conductance must give zero excess")
	}
}

func TestPRTNFromDwellTimes(t *testing.T) {
	// tauOFF (normal) several times tauON (error): occupancy well below 1/2.
	got := PRTNFromDwellTimes(1, 3)
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("PRTN = %g, want 0.25", got)
	}
	if PRTNFromDwellTimes(0, 3) != 0 || PRTNFromDwellTimes(1, 0) != 0 {
		t.Error("degenerate dwell times must give zero")
	}
}

func TestNoiseSigmas(t *testing.T) {
	p := DefaultDeviceParams()
	// Thermal noise grows with conductance (falls with R).
	if p.ThermalNoiseSigma(2e3) <= p.ThermalNoiseSigma(5e6) {
		t.Error("thermal noise must be larger for smaller R")
	}
	// Shot noise grows with current.
	if p.ShotNoiseSigma(1e-3) <= p.ShotNoiseSigma(1e-6) {
		t.Error("shot noise must grow with current")
	}
	if p.ShotNoiseSigma(0) != 0 {
		t.Error("zero current must give zero shot noise")
	}
	// Both are far below one ADC step for a full row: RTN dominates
	// (Section IV observes this).
	di := p.VHi * p.DeltaG()
	rowShot := p.ShotNoiseSigma(128 * p.VHi * p.GMax())
	if rowShot > di/4 {
		t.Errorf("shot noise %g should be well under the ADC step %g", rowShot, di)
	}
	rowThermal := math.Sqrt(128) * p.ThermalNoiseSigma(p.RLo)
	if rowThermal > di/20 {
		t.Errorf("thermal noise %g should be negligible vs step %g", rowThermal, di)
	}
}
