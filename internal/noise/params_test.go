package noise

import (
	"math"
	"testing"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultDeviceParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	mod := func(f func(*DeviceParams)) DeviceParams {
		p := DefaultDeviceParams()
		f(&p)
		return p
	}
	bad := []DeviceParams{
		mod(func(p *DeviceParams) { p.RLo = 0 }),
		mod(func(p *DeviceParams) { p.RHi = p.RLo }),
		mod(func(p *DeviceParams) { p.VHi = 0 }),
		mod(func(p *DeviceParams) { p.BitsPerCell = 0 }),
		mod(func(p *DeviceParams) { p.BitsPerCell = 9 }),
		mod(func(p *DeviceParams) { p.DeltaRLoFrac = 0 }),
		mod(func(p *DeviceParams) { p.DeltaRLoFrac = 0.6 }),
		mod(func(p *DeviceParams) { p.PRTN = 1.5 }),
		mod(func(p *DeviceParams) { p.CompensationFactor = -0.1 }),
		mod(func(p *DeviceParams) { p.FailureRate = 0.9 }),
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestLevelConductances(t *testing.T) {
	p := DefaultDeviceParams()
	p.BitsPerCell = 2
	ls := p.LevelConductances()
	if len(ls) != 4 {
		t.Fatalf("levels = %d", len(ls))
	}
	if math.Abs(ls[0]-1/p.RHi) > 1e-15 {
		t.Errorf("level 0 = %g, want GMin", ls[0])
	}
	if math.Abs(ls[3]-1/p.RLo) > 1e-15 {
		t.Errorf("top level = %g, want GMax", ls[3])
	}
	for i := 1; i < len(ls); i++ {
		if d := ls[i] - ls[i-1]; math.Abs(d-p.DeltaG()) > 1e-15 {
			t.Errorf("nonuniform step at %d: %g", i, d)
		}
	}
}

func TestNumLevels(t *testing.T) {
	p := DefaultDeviceParams()
	for bits, want := range map[int]int{1: 2, 2: 4, 3: 8, 4: 16, 5: 32} {
		p.BitsPerCell = bits
		if got := p.NumLevels(); got != want {
			t.Errorf("bits=%d: levels=%d, want %d", bits, got, want)
		}
	}
}

// TestIelminiAnchors checks the model reproduces the paper's derived RTN
// amplitudes: 2.8% at RLo = 2 kΩ and ~50% at RHi = 5 MΩ (Section VII-B).
func TestIelminiAnchors(t *testing.T) {
	p := DefaultDeviceParams()
	if got := p.DeltaROverR(p.RLo); math.Abs(got-0.028) > 1e-9 {
		t.Errorf("DeltaR/R(RLo) = %g, want 0.028", got)
	}
	if got := p.DeltaROverR(p.RHi); got < 0.49 || got > 0.50 {
		t.Errorf("DeltaR/R(RHi) = %g, want ~0.50", got)
	}
}

// TestIelminiShape checks the qualitative Ielmini behaviour: amplitude
// grows monotonically with resistance and saturates.
func TestIelminiShape(t *testing.T) {
	p := DefaultDeviceParams()
	prev := 0.0
	for _, r := range []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8} {
		d := p.DeltaROverR(r)
		if d <= prev {
			t.Fatalf("DeltaR/R not increasing at R=%g", r)
		}
		if d >= p.DeltaRSat {
			t.Fatalf("DeltaR/R exceeded saturation at R=%g", r)
		}
		prev = d
	}
	if p.DeltaROverR(0) != 0 || p.DeltaROverR(-5) != 0 {
		t.Error("nonpositive resistance must give zero deviation")
	}
}

// TestTrapRadiusPhysical checks the calibrated trap radius is consistent
// with the filament geometry: sub-filament at RLo, nanometer scale.
func TestTrapRadiusPhysical(t *testing.T) {
	p := DefaultDeviceParams()
	rt := p.TrapRadius()
	rf := p.FilamentRadius(p.RLo)
	if rt <= 0 || rt >= rf {
		t.Fatalf("trap radius %g must be positive and below the RLo filament radius %g", rt, rf)
	}
	if rt > 100e-9 {
		t.Fatalf("trap radius %g not nanoscale", rt)
	}
	if !math.IsInf(p.FilamentRadius(0), 1) {
		t.Error("zero resistance must give infinite filament radius")
	}
}

func TestRTNCurrentExcessScaling(t *testing.T) {
	p := DefaultDeviceParams()
	// The top level (RLo) has a small relative deviation but the largest
	// absolute excess; level 0 (RHi) has a 50% deviation of almost nothing.
	hi := p.RTNCurrentExcess(p.GMax())
	lo := p.RTNCurrentExcess(p.GMin())
	if hi <= lo {
		t.Fatalf("absolute excess must grow with conductance: %g vs %g", hi, lo)
	}
	if p.RTNCurrentExcess(0) != 0 {
		t.Error("zero conductance must give zero excess")
	}
}

func TestPRTNFromDwellTimes(t *testing.T) {
	// tauOFF (normal) several times tauON (error): occupancy well below 1/2.
	got := PRTNFromDwellTimes(1, 3)
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("PRTN = %g, want 0.25", got)
	}
	if PRTNFromDwellTimes(0, 3) != 0 || PRTNFromDwellTimes(1, 0) != 0 {
		t.Error("degenerate dwell times must give zero")
	}
}

func TestNoiseSigmas(t *testing.T) {
	p := DefaultDeviceParams()
	// Thermal noise grows with conductance (falls with R).
	if p.ThermalNoiseSigma(2e3) <= p.ThermalNoiseSigma(5e6) {
		t.Error("thermal noise must be larger for smaller R")
	}
	// Shot noise grows with current.
	if p.ShotNoiseSigma(1e-3) <= p.ShotNoiseSigma(1e-6) {
		t.Error("shot noise must grow with current")
	}
	if p.ShotNoiseSigma(0) != 0 {
		t.Error("zero current must give zero shot noise")
	}
	// Both are far below one ADC step for a full row: RTN dominates
	// (Section IV observes this).
	di := p.VHi * p.DeltaG()
	rowShot := p.ShotNoiseSigma(128 * p.VHi * p.GMax())
	if rowShot > di/4 {
		t.Errorf("shot noise %g should be well under the ADC step %g", rowShot, di)
	}
	rowThermal := math.Sqrt(128) * p.ThermalNoiseSigma(p.RLo)
	if rowThermal > di/20 {
		t.Errorf("thermal noise %g should be negligible vs step %g", rowThermal, di)
	}
}

// TestTableIConstantsPinned pins DefaultDeviceParams against the paper's
// Table I (and the Section II/VII constants PAPER.md carries over), field by
// field. The analytic predictor in internal/predict derives error rates from
// these numbers, so a silent transcription drift here would masquerade as a
// predictor bug — this table makes any change an explicit diff.
func TestTableIConstantsPinned(t *testing.T) {
	p := DefaultDeviceParams()
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"RLo (on-state resistance, 2 kOhm)", p.RLo, 2e3},
		{"RHi (off-state resistance, 5 MOhm)", p.RHi, 5e6},
		{"VHi (read voltage, 0.3 V)", p.VHi, 0.3},
		{"TempK (operating temperature, 350 K)", p.TempK, 350},
		{"BitsPerCell (2 bits/cell baseline)", float64(p.BitsPerCell), 2},
		{"FilmThickness (20 nm oxide)", p.FilmThickness, 20e-9},
		{"FilmResistivity (100 uOhm-cm)", p.FilmResistivity, 1e-6},
		{"AlphaRTN (Ielmini exponent)", p.AlphaRTN, 2},
		{"EpsilonR (relative permittivity)", p.EpsilonR, 12},
		{"DeltaRLoFrac (2.8% RTN amplitude at RLo)", p.DeltaRLoFrac, 0.028},
		{"DeltaRSat (50% RTN saturation)", p.DeltaRSat, 0.50},
		{"PRTN (trap occupancy probability)", p.PRTN, 0.27},
		{"CompensationFactor (93% write compensation)", p.CompensationFactor, 0.93},
		{"GiantProneProb (1e-4 giant-RTN cells)", p.GiantProneProb, 1e-4},
		{"GiantFlickerProb (6% per-read flicker)", p.GiantFlickerProb, 0.06},
		{"GiantDeltaR (35% giant amplitude)", p.GiantDeltaR, 0.35},
		{"GiantHighFrac (85% giants in high-R states)", p.GiantHighFrac, 0.85},
		{"RTNAveraging (128-sample read averaging)", float64(p.RTNAveraging), 128},
		{"SampleFreq (1 GHz sampling)", p.SampleFreq, 1e9},
		{"ProgErrFrac (1% iterative-programming error)", p.ProgErrFrac, 0.01},
		{"ProgVerifyLSB (write-verify tolerance)", p.ProgVerifyLSB, 0.015},
		{"FailureRate (stuck faults off by default)", p.FailureRate, 0},
		{"StuckCharacterizedFrac (97% map coverage)", p.StuckCharacterizedFrac, 0.97},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
	// Derived anchors the predictor leans on, pinned alongside the raw
	// constants: 4 levels at 2 bits/cell and the fig11 stuck-fault rate.
	if p.NumLevels() != 4 {
		t.Errorf("NumLevels() = %d, want 4 at 2 bits/cell", p.NumLevels())
	}
	const fig11StuckRate = 0.001 // 0.1% stuck cells, Section VII-C sweeps
	p.FailureRate = fig11StuckRate
	if err := p.Validate(); err != nil {
		t.Errorf("fig11 stuck rate %g rejected: %v", fig11StuckRate, err)
	}
}
