package noise

import (
	"reflect"
	"strings"
	"testing"
)

// Every registered device must pass parameter validation — the registry is
// the operator-facing surface, so a bad entry is a library bug, not a
// runtime configuration error.
func TestDeviceRegistryValidates(t *testing.T) {
	names := DeviceNames()
	if len(names) < 4 {
		t.Fatalf("registry has %d devices, want at least 4", len(names))
	}
	for _, name := range names {
		p, err := Device(name)
		if err != nil {
			t.Fatalf("Device(%q): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("device %q fails validation: %v", name, err)
		}
	}
}

// The default entry must stay pinned to the paper's Table I parameters.
func TestDefaultDeviceMatchesTableI(t *testing.T) {
	got := MustDevice(DefaultDeviceName)
	if want := DefaultDeviceParams(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Device(%q) = %+v, want DefaultDeviceParams() = %+v", DefaultDeviceName, got, want)
	}
}

// Lookups must hand out fresh copies: mutating one must not leak into the
// next.
func TestDeviceLookupIsolation(t *testing.T) {
	a := MustDevice(DefaultDeviceName)
	a.TempK = 999
	b := MustDevice(DefaultDeviceName)
	if b.TempK == 999 {
		t.Fatal("registry handed out a shared DeviceParams")
	}
}

func TestDeviceUnknownNameListsRegistry(t *testing.T) {
	_, err := Device("no-such-device")
	if err == nil {
		t.Fatal("want error for unknown device")
	}
	for _, name := range DeviceNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention valid device %q", err, name)
		}
	}
}

// The contrasting profiles must actually contrast on their headline axis.
func TestDeviceProfilesContrast(t *testing.T) {
	base := MustDevice(DefaultDeviceName)
	if hr := MustDevice("high-rtn"); hr.PRTN <= base.PRTN {
		t.Errorf("high-rtn PRTN %g not above baseline %g", hr.PRTN, base.PRTN)
	}
	if pcm := MustDevice("pcm-drift"); pcm.ProgErrFrac <= base.ProgErrFrac || pcm.PRTN >= base.PRTN {
		t.Errorf("pcm-drift should trade quiet RTN for loose programming: got ProgErrFrac %g PRTN %g", pcm.ProgErrFrac, pcm.PRTN)
	}
	if fl := MustDevice("fast-lowprec"); fl.BitsPerCell != 1 || fl.SampleFreq <= base.SampleFreq {
		t.Errorf("fast-lowprec should be 1 b/cell at a faster sample rate: got %d b/cell %g Hz", fl.BitsPerCell, fl.SampleFreq)
	}
	if entries := Devices(); len(entries) != len(DeviceNames()) {
		t.Errorf("Devices() returned %d entries, want %d", len(entries), len(DeviceNames()))
	}
}
