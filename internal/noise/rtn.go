package noise

import "math"

// The Ielmini model (Section II-C3) ties the RTN amplitude to the geometry
// of the conductive filament: a trapped electron depletes a fixed
// cross-sectional area A_t, while the filament area A_fil shrinks as the
// programmed resistance grows (R = rho0 * t_h / A_fil). The fractional
// resistance deviation therefore rises with the area ratio A_t/A_fil and
// saturates once the depleted region covers the whole filament:
//
//	DeltaR/R(R) = DeltaRSat * u / (1 + u),   u = A_t/A_fil = R / Rc
//
// Rc is the resistance at which the depleted area equals half the filament.
// We calibrate Rc from the paper's derived anchor DeltaR/R(RLo) = 2.8% and
// saturate at DeltaRSat = 50% near RHi, matching the NiO values of
// Section VII-B. In the RTN error state the effective resistance drops to
// R/(1 + DeltaR/R) — "a temporary and unexpected reduction in the
// resistance" (Section II-C3) — so the cell conducts more than programmed.

// RcCalibrated returns the crossover resistance of the saturating Ielmini
// curve, solved from the DeltaRLoFrac anchor.
func (p DeviceParams) RcCalibrated() float64 {
	return p.RLo * (p.DeltaRSat - p.DeltaRLoFrac) / p.DeltaRLoFrac
}

// DeltaROverR returns the RTN fractional resistance deviation for a device
// programmed to resistance r.
func (p DeviceParams) DeltaROverR(r float64) float64 {
	if r <= 0 {
		return 0
	}
	u := r / p.RcCalibrated()
	return p.DeltaRSat * u / (1 + u)
}

// TrapRadius reports the physical trap-depletion radius implied by the
// calibration, for documentation and sanity checks: r_t = sqrt(rho0 * t_h /
// (pi * Rc)). With the Table I film parameters this lands in the
// nanometer range reported for NiO filaments.
func (p DeviceParams) TrapRadius() float64 {
	return math.Sqrt(p.FilmResistivity * p.FilmThickness / (math.Pi * p.RcCalibrated()))
}

// FilamentRadius returns the filament radius for a programmed resistance r
// under the cylindrical-filament model.
func (p DeviceParams) FilamentRadius(r float64) float64 {
	if r <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(p.FilmResistivity * p.FilmThickness / (math.Pi * r))
}

// RTNCurrentExcess returns the extra current a cell at conductance g draws
// while in its RTN error state under read voltage V: the resistance drops
// to R/(1+x), so the current rises by V*g*x with x = DeltaR/R.
func (p DeviceParams) RTNCurrentExcess(g float64) float64 {
	if g <= 0 {
		return 0
	}
	return p.VHi * g * p.DeltaROverR(1/g)
}
