// Package noise models the memristive device physics of paper Section II-C
// and IV: state-dependent random telegraph noise (RTN) following the Ielmini
// resistance-dependent amplitude model, Johnson-Nyquist thermal noise, shot
// noise, iterative-programming error, and stuck-at faults from yield and
// endurance failures. It exposes a fast row-level Monte-Carlo sampler for
// the accelerator simulator and the analytic row error-rate prediction of
// Section V-B5 that drives data-aware code construction.
package noise

import (
	"fmt"
	"math"
)

// Physical constants (SI units).
const (
	boltzmann      = 1.380649e-23 // J/K
	electronCharge = 1.602177e-19 // C
)

// DeviceParams collects the device and array parameters of paper Table I
// plus the noise-model knobs the evaluation sweeps.
type DeviceParams struct {
	// RLo is the low (most conductive) resistance state in ohms (2 kΩ).
	RLo float64
	// RHi is the high resistance state in ohms (5 MΩ).
	RHi float64
	// VHi is the read voltage on active lines in volts (0.3 V).
	VHi float64
	// TempK is the operating temperature in kelvins (350 K).
	TempK float64
	// BitsPerCell is the multi-level cell width, 1-5 in the evaluation.
	BitsPerCell int

	// FilmThickness is the dielectric thickness in meters (20 nm NiO).
	FilmThickness float64
	// FilmResistivity is the metallic nanowire resistivity in ohm-meters
	// (100 µΩ·cm).
	FilmResistivity float64
	// AlphaRTN is the relative resistivity increase caused by a trapped
	// electron (2 for the paper's NiO parameters).
	AlphaRTN float64
	// EpsilonR is the relative permittivity of the film (12).
	EpsilonR float64

	// DeltaRLoFrac anchors the Ielmini model: Delta R / R at R = RLo
	// (paper derives 2.8% for NiO). Figure 12 sweeps this from 1.4 to 4.2%.
	DeltaRLoFrac float64
	// DeltaRSat is the saturated Delta R / R reached when the trapped
	// electron covers the whole filament (paper derives 50% at RHi).
	DeltaRSat float64
	// PRTN is the probability a cell sits in its RTN error state during a
	// read, set by the asymmetric dwell times tauON/tauOFF. Figure 12
	// sweeps 17-37%.
	PRTN float64
	// CompensationFactor is the fraction of the mean RTN current shift
	// removed by the programming-time RTN offset in the BARE-ROW transient
	// of Section IV/Figure 7, which applies the offset "without the series
	// of calibration vectors" of Hu et al.; the residual shift biases that
	// experiment's errors toward the high side (13.9% high vs 0.51% low).
	// The accelerator mapping path instead applies the full Hu-style
	// calibration the paper adopts (Section IV), so the row sampler always
	// compensates the mean exactly (up to the GMin clamp) and this factor
	// only affects the circuit-level transient.
	CompensationFactor float64

	// GiantProneProb is the probability that a fabricated cell belongs to
	// the giant-RTN population. Section II-C3 notes the RTN resistance
	// deviation "varies from less than 1% to upwards of 40%" across
	// devices: most cells follow the small-amplitude Ielmini curve (whose
	// zero-mean fluctuation the ADC averaging attenuates), while a rare
	// fixed population of defective cells exhibits long-dwell,
	// large-amplitude switching that passes through a conversion intact
	// and produces discrete quantization-step errors. The population is
	// identifiable by characterization, which is what makes the row error
	// rates predictable for data-aware allocation (Section V-B5's "local
	// device variation").
	GiantProneProb float64
	// GiantFlickerProb is the per-conversion probability that a
	// giant-prone cell occupies its low-resistance error state.
	GiantFlickerProb float64
	// GiantDeltaR is the fractional resistance drop of a giant RTN event
	// (towards the upper end of the reported <1%..40% range).
	GiantDeltaR float64
	// GiantHighFrac is the fraction of giant-prone cells whose error
	// state increases the current (resistance drop); the remainder
	// decrease it, giving the high-dominated asymmetry of Section IV.
	GiantHighFrac float64

	// RTNAveraging is the number of effectively independent RTN
	// configurations one ADC conversion integrates over. The Figure 7
	// transient shows the instantaneous row current, where the full RTN
	// fluctuation is visible; a conversion window long relative to the
	// RTN dwell times averages the zero-mean part of the fluctuation down
	// by sqrt(RTNAveraging) while the (compensated) mean shift is
	// unaffected. 1 reproduces the instantaneous worst case.
	RTNAveraging int

	// SampleFreq is the ADC sampling bandwidth in Hz used by the thermal
	// and shot noise magnitudes.
	SampleFreq float64
	// ProgErrFrac is the iterative-programming tolerance: programmed
	// conductance lands within this fraction of the target (1%,
	// Section II-C4).
	ProgErrFrac float64
	// ProgVerifyLSB caps the programming deviation at this fraction of one
	// conductance step: the program-verify loop compares against the
	// quantized target, so its termination tolerance tightens with the
	// level spacing (multi-level storage would otherwise be impossible at
	// 4-5 bits per cell, where 1% of the target spans multiple levels).
	ProgVerifyLSB float64
	// FailureRate is the probability a cell is stuck at a random state
	// from a yield or endurance failure (0.1% in Figure 11).
	FailureRate float64
	// StuckCharacterizedFrac is the fraction of stuck cells known at
	// mapping time: the iterative program-verify loop (Section II-C4)
	// flags any cell that refuses to reach its target, so manufacturing
	// faults are caught when the weights are written and compensated
	// digitally; only endurance failures that develop after deployment
	// surprise the ECU, and those are what the split correction tables of
	// Section V-B1 target.
	StuckCharacterizedFrac float64
}

// DefaultDeviceParams returns the paper's Table I configuration with the
// NiO RTN anchors of Section VII-B.
func DefaultDeviceParams() DeviceParams {
	return DeviceParams{
		RLo:                    2e3,
		RHi:                    5e6,
		VHi:                    0.3,
		TempK:                  350,
		BitsPerCell:            2,
		FilmThickness:          20e-9,
		FilmResistivity:        1e-6, // 100 µΩ·cm
		AlphaRTN:               2,
		EpsilonR:               12,
		DeltaRLoFrac:           0.028,
		DeltaRSat:              0.50,
		PRTN:                   0.27,
		CompensationFactor:     0.93,
		GiantProneProb:         1e-4,
		GiantFlickerProb:       0.06,
		GiantDeltaR:            0.35,
		GiantHighFrac:          0.85,
		RTNAveraging:           128,
		SampleFreq:             1e9,
		ProgErrFrac:            0.01,
		ProgVerifyLSB:          0.015,
		FailureRate:            0,
		StuckCharacterizedFrac: 0.97,
	}
}

// Validate checks parameter sanity.
func (p DeviceParams) Validate() error {
	switch {
	case p.RLo <= 0 || p.RHi <= p.RLo:
		return fmt.Errorf("noise: need 0 < RLo < RHi, got %g, %g", p.RLo, p.RHi)
	case p.VHi <= 0:
		return fmt.Errorf("noise: read voltage %g must be positive", p.VHi)
	case p.BitsPerCell < 1 || p.BitsPerCell > 8:
		return fmt.Errorf("noise: bits per cell %d out of range [1,8]", p.BitsPerCell)
	case p.DeltaRLoFrac <= 0 || p.DeltaRLoFrac >= p.DeltaRSat:
		return fmt.Errorf("noise: DeltaRLoFrac %g must be in (0, DeltaRSat=%g)", p.DeltaRLoFrac, p.DeltaRSat)
	case p.PRTN < 0 || p.PRTN > 1:
		return fmt.Errorf("noise: PRTN %g out of [0,1]", p.PRTN)
	case p.CompensationFactor < 0 || p.CompensationFactor > 1:
		return fmt.Errorf("noise: compensation factor %g out of [0,1]", p.CompensationFactor)
	case p.RTNAveraging < 1:
		return fmt.Errorf("noise: RTN averaging %d must be >= 1", p.RTNAveraging)
	case p.ProgVerifyLSB < 0:
		return fmt.Errorf("noise: program-verify tolerance %g must be non-negative", p.ProgVerifyLSB)
	case p.GiantProneProb < 0 || p.GiantProneProb > 0.1:
		return fmt.Errorf("noise: giant-prone probability %g out of [0,0.1]", p.GiantProneProb)
	case p.GiantFlickerProb < 0 || p.GiantFlickerProb > 1:
		return fmt.Errorf("noise: giant flicker probability %g out of [0,1]", p.GiantFlickerProb)
	case p.GiantDeltaR < 0 || p.GiantDeltaR >= 1:
		return fmt.Errorf("noise: giant RTN amplitude %g out of [0,1)", p.GiantDeltaR)
	case p.GiantHighFrac < 0 || p.GiantHighFrac > 1:
		return fmt.Errorf("noise: giant high fraction %g out of [0,1]", p.GiantHighFrac)
	case p.FailureRate < 0 || p.FailureRate > 0.5:
		return fmt.Errorf("noise: failure rate %g out of [0,0.5]", p.FailureRate)
	case p.StuckCharacterizedFrac < 0 || p.StuckCharacterizedFrac > 1:
		return fmt.Errorf("noise: characterized fraction %g out of [0,1]", p.StuckCharacterizedFrac)
	}
	return nil
}

// NumLevels returns the number of conductance levels per cell.
func (p DeviceParams) NumLevels() int { return 1 << p.BitsPerCell }

// GMin and GMax are the conductance bounds in siemens.
func (p DeviceParams) GMin() float64 { return 1 / p.RHi }
func (p DeviceParams) GMax() float64 { return 1 / p.RLo }

// DeltaG is the conductance quantization step between adjacent levels —
// also the per-active-cell current step V*DeltaG that the ADC resolves.
func (p DeviceParams) DeltaG() float64 {
	return (p.GMax() - p.GMin()) / float64(p.NumLevels()-1)
}

// LevelConductances returns the conductance of each cell level, linear in
// conductance from GMin (level 0) to GMax (top level) per the dot-product
// engine mapping of Hu et al. that the paper adopts.
func (p DeviceParams) LevelConductances() []float64 {
	k := p.NumLevels()
	dg := p.DeltaG()
	out := make([]float64, k)
	for i := range out {
		out[i] = p.GMin() + float64(i)*dg
	}
	return out
}

// PRTNFromDwellTimes converts asymmetric RTN dwell times into the
// steady-state probability of occupying the error (trapped/low-resistance)
// state: tauErr / (tauErr + tauNormal). Experimental stacks report
// tauOFF several times tauON (Section II-C3).
func PRTNFromDwellTimes(tauErr, tauNormal float64) float64 {
	if tauErr <= 0 || tauNormal <= 0 {
		return 0
	}
	return tauErr / (tauErr + tauNormal)
}

// ThermalNoiseSigma returns the Johnson-Nyquist current-noise standard
// deviation sqrt(4 k_B T f / R) for one device (Section II-C1).
func (p DeviceParams) ThermalNoiseSigma(r float64) float64 {
	return math.Sqrt(4 * boltzmann * p.TempK * p.SampleFreq / r)
}

// ShotNoiseSigma returns the shot-noise standard deviation sqrt(2 q I f)
// for a measured current I (Section II-C2).
func (p DeviceParams) ShotNoiseSigma(current float64) float64 {
	if current <= 0 {
		return 0
	}
	return math.Sqrt(2 * electronCharge * current * p.SampleFreq)
}
