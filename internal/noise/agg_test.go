package noise

import (
	"math/rand/v2"
	"testing"
)

// TestAggregateRowLevelsMatchesFull checks the level-list aggregation path
// against the full-scan one on random sparse count vectors: same float
// accumulation order, bit-identical aggregates.
func TestAggregateRowLevelsMatchesFull(t *testing.T) {
	p := DefaultDeviceParams()
	p.BitsPerCell = 3
	s, err := NewRowSampler(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(12, 34))
	k := p.NumLevels()
	for trial := 0; trial < 200; trial++ {
		counts := make([]int, k)
		var levels []uint8
		for l := 1; l < k; l++ {
			switch rng.IntN(3) {
			case 0: // absent level: zero count, not listed
			case 1: // present level with zero active count: listed, zero
				levels = append(levels, uint8(l))
			case 2:
				levels = append(levels, uint8(l))
				counts[l] = 1 + rng.IntN(64)
			}
		}
		want := s.AggregateRow(counts)
		got := s.AggregateRowLevels(levels, counts)
		if got != want {
			t.Fatalf("trial %d (levels %v counts %v): list agg %+v, full agg %+v",
				trial, levels, counts, got, want)
		}
		fused, ideal := s.AggregateRowLevelsIdeal(levels, counts)
		if fused != want {
			t.Fatalf("trial %d: fused agg %+v, full agg %+v", trial, fused, want)
		}
		wantIdeal := 0
		for l, c := range counts {
			wantIdeal += l * c
		}
		if ideal != wantIdeal {
			t.Fatalf("trial %d: fused ideal %d, want %d", trial, ideal, wantIdeal)
		}
	}
}
