package noise

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestInjectGiantProneRate(t *testing.T) {
	p := DefaultDeviceParams()
	p.GiantProneProb = 0.01
	rng := stats.NewRNG(17)
	total, neg := 0, 0
	const trials = 60
	for i := 0; i < trials; i++ {
		cells := InjectGiantProne(rng, 100, 128, p)
		total += len(cells)
		for _, c := range cells {
			if c.Row < 0 || c.Row >= 100 || c.Col < 0 || c.Col >= 128 {
				t.Fatalf("cell out of bounds: %+v", c)
			}
			if c.Neg {
				neg++
			}
		}
	}
	mean := float64(total) / trials
	want := 0.01 * 100 * 128
	if math.Abs(mean-want) > 0.15*want {
		t.Fatalf("mean prone cells %g, want ~%g", mean, want)
	}
	negFrac := float64(neg) / float64(total)
	if math.Abs(negFrac-(1-p.GiantHighFrac)) > 0.05 {
		t.Fatalf("negative fraction %.3f, want ~%.3f", negFrac, 1-p.GiantHighFrac)
	}
}

func TestInjectGiantProneZero(t *testing.T) {
	p := DefaultDeviceParams()
	p.GiantProneProb = 0
	if cells := InjectGiantProne(stats.NewRNG(1), 10, 10, p); cells != nil {
		t.Fatal("zero prone probability must inject nothing")
	}
}

// TestGiantMagnitudeScalesWithLevel: a giant event on a high-conductance
// cell shifts the current by more steps — the mechanism behind the paper's
// multi-bit-position errors at high cell densities.
func TestGiantMagnitudeScalesWithLevel(t *testing.T) {
	for _, bits := range []int{2, 4} {
		p := DefaultDeviceParams()
		p.BitsPerCell = bits
		s, err := NewRowSampler(p)
		if err != nil {
			t.Fatal(err)
		}
		top := p.NumLevels() - 1
		if s.GiantMagnitude(top) <= s.GiantMagnitude(1) {
			t.Fatalf("bits=%d: magnitude must grow with level", bits)
		}
		// The top level's absolute magnitude in steps grows with density:
		// same device current, finer quantization.
		if bits == 4 {
			p2 := DefaultDeviceParams()
			p2.BitsPerCell = 2
			s2, _ := NewRowSampler(p2)
			if s.GiantMagnitude(top) <= s2.GiantMagnitude(3) {
				t.Fatal("4-bit top magnitude must exceed 2-bit top magnitude in steps")
			}
		}
	}
}

func TestAddDiscreteBuckets(t *testing.T) {
	var sp StepProbs
	sp.AddDiscrete(1.0, 0.5) // clean +1
	if sp[0] < 0.49 || sp[2] > 0.01 {
		t.Fatalf("clean +1: %v", sp)
	}
	sp = StepProbs{}
	sp.AddDiscrete(-1.0, 0.5)
	if sp[1] < 0.49 {
		t.Fatalf("clean -1: %v", sp)
	}
	sp = StepProbs{}
	sp.AddDiscrete(2.2, 1.0) // mostly >= 2
	if sp[2] < 0.9 {
		t.Fatalf("+2.2 should land in the >=2 bucket: %v", sp)
	}
	sp = StepProbs{}
	sp.AddDiscrete(1.4, 1.0) // straddles 1.5: mass in both buckets
	if sp[0] < 0.4 || sp[2] < 0.1 {
		t.Fatalf("+1.4 should straddle: %v", sp)
	}
	sp = StepProbs{}
	sp.AddDiscrete(0.1, 1.0) // sub-threshold: ignored
	if sp.Total() != 0 {
		t.Fatalf("tiny magnitude must be ignored: %v", sp)
	}
	sp = StepProbs{}
	sp.AddDiscrete(1.0, 0) // zero probability: ignored
	if sp.Total() != 0 {
		t.Fatal("zero probability must be ignored")
	}
}

func TestSampleDeviationMatchesSampleError(t *testing.T) {
	s := newTestSampler(t, nil)
	a := stats.NewRNG(5)
	b := stats.NewRNG(5)
	counts := []int{20, 30, 10, 5}
	for i := 0; i < 200; i++ {
		if got := int(math.Round(s.SampleDeviation(a, counts))); got != s.SampleError(b, counts) {
			t.Fatal("SampleError must be the rounded SampleDeviation")
		}
	}
}
