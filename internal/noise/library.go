package noise

import (
	"fmt"
	"sort"
)

// DefaultDeviceName is the registry entry matching DefaultDeviceParams():
// the paper's Table I RRAM corner.
const DefaultDeviceName = "hpca2018-rram"

// DeviceEntry is one named device model in the library: the full parameter
// set plus a one-line operator-facing description for discovery listings.
type DeviceEntry struct {
	Name        string
	Description string
	Params      DeviceParams
}

// deviceBuilders maps each registry name to a constructor. Builders (not
// stored values) so every lookup hands out a fresh DeviceParams — callers
// mutate their copy freely without poisoning the registry.
var deviceBuilders = map[string]struct {
	desc  string
	build func() DeviceParams
}{
	DefaultDeviceName: {
		desc:  "Table I NiO RRAM, the paper's evaluation corner (2 kΩ–5 MΩ, 2 b/cell)",
		build: DefaultDeviceParams,
	},
	"high-rtn": {
		desc:  "RTN-dominated RRAM corner: long error-state dwell, larger amplitudes, 4x the giant-prone population",
		build: highRTNDeviceParams,
	},
	"pcm-drift": {
		desc:  "slow-drift PCM-like cell: wide resistance window, loose programming that drifts, quiet RTN",
		build: pcmDriftDeviceParams,
	},
	"fast-lowprec": {
		desc:  "low-precision fast-read cell: 1 b/cell binary storage at 4 GS/s with short conversion averaging",
		build: fastLowPrecDeviceParams,
	},
}

// highRTNDeviceParams is the RTN-dominated corner of the Section II-C3
// survey: dwell-time asymmetry near the top of the Figure 12 sweep
// (tauErr close to tauNormal), a larger Ielmini amplitude anchor, and a
// giant-prone population four times the Table I estimate with faster
// flicker. Everything else stays at the Table I values so the contrast
// against hpca2018-rram isolates the RTN axis.
func highRTNDeviceParams() DeviceParams {
	p := DefaultDeviceParams()
	p.PRTN = PRTNFromDwellTimes(3, 5) // 0.375, top of the Figure 12 sweep
	p.DeltaRLoFrac = 0.042
	p.GiantProneProb = 4e-4
	p.GiantFlickerProb = 0.12
	p.RTNAveraging = 64 // shorter conversion window averages less of it away
	return p
}

// pcmDriftDeviceParams is a slow-drift PCM-like profile: a wider resistance
// window (phase-change cells separate states further than NiO), a thicker
// chalcogenide film, quiet RTN (drift, not telegraph noise, dominates PCM),
// but loose iterative programming whose placements relax over time — the
// corner that stresses the scrub path rather than the retry path.
func pcmDriftDeviceParams() DeviceParams {
	p := DefaultDeviceParams()
	p.RLo = 5e3
	p.RHi = 2e7
	p.FilmThickness = 50e-9
	p.FilmResistivity = 3e-6
	p.PRTN = 0.08
	p.DeltaRLoFrac = 0.015
	p.GiantProneProb = 2e-5
	p.GiantFlickerProb = 0.03
	p.ProgErrFrac = 0.03
	p.ProgVerifyLSB = 0.03
	return p
}

// fastLowPrecDeviceParams is the low-precision-fast corner: binary (1 bit
// per cell) storage read at 4 GS/s with a short conversion window. The
// wide level spacing buys error margin back from the higher thermal noise
// floor and the reduced RTN averaging — the trade the multi-level sweeps
// of Section VII probe from the other side.
func fastLowPrecDeviceParams() DeviceParams {
	p := DefaultDeviceParams()
	p.BitsPerCell = 1
	p.RLo = 1e3
	p.RHi = 1e6
	p.SampleFreq = 4e9
	p.RTNAveraging = 16
	p.ProgErrFrac = 0.02
	return p
}

// Device returns a fresh copy of the named device model. Unknown names
// list the valid registry so flag errors are self-documenting.
func Device(name string) (DeviceParams, error) {
	e, ok := deviceBuilders[name]
	if !ok {
		return DeviceParams{}, fmt.Errorf("noise: unknown device %q (valid: %v)", name, DeviceNames())
	}
	return e.build(), nil
}

// MustDevice is Device for registry names known at compile time.
func MustDevice(name string) DeviceParams {
	p, err := Device(name)
	if err != nil {
		panic(err)
	}
	return p
}

// DeviceNames returns the registry names in sorted order.
func DeviceNames() []string {
	names := make([]string, 0, len(deviceBuilders))
	for n := range deviceBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Devices returns every registry entry, sorted by name, for listings.
func Devices() []DeviceEntry {
	out := make([]DeviceEntry, 0, len(deviceBuilders))
	for _, n := range DeviceNames() {
		e := deviceBuilders[n]
		out = append(out, DeviceEntry{Name: n, Description: e.desc, Params: e.build()})
	}
	return out
}
