package noise

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func newTestSampler(t *testing.T, mod func(*DeviceParams)) *RowSampler {
	t.Helper()
	p := DefaultDeviceParams()
	if mod != nil {
		mod(&p)
	}
	s, err := NewRowSampler(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRowSamplerRejectsInvalid(t *testing.T) {
	p := DefaultDeviceParams()
	p.BitsPerCell = 0
	if _, err := NewRowSampler(p); err == nil {
		t.Fatal("expected error")
	}
}

func TestSampleErrorNoCells(t *testing.T) {
	s := newTestSampler(t, nil)
	rng := stats.NewRNG(1)
	for i := 0; i < 100; i++ {
		if e := s.SampleError(rng, []int{0, 0, 0, 0}); e != 0 {
			t.Fatalf("empty row produced error %d", e)
		}
	}
}

func TestSampleErrorNoNoiseSources(t *testing.T) {
	s := newTestSampler(t, func(p *DeviceParams) {
		p.PRTN = 0
		p.ProgErrFrac = 0
		p.SampleFreq = 0 // kills thermal and shot noise
	})
	rng := stats.NewRNG(2)
	for i := 0; i < 200; i++ {
		if e := s.SampleError(rng, []int{10, 10, 10, 10}); e != 0 {
			t.Fatalf("noise-free read produced error %d", e)
		}
	}
}

// TestSection4InstantaneousRegime checks that with the ADC temporal
// averaging disabled (one RTN configuration per conversion, the Figure 7
// instantaneous view) a fully occupied 128-cell 2-bit row errs at a
// double-digit rate, the Section IV regime. The high/low asymmetry of the
// bare-row experiment is validated in the circuit package, which models the
// partial (vector-free) calibration that causes it.
func TestSection4InstantaneousRegime(t *testing.T) {
	s := newTestSampler(t, func(p *DeviceParams) { p.RTNAveraging = 1 })
	rng := stats.NewRNG(3)
	counts := []int{32, 32, 32, 32}
	const n = 50000
	errs := 0
	for i := 0; i < n; i++ {
		if s.SampleError(rng, counts) != 0 {
			errs++
		}
	}
	total := float64(errs) / n
	if total < 0.05 || total > 0.35 {
		t.Errorf("instantaneous error rate %.3f outside the Section IV regime", total)
	}
}

// TestAveragingAttenuatesErrors checks the RTNAveraging knob: longer ADC
// integration must strictly reduce the row error rate.
func TestAveragingAttenuatesErrors(t *testing.T) {
	rate := func(k int) float64 {
		s := newTestSampler(t, func(p *DeviceParams) { p.RTNAveraging = k })
		rng := stats.NewRNG(uint64(k))
		counts := []int{32, 32, 32, 32}
		errs := 0
		const n = 30000
		for i := 0; i < n; i++ {
			if s.SampleError(rng, counts) != 0 {
				errs++
			}
		}
		return float64(errs) / n
	}
	r1, r64 := rate(1), rate(64)
	if r64 >= r1/3 {
		t.Fatalf("averaging barely helped: K=1 %.4f vs K=64 %.4f", r1, r64)
	}
}

// TestErrorRateGrowsWithBitsPerCell checks the scalability trend the paper
// motivates: more bits per cell shrinks the ADC step and inflates the error
// rate.
func TestErrorRateGrowsWithBitsPerCell(t *testing.T) {
	rate := func(bits int) float64 {
		s := newTestSampler(t, func(p *DeviceParams) { p.BitsPerCell = bits })
		k := 1 << bits
		counts := make([]int, k)
		for i := range counts {
			counts[i] = 128 / k
		}
		rng := stats.NewRNG(uint64(bits))
		errs := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if s.SampleError(rng, counts) != 0 {
				errs++
			}
		}
		return float64(errs) / n
	}
	r1, r4, r5 := rate(1), rate(4), rate(5)
	if !(r1 <= r4 && r4 <= r5 && r5 > r1) {
		t.Fatalf("error rate must grow with cell bits: %g, %g, %g", r1, r4, r5)
	}
	if r5 < 0.01 {
		t.Errorf("5-bit cells should err visibly, got %g", r5)
	}
	if r1 > 0.02 {
		t.Errorf("1-bit cells should be nearly error free, got %g", r1)
	}
}

// TestRowStateDependence checks the observation the data-aware codes build
// on: "a physical row that contains fewer 1s is less susceptible to an
// error" — rows populated with low conductance levels err less.
func TestRowStateDependence(t *testing.T) {
	s := newTestSampler(t, nil)
	light := s.PredictStepProbs([]int{120, 8, 0, 0}).Total()
	heavy := s.PredictStepProbs([]int{0, 0, 8, 120}).Total()
	if light >= heavy {
		t.Fatalf("light row susceptibility %g must be below heavy row %g", light, heavy)
	}
}

// TestPredictMatchesMonteCarlo cross-validates the analytic Section V-B5
// prediction against the sampler on several row states.
func TestPredictMatchesMonteCarlo(t *testing.T) {
	s := newTestSampler(t, func(p *DeviceParams) {
		// Disable the Gaussian terms the analytic model omits.
		p.ProgErrFrac = 0
		p.SampleFreq = 0
	})
	rng := stats.NewRNG(7)
	for _, counts := range [][]int{
		{32, 32, 32, 32},
		{0, 0, 0, 64},
		{0, 100, 20, 8},
	} {
		pred := s.PredictStepProbs(counts)
		const n = 40000
		var got StepProbs
		for i := 0; i < n; i++ {
			switch e := s.SampleError(rng, counts); {
			case e == 1:
				got[0] += 1.0 / n
			case e == -1:
				got[1] += 1.0 / n
			case e >= 2:
				got[2] += 1.0 / n
			case e <= -2:
				got[3] += 1.0 / n
			}
		}
		for i := 0; i < 4; i++ {
			tol := 3*math.Sqrt(pred[i]*(1-pred[i])/n) + 0.01
			if math.Abs(got[i]-pred[i]) > tol {
				t.Errorf("counts=%v idx=%d: MC %g vs predicted %g", counts, i, got[i], pred[i])
			}
		}
	}
}

func TestPredictStepProbsEmptyRow(t *testing.T) {
	s := newTestSampler(t, nil)
	if got := s.PredictStepProbs([]int{0, 0, 0, 0}); got.Total() != 0 {
		t.Fatalf("empty row predicted %v", got)
	}
}

func TestStepProbsTotal(t *testing.T) {
	sp := StepProbs{0.1, 0.2, 0.01, 0.02}
	if math.Abs(sp.Total()-0.33) > 1e-12 {
		t.Fatalf("Total = %g", sp.Total())
	}
}

func TestWorstCaseRowCounts(t *testing.T) {
	h := []int{5, 3, 2, 1}
	w := WorstCaseRowCounts(h)
	if len(w) != 4 || w[0] != 5 || w[3] != 1 {
		t.Fatalf("WorstCaseRowCounts = %v", w)
	}
	w[0] = 99
	if h[0] != 5 {
		t.Fatal("must copy, not alias")
	}
}

func TestInjectStuckRate(t *testing.T) {
	p := DefaultDeviceParams()
	p.FailureRate = 0.01
	rng := stats.NewRNG(11)
	total := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		cells := InjectStuck(rng, 128, 128, p)
		total += len(cells)
		for _, c := range cells {
			if c.Row < 0 || c.Row >= 128 || c.Col < 0 || c.Col >= 128 {
				t.Fatalf("cell out of bounds: %+v", c)
			}
			if int(c.Level) >= p.NumLevels() {
				t.Fatalf("stuck level %d out of range", c.Level)
			}
		}
	}
	mean := float64(total) / trials
	want := 0.01 * 128 * 128 // ~164
	if math.Abs(mean-want) > 0.15*want {
		t.Fatalf("mean stuck cells %g, want ~%g", mean, want)
	}
}

func TestInjectStuckZeroRate(t *testing.T) {
	p := DefaultDeviceParams()
	if cells := InjectStuck(stats.NewRNG(1), 10, 10, p); cells != nil {
		t.Fatal("zero failure rate must inject nothing")
	}
}

func TestInjectStuckOrdering(t *testing.T) {
	p := DefaultDeviceParams()
	p.FailureRate = 0.05
	cells := InjectStuck(stats.NewRNG(5), 64, 64, p)
	for i := 1; i < len(cells); i++ {
		prev := cells[i-1].Row*64 + cells[i-1].Col
		cur := cells[i].Row*64 + cells[i].Col
		if cur <= prev {
			t.Fatal("geometric skipping must produce strictly increasing cells")
		}
	}
}
