package accel

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/crossbar"
	"repro/internal/fixed"
	"repro/internal/noise"
	"repro/internal/stats"
)

// activeProb is the assumed probability that a column is driven in a given
// input-bit cycle, used when ranking characterized faults for syndrome
// allocation (input bits of quantized activations are roughly balanced).
const activeProb = 0.5

// verifySeedSalt separates the program-verify RNG stream from the layer's
// fault-injection stream: both derive from (cfg.Seed, layer seed), but the
// verify loop must not consume draws the stuck/giant injection depends on.
const verifySeedSalt = uint64(1) << 62

// stuckInfo is one stuck cell's precomputed read-time effect.
type stuckInfo struct {
	word  int
	bit   uint
	delta int // output deviation in steps while the column is active
}

// giantInfo is one giant-RTN-prone cell's precomputed read-time effect:
// when its column is active and the cell flickers into the error state, the
// row current shifts by mag steps.
type giantInfo struct {
	word int
	bit  uint
	mag  float64
}

// group is one coded operand group mapped onto a (logical) array: GroupOps
// output rows sharing a column chunk, bit sliced with check bits attached.
type group struct {
	arr    *crossbar.Array
	code   *core.Code // nil for the NoECC baseline
	layout core.GroupLayout
	// outRows are the output indices served by each lane.
	outRows []int
	// maxLane is the largest partial sum a lane can legitimately hold
	// (columns * max operand); the ECU uses it as a plausibility bound to
	// reject miscorrections that a blind table lookup would let through.
	maxLane uint64
	// stuckRows[r] lists the stuck cells of physical row r (usually nil).
	stuckRows [][]stuckInfo
	// giantRows[r] lists the giant-RTN-prone cells of physical row r.
	giantRows [][]giantInfo
	// stuckPresent and giantPresent are per-row presence bitsets (bit r set
	// iff the row hosts any such cell), so the overwhelmingly clean rows
	// skip the fault scans with one word test.
	stuckPresent []uint64
	giantPresent []uint64
}

// chunk is a column range of the weight matrix mapped onto one array
// column block.
type chunk struct {
	colLo, colHi int
	groups       []*group
}

// MappedMatrix is one weight matrix (dense layer, or convolution kernel
// viewed as OutC x PatchLen) quantized, encoded, and programmed onto
// crossbar arrays.
type MappedMatrix struct {
	cfg     Config
	sampler *noise.RowSampler
	outDim  int
	inDim   int
	scale   float64
	chunks  []*chunk
	// pulseFail is the per-level single-pulse verify-miss probability the
	// closed-loop write path draws against.
	pulseFail []float64
	// verify accumulates the program-verify accounting of the mapping pass.
	verify crossbar.VerifyTally
	// PhysicalRows is the total word-line count across all groups, the
	// quantity the hardware model charges for ADC/driver overhead.
	PhysicalRows int
}

// MapMatrix quantizes and programs a weight matrix. weightAt(r, c) returns
// the float weight of output r, input c. seed drives fault injection and
// must differ across layers for independent fault populations.
// retuneDevice swaps the device model under an environment change without
// re-programming the arrays: digital cell state, codes, and the static
// allocation tables are untouched; only the noise sampler and the verify
// pulse-miss probabilities derive from the new device. The caller must hold
// the owning slot's write lock. Structural parameters (BitsPerCell — the
// array level count) cannot change without a remap.
func (m *MappedMatrix) retuneDevice(dev noise.DeviceParams) error {
	if dev.BitsPerCell != m.cfg.Device.BitsPerCell {
		return fmt.Errorf("accel: retune cannot change bits/cell %d -> %d without a remap",
			m.cfg.Device.BitsPerCell, dev.BitsPerCell)
	}
	sampler, err := noise.NewRowSampler(dev)
	if err != nil {
		return err
	}
	m.cfg.Device = dev
	m.sampler = sampler
	m.pulseFail = sampler.PulseFailProbs()
	return nil
}

// Device returns the device model currently driving this matrix's noise
// sampler.
func (m *MappedMatrix) Device() noise.DeviceParams { return m.cfg.Device }

func MapMatrix(cfg Config, outDim, inDim int, weightAt func(r, c int) float64, seed uint64) (*MappedMatrix, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if outDim < 1 || inDim < 1 {
		return nil, fmt.Errorf("accel: empty matrix %dx%d", outDim, inDim)
	}
	sampler, err := noise.NewRowSampler(cfg.Device)
	if err != nil {
		return nil, err
	}

	// Quantize the whole layer with one scale, then encode negatives per
	// the configured scheme: offset binary (one row set plus a digital
	// bias) or differential (separate positive/negative row sets).
	flat := make([]float64, outDim*inDim)
	for r := 0; r < outDim; r++ {
		for c := 0; c < inDim; c++ {
			flat[r*inDim+c] = weightAt(r, c)
		}
	}
	q := fixed.Quantize(flat, cfg.WeightBits)
	internalOut := outDim
	if cfg.Encoding == EncodingDifferential {
		internalOut = 2 * outDim
	}
	biased := make([]uint64, internalOut*inDim)
	for r := 0; r < outDim; r++ {
		for c := 0; c < inDim; c++ {
			v := q.Values[r*inDim+c]
			if cfg.Encoding == EncodingDifferential {
				if v >= 0 {
					biased[(2*r)*inDim+c] = uint64(v)
				} else {
					biased[(2*r+1)*inDim+c] = uint64(-v)
				}
			} else {
				biased[r*inDim+c] = fixed.Bias(v, cfg.WeightBits)
			}
		}
	}

	m := &MappedMatrix{cfg: cfg, sampler: sampler, outDim: outDim, inDim: inDim, scale: q.Scale,
		pulseFail: sampler.PulseFailProbs()}
	rng := stats.SubRNG(cfg.Seed, seed)
	// The verify loop draws pulse misses from its own stream so enabling
	// closed-loop programming does not perturb the fault-injection draws —
	// recorded experiment seeds keep reproducing.
	vrng := stats.SubRNG(cfg.Seed, seed^verifySeedSalt)
	staticCache := map[int]*core.Code{}

	for lo := 0; lo < inDim; lo += cfg.ArraySize {
		hi := min(lo+cfg.ArraySize, inDim)
		ch := &chunk{colLo: lo, colHi: hi}
		for gLo := 0; gLo < internalOut; gLo += cfg.Scheme.GroupOps {
			gHi := min(gLo+cfg.Scheme.GroupOps, internalOut)
			outRows := make([]int, 0, gHi-gLo)
			for r := gLo; r < gHi; r++ {
				outRows = append(outRows, r)
			}
			g, err := m.buildGroup(biased, outRows, lo, hi, rng, vrng, staticCache)
			if err != nil {
				return nil, err
			}
			ch.groups = append(ch.groups, g)
			m.PhysicalRows += g.arr.Rows
		}
		m.chunks = append(m.chunks, ch)
	}
	return m, nil
}

// layoutFor builds the group layout for a lane count under the scheme's
// guard policy.
func (m *MappedMatrix) layoutFor(ops, cols int) core.GroupLayout {
	// Guard bits absorb per-input-bit accumulation over the chunk columns;
	// the input-bit reduction happens digitally after decode, so the
	// column count is the only growth the lanes must absorb.
	guard := core.GuardBitsFor(cols)
	if m.cfg.Scheme.ZeroGuard {
		guard = 0
	}
	return core.GroupLayout{Operands: ops, OperandBits: m.cfg.WeightBits, GuardBits: guard}
}

// groupDataBits is the bit length of the widest packed group value.
func groupDataBits(layout core.GroupLayout) int {
	return (layout.Operands-1)*layout.LaneBits() + layout.OperandBits
}

func (m *MappedMatrix) buildGroup(biased []uint64, outRows []int, colLo, colHi int,
	rng, vrng *rand.Rand, staticCache map[int]*core.Code) (*group, error) {

	cols := colHi - colLo
	layout := m.layoutFor(len(outRows), cols)
	cell := m.cfg.Device.BitsPerCell

	// Pack the lane operands per column.
	packed := make([]core.Word, cols)
	ops := make([]uint64, len(outRows))
	for j := 0; j < cols; j++ {
		for i, r := range outRows {
			ops[i] = biased[r*m.inDim+colLo+j]
		}
		w, err := layout.Pack(ops)
		if err != nil {
			return nil, err
		}
		packed[j] = w
	}

	// Determine the check budget and row count.
	var checkBits int
	var code *core.Code
	switch m.cfg.Scheme.Kind {
	case KindNone:
		checkBits = 0
	case KindStatic:
		c, err := staticCodeFor(staticCache, layout, cell, m.cfg.Scheme.B)
		if err != nil {
			return nil, err
		}
		code = c
		checkBits = c.CheckBits()
	case KindABN:
		checkBits = m.cfg.Scheme.CheckBits
	}
	nRows := (groupDataBits(layout) + checkBits + cell - 1) / cell

	// Hard faults and the giant-RTN-prone population are properties of the
	// physical cells, independent of the code eventually chosen; the
	// characterization pass (Section V-B5) identifies both.
	stuckCells := noise.InjectStuck(rng, nRows, cols, m.cfg.Device)
	giantCells := noise.InjectGiantProne(rng, nRows, cols, m.cfg.Device)

	// Program-verify characterization: stuck cells discovered while
	// writing the weights are compensated digitally by the ECU periphery
	// (their analog deviation is known exactly and subtracted), so they
	// vanish from the error model; only post-deployment endurance
	// failures remain for the split correction tables. The NoECC baseline
	// has no error-handling periphery at all (the paper's premise), so it
	// takes every fault raw.
	if m.cfg.Scheme.Kind != KindNone {
		unknown := stuckCells[:0:0]
		for _, sc := range stuckCells {
			if rng.Float64() >= m.cfg.Device.StuckCharacterizedFrac {
				unknown = append(unknown, sc)
			}
		}
		stuckCells = unknown
	}

	if m.cfg.Scheme.Kind == KindABN {
		code = m.searchABN(packed, stuckCells, giantCells, layout, nRows)
	}

	// Program the array with the final encoding.
	mult := uint64(1)
	if code != nil {
		mult = code.M()
	}
	arr := crossbar.NewArrayWithSpares(nRows, cols, cell, m.cfg.SpareRows)
	for j, w := range packed {
		enc, ok := w.MulU64(mult)
		if !ok {
			return nil, fmt.Errorf("accel: encoding overflow in group")
		}
		if m.cfg.VerifyIters > 0 {
			tally, err := arr.ProgramColumnVerify(j, enc, m.cfg.VerifyIters, m.pulseFail, vrng)
			if err != nil {
				return nil, err
			}
			m.verify.Merge(tally)
		} else if err := arr.ProgramColumn(j, enc); err != nil {
			return nil, err
		}
	}

	rowWords := (nRows + 63) / 64
	g := &group{arr: arr, code: code, layout: layout, outRows: outRows,
		maxLane:      uint64(cols) * (uint64(1)<<layout.OperandBits - 1),
		stuckRows:    make([][]stuckInfo, nRows),
		giantRows:    make([][]giantInfo, nRows),
		stuckPresent: make([]uint64, rowWords),
		giantPresent: make([]uint64, rowWords)}
	for _, sc := range stuckCells {
		delta := int(sc.Level) - int(arr.Level(sc.Row, sc.Col))
		if delta == 0 {
			continue
		}
		g.stuckRows[sc.Row] = append(g.stuckRows[sc.Row], stuckInfo{
			word: sc.Col / 64, bit: uint(sc.Col % 64), delta: delta,
		})
		g.stuckPresent[sc.Row>>6] |= 1 << (uint(sc.Row) & 63)
	}
	for _, gc := range giantCells {
		mag := m.sampler.GiantMagnitude(int(arr.Level(gc.Row, gc.Col)))
		if mag == 0 {
			continue
		}
		if gc.Neg {
			mag = -mag
		}
		g.giantRows[gc.Row] = append(g.giantRows[gc.Row], giantInfo{
			word: gc.Col / 64, bit: uint(gc.Col % 64), mag: mag,
		})
		g.giantPresent[gc.Row>>6] |= 1 << (uint(gc.Row) & 63)
	}
	return g, nil
}

// searchABN runs the per-array A search of Section V-B4: for each candidate
// A the group is (virtually) encoded, the per-row worst-case error
// probabilities derived from the resulting cell states, and the data-aware
// table built; the A covering the most error probability wins.
func (m *MappedMatrix) searchABN(packed []core.Word, stuckCells []noise.StuckCell,
	giantCells []noise.GiantCell, layout core.GroupLayout, nRows int) *core.Code {

	b := m.cfg.Scheme.B
	if b == 0 {
		b = 1
	}
	var candidates []uint64
	if m.cfg.Scheme.FullSearch {
		candidates = core.CandidateAs(m.cfg.Scheme.CheckBits, b)
	} else {
		candidates = core.HardwareCandidateAs(m.cfg.Scheme.CheckBits, b)
	}
	cell := m.cfg.Device.BitsPerCell
	numLevels := 1 << cell

	var best *core.Code
	bestCovered := -1.0
	for _, a := range candidates {
		spec := core.DataAwareSpec{}
		// Virtual encode: per-row level histograms under this A.
		hist := make([][]int, nRows)
		levels := make([][]uint8, len(packed))
		for r := range hist {
			hist[r] = make([]int, numLevels)
		}
		ok := true
		for j, w := range packed {
			enc, fits := w.MulU64(a * b)
			if !fits {
				ok = false
				break
			}
			lv, err := crossbar.SliceLevels(enc, cell, nRows)
			if err != nil {
				ok = false
				break
			}
			levels[j] = lv
			for r, l := range lv {
				hist[r][l]++
			}
		}
		if !ok {
			continue
		}
		rowProbs := make([]noise.StepProbs, nRows)
		for r := 0; r < nRows; r++ {
			rowProbs[r] = m.sampler.PredictStepProbs(noise.WorstCaseRowCounts(hist[r]))
		}
		// Characterized giant-prone cells dominate the row susceptibility;
		// their magnitudes depend on the levels this candidate A encodes.
		// Small events blur across the +/-1 and +/-2 buckets; larger ones
		// register their true rounded step so the table allocates the
		// syndrome that actually occurs.
		flicker := m.cfg.Device.GiantFlickerProb
		magsByRow := make(map[int][]float64)
		extraByRow := make(map[int][]core.ExtraStep)
		for _, gc := range giantCells {
			mag := m.sampler.GiantMagnitude(int(levels[gc.Col][gc.Row]))
			if gc.Neg {
				mag = -mag
			}
			if math.Abs(mag) < 2.5 {
				rowProbs[gc.Row].AddDiscrete(mag, flicker*activeProb)
			} else {
				// Large events quantize to their rounded step, but the
				// residual read jitter occasionally lands one step away;
				// register the neighbours so those reads stay correctable.
				for d := -1; d <= 1; d++ {
					steps := int(math.Round(mag)) + d
					w := stepBlurWeight(mag, steps)
					if steps != 0 && w > 1e-4 {
						extraByRow[gc.Row] = append(extraByRow[gc.Row],
							core.ExtraStep{Steps: steps, P: flicker * activeProb * w})
					}
				}
			}
			magsByRow[gc.Row] = append(magsByRow[gc.Row], mag)
		}
		for r, mags := range magsByRow {
			// Rows hosting several prone cells can produce combined-step
			// errors beyond the +/-2 buckets; register the pairwise sums.
			p2 := flicker * activeProb * flicker * activeProb
			for i := 0; i < len(mags); i++ {
				for j := i + 1; j < len(mags); j++ {
					steps := int(math.Round(mags[i] + mags[j]))
					if steps != 0 && steps != 1 && steps != -1 && steps != 2 && steps != -2 {
						extraByRow[r] = append(extraByRow[r], core.ExtraStep{Steps: steps, P: p2})
					}
				}
			}
		}
		for r := 0; r < nRows; r++ {
			spec.Rows = append(spec.Rows, core.RowErr{
				BitOffset: r * cell,
				StepProb:  rowProbs[r],
				Extra:     extraByRow[r],
			})
		}
		for _, sc := range stuckCells {
			delta := int(sc.Level) - int(levels[sc.Col][sc.Row])
			if delta == 0 {
				continue
			}
			spec.Stuck = append(spec.Stuck, core.StuckErr{
				BitOffset: sc.Row * cell, Steps: delta, PActive: activeProb,
			})
		}
		table := core.BuildDataAwareTable(a, b, spec)
		if table.CoveredProb() > bestCovered {
			best = &core.Code{A: a, B: b, Table: table}
			bestCovered = table.CoveredProb()
		}
	}
	return best
}

// stepBlurWeight is the probability that a discrete error of continuous
// magnitude mag quantizes to the given step under the residual read jitter.
func stepBlurWeight(mag float64, steps int) float64 {
	const sigma = 0.15
	phi := func(x float64) float64 { return 0.5 * (1 + math.Erf(x/(sigma*math.Sqrt2))) }
	s := float64(steps)
	return phi(s+0.5-mag) - phi(s-0.5-mag)
}

// staticCodeFor builds (and caches per lane count) the naive
// single-error-correcting code of Section V-A sized so its static table
// covers every physical row of the encoded group.
func staticCodeFor(cache map[int]*core.Code, layout core.GroupLayout, cell int, b uint64) (*core.Code, error) {
	if c, ok := cache[layout.Operands]; ok {
		return c, nil
	}
	dataBits := groupDataBits(layout)
	check := 1
	for iter := 0; iter < 64; iter++ {
		nRows := (dataBits + check + cell - 1) / cell
		wordBits := nRows*cell + 1 // +/-2 errors on the top row included
		a := core.MinimalSingleErrorA(wordBits, b)
		newCheck := bits.Len64(a*b - 1)
		if newCheck == check {
			table, err := core.NewStaticTable(a, wordBits)
			if err != nil {
				return nil, err
			}
			c := &core.Code{A: a, B: b, Table: table}
			cache[layout.Operands] = c
			return c, nil
		}
		check = newCheck
	}
	return nil, fmt.Errorf("accel: static code sizing did not converge for %d data bits", dataBits)
}

// debugReadHook, when non-nil, receives the pre-correction accumulator and
// post-correction value of every group read (white-box test instrumentation
// only; nil in production).
var debugReadHook func(g *group, raw, corrected core.Word, status core.Status)

// precompute runs the deterministic half of every row read of this group
// for the current input masks: the fused per-plane active counts, their
// noise aggregates, and the ideal ADC outputs, indexed plane*rows+row in
// the scratch arena. It touches no RNG, so hoisting it out of the per-bit
// read loop (and reusing it across ECU retry re-reads, which the old code
// recomputed) cannot move a draw.
func (g *group) precompute(m *MappedMatrix, scr *Scratch) {
	rows := g.arr.Rows
	planes := len(scr.masks)
	counts := scr.countsFor(planes, g.arr.NumLevels())
	aggs, ts := scr.aggTsFor(planes * rows)
	for r := 0; r < rows; r++ {
		g.arr.ActiveCountsMulti(r, scr.masks, counts)
		lv := g.arr.LevelList(r)
		for b := 0; b < planes; b++ {
			agg, t := m.sampler.AggregateRowLevelsIdeal(lv, counts[b])
			ts[b*rows+r] = t
			aggs[b*rows+r] = agg
		}
	}
}

// read performs one group read under input bit plane `bit` of the masks in
// the scratch arena: per-row noisy ADC sampling, shift-and-add reduction,
// ECU correction (with re-reads on detected-uncorrectable errors if
// configured), decode, and lane split. precompute must have run for the
// current masks. The returned lanes alias the arena and are valid until the
// next read.
func (g *group) read(m *MappedMatrix, scr *Scratch, bit int, rng *stats.FastRand, sn *stats.BinomSnapshot, st *Stats) []uint64 {
	var acc core.Word
	var status core.Status
	for attempt := 0; ; attempt++ {
		acc = g.sampleRows(m, scr, bit, rng, sn, st)
		if g.code == nil {
			return g.layout.UnpackInto(scr.lanesFor(g.layout.Operands), acc)
		}
		var fixedW core.Word
		fixedW, status = g.code.Correct(acc)
		if status == core.StatusCorrected && !g.plausible(fixedW, scr) {
			// The corrected quotient violates the lane bound, so the
			// table hit was an aliased miscorrection (Section V-A's
			// "may make the error even worse"); the ECU treats it like
			// any other detected-uncorrectable error.
			fixedW, status = acc, core.StatusDetected
		}
		if status == core.StatusDetected && attempt < m.cfg.Retries {
			st.Retries++
			continue
		}
		if debugReadHook != nil {
			debugReadHook(g, acc, fixedW, status)
		}
		acc = fixedW
		break
	}
	switch status {
	case core.StatusClean:
		st.Clean++
	case core.StatusCorrected:
		st.Corrected++
	case core.StatusDetected:
		st.Detected++
	}
	q, rem := g.code.Decode(acc)
	if rem != 0 {
		st.Residual++
	}
	lanes := g.layout.UnpackInto(scr.lanesFor(g.layout.Operands), q)
	// Digital saturation: a lane can never legitimately exceed the maximum
	// partial sum, so the periphery clamps whatever residual-error garbage
	// a reverted read leaves behind.
	for i, lane := range lanes {
		if lane > g.maxLane {
			lanes[i] = g.maxLane
		}
	}
	return lanes
}

// sampleRows performs the per-row noisy ADC conversions of one group read
// and reduces them with the shift-and-add tree. The deterministic
// quantities come from precompute; only the noise draws happen here, in
// exactly the historical order (binomial+Gaussian core, then giant
// flickers, row-major).
func (g *group) sampleRows(m *MappedMatrix, scr *Scratch, bit int, rng *stats.FastRand, sn *stats.BinomSnapshot, st *Stats) core.Word {
	var acc core.Word
	cell := g.arr.BitsPerCell
	maxOut := g.arr.MaxOutput()
	flicker := m.cfg.Device.GiantFlickerProb
	mask := scr.masks[bit]
	rows := g.arr.Rows
	base := bit * rows
	for r := 0; r < rows; r++ {
		t := scr.ts[base+r]
		dev := m.sampler.SampleAggFast(rng, sn, &scr.aggs[base+r])
		if g.giantPresent[r>>6]>>(uint(r)&63)&1 != 0 {
			for _, gi := range g.giantRows[r] {
				if mask[gi.word]>>gi.bit&1 == 1 && rng.Float64() < flicker {
					dev += gi.mag
				}
			}
		}
		s := t + int(math.Round(dev))
		if g.stuckPresent[r>>6]>>(uint(r)&63)&1 != 0 {
			for _, si := range g.stuckRows[r] {
				if mask[si.word]>>si.bit&1 == 1 {
					s += si.delta
				}
			}
		}
		if s < 0 {
			s = 0
		}
		if s > maxOut {
			s = maxOut
		}
		st.RowReads++
		if s != t {
			st.RowErrors++
		}
		acc.AddShifted(uint64(s), uint(r*cell))
	}
	return acc
}

// plausible reports whether every lane of the decoded correction result
// lies within the physically reachable partial-sum range.
func (g *group) plausible(fixed core.Word, scr *Scratch) bool {
	q, _ := g.code.Decode(fixed)
	if q.BitLen() > g.layout.DataBits() {
		return false
	}
	for _, lane := range g.layout.UnpackInto(scr.plausFor(g.layout.Operands), q) {
		if lane > g.maxLane {
			return false
		}
	}
	return true
}

// MVM computes the noisy in-situ product W*x for a quantized input vector,
// returning dequantized float outputs in a fresh slice. scr is the
// caller-owned scratch arena.
func (m *MappedMatrix) MVM(x []float64, rng *stats.FastRand, scr *Scratch, st *Stats) []float64 {
	out := make([]float64, m.outDim)
	m.MVMInto(out, x, rng, scr, st)
	return out
}

// MVMInto is MVM writing into out (len must be the output dimension). A
// warm arena makes the whole call allocation-free.
func (m *MappedMatrix) MVMInto(out, x []float64, rng *stats.FastRand, scr *Scratch, st *Stats) {
	if len(x) != m.inDim {
		panic(fmt.Sprintf("accel: input length %d, want %d", len(x), m.inDim))
	}
	if len(out) != m.outDim {
		panic(fmt.Sprintf("accel: output length %d, want %d", len(out), m.outDim))
	}
	qx := fixed.QuantizeUnsignedInto(scr.qvals, x, m.cfg.InputBits)
	scr.qvals = qx.Values
	internalOut := m.outDim
	if m.cfg.Encoding == EncodingDifferential {
		internalOut = 2 * m.outDim
	}
	acc := scr.accFor(internalOut)
	sn := m.sampler.BinomSnapshot()
	for _, ch := range m.chunks {
		vals := qx.Values[ch.colLo:ch.colHi]
		scr.masks = crossbar.InputMasksInto(scr.masks, vals, m.cfg.InputBits)
		var vsum int64
		for _, v := range vals {
			vsum += int64(v)
		}
		for _, g := range ch.groups {
			g.precompute(m, scr)
			for b := range scr.masks {
				lanes := g.read(m, scr, b, rng, &sn, st)
				for i, outRow := range g.outRows {
					acc[outRow] += int64(lanes[i]) << uint(b)
				}
			}
		}
		if m.cfg.Encoding == EncodingOffsetBinary {
			// Offset-binary correction: subtract half * sum(inputs) from
			// every internal row served by this chunk (Section VII-D
			// negative-weight handling).
			bias := fixed.BiasCorrection(m.cfg.WeightBits, vsum)
			for r := range acc {
				acc[r] -= bias
			}
		}
	}
	f := m.scale * qx.Scale
	for r := range out {
		if m.cfg.Encoding == EncodingDifferential {
			out[r] = float64(acc[2*r]-acc[2*r+1]) * f
		} else {
			out[r] = float64(acc[r]) * f
		}
	}
}

// StorageOverhead returns the fraction of programmed cell bits that are
// not raw weight data — check bits, lane guard bits, and slice padding.
// The paper's Section V-A/VIII-A comparisons are in these terms: Static16
// spends ~6 check bits per 16-bit operand (~38%), the grouped ABN codes
// 7-10 bits per 128 (~7%).
func (m *MappedMatrix) StorageOverhead() float64 {
	dataBits := m.outDim * m.inDim * m.cfg.WeightBits
	if m.cfg.Encoding == EncodingDifferential {
		dataBits *= 2
	}
	stored := 0
	for _, ch := range m.chunks {
		cols := ch.colHi - ch.colLo
		for _, g := range ch.groups {
			stored += g.arr.Rows * m.cfg.Device.BitsPerCell * cols
		}
	}
	return float64(stored)/float64(dataBits) - 1
}

// NumGroups returns the total coded group count (ECU instances needed).
func (m *MappedMatrix) NumGroups() int {
	n := 0
	for _, ch := range m.chunks {
		n += len(ch.groups)
	}
	return n
}

// Arrays returns every crossbar array backing this matrix, one per coded
// group, so lifetime fault campaigns can inject stuck-at and drift faults
// into the live substrate. Callers must hold the owning layer's write lock
// (Engine.WithArrays) while mutating them.
func (m *MappedMatrix) Arrays() []*crossbar.Array {
	out := make([]*crossbar.Array, 0, m.NumGroups())
	for _, ch := range m.chunks {
		for _, g := range ch.groups {
			out = append(out, g.arr)
		}
	}
	return out
}

// ScrubTarget is one coded group exposed to the patrol scrubber: the array
// to probe and repair, the code whose correction capability decides when a
// row must be spared, and the verify-miss probabilities the closed-loop
// re-programming path draws against.
type ScrubTarget struct {
	Arr *crossbar.Array
	// Code is nil for the NoECC baseline (the scrubber then spares on any
	// uncorrectable deviation, since there is no ECU to lean on).
	Code *core.Code
	// PulseFail is the per-level single-pulse verify-miss probability.
	PulseFail []float64
}

// ScrubTargets returns every coded group of this matrix in deterministic
// (chunk, group) order. Callers must hold the owning layer's write lock
// (Engine.WithScrubTargets) while probing or mutating the arrays.
func (m *MappedMatrix) ScrubTargets() []ScrubTarget {
	out := make([]ScrubTarget, 0, m.NumGroups())
	for _, ch := range m.chunks {
		for _, g := range ch.groups {
			out = append(out, ScrubTarget{Arr: g.arr, Code: g.code, PulseFail: m.pulseFail})
		}
	}
	return out
}

// VerifyStats returns the accumulated program-verify accounting of the
// mapping pass (pulses, convergence histogram, giveups).
func (m *MappedMatrix) VerifyStats() crossbar.VerifyTally {
	return m.verify
}

// Codes returns the distinct code of every group, for inspection and the
// code-anatomy example.
func (m *MappedMatrix) Codes() []*core.Code {
	var out []*core.Code
	for _, ch := range m.chunks {
		for _, g := range ch.groups {
			out = append(out, g.code)
		}
	}
	return out
}
