package accel

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/fixed"
	"repro/internal/nn"
	"repro/internal/stats"
)

// quietDevice disables every noise and fault source.
func quietConfig(s Scheme, bits int) Config {
	cfg := DefaultConfig(s)
	cfg.Device.BitsPerCell = bits
	cfg.Device.PRTN = 0
	cfg.Device.ProgErrFrac = 0
	cfg.Device.SampleFreq = 0
	cfg.Device.GiantProneProb = 0
	cfg.Device.FailureRate = 0
	return cfg
}

func randomMatrix(t *testing.T, out, in int, seed uint64) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0))
	W := make([][]float64, out)
	for r := range W {
		W[r] = make([]float64, in)
		for c := range W[r] {
			W[r][c] = rng.NormFloat64()
		}
	}
	return W
}

// TestNoiselessExactness: with every noise source off, the crossbar MVM of
// every scheme must reproduce the quantized integer dot product exactly,
// for every bits-per-cell setting.
func TestNoiselessExactness(t *testing.T) {
	const out, in = 12, 150
	W := randomMatrix(t, out, in, 1)
	flat := make([]float64, out*in)
	for r := 0; r < out; r++ {
		copy(flat[r*in:], W[r])
	}
	q := fixed.Quantize(flat, 16)
	rng := rand.New(rand.NewPCG(9, 9))
	x := make([]float64, in)
	for i := range x {
		x[i] = rng.Float64()
	}
	qx := fixed.QuantizeUnsigned(x, 8)

	schemes := []Scheme{SchemeNoECC(), SchemeStatic16(), SchemeStatic128(), SchemeABN(7), SchemeABN(10)}
	for _, bits := range []int{1, 2, 3, 4, 5} {
		for _, sch := range schemes {
			cfg := quietConfig(sch, bits)
			m, err := MapMatrix(cfg, out, in, func(r, c int) float64 { return W[r][c] }, 5)
			if err != nil {
				t.Fatalf("bits=%d %s: %v", bits, sch.Name, err)
			}
			var st Stats
			scr := NewScratch()
			y := m.MVM(x, stats.NewFast(1), scr, &st)
			for r := 0; r < out; r++ {
				var ref int64
				for c := 0; c < in; c++ {
					ref += q.Values[r*in+c] * int64(qx.Values[c])
				}
				want := float64(ref) * q.Scale * qx.Scale
				if math.Abs(y[r]-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("bits=%d %s out %d: got %g want %g", bits, sch.Name, r, y[r], want)
				}
			}
			if st.RowErrors != 0 {
				t.Fatalf("bits=%d %s: %d row errors in a noiseless run", bits, sch.Name, st.RowErrors)
			}
		}
	}
}

func TestSchemeValidation(t *testing.T) {
	bad := []Scheme{
		{Name: "x", GroupOps: 0},
		{Name: "x", Kind: KindABN, GroupOps: 8, CheckBits: 2, B: 3},
		{Name: "x", Kind: KindABN, GroupOps: 8, CheckBits: 20, B: 3},
		{Name: "x", Kind: KindStatic, GroupOps: 1, B: 5},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d must fail", i)
		}
	}
	for _, s := range []Scheme{SchemeNoECC(), SchemeStatic16(), SchemeStatic128(), SchemeABN(9)} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(SchemeABN(9))
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	mod := func(f func(*Config)) Config {
		c := DefaultConfig(SchemeABN(9))
		f(&c)
		return c
	}
	bad := []Config{
		mod(func(c *Config) { c.ArraySize = 4 }),
		mod(func(c *Config) { c.WeightBits = 2 }),
		mod(func(c *Config) { c.InputBits = 0 }),
		mod(func(c *Config) { c.Retries = -1 }),
		mod(func(c *Config) { c.Device.BitsPerCell = 0 }),
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d must fail", i)
		}
	}
}

func TestMapMatrixRejectsEmpty(t *testing.T) {
	cfg := DefaultConfig(SchemeNoECC())
	if _, err := MapMatrix(cfg, 0, 5, nil, 1); err == nil {
		t.Fatal("empty matrix must fail")
	}
}

func TestMVMPanicsOnWrongInputLength(t *testing.T) {
	W := randomMatrix(t, 4, 10, 3)
	cfg := quietConfig(SchemeNoECC(), 2)
	m, err := MapMatrix(cfg, 4, 10, func(r, c int) float64 { return W[r][c] }, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.MVM(make([]float64, 3), stats.NewFast(1), NewScratch(), &Stats{})
}

// TestTailGroups checks output dimensions that do not divide the group size.
func TestTailGroups(t *testing.T) {
	const out, in = 11, 200 // 8 + 3 tail; two column chunks
	W := randomMatrix(t, out, in, 7)
	cfg := quietConfig(SchemeABN(9), 2)
	m, err := MapMatrix(cfg, out, in, func(r, c int) float64 { return W[r][c] }, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumGroups() != 4 { // 2 chunks x (one 8-lane + one 3-lane group)
		t.Fatalf("groups = %d, want 4", m.NumGroups())
	}
	x := make([]float64, in)
	for i := range x {
		x[i] = float64(i%7) / 7
	}
	var st Stats
	y := m.MVM(x, stats.NewFast(2), NewScratch(), &st)
	if len(y) != out {
		t.Fatalf("output length %d", len(y))
	}
}

func TestEngineMapAndSessions(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	net := &nn.Network{Name: "t", InShape: []int{6},
		Layers: []nn.Layer{nn.NewDense(6, 9, rng), &nn.ReLU{}, nn.NewDense(9, 3, rng)}}
	cfg := quietConfig(SchemeABN(8), 2)
	eng, err := Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Mapped(0) == nil || eng.Mapped(2) == nil || eng.Mapped(1) != nil {
		t.Fatal("dense layers must be mapped; ReLU must not")
	}
	if eng.NumGroups() < 2 || eng.PhysicalRows <= 0 {
		t.Fatalf("groups=%d rows=%d", eng.NumGroups(), eng.PhysicalRows)
	}
	x := nn.FromSlice([]float64{0.1, 0.5, 0.2, 0.9, 0.3, 0}, 6)
	// Noiseless hardware must agree with software on argmax and logits to
	// quantization accuracy.
	sess := eng.NewSession(1)
	soft := net.Forward(x)
	hard := sess.Forward(x)
	for i := range soft.Data {
		if math.Abs(soft.Data[i]-hard.Data[i]) > 0.05*(1+math.Abs(soft.Data[i])) {
			t.Fatalf("logit %d: soft %g vs hard %g", i, soft.Data[i], hard.Data[i])
		}
	}
	if got := sess.PredictTopK(x, 2); len(got) != 2 {
		t.Fatalf("TopK length %d", len(got))
	}
}

func TestEngineRejectsUnmappableNetwork(t *testing.T) {
	net := &nn.Network{Name: "empty", InShape: []int{4}, Layers: []nn.Layer{&nn.ReLU{}}}
	if _, err := Map(net, DefaultConfig(SchemeNoECC())); err == nil {
		t.Fatal("network without MVM layers must fail")
	}
}

// TestSessionsDeterministic: same seed, same predictions.
func TestSessionsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	net := &nn.Network{Name: "t", InShape: []int{8},
		Layers: []nn.Layer{nn.NewDense(8, 6, rng), &nn.ReLU{}, nn.NewDense(6, 3, rng)}}
	cfg := DefaultConfig(SchemeABN(9))
	cfg.Device.BitsPerCell = 3
	eng, err := Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := nn.FromSlice([]float64{0.2, 0.8, 0.1, 0.4, 0.9, 0.5, 0.3, 0.7}, 8)
	a := eng.NewSession(42)
	b := eng.NewSession(42)
	for i := 0; i < 10; i++ {
		ya, yb := a.Forward(x), b.Forward(x)
		for j := range ya.Data {
			if ya.Data[j] != yb.Data[j] {
				t.Fatal("same-seed sessions must agree")
			}
		}
	}
}

// TestStatsAccounting: noisy runs must report consistent counters.
func TestStatsAccounting(t *testing.T) {
	W := randomMatrix(t, 8, 112, 11)
	cfg := DefaultConfig(SchemeABN(10))
	cfg.Device.BitsPerCell = 4 // enough noise to exercise the ECU
	m, err := MapMatrix(cfg, 8, 112, func(r, c int) float64 { return W[r][c] }, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewFast(3)
	var st Stats
	scr := NewScratch()
	x := make([]float64, 112)
	for i := range x {
		x[i] = rng.Float64()
	}
	for i := 0; i < 50; i++ {
		m.MVM(x, rng, scr, &st)
	}
	if st.RowReads == 0 {
		t.Fatal("no row reads recorded")
	}
	reads := st.Clean + st.Corrected + st.Detected
	if reads == 0 {
		t.Fatal("no ECU outcomes recorded")
	}
	var st2 Stats
	st2.Merge(st)
	if st2 != st {
		t.Fatal("Merge must reproduce the source")
	}
	if r := st.RowErrorRate(); r < 0 || r > 1 {
		t.Fatalf("row error rate %g", r)
	}
	var empty Stats
	if empty.RowErrorRate() != 0 {
		t.Fatal("empty stats rate must be 0")
	}
}

// TestStuckFaultsDegradeNoECCMoreThanABN: under raw hard faults the
// protected grouped scheme must deliver outputs at least as close to the
// reference as the unprotected baseline.
func TestStuckFaultsKeptInCheckByABN(t *testing.T) {
	W := randomMatrix(t, 8, 112, 13)
	flat := make([]float64, 8*112)
	for r := 0; r < 8; r++ {
		copy(flat[r*112:], W[r])
	}
	q := fixed.Quantize(flat, 16)

	drift := func(s Scheme) float64 {
		cfg := DefaultConfig(s)
		cfg.Device.BitsPerCell = 2
		cfg.Device.FailureRate = 0.002
		m, err := MapMatrix(cfg, 8, 112, func(r, c int) float64 { return W[r][c] }, 17)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewFast(23)
		scr := NewScratch()
		var st Stats
		total := 0.0
		xr := rand.New(rand.NewPCG(2, 3))
		for trial := 0; trial < 40; trial++ {
			x := make([]float64, 112)
			for i := range x {
				x[i] = xr.Float64()
			}
			qx := fixed.QuantizeUnsigned(x, 8)
			y := m.MVM(x, rng, scr, &st)
			for r := 0; r < 8; r++ {
				var ref int64
				for c := 0; c < 112; c++ {
					ref += q.Values[r*112+c] * int64(qx.Values[c])
				}
				total += math.Abs(y[r] - float64(ref)*q.Scale*qx.Scale)
			}
		}
		return total
	}
	unprotected := drift(SchemeNoECC())
	protected := drift(SchemeABN(10))
	if protected > unprotected*1.5 {
		t.Fatalf("ABN drift %g should not exceed NoECC drift %g under faults", protected, unprotected)
	}
}

// TestRetriesReduceDetections: the Section VI-A retry policy must strictly
// reduce final detected-uncorrectable outcomes.
func TestRetriesReduceDetections(t *testing.T) {
	W := randomMatrix(t, 8, 112, 19)
	run := func(retries int) uint64 {
		cfg := DefaultConfig(SchemeABN(7))
		cfg.Device.BitsPerCell = 5 // heavy error regime
		cfg.Retries = retries
		m, err := MapMatrix(cfg, 8, 112, func(r, c int) float64 { return W[r][c] }, 29)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewFast(31)
		scr := NewScratch()
		var st Stats
		x := make([]float64, 112)
		for i := range x {
			x[i] = 0.7
		}
		for trial := 0; trial < 60; trial++ {
			m.MVM(x, rng, scr, &st)
		}
		return st.Detected
	}
	d0 := run(0)
	d6 := run(6)
	if d0 == 0 {
		t.Skip("no detections at this operating point")
	}
	if d6 >= d0 {
		t.Fatalf("retries must reduce detections: %d -> %d", d0, d6)
	}
}

func TestCodesAccessor(t *testing.T) {
	W := randomMatrix(t, 8, 60, 23)
	cfg := quietConfig(SchemeABN(9), 2)
	m, err := MapMatrix(cfg, 8, 60, func(r, c int) float64 { return W[r][c] }, 3)
	if err != nil {
		t.Fatal(err)
	}
	codes := m.Codes()
	if len(codes) != m.NumGroups() {
		t.Fatalf("codes %d vs groups %d", len(codes), m.NumGroups())
	}
	for _, c := range codes {
		if c == nil || c.Validate() != nil {
			t.Fatal("every ABN group must carry a valid code")
		}
	}
	mn, err := MapMatrix(quietConfig(SchemeNoECC(), 2), 8, 60, func(r, c int) float64 { return W[r][c] }, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range mn.Codes() {
		if c != nil {
			t.Fatal("NoECC groups must carry no code")
		}
	}
}

// TestConvLayerMapping runs a small CNN through the engine noiselessly.
func TestConvLayerMapping(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	net := &nn.Network{Name: "cnn", InShape: []int{1, 8, 8},
		Layers: []nn.Layer{
			nn.NewConv2D(1, 4, 3, 3, 1, 1, rng), &nn.ReLU{},
			&nn.MaxPool2D{Size: 2}, &nn.Flatten{},
			nn.NewDense(64, 5, rng),
		}}
	cfg := quietConfig(SchemeABN(8), 2)
	eng, err := Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := nn.NewTensor(1, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	sess := eng.NewSession(3)
	soft := net.Forward(x)
	hard := sess.Forward(x)
	for i := range soft.Data {
		if math.Abs(soft.Data[i]-hard.Data[i]) > 0.08*(1+math.Abs(soft.Data[i])) {
			t.Fatalf("logit %d: soft %g hard %g", i, soft.Data[i], hard.Data[i])
		}
	}
}

// TestLayerSchemeOverrides checks the criticality-aware extension: a
// network can protect its output layer with ABN while leaving hidden
// layers unprotected, and the mapping reflects it.
func TestLayerSchemeOverrides(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	net := &nn.Network{Name: "mixed", InShape: []int{6},
		Layers: []nn.Layer{nn.NewDense(6, 9, rng), &nn.ReLU{}, nn.NewDense(9, 3, rng)}}
	cfg := quietConfig(SchemeNoECC(), 2)
	cfg.LayerSchemes = map[int]Scheme{2: SchemeABN(9)}
	eng, err := Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range eng.Mapped(0).Codes() {
		if c != nil {
			t.Fatal("hidden layer must stay unprotected")
		}
	}
	for _, c := range eng.Mapped(2).Codes() {
		if c == nil {
			t.Fatal("output layer must carry ABN codes")
		}
	}
	// Invalid override must be rejected at validation.
	cfg.LayerSchemes[0] = Scheme{Name: "bad", GroupOps: 0}
	if _, err := Map(net, cfg); err == nil {
		t.Fatal("invalid layer override must fail")
	}
}

// TestDifferentialEncodingExactness: the PRIME-style positive/negative row
// split must reproduce the quantized dot product exactly in the noiseless
// case, with no offset-binary bias anywhere.
func TestDifferentialEncodingExactness(t *testing.T) {
	const out, in = 10, 140
	W := randomMatrix(t, out, in, 31)
	flat := make([]float64, out*in)
	for r := 0; r < out; r++ {
		copy(flat[r*in:], W[r])
	}
	q := fixed.Quantize(flat, 16)
	for _, sch := range []Scheme{SchemeNoECC(), SchemeABN(9)} {
		cfg := quietConfig(sch, 2)
		cfg.Encoding = EncodingDifferential
		m, err := MapMatrix(cfg, out, in, func(r, c int) float64 { return W[r][c] }, 5)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(1, 1))
		x := make([]float64, in)
		for i := range x {
			x[i] = rng.Float64()
		}
		qx := fixed.QuantizeUnsigned(x, 8)
		var st Stats
		y := m.MVM(x, stats.NewFast(2), NewScratch(), &st)
		for r := 0; r < out; r++ {
			var ref int64
			for c := 0; c < in; c++ {
				ref += q.Values[r*in+c] * int64(qx.Values[c])
			}
			want := float64(ref) * q.Scale * qx.Scale
			if math.Abs(y[r]-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("%s out %d: got %g want %g", sch.Name, r, y[r], want)
			}
		}
	}
}

// TestDifferentialUsesTwiceTheRows: the encoding trade is explicit — twice
// the row sets, but sparser arrays (a weight occupies only one polarity).
func TestDifferentialUsesTwiceTheRows(t *testing.T) {
	W := randomMatrix(t, 8, 64, 33)
	at := func(r, c int) float64 { return W[r][c] }
	ob, err := MapMatrix(quietConfig(SchemeABN(9), 2), 8, 64, at, 5)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := quietConfig(SchemeABN(9), 2)
	dcfg.Encoding = EncodingDifferential
	diff, err := MapMatrix(dcfg, 8, 64, at, 5)
	if err != nil {
		t.Fatal(err)
	}
	if diff.PhysicalRows != 2*ob.PhysicalRows {
		t.Fatalf("differential rows %d, want %d", diff.PhysicalRows, 2*ob.PhysicalRows)
	}
}

// TestStorageOverheadAccounting checks the Section VIII-A arithmetic: the
// grouped ABN-9 code costs far less storage than the per-operand Static16
// code, and NoECC pays only guard/padding.
func TestStorageOverheadAccounting(t *testing.T) {
	W := randomMatrix(t, 8, 128, 41)
	at := func(r, c int) float64 { return W[r][c] }
	overhead := func(s Scheme) float64 {
		m, err := MapMatrix(quietConfig(s, 2), 8, 128, at, 5)
		if err != nil {
			t.Fatal(err)
		}
		return m.StorageOverhead()
	}
	noecc := overhead(SchemeNoECC())
	abn9 := overhead(SchemeABN(9))
	static16 := overhead(SchemeStatic16())
	if !(noecc < abn9 && abn9 < static16) {
		t.Fatalf("overhead ordering wrong: noecc=%.3f abn9=%.3f static16=%.3f", noecc, abn9, static16)
	}
	// ABN-9 over 128 data bits costs 9 check bits (~7%) plus the 7
	// guard bits per lane this reproduction adds for sound lane splitting
	// (~38%, DESIGN.md §1); zero-guard mode recovers the paper's 7%.
	if abn9-noecc < 0.3 || abn9-noecc > 0.6 {
		t.Fatalf("ABN-9 incremental overhead %.3f unexpected", abn9-noecc)
	}
	zg := SchemeABN(9)
	zg.ZeroGuard = true
	mzg, err := MapMatrix(quietConfig(zg, 2), 8, 128, at, 5)
	if err != nil {
		t.Fatal(err)
	}
	if oh := mzg.StorageOverhead(); oh > 0.10 {
		t.Fatalf("zero-guard overhead %.3f should match the paper's ~7%%", oh)
	}
	if static16-noecc < 0.2 {
		t.Fatalf("Static16 incremental overhead %.3f too small", static16-noecc)
	}
}

// TestSessionDrainStats: DrainStats must hand back exactly what accumulated
// since the previous drain and leave the session clean.
func TestSessionDrainStats(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	net := &nn.Network{Name: "t", InShape: []int{8},
		Layers: []nn.Layer{nn.NewDense(8, 6, rng), &nn.ReLU{}, nn.NewDense(6, 3, rng)}}
	eng, err := Map(net, DefaultConfig(SchemeABN(8)))
	if err != nil {
		t.Fatal(err)
	}
	x := nn.FromSlice([]float64{0.2, 0.8, 0.1, 0.4, 0.9, 0.5, 0.3, 0.7}, 8)
	sess := eng.NewSession(1)
	sess.Forward(x)
	first := sess.DrainStats()
	if first.RowReads == 0 {
		t.Fatal("drain returned empty stats after a forward pass")
	}
	if sess.Stats != (Stats{}) {
		t.Fatalf("drain left residue: %+v", sess.Stats)
	}
	sess.Forward(x)
	second := sess.DrainStats()
	if second.RowReads != first.RowReads {
		t.Fatalf("identical passes must cost identical row reads: %d vs %d",
			first.RowReads, second.RowReads)
	}
}

// TestSharedStatsConcurrent: concurrent Add/Snapshot must tally exactly
// (run under -race this also certifies the locking).
func TestSharedStatsConcurrent(t *testing.T) {
	var ss SharedStats
	var wg sync.WaitGroup
	const goroutines, rounds = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ss.Add(Stats{RowReads: 2, Corrected: 1})
				_ = ss.Snapshot()
			}
		}()
	}
	wg.Wait()
	got := ss.Snapshot()
	if got.RowReads != 2*goroutines*rounds || got.Corrected != goroutines*rounds {
		t.Fatalf("lost updates: %+v", got)
	}
}

func TestParseScheme(t *testing.T) {
	for name, wantKind := range map[string]SchemeKind{
		"NoECC": KindNone, "noecc": KindNone, "Static16": KindStatic,
		"static128": KindStatic, "ABN-9": KindABN, "abn-7": KindABN,
	} {
		s, err := ParseScheme(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if s.Kind != wantKind {
			t.Errorf("%s: kind %v, want %v", name, s.Kind, wantKind)
		}
	}
	if s, _ := ParseScheme("ABN-10"); s.CheckBits != 10 {
		t.Errorf("ABN-10 check bits %d", s.CheckBits)
	}
	for _, bad := range []string{"", "ABN-", "ABN-3", "ABN-99", "hamming", "abn-x"} {
		if _, err := ParseScheme(bad); err == nil {
			t.Errorf("%q must not parse", bad)
		}
	}
}
