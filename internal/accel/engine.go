package accel

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"repro/internal/crossbar"
	"repro/internal/nn"
	"repro/internal/noise"
	"repro/internal/stats"
)

// remapSeedStride separates the fault-injection seed of successive remap
// epochs of one layer from every other layer's seed: layer indices occupy
// the low bits, the epoch the high ones.
const remapSeedStride = uint64(1) << 32

// layerSlot is the serving-time indirection for one mapped layer. Sessions
// read the current MappedMatrix through the slot so the engine can swap it
// (Remap) or bypass it (software fallback) while traffic is in flight. The
// RWMutex also serializes online fault injection against concurrent reads.
type layerSlot struct {
	mu sync.RWMutex
	m  *MappedMatrix
	// remaps counts how often this layer was re-programmed onto spares.
	remaps int
	// fallback routes the layer to the digital fixed-point path.
	fallback bool
	soft     *SoftMatrix
	// dev is the currently active device model — the map-time device until
	// an environment Retune swaps it. Remaps rebuild under this device so a
	// repair does not silently revert an excursion adjustment.
	dev noise.DeviceParams
	// mapDev is the device model the current mapping was *built* under (set
	// at Map and Remap, untouched by Retune). The A-code search is
	// device-dependent, so a restart must rebuild the mapping under this
	// device — not the retuned one — to reproduce the programmed arrays
	// bit-identically, then retune to dev.
	mapDev noise.DeviceParams
	// rebuild re-runs the mapping with a given device model and
	// fault-injection seed.
	rebuild func(dev noise.DeviceParams, seed uint64) (*MappedMatrix, error)
	// mkSoft builds the fallback matrix lazily on first degradation.
	mkSoft func() (*SoftMatrix, error)
}

// mvm evaluates one matrix-vector product through the slot's current path.
// The returned slice aliases the scratch arena (or, on the software
// fallback, a fresh allocation) and is valid until the arena's next MVM.
func (sl *layerSlot) mvm(x []float64, rng *stats.FastRand, scr *Scratch, st *Stats) []float64 {
	sl.mu.RLock()
	defer sl.mu.RUnlock()
	if sl.fallback {
		st.SoftMVMs++
		return sl.soft.MVM(x)
	}
	out := scr.outFor(sl.m.outDim)
	sl.m.MVMInto(out, x, rng, scr, st)
	return out
}

// Engine holds a network whose dense and convolutional layers have been
// mapped onto simulated crossbar hardware. Mapping (quantization, fault
// injection, A search, table construction, programming) happens once;
// Sessions then evaluate inputs concurrently against the shared arrays.
// Per-layer slots let the engine re-program (Remap) or degrade
// (SetFallback) individual layers while sessions keep serving.
type Engine struct {
	cfg Config
	net *nn.Network
	// slots is indexed by layer position in the network (dense, so the
	// per-MVM slot lookup is a bounds check instead of a map probe); nil
	// entries are unmapped layers.
	slots []*layerSlot
	// mapped counts the non-nil slots.
	mapped int
	// partition, when non-nil, restricts the engine to this subset of the
	// network's mappable layers (a shard). Replicate then reprograms only
	// these layers, so a shard's replicas never pay for sibling layers.
	partition []int
	// PhysicalRows is the total mapped word-line count (hardware-model
	// bookkeeping).
	PhysicalRows int
}

// slot returns the layer's slot, nil when out of range or unmapped.
func (e *Engine) slot(layer int) *layerSlot {
	if layer < 0 || layer >= len(e.slots) {
		return nil
	}
	return e.slots[layer]
}

// Map programs every MVM-capable layer of the network onto crossbars.
func Map(net *nn.Network, cfg Config) (*Engine, error) {
	return MapLayers(net, cfg, nil)
}

// MapLayers programs a subset of the network's MVM-capable layers onto
// crossbars (nil = every mappable layer, exactly Map). A layer's arrays
// depend only on (cfg, layer index) — the per-layer map seed is the global
// layer index and fault populations are drawn per layer — so mapping a
// subset programs bit-identical arrays to mapping the whole network. That
// is the property shard partitioning leans on: a shard's slice of layers
// is indistinguishable, cell for cell, from the same layers inside a
// monolithic engine.
func MapLayers(net *nn.Network, cfg Config, layers []int) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var want map[int]bool
	if layers != nil {
		want = make(map[int]bool, len(layers))
		for _, li := range layers {
			if li < 0 || li >= len(net.Layers) {
				return nil, fmt.Errorf("accel: partition layer %d out of range for network %s", li, net.Name)
			}
			want[li] = true
		}
	}
	e := &Engine{cfg: cfg, net: net, slots: make([]*layerSlot, len(net.Layers))}
	if layers != nil {
		e.partition = append([]int(nil), layers...)
	}
	for i, l := range net.Layers {
		if want != nil && !want[i] {
			continue
		}
		layerCfg := cfg
		if override, ok := cfg.LayerSchemes[i]; ok {
			layerCfg.Scheme = override
		}
		var outDim, inDim int
		var weightAt func(r, c int) float64
		switch v := l.(type) {
		case *nn.Dense:
			outDim, inDim, weightAt = v.Out, v.In, v.WeightAt
		case *nn.Conv2D:
			outDim, inDim, weightAt = v.OutC, v.PatchLen(), v.WeightAt
		default:
			if want != nil {
				return nil, fmt.Errorf("accel: partition layer %d (%s) is not mappable", i, l.Name())
			}
			continue
		}
		lc, oD, iD, wA := layerCfg, outDim, inDim, weightAt
		sl := &layerSlot{
			dev:    layerCfg.Device,
			mapDev: layerCfg.Device,
			rebuild: func(dev noise.DeviceParams, seed uint64) (*MappedMatrix, error) {
				c := lc
				c.Device = dev
				return MapMatrix(c, oD, iD, wA, seed)
			},
			mkSoft: func() (*SoftMatrix, error) {
				return NewSoftMatrix(oD, iD, lc.WeightBits, lc.InputBits, wA)
			},
		}
		m, err := sl.rebuild(sl.dev, uint64(i))
		if err != nil {
			return nil, fmt.Errorf("accel: mapping layer %d (%s): %w", i, l.Name(), err)
		}
		sl.m = m
		e.slots[i] = sl
		e.mapped++
		e.PhysicalRows += m.PhysicalRows
	}
	if e.mapped == 0 {
		return nil, fmt.Errorf("accel: network %s has no mappable layers", net.Name)
	}
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Network returns the network the engine was mapped from. Callers must
// treat it as read-only while sessions are live.
func (e *Engine) Network() *nn.Network { return e.net }

// Mapped returns the mapped matrix of a layer index (nil if unmapped).
func (e *Engine) Mapped(layer int) *MappedMatrix {
	sl := e.slot(layer)
	if sl == nil {
		return nil
	}
	sl.mu.RLock()
	defer sl.mu.RUnlock()
	return sl.m
}

// Layers returns the mapped layer indices in ascending order.
func (e *Engine) Layers() []int {
	out := make([]int, 0, e.mapped)
	for i, sl := range e.slots {
		if sl != nil {
			out = append(out, i)
		}
	}
	return out
}

// NumGroups returns the total coded-group count across all layers.
func (e *Engine) NumGroups() int {
	n := 0
	for _, sl := range e.slots {
		if sl == nil {
			continue
		}
		sl.mu.RLock()
		n += sl.m.NumGroups()
		sl.mu.RUnlock()
	}
	return n
}

// WithArrays calls f with the crossbar arrays of one mapped layer while
// holding the layer's write lock, so callers (the fault campaign runner)
// can inject stuck-at or drift faults without racing in-flight reads.
func (e *Engine) WithArrays(layer int, f func(arrays []*crossbar.Array)) error {
	sl := e.slot(layer)
	if sl == nil {
		return fmt.Errorf("accel: layer %d is not mapped", layer)
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	f(sl.m.Arrays())
	return nil
}

// WithScrubTargets calls f with the coded groups of one mapped layer while
// holding the layer's write lock, so the patrol scrubber can probe rows,
// re-program drifted cells, and spare worn rows without racing in-flight
// reads (or a concurrent Remap, which takes the same lock).
func (e *Engine) WithScrubTargets(layer int, f func(targets []ScrubTarget)) error {
	sl := e.slot(layer)
	if sl == nil {
		return fmt.Errorf("accel: layer %d is not mapped", layer)
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	f(sl.m.ScrubTargets())
	return nil
}

// VerifyStats aggregates the program-verify accounting of every layer's
// current mapping (pulses, convergence histogram, giveups).
func (e *Engine) VerifyStats() crossbar.VerifyTally {
	var t crossbar.VerifyTally
	for _, sl := range e.slots {
		if sl == nil {
			continue
		}
		sl.mu.RLock()
		t.Merge(sl.m.VerifyStats())
		sl.mu.RUnlock()
	}
	return t
}

// Remap re-programs one layer's weight matrix onto spare crossbar arrays:
// the mapping pipeline (quantization, fault characterization, A search,
// table construction, programming) reruns against a fresh fault population
// drawn from a disjoint seed stream, modeling the controller retiring the
// faulted arrays and moving the layer to spares. Faults injected online
// into the retired arrays are gone; the new arrays carry only their own
// map-time draw. The layer is unavailable to readers for the duration of
// the reprogram (they block on the slot lock, as real reprogramming stalls
// reads). Remap also clears the software-fallback flag: fresh hardware is
// trusted until the monitor says otherwise.
func (e *Engine) Remap(layer int) error {
	sl := e.slot(layer)
	if sl == nil {
		return fmt.Errorf("accel: layer %d is not mapped", layer)
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	epoch := sl.remaps + 1
	m, err := sl.rebuild(sl.dev, uint64(layer)+uint64(epoch)*remapSeedStride)
	if err != nil {
		return fmt.Errorf("accel: remapping layer %d: %w", layer, err)
	}
	sl.m = m
	sl.remaps = epoch
	sl.mapDev = sl.dev
	sl.fallback = false
	return nil
}

// Retune applies an environment-adjusted device model to every mapped
// layer without re-programming: per slot, under the write lock, the noise
// sampler and verify-miss table are rebuilt from the new device while the
// digital cell state, codes, and static tables stay put — a scenario
// engine's temperature or RTN excursion takes effect between in-flight
// MVMs with zero hot-path cost. Subsequent remaps rebuild under the
// retuned device. Structural parameters (BitsPerCell, which fixes the
// array level count) cannot change without a remap.
func (e *Engine) Retune(dev noise.DeviceParams) error {
	if err := dev.Validate(); err != nil {
		return err
	}
	for i, sl := range e.slots {
		if sl == nil {
			continue
		}
		sl.mu.Lock()
		err := sl.m.retuneDevice(dev)
		if err == nil {
			sl.dev = dev
		}
		sl.mu.Unlock()
		if err != nil {
			return fmt.Errorf("accel: retuning layer %d: %w", i, err)
		}
	}
	return nil
}

// ActiveDevice returns the device model currently driving the noise
// sampler — the map-time device until a Retune swaps it.
func (e *Engine) ActiveDevice() noise.DeviceParams {
	for _, sl := range e.slots {
		if sl == nil {
			continue
		}
		sl.mu.RLock()
		dev := sl.dev
		sl.mu.RUnlock()
		return dev
	}
	return e.cfg.Device
}

// RemapCount returns how many times a layer has been re-programmed.
func (e *Engine) RemapCount(layer int) int {
	sl := e.slot(layer)
	if sl == nil {
		return 0
	}
	sl.mu.RLock()
	defer sl.mu.RUnlock()
	return sl.remaps
}

// SetFallback routes a layer to (or back from) the digital fixed-point
// fallback path — the terminal rung of the recovery ladder. The fallback
// matrix is built lazily on first use.
func (e *Engine) SetFallback(layer int, on bool) error {
	sl := e.slot(layer)
	if sl == nil {
		return fmt.Errorf("accel: layer %d is not mapped", layer)
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if on && sl.soft == nil {
		soft, err := sl.mkSoft()
		if err != nil {
			return fmt.Errorf("accel: building fallback for layer %d: %w", layer, err)
		}
		sl.soft = soft
	}
	sl.fallback = on
	return nil
}

// Fallback reports whether a layer is served by the software path.
func (e *Engine) Fallback(layer int) bool {
	sl := e.slot(layer)
	if sl == nil {
		return false
	}
	sl.mu.RLock()
	defer sl.mu.RUnlock()
	return sl.fallback
}

// DegradedLayers returns the indices of layers in software fallback, in
// ascending order.
func (e *Engine) DegradedLayers() []int {
	var out []int
	for i, sl := range e.slots {
		if sl == nil {
			continue
		}
		sl.mu.RLock()
		if sl.fallback {
			out = append(out, i)
		}
		sl.mu.RUnlock()
	}
	return out
}

// Session is one concurrent evaluation stream: it owns an RNG, a scratch
// arena, a forward-pass clone of the network, and its own statistics.
type Session struct {
	engine *Engine
	net    *nn.Network
	// src is the PCG state behind rng; Reseed rewinds it in place instead
	// of allocating a fresh generator per work item.
	src *rand.PCG
	rng *stats.FastRand
	scr *Scratch
	// mvms is indexed by layer (nil for unmapped layers).
	mvms []nn.MVMFunc
	// layer is indexed by layer (nil for unmapped layers).
	layer []*Stats
	// Stats accumulates ECU and row-error tallies across all inputs this
	// session evaluated.
	Stats Stats
	// fb and ba are the lazily armed batched-forward machinery (see
	// batch.go): the lockstep forward batcher over per-lane network clones
	// and the batch-shaped scratch arena. Nil until the first ForwardBatch.
	fb *nn.ForwardBatcher
	ba *BatchArena
}

// NewSession creates an evaluation stream with its own noise RNG.
func (e *Engine) NewSession(seed uint64) *Session {
	src := stats.SubPCG(e.cfg.Seed, seed)
	s := &Session{
		engine: e,
		net:    e.net.CloneForInference(),
		src:    src,
		rng:    stats.NewFastRand(src),
		scr:    NewScratch(),
		mvms:   make([]nn.MVMFunc, len(e.slots)),
		layer:  make([]*Stats, len(e.slots)),
	}
	s.net.EnableBufferReuse()
	for idx, sl := range e.slots {
		if sl == nil {
			continue
		}
		slot := sl
		ls := &Stats{}
		s.layer[idx] = ls
		s.mvms[idx] = func(x []float64) []float64 {
			pre := *ls
			out := slot.mvm(x, s.rng, s.scr, ls)
			s.Stats.Merge(ls.Diff(pre))
			return out
		}
	}
	return s
}

// Reseed repoints the session's noise stream, so callers can key the
// stream to work items (for example one stream per test image) and make
// results independent of how work is distributed across sessions.
func (s *Session) Reseed(stream uint64) {
	stats.ReseedSub(s.src, s.engine.cfg.Seed, stream)
}

// DrainStats returns the statistics accumulated since the last drain and
// resets them (per-layer tallies included), so a serving worker can
// attribute ECU activity to individual requests. It must be called from
// the goroutine that owns the session.
func (s *Session) DrainStats() Stats {
	st := s.Stats
	s.Stats = Stats{}
	for _, ls := range s.layer {
		if ls != nil {
			*ls = Stats{}
		}
	}
	return st
}

// DrainLayerStats returns the per-layer statistics accumulated since the
// last drain and resets them (the session totals in Stats are left alone —
// drain those separately with DrainStats before re-use). Layers with no
// activity are omitted. It must be called from the goroutine that owns the
// session.
func (s *Session) DrainLayerStats() map[int]Stats {
	out := make(map[int]Stats, len(s.layer))
	s.DrainLayerStatsInto(out)
	return out
}

// DrainLayerStatsInto is DrainLayerStats draining into a caller-owned map
// (cleared first), so a serving worker can reuse one map per request
// instead of allocating. The caller must not retain values across the next
// drain unless it copies them — Stats is a value type, so ordinary reads
// and Merge calls are safe.
func (s *Session) DrainLayerStatsInto(out map[int]Stats) {
	clear(out)
	for idx, ls := range s.layer {
		if ls != nil && *ls != (Stats{}) {
			out[idx] = *ls
			*ls = Stats{}
		}
	}
}

// Forward runs one noisy inference pass.
func (s *Session) Forward(x *nn.Tensor) *nn.Tensor {
	return s.net.ForwardWith(x, s.mvms)
}

// Predict returns the argmax class under the noisy hardware.
func (s *Session) Predict(x *nn.Tensor) int {
	return s.Forward(x).ArgMax()
}

// PredictTopK returns the k highest-scoring classes.
func (s *Session) PredictTopK(x *nn.Tensor, k int) []int {
	return s.Forward(x).TopK(k)
}
