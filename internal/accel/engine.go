package accel

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/nn"
	"repro/internal/stats"
)

// Engine holds a network whose dense and convolutional layers have been
// mapped onto simulated crossbar hardware. Mapping (quantization, fault
// injection, A search, table construction, programming) happens once;
// Sessions then evaluate inputs concurrently against the shared arrays.
type Engine struct {
	cfg    Config
	net    *nn.Network
	mapped map[int]*MappedMatrix
	// PhysicalRows is the total mapped word-line count (hardware-model
	// bookkeeping).
	PhysicalRows int
}

// Map programs every MVM-capable layer of the network onto crossbars.
func Map(net *nn.Network, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, net: net, mapped: make(map[int]*MappedMatrix)}
	for i, l := range net.Layers {
		layerCfg := cfg
		if override, ok := cfg.LayerSchemes[i]; ok {
			layerCfg.Scheme = override
		}
		var m *MappedMatrix
		var err error
		switch v := l.(type) {
		case *nn.Dense:
			m, err = MapMatrix(layerCfg, v.Out, v.In, v.WeightAt, uint64(i))
		case *nn.Conv2D:
			m, err = MapMatrix(layerCfg, v.OutC, v.PatchLen(), v.WeightAt, uint64(i))
		default:
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("accel: mapping layer %d (%s): %w", i, l.Name(), err)
		}
		e.mapped[i] = m
		e.PhysicalRows += m.PhysicalRows
	}
	if len(e.mapped) == 0 {
		return nil, fmt.Errorf("accel: network %s has no mappable layers", net.Name)
	}
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Mapped returns the mapped matrix of a layer index (nil if unmapped).
func (e *Engine) Mapped(layer int) *MappedMatrix { return e.mapped[layer] }

// NumGroups returns the total coded-group count across all layers.
func (e *Engine) NumGroups() int {
	n := 0
	for _, m := range e.mapped {
		n += m.NumGroups()
	}
	return n
}

// Session is one concurrent evaluation stream: it owns an RNG, scratch
// buffers, a forward-pass clone of the network, and its own statistics.
type Session struct {
	engine *Engine
	net    *nn.Network
	rng    *rand.Rand
	counts []int
	mvms   map[int]nn.MVMFunc
	// Stats accumulates ECU and row-error tallies across all inputs this
	// session evaluated.
	Stats Stats
}

// NewSession creates an evaluation stream with its own noise RNG.
func (e *Engine) NewSession(seed uint64) *Session {
	s := &Session{
		engine: e,
		net:    e.net.CloneForInference(),
		rng:    stats.SubRNG(e.cfg.Seed, seed),
		counts: make([]int, e.cfg.Device.NumLevels()),
	}
	s.mvms = make(map[int]nn.MVMFunc, len(e.mapped))
	for idx, m := range e.mapped {
		mm := m
		s.mvms[idx] = func(x []float64) []float64 {
			return mm.MVM(x, s.rng, s.counts, &s.Stats)
		}
	}
	return s
}

// Reseed repoints the session's noise stream, so callers can key the
// stream to work items (for example one stream per test image) and make
// results independent of how work is distributed across sessions.
func (s *Session) Reseed(stream uint64) {
	s.rng = stats.SubRNG(s.engine.cfg.Seed, stream)
}

// DrainStats returns the statistics accumulated since the last drain and
// resets them, so a serving worker can attribute ECU activity to individual
// requests. It must be called from the goroutine that owns the session.
func (s *Session) DrainStats() Stats {
	st := s.Stats
	s.Stats = Stats{}
	return st
}

// Forward runs one noisy inference pass.
func (s *Session) Forward(x *nn.Tensor) *nn.Tensor {
	return s.net.ForwardWith(x, s.mvms)
}

// Predict returns the argmax class under the noisy hardware.
func (s *Session) Predict(x *nn.Tensor) int {
	return s.Forward(x).ArgMax()
}

// PredictTopK returns the k highest-scoring classes.
func (s *Session) PredictTopK(x *nn.Tensor, k int) []int {
	return s.Forward(x).TopK(k)
}
