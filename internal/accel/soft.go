package accel

import (
	"fmt"

	"repro/internal/fixed"
)

// SoftMatrix is the digital fixed-point fallback for one mapped layer: the
// same quantization the crossbar mapping applies (signed weights, unsigned
// bit-serial inputs), evaluated exactly in integer arithmetic with no
// analog substrate underneath. It is the last rung of the recovery ladder —
// when a layer's crossbars have degraded past what remapping can repair,
// the engine serves that layer from here at quantization-only accuracy
// loss, trading the in-situ speedup for a correct answer.
type SoftMatrix struct {
	outDim, inDim int
	weights       []int64 // row-major quantized weights
	scale         float64
	inputBits     int
}

// NewSoftMatrix quantizes a weight matrix for the fallback path.
func NewSoftMatrix(outDim, inDim, weightBits, inputBits int, weightAt func(r, c int) float64) (*SoftMatrix, error) {
	if outDim < 1 || inDim < 1 {
		return nil, fmt.Errorf("accel: empty fallback matrix %dx%d", outDim, inDim)
	}
	flat := make([]float64, outDim*inDim)
	for r := 0; r < outDim; r++ {
		for c := 0; c < inDim; c++ {
			flat[r*inDim+c] = weightAt(r, c)
		}
	}
	q := fixed.Quantize(flat, weightBits)
	return &SoftMatrix{
		outDim: outDim, inDim: inDim,
		weights: q.Values, scale: q.Scale, inputBits: inputBits,
	}, nil
}

// MVM computes the exact fixed-point product W*x and dequantizes.
func (m *SoftMatrix) MVM(x []float64) []float64 {
	if len(x) != m.inDim {
		panic(fmt.Sprintf("accel: fallback input length %d, want %d", len(x), m.inDim))
	}
	qx := fixed.QuantizeUnsigned(x, m.inputBits)
	out := make([]float64, m.outDim)
	f := m.scale * qx.Scale
	for r := 0; r < m.outDim; r++ {
		row := m.weights[r*m.inDim : (r+1)*m.inDim]
		var acc int64
		for c, w := range row {
			acc += w * int64(qx.Values[c])
		}
		out[r] = float64(acc) * f
	}
	return out
}
