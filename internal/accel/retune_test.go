package accel

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/nn"
)

func retuneTestEngine(t *testing.T) (*Engine, *nn.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewPCG(31, 7))
	net := &nn.Network{Name: "retune", InShape: []int{10},
		Layers: []nn.Layer{nn.NewDense(10, 12, rng), &nn.ReLU{}, nn.NewDense(12, 4, rng)}}
	eng, err := Map(net, quietConfig(SchemeABN(8), 2))
	if err != nil {
		t.Fatal(err)
	}
	x := nn.FromSlice([]float64{0.1, 0.9, 0.3, 0.5, 0.2, 0.7, 0.4, 0.8, 0.6, 0.05}, 10)
	return eng, x
}

// Retuning to a device and back must restore bit-identical outputs: the
// sampler is a pure function of the device parameters, so the environment
// loop composes with the (engine, seed) determinism contract.
func TestRetuneRoundTripDeterminism(t *testing.T) {
	eng, x := retuneTestEngine(t)
	base := eng.Config().Device

	sess := eng.NewSession(1)
	sess.Reseed(77)
	want := append([]float64(nil), sess.Forward(x).Data...)

	hot := base
	hot.TempK += 60
	hot.PRTN = 0.5
	hot.GiantFlickerProb = 0.5
	if err := eng.Retune(hot); err != nil {
		t.Fatal(err)
	}
	if got := eng.ActiveDevice(); got.TempK != base.TempK+60 {
		t.Fatalf("ActiveDevice TempK = %g, want %g", got.TempK, base.TempK+60)
	}
	sess.Reseed(77)
	_ = sess.Forward(x)

	if err := eng.Retune(base); err != nil {
		t.Fatal(err)
	}
	sess.Reseed(77)
	got := sess.Forward(x).Data
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("retune round trip changed output: %v vs %v", got, want)
	}
}

// A remap after a retune must rebuild under the retuned device, not
// silently revert the excursion adjustment.
func TestRemapKeepsRetunedDevice(t *testing.T) {
	eng, _ := retuneTestEngine(t)
	hot := eng.Config().Device
	hot.TempK += 40
	if err := eng.Retune(hot); err != nil {
		t.Fatal(err)
	}
	layer := eng.Layers()[0]
	if err := eng.Remap(layer); err != nil {
		t.Fatal(err)
	}
	if got := eng.Mapped(layer).Device().TempK; got != hot.TempK {
		t.Fatalf("remapped layer device TempK = %g, want %g", got, hot.TempK)
	}
}

// Structural parameters cannot change without a remap, and invalid devices
// are rejected before any slot is touched.
func TestRetuneRejectsStructuralAndInvalid(t *testing.T) {
	eng, _ := retuneTestEngine(t)
	bad := eng.Config().Device
	bad.BitsPerCell = 4
	if err := eng.Retune(bad); err == nil {
		t.Fatal("want error for bits/cell change")
	}
	invalid := eng.Config().Device
	invalid.PRTN = 2
	if err := eng.Retune(invalid); err == nil {
		t.Fatal("want error for invalid device")
	}
}
