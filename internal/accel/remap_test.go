package accel

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/nn"
)

func remapTestEngine(t *testing.T) (*Engine, *nn.Network, *nn.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewPCG(21, 21))
	net := &nn.Network{Name: "remap", InShape: []int{10},
		Layers: []nn.Layer{nn.NewDense(10, 12, rng), &nn.ReLU{}, nn.NewDense(12, 4, rng)}}
	cfg := quietConfig(SchemeABN(8), 2)
	eng, err := Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := nn.FromSlice([]float64{0.1, 0.9, 0.3, 0.5, 0.2, 0.7, 0.4, 0.8, 0.6, 0.05}, 10)
	return eng, net, x
}

// saturateLayer pins every cell of a layer's arrays to the top level —
// a catastrophic wear-out no ECU can hide.
func saturateLayer(t *testing.T, eng *Engine, layer int) {
	t.Helper()
	err := eng.WithArrays(layer, func(arrays []*crossbar.Array) {
		for _, a := range arrays {
			top := uint8(a.NumLevels() - 1)
			for r := 0; r < a.Rows; r++ {
				for c := 0; c < a.Cols; c++ {
					a.SetStuck(r, c, top)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRemapClearsInjectedFaults: online faults corrupt the layer's output
// and light up the ECU; re-programming onto spares restores exactness.
func TestRemapClearsInjectedFaults(t *testing.T) {
	eng, _, x := remapTestEngine(t)
	sess := eng.NewSession(1)
	clean := append([]float64(nil), sess.Forward(x).Data...)
	sess.DrainStats()

	saturateLayer(t, eng, 0)
	faulted := sess.Forward(x)
	st := sess.DrainStats()
	if st.Detected == 0 && st.Corrected == 0 {
		t.Fatal("saturating a layer produced no ECU activity")
	}
	diverged := false
	for i := range clean {
		if math.Abs(clean[i]-faulted.Data[i]) > 1e-9 {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("saturating a layer did not change its output")
	}

	if err := eng.Remap(0); err != nil {
		t.Fatal(err)
	}
	if eng.RemapCount(0) != 1 {
		t.Fatalf("remap count %d, want 1", eng.RemapCount(0))
	}
	healed := sess.Forward(x)
	st = sess.DrainStats()
	for i := range clean {
		if math.Abs(clean[i]-healed.Data[i]) > 1e-9 {
			t.Fatalf("output %d after remap: %g, want %g", i, healed.Data[i], clean[i])
		}
	}
	if st.Detected != 0 {
		t.Fatalf("%d detected reads after remap on quiet hardware", st.Detected)
	}
}

// TestRemapDeterministicByEpoch: the remap seed is a pure function of
// (layer, epoch), so two engines that take the same recovery path end up
// with identical hardware.
func TestRemapDeterministicByEpoch(t *testing.T) {
	engA, _, x := remapTestEngine(t)
	engB, _, _ := remapTestEngine(t)
	for _, eng := range []*Engine{engA, engB} {
		if err := eng.Remap(0); err != nil {
			t.Fatal(err)
		}
		if err := eng.Remap(2); err != nil {
			t.Fatal(err)
		}
	}
	ya := engA.NewSession(3).Forward(x)
	yb := engB.NewSession(3).Forward(x)
	for i := range ya.Data {
		if ya.Data[i] != yb.Data[i] {
			t.Fatalf("remapped engines diverge at output %d: %g vs %g", i, ya.Data[i], yb.Data[i])
		}
	}
}

// TestFallbackServesSoftware: a degraded layer answers from the digital
// fixed-point path — counted in SoftMVMs, immune to hardware faults, and
// within quantization distance of the float reference.
func TestFallbackServesSoftware(t *testing.T) {
	eng, net, x := remapTestEngine(t)
	saturateLayer(t, eng, 0)
	saturateLayer(t, eng, 2)
	if err := eng.SetFallback(0, true); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetFallback(2, true); err != nil {
		t.Fatal(err)
	}
	if got := eng.DegradedLayers(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("degraded layers %v, want [0 2]", got)
	}

	sess := eng.NewSession(1)
	soft := net.Forward(x)
	hard := sess.Forward(x)
	for i := range soft.Data {
		if math.Abs(soft.Data[i]-hard.Data[i]) > 0.05*(1+math.Abs(soft.Data[i])) {
			t.Fatalf("fallback logit %d: %g vs float %g", i, hard.Data[i], soft.Data[i])
		}
	}
	st := sess.DrainStats()
	if st.SoftMVMs != 2 {
		t.Fatalf("SoftMVMs %d, want 2", st.SoftMVMs)
	}
	if st.RowReads != 0 {
		t.Fatalf("%d crossbar row reads while fully degraded", st.RowReads)
	}

	// Remap brings the layer back onto (fresh) hardware and clears the flag.
	if err := eng.Remap(0); err != nil {
		t.Fatal(err)
	}
	if eng.Fallback(0) {
		t.Fatal("remap did not clear the fallback flag")
	}
	if eng.Fallback(2) != true {
		t.Fatal("remap of layer 0 disturbed layer 2's fallback state")
	}
	sess.Forward(x)
	st = sess.DrainStats()
	if st.SoftMVMs != 1 || st.RowReads == 0 {
		t.Fatalf("after partial recovery: SoftMVMs=%d RowReads=%d", st.SoftMVMs, st.RowReads)
	}
}

// TestPerLayerStats: the session attributes ECU activity to the layer that
// produced it, and the per-layer tallies sum to the session total.
func TestPerLayerStats(t *testing.T) {
	eng, _, x := remapTestEngine(t)
	sess := eng.NewSession(1)
	saturateLayer(t, eng, 2)
	sess.Forward(x)

	total := sess.Stats
	perLayer := sess.DrainLayerStats()
	var sum Stats
	for _, st := range perLayer {
		sum.Merge(st)
	}
	if sum != total {
		t.Fatalf("per-layer stats %+v do not sum to total %+v", sum, total)
	}
	if perLayer[2].Detected == 0 && perLayer[2].Corrected == 0 {
		t.Fatalf("layer 2 is saturated but shows no ECU activity: %+v", perLayer[2])
	}
	if perLayer[0].Detected != 0 {
		t.Fatalf("healthy layer 0 shows detected reads: %+v", perLayer[0])
	}
	// Drained means drained.
	if again := sess.DrainLayerStats(); len(again) != 0 {
		t.Fatalf("second drain returned %v", again)
	}
	sess.DrainStats()
	if sess.Stats != (Stats{}) {
		t.Fatal("DrainStats did not reset the session total")
	}
}

// TestConcurrentServeInjectRemap: sessions serve while faults are injected
// and layers remapped — exercised under -race in CI.
func TestConcurrentServeInjectRemap(t *testing.T) {
	eng, _, x := remapTestEngine(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			sess := eng.NewSession(seed)
			for {
				select {
				case <-stop:
					return
				default:
					sess.Predict(x)
				}
			}
		}(uint64(w))
	}
	for i := 0; i < 20; i++ {
		layer := eng.Layers()[i%2]
		if i%4 == 3 {
			if err := eng.Remap(layer); err != nil {
				t.Error(err)
			}
			continue
		}
		err := eng.WithArrays(layer, func(arrays []*crossbar.Array) {
			for _, a := range arrays {
				a.SetStuck(i%a.Rows, i%a.Cols, 0)
				a.DriftCell((i+1)%a.Rows, i%a.Cols, -1)
			}
		})
		if err != nil {
			t.Error(err)
		}
	}
	if err := eng.SetFallback(0, true); err != nil {
		t.Error(err)
	}
	close(stop)
	wg.Wait()
}
