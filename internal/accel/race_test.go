package accel

import (
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/nn"
	"repro/internal/stats"
)

// TestRaceTrafficVsMutators is the dedicated locking-contract regression for
// everything the scrubber depends on: one goroutine hammers WithArrays
// (fault injection), one hammers Remap, one hammers WithScrubTargets with
// real patrol operations (ProgramVerify re-programming and SpareRow
// sparing), and one flips the software fallback — all while several
// Session.Forward streams serve live traffic. Under -race this fails on any
// reader/mutator interleaving the per-layer RWMutex does not cover.
func TestRaceTrafficVsMutators(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 21))
	net := &nn.Network{Name: "race", InShape: []int{10},
		Layers: []nn.Layer{nn.NewDense(10, 12, rng), &nn.ReLU{}, nn.NewDense(12, 4, rng)}}
	cfg := quietConfig(SchemeABN(8), 2)
	cfg.SpareRows = 8
	eng, err := Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := nn.FromSlice([]float64{0.1, 0.9, 0.3, 0.5, 0.2, 0.7, 0.4, 0.8, 0.6, 0.05}, 10)
	layers := eng.Layers()

	const iters = 25
	var mut sync.WaitGroup
	stop := make(chan struct{})
	var traffic sync.WaitGroup

	// Live traffic: four forward streams.
	for g := 0; g < 4; g++ {
		traffic.Add(1)
		go func(g int) {
			defer traffic.Done()
			sess := eng.NewSession(uint64(100 + g))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sess.Reseed(uint64(g*10_000 + i))
				if out := sess.Forward(x); out == nil {
					t.Error("nil forward output")
					return
				}
			}
		}(g)
	}

	// Mutator 1: online fault injection through WithArrays.
	mut.Add(1)
	go func() {
		defer mut.Done()
		mrng := stats.SubRNG(34, 1)
		for i := 0; i < iters; i++ {
			layer := layers[i%len(layers)]
			err := eng.WithArrays(layer, func(arrays []*crossbar.Array) {
				for _, a := range arrays {
					r := mrng.IntN(a.Rows)
					for c := 0; c < a.Cols; c += 4 {
						a.DriftCell(r, c, 1)
					}
					a.SetStuck(mrng.IntN(a.Rows), mrng.IntN(a.Cols), uint8(mrng.IntN(a.NumLevels())))
					_ = a.DriftedCount()
					_ = a.StuckCount()
				}
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Mutator 2: repeated remaps swap whole mapped matrices under traffic.
	mut.Add(1)
	go func() {
		defer mut.Done()
		for i := 0; i < iters; i++ {
			if err := eng.Remap(layers[i%len(layers)]); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Mutator 3: patrol-style repairs through WithScrubTargets — verified
	// re-programming and row sparing, exactly what the scrubber does.
	mut.Add(1)
	go func() {
		defer mut.Done()
		srng := stats.SubRNG(35, 1)
		for i := 0; i < iters; i++ {
			layer := layers[(i+1)%len(layers)]
			err := eng.WithScrubTargets(layer, func(targets []ScrubTarget) {
				for _, tgt := range targets {
					a := tgt.Arr
					r := srng.IntN(a.Rows)
					for c := 0; c < a.Cols; c += 8 {
						a.ProgramVerify(r, c, a.Programmed(r, c), 3, tgt.PulseFail, srng)
					}
					if a.SpareRowsFree() > 0 && srng.IntN(4) == 0 {
						a.SpareRow(srng.IntN(a.Rows), 3, tgt.PulseFail, srng)
					}
				}
			})
			if err != nil {
				t.Error(err)
				return
			}
			_ = eng.VerifyStats()
		}
	}()

	// Mutator 4: fallback flips and read-side accessors.
	mut.Add(1)
	go func() {
		defer mut.Done()
		for i := 0; i < iters; i++ {
			layer := layers[i%len(layers)]
			if err := eng.SetFallback(layer, i%2 == 0); err != nil {
				t.Error(err)
				return
			}
			_ = eng.DegradedLayers()
			_ = eng.RemapCount(layer)
			_ = eng.NumGroups()
		}
	}()

	// Mutator 5: environment retunes swap the noise sampler under traffic —
	// the scenario-engine path.
	mut.Add(1)
	go func() {
		defer mut.Done()
		for i := 0; i < iters; i++ {
			dev := cfg.Device
			dev.TempK = 350 + float64(i%60)
			dev.PRTN = float64(i%10) / 20
			if err := eng.Retune(dev); err != nil {
				t.Error(err)
				return
			}
			_ = eng.ActiveDevice()
		}
	}()

	mut.Wait()
	close(stop)
	traffic.Wait()
}
