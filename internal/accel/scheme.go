// Package accel simulates an ISAAC-style memristive inference accelerator
// (paper Sections II-B, VI, VII-A): trained networks are quantized to
// 16-bit fixed point, offset-binary encoded, grouped into 128-bit coded
// operands, multiplied by the scheme's AN/ABN code, bit sliced across
// 128-column crossbar arrays, and evaluated with bit-serial inputs under
// the Section II-C noise and fault models. Each in-situ multiply-accumulate
// unit carries the error correction unit of Figure 9, and the data-aware
// code construction of Section V-B runs per array at mapping time.
package accel

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/noise"
)

// SchemeKind selects the protection strategy.
type SchemeKind int

const (
	// KindNone stores unprotected operands (the paper's NoECC baseline).
	KindNone SchemeKind = iota
	// KindStatic uses the classical single-error-correcting AN code of
	// Section V-A with fixed +/-2^i syndromes.
	KindStatic
	// KindABN uses the paper's data-aware ABN codes: per-array A search and
	// probability-ranked syndrome allocation (Section V-B).
	KindABN
)

// Scheme describes one protection configuration from the evaluation.
type Scheme struct {
	Name string
	Kind SchemeKind
	// GroupOps is the number of 16-bit operands per coded group
	// (1 for per-operand codes, 8 for the paper's 128-bit groups).
	GroupOps int
	// CheckBits is the ABN check-bit budget (7-10 in Figure 10).
	CheckBits int
	// B is the detection multiplier (3 for every evaluated code).
	B uint64
	// FullSearch evaluates every legal A instead of the five hardware
	// candidates of Section VI.
	FullSearch bool
	// ZeroGuard packs group lanes with no guard bits — the paper's exact
	// bit accounting, at the cost of inter-lane carry bleed (ablation
	// mode; see DESIGN.md section 1).
	ZeroGuard bool
}

// SchemeNoECC is the unprotected baseline.
func SchemeNoECC() Scheme {
	return Scheme{Name: "NoECC", Kind: KindNone, GroupOps: 1}
}

// SchemeStatic16 is the naive per-operand AN code with B=3 ("Static16"
// in Figures 10/11): the minimal single-error-correcting A over each
// 16-bit operand, roughly 6 check bits per operand (48 per 8 operands).
func SchemeStatic16() Scheme {
	return Scheme{Name: "Static16", Kind: KindStatic, GroupOps: 1, B: 3}
}

// SchemeStatic128 is the naive AN code over 128-bit grouped operands with
// B=3 ("Static128"): one single-bit-correcting code amortized over 8
// operands, without data-aware allocation.
func SchemeStatic128() Scheme {
	return Scheme{Name: "Static128", Kind: KindStatic, GroupOps: 8, B: 3}
}

// SchemeABN is the paper's data-aware ABN code with the given total
// check-bit budget ("ABN-7" through "ABN-10").
func SchemeABN(checkBits int) Scheme {
	return Scheme{
		Name:      fmt.Sprintf("ABN-%d", checkBits),
		Kind:      KindABN,
		GroupOps:  8,
		CheckBits: checkBits,
		B:         3,
	}
}

// ParseScheme resolves an evaluation-scheme name ("NoECC", "Static16",
// "Static128", "ABN-7" … "ABN-10") to its configuration, so commands can
// take the protection level as a flag.
func ParseScheme(name string) (Scheme, error) {
	switch strings.ToLower(name) {
	case "noecc", "none":
		return SchemeNoECC(), nil
	case "static16":
		return SchemeStatic16(), nil
	case "static128":
		return SchemeStatic128(), nil
	}
	if rest, ok := strings.CutPrefix(strings.ToLower(name), "abn-"); ok {
		bits, err := strconv.Atoi(rest)
		if err != nil {
			return Scheme{}, fmt.Errorf("accel: bad ABN check-bit count %q", rest)
		}
		s := SchemeABN(bits)
		if err := s.Validate(); err != nil {
			return Scheme{}, err
		}
		return s, nil
	}
	return Scheme{}, fmt.Errorf("accel: unknown scheme %q (want NoECC|Static16|Static128|ABN-<bits>)", name)
}

// Validate checks the scheme is internally consistent.
func (s Scheme) Validate() error {
	switch {
	case s.GroupOps < 1:
		return fmt.Errorf("accel: scheme %q needs GroupOps >= 1", s.Name)
	case s.Kind == KindABN && (s.CheckBits < 4 || s.CheckBits > 16):
		return fmt.Errorf("accel: scheme %q check bits %d out of range [4,16]", s.Name, s.CheckBits)
	case s.Kind != KindNone && s.B != 1 && s.B != 3:
		return fmt.Errorf("accel: scheme %q detection multiplier B=%d unsupported", s.Name, s.B)
	}
	return nil
}

// WeightEncoding selects how signed weights are stored on the unipolar
// conductance range (Section II-B's accelerator family differs here).
type WeightEncoding int

const (
	// EncodingOffsetBinary stores w + 2^(bits-1) and subtracts the bias
	// digitally — ISAAC's scheme, the paper's choice (Section VII-D).
	EncodingOffsetBinary WeightEncoding = iota
	// EncodingDifferential stores positive and negative magnitudes in
	// separate row sets and subtracts the two dot products digitally —
	// the PRIME-style alternative.
	EncodingDifferential
)

// Config is the full accelerator configuration.
type Config struct {
	// Device is the cell and noise model (Table I).
	Device noise.DeviceParams
	// DeviceName labels Device with its noise-library registry name for
	// observability (metrics, /plan, /readyz). Informational only — empty
	// means a custom or hand-tuned parameter set.
	DeviceName string
	// ArraySize is the crossbar column count per array (128).
	ArraySize int
	// WeightBits is the fixed-point weight width (16).
	WeightBits int
	// InputBits is the bit-serial input width (8).
	InputBits int
	// Scheme is the protection configuration.
	Scheme Scheme
	// Encoding selects the negative-weight representation.
	Encoding WeightEncoding
	// LayerSchemes optionally overrides the protection scheme per layer
	// index — the criticality-aware extension the paper's abstract points
	// at ("knowledge of how critical each portion of the computation is"):
	// spend check bits on the layers whose errors flip classifications and
	// run the tolerant ones cheaper.
	LayerSchemes map[int]Scheme
	// Retries is how many times a group read is re-executed when the ECU
	// flags a detected-uncorrectable error (paper Section VI-A's retry
	// option: RTN is transient, so a re-read usually succeeds). Zero
	// models the throughput-preserving revert-to-uncorrected policy.
	Retries int
	// VerifyIters bounds the closed-loop program-verify write path
	// (Section II-C4): each cell is pulsed and read-verified up to this
	// many times when weights are programmed (Map, Remap) and when the
	// scrubber re-programs drifted rows. 0 falls back to blind
	// single-pulse writes. The digital cell state is identical either way;
	// verification adds the per-cell pulse/giveup accounting the scrubber
	// and metrics consume.
	VerifyIters int
	// SpareRows is the number of spare word lines each crossbar array
	// carries so the patrol scrubber can retire rows whose stuck-at
	// population has become uncorrectable. 0 disables row sparing.
	SpareRows int
	// Seed drives stuck-at fault injection at mapping time.
	Seed uint64
}

// DefaultConfig returns the paper's evaluation configuration with the
// given scheme.
func DefaultConfig(s Scheme) Config {
	return Config{
		Device:      noise.DefaultDeviceParams(),
		DeviceName:  noise.DefaultDeviceName,
		ArraySize:   128,
		WeightBits:  16,
		InputBits:   8,
		Scheme:      s,
		Retries:     6,
		VerifyIters: 5,
		Seed:        1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Device.Validate(); err != nil {
		return err
	}
	if err := c.Scheme.Validate(); err != nil {
		return err
	}
	for layer, s := range c.LayerSchemes {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("accel: layer %d override: %w", layer, err)
		}
	}
	switch {
	case c.ArraySize < 8 || c.ArraySize > 1024:
		return fmt.Errorf("accel: array size %d out of range [8,1024]", c.ArraySize)
	case c.WeightBits < 4 || c.WeightBits > 32:
		return fmt.Errorf("accel: weight bits %d out of range [4,32]", c.WeightBits)
	case c.InputBits < 1 || c.InputBits > 16:
		return fmt.Errorf("accel: input bits %d out of range [1,16]", c.InputBits)
	case c.Retries < 0 || c.Retries > 16:
		return fmt.Errorf("accel: retries %d out of range [0,8]", c.Retries)
	case c.VerifyIters < 0 || c.VerifyIters > 64:
		return fmt.Errorf("accel: verify iterations %d out of range [0,64]", c.VerifyIters)
	case c.SpareRows < 0 || c.SpareRows > 256:
		return fmt.Errorf("accel: spare rows %d out of range [0,256]", c.SpareRows)
	}
	// The widest coded group must fit a core.Word with input headroom.
	layout := core.GroupLayout{
		Operands:    c.Scheme.GroupOps,
		OperandBits: c.WeightBits,
		GuardBits:   core.GuardBitsFor(c.ArraySize),
	}
	if err := layout.Validate(); err != nil {
		return err
	}
	return nil
}
