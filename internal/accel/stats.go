package accel

import "sync"

// Stats tallies the ECU and error-injection activity of a simulation run.
type Stats struct {
	// RowReads counts simulated physical-row ADC conversions.
	RowReads uint64
	// RowErrors counts reads whose quantized output deviated from ideal.
	RowErrors uint64
	// Clean, Corrected, Detected count ECU outcomes per reduced group
	// read (Figure 9 pipeline results).
	Clean, Corrected, Detected uint64
	// Retries counts re-reads triggered by detected-uncorrectable errors.
	Retries uint64
	// Residual counts decodes whose remainder was nonzero — errors that
	// slipped past (or were reverted by) the ECU.
	Residual uint64
}

// Merge adds another stats block.
func (s *Stats) Merge(o Stats) {
	s.RowReads += o.RowReads
	s.RowErrors += o.RowErrors
	s.Clean += o.Clean
	s.Corrected += o.Corrected
	s.Detected += o.Detected
	s.Retries += o.Retries
	s.Residual += o.Residual
}

// RowErrorRate returns the fraction of row reads that were erroneous.
func (s *Stats) RowErrorRate() float64 {
	if s.RowReads == 0 {
		return 0
	}
	return float64(s.RowErrors) / float64(s.RowReads)
}

// SharedStats is a mutex-guarded Stats accumulator safe for concurrent use,
// so serving workers can fold per-request tallies into one cumulative block
// that a metrics scrape snapshots without stopping the pool.
type SharedStats struct {
	mu sync.Mutex
	s  Stats
}

// Add merges one stats block into the accumulator.
func (ss *SharedStats) Add(o Stats) {
	ss.mu.Lock()
	ss.s.Merge(o)
	ss.mu.Unlock()
}

// Snapshot returns a consistent copy of the accumulated stats.
func (ss *SharedStats) Snapshot() Stats {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s
}
