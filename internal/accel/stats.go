package accel

import "sync"

// Stats tallies the ECU and error-injection activity of a simulation run.
type Stats struct {
	// RowReads counts simulated physical-row ADC conversions.
	RowReads uint64
	// RowErrors counts reads whose quantized output deviated from ideal.
	RowErrors uint64
	// Clean, Corrected, Detected count ECU outcomes per reduced group
	// read (Figure 9 pipeline results).
	Clean, Corrected, Detected uint64
	// Retries counts re-reads triggered by detected-uncorrectable errors.
	Retries uint64
	// Residual counts decodes whose remainder was nonzero — errors that
	// slipped past (or were reverted by) the ECU.
	Residual uint64
	// SoftMVMs counts matrix-vector products answered by the digital
	// fixed-point fallback path instead of the crossbars (degraded mode
	// after the recovery ladder gives up on a layer's hardware).
	SoftMVMs uint64
	// BatchMVMs counts matrix-vector products evaluated through the batched
	// multi-image kernel (each image's MVM counts once, so the ratio
	// BatchMVMs / total MVMs is the batched-path coverage).
	BatchMVMs uint64
}

// Merge adds another stats block.
func (s *Stats) Merge(o Stats) {
	s.RowReads += o.RowReads
	s.RowErrors += o.RowErrors
	s.Clean += o.Clean
	s.Corrected += o.Corrected
	s.Detected += o.Detected
	s.Retries += o.Retries
	s.Residual += o.Residual
	s.SoftMVMs += o.SoftMVMs
	s.BatchMVMs += o.BatchMVMs
}

// Diff returns the activity accumulated since a previous snapshot.
func (s Stats) Diff(prev Stats) Stats {
	return Stats{
		RowReads:  s.RowReads - prev.RowReads,
		RowErrors: s.RowErrors - prev.RowErrors,
		Clean:     s.Clean - prev.Clean,
		Corrected: s.Corrected - prev.Corrected,
		Detected:  s.Detected - prev.Detected,
		Retries:   s.Retries - prev.Retries,
		Residual:  s.Residual - prev.Residual,
		SoftMVMs:  s.SoftMVMs - prev.SoftMVMs,
		BatchMVMs: s.BatchMVMs - prev.BatchMVMs,
	}
}

// GroupReads returns the number of ECU-visible group reads in the block.
func (s Stats) GroupReads() uint64 { return s.Clean + s.Corrected + s.Detected }

// DetectedRate returns the fraction of group reads the ECU flagged as
// detected-but-uncorrectable — the health signal the fault monitor watches.
func (s Stats) DetectedRate() float64 {
	reads := s.GroupReads()
	if reads == 0 {
		return 0
	}
	return float64(s.Detected) / float64(reads)
}

// RowErrorRate returns the fraction of row reads that were erroneous.
func (s *Stats) RowErrorRate() float64 {
	if s.RowReads == 0 {
		return 0
	}
	return float64(s.RowErrors) / float64(s.RowReads)
}

// SharedStats is a mutex-guarded Stats accumulator safe for concurrent use,
// so serving workers can fold per-request tallies into one cumulative block
// that a metrics scrape snapshots without stopping the pool.
type SharedStats struct {
	mu sync.Mutex
	s  Stats
}

// Add merges one stats block into the accumulator.
func (ss *SharedStats) Add(o Stats) {
	ss.mu.Lock()
	ss.s.Merge(o)
	ss.mu.Unlock()
}

// Snapshot returns a consistent copy of the accumulated stats.
func (ss *SharedStats) Snapshot() Stats {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s
}

// Restore replaces the accumulated stats — the boot-time restore path
// reinstating a persisted lifetime tally.
func (ss *SharedStats) Restore(s Stats) {
	ss.mu.Lock()
	ss.s = s
	ss.mu.Unlock()
}
