package accel

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/crossbar"
	"repro/internal/dataset"
	"repro/internal/fixed"
	"repro/internal/nn"
	"repro/internal/stats"
)

// TestDebugGroupReadAccuracy is a white-box diagnostic: for one grouped ABN
// array it compares every noisy read outcome against the exact result and
// classifies the damage. It is skipped unless -run selects it explicitly
// with -v; kept as a regression probe for the correction pipeline.
func TestDebugGroupReadAccuracy(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	const out, in = 8, 112
	W := make([]float64, out*in)
	for i := range W {
		W[i] = rng.NormFloat64() * 0.002 // trained nets cluster near zero
	}
	W[0] = 0.5 // a few outliers set the quantization scale
	cfg := DefaultConfig(SchemeABN(10))
	cfg.Device.BitsPerCell = 2
	m, err := MapMatrix(cfg, out, in, func(r, c int) float64 { return W[r*in+c] }, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := m.chunks[0].groups[0]
	t.Logf("A=%d B=%d tableLen=%d covered=%.4g rows=%d", g.code.A, g.code.B, g.code.Table.Len(), g.code.Table.CoveredProb(), g.arr.Rows)
	hot := 0
	for r, gs := range g.giantRows {
		if len(gs) > 0 {
			t.Logf("hot row %d: %d prone cells (mag %v)", r, len(gs), gs[0].mag)
			hot++
		}
	}
	t.Logf("hot rows: %d; stuck rows: %d", hot, len(g.stuckRows))

	srng := stats.NewFast(7)
	bsn := m.sampler.BinomSnapshot()
	scr := NewScratch()
	var st Stats
	bad, total, clean := 0, 0, 0
	exactWrongByStatus := map[string]int{}
	for trial := 0; trial < 4000; trial++ {
		// Random input mask.
		mask := make([]uint64, g.arr.MaskWords())
		for w := range mask {
			mask[w] = rng.Uint64()
		}
		mask[len(mask)-1] &= (1 << (in % 64)) - 1
		// Exact result.
		outs := make([]int, g.arr.Rows)
		for r := range outs {
			outs[r] = g.arr.IdealRowOutput(r, mask)
		}
		exact, _ := crossbar.ReduceRows(outs, cfg.Device.BitsPerCell)
		q, _ := g.code.Decode(exact)
		wantLanes := g.layout.Unpack(q)

		before := st
		scr.masks = [][]uint64{mask}
		g.precompute(m, scr)
		lanes := g.read(m, scr, 0, srng, &bsn, &st)
		status := "clean"
		if st.Corrected > before.Corrected {
			status = "corrected"
		} else if st.Detected > before.Detected {
			status = "detected"
		} else {
			clean++
		}
		total++
		wrong := false
		for i := range lanes {
			if lanes[i] != wantLanes[i] {
				wrong = true
				break
			}
		}
		if wrong {
			bad++
			exactWrongByStatus[status]++
			if exactWrongByStatus[status] <= 3 {
				var diffs []string
				for i := range lanes {
					if lanes[i] != wantLanes[i] {
						diffs = append(diffs, fmt.Sprintf("lane%d: got %d want %d", i, lanes[i], wantLanes[i]))
					}
				}
				t.Logf("WRONG (%s): %v", status, diffs)
			}
		}
	}
	t.Logf("total=%d clean=%d corrected=%d detected=%d retries=%d wrongLanes=%d byStatus=%v",
		total, clean, st.Corrected, st.Detected, st.Retries, bad, exactWrongByStatus)
}

// TestDebugTrainedLayerReads trains a small real layer and audits every
// group read against ground truth, separating correct corrections from
// silent miscorrections.
var useOutputLayer = false
var useFaults = false

func TestDebugTrainedLayerReadsWithFaults(t *testing.T) {
	useFaults = true
	defer func() { useFaults = false }()
	TestDebugTrainedLayerReads(t)
}

func TestDebugTrainedOutputLayerReads(t *testing.T) {
	useOutputLayer = true
	defer func() { useOutputLayer = false }()
	TestDebugTrainedLayerReads(t)
}

func TestDebugTrainedLayerReads(t *testing.T) {
	ds := dataset.SynthDigits(42, 1500, 0)
	rng := rand.New(rand.NewPCG(1, 1))
	net := &nn.Network{Name: "d", InShape: []int{1, 28, 28},
		Layers: []nn.Layer{&nn.Flatten{}, nn.NewDense(784, 64, rng), &nn.ReLU{}, nn.NewDense(64, 10, rng)}}
	tc := nn.DefaultTrainConfig()
	tc.Epochs = 3
	nn.Train(net, ds.Train, tc)

	cfg := DefaultConfig(SchemeABN(10))
	cfg.Device.BitsPerCell = 2
	if useFaults {
		cfg.Device.FailureRate = 0.001
	}
	layer := net.Layers[1].(*nn.Dense)
	if useOutputLayer {
		layer = net.Layers[3].(*nn.Dense)
	}
	m, err := MapMatrix(cfg, layer.Out, layer.In, layer.WeightAt, 1)
	if err != nil {
		t.Fatal(err)
	}
	srng := stats.NewFast(7)
	bsn := m.sampler.BinomSnapshot()
	scr := NewScratch()
	var st Stats
	var lastRaw, lastFixed core.Word
	var lastStatus core.Status
	debugReadHook = func(g *group, raw, corrected core.Word, status core.Status) {
		lastRaw, lastFixed, lastStatus = raw, corrected, status
	}
	defer func() { debugReadHook = nil }()
	wrongByGroup := map[int]int{}
	totalWrong, totalReads := 0, 0
	for trial := 0; trial < 300; trial++ {
		gi := 0
		for _, ch := range m.chunks {
			chOff := ch.colLo
			_ = chOff
			for _, g := range ch.groups {
				mask := make([]uint64, g.arr.MaskWords())
				if useOutputLayer || len(ds.Train) == 0 {
					for w := range mask {
						mask[w] = rng.Uint64()
					}
					if r := g.arr.Cols % 64; r != 0 {
						mask[len(mask)-1] &= (1 << r) - 1
					}
				} else {
					// Real image bit-plane mask for this chunk's columns.
					img := ds.Train[trial%len(ds.Train)].Input.Reshape(784).Data
					qx := fixed.QuantizeUnsigned(img, cfg.InputBits)
					bit := trial % cfg.InputBits
					for j := 0; j < g.arr.Cols; j++ {
						if qx.Values[chOff+j]>>uint(bit)&1 == 1 {
							mask[j/64] |= 1 << uint(j%64)
						}
					}
				}
				outs := make([]int, g.arr.Rows)
				for r := range outs {
					outs[r] = g.arr.IdealRowOutput(r, mask)
				}
				exact, _ := crossbar.ReduceRows(outs, cfg.Device.BitsPerCell)
				q, _ := g.code.Decode(exact)
				want := g.layout.Unpack(q)
				scr.masks = [][]uint64{mask}
				g.precompute(m, scr)
				got := g.read(m, scr, 0, srng, &bsn, &st)
				totalReads++
				for i := range got {
					if got[i] != want[i] {
						totalWrong++
						wrongByGroup[gi]++
						if totalWrong <= 8 {
							// Reconstruct the true additive error and the applied syndrome.
							var eStr, sStr string
							if raw, borrow := lastRaw.Sub(exact); borrow == 0 {
								eStr = "+" + raw.String()
							} else {
								d, _ := exact.Sub(lastRaw)
								eStr = "-" + d.String()
							}
							if d, borrow := lastRaw.Sub(lastFixed); borrow == 0 {
								sStr = "+" + d.String()
							} else {
								d2, _ := lastFixed.Sub(lastRaw)
								sStr = "-" + d2.String()
							}
							t.Logf("group %d lane %d: got %d want %d status=%v E=%s applied=%s (A=%d tab=%d)",
								gi, i, got[i], want[i], lastStatus, eStr, sStr, g.code.A, g.code.Table.Len())
						}
						break
					}
				}
				gi++
			}
		}
	}
	t.Logf("reads=%d wrong=%d byGroup=%v stats=%+v", totalReads, totalWrong, wrongByGroup, st)
	// Dump the fault anatomy of pathological groups.
	gi2 := 0
	for _, ch := range m.chunks {
		for _, g := range ch.groups {
			if wrongByGroup[gi2] > 0 {
				t.Logf("group %d: A=%d tab=%d cov=%.4g", gi2, g.code.A, g.code.Table.Len(), g.code.Table.CoveredProb())
				for r, srs := range g.stuckRows {
					for _, si := range srs {
						syn := core.SyndromeFromSteps(si.delta, r*cfg.Device.BitsPerCell)
						res := syn.Residue(g.code.A)
						entry, ok := g.code.Table.Lookup(res)
						t.Logf("  stuck row=%d delta=%d residue=%d inTable=%v same=%v modB=%d",
							r, si.delta, res, ok, ok && entry == syn, syn.Mag.ModU64(3))
					}
				}
			}
			gi2++
		}
	}
}
