package accel

import (
	"fmt"

	"repro/internal/crossbar"
	"repro/internal/noise"
)

// LayerState is the durable state of one mapped layer: the remap epoch and
// device models that deterministically regenerate the mapping pipeline's
// outputs (codes, tables, map-time fault metadata), plus the digital array
// state that overlays the online-fault history on top.
type LayerState struct {
	Layer  int `json:"layer"`
	Remaps int `json:"remaps"`
	// Fallback records whether the layer was routed to the digital
	// fixed-point path when the snapshot was taken.
	Fallback bool `json:"fallback,omitempty"`
	// MapDevice is the device model the current mapping was built under;
	// restore reruns the mapping pipeline with it so the A-code search
	// reproduces the same choices the persisted arrays were encoded with.
	MapDevice noise.DeviceParams `json:"map_device"`
	// Device is the active (possibly retuned) device model; restore applies
	// it after the rebuild when it differs from MapDevice.
	Device noise.DeviceParams `json:"device"`
	// Arrays holds the crossbar states in the engine's deterministic
	// (chunk, group) order.
	Arrays []crossbar.ArrayState `json:"arrays"`
}

// EngineState is the durable state of a mapped engine, plus the identity
// fingerprint (seed, scheme, network) a restore refuses to cross.
type EngineState struct {
	Seed    uint64       `json:"seed"`
	Scheme  string       `json:"scheme"`
	Network string       `json:"network"`
	Layers  []LayerState `json:"layers"`
}

// Snapshot captures the engine's durable state. Each layer is captured
// under its read lock, so the per-layer state is internally consistent;
// cross-layer consistency is up to the caller (quiesce, or accept a
// point-in-time-per-layer snapshot).
func (e *Engine) Snapshot() EngineState {
	st := EngineState{
		Seed:    e.cfg.Seed,
		Scheme:  e.cfg.Scheme.Name,
		Network: e.net.Name,
		Layers:  make([]LayerState, 0, e.mapped),
	}
	for i, sl := range e.slots {
		if sl == nil {
			continue
		}
		sl.mu.RLock()
		ls := LayerState{
			Layer:     i,
			Remaps:    sl.remaps,
			Fallback:  sl.fallback,
			MapDevice: sl.mapDev,
			Device:    sl.dev,
		}
		arrays := sl.m.Arrays()
		ls.Arrays = make([]crossbar.ArrayState, len(arrays))
		for j, a := range arrays {
			ls.Arrays[j] = a.Snapshot()
		}
		sl.mu.RUnlock()
		st.Layers = append(st.Layers, ls)
	}
	return st
}

// CheckRestore validates a snapshot against this engine without touching
// any state: identity fingerprint, layer coverage, per-layer array counts
// and geometry, and every array payload. The geometry of a layer's arrays
// is fixed by the configuration (remaps redraw faults, not shapes), so the
// current mapping stands in for the rebuilt one.
func (e *Engine) CheckRestore(st EngineState) error {
	if st.Seed != e.cfg.Seed {
		return fmt.Errorf("accel: snapshot seed %d does not match engine seed %d", st.Seed, e.cfg.Seed)
	}
	if st.Scheme != e.cfg.Scheme.Name {
		return fmt.Errorf("accel: snapshot scheme %q does not match engine scheme %q", st.Scheme, e.cfg.Scheme.Name)
	}
	if st.Network != e.net.Name {
		return fmt.Errorf("accel: snapshot network %q does not match engine network %q", st.Network, e.net.Name)
	}
	covered := make(map[int]bool, len(st.Layers))
	for _, ls := range st.Layers {
		if covered[ls.Layer] {
			return fmt.Errorf("accel: snapshot describes layer %d twice", ls.Layer)
		}
		covered[ls.Layer] = true
		sl := e.slot(ls.Layer)
		if sl == nil {
			return fmt.Errorf("accel: snapshot describes layer %d, which is not mapped", ls.Layer)
		}
		if ls.Remaps < 0 {
			return fmt.Errorf("accel: snapshot layer %d has negative remap epoch", ls.Layer)
		}
		if err := ls.MapDevice.Validate(); err != nil {
			return fmt.Errorf("accel: snapshot layer %d map device: %w", ls.Layer, err)
		}
		if err := ls.Device.Validate(); err != nil {
			return fmt.Errorf("accel: snapshot layer %d device: %w", ls.Layer, err)
		}
		if ls.Device.BitsPerCell != ls.MapDevice.BitsPerCell {
			return fmt.Errorf("accel: snapshot layer %d retuned across a BitsPerCell change (%d -> %d)",
				ls.Layer, ls.MapDevice.BitsPerCell, ls.Device.BitsPerCell)
		}
		sl.mu.RLock()
		arrays := sl.m.Arrays()
		err := func() error {
			if len(ls.Arrays) != len(arrays) {
				return fmt.Errorf("accel: snapshot layer %d has %d arrays, mapping has %d", ls.Layer, len(ls.Arrays), len(arrays))
			}
			for j, as := range ls.Arrays {
				if err := arrays[j].CheckState(as); err != nil {
					return fmt.Errorf("accel: snapshot layer %d array %d: %w", ls.Layer, j, err)
				}
			}
			return nil
		}()
		sl.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	for _, i := range e.Layers() {
		if !covered[i] {
			return fmt.Errorf("accel: snapshot is missing mapped layer %d", i)
		}
	}
	return nil
}

// Restore rebuilds the engine bit-identically from a snapshot: per layer it
// reruns the deterministic mapping pipeline at the persisted remap epoch
// under the persisted map-time device (reproducing codes, tables, and
// map-time fault metadata), retunes to the persisted active device, and
// overlays the persisted array state (online faults, drift, row sparing).
// The snapshot is fully validated first (CheckRestore); after validation
// the only failure mode left is a mapping-pipeline error, which the
// identical configuration already survived once at boot.
func (e *Engine) Restore(st EngineState) error {
	if err := e.CheckRestore(st); err != nil {
		return err
	}
	for _, ls := range st.Layers {
		sl := e.slot(ls.Layer)
		sl.mu.Lock()
		err := func() error {
			// Epoch 0 is the original Map seed; epoch n is Remap's stream.
			seed := uint64(ls.Layer) + uint64(ls.Remaps)*remapSeedStride
			m, err := sl.rebuild(ls.MapDevice, seed)
			if err != nil {
				return fmt.Errorf("accel: rebuilding layer %d at epoch %d: %w", ls.Layer, ls.Remaps, err)
			}
			if ls.Device != ls.MapDevice {
				if err := m.retuneDevice(ls.Device); err != nil {
					return fmt.Errorf("accel: retuning restored layer %d: %w", ls.Layer, err)
				}
			}
			arrays := m.Arrays()
			if len(arrays) != len(ls.Arrays) {
				return fmt.Errorf("accel: rebuilt layer %d has %d arrays, snapshot has %d", ls.Layer, len(arrays), len(ls.Arrays))
			}
			for j, as := range ls.Arrays {
				if err := arrays[j].Restore(as); err != nil {
					return fmt.Errorf("accel: restoring layer %d array %d: %w", ls.Layer, j, err)
				}
			}
			if ls.Fallback && sl.soft == nil {
				soft, err := sl.mkSoft()
				if err != nil {
					return fmt.Errorf("accel: building fallback for restored layer %d: %w", ls.Layer, err)
				}
				sl.soft = soft
			}
			sl.m = m
			sl.remaps = ls.Remaps
			sl.dev = ls.Device
			sl.mapDev = ls.MapDevice
			sl.fallback = ls.Fallback
			return nil
		}()
		sl.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
