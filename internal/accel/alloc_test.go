package accel

import (
	"math/rand/v2"
	"testing"

	"repro/internal/nn"
	"repro/internal/stats"
)

// TestWarmMVMZeroAllocs: once the scratch arena and the sampler's binomial
// tables are warm, the noisy MVM must not touch the heap at all.
func TestWarmMVMZeroAllocs(t *testing.T) {
	for _, sch := range []Scheme{SchemeNoECC(), SchemeABN(9)} {
		t.Run(sch.Name, func(t *testing.T) {
			W := randomMatrix(t, 8, 112, 11)
			cfg := DefaultConfig(sch)
			cfg.Device.BitsPerCell = 2
			m, err := MapMatrix(cfg, 8, 112, func(r, c int) float64 { return W[r][c] }, 3)
			if err != nil {
				t.Fatal(err)
			}
			rng := stats.NewFast(1)
			scr := NewScratch()
			var st Stats
			xr := rand.New(rand.NewPCG(7, 7))
			x := make([]float64, 112)
			for i := range x {
				x[i] = xr.Float64()
			}
			out := make([]float64, 8)
			for i := 0; i < 3; i++ {
				m.MVMInto(out, x, rng, scr, &st)
			}
			if allocs := testing.AllocsPerRun(50, func() {
				m.MVMInto(out, x, rng, scr, &st)
			}); allocs != 0 {
				t.Fatalf("warm MVMInto allocates %.0f times per call, want 0", allocs)
			}
		})
	}
}

// TestWarmForwardZeroAllocs: a session's full Forward pass — quantize, mask,
// read every group, dequantize, dense + ReLU layers with buffer reuse — must
// be allocation-free once warm.
func TestWarmForwardZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	net := &nn.Network{Name: "t", InShape: []int{16},
		Layers: []nn.Layer{nn.NewDense(16, 12, rng), &nn.ReLU{}, nn.NewDense(12, 4, rng)}}
	cfg := DefaultConfig(SchemeABN(9))
	cfg.Device.BitsPerCell = 2
	eng, err := Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := eng.NewSession(1)
	x := nn.FromSlice([]float64{0.2, 0.8, 0.1, 0.4, 0.9, 0.5, 0.3, 0.7,
		0.6, 0.15, 0.45, 0.25, 0.35, 0.55, 0.65, 0.05}, 16)
	for i := 0; i < 3; i++ {
		sess.Forward(x)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		sess.Forward(x)
	}); allocs != 0 {
		t.Fatalf("warm Session.Forward allocates %.0f times per call, want 0", allocs)
	}
}
