package accel

import (
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/nn"
	"repro/internal/stats"
)

// batchTestEngine maps a small noisy MLP (real RTN/programming noise so the
// ECU, retries, and giant draws are all live).
func batchTestEngine(t *testing.T) (*Engine, []*nn.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewPCG(8, 8))
	net := &nn.Network{Name: "batch", InShape: []int{12},
		Layers: []nn.Layer{nn.NewDense(12, 10, rng), &nn.ReLU{}, nn.NewDense(10, 4, rng)}}
	cfg := DefaultConfig(SchemeABN(9))
	cfg.Device.BitsPerCell = 2
	eng, err := Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]*nn.Tensor, 16)
	for i := range xs {
		xs[i] = nn.NewTensor(12)
		for j := range xs[i].Data {
			xs[i].Data[j] = float64((i*7+j*3)%11) / 11
		}
	}
	return eng, xs
}

// TestForwardBatchMatchesSerial is the batch-size-invariance contract at
// the engine level: for every stream, ForwardBatch output bits must equal a
// serial session's Reseed+Forward — at batch size 1, at full batch, and in
// shuffled sub-batches.
func TestForwardBatchMatchesSerial(t *testing.T) {
	eng, xs := batchTestEngine(t)
	serial := eng.NewSession(0)
	want := make([][]float64, len(xs))
	for i, x := range xs {
		serial.Reseed(uint64(1000 + i))
		out := serial.Forward(x)
		want[i] = append([]float64(nil), out.Data...)
	}

	sess := eng.NewSession(0)
	defer sess.Close()
	for _, size := range []int{1, 3, 16} {
		for lo := 0; lo < len(xs); lo += size {
			hi := min(lo+size, len(xs))
			streams := make([]uint64, hi-lo)
			for i := range streams {
				streams[i] = uint64(1000 + lo + i)
			}
			outs, errs := sess.ForwardBatch(xs[lo:hi], streams)
			for i, out := range outs {
				if errs[i] != nil {
					t.Fatalf("size %d image %d: %v", size, lo+i, errs[i])
				}
				for j, v := range out.Data {
					if v != want[lo+i][j] {
						t.Fatalf("size %d image %d logit %d: batch %v serial %v",
							size, lo+i, j, v, want[lo+i][j])
					}
				}
			}
		}
	}
}

// TestForwardBatchStats: batched per-lane stats must mirror the serial
// per-request stats (including the BatchMVMs counter marking the path).
func TestForwardBatchStats(t *testing.T) {
	eng, xs := batchTestEngine(t)
	serial := eng.NewSession(0)
	sess := eng.NewSession(0)
	defer sess.Close()

	streams := make([]uint64, len(xs))
	for i := range streams {
		streams[i] = uint64(500 + i)
	}
	_, errs := sess.ForwardBatch(xs, streams)
	perLayer := map[int]Stats{}
	for i := range xs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		serial.Reseed(streams[i])
		serial.Forward(xs[i])
		ref := serial.DrainStats()

		sess.DrainBatchLayerStatsInto(i, perLayer)
		var sum Stats
		for _, ls := range perLayer {
			sum.Merge(ls)
		}
		st := sess.DrainBatchStats(i)
		if st != sum {
			t.Fatalf("image %d: lane total %+v != layer sum %+v", i, st, sum)
		}
		if st.BatchMVMs != 2 {
			t.Fatalf("image %d: BatchMVMs = %d, want 2 (one per mapped layer)", i, st.BatchMVMs)
		}
		st.BatchMVMs = 0
		if st != ref {
			t.Fatalf("image %d: batch stats %+v != serial %+v", i, st, ref)
		}
	}
}

// TestForwardBatchPerImageFailure: a malformed input must fail alone; its
// batchmates stay bit-identical to their serial outputs.
func TestForwardBatchPerImageFailure(t *testing.T) {
	eng, xs := batchTestEngine(t)
	serial := eng.NewSession(0)
	sess := eng.NewSession(0)
	defer sess.Close()

	batch := []*nn.Tensor{xs[0], nn.NewTensor(5), xs[2]}
	streams := []uint64{70, 71, 72}
	outs, errs := sess.ForwardBatch(batch, streams)
	if errs[1] == nil || outs[1] != nil {
		t.Fatal("bad-shape image must fail")
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("batchmate %d failed: %v", i, errs[i])
		}
		serial.Reseed(streams[i])
		want := serial.Forward(batch[i])
		for j, v := range outs[i].Data {
			if v != want.Data[j] {
				t.Fatalf("batchmate %d logit %d: %v vs %v", i, j, v, want.Data[j])
			}
		}
	}
}

// TestMVMLayerBatchMatchesSerial: the replica router's batched layer MVM
// must be bit- and stats-identical to per-image MVMLayer under the same
// derived streams.
func TestMVMLayerBatchMatchesSerial(t *testing.T) {
	eng, _ := batchTestEngine(t)
	layer := eng.Layers()[0]
	m := eng.Mapped(layer)

	const B = 5
	xs := make([][]float64, B)
	for i := range xs {
		xs[i] = make([]float64, 12)
		for j := range xs[i] {
			xs[i][j] = float64((i+j)%9) / 9
		}
	}
	streams := make([]uint64, B)
	idx := make([]int, B)
	for i := range streams {
		streams[i] = uint64(40 + i)
		idx[i] = i
	}

	serial := eng.NewSession(0)
	want := make([][]float64, B)
	wantSt := make([]Stats, B)
	for i := range xs {
		serial.Reseed(streams[i])
		out, st := serial.MVMLayer(layer, xs[i])
		want[i] = append([]float64(nil), out...)
		wantSt[i] = st
	}

	sess := eng.NewSession(0)
	defer sess.Close()
	outs := make([][]float64, B)
	diffs := make([]Stats, B)
	sess.MVMLayerBatch(layer, idx, streams, xs, outs, diffs)
	for i := range xs {
		if len(outs[i]) != m.outDim {
			t.Fatalf("image %d: out dim %d", i, len(outs[i]))
		}
		for j, v := range outs[i] {
			if v != want[i][j] {
				t.Fatalf("image %d out %d: %v vs %v", i, j, v, want[i][j])
			}
		}
		d := diffs[i]
		if d.BatchMVMs != 1 {
			t.Fatalf("image %d: BatchMVMs = %d", i, d.BatchMVMs)
		}
		d.BatchMVMs = 0
		if d != wantSt[i] {
			t.Fatalf("image %d stats: %+v vs %+v", i, d, wantSt[i])
		}
	}
}

// TestForwardBatchFallbackLayer: with a layer degraded to the software
// path, the batched forward must still answer every image and count
// SoftMVMs per lane.
func TestForwardBatchFallbackLayer(t *testing.T) {
	eng, xs := batchTestEngine(t)
	layer := eng.Layers()[0]
	if err := eng.SetFallback(layer, true); err != nil {
		t.Fatal(err)
	}
	sess := eng.NewSession(0)
	defer sess.Close()
	streams := []uint64{1, 2, 3, 4}
	outs, errs := sess.ForwardBatch(xs[:4], streams)
	for i := range outs {
		if errs[i] != nil || outs[i] == nil {
			t.Fatalf("image %d: %v", i, errs[i])
		}
		st := sess.DrainBatchStats(i)
		if st.SoftMVMs != 1 {
			t.Fatalf("image %d: SoftMVMs = %d, want 1", i, st.SoftMVMs)
		}
	}
}

// TestForwardBatchArenaReuse pins the 0-alloc contract of the warm batched
// forward across varying batch sizes: after warming at the largest size,
// smaller and repeated batches must not allocate at all.
func TestForwardBatchArenaReuse(t *testing.T) {
	eng, xs := batchTestEngine(t)
	sess := eng.NewSession(0)
	defer sess.Close()
	streams := make([]uint64, len(xs))
	for i := range streams {
		streams[i] = uint64(i)
	}
	// Warm at the largest size (lane spawn, arena growth), then vary.
	sess.ForwardBatch(xs, streams)
	for _, size := range []int{1, 4, 16, 7, 16} {
		allocs := testing.AllocsPerRun(10, func() {
			if _, errs := sess.ForwardBatch(xs[:size], streams[:size]); errs[0] != nil {
				t.Fatal(errs[0])
			}
		})
		if allocs != 0 {
			t.Fatalf("batch size %d: %v allocs/op on warm ForwardBatch", size, allocs)
		}
	}
}

// TestRaceForwardBatchVsMutators is the batched counterpart of
// TestRaceTrafficVsMutators: concurrent ForwardBatch streams against fault
// injection, remaps, scrub repairs, fallback flips, and retunes. Under
// -race this certifies the batched path takes the same slot locks as the
// serial one.
func TestRaceForwardBatchVsMutators(t *testing.T) {
	rng := rand.New(rand.NewPCG(22, 22))
	net := &nn.Network{Name: "brace", InShape: []int{10},
		Layers: []nn.Layer{nn.NewDense(10, 12, rng), &nn.ReLU{}, nn.NewDense(12, 4, rng)}}
	cfg := quietConfig(SchemeABN(8), 2)
	cfg.SpareRows = 8
	eng, err := Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	layers := eng.Layers()
	xs := make([]*nn.Tensor, 6)
	for i := range xs {
		xs[i] = nn.NewTensor(10)
		for j := range xs[i].Data {
			xs[i].Data[j] = float64((i+j)%5) / 5
		}
	}

	const iters = 25
	var mut sync.WaitGroup
	stop := make(chan struct{})
	var traffic sync.WaitGroup

	for g := 0; g < 3; g++ {
		traffic.Add(1)
		go func(g int) {
			defer traffic.Done()
			sess := eng.NewSession(uint64(200 + g))
			defer sess.Close()
			streams := make([]uint64, len(xs))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for j := range streams {
					streams[j] = uint64(g*100_000 + i*100 + j)
				}
				outs, errs := sess.ForwardBatch(xs, streams)
				for j := range outs {
					if errs[j] != nil {
						t.Errorf("stream %d image %d: %v", g, j, errs[j])
						return
					}
				}
			}
		}(g)
	}

	mut.Add(1)
	go func() {
		defer mut.Done()
		mrng := stats.SubRNG(34, 1)
		for i := 0; i < iters; i++ {
			layer := layers[i%len(layers)]
			err := eng.WithArrays(layer, func(arrays []*crossbar.Array) {
				for _, a := range arrays {
					a.SetStuck(mrng.IntN(a.Rows), mrng.IntN(a.Cols), uint8(mrng.IntN(a.NumLevels())))
				}
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	mut.Add(1)
	go func() {
		defer mut.Done()
		for i := 0; i < iters; i++ {
			if err := eng.Remap(layers[i%len(layers)]); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	mut.Add(1)
	go func() {
		defer mut.Done()
		srng := stats.SubRNG(35, 1)
		for i := 0; i < iters; i++ {
			layer := layers[(i+1)%len(layers)]
			err := eng.WithScrubTargets(layer, func(targets []ScrubTarget) {
				for _, tgt := range targets {
					a := tgt.Arr
					r := srng.IntN(a.Rows)
					for c := 0; c < a.Cols; c += 8 {
						a.ProgramVerify(r, c, a.Programmed(r, c), 3, tgt.PulseFail, srng)
					}
				}
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	mut.Add(1)
	go func() {
		defer mut.Done()
		for i := 0; i < iters; i++ {
			layer := layers[i%len(layers)]
			if err := eng.SetFallback(layer, i%2 == 0); err != nil {
				t.Error(err)
				return
			}
			dev := cfg.Device
			dev.TempK = 350 + float64(i%60)
			if err := eng.Retune(dev); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	mut.Wait()
	close(stop)
	traffic.Wait()
}

// BenchmarkForwardBatch measures the warm batched forward at the serving
// batch size (16 images through the bench MLP shape) — the kernel the
// coalescing scheduler leans on. Allocs must stay at zero.
func BenchmarkForwardBatch(b *testing.B) {
	rng := rand.New(rand.NewPCG(8, 8))
	net := &nn.Network{Name: "bench", InShape: []int{16},
		Layers: []nn.Layer{nn.NewDense(16, 12, rng), &nn.ReLU{}, nn.NewDense(12, 4, rng)}}
	cfg := DefaultConfig(SchemeABN(9))
	cfg.Device.BitsPerCell = 2
	eng, err := Map(net, cfg)
	if err != nil {
		b.Fatal(err)
	}
	const B = 16
	xs := make([]*nn.Tensor, B)
	streams := make([]uint64, B)
	for i := range xs {
		xs[i] = nn.NewTensor(16)
		for j := range xs[i].Data {
			xs[i].Data[j] = float64((i*5+j)%13) / 13
		}
		streams[i] = uint64(i + 1)
	}
	sess := eng.NewSession(0)
	defer sess.Close()
	sess.ForwardBatch(xs, streams)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, errs := sess.ForwardBatch(xs, streams)
		if errs[0] != nil {
			b.Fatal(errs[0])
		}
	}
}
