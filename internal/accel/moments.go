package accel

import (
	"math"
	"math/big"

	"repro/internal/core"
)

// LayerMoments is the analytic single-pass error model of one mapped matrix:
// the expected squared accumulator error per output element and the ECU
// outcome rates, derived by enumerating every error event the noise model
// can produce (transient RTN steps, giant-RTN flickers, uncharacterized
// stuck cells) and classifying each one through the group's actual code —
// residue lookup, B check, plausibility bound, retry policy — instead of
// Monte-Carlo sampling it. This is the MemSE-style moment source the
// internal/predict propagator feeds through the network.
type LayerMoments struct {
	// VarAcc is the expected squared error of the digital accumulator per
	// output element (mean over output rows), in pre-dequantization integer
	// units. Multiply by (WeightScale * input quantization scale)^2 to get
	// output-unit variance for one MVM.
	VarAcc float64
	// WeightScale is the layer's weight quantization scale.
	WeightScale float64
	// PDetect is the predicted probability that a group read ends in a
	// final detected-uncorrectable status after retries — directly
	// comparable to the rates fault.Monitor measures in deployment.
	PDetect float64
	// PCorrect is the predicted per-group-read corrected rate, true
	// corrections and plausible miscorrections combined (the ECU cannot
	// tell them apart, and neither can the monitor).
	PCorrect float64
	// GroupReadsPerMVM is the ECU-visible group reads one inference
	// through this matrix performs (groups x input bit planes).
	GroupReadsPerMVM int
}

// eventOutcome classifies one additive error event under a group's code.
type eventOutcome int

const (
	// outcomeSilent: the error reaches the lanes unflagged (NoECC, or a
	// multiple of A*B sliding through residue and B checks).
	outcomeSilent eventOutcome = iota
	// outcomeCorrected: the table syndrome exactly cancels the error.
	outcomeCorrected
	// outcomeMiscorrected: an aliased table hit passed the B check and the
	// plausibility bound; the "correction" left a residual error behind.
	outcomeMiscorrected
	// outcomeDetected: flagged but uncorrectable; after retries the ECU
	// reverts and the decoder truncates the raw error into the lanes.
	outcomeDetected
)

// eventClass is the precomputed fate of one error event: its outcome, the
// lane it lands in, and the squared lane-level error it leaves behind.
type eventClass struct {
	outcome eventOutcome
	lane    int
	lamSq   float64 // squared residual lane error for silent/miscorrected
	revSq   float64 // squared residual lane error if finally detected
	revLane int
}

// laneError attributes a quotient-level error magnitude to the lane its
// leading bit falls in and returns the per-lane magnitude, clamped at the
// digital saturation bound maxLane exactly like the read path clamps.
func (g *group) laneError(f float64) (int, float64) {
	if f <= 0 {
		return 0, 0
	}
	laneBits := g.layout.LaneBits()
	lane := 0
	if f >= 1 {
		lane = int(math.Log2(f)) / laneBits
	}
	if lane >= g.layout.Operands {
		lane = g.layout.Operands - 1
	}
	lam := f * math.Ldexp(1, -lane*laneBits)
	if lam > float64(g.maxLane) {
		lam = float64(g.maxLane)
	}
	return lane, lam
}

// wordFloat converts a Word magnitude to float64 (magnitudes here are error
// syndromes, far below the 53-bit mantissa in the common case; larger ones
// only feed a clamped variance bound, where rounding is irrelevant).
func wordFloat(w core.Word) float64 {
	f, _ := new(big.Float).SetInt(w.Big()).Float64()
	return f
}

// classify runs one signed step error at a physical-row bit offset through
// the group's ECU pipeline analytically: residue, table lookup, B detection
// check, plausibility bound, and the revert-and-truncate path.
func (g *group) classify(steps, bitOffset int) eventClass {
	mag := math.Abs(float64(steps))
	fAbs := math.Ldexp(mag, bitOffset)
	if g.code == nil {
		lane, lam := g.laneError(fAbs)
		return eventClass{outcome: outcomeSilent, lane: lane, lamSq: lam * lam}
	}
	a, b, m := g.code.A, g.code.B, g.code.M()
	// The revert path: the decoder divides the raw erroneous word by M and
	// truncates, so the surviving quotient error is |d|/M in the lane the
	// leading bit falls in, clamped by digital saturation. Every outcome
	// carries it — even an alone-correctable event ends up reverted raw
	// when the read is flagged through a co-occurring error.
	revLane, rev := g.laneError(fAbs / float64(m))
	revSq := rev * rev
	detected := eventClass{outcome: outcomeDetected, revLane: revLane, revSq: revSq}
	syn := core.SyndromeFromSteps(steps, bitOffset)
	rho := syn.Residue(a)
	if rho == 0 {
		if b > 1 && syn.Mag.ModU64(b) != 0 {
			return detected
		}
		// Multiple of A*B: invisible to both checks, decodes to a clean
		// quotient error — the silent escape.
		lane, lam := g.laneError(fAbs / float64(m))
		return eventClass{outcome: outcomeSilent, lane: lane, lamSq: lam * lam, revLane: revLane, revSq: revSq}
	}
	if g.code.Table == nil {
		return detected
	}
	s, ok := g.code.Table.Lookup(rho)
	if !ok {
		return detected
	}
	resid := syn.AddTo(core.Syndrome{Neg: !s.Neg, Mag: s.Mag})
	if resid.IsZero() {
		return eventClass{outcome: outcomeCorrected, revLane: revLane, revSq: revSq}
	}
	if b > 1 && resid.Mag.ModU64(b) != 0 {
		return detected
	}
	// The residual is a multiple of A (both error and syndrome share the
	// residue) and of B (check passed), so it decodes to a clean quotient
	// shift. The plausibility bound rejects it when the per-lane shift
	// alone exceeds the reachable partial-sum range.
	f := wordFloat(resid.Mag) / float64(m)
	laneBits := g.layout.LaneBits()
	lane := 0
	if f >= 1 {
		lane = int(math.Log2(f)) / laneBits
	}
	if lane >= g.layout.Operands {
		lane = g.layout.Operands - 1
	}
	lam := f * math.Ldexp(1, -lane*laneBits)
	if lam > float64(g.maxLane) {
		return detected
	}
	return eventClass{outcome: outcomeMiscorrected, lane: lane, lamSq: lam * lam, revLane: revLane, revSq: revSq}
}

// clampProb clamps a probability to [0, 1] against float cancellation.
func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// safeDiv divides guarding against a vanishing denominator.
func safeDiv(num, den float64) float64 {
	if den < 1e-12 {
		return 0
	}
	return num / den
}

// event is one possible error of a (group, row, bit plane) read, tied to the
// source (row draw, giant cell, or stuck cell) that produces it.
type event struct {
	p          float64 // per-attempt occurrence probability
	persistent bool    // recurs identically on every retry (stuck cells)
	src        int     // index into the read's source list
	cls        eventClass
}

// source is one independent error generator within a read: a row's noisy
// conversion (whose step outcomes are mutually exclusive), one giant-prone
// cell, or one stuck cell.
type source struct {
	pAny       float64 // probability the source produces any error
	pDet       float64 // probability it produces a detected-classified error
	persistent bool
}

// maxMomentStep bounds the per-row step enumeration; deviations beyond it
// are folded into the extreme buckets (their syndromes are uncorrectable
// either way, so only the clamped revert magnitude is approximated).
const maxMomentStep = 16

// momentWidth is the step-distribution bucket count.
const momentWidth = 2*maxMomentStep + 1

// momentZeros grows the per-read distribution arena without a per-call
// allocation.
var momentZeros [momentWidth]float64

// ghNodes is the 5-point Gauss-Hermite rule, weights normalized by sqrt(pi),
// used to integrate over a row's frozen activity-pattern residual: state j
// places the residual mean at Resid + sqrt(2)*residSD*x_j with weight w_j.
var ghNodes = [5]struct{ x, w float64 }{
	{-2.0201828704560856, 0.011257411327720688},
	{-0.9585724646138185, 0.22207592200561263},
	{0, 0.5333333333333333},
	{0.9585724646138185, 0.22207592200561263},
	{2.0201828704560856, 0.011257411327720688},
}

// Moments computes the analytic error moments of this mapped matrix under
// the given per-bit-plane input activity (alphas[b] is the fraction of
// columns driven in input bit plane b, len = InputBits; nil means the
// balanced-input default of 0.5 everywhere). The model enumerates the error
// events of every (group, row, bit plane) — the full quantized step
// distribution of each row's noisy conversion, giant-RTN flickers, and
// uncharacterized stuck cells — classifies each through the group's real
// code and table, and composes per-read outcome probabilities with the
// retry policy. Three persistence classes matter:
//
//   - Stuck cells repeat identically on every attempt; retries cannot
//     clear them (persistent sources).
//   - A row's noisy conversion redraws its Gaussian/RTN part per attempt,
//     but the activity pattern — which columns are driven — is frozen for
//     the whole read, so the pattern-dependent residual shift persists
//     across retries. Each row is therefore integrated over Gauss-Hermite
//     activity states: within state j the row errs i.i.d. per attempt and
//     survives all Retries+1 attempts flagged with probability q_j^(R+1).
//     Without the states, rows whose mean-activity shift sits inside the
//     rounding window would never detect — detection is a threshold
//     phenomenon, and evaluating it at the mean hides the coded-scheme
//     collapse at fine cell precisions (Jensen's gap).
//   - Giant-RTN flickers redraw fully per attempt (transient sources).
//
// Reads where two or more sources err simultaneously are treated as
// detected (their combined syndromes are outside every table), and any
// read that ends flagged reverts: the decoder truncation turns every
// co-occurring raw error — even alone-correctable ones — into lane
// garbage.
func (m *MappedMatrix) Moments(alphas []float64) LayerMoments {
	planes := m.cfg.InputBits
	if len(alphas) == 0 {
		alphas = make([]float64, planes)
		for i := range alphas {
			alphas[i] = 0.5
		}
	}
	internalOut := m.outDim
	if m.cfg.Encoding == EncodingDifferential {
		internalOut = 2 * m.outDim
	}
	varAcc := make([]float64, internalOut)
	flicker := m.cfg.Device.GiantFlickerProb
	rp1 := float64(m.cfg.Retries + 1)
	prtn := m.sampler.Params().PRTN
	var pDetSum, pCorrSum float64
	groupReads := 0

	// Per-read scratch, reused across (group, plane) iterations.
	type rowState struct {
		w, q float64 // state weight, per-attempt detect probability
		base int     // step-distribution offset into stArena
	}
	type rowInfo struct {
		row, off   int
		detFinal   float64 // P(row keeps the read flagged through all attempts)
		stateBase  int
		stateCount int
	}
	var (
		stArena   []float64
		events    []event
		sources   []source
		rowStates []rowState
		rowInfos  []rowInfo
		rowAnys   []float64
		clsCache  []eventClass
		clsSeen   []bool
	)

	for _, ch := range m.chunks {
		for _, g := range ch.groups {
			rows := g.arr.Rows
			// The classification of a (row, step) pair is plane- and
			// state-independent, so cache it per group across the whole
			// plane x activity-state sweep. Slots cover |step| <= 31; the
			// rare larger giant magnitudes classify directly.
			need := rows * 64
			if cap(clsCache) < need {
				clsCache = make([]eventClass, need)
				clsSeen = make([]bool, need)
			}
			clsCache, clsSeen = clsCache[:need], clsSeen[:need]
			for i := range clsSeen {
				clsSeen[i] = false
			}
			classify := func(r, step, off int) eventClass {
				if step < -31 || step > 31 {
					return g.classify(step, off)
				}
				idx := r*64 + step + 32
				if !clsSeen[idx] {
					clsCache[idx] = g.classify(step, off)
					clsSeen[idx] = true
				}
				return clsCache[idx]
			}
			for b := 0; b < planes && b < len(alphas); b++ {
				alpha := alphas[b]
				groupReads++
				if alpha <= 0 {
					continue // no driven columns, no error sources
				}
				events = events[:0]
				sources = sources[:0]
				rowStates = rowStates[:0]
				rowInfos = rowInfos[:0]
				rowAnys = rowAnys[:0]
				stArena = stArena[:0]
				prodRowKeep, prodRowAny := 1.0, 1.0
				for r := 0; r < rows; r++ {
					hist := g.arr.Histogram(r)
					off := r * g.arr.BitsPerCell
					agg, residSD := m.sampler.AggregateActivity(hist, alpha)
					// Cheap reachability bound: if the whole deviation
					// distribution — including the activity-pattern
					// spread — sits inside the +/-0.5 rounding window,
					// the row cannot err.
					spread := agg.Sigma + residSD
					if agg.N > 0 {
						spread += math.Sqrt(float64(agg.N)*prtn*(1-prtn)) * agg.Sbar
					}
					if math.Abs(agg.Resid)+8*spread >= 0.5 {
						ri := rowInfo{row: r, off: off, stateBase: len(rowStates)}
						var anyMean float64
						for j := range ghNodes {
							wj := ghNodes[j].w
							aggJ := agg
							aggJ.Resid = agg.Resid + math.Sqrt2*residSD*ghNodes[j].x
							if residSD <= 1e-12 {
								if j != 2 {
									continue // degenerate: single mean state
								}
								wj = 1
							}
							base := len(stArena)
							stArena = append(stArena, momentZeros[:]...)
							m.sampler.StepDistribution(aggJ, maxMomentStep, stArena[base:base+momentWidth])
							var qj, anyj float64
							for st := -maxMomentStep; st <= maxMomentStep; st++ {
								q := stArena[base+st+maxMomentStep]
								if st == 0 || q < 1e-12 {
									continue
								}
								anyj += q
								if classify(r, st, off).outcome == outcomeDetected {
									qj += q
								}
							}
							rowStates = append(rowStates, rowState{w: wj, q: qj, base: base})
							anyMean += wj * anyj
							ri.detFinal += wj * math.Pow(qj, rp1)
						}
						ri.stateCount = len(rowStates) - ri.stateBase
						if anyMean > 1e-15 {
							rowInfos = append(rowInfos, ri)
							rowAnys = append(rowAnys, anyMean)
							prodRowKeep *= 1 - ri.detFinal
							prodRowAny *= 1 - anyMean
						} else {
							rowStates = rowStates[:ri.stateBase]
						}
					}
					if g.giantPresent[r>>6]>>(uint(r)&63)&1 != 0 {
						for _, gi := range g.giantRows[r] {
							stp := int(math.Round(gi.mag))
							if stp == 0 {
								continue
							}
							p := alpha * flicker
							cls := classify(r, stp, off)
							src := source{pAny: p}
							if cls.outcome == outcomeDetected {
								src.pDet = p
							}
							events = append(events, event{p: p, src: len(sources), cls: cls})
							sources = append(sources, src)
						}
					}
					if g.stuckPresent[r>>6]>>(uint(r)&63)&1 != 0 {
						for _, si := range g.stuckRows[r] {
							cls := classify(r, si.delta, off)
							src := source{pAny: alpha, persistent: true}
							if cls.outcome == outcomeDetected {
								src.pDet = alpha
							}
							events = append(events, event{p: alpha, persistent: true, src: len(sources), cls: cls})
							sources = append(sources, src)
						}
					}
				}
				if len(events) == 0 && len(rowInfos) == 0 {
					continue
				}

				if g.code == nil {
					// No ECU: nothing is flagged, retried, or reverted —
					// every error event lands silently with its own lane
					// error, and independent variances simply add.
					wNoECC := math.Ldexp(1, 2*b)
					for _, ri := range rowInfos {
						for _, st := range rowStates[ri.stateBase : ri.stateBase+ri.stateCount] {
							for sp := -maxMomentStep; sp <= maxMomentStep; sp++ {
								q := stArena[st.base+sp+maxMomentStep]
								if sp == 0 || q < 1e-12 {
									continue
								}
								cls := classify(ri.row, sp, ri.off)
								varAcc[g.outRows[cls.lane]] += st.w * q * cls.lamSq * wNoECC
							}
						}
					}
					for _, e := range events {
						varAcc[g.outRows[e.cls.lane]] += e.p * e.cls.lamSq * wNoECC
					}
					continue
				}

				// Per-attempt detection: a read is flagged when any source
				// produces a detected-classified error, or when two or
				// more sources err at once (combined syndromes are outside
				// every table). Decompose the flag probability by
				// persistence: stuck-only causes repeat every attempt
				// (pStuckBad), row causes persist through their frozen
				// activity state (prodRowKeep is already final over the
				// retries), and the transient remainder — detected giants
				// plus any cross-source multi — redraws per attempt
				// (qTrans).
				p0, p0Persist := 1.0, 1.0
				for _, s := range sources {
					p0 *= 1 - s.pAny
					if s.persistent {
						p0Persist *= 1 - s.pAny
					}
				}
				prodAllAny := p0 * prodRowAny
				var p1All, p1PersistAny, p1okPersist, pGiantSingle float64
				for _, s := range sources {
					keepOthers := safeDiv(prodAllAny, 1-s.pAny)
					p1All += s.pAny * keepOthers
					if s.persistent {
						kp := safeDiv(p0Persist, 1-s.pAny)
						p1PersistAny += s.pAny * kp
						p1okPersist += (s.pAny - s.pDet) * kp
					} else {
						pGiantSingle += s.pDet * keepOthers
					}
				}
				for _, a := range rowAnys {
					p1All += a * safeDiv(prodAllAny, 1-a)
				}
				pStuckBad := clampProb(1 - p0Persist - p1okPersist)
				pMultiAll := clampProb(1 - prodAllAny - p1All)
				pMultiPersist := clampProb(1 - p0Persist - p1PersistAny)
				qTrans := clampProb(pGiantSingle + clampProb(pMultiAll-pMultiPersist))
				finalQTrans := math.Pow(qTrans, rp1)
				retryFactorTrans := 1.0
				if qTrans > 0 && qTrans < 1 {
					retryFactorTrans = (1 - finalQTrans) / (1 - qTrans)
				}
				pDetRead := clampProb(1 - (1-pStuckBad)*prodRowKeep*(1-finalQTrans))
				pDetSum += pDetRead
				// Probability that some transient-or-row cause errs on
				// every attempt — what keeps a read flagged alongside a
				// persistent correctable event.
				pTransFinal := math.Pow(clampProb(1-safeDiv(prodAllAny, p0Persist)), rp1)

				w := math.Ldexp(1, 2*b) // lane errors enter the accumulator as lane<<b
				for _, ri := range rowInfos {
					// Detection through anything but this row, for the
					// revert fate of the row's correctable-alone steps.
					pDetOthers := pDetRead
					if ri.detFinal < 1 {
						pDetOthers = clampProb(1 - (1-pDetRead)/(1-ri.detFinal))
					}
					for _, st := range rowStates[ri.stateBase : ri.stateBase+ri.stateCount] {
						finalQj := math.Pow(st.q, rp1)
						rfj := 1.0
						if st.q > 0 && st.q < 1 {
							rfj = (1 - finalQj) / (1 - st.q)
						}
						condDet := 0.0
						if st.q > 0 {
							condDet = st.w * finalQj / st.q
						}
						for sp := -maxMomentStep; sp <= maxMomentStep; sp++ {
							q := stArena[st.base+sp+maxMomentStep]
							if sp == 0 || q < 1e-12 {
								continue
							}
							cls := classify(ri.row, sp, ri.off)
							switch cls.outcome {
							case outcomeSilent, outcomeMiscorrected:
								pEff := st.w * q * rfj * (1 - pDetRead)
								varAcc[g.outRows[cls.lane]] += pEff * cls.lamSq * w
								if cls.outcome == outcomeMiscorrected {
									pCorrSum += pEff
								}
								varAcc[g.outRows[cls.revLane]] += st.w * q * pDetOthers * cls.revSq * w
							case outcomeCorrected:
								pCorrSum += st.w * q * rfj * (1 - pDetRead)
								varAcc[g.outRows[cls.revLane]] += st.w * q * pDetOthers * cls.revSq * w
							case outcomeDetected:
								// The row kept the read flagged through
								// every attempt; the revert truncation
								// leaves this step's residual in the lane.
								varAcc[g.outRows[cls.revLane]] += condDet * q * cls.revSq * w
							}
						}
					}
				}
				for _, e := range events {
					switch e.cls.outcome {
					case outcomeSilent, outcomeMiscorrected, outcomeCorrected:
						pEff := e.p * (1 - pDetRead)
						if !e.persistent {
							pEff = e.p * retryFactorTrans * (1 - pDetRead)
						}
						switch e.cls.outcome {
						case outcomeCorrected:
							pCorrSum += pEff
						case outcomeMiscorrected:
							pCorrSum += pEff
							varAcc[g.outRows[e.cls.lane]] += pEff * e.cls.lamSq * w
						default:
							varAcc[g.outRows[e.cls.lane]] += pEff * e.cls.lamSq * w
						}
						// A correctable-alone event still reverts when the
						// read ends detected through other sources; its
						// raw error then survives as truncated garbage.
						var pRevert float64
						if e.persistent {
							pOthers := clampProb(1 - safeDiv(p0Persist, 1-sources[e.src].pAny))
							pRevert = e.p * (pOthers + (1-pOthers)*pTransFinal)
						} else {
							pRevert = e.p * pDetRead
						}
						varAcc[g.outRows[e.cls.revLane]] += pRevert * e.cls.revSq * w
					case outcomeDetected:
						// Conditional on the read ending detected, the
						// revert truncation leaves this event's residual.
						var pFinal float64
						if e.persistent {
							pFinal = e.p
						} else if qTrans > 0 {
							share := e.p / qTrans
							if share > 1 {
								share = 1
							}
							pFinal = (1 - pStuckBad) * prodRowKeep * finalQTrans * share
						}
						varAcc[g.outRows[e.cls.revLane]] += pFinal * e.cls.revSq * w
					}
				}
			}
		}
	}

	lm := LayerMoments{WeightScale: m.scale, GroupReadsPerMVM: groupReads}
	if groupReads > 0 {
		lm.PDetect = pDetSum / float64(groupReads)
		lm.PCorrect = pCorrSum / float64(groupReads)
		if lm.PCorrect > 1 {
			lm.PCorrect = 1
		}
	}
	// Differential pairs subtract in the output; their error variances add.
	var total float64
	for _, v := range varAcc {
		total += v
	}
	lm.VarAcc = total / float64(m.outDim)
	return lm
}
