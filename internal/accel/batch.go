package accel

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/crossbar"
	"repro/internal/fixed"
	"repro/internal/nn"
	"repro/internal/noise"
	"repro/internal/stats"
)

// batchKernel is the scratch shared across the images of one batched MVM:
// the flat level-major count buffer and accumulators of the fused
// multi-image bit-plane kernel, plus small per-image gather slices. One
// batchKernel belongs to one Session (coordinator goroutine); the per-image
// state lives in ordinary per-lane Scratch arenas.
type batchKernel struct {
	counts []int
	accs   []noise.AggAccum
	sets   [][][]uint64
	scales []float64
	vsums  []int64
}

func (k *batchKernel) countsFor(n int) []int {
	if cap(k.counts) < n {
		k.counts = make([]int, n)
	}
	return k.counts[:n]
}

func (k *batchKernel) accsFor(n int) []noise.AggAccum {
	if cap(k.accs) < n {
		k.accs = make([]noise.AggAccum, n)
	}
	return k.accs[:n]
}

func (k *batchKernel) setsFor(n int) [][][]uint64 {
	if cap(k.sets) < n {
		k.sets = make([][][]uint64, n)
	}
	return k.sets[:n]
}

func (k *batchKernel) scalesFor(n int) []float64 {
	if cap(k.scales) < n {
		k.scales = make([]float64, n)
	}
	return k.scales[:n]
}

func (k *batchKernel) vsumsFor(n int) []int64 {
	if cap(k.vsums) < n {
		k.vsums = make([]int64, n)
	}
	return k.vsums[:n]
}

// precomputeBatch is group.precompute for B images at once: one walk of
// each row's level list and fault-shaped masks feeds all B images' plane
// aggregations (the masks differ per image; the level lists, per-level
// noise terms, and CDF tables are shared). Each image's aggregates land in
// its own Scratch arena exactly as the serial precompute would have left
// them, bit for bit, so group.read runs unchanged on top.
func (g *group) precomputeBatch(m *MappedMatrix, subs []*Scratch, kn *batchKernel) {
	rows := g.arr.Rows
	planes := len(subs[0].masks)
	stride := len(subs) * planes
	counts := kn.countsFor(g.arr.NumLevels() * stride)
	accs := kn.accsFor(stride)
	sets := kn.setsFor(len(subs))
	for i, sub := range subs {
		sets[i] = sub.masks
		sub.aggTsFor(planes * rows)
	}
	for r := 0; r < rows; r++ {
		g.arr.ActiveCountsBatch(r, sets, counts)
		lv := g.arr.LevelList(r)
		m.sampler.AccumulateRowLevelsBatch(lv, counts, accs)
		j := 0
		for _, sub := range subs {
			for b := 0; b < planes; b++ {
				agg, t := m.sampler.FinishAccum(&accs[j])
				sub.aggs[b*rows+r] = agg
				sub.ts[b*rows+r] = t
				j++
			}
		}
	}
}

// MVMBatchInto evaluates W*x for B images in one pass over the mapped
// arrays. Per image it is bit-identical to MVMInto with that image's rng
// and scratch: the deterministic precompute is fused across the batch
// (touching no RNG), while the stochastic row reads run per image, in
// batch order within each (chunk, group), each on its own rng — so every
// image's draw sequence is exactly its serial sequence. outs/xs/rngs/subs/
// sts are aligned per image; each outs[i] must have the output dimension
// and each subs[i] is that image's private arena. kn is the shared batch
// kernel scratch. Warm arenas make the whole call allocation-free.
func (m *MappedMatrix) MVMBatchInto(outs, xs [][]float64, rngs []*stats.FastRand, subs []*Scratch, sts []*Stats, kn *batchKernel) {
	for i, x := range xs {
		if len(x) != m.inDim {
			panic(fmt.Sprintf("accel: batch input %d length %d, want %d", i, len(x), m.inDim))
		}
		if len(outs[i]) != m.outDim {
			panic(fmt.Sprintf("accel: batch output %d length %d, want %d", i, len(outs[i]), m.outDim))
		}
	}
	scales := kn.scalesFor(len(xs))
	vsums := kn.vsumsFor(len(xs))
	for i, x := range xs {
		qx := fixed.QuantizeUnsignedInto(subs[i].qvals, x, m.cfg.InputBits)
		subs[i].qvals = qx.Values
		scales[i] = qx.Scale
	}
	internalOut := m.outDim
	if m.cfg.Encoding == EncodingDifferential {
		internalOut = 2 * m.outDim
	}
	for _, sub := range subs {
		sub.accFor(internalOut)
	}
	bsn := m.sampler.BinomSnapshot()
	for _, ch := range m.chunks {
		for i, sub := range subs {
			vals := sub.qvals[ch.colLo:ch.colHi]
			sub.masks = crossbar.InputMasksInto(sub.masks, vals, m.cfg.InputBits)
			var vsum int64
			for _, v := range vals {
				vsum += int64(v)
			}
			vsums[i] = vsum
		}
		for _, g := range ch.groups {
			g.precomputeBatch(m, subs, kn)
			for i, sub := range subs {
				for b := range sub.masks {
					lanes := g.read(m, sub, b, rngs[i], &bsn, sts[i])
					for li, outRow := range g.outRows {
						sub.acc[outRow] += int64(lanes[li]) << uint(b)
					}
				}
			}
		}
		if m.cfg.Encoding == EncodingOffsetBinary {
			for i, sub := range subs {
				bias := fixed.BiasCorrection(m.cfg.WeightBits, vsums[i])
				for r := range sub.acc {
					sub.acc[r] -= bias
				}
			}
		}
	}
	for i, out := range outs {
		f := m.scale * scales[i]
		acc := subs[i].acc
		for r := range out {
			if m.cfg.Encoding == EncodingDifferential {
				out[r] = float64(acc[2*r]-acc[2*r+1]) * f
			} else {
				out[r] = float64(acc[r]) * f
			}
		}
	}
}

// batchLane is one image slot of a session's batch arena: its noise RNG,
// its private scratch arena, and its stats — the per-image state a serial
// Session keeps once, replicated per batch position so image i's evaluation
// stays a pure function of (engine, streams[i]) regardless of batchmates.
type batchLane struct {
	src   *rand.PCG
	rng   *stats.FastRand
	scr   *Scratch
	stats Stats
	layer []Stats
}

// BatchArena is the batch-shaped growth of the session scratch arena:
// per-image lanes plus the shared batch-kernel scratch and the compaction
// buffers of the batched slot dispatch. It grows with the largest batch
// seen and never shrinks, so steady-state batched traffic allocates
// nothing.
type BatchArena struct {
	lanes []*batchLane
	kn    batchKernel

	// per-call gather state (valid during one batched slot dispatch)
	outs  [][]float64
	errs  []error
	vxs   [][]float64
	vouts [][]float64
	vrngs []*stats.FastRand
	vsubs []*Scratch
	vsts  []*Stats
	vj    []int
	pre   []Stats
}

// lanesFor grows the arena to at least n lanes.
func (ba *BatchArena) lanesFor(s *Session, n int) []*batchLane {
	for len(ba.lanes) < n {
		src := stats.SubPCG(s.engine.cfg.Seed, 0)
		ba.lanes = append(ba.lanes, &batchLane{
			src:   src,
			rng:   stats.NewFastRand(src),
			scr:   NewScratch(),
			layer: make([]Stats, len(s.engine.slots)),
		})
	}
	return ba.lanes[:n]
}

func (ba *BatchArena) outsFor(n int) [][]float64 {
	if cap(ba.outs) < n {
		ba.outs = make([][]float64, n)
	}
	ba.outs = ba.outs[:n]
	for i := range ba.outs {
		ba.outs[i] = nil
	}
	return ba.outs
}

func (ba *BatchArena) errsFor(n int) []error {
	if cap(ba.errs) < n {
		ba.errs = make([]error, n)
	}
	ba.errs = ba.errs[:n]
	for i := range ba.errs {
		ba.errs[i] = nil
	}
	return ba.errs
}

// ensureBatch lazily builds the session's batch machinery: the lockstep
// forward batcher over per-lane network clones, and the batch arena.
func (s *Session) ensureBatch() {
	if s.fb == nil {
		e := s.engine
		s.fb = nn.NewForwardBatcher(e.InferenceNet, e.Layers())
		s.ba = &BatchArena{}
	}
}

// ForwardBatch runs one noisy inference per input, batched: the images
// advance in lockstep through the network, and at every mapped layer all
// of them are evaluated in a single multi-image pass over the shared
// arrays (one level-list walk per row per batch). streams[i] seeds image
// i's noise lane exactly as Reseed(streams[i]) would a serial session, so
// outs[i] is bit-identical to a serial Reseed+Forward of the same stream —
// the batch-size-invariance contract. errs[i] is non-nil (and outs[i] nil)
// when image i alone failed (e.g. a shape mismatch); batchmates are
// unaffected. Outputs and slices are valid until the session's next
// ForwardBatch. The caller owns the session; concurrent use is not
// allowed, but engine mutators (Remap, Retune, fault injection, scrub) may
// run concurrently as with serial Forward.
func (s *Session) ForwardBatch(xs []*nn.Tensor, streams []uint64) ([]*nn.Tensor, []error) {
	if len(streams) != len(xs) {
		panic(fmt.Sprintf("accel: %d inputs, %d streams", len(xs), len(streams)))
	}
	s.ensureBatch()
	for i, lane := range s.ba.lanesFor(s, len(xs)) {
		stats.ReseedSub(lane.src, s.engine.cfg.Seed, streams[i])
	}
	return s.fb.Run(xs, s.batchMVM)
}

// batchMVM is the coordinator-side multi-image layer dispatch behind
// ForwardBatch: all stochastic draws happen here, on the caller's
// goroutine, image-ordered — never on the lane goroutines.
func (s *Session) batchMVM(layer int, idx []int, xs [][]float64) ([][]float64, []error) {
	sl := s.engine.slot(layer)
	ba := s.ba
	if sl == nil {
		errs := ba.errsFor(len(idx))
		for j := range errs {
			errs[j] = fmt.Errorf("accel: layer %d is not mapped", layer)
		}
		return nil, errs
	}
	outs := ba.outsFor(len(idx))
	sl.mu.RLock()
	defer sl.mu.RUnlock()
	if sl.fallback {
		for j, x := range xs {
			lane := ba.lanes[idx[j]]
			ls := &lane.layer[layer]
			pre := *ls
			ls.SoftMVMs++
			outs[j] = sl.soft.MVM(x)
			lane.stats.Merge(ls.Diff(pre))
		}
		return outs, nil
	}
	m := sl.m
	// Validate per image so one malformed input degrades to a per-image
	// error instead of failing its batchmates.
	var errs []error
	ba.vxs, ba.vouts, ba.vrngs, ba.vsubs, ba.vsts = ba.vxs[:0], ba.vouts[:0], ba.vrngs[:0], ba.vsubs[:0], ba.vsts[:0]
	ba.vj, ba.pre = ba.vj[:0], ba.pre[:0]
	for j, x := range xs {
		if len(x) != m.inDim {
			if errs == nil {
				errs = ba.errsFor(len(idx))
			}
			errs[j] = fmt.Errorf("accel: input length %d, want %d", len(x), m.inDim)
			continue
		}
		lane := ba.lanes[idx[j]]
		ls := &lane.layer[layer]
		ba.vj = append(ba.vj, j)
		ba.pre = append(ba.pre, *ls)
		ba.vxs = append(ba.vxs, x)
		ba.vouts = append(ba.vouts, lane.scr.outFor(m.outDim))
		ba.vrngs = append(ba.vrngs, lane.rng)
		ba.vsubs = append(ba.vsubs, lane.scr)
		ba.vsts = append(ba.vsts, ls)
	}
	if len(ba.vxs) > 0 {
		m.MVMBatchInto(ba.vouts, ba.vxs, ba.vrngs, ba.vsubs, ba.vsts, &ba.kn)
	}
	for k, j := range ba.vj {
		lane := ba.lanes[idx[j]]
		ls := &lane.layer[layer]
		ls.BatchMVMs++
		lane.stats.Merge(ls.Diff(ba.pre[k]))
		outs[j] = ba.vouts[k]
	}
	return outs, errs
}

// MVMLayerBatch is MVMLayer for several batch lanes at once — the unit the
// replica router batches at. idx[j] selects the lane evaluating image j,
// streams[j] reseeds that lane (the caller derives the per-(image, layer)
// stream exactly as its serial path would), and outs[j]/diffs[j] receive
// the output and this call's ECU stats. Outputs alias each lane's arena
// and are valid until that lane's next MVM. Panics if the layer is not
// mapped, like MVMLayer.
func (s *Session) MVMLayerBatch(layer int, idx []int, streams []uint64, xs [][]float64, outs [][]float64, diffs []Stats) {
	sl := s.engine.slot(layer)
	if sl == nil {
		panic(fmt.Sprintf("accel: layer %d is not mapped", layer))
	}
	s.ensureBatch()
	ba := s.ba
	high := 0
	for _, i := range idx {
		if i >= high {
			high = i + 1
		}
	}
	ba.lanesFor(s, high)
	for j, i := range idx {
		stats.ReseedSub(ba.lanes[i].src, s.engine.cfg.Seed, streams[j])
	}
	sl.mu.RLock()
	defer sl.mu.RUnlock()
	if sl.fallback {
		for j, x := range xs {
			lane := ba.lanes[idx[j]]
			ls := &lane.layer[layer]
			pre := *ls
			ls.SoftMVMs++
			outs[j] = sl.soft.MVM(x)
			diffs[j] = ls.Diff(pre)
			lane.stats.Merge(diffs[j])
		}
		return
	}
	m := sl.m
	ba.vouts, ba.vrngs, ba.vsubs, ba.vsts, ba.pre = ba.vouts[:0], ba.vrngs[:0], ba.vsubs[:0], ba.vsts[:0], ba.pre[:0]
	for j := range xs {
		lane := ba.lanes[idx[j]]
		ls := &lane.layer[layer]
		ba.pre = append(ba.pre, *ls)
		ba.vouts = append(ba.vouts, lane.scr.outFor(m.outDim))
		ba.vrngs = append(ba.vrngs, lane.rng)
		ba.vsubs = append(ba.vsubs, lane.scr)
		ba.vsts = append(ba.vsts, ls)
	}
	m.MVMBatchInto(ba.vouts, xs, ba.vrngs, ba.vsubs, ba.vsts, &ba.kn)
	for j := range xs {
		lane := ba.lanes[idx[j]]
		ls := &lane.layer[layer]
		ls.BatchMVMs++
		diffs[j] = ls.Diff(ba.pre[j])
		lane.stats.Merge(diffs[j])
		outs[j] = ba.vouts[j]
	}
}

// DrainBatchStats returns lane i's accumulated stats since the last drain
// and resets them (per-layer tallies included) — the batched counterpart
// of DrainStats, letting a serving worker attribute ECU activity to the
// individual images of a coalesced batch.
func (s *Session) DrainBatchStats(i int) Stats {
	s.ensureBatch()
	lane := s.ba.lanesFor(s, i+1)[i]
	st := lane.stats
	lane.stats = Stats{}
	for l := range lane.layer {
		lane.layer[l] = Stats{}
	}
	return st
}

// DrainBatchLayerStatsInto drains lane i's per-layer stats into a
// caller-owned map (cleared first), mirroring DrainLayerStatsInto. Drain
// it before DrainBatchStats for the same lane — DrainBatchStats resets
// the per-layer tallies too.
func (s *Session) DrainBatchLayerStatsInto(i int, out map[int]Stats) {
	s.ensureBatch()
	lane := s.ba.lanesFor(s, i+1)[i]
	clear(out)
	for l := range lane.layer {
		if lane.layer[l] != (Stats{}) {
			out[l] = lane.layer[l]
			lane.layer[l] = Stats{}
		}
	}
}

// Close releases the session's batch machinery (parked lane goroutines).
// A session that never called ForwardBatch has nothing to release. The
// serial path stays usable after Close; the batched path re-arms lazily.
func (s *Session) Close() {
	if s.fb != nil {
		s.fb.Close()
		s.fb = nil
		s.ba = nil
	}
}

// ForwardBatch is the one-shot convenience over a throwaway session: map
// callers that do not hold a session can still run one batched pass.
// outs[i] is bit-identical to a serial session's Reseed(streams[i]) +
// Forward(xs[i]).
func (e *Engine) ForwardBatch(xs []*nn.Tensor, streams []uint64) ([]*nn.Tensor, []error) {
	s := e.NewSession(0)
	defer s.Close()
	return s.ForwardBatch(xs, streams)
}
