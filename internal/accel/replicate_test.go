package accel

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/nn"
)

func replicateTestNet(t *testing.T) (*nn.Network, *nn.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewPCG(31, 7))
	net := &nn.Network{Name: "rep", InShape: []int{10},
		Layers: []nn.Layer{nn.NewDense(10, 12, rng), &nn.ReLU{}, nn.NewDense(12, 4, rng)}}
	x := nn.FromSlice([]float64{0.2, 0.8, 0.1, 0.6, 0.4, 0.9, 0.3, 0.7, 0.5, 0.15}, 10)
	return net, x
}

// TestReplicateIndependentFaultPopulations: sibling replicas remap the
// network under offset engine seeds, so each copy draws its own map-time
// stuck-cell population — observable as diverging outputs without ECC —
// while the same replica index is reproducible bit for bit.
func TestReplicateIndependentFaultPopulations(t *testing.T) {
	net, x := replicateTestNet(t)
	cfg := quietConfig(SchemeNoECC(), 2)
	cfg.Device.FailureRate = 0.05
	base, err := Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r0, err := base.Replicate(0); err != nil || r0 != base {
		t.Fatalf("replica 0 must be the receiver itself (err %v)", err)
	}
	r1, err := base.Replicate(1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := base.Replicate(2)
	if err != nil {
		t.Fatal(err)
	}
	y1 := r1.NewSession(5).Forward(x)
	y2 := r2.NewSession(5).Forward(x)
	same := true
	for i := range y1.Data {
		if math.Abs(y1.Data[i]-y2.Data[i]) > 1e-12 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("replicas 1 and 2 share a fault population: outputs are identical")
	}

	// Same replica index from an identically configured base → bit-equal.
	base2, err := Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1b, err := base2.Replicate(1)
	if err != nil {
		t.Fatal(err)
	}
	y1b := r1b.NewSession(5).Forward(x)
	for i := range y1.Data {
		if y1.Data[i] != y1b.Data[i] {
			t.Fatalf("replica 1 not reproducible at output %d: %g vs %g", i, y1.Data[i], y1b.Data[i])
		}
	}
}

// TestMVMLayerDeterministicWithStats: a single-layer evaluation is a pure
// function of (engine, session stream, input), returns the call's own ECU
// stats, and merges them into the session totals exactly once.
func TestMVMLayerDeterministicWithStats(t *testing.T) {
	net, x := replicateTestNet(t)
	eng, err := Map(net, quietConfig(SchemeABN(8), 2))
	if err != nil {
		t.Fatal(err)
	}
	sess := eng.NewSession(3)
	sess.Reseed(11)
	outA, stA := sess.MVMLayer(0, x.Data)
	if stA.RowReads == 0 || stA.GroupReads() == 0 {
		t.Fatalf("per-call stats empty: %+v", stA)
	}
	gotA := append([]float64(nil), outA...)

	sess.Reseed(11)
	outB, stB := sess.MVMLayer(0, x.Data)
	if stA != stB {
		t.Fatalf("per-call stats not reproducible: %+v vs %+v", stA, stB)
	}
	for i := range gotA {
		if gotA[i] != outB[i] {
			t.Fatalf("reseeded re-evaluation diverges at %d: %g vs %g", i, gotA[i], outB[i])
		}
	}

	var want Stats
	want.Merge(stA)
	want.Merge(stB)
	if got := sess.DrainStats(); got != want {
		t.Fatalf("session totals %+v, want the merged per-call stats %+v", got, want)
	}

	// A second session under the same seed reproduces the first bit for bit.
	other := eng.NewSession(3)
	other.Reseed(11)
	outC, stC := other.MVMLayer(0, x.Data)
	if stC != stA {
		t.Fatalf("cross-session stats diverge: %+v vs %+v", stC, stA)
	}
	for i := range gotA {
		if gotA[i] != outC[i] {
			t.Fatalf("cross-session output diverges at %d", i)
		}
	}
}

// TestInferenceNetReusesBuffers: the routing clone shares weights with the
// mapped network but owns its forward-pass scratch, so two clones can run
// concurrently without aliasing each other's activations.
func TestInferenceNetReusesBuffers(t *testing.T) {
	net, x := replicateTestNet(t)
	eng, err := Map(net, quietConfig(SchemeABN(8), 2))
	if err != nil {
		t.Fatal(err)
	}
	a, b := eng.InferenceNet(), eng.InferenceNet()
	sess := eng.NewSession(9)
	mvms := make([]nn.MVMFunc, len(net.Layers))
	for _, layer := range eng.Layers() {
		layer := layer
		mvms[layer] = func(in []float64) []float64 {
			out, _ := sess.MVMLayer(layer, in)
			return out
		}
	}
	sess.Reseed(1)
	ya := append([]float64(nil), a.ForwardWith(x, mvms).Data...)
	sess.Reseed(2)
	_ = b.ForwardWith(x, mvms) // must not clobber a's retained output copy
	sess.Reseed(1)
	yaAgain := a.ForwardWith(x, mvms)
	for i := range ya {
		if ya[i] != yaAgain.Data[i] {
			t.Fatalf("clone A not deterministic at %d: %g vs %g", i, ya[i], yaAgain.Data[i])
		}
	}
}
