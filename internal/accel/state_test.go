package accel

import (
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/nn"
	"repro/internal/noise"
)

// stateNet builds a deterministic two-dense network for snapshot tests.
func stateNet(t *testing.T) *nn.Network {
	t.Helper()
	rng := rand.New(rand.NewPCG(5, 6))
	return &nn.Network{Name: "statenet", InShape: []int{10},
		Layers: []nn.Layer{nn.NewDense(10, 12, rng), &nn.ReLU{}, nn.NewDense(12, 4, rng)}}
}

// ageEngine walks an engine through a representative lifetime: online
// faults, drift, a remap, a retune, and one layer forced to the digital
// fallback — every transition the snapshot must survive.
func ageEngine(t *testing.T, eng *Engine) {
	t.Helper()
	layers := eng.Layers()
	if err := eng.WithArrays(layers[0], func(arrays []*crossbar.Array) {
		for _, a := range arrays {
			a.SetStuck(0, 1, uint8(a.NumLevels()-1))
			a.DriftCell(1, 0, -1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Remap(layers[0]); err != nil {
		t.Fatal(err)
	}
	// More online damage on the post-remap mapping.
	if err := eng.WithArrays(layers[0], func(arrays []*crossbar.Array) {
		arrays[0].SetStuck(2, 3, 0)
	}); err != nil {
		t.Fatal(err)
	}
	dev := eng.ActiveDevice()
	dev.PRTN = 0.002
	if err := eng.Retune(dev); err != nil {
		t.Fatal(err)
	}
	if len(layers) > 1 {
		if err := eng.SetFallback(layers[1], true); err != nil {
			t.Fatal(err)
		}
	}
}

// forwardTrace runs a deterministic burst of reseeded forwards and returns
// the raw outputs.
func forwardTrace(eng *Engine, n int) [][]float64 {
	sess := eng.NewSession(0)
	x := nn.FromSlice([]float64{0.1, 0.9, 0.3, 0.5, 0.2, 0.7, 0.4, 0.8, 0.6, 0.05}, 10)
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		sess.Reseed(uint64(1000 + i))
		out[i] = append([]float64(nil), sess.Forward(x).Data...)
	}
	return out
}

// TestEngineStateRoundTrip: snapshot an aged engine (remapped, retuned,
// fallback, online faults), restore onto a freshly-mapped twin, and demand
// bit-identical forward outputs and a byte-identical re-snapshot.
func TestEngineStateRoundTrip(t *testing.T) {
	cfg := quietConfig(SchemeABN(8), 2)
	cfg.SpareRows = 4
	cfg.Device.PRTN = 0.001 // live noise source, reconstructed from seed cursors
	eng, err := Map(stateNet(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ageEngine(t, eng)
	want := forwardTrace(eng, 8)
	st := eng.Snapshot()

	twin, err := Map(stateNet(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := twin.Restore(st); err != nil {
		t.Fatal(err)
	}
	got := forwardTrace(twin, 8)
	for i := range want {
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("forward %d output %d: restored %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	// The restored engine must re-snapshot identically: same remap epochs,
	// same fallback flags, same array payloads.
	st2 := twin.Snapshot()
	if len(st.Layers) != len(st2.Layers) {
		t.Fatalf("re-snapshot has %d layers, want %d", len(st2.Layers), len(st.Layers))
	}
	for i := range st.Layers {
		a, b := st.Layers[i], st2.Layers[i]
		if a.Remaps != b.Remaps || a.Fallback != b.Fallback || a.MapDevice != b.MapDevice || a.Device != b.Device {
			t.Fatalf("layer %d metadata diverges after restore: %+v vs %+v", a.Layer, a, b)
		}
	}
	// And the lifetime continues identically: another remap on both sides
	// draws the same post-remap fault population.
	l0 := eng.Layers()[0]
	if err := eng.Remap(l0); err != nil {
		t.Fatal(err)
	}
	if err := twin.Remap(l0); err != nil {
		t.Fatal(err)
	}
	w2, g2 := forwardTrace(eng, 2), forwardTrace(twin, 2)
	for i := range w2 {
		for j := range w2[i] {
			if w2[i][j] != g2[i][j] {
				t.Fatalf("post-restore remap diverges at forward %d output %d", i, j)
			}
		}
	}
}

// TestEngineCheckRestoreRefusals: snapshots from a different identity or
// with malformed payloads are refused without touching the engine.
func TestEngineCheckRestoreRefusals(t *testing.T) {
	cfg := quietConfig(SchemeABN(8), 2)
	eng, err := Map(stateNet(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	good := eng.Snapshot()
	before := forwardTrace(eng, 1)

	mutants := map[string]func(EngineState) EngineState{
		"seed":    func(st EngineState) EngineState { st.Seed++; return st },
		"scheme":  func(st EngineState) EngineState { st.Scheme = "other"; return st },
		"network": func(st EngineState) EngineState { st.Network = "other"; return st },
		"unmapped layer": func(st EngineState) EngineState {
			st.Layers = append([]LayerState(nil), st.Layers...)
			st.Layers[0].Layer = 99
			return st
		},
		"duplicate layer": func(st EngineState) EngineState {
			st.Layers = append(st.Layers, st.Layers[0])
			return st
		},
		"negative remap epoch": func(st EngineState) EngineState {
			st.Layers = append([]LayerState(nil), st.Layers...)
			st.Layers[0].Remaps = -1
			return st
		},
		"bits-per-cell retune": func(st EngineState) EngineState {
			st.Layers = append([]LayerState(nil), st.Layers...)
			st.Layers[0].Device.BitsPerCell = st.Layers[0].MapDevice.BitsPerCell + 1
			return st
		},
		"bad device": func(st EngineState) EngineState {
			st.Layers = append([]LayerState(nil), st.Layers...)
			st.Layers[0].Device = noise.DeviceParams{}
			return st
		},
		"array payload": func(st EngineState) EngineState {
			st.Layers = append([]LayerState(nil), st.Layers...)
			st.Layers[0].Arrays = nil
			return st
		},
	}
	for name, mutate := range mutants {
		if err := eng.Restore(mutate(good)); err == nil {
			t.Errorf("%s: malformed snapshot restored silently", name)
		}
	}
	// Refusals left the engine pristine: same output, and the good
	// snapshot still applies.
	after := forwardTrace(eng, 1)
	for j := range before[0] {
		if before[0][j] != after[0][j] {
			t.Fatal("refused restores mutated the engine")
		}
	}
	if err := eng.Restore(good); err != nil {
		t.Fatal(err)
	}
}

// TestRaceSnapshotVsTraffic: Snapshot and Restore hold the same per-layer
// locks the forward path does — hammer both against live traffic and
// mutators under -race.
func TestRaceSnapshotVsTraffic(t *testing.T) {
	cfg := quietConfig(SchemeABN(8), 2)
	cfg.SpareRows = 4
	eng, err := Map(stateNet(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := nn.FromSlice([]float64{0.1, 0.9, 0.3, 0.5, 0.2, 0.7, 0.4, 0.8, 0.6, 0.05}, 10)
	layers := eng.Layers()

	stop := make(chan struct{})
	var traffic sync.WaitGroup
	for g := 0; g < 3; g++ {
		traffic.Add(1)
		go func(g int) {
			defer traffic.Done()
			sess := eng.NewSession(uint64(g))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sess.Reseed(uint64(g*10_000 + i))
				if out := sess.Forward(x); out == nil {
					t.Error("nil forward output")
					return
				}
			}
		}(g)
	}

	var mut sync.WaitGroup
	const iters = 20
	// Snapshotter: the persister's boot+poll path.
	mut.Add(1)
	go func() {
		defer mut.Done()
		for i := 0; i < iters; i++ {
			st := eng.Snapshot()
			if err := eng.CheckRestore(st); err != nil {
				t.Errorf("self-snapshot refused: %v", err)
				return
			}
			if err := eng.Restore(st); err != nil {
				t.Errorf("self-restore failed: %v", err)
				return
			}
		}
	}()
	// Fault injector: online campaign events racing the snapshotter.
	mut.Add(1)
	go func() {
		defer mut.Done()
		for i := 0; i < iters; i++ {
			_ = eng.WithArrays(layers[0], func(arrays []*crossbar.Array) {
				arrays[0].DriftCell(i%4, i%8, 1-2*(i%2))
			})
		}
	}()
	// Remapper: epoch bumps racing the snapshotter.
	mut.Add(1)
	go func() {
		defer mut.Done()
		for i := 0; i < iters/2; i++ {
			if err := eng.Remap(layers[len(layers)-1]); err != nil {
				t.Errorf("remap: %v", err)
				return
			}
		}
	}()
	mut.Wait()
	close(stop)
	traffic.Wait()
}
