package accel

import "repro/internal/noise"

// Scratch is the per-session arena of the noisy-MVM hot path: every buffer
// MappedMatrix.MVM and group.read used to allocate per call lives here and
// is reused across calls, so a warm Forward performs zero heap allocations.
//
// Ownership rules:
//   - One Scratch belongs to exactly one evaluation goroutine (a Session
//     owns one; so does each serving worker through its Session). It must
//     never be shared across concurrent MVMs.
//   - Slices returned by MVM-internal paths (group lane reads, mask planes)
//     alias the arena and are only valid until the next MVM touches it.
//     The public MVM copies its result into a caller-owned slice; MVMInto
//     writes into the destination the caller provides.
//   - Buffers grow on demand and never shrink, so steady-state traffic over
//     a fixed topology reaches a fixed point with no allocation at all.
type Scratch struct {
	// qvals backs the quantized input vector.
	qvals []uint64
	// masks are the input bit-plane masks (InputMasksInto reuse).
	masks [][]uint64
	// counts[b][level] is the fused ActiveCountsMulti output for plane b.
	counts [][]int
	// aggs and ts hold the current group's precomputed per-(plane, row)
	// noise aggregates and ideal outputs, indexed plane*rows+row.
	aggs []noise.RowAgg
	ts   []int
	// acc is the internal-output accumulator of the shift-and-add
	// reduction across chunks and input bits.
	acc []int64
	// lanes receives each group read's unpacked lane values.
	lanes []uint64
	// plaus is the lane buffer of the miscorrection plausibility check,
	// separate from lanes so the check cannot clobber a live read result.
	plaus []uint64
	// out is the dequantized output buffer the Session MVM path hands to
	// the network layers (which copy it immediately).
	out []float64
}

// NewScratch returns an empty arena; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// accFor returns the zeroed internal accumulator sized for n outputs.
func (s *Scratch) accFor(n int) []int64 {
	if cap(s.acc) < n {
		s.acc = make([]int64, n)
	}
	s.acc = s.acc[:n]
	for i := range s.acc {
		s.acc[i] = 0
	}
	return s.acc
}

// countsFor returns the planes x levels fused count matrix (contents stale;
// ActiveCountsMulti zeroes what it uses).
func (s *Scratch) countsFor(planes, levels int) [][]int {
	if cap(s.counts) < planes {
		grown := make([][]int, planes)
		copy(grown, s.counts[:cap(s.counts)])
		s.counts = grown
	}
	s.counts = s.counts[:planes]
	for b := range s.counts {
		if cap(s.counts[b]) < levels {
			s.counts[b] = make([]int, levels)
		}
		s.counts[b] = s.counts[b][:levels]
	}
	return s.counts
}

// aggTsFor returns the per-(plane, row) aggregate and ideal-output buffers
// for one group (contents stale; precompute overwrites every entry).
func (s *Scratch) aggTsFor(n int) ([]noise.RowAgg, []int) {
	if cap(s.aggs) < n {
		s.aggs = make([]noise.RowAgg, n)
	}
	if cap(s.ts) < n {
		s.ts = make([]int, n)
	}
	s.aggs, s.ts = s.aggs[:n], s.ts[:n]
	return s.aggs, s.ts
}

// lanesFor returns the lane buffer for n operands (contents stale).
func (s *Scratch) lanesFor(n int) []uint64 {
	if cap(s.lanes) < n {
		s.lanes = make([]uint64, n)
	}
	return s.lanes[:n]
}

// plausFor returns the plausibility-check lane buffer (contents stale).
func (s *Scratch) plausFor(n int) []uint64 {
	if cap(s.plaus) < n {
		s.plaus = make([]uint64, n)
	}
	return s.plaus[:n]
}

// outFor returns the MVM output buffer for n outputs (contents stale;
// MVMInto overwrites every entry).
func (s *Scratch) outFor(n int) []float64 {
	if cap(s.out) < n {
		s.out = make([]float64, n)
	}
	return s.out[:n]
}
