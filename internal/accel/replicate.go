package accel

import (
	"fmt"

	"repro/internal/nn"
)

// replicaSeedStride separates the engine seeds of sibling replicas. Every
// seed-derived stream in a replica's lifetime — map-time fault injection,
// session noise, remap epochs, verify draws — is keyed off the engine seed,
// so offsetting it gives the copy a fully independent error process. The
// stride sits far above user seeds and below nothing that matters (engine
// seeds are stream roots, not session streams, so the serve-side stride
// constants do not apply here).
const replicaSeedStride = uint64(1) << 48

// Replicate programs the same network onto a fresh, independent set of
// crossbar arrays: the full mapping pipeline reruns under an offset engine
// seed, so the copy draws its own stuck-cell population, its own A codes
// where the search is fault-driven, and later its own noise and remap
// streams. Replica 0 is the receiver itself.
func (e *Engine) Replicate(replica uint64) (*Engine, error) {
	if replica == 0 {
		return e, nil
	}
	cfg := e.cfg
	cfg.Seed = e.cfg.Seed + replica*replicaSeedStride
	return MapLayers(e.net, cfg, e.partition)
}

// Partition returns a view engine restricted to the given mapped layers: a
// shard. The view shares the receiver's layer slots (no re-programming), so
// a Remap, Retune, or fallback flip through either engine is visible to
// both — the partition is an ownership boundary, not a copy. Replicate on
// the view programs fresh arrays for only the partition's layers, which is
// what gives each shard an independently replaceable reliability stack.
func (e *Engine) Partition(layers []int) (*Engine, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("accel: empty partition")
	}
	p := &Engine{
		cfg:       e.cfg,
		net:       e.net,
		slots:     make([]*layerSlot, len(e.slots)),
		partition: append([]int(nil), layers...),
	}
	for _, li := range layers {
		sl := e.slot(li)
		if sl == nil {
			return nil, fmt.Errorf("accel: partition layer %d is not mapped", li)
		}
		if p.slots[li] != nil {
			return nil, fmt.Errorf("accel: partition layer %d listed twice", li)
		}
		p.slots[li] = sl
		p.mapped++
		sl.mu.RLock()
		p.PhysicalRows += sl.m.PhysicalRows
		sl.mu.RUnlock()
	}
	return p, nil
}

// InferenceNet returns a buffer-reusing forward-pass clone of the mapped
// network, for callers that compose their own per-layer MVM routing (the
// replica router). The clone shares immutable weights with the original.
func (e *Engine) InferenceNet() *nn.Network {
	n := e.net.CloneForInference()
	n.EnableBufferReuse()
	return n
}

// MVMLayer evaluates one mapped layer's matrix-vector product on this
// session, returning the output and the ECU stats of this call alone (also
// merged into the session totals, exactly like a Forward-pass MVM). The
// returned slice aliases the session's scratch arena and is valid until the
// session's next MVM. This is the unit of spatial retry: sibling replicas
// map the same layer shapes but may choose different per-array codes, so
// the layer MVM is the smallest operation with identical semantics on every
// replica.
func (s *Session) MVMLayer(layer int, x []float64) ([]float64, Stats) {
	sl := s.engine.slot(layer)
	if sl == nil {
		panic(fmt.Sprintf("accel: layer %d is not mapped", layer))
	}
	ls := s.layer[layer]
	pre := *ls
	out := sl.mvm(x, s.rng, s.scr, ls)
	d := ls.Diff(pre)
	s.Stats.Merge(d)
	return out, d
}
