package crossbar

import (
	"testing"

	"repro/internal/stats"
)

// TestDriftedCountIncrementalMatchesScan cross-checks the incrementally
// maintained drift counter against the brute-force scan it replaced, under a
// randomized interleaving of every mutation the array supports.
func TestDriftedCountIncrementalMatchesScan(t *testing.T) {
	a := NewArrayWithSpares(12, 48, 2, 3)
	rng := stats.SubRNG(41, 1)
	pulseFail := []float64{0, 0.1, 0.2, 0.5}
	for op := 0; op < 4000; op++ {
		r := rng.IntN(a.Rows)
		c := rng.IntN(a.Cols)
		lv := uint8(rng.IntN(a.NumLevels()))
		switch rng.IntN(6) {
		case 0:
			a.Set(r, c, lv)
		case 1:
			a.SetStuck(r, c, lv)
		case 2:
			a.ClearStuck(r, c)
		case 3:
			a.DriftCell(r, c, rng.IntN(5)-2)
		case 4:
			a.ProgramVerify(r, c, lv, 4, pulseFail, rng)
		case 5:
			if rng.IntN(100) == 0 { // rare: only 3 spares available
				a.SpareRow(r, 4, pulseFail, rng)
			}
		}
		if got, want := a.DriftedCount(), a.driftedSlow(); got != want {
			t.Fatalf("op %d: incremental drifted count %d, scan says %d", op, got, want)
		}
	}
	if a.DriftedCount() == 0 {
		t.Fatal("mutation storm left no drifted cells; test exercised nothing")
	}
}

// TestProgramVerifyHealthyCell: on a healthy cell the loop always lands the
// target, and with no verify noise it converges in one pulse.
func TestProgramVerifyHealthyCell(t *testing.T) {
	a := NewArray(4, 8, 2)
	pulses, ok := a.ProgramVerify(1, 3, 2, 5, nil, nil)
	if !ok || pulses != 1 {
		t.Fatalf("noise-free verify: pulses=%d ok=%v, want 1/true", pulses, ok)
	}
	if a.Level(1, 3) != 2 || a.Programmed(1, 3) != 2 {
		t.Fatalf("cell not at target: eff %d prog %d", a.Level(1, 3), a.Programmed(1, 3))
	}

	// With verify noise the pulse count grows but success still implies the
	// cell reads the target, and the digital state matches a blind write.
	rng := stats.SubRNG(7, 7)
	pulseFail := []float64{0, 0, 0, 0.9}
	var tally VerifyTally
	for c := 0; c < a.Cols; c++ {
		p, ok := a.ProgramVerify(2, c, 3, 6, pulseFail, rng)
		tally.Note(p, ok)
		if a.Level(2, c) != 3 {
			t.Fatalf("col %d: eff %d after verified program, want 3", c, a.Level(2, c))
		}
		if ok && p < 1 {
			t.Fatalf("col %d: converged with %d pulses", c, p)
		}
	}
	if tally.Pulses <= tally.Cells {
		t.Fatalf("pulseFail 0.9 but %d pulses over %d cells — verify noise never re-pulsed", tally.Pulses, tally.Cells)
	}
}

// TestProgramVerifyStuckCell: a cell pinned off-target burns the full pulse
// budget and reports failure; pinned at-target it verifies immediately.
func TestProgramVerifyStuckCell(t *testing.T) {
	a := NewArray(4, 8, 2)
	a.SetStuck(0, 0, 1)
	pulses, ok := a.ProgramVerify(0, 0, 3, 5, nil, nil)
	if ok || pulses != 5 {
		t.Fatalf("stuck-off-target verify: pulses=%d ok=%v, want 5/false", pulses, ok)
	}
	if a.Level(0, 0) != 1 {
		t.Fatalf("stuck cell moved to %d", a.Level(0, 0))
	}
	a.SetStuck(0, 1, 3)
	pulses, ok = a.ProgramVerify(0, 1, 3, 5, nil, nil)
	if !ok || pulses != 1 {
		t.Fatalf("stuck-at-target verify: pulses=%d ok=%v, want 1/true", pulses, ok)
	}
}

// TestVerifyTallyAccounting checks the histogram bookkeeping and Merge.
func TestVerifyTallyAccounting(t *testing.T) {
	var a, b VerifyTally
	a.Note(1, true)
	a.Note(3, true)
	a.Note(5, false)
	b.Note(2, true)
	a.Merge(b)
	if a.Cells != 4 || a.Pulses != 11 || a.GaveUp != 1 {
		t.Fatalf("tally %+v", a)
	}
	want := []uint64{1, 1, 1}
	if len(a.Hist) != 3 {
		t.Fatalf("hist %v", a.Hist)
	}
	for i, n := range want {
		if a.Hist[i] != n {
			t.Fatalf("hist %v, want %v", a.Hist, want)
		}
	}
}

// TestSpareRowRetiresWornLine: sparing repoints reads to the replacement,
// drops the worn line's faults from the live population, and consumes the
// spare pool deterministically.
func TestSpareRowRetiresWornLine(t *testing.T) {
	a := NewArrayWithSpares(6, 16, 2, 2)
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			a.Set(r, c, uint8(1+(r+c)%3))
		}
	}
	// Wreck row 2: stuck cells plus drift.
	a.SetStuck(2, 0, 0)
	a.SetStuck(2, 1, 3)
	a.DriftCell(2, 5, 1)
	preStuck, preDrift := a.StuckCount(), a.DriftedCount()
	if preStuck != 2 || preDrift == 0 {
		t.Fatalf("setup: stuck %d drifted %d", preStuck, preDrift)
	}

	tally, ok := a.SpareRow(2, 3, nil, nil)
	if !ok {
		t.Fatal("spare pool empty with 2 spares free")
	}
	if tally.Cells != uint64(a.Cols) || tally.GaveUp != 0 {
		t.Fatalf("spare programming tally %+v", tally)
	}
	if a.SparedRows() != 1 || a.SpareRowsFree() != 1 {
		t.Fatalf("spared %d free %d, want 1/1", a.SparedRows(), a.SpareRowsFree())
	}
	// The worn line's faults are decommissioned with it.
	if a.StuckCount() != 0 || a.DriftedCount() != 0 {
		t.Fatalf("after sparing: stuck %d drifted %d, want 0/0", a.StuckCount(), a.DriftedCount())
	}
	// Logical row 2 reads its original targets through the replacement.
	input := make([]uint64, a.MaskWords())
	input[0] = 0xFFFF
	want := 0
	for c := 0; c < a.Cols; c++ {
		want += 1 + (2+c)%3
	}
	if got := a.IdealRowOutput(2, input); got != want {
		t.Fatalf("spared row output %d, want %d", got, want)
	}
	if got := a.ProgrammedRowOutput(2, input); got != want {
		t.Fatalf("spared row programmed output %d, want %d", got, want)
	}
	counts := make([]int, a.NumLevels())
	a.ActiveCounts(2, input, counts)
	if OutputFromCounts(counts) != want {
		t.Fatalf("ActiveCounts disagrees after sparing: %v", counts)
	}
	// Writes to the logical row land on the replacement.
	a.Set(2, 0, 3)
	if a.Level(2, 0) != 3 {
		t.Fatalf("write after sparing read back %d", a.Level(2, 0))
	}

	// Exhaust the pool: second sparing works, third reports failure.
	if _, ok := a.SpareRow(4, 3, nil, nil); !ok {
		t.Fatal("second spare refused with one free")
	}
	if _, ok := a.SpareRow(5, 3, nil, nil); ok {
		t.Fatal("sparing succeeded with empty pool")
	}
	if a.SparedRows() != 2 || a.SpareRowsFree() != 0 {
		t.Fatalf("final spared %d free %d, want 2/0", a.SparedRows(), a.SpareRowsFree())
	}
}

// TestProgrammedRowOutputDeviation: the scrub probe signal is the difference
// between effective and programmed row outputs.
func TestProgrammedRowOutputDeviation(t *testing.T) {
	a := NewArray(2, 8, 2)
	for c := 0; c < 8; c++ {
		a.Set(0, c, 2)
	}
	input := []uint64{0xFF}
	if a.IdealRowOutput(0, input) != a.ProgrammedRowOutput(0, input) {
		t.Fatal("healthy row shows deviation")
	}
	a.DriftCell(0, 3, -1)
	a.SetStuck(0, 6, 3)
	ideal, prog := a.IdealRowOutput(0, input), a.ProgrammedRowOutput(0, input)
	if prog != 16 {
		t.Fatalf("programmed output %d, want 16", prog)
	}
	if ideal-prog != -1+1 {
		t.Fatalf("deviation %d, want 0 (drift -1, stuck +1)", ideal-prog)
	}
	// A masked-out column contributes nothing.
	if got := a.ProgrammedRowOutput(0, []uint64{0xF7}); got != 14 {
		t.Fatalf("masked programmed output %d, want 14", got)
	}
}

// FuzzProgramVerify: verified programming must never report success while the
// effective level differs from the target, and a healthy cell must always end
// at the target regardless of verify noise or iteration budget.
func FuzzProgramVerify(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(0), false, uint8(3), uint16(100))
	f.Add(uint64(9), uint8(3), uint8(3), true, uint8(1), uint16(900))
	f.Add(uint64(42), uint8(0), uint8(1), true, uint8(8), uint16(0))
	f.Fuzz(func(t *testing.T, seed uint64, target, stuckLv uint8, stuck bool, maxIters uint8, failPerMille uint16) {
		a := NewArray(2, 4, 2)
		target %= uint8(a.NumLevels())
		stuckLv %= uint8(a.NumLevels())
		if stuck {
			a.SetStuck(0, 0, stuckLv)
		}
		pf := float64(failPerMille%1000) / 1000
		pulseFail := []float64{pf, pf, pf, pf}
		rng := stats.SubRNG(seed, 0)
		pulses, ok := a.ProgramVerify(0, 0, target, int(maxIters), pulseFail, rng)
		if pulses < 1 {
			t.Fatalf("pulse count %d", pulses)
		}
		if ok && a.Level(0, 0) != target {
			t.Fatalf("verify reported success with eff %d != target %d", a.Level(0, 0), target)
		}
		if a.Programmed(0, 0) != target {
			t.Fatalf("programmed target %d not recorded", a.Programmed(0, 0))
		}
		if !stuck && a.Level(0, 0) != target {
			t.Fatalf("healthy cell left at %d, want %d", a.Level(0, 0), target)
		}
		if stuck && stuckLv != target && ok {
			t.Fatalf("stuck-off-target cell verified")
		}
	})
}
