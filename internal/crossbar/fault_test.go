package crossbar

import (
	"testing"

	"repro/internal/noise"
	"repro/internal/stats"
)

// injectStuckSeeded applies a seeded stuck-at population to an array:
// sampled cells alternate between stuck-at-LRS (top level) and
// stuck-at-HRS (level 0) deterministically by position.
func injectStuckSeeded(a *Array, seed uint64, rate float64) []int {
	cells := noise.SampleCells(stats.SubRNG(seed, 0), a.Rows*a.Cols, rate)
	top := uint8(a.NumLevels() - 1)
	for i, idx := range cells {
		lv := top
		if i%2 == 1 {
			lv = 0
		}
		a.SetStuck(idx/a.Cols, idx%a.Cols, lv)
	}
	return cells
}

// TestStuckInjectionDeterministicBySeed: the same seed produces the same
// fault map on two arrays; a different seed produces a different one.
func TestStuckInjectionDeterministicBySeed(t *testing.T) {
	build := func(seed uint64) (*Array, []int) {
		a := NewArray(16, 64, 2)
		for r := 0; r < a.Rows; r++ {
			for c := 0; c < a.Cols; c++ {
				a.Set(r, c, uint8((r+c)%a.NumLevels()))
			}
		}
		cells := injectStuckSeeded(a, seed, 0.05)
		return a, cells
	}
	a1, c1 := build(7)
	a2, c2 := build(7)
	if len(c1) == 0 {
		t.Fatal("5% rate over 1024 cells injected nothing")
	}
	if len(c1) != len(c2) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(c1), len(c2))
	}
	for r := 0; r < a1.Rows; r++ {
		for c := 0; c < a1.Cols; c++ {
			l1, ok1 := a1.Stuck(r, c)
			l2, ok2 := a2.Stuck(r, c)
			if ok1 != ok2 || l1 != l2 {
				t.Fatalf("fault maps diverge at (%d,%d): (%d,%v) vs (%d,%v)", r, c, l1, ok1, l2, ok2)
			}
			if a1.Level(r, c) != a2.Level(r, c) {
				t.Fatalf("effective levels diverge at (%d,%d)", r, c)
			}
		}
	}
	_, c3 := build(8)
	same := len(c1) == len(c3)
	if same {
		for i := range c1 {
			if c1[i] != c3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical fault maps")
	}
}

// TestStuckSurvivesReprogramming: reprogramming rows (faulted or not) must
// not move stuck cells, and must fully restore healthy cells.
func TestStuckSurvivesReprogramming(t *testing.T) {
	a := NewArray(8, 32, 2)
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			a.Set(r, c, 1)
		}
	}
	a.SetStuck(3, 5, 3) // LRS
	a.SetStuck(6, 0, 0) // HRS
	if a.Level(3, 5) != 3 || a.Level(6, 0) != 0 {
		t.Fatalf("stuck cells not pinned: %d, %d", a.Level(3, 5), a.Level(6, 0))
	}

	// Reprogram every cell, including the stuck ones.
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			a.Set(r, c, 2)
		}
	}
	if a.Level(3, 5) != 3 || a.Level(6, 0) != 0 {
		t.Fatal("reprogramming moved a stuck cell")
	}
	if a.Programmed(3, 5) != 2 {
		t.Fatalf("programmed target not recorded under fault: %d", a.Programmed(3, 5))
	}
	if a.Level(0, 0) != 2 || a.Level(7, 31) != 2 {
		t.Fatal("healthy cells did not follow reprogramming")
	}
	if a.StuckCount() != 2 {
		t.Fatalf("stuck count %d, want 2", a.StuckCount())
	}

	// The read masks must agree with the effective levels: row 3 under an
	// all-ones input sees 31 cells at level 2 plus one at level 3.
	input := make([]uint64, a.MaskWords())
	for i := range input {
		input[i] = ^uint64(0)
	}
	if got, want := a.IdealRowOutput(3, input), 31*2+3; got != want {
		t.Fatalf("row 3 output %d, want %d", got, want)
	}

	// Repair: the cell returns to its programmed target.
	a.ClearStuck(3, 5)
	if a.Level(3, 5) != 2 {
		t.Fatalf("cleared cell reads %d, want programmed 2", a.Level(3, 5))
	}
}

// TestDriftIsErasedByReprogramming: drift moves the effective level only;
// rewriting the cell restores the target, and stuck cells do not drift.
func TestDriftIsErasedByReprogramming(t *testing.T) {
	a := NewArray(4, 16, 3)
	a.Set(1, 2, 5)
	if !a.DriftCell(1, 2, -2) {
		t.Fatal("drift reported no change")
	}
	if a.Level(1, 2) != 3 || a.Programmed(1, 2) != 5 {
		t.Fatalf("drifted cell: eff %d prog %d, want 3/5", a.Level(1, 2), a.Programmed(1, 2))
	}
	if a.DriftedCount() != 1 {
		t.Fatalf("drifted count %d, want 1", a.DriftedCount())
	}
	// Clamping at the range ends.
	a.DriftCell(1, 2, -100)
	if a.Level(1, 2) != 0 {
		t.Fatalf("drift did not clamp at 0: %d", a.Level(1, 2))
	}
	a.DriftCell(1, 2, 100)
	if a.Level(1, 2) != uint8(a.NumLevels()-1) {
		t.Fatalf("drift did not clamp at top: %d", a.Level(1, 2))
	}
	// A rewrite erases the drift.
	a.Set(1, 2, 5)
	if a.Level(1, 2) != 5 || a.DriftedCount() != 0 {
		t.Fatalf("rewrite did not erase drift: eff %d drifted %d", a.Level(1, 2), a.DriftedCount())
	}
	// Stuck dominates drift.
	a.SetStuck(0, 0, 7)
	if a.DriftCell(0, 0, -3) {
		t.Fatal("stuck cell drifted")
	}
	if a.Level(0, 0) != 7 {
		t.Fatalf("stuck cell moved: %d", a.Level(0, 0))
	}
}

// TestFaultHistogramConsistency: histograms and ActiveCounts track the
// effective levels through fault injection and repair.
func TestFaultHistogramConsistency(t *testing.T) {
	a := NewArray(2, 8, 2)
	for c := 0; c < 8; c++ {
		a.Set(0, c, 1)
	}
	a.SetStuck(0, 3, 3)
	h := a.Histogram(0)
	if h[1] != 7 || h[3] != 1 {
		t.Fatalf("histogram after fault: %v", h)
	}
	input := []uint64{0xFF}
	counts := make([]int, a.NumLevels())
	a.ActiveCounts(0, input, counts)
	if counts[1] != 7 || counts[3] != 1 {
		t.Fatalf("active counts after fault: %v", counts)
	}
	a.ClearStuck(0, 3)
	a.ActiveCounts(0, input, counts)
	if counts[1] != 8 || counts[3] != 0 {
		t.Fatalf("active counts after repair: %v", counts)
	}
}
