package crossbar

import (
	"fmt"
	"sort"
)

// StuckCellState records one stuck-at fault by physical word line.
type StuckCellState struct {
	Phys  int   `json:"phys"`
	Col   int   `json:"col"`
	Level uint8 `json:"level"`
}

// ArrayState is the durable digital state of one crossbar: everything a
// restart needs to rebuild the array bit-identically. The derived read-path
// structures (level masks, histograms, present-level lists, the drifted
// counter) are deliberately absent — Restore reconstructs them from the
// cell levels, so a snapshot can never smuggle in an inconsistent cache.
type ArrayState struct {
	Rows        int `json:"rows"`
	Cols        int `json:"cols"`
	BitsPerCell int `json:"bits_per_cell"`
	// Phys is the physical word-line count (Rows + spares at allocation).
	Phys int `json:"phys"`
	// Prog[p] / Eff[p] hold the programmed and effective levels of physical
	// word line p ([]uint8 marshals compactly as base64).
	Prog  [][]uint8        `json:"prog"`
	Eff   [][]uint8        `json:"eff"`
	Stuck []StuckCellState `json:"stuck,omitempty"`
	// RowMap[r] is the physical line backing logical row r.
	RowMap []int `json:"row_map"`
	// SpareFree lists unused spare lines in ascending order.
	SpareFree []int `json:"spare_free,omitempty"`
	// Spared counts rows retired onto spares over the lifetime.
	Spared int `json:"spared"`
}

// Snapshot captures the array's durable state. The copy shares nothing with
// the live array.
func (a *Array) Snapshot() ArrayState {
	phys := len(a.levels)
	st := ArrayState{
		Rows: a.Rows, Cols: a.Cols, BitsPerCell: a.BitsPerCell, Phys: phys,
		Prog:   make([][]uint8, phys),
		Eff:    make([][]uint8, phys),
		RowMap: append([]int(nil), a.rowMap...),
		Spared: a.spared,
	}
	for p := 0; p < phys; p++ {
		st.Prog[p] = append([]uint8(nil), a.levels[p]...)
		st.Eff[p] = append([]uint8(nil), a.eff[p]...)
	}
	if len(a.spareFree) > 0 {
		st.SpareFree = append([]int(nil), a.spareFree...)
	}
	if len(a.stuck) > 0 {
		st.Stuck = make([]StuckCellState, 0, len(a.stuck))
		for key, lv := range a.stuck {
			st.Stuck = append(st.Stuck, StuckCellState{Phys: key / a.Cols, Col: key % a.Cols, Level: lv})
		}
		sort.Slice(st.Stuck, func(i, j int) bool {
			if st.Stuck[i].Phys != st.Stuck[j].Phys {
				return st.Stuck[i].Phys < st.Stuck[j].Phys
			}
			return st.Stuck[i].Col < st.Stuck[j].Col
		})
	}
	return st
}

// CheckState validates a snapshot against this array's geometry without
// touching any state. A nil error guarantees a subsequent Restore of the
// same snapshot succeeds.
func (a *Array) CheckState(st ArrayState) error {
	phys := len(a.levels)
	if st.Rows != a.Rows || st.Cols != a.Cols || st.BitsPerCell != a.BitsPerCell || st.Phys != phys {
		return fmt.Errorf("crossbar: snapshot geometry %dx%d/%db/%dp does not match array %dx%d/%db/%dp",
			st.Rows, st.Cols, st.BitsPerCell, st.Phys, a.Rows, a.Cols, a.BitsPerCell, phys)
	}
	if len(st.Prog) != phys || len(st.Eff) != phys {
		return fmt.Errorf("crossbar: snapshot has %d/%d level rows, want %d", len(st.Prog), len(st.Eff), phys)
	}
	maxLevel := uint8(a.NumLevels() - 1)
	for p := 0; p < phys; p++ {
		if len(st.Prog[p]) != a.Cols || len(st.Eff[p]) != a.Cols {
			return fmt.Errorf("crossbar: snapshot row %d has %d/%d cells, want %d", p, len(st.Prog[p]), len(st.Eff[p]), a.Cols)
		}
		for c := 0; c < a.Cols; c++ {
			if st.Prog[p][c] > maxLevel || st.Eff[p][c] > maxLevel {
				return fmt.Errorf("crossbar: snapshot cell (%d,%d) level exceeds %d-bit cell", p, c, a.BitsPerCell)
			}
		}
	}
	if len(st.RowMap) != a.Rows {
		return fmt.Errorf("crossbar: snapshot row map covers %d rows, want %d", len(st.RowMap), a.Rows)
	}
	used := make(map[int]bool, a.Rows)
	for r, p := range st.RowMap {
		if p < 0 || p >= phys {
			return fmt.Errorf("crossbar: snapshot maps row %d to physical line %d (have %d)", r, p, phys)
		}
		if used[p] {
			return fmt.Errorf("crossbar: snapshot maps two rows to physical line %d", p)
		}
		used[p] = true
	}
	prev := -1
	for _, s := range st.SpareFree {
		if s < a.Rows || s >= phys {
			return fmt.Errorf("crossbar: snapshot free spare %d outside spare bank [%d,%d)", s, a.Rows, phys)
		}
		if s <= prev {
			return fmt.Errorf("crossbar: snapshot free-spare list not strictly ascending at %d", s)
		}
		if used[s] {
			return fmt.Errorf("crossbar: snapshot lists mapped line %d as a free spare", s)
		}
		prev = s
	}
	if st.Spared < 0 || st.Spared > phys-a.Rows {
		return fmt.Errorf("crossbar: snapshot spared count %d outside [0,%d]", st.Spared, phys-a.Rows)
	}
	seen := make(map[int]bool, len(st.Stuck))
	for _, sc := range st.Stuck {
		if sc.Phys < 0 || sc.Phys >= phys || sc.Col < 0 || sc.Col >= a.Cols {
			return fmt.Errorf("crossbar: snapshot stuck cell (%d,%d) out of range", sc.Phys, sc.Col)
		}
		if sc.Level > maxLevel {
			return fmt.Errorf("crossbar: snapshot stuck cell (%d,%d) level exceeds %d-bit cell", sc.Phys, sc.Col, a.BitsPerCell)
		}
		key := sc.Phys*a.Cols + sc.Col
		if seen[key] {
			return fmt.Errorf("crossbar: snapshot pins stuck cell (%d,%d) twice", sc.Phys, sc.Col)
		}
		seen[key] = true
		// A stuck cell's effective level is pinned by the fault; a snapshot
		// where they disagree was not produced by this code.
		if st.Eff[sc.Phys][sc.Col] != sc.Level {
			return fmt.Errorf("crossbar: snapshot stuck cell (%d,%d) pinned at %d but effective level is %d",
				sc.Phys, sc.Col, sc.Level, st.Eff[sc.Phys][sc.Col])
		}
	}
	return nil
}

// Restore rebuilds the array from a snapshot: cell levels, stuck faults,
// row remapping, and the spare budget are taken verbatim, and every derived
// structure (masks, histograms, level lists, drift counter) is recomputed
// through the same invariant-maintaining mutators the live write path uses.
// The snapshot is validated first; on error the array is untouched.
func (a *Array) Restore(st ArrayState) error {
	if err := a.CheckState(st); err != nil {
		return err
	}
	phys := len(a.levels)
	// Reset to the freshly-allocated state, then replay the snapshot through
	// setProg/setEff so masks/hist/levelList can never drift from the cells.
	for p := 0; p < phys; p++ {
		for c := 0; c < a.Cols; c++ {
			a.setProg(p, c, 0)
			a.setEff(p, c, 0)
		}
	}
	a.stuck = nil
	for p := 0; p < phys; p++ {
		for c := 0; c < a.Cols; c++ {
			a.setProg(p, c, st.Prog[p][c])
			a.setEff(p, c, st.Eff[p][c])
		}
	}
	if len(st.Stuck) > 0 {
		a.stuck = make(map[int]uint8, len(st.Stuck))
		for _, sc := range st.Stuck {
			a.stuck[sc.Phys*a.Cols+sc.Col] = sc.Level
		}
	}
	copy(a.rowMap, st.RowMap)
	a.spareFree = append(a.spareFree[:0], st.SpareFree...)
	a.spared = st.Spared
	a.drifted = a.driftedSlow()
	return nil
}
