// Package crossbar models the memristive crossbar substrate of the
// accelerators the paper protects (Section II-B): multi-level cell arrays,
// bit slicing of wide operands across physical rows (Figure 2), bit-serial
// input application, and the shift-and-add reduction trees that reassemble
// full-precision dot products (Figure 1).
//
// The representation is optimized for the Monte-Carlo hot path: each
// physical row keeps one bitmask per conductance level, so the active-cell
// population under an input mask — the quantity both the ideal ADC output
// and the noise model need — is a handful of AND+popcount operations.
package crossbar

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
)

// DefaultSize is the array dimension the paper evaluates (128x128).
const DefaultSize = 128

// Array is one physical crossbar: Rows word lines by Cols bit lines of
// cells programmable to 2^BitsPerCell conductance levels.
//
// The array distinguishes the *programmed* level (what the write circuitry
// targeted) from the *effective* level (the conductance a read actually
// sees). The two diverge under lifetime faults: a stuck-at cell pins its
// effective level regardless of programming, and conductance drift walks
// the effective level away from the target until the cell is rewritten.
// All read-path queries (masks, histograms, outputs) observe effective
// levels.
type Array struct {
	Rows, Cols, BitsPerCell int

	words  int       // words per row mask
	levels [][]uint8 // [row][col] programmed level
	eff    [][]uint8 // [row][col] effective level a read observes
	// stuck maps r*Cols+c to the pinned level of a stuck-at cell.
	stuck map[int]uint8
	// masks[row][level][word]: bit c set iff cell (row, c) is effectively
	// at that level. Level 0 masks are omitted (they carry no signal).
	masks [][][]uint64
	// hist[row][level] is the effective level histogram used for worst-case
	// susceptibility prediction.
	hist [][]int
}

// NewArray allocates a zeroed (all cells at level 0) array.
func NewArray(rows, cols, bitsPerCell int) *Array {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("crossbar: invalid dimensions %dx%d", rows, cols))
	}
	if bitsPerCell < 1 || bitsPerCell > 8 {
		panic(fmt.Sprintf("crossbar: bits per cell %d out of range [1,8]", bitsPerCell))
	}
	k := 1 << bitsPerCell
	words := (cols + 63) / 64
	a := &Array{
		Rows: rows, Cols: cols, BitsPerCell: bitsPerCell,
		words:  words,
		levels: make([][]uint8, rows),
		eff:    make([][]uint8, rows),
		masks:  make([][][]uint64, rows),
		hist:   make([][]int, rows),
	}
	for r := 0; r < rows; r++ {
		a.levels[r] = make([]uint8, cols)
		a.eff[r] = make([]uint8, cols)
		a.masks[r] = make([][]uint64, k)
		for l := 1; l < k; l++ {
			a.masks[r][l] = make([]uint64, words)
		}
		a.hist[r] = make([]int, k)
		a.hist[r][0] = cols
	}
	return a
}

// NumLevels returns the number of programmable levels per cell.
func (a *Array) NumLevels() int { return 1 << a.BitsPerCell }

// MaskWords returns the number of 64-bit words in an input mask for this
// array.
func (a *Array) MaskWords() int { return a.words }

// Set programs cell (r, c) to the given level: the write circuitry drives
// the cell to the target, so any accumulated drift is erased. A stuck cell
// accepts the programmed target but its effective level stays pinned.
func (a *Array) Set(r, c int, level uint8) {
	if int(level) >= a.NumLevels() {
		panic(fmt.Sprintf("crossbar: level %d exceeds %d-bit cell", level, a.BitsPerCell))
	}
	a.levels[r][c] = level
	if _, pinned := a.stuck[r*a.Cols+c]; pinned {
		return
	}
	a.setEff(r, c, level)
}

// setEff moves the effective level of cell (r, c), maintaining the read
// masks and histograms.
func (a *Array) setEff(r, c int, level uint8) {
	old := a.eff[r][c]
	if old == level {
		return
	}
	w, b := c/64, uint(c%64)
	if old != 0 {
		a.masks[r][old][w] &^= 1 << b
	}
	if level != 0 {
		a.masks[r][level][w] |= 1 << b
	}
	a.eff[r][c] = level
	a.hist[r][old]--
	a.hist[r][level]++
}

// SetStuck pins cell (r, c) at the given effective level: a stuck-at fault.
// Subsequent Set calls record the programmed target but do not move the
// cell until ClearStuck. Stuck-at-LRS is the top level (lowest resistance),
// stuck-at-HRS is level 0.
func (a *Array) SetStuck(r, c int, level uint8) {
	if int(level) >= a.NumLevels() {
		panic(fmt.Sprintf("crossbar: stuck level %d exceeds %d-bit cell", level, a.BitsPerCell))
	}
	if a.stuck == nil {
		a.stuck = make(map[int]uint8)
	}
	a.stuck[r*a.Cols+c] = level
	a.setEff(r, c, level)
}

// ClearStuck removes a stuck-at fault from cell (r, c); the effective level
// returns to the programmed target (modeling a repaired or replaced cell).
func (a *Array) ClearStuck(r, c int) {
	if _, ok := a.stuck[r*a.Cols+c]; !ok {
		return
	}
	delete(a.stuck, r*a.Cols+c)
	a.setEff(r, c, a.levels[r][c])
}

// Stuck reports the pinned level of cell (r, c), if it carries a stuck-at
// fault.
func (a *Array) Stuck(r, c int) (uint8, bool) {
	lv, ok := a.stuck[r*a.Cols+c]
	return lv, ok
}

// StuckCount returns the number of stuck-at cells in the array.
func (a *Array) StuckCount() int { return len(a.stuck) }

// DriftCell shifts the effective level of cell (r, c) by delta conductance
// steps, clamped to the level range (time-parameterized conductance drift;
// the programmed target is unchanged, so reprogramming restores the cell).
// Stuck cells do not drift — the fault dominates. Reports whether the
// effective level changed.
func (a *Array) DriftCell(r, c, delta int) bool {
	if _, pinned := a.stuck[r*a.Cols+c]; pinned {
		return false
	}
	lv := int(a.eff[r][c]) + delta
	if lv < 0 {
		lv = 0
	}
	if lv >= a.NumLevels() {
		lv = a.NumLevels() - 1
	}
	if uint8(lv) == a.eff[r][c] {
		return false
	}
	a.setEff(r, c, uint8(lv))
	return true
}

// DriftedCount returns the number of healthy (non-stuck) cells whose
// effective level has drifted away from the programmed target.
func (a *Array) DriftedCount() int {
	n := 0
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			if a.eff[r][c] != a.levels[r][c] {
				if _, pinned := a.stuck[r*a.Cols+c]; !pinned {
					n++
				}
			}
		}
	}
	return n
}

// Level returns the effective level of cell (r, c) — what a read observes.
func (a *Array) Level(r, c int) uint8 { return a.eff[r][c] }

// Programmed returns the level the write circuitry last targeted for cell
// (r, c), which differs from Level under stuck-at faults or drift.
func (a *Array) Programmed(r, c int) uint8 { return a.levels[r][c] }

// Histogram returns the effective level histogram of row r (do not mutate).
func (a *Array) Histogram(r int) []int { return a.hist[r] }

// ActiveCounts fills counts[level] with the number of row-r cells at each
// level whose column is active in the input mask. counts must have
// NumLevels entries; entry 0 is left zero (level-0 cells carry no signal
// beyond the calibrated offset).
func (a *Array) ActiveCounts(r int, input []uint64, counts []int) {
	row := a.masks[r]
	for l := 1; l < len(row); l++ {
		m := row[l]
		n := 0
		for w := 0; w < a.words; w++ {
			n += bits.OnesCount64(m[w] & input[w])
		}
		counts[l] = n
	}
	counts[0] = 0
}

// IdealRowOutput returns the noise-free quantized ADC output of row r under
// an input mask: the level-weighted active-cell count, which is exactly the
// integer the shift-and-add tree expects.
func (a *Array) IdealRowOutput(r int, input []uint64) int {
	row := a.masks[r]
	out := 0
	for l := 1; l < len(row); l++ {
		m := row[l]
		n := 0
		for w := 0; w < a.words; w++ {
			n += bits.OnesCount64(m[w] & input[w])
		}
		out += l * n
	}
	return out
}

// OutputFromCounts converts an ActiveCounts result to the ideal ADC output.
func OutputFromCounts(counts []int) int {
	out := 0
	for l := 1; l < len(counts); l++ {
		out += l * counts[l]
	}
	return out
}

// MaxOutput is the ADC full-scale value for this array: every column active
// at the top level.
func (a *Array) MaxOutput() int { return (a.NumLevels() - 1) * a.Cols }

// SliceLevels splits an encoded word into per-row cell levels, least
// significant slice first (Figure 2). nRows must cover the word's bit
// length.
func SliceLevels(w core.Word, bitsPerCell, nRows int) ([]uint8, error) {
	if need := (w.BitLen() + bitsPerCell - 1) / bitsPerCell; need > nRows {
		return nil, fmt.Errorf("crossbar: %d-bit word needs %d slices, only %d rows", w.BitLen(), need, nRows)
	}
	out := make([]uint8, nRows)
	for r := 0; r < nRows; r++ {
		out[r] = uint8(w.ExtractBits(uint(r*bitsPerCell), uint(bitsPerCell)))
	}
	return out, nil
}

// ProgramColumn writes the bit slices of an encoded word down column col,
// one slice per physical row starting at row 0.
func (a *Array) ProgramColumn(col int, w core.Word) error {
	lv, err := SliceLevels(w, a.BitsPerCell, a.Rows)
	if err != nil {
		return err
	}
	for r, l := range lv {
		a.Set(r, col, l)
	}
	return nil
}

// ReduceRows reassembles per-row ADC outputs into the full logical result
// via the shift-and-add tree: sum of outs[r] << (r*bitsPerCell). Outputs
// must be non-negative (the ADC clamps at zero). ok is false on overflow.
func ReduceRows(outs []int, bitsPerCell int) (core.Word, bool) {
	var acc core.Word
	for r, o := range outs {
		if o < 0 {
			return core.Word{}, false
		}
		if o == 0 {
			continue
		}
		if !acc.AddShifted(uint64(o), uint(r*bitsPerCell)) {
			return core.Word{}, false
		}
	}
	return acc, true
}

// InputMasks bit-slices a quantized input vector for bit-serial application
// (Section II-B1): masks[b] has bit j set iff bit b of input j is one.
func InputMasks(vals []uint64, inputBits int) [][]uint64 {
	words := (len(vals) + 63) / 64
	masks := make([][]uint64, inputBits)
	for b := range masks {
		masks[b] = make([]uint64, words)
	}
	for j, v := range vals {
		w, bit := j/64, uint(j%64)
		for b := 0; b < inputBits; b++ {
			if v>>uint(b)&1 == 1 {
				masks[b][w] |= 1 << bit
			}
		}
	}
	return masks
}
