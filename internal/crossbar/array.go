// Package crossbar models the memristive crossbar substrate of the
// accelerators the paper protects (Section II-B): multi-level cell arrays,
// bit slicing of wide operands across physical rows (Figure 2), bit-serial
// input application, and the shift-and-add reduction trees that reassemble
// full-precision dot products (Figure 1).
//
// The representation is optimized for the Monte-Carlo hot path: each
// physical row keeps one bitmask per conductance level, so the active-cell
// population under an input mask — the quantity both the ideal ADC output
// and the noise model need — is a handful of AND+popcount operations.
package crossbar

import (
	"fmt"
	"math/bits"
	"math/rand/v2"

	"repro/internal/core"
)

// DefaultSize is the array dimension the paper evaluates (128x128).
const DefaultSize = 128

// Array is one physical crossbar: Rows word lines by Cols bit lines of
// cells programmable to 2^BitsPerCell conductance levels, plus an optional
// bank of spare word lines the scrubber can retire worn rows onto.
//
// The array distinguishes the *programmed* level (what the write circuitry
// targeted) from the *effective* level (the conductance a read actually
// sees). The two diverge under lifetime faults: a stuck-at cell pins its
// effective level regardless of programming, and conductance drift walks
// the effective level away from the target until the cell is rewritten.
// All read-path queries (masks, histograms, outputs) observe effective
// levels.
//
// Rows is the logical row count. Internally the array holds Rows + spares
// physical word lines; a row-remap table translates logical row addresses
// to physical ones, so after SpareRow retires a worn word line every
// read-path query (ActiveCounts, IdealRowOutput, Level, ...) transparently
// lands on the replacement.
type Array struct {
	Rows, Cols, BitsPerCell int

	words  int       // words per row mask
	levels [][]uint8 // [phys][col] programmed level
	eff    [][]uint8 // [phys][col] effective level a read observes
	// stuck maps phys*Cols+c to the pinned level of a stuck-at cell.
	stuck map[int]uint8
	// masks[phys][level][word]: bit c set iff cell (phys, c) is effectively
	// at that level. Level 0 masks are omitted (they carry no signal).
	masks [][][]uint64
	// pmasks mirrors masks for *programmed* levels, so the scrub probe's
	// expected-output query (ProgrammedRowOutput) walks words like the
	// effective-level readers instead of scanning cells.
	pmasks [][][]uint64
	// hist[phys][level] is the effective level histogram used for worst-case
	// susceptibility prediction.
	hist [][]int
	// levelList[phys] holds the ascending nonzero effective levels present
	// in the word line (hist > 0), so per-row reads and aggregates iterate
	// only levels that exist instead of all 2^BitsPerCell.
	levelList [][]uint8
	// rowMap[r] is the physical word line backing logical row r.
	rowMap []int
	// spareFree lists unused spare word lines in ascending order; SpareRow
	// consumes from the front so repairs are deterministic.
	spareFree []int
	// spared counts rows retired onto spares over the array's lifetime.
	spared int
	// drifted is the incrementally-maintained count of healthy (non-stuck)
	// cells whose effective level differs from the programmed target —
	// DriftedCount would otherwise be an O(rows*cols) scan on the scrub and
	// metrics path.
	drifted int
}

// NewArray allocates a zeroed (all cells at level 0) array with no spares.
func NewArray(rows, cols, bitsPerCell int) *Array {
	return NewArrayWithSpares(rows, cols, bitsPerCell, 0)
}

// NewArrayWithSpares allocates a zeroed array carrying the given number of
// spare word lines for row sparing.
func NewArrayWithSpares(rows, cols, bitsPerCell, spares int) *Array {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("crossbar: invalid dimensions %dx%d", rows, cols))
	}
	if bitsPerCell < 1 || bitsPerCell > 8 {
		panic(fmt.Sprintf("crossbar: bits per cell %d out of range [1,8]", bitsPerCell))
	}
	if spares < 0 {
		panic(fmt.Sprintf("crossbar: negative spare count %d", spares))
	}
	k := 1 << bitsPerCell
	words := (cols + 63) / 64
	phys := rows + spares
	a := &Array{
		Rows: rows, Cols: cols, BitsPerCell: bitsPerCell,
		words:     words,
		levels:    make([][]uint8, phys),
		eff:       make([][]uint8, phys),
		masks:     make([][][]uint64, phys),
		pmasks:    make([][][]uint64, phys),
		hist:      make([][]int, phys),
		levelList: make([][]uint8, phys),
		rowMap:    make([]int, rows),
	}
	for p := 0; p < phys; p++ {
		a.levels[p] = make([]uint8, cols)
		a.eff[p] = make([]uint8, cols)
		a.masks[p] = make([][]uint64, k)
		a.pmasks[p] = make([][]uint64, k)
		for l := 1; l < k; l++ {
			a.masks[p][l] = make([]uint64, words)
			a.pmasks[p][l] = make([]uint64, words)
		}
		a.hist[p] = make([]int, k)
		a.hist[p][0] = cols
	}
	for r := 0; r < rows; r++ {
		a.rowMap[r] = r
	}
	for s := rows; s < phys; s++ {
		a.spareFree = append(a.spareFree, s)
	}
	return a
}

// NumLevels returns the number of programmable levels per cell.
func (a *Array) NumLevels() int { return 1 << a.BitsPerCell }

// MaskWords returns the number of 64-bit words in an input mask for this
// array.
func (a *Array) MaskWords() int { return a.words }

// cellDrifted is cell (p, c)'s contribution to the drifted counter.
func (a *Array) cellDrifted(p, c int) int {
	if a.eff[p][c] == a.levels[p][c] {
		return 0
	}
	if _, pinned := a.stuck[p*a.Cols+c]; pinned {
		return 0
	}
	return 1
}

// adjustDrift runs one cell mutation and folds its before/after drift
// contribution into the incremental counter.
func (a *Array) adjustDrift(p, c int, mutate func()) {
	before := a.cellDrifted(p, c)
	mutate()
	a.drifted += a.cellDrifted(p, c) - before
}

// Set programs cell (r, c) to the given level: the write circuitry drives
// the cell to the target, so any accumulated drift is erased. A stuck cell
// accepts the programmed target but its effective level stays pinned.
func (a *Array) Set(r, c int, level uint8) {
	if int(level) >= a.NumLevels() {
		panic(fmt.Sprintf("crossbar: level %d exceeds %d-bit cell", level, a.BitsPerCell))
	}
	a.setCellPhys(a.rowMap[r], c, level)
}

// setCellPhys records the programmed target and, unless the cell is pinned
// by a stuck-at fault, moves the effective level to it.
func (a *Array) setCellPhys(p, c int, level uint8) {
	a.adjustDrift(p, c, func() {
		a.setProg(p, c, level)
		if _, pinned := a.stuck[p*a.Cols+c]; !pinned {
			a.setEff(p, c, level)
		}
	})
}

// setProg records the programmed target of physical cell (p, c),
// maintaining the programmed-level masks. Every write to a.levels must go
// through here or ProgrammedRowOutput diverges from the cell state.
func (a *Array) setProg(p, c int, level uint8) {
	old := a.levels[p][c]
	if old == level {
		return
	}
	w, b := c/64, uint(c%64)
	if old != 0 {
		a.pmasks[p][old][w] &^= 1 << b
	}
	if level != 0 {
		a.pmasks[p][level][w] |= 1 << b
	}
	a.levels[p][c] = level
}

// setEff moves the effective level of physical cell (p, c), maintaining the
// read masks, histograms, and present-level lists. Callers account for the
// drifted counter.
func (a *Array) setEff(p, c int, level uint8) {
	old := a.eff[p][c]
	if old == level {
		return
	}
	w, b := c/64, uint(c%64)
	if old != 0 {
		a.masks[p][old][w] &^= 1 << b
	}
	if level != 0 {
		a.masks[p][level][w] |= 1 << b
	}
	a.eff[p][c] = level
	a.hist[p][old]--
	a.hist[p][level]++
	if old != 0 && a.hist[p][old] == 0 {
		a.levelList[p] = removeLevel(a.levelList[p], old)
	}
	if level != 0 && a.hist[p][level] == 1 {
		a.levelList[p] = insertLevel(a.levelList[p], level)
	}
}

// insertLevel adds lv to the ascending level list (absent by contract).
func insertLevel(list []uint8, lv uint8) []uint8 {
	i := len(list)
	for i > 0 && list[i-1] > lv {
		i--
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = lv
	return list
}

// removeLevel drops lv from the ascending level list (present by contract).
func removeLevel(list []uint8, lv uint8) []uint8 {
	for i, v := range list {
		if v == lv {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// SetStuck pins cell (r, c) at the given effective level: a stuck-at fault.
// Subsequent Set calls record the programmed target but do not move the
// cell until ClearStuck. Stuck-at-LRS is the top level (lowest resistance),
// stuck-at-HRS is level 0.
func (a *Array) SetStuck(r, c int, level uint8) {
	if int(level) >= a.NumLevels() {
		panic(fmt.Sprintf("crossbar: stuck level %d exceeds %d-bit cell", level, a.BitsPerCell))
	}
	if a.stuck == nil {
		a.stuck = make(map[int]uint8)
	}
	p := a.rowMap[r]
	a.adjustDrift(p, c, func() {
		a.stuck[p*a.Cols+c] = level
		a.setEff(p, c, level)
	})
}

// ClearStuck removes a stuck-at fault from cell (r, c); the effective level
// returns to the programmed target (modeling a repaired or replaced cell).
func (a *Array) ClearStuck(r, c int) {
	p := a.rowMap[r]
	if _, ok := a.stuck[p*a.Cols+c]; !ok {
		return
	}
	a.adjustDrift(p, c, func() {
		delete(a.stuck, p*a.Cols+c)
		a.setEff(p, c, a.levels[p][c])
	})
}

// Stuck reports the pinned level of cell (r, c), if it carries a stuck-at
// fault.
func (a *Array) Stuck(r, c int) (uint8, bool) {
	lv, ok := a.stuck[a.rowMap[r]*a.Cols+c]
	return lv, ok
}

// StuckCount returns the number of stuck-at cells on live word lines
// (retired rows are decommissioned and drop out of the count).
func (a *Array) StuckCount() int { return len(a.stuck) }

// DriftCell shifts the effective level of cell (r, c) by delta conductance
// steps, clamped to the level range (time-parameterized conductance drift;
// the programmed target is unchanged, so reprogramming restores the cell).
// Stuck cells do not drift — the fault dominates. Reports whether the
// effective level changed.
func (a *Array) DriftCell(r, c, delta int) bool {
	p := a.rowMap[r]
	if _, pinned := a.stuck[p*a.Cols+c]; pinned {
		return false
	}
	lv := int(a.eff[p][c]) + delta
	if lv < 0 {
		lv = 0
	}
	if lv >= a.NumLevels() {
		lv = a.NumLevels() - 1
	}
	if uint8(lv) == a.eff[p][c] {
		return false
	}
	a.adjustDrift(p, c, func() {
		a.setEff(p, c, uint8(lv))
	})
	return true
}

// DriftedCount returns the number of healthy (non-stuck) cells whose
// effective level has drifted away from the programmed target. The count is
// maintained incrementally on every cell mutation, so polling it per scrub
// cycle or metrics scrape is O(1).
func (a *Array) DriftedCount() int { return a.drifted }

// driftedSlow is the brute-force scan DriftedCount replaced; tests
// cross-check the incremental counter against it.
func (a *Array) driftedSlow() int {
	n := 0
	for p := range a.levels {
		for c := 0; c < a.Cols; c++ {
			n += a.cellDrifted(p, c)
		}
	}
	return n
}

// Level returns the effective level of cell (r, c) — what a read observes.
func (a *Array) Level(r, c int) uint8 { return a.eff[a.rowMap[r]][c] }

// Programmed returns the level the write circuitry last targeted for cell
// (r, c), which differs from Level under stuck-at faults or drift.
func (a *Array) Programmed(r, c int) uint8 { return a.levels[a.rowMap[r]][c] }

// Histogram returns the effective level histogram of row r (do not mutate).
func (a *Array) Histogram(r int) []int { return a.hist[a.rowMap[r]] }

// ActiveCounts fills counts[level] with the number of row-r cells at each
// level whose column is active in the input mask. counts must have
// NumLevels entries; entry 0 is left zero (level-0 cells carry no signal
// beyond the calibrated offset). Row addresses go through the row-remap
// table, so spared rows read from their replacement word line.
func (a *Array) ActiveCounts(r int, input []uint64, counts []int) {
	row := a.masks[a.rowMap[r]]
	for l := 1; l < len(row); l++ {
		m := row[l]
		n := 0
		for w := 0; w < a.words; w++ {
			n += bits.OnesCount64(m[w] & input[w])
		}
		counts[l] = n
	}
	counts[0] = 0
}

// ActiveCountsMulti is the fused multi-bit-plane ActiveCounts: it fills
// counts[b][level] for every input mask inputs[b] in one pass over row r's
// level masks, so each mask word is loaded once and feeds all bit planes.
// Only levels present in the row are visited (all-zero words are skipped
// within them); absent levels are left at the zero the kernel writes first.
// Each counts[b] must have NumLevels entries.
func (a *Array) ActiveCountsMulti(r int, inputs [][]uint64, counts [][]int) {
	p := a.rowMap[r]
	row := a.masks[p]
	for _, cb := range counts {
		for l := range cb {
			cb[l] = 0
		}
	}
	for _, l := range a.levelList[p] {
		m := row[l]
		switch len(m) {
		case 0:
			continue
		case 1:
			// One- and two-word rows (<=128 columns) cover every tiled
			// crossbar in practice; unrolling them removes the word-loop
			// overhead that otherwise dominates the popcounts.
			m0 := m[0]
			for b, in := range inputs {
				counts[b][l] = bits.OnesCount64(m0 & in[0])
			}
		case 2:
			m0, m1 := m[0], m[1]
			for b, in := range inputs {
				in = in[:2]
				counts[b][l] = bits.OnesCount64(m0&in[0]) + bits.OnesCount64(m1&in[1])
			}
		default:
			for b, in := range inputs {
				inw := in[:len(m)] // pins len(inw)==len(m) for bounds elision
				n := 0
				for w, mw := range m {
					n += bits.OnesCount64(mw & inw[w])
				}
				counts[b][l] = n
			}
		}
	}
}

// ActiveCountsBatch is the multi-image ActiveCountsMulti: it fills a flat
// level-major counts buffer for B independent bit-plane sets in a single
// pass over row r's level masks, so the per-row level list and fault-shaped
// level masks — which are input-independent and shared by every image in a
// batch — are walked once per row per batch instead of once per image.
// sets[i] holds image i's bit-plane masks (every image must carry the same
// plane count and word width); counts must have at least NumLevels*stride
// entries, where stride = len(sets)*planes, and entry
// level*stride + i*planes + b receives the active-cell count of image i's
// plane b at that level. Only levels present in the row are written — pair
// this with a consumer that walks the same LevelList(r) and never reads
// absent levels.
func (a *Array) ActiveCountsBatch(r int, sets [][][]uint64, counts []int) {
	p := a.rowMap[r]
	row := a.masks[p]
	planes := 0
	if len(sets) > 0 {
		planes = len(sets[0])
	}
	stride := len(sets) * planes
	for _, l := range a.levelList[p] {
		m := row[l]
		i := int(l) * stride
		switch len(m) {
		case 0:
			continue
		case 1:
			// Same unrolling rationale as ActiveCountsMulti: one- and
			// two-word rows cover every tiled crossbar in practice.
			m0 := m[0]
			for _, ps := range sets {
				for _, in := range ps {
					counts[i] = bits.OnesCount64(m0 & in[0])
					i++
				}
			}
		case 2:
			m0, m1 := m[0], m[1]
			for _, ps := range sets {
				for _, in := range ps {
					in = in[:2]
					counts[i] = bits.OnesCount64(m0&in[0]) + bits.OnesCount64(m1&in[1])
					i++
				}
			}
		default:
			for _, ps := range sets {
				for _, in := range ps {
					inw := in[:len(m)] // pins len(inw)==len(m) for bounds elision
					n := 0
					for w, mw := range m {
						n += bits.OnesCount64(mw & inw[w])
					}
					counts[i] = n
					i++
				}
			}
		}
	}
}

// LevelList returns the ascending nonzero effective levels present in row r.
// The slice is owned by the array: do not mutate, and treat it as
// invalidated by any cell mutation.
func (a *Array) LevelList(r int) []uint8 { return a.levelList[a.rowMap[r]] }

// IdealRowOutput returns the noise-free quantized ADC output of row r under
// an input mask: the level-weighted active-cell count, which is exactly the
// integer the shift-and-add tree expects. Row addresses go through the
// row-remap table.
func (a *Array) IdealRowOutput(r int, input []uint64) int {
	row := a.masks[a.rowMap[r]]
	out := 0
	for l := 1; l < len(row); l++ {
		m := row[l]
		n := 0
		for w := 0; w < a.words; w++ {
			n += bits.OnesCount64(m[w] & input[w])
		}
		out += l * n
	}
	return out
}

// ProgrammedRowOutput returns the ADC output row r would produce under an
// input mask if every cell sat exactly at its programmed target — the
// expected value a scrub test vector is checked against. The difference
// IdealRowOutput - ProgrammedRowOutput is the row's deviation in steps
// caused by stuck-at faults and drift.
func (a *Array) ProgrammedRowOutput(r int, input []uint64) int {
	row := a.pmasks[a.rowMap[r]]
	out := 0
	for l := 1; l < len(row); l++ {
		m := row[l]
		n := 0
		for w := 0; w < a.words; w++ {
			if mw := m[w]; mw != 0 {
				n += bits.OnesCount64(mw & input[w])
			}
		}
		out += l * n
	}
	return out
}

// programmedRowOutputScan is the O(cols) cell scan ProgrammedRowOutput
// replaced; tests cross-check the mask walk against it.
func (a *Array) programmedRowOutputScan(r int, input []uint64) int {
	row := a.levels[a.rowMap[r]]
	out := 0
	for c, lv := range row {
		if lv == 0 {
			continue
		}
		if input[c/64]>>uint(c%64)&1 == 1 {
			out += int(lv)
		}
	}
	return out
}

// OutputFromCounts converts an ActiveCounts result to the ideal ADC output.
func OutputFromCounts(counts []int) int {
	out := 0
	for l := 1; l < len(counts); l++ {
		out += l * counts[l]
	}
	return out
}

// MaxOutput is the ADC full-scale value for this array: every column active
// at the top level.
func (a *Array) MaxOutput() int { return (a.NumLevels() - 1) * a.Cols }

// VerifyTally accumulates per-cell outcomes of closed-loop (write + read
// verify) programming passes.
type VerifyTally struct {
	// Cells is how many cells went through the verify loop.
	Cells uint64
	// Pulses is the total number of write pulses issued.
	Pulses uint64
	// GaveUp counts cells that never read back their target within the
	// iteration bound — the signature of an uncorrectable stuck cell.
	GaveUp uint64
	// Hist[i] counts cells that converged after exactly i+1 pulses.
	Hist []uint64
}

// Note records one cell's verify outcome.
func (t *VerifyTally) Note(pulses int, ok bool) {
	t.Cells++
	t.Pulses += uint64(pulses)
	if !ok {
		t.GaveUp++
		return
	}
	for len(t.Hist) < pulses {
		t.Hist = append(t.Hist, 0)
	}
	t.Hist[pulses-1]++
}

// Merge folds another tally into this one.
func (t *VerifyTally) Merge(o VerifyTally) {
	t.Cells += o.Cells
	t.Pulses += o.Pulses
	t.GaveUp += o.GaveUp
	for len(t.Hist) < len(o.Hist) {
		t.Hist = append(t.Hist, 0)
	}
	for i, n := range o.Hist {
		t.Hist[i] += n
	}
}

// ProgramVerify is the closed-loop write path: it records the programmed
// target for cell (r, c) and then iteratively pulses and read-verifies the
// cell against the target, up to maxIters pulses. A pulse always lands the
// healthy cell at the target's discrete level (the programming error is
// analog, a fraction of one conductance step), but the verify comparator
// sees the analog conductance: pulseFail, if non-nil, gives the per-level
// probability that one pulse misses the verify tolerance and must be
// re-issued (derived from the iterative-programming noise model); rng draws
// those misses. A cell pinned off-target by a stuck-at fault never
// verifies and the loop gives up after maxIters. Returns the pulse count
// and whether the cell verified at the target — success is only ever
// reported with the effective level at the target.
func (a *Array) ProgramVerify(r, c int, level uint8, maxIters int, pulseFail []float64, rng *rand.Rand) (int, bool) {
	if int(level) >= a.NumLevels() {
		panic(fmt.Sprintf("crossbar: level %d exceeds %d-bit cell", level, a.BitsPerCell))
	}
	return a.programVerifyPhys(a.rowMap[r], c, level, maxIters, pulseFail, rng)
}

func (a *Array) programVerifyPhys(p, c int, level uint8, maxIters int, pulseFail []float64, rng *rand.Rand) (int, bool) {
	if maxIters < 1 {
		maxIters = 1
	}
	for iter := 1; iter <= maxIters; iter++ {
		// Pulse: even when the analog landing misses the verify tolerance
		// the cell holds the target's discrete level, so the digital state
		// after a verified program equals the blind-write state — the rng
		// only decides how many pulses that took.
		a.setCellPhys(p, c, level)
		if a.eff[p][c] != level {
			continue // pinned off-target: pulses cannot move it
		}
		if pulseFail != nil && rng != nil {
			if pf := pulseFail[level]; pf > 0 && rng.Float64() < pf {
				continue // analog landing outside tolerance: re-pulse
			}
		}
		return iter, true
	}
	return maxIters, false
}

// ProgramColumnVerify writes the bit slices of an encoded word down column
// col through the closed-loop verify path, one slice per logical row
// starting at row 0, and returns the per-cell accounting.
func (a *Array) ProgramColumnVerify(col int, w core.Word, maxIters int, pulseFail []float64, rng *rand.Rand) (VerifyTally, error) {
	var tally VerifyTally
	lv, err := SliceLevels(w, a.BitsPerCell, a.Rows)
	if err != nil {
		return tally, err
	}
	for r, l := range lv {
		pulses, ok := a.ProgramVerify(r, col, l, maxIters, pulseFail, rng)
		tally.Note(pulses, ok)
	}
	return tally, nil
}

// SpareRowsFree returns how many spare word lines remain available.
func (a *Array) SpareRowsFree() int { return len(a.spareFree) }

// SparedRows returns how many rows have been retired onto spares.
func (a *Array) SparedRows() int { return a.spared }

// SpareRow retires logical row r onto the next free spare word line: the
// spare is programmed with r's targets through the verify path, the
// row-remap table is repointed so all reads land on the replacement, and
// the worn word line is decommissioned (its faults leave the live
// population). Returns false, with a zero tally, when no spare is free.
func (a *Array) SpareRow(r int, maxIters int, pulseFail []float64, rng *rand.Rand) (VerifyTally, bool) {
	var tally VerifyTally
	if len(a.spareFree) == 0 {
		return tally, false
	}
	old := a.rowMap[r]
	repl := a.spareFree[0]
	a.spareFree = a.spareFree[1:]
	targets := append([]uint8(nil), a.levels[old]...)
	for c, lv := range targets {
		pulses, ok := a.programVerifyPhys(repl, c, lv, maxIters, pulseFail, rng)
		tally.Note(pulses, ok)
	}
	a.rowMap[r] = repl
	a.spared++
	// Decommission the worn word line: clear its cells and faults so the
	// stuck/drift population counters track only live rows.
	for c := 0; c < a.Cols; c++ {
		a.adjustDrift(old, c, func() {
			delete(a.stuck, old*a.Cols+c)
			a.setProg(old, c, 0)
			a.setEff(old, c, 0)
		})
	}
	return tally, true
}

// SliceLevels splits an encoded word into per-row cell levels, least
// significant slice first (Figure 2). nRows must cover the word's bit
// length.
func SliceLevels(w core.Word, bitsPerCell, nRows int) ([]uint8, error) {
	if need := (w.BitLen() + bitsPerCell - 1) / bitsPerCell; need > nRows {
		return nil, fmt.Errorf("crossbar: %d-bit word needs %d slices, only %d rows", w.BitLen(), need, nRows)
	}
	out := make([]uint8, nRows)
	for r := 0; r < nRows; r++ {
		out[r] = uint8(w.ExtractBits(uint(r*bitsPerCell), uint(bitsPerCell)))
	}
	return out, nil
}

// ProgramColumn writes the bit slices of an encoded word down column col,
// one slice per logical row starting at row 0, with blind (single-pulse,
// unverified) writes.
func (a *Array) ProgramColumn(col int, w core.Word) error {
	lv, err := SliceLevels(w, a.BitsPerCell, a.Rows)
	if err != nil {
		return err
	}
	for r, l := range lv {
		a.Set(r, col, l)
	}
	return nil
}

// ReduceRows reassembles per-row ADC outputs into the full logical result
// via the shift-and-add tree: sum of outs[r] << (r*bitsPerCell). Outputs
// must be non-negative (the ADC clamps at zero). ok is false on overflow.
func ReduceRows(outs []int, bitsPerCell int) (core.Word, bool) {
	var acc core.Word
	for r, o := range outs {
		if o < 0 {
			return core.Word{}, false
		}
		if o == 0 {
			continue
		}
		if !acc.AddShifted(uint64(o), uint(r*bitsPerCell)) {
			return core.Word{}, false
		}
	}
	return acc, true
}

// InputMasks bit-slices a quantized input vector for bit-serial application
// (Section II-B1): masks[b] has bit j set iff bit b of input j is one.
func InputMasks(vals []uint64, inputBits int) [][]uint64 {
	return InputMasksInto(nil, vals, inputBits)
}

// InputMasksInto is InputMasks writing into dst, reusing dst's plane slices
// when they are large enough (the scratch-arena variant of the hot path).
// The returned planes alias dst's backing arrays; zero-valued inputs are
// skipped entirely, and within a nonzero input only its set bits are
// visited.
func InputMasksInto(dst [][]uint64, vals []uint64, inputBits int) [][]uint64 {
	words := (len(vals) + 63) / 64
	if cap(dst) < inputBits {
		grown := make([][]uint64, inputBits)
		copy(grown, dst[:cap(dst)])
		dst = grown
	}
	dst = dst[:inputBits]
	for b := range dst {
		if cap(dst[b]) < words {
			dst[b] = make([]uint64, words)
			continue
		}
		dst[b] = dst[b][:words]
		for w := range dst[b] {
			dst[b][w] = 0
		}
	}
	var keep uint64 = ^uint64(0)
	if inputBits < 64 {
		keep = 1<<uint(inputBits) - 1
	}
	for j, v := range vals {
		v &= keep
		if v == 0 {
			continue
		}
		w, bit := j/64, uint(j%64)
		for ; v != 0; v &= v - 1 {
			dst[bits.TrailingZeros64(v)][w] |= 1 << bit
		}
	}
	return dst
}
