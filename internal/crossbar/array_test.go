package crossbar

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestNewArrayPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewArray(0, 10, 2) },
		func() { NewArray(10, 0, 2) },
		func() { NewArray(10, 10, 0) },
		func() { NewArray(10, 10, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSetAndLevel(t *testing.T) {
	a := NewArray(4, 70, 2)
	a.Set(1, 65, 3)
	if a.Level(1, 65) != 3 {
		t.Fatal("level not stored")
	}
	a.Set(1, 65, 1) // reprogram must clear the old mask bit
	if a.Level(1, 65) != 1 {
		t.Fatal("reprogram failed")
	}
	counts := make([]int, 4)
	full := []uint64{^uint64(0), ^uint64(0)}
	a.ActiveCounts(1, full, counts)
	if counts[3] != 0 || counts[1] != 1 {
		t.Fatalf("mask not maintained on reprogram: %v", counts)
	}
	if h := a.Histogram(1); h[0] != 69 || h[1] != 1 {
		t.Fatalf("histogram wrong: %v", h)
	}
}

func TestSetPanicsOnBadLevel(t *testing.T) {
	a := NewArray(2, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Set(0, 0, 4)
}

func TestActiveCountsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := NewArray(8, 100, 3)
	for r := 0; r < 8; r++ {
		for c := 0; c < 100; c++ {
			a.Set(r, c, uint8(rng.IntN(8)))
		}
	}
	for trial := 0; trial < 50; trial++ {
		input := make([]uint64, a.MaskWords())
		active := make([]bool, 100)
		for c := 0; c < 100; c++ {
			if rng.IntN(2) == 1 {
				active[c] = true
				input[c/64] |= 1 << uint(c%64)
			}
		}
		for r := 0; r < 8; r++ {
			counts := make([]int, 8)
			a.ActiveCounts(r, input, counts)
			want := make([]int, 8)
			wantOut := 0
			for c := 0; c < 100; c++ {
				if active[c] && a.Level(r, c) != 0 {
					want[a.Level(r, c)]++
					wantOut += int(a.Level(r, c))
				}
			}
			for l := 1; l < 8; l++ {
				if counts[l] != want[l] {
					t.Fatalf("row %d level %d: %d vs %d", r, l, counts[l], want[l])
				}
			}
			if got := a.IdealRowOutput(r, input); got != wantOut {
				t.Fatalf("row %d output %d, want %d", r, got, wantOut)
			}
			if got := OutputFromCounts(counts); got != wantOut {
				t.Fatalf("OutputFromCounts %d, want %d", got, wantOut)
			}
		}
	}
}

func TestMaxOutput(t *testing.T) {
	a := NewArray(4, 128, 2)
	if a.MaxOutput() != 3*128 {
		t.Fatalf("MaxOutput = %d", a.MaxOutput())
	}
}

func TestSliceLevels(t *testing.T) {
	// Figure 2's example in miniature: value with known bit pattern.
	w := core.WordFromU64(0b11_01_00_10)
	lv, err := SliceLevels(w, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{2, 0, 1, 3}
	for i := range want {
		if lv[i] != want[i] {
			t.Fatalf("slice %d = %d, want %d", i, lv[i], want[i])
		}
	}
}

func TestSliceLevelsTooFewRows(t *testing.T) {
	if _, err := SliceLevels(core.Pow2Word(10), 2, 5); err == nil {
		t.Fatal("expected error: 11-bit word needs 6 rows at 2b")
	}
}

// TestSliceReduceRoundTrip is the Figure 1/2 identity: slicing a word into
// rows and reducing the per-row values with shift-and-add reproduces it.
func TestSliceReduceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, bpc := range []int{1, 2, 3, 4, 5} {
		for trial := 0; trial < 50; trial++ {
			var w core.Word
			for i := 0; i < 3; i++ {
				w[i] = rng.Uint64()
			}
			nRows := (w.BitLen() + bpc - 1) / bpc
			lv, err := SliceLevels(w, bpc, nRows)
			if err != nil {
				t.Fatal(err)
			}
			outs := make([]int, nRows)
			for r, l := range lv {
				outs[r] = int(l)
			}
			back, ok := ReduceRows(outs, bpc)
			if !ok || back != w {
				t.Fatalf("bpc=%d: round trip failed", bpc)
			}
		}
	}
}

// TestMVMThroughArray checks the end-to-end noiseless identity: programming
// encoded columns and summing sliced rows over an input mask computes the
// exact integer dot product of the encoded values.
func TestMVMThroughArray(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	const cols = 90
	vals := make([]uint64, cols)
	for j := range vals {
		vals[j] = uint64(rng.IntN(1 << 20))
	}
	a := NewArray(16, cols, 2)
	for j, v := range vals {
		if err := a.ProgramColumn(j, core.WordFromU64(v<<3)); err != nil {
			t.Fatal(err)
		}
	}
	input := make([]uint64, a.MaskWords())
	var want uint64
	for j := range vals {
		if rng.IntN(2) == 1 {
			input[j/64] |= 1 << uint(j%64)
			want += vals[j] << 3
		}
	}
	outs := make([]int, a.Rows)
	for r := 0; r < a.Rows; r++ {
		outs[r] = a.IdealRowOutput(r, input)
	}
	got, ok := ReduceRows(outs, 2)
	if !ok {
		t.Fatal("reduction overflow")
	}
	if got.Low64() != want || got.BitLen() > 64 {
		t.Fatalf("MVM = %v, want %d", got, want)
	}
}

func TestReduceRowsRejectsNegative(t *testing.T) {
	if _, ok := ReduceRows([]int{1, -1}, 2); ok {
		t.Fatal("negative ADC output must be rejected")
	}
}

func TestInputMasks(t *testing.T) {
	vals := []uint64{0b101, 0b010, 0b111}
	masks := InputMasks(vals, 3)
	if len(masks) != 3 {
		t.Fatalf("mask count = %d", len(masks))
	}
	// Bit 0: columns 0 and 2. Bit 1: columns 1 and 2. Bit 2: 0 and 2.
	if masks[0][0] != 0b101 || masks[1][0] != 0b110 || masks[2][0] != 0b101 {
		t.Fatalf("masks = %b %b %b", masks[0][0], masks[1][0], masks[2][0])
	}
}

func TestInputMasksWide(t *testing.T) {
	vals := make([]uint64, 70)
	vals[69] = 1
	masks := InputMasks(vals, 1)
	if len(masks[0]) != 2 || masks[0][1] != 1<<5 {
		t.Fatalf("wide mask wrong: %v", masks[0])
	}
}

// Property: bit-serial reconstruction — summing per-bit ideal outputs
// weighted by 2^b equals the dot product with full input values.
func TestBitSerialReconstructionQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		const cols, inBits = 40, 4
		weights := make([]uint64, cols)
		inputs := make([]uint64, cols)
		for j := range weights {
			weights[j] = uint64(rng.IntN(256))
			inputs[j] = uint64(rng.IntN(1 << inBits))
		}
		a := NewArray(8, cols, 1)
		for j, w := range weights {
			if err := a.ProgramColumn(j, core.WordFromU64(w)); err != nil {
				return false
			}
		}
		masks := InputMasks(inputs, inBits)
		var got uint64
		for b, m := range masks {
			outs := make([]int, a.Rows)
			for r := range outs {
				outs[r] = a.IdealRowOutput(r, m)
			}
			red, ok := ReduceRows(outs, 1)
			if !ok {
				return false
			}
			got += red.Low64() << uint(b)
		}
		var want uint64
		for j := range weights {
			want += weights[j] * inputs[j]
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
