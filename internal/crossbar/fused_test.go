package crossbar

import (
	"math/rand/v2"
	"reflect"
	"testing"
)

// scrambledArray builds an array with a noisy mix of programmed levels,
// stuck cells, drift, and spared rows, so the incremental structures
// (pmasks, levelList) are exercised through every mutation path.
func scrambledArray(t *testing.T, rows, cols, bpc, spares int, seed uint64) *Array {
	t.Helper()
	a := NewArrayWithSpares(rows, cols, bpc, spares)
	rng := rand.New(rand.NewPCG(seed, 17))
	k := a.NumLevels()
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < 0.7 {
				a.Set(r, c, uint8(rng.IntN(k)))
			}
		}
	}
	for i := 0; i < rows*cols/20; i++ {
		a.SetStuck(rng.IntN(rows), rng.IntN(cols), uint8(rng.IntN(k)))
	}
	for i := 0; i < rows*cols/20; i++ {
		a.DriftCell(rng.IntN(rows), rng.IntN(cols), 1-2*rng.IntN(2))
	}
	for s := 0; s < spares; s++ {
		a.SpareRow(rng.IntN(rows), 3, nil, rng)
	}
	// Post-sparing churn so decommissioned lines and replacements also move.
	for i := 0; i < rows*cols/10; i++ {
		a.Set(rng.IntN(rows), rng.IntN(cols), uint8(rng.IntN(k)))
	}
	return a
}

func randomMask(rng *rand.Rand, words, cols int) []uint64 {
	m := make([]uint64, words)
	for w := range m {
		m[w] = rng.Uint64()
	}
	if rem := cols % 64; rem != 0 {
		m[words-1] &= 1<<uint(rem) - 1
	}
	return m
}

// TestActiveCountsMultiMatchesScalar proves the fused kernel equals
// per-plane ActiveCounts on every row of a heavily mutated array.
func TestActiveCountsMultiMatchesScalar(t *testing.T) {
	a := scrambledArray(t, 32, 100, 2, 2, 5)
	rng := rand.New(rand.NewPCG(9, 9))
	const planes = 8
	inputs := make([][]uint64, planes)
	for b := range inputs {
		inputs[b] = randomMask(rng, a.MaskWords(), a.Cols)
	}
	fused := make([][]int, planes)
	for b := range fused {
		fused[b] = make([]int, a.NumLevels())
	}
	want := make([]int, a.NumLevels())
	for r := 0; r < a.Rows; r++ {
		a.ActiveCountsMulti(r, inputs, fused)
		for b := range inputs {
			a.ActiveCounts(r, inputs[b], want)
			if !reflect.DeepEqual(fused[b], want) {
				t.Fatalf("row %d plane %d: fused %v, scalar %v", r, b, fused[b], want)
			}
		}
	}
}

// TestLevelListConsistent checks the incrementally maintained present-level
// lists against the histograms after the mutation storm.
func TestLevelListConsistent(t *testing.T) {
	a := scrambledArray(t, 24, 70, 3, 1, 11)
	for p := range a.hist {
		var want []uint8
		for l := 1; l < a.NumLevels(); l++ {
			if a.hist[p][l] > 0 {
				want = append(want, uint8(l))
			}
		}
		got := a.levelList[p]
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual([]uint8(got), want) {
			t.Fatalf("phys row %d: level list %v, histogram says %v", p, got, want)
		}
	}
}

// TestProgrammedRowOutputMatchesScan cross-checks the pmask word walk
// against the original O(cols) cell scan, including after stuck faults,
// drift, sparing, and reprogramming have separated eff from levels.
func TestProgrammedRowOutputMatchesScan(t *testing.T) {
	a := scrambledArray(t, 40, 130, 2, 3, 23)
	rng := rand.New(rand.NewPCG(4, 2))
	for trial := 0; trial < 32; trial++ {
		input := randomMask(rng, a.MaskWords(), a.Cols)
		for r := 0; r < a.Rows; r++ {
			got := a.ProgrammedRowOutput(r, input)
			want := a.programmedRowOutputScan(r, input)
			if got != want {
				t.Fatalf("trial %d row %d: mask walk %d, cell scan %d", trial, r, got, want)
			}
		}
	}
}

// TestInputMasksIntoMatches checks the reusing variant (and its zero-input
// skip) against the allocating one, including reuse across shrinking and
// growing vector lengths with stale bits left in the scratch planes.
func TestInputMasksIntoMatches(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 7))
	var scratch [][]uint64
	for trial := 0; trial < 64; trial++ {
		n := 1 + rng.IntN(200)
		bits := 1 + rng.IntN(12)
		vals := make([]uint64, n)
		for i := range vals {
			switch rng.IntN(3) {
			case 0: // zero-heavy to exercise the skip
			case 1:
				vals[i] = rng.Uint64N(1 << uint(bits))
			case 2:
				vals[i] = rng.Uint64() // high garbage bits must be ignored
			}
		}
		// Independent naive reference (InputMasks itself now delegates to
		// InputMasksInto, so it cannot serve as the oracle).
		want := make([][]uint64, bits)
		for b := range want {
			want[b] = make([]uint64, (n+63)/64)
			for j, v := range vals {
				if v>>uint(b)&1 == 1 {
					want[b][j/64] |= 1 << uint(j%64)
				}
			}
		}
		if got := InputMasks(vals, bits); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: InputMasks diverged from naive reference", trial)
		}
		scratch = InputMasksInto(scratch, vals, bits)
		if len(scratch) != len(want) {
			t.Fatalf("trial %d: %d planes, want %d", trial, len(scratch), len(want))
		}
		for b := range want {
			if !reflect.DeepEqual(scratch[b], want[b]) {
				t.Fatalf("trial %d plane %d: got %x, want %x", trial, b, scratch[b], want[b])
			}
		}
	}
}
