package crossbar

import (
	"math/rand/v2"
	"testing"
)

// agedArray builds an array that has lived: programmed cells, stuck faults,
// drift, and a row retired onto a spare — every state dimension a snapshot
// must carry.
func agedArray(t *testing.T) *Array {
	t.Helper()
	a := NewArrayWithSpares(8, 16, 2, 2)
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			a.Set(r, c, uint8((r*3+c)%a.NumLevels()))
		}
	}
	a.SetStuck(2, 5, 3)
	a.SetStuck(4, 0, 0)
	if !a.DriftCell(1, 2, -1) {
		t.Fatal("drift setup failed")
	}
	if !a.DriftCell(6, 10, 1) {
		t.Fatal("drift setup failed")
	}
	rng := rand.New(rand.NewPCG(1, 2))
	if _, ok := a.SpareRow(4, 8, nil, rng); !ok {
		t.Fatal("sparing setup failed")
	}
	return a
}

// TestArrayStateRoundTrip: Snapshot→fresh array→Restore reproduces every
// observable — levels, faults, drift accounting, spare budget, and the
// read-path output — bit-identically.
func TestArrayStateRoundTrip(t *testing.T) {
	a := agedArray(t)
	st := a.Snapshot()

	b := NewArrayWithSpares(8, 16, 2, 2)
	if err := b.Restore(st); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			if a.Level(r, c) != b.Level(r, c) || a.Programmed(r, c) != b.Programmed(r, c) {
				t.Fatalf("cell (%d,%d): restored %d/%d, want %d/%d",
					r, c, b.Level(r, c), b.Programmed(r, c), a.Level(r, c), a.Programmed(r, c))
			}
		}
	}
	if a.StuckCount() != b.StuckCount() {
		t.Fatalf("stuck count %d, want %d", b.StuckCount(), a.StuckCount())
	}
	if a.DriftedCount() != b.DriftedCount() || b.DriftedCount() != b.driftedSlow() {
		t.Fatalf("drift count %d (slow %d), want %d", b.DriftedCount(), b.driftedSlow(), a.DriftedCount())
	}
	if a.SpareRowsFree() != b.SpareRowsFree() || a.SparedRows() != b.SparedRows() {
		t.Fatalf("spares %d/%d, want %d/%d", b.SpareRowsFree(), b.SparedRows(), a.SpareRowsFree(), a.SparedRows())
	}
	// Read path: an analog row output over a dense input must agree.
	input := make([]uint64, a.MaskWords())
	for i := range input {
		input[i] = ^uint64(0)
	}
	for r := 0; r < a.Rows; r++ {
		if a.ProgrammedRowOutput(r, input) != b.ProgrammedRowOutput(r, input) {
			t.Fatalf("row %d read output diverges after restore", r)
		}
	}
	// Mutation equivalence: further lifetime events land identically.
	a.SetStuck(0, 0, 1)
	b.SetStuck(0, 0, 1)
	if a.Level(0, 0) != b.Level(0, 0) {
		t.Fatal("post-restore mutation diverges")
	}
}

// TestArrayCheckStateRefusals: every malformed snapshot is refused, and a
// refusal leaves the target array untouched.
func TestArrayCheckStateRefusals(t *testing.T) {
	a := agedArray(t)
	good := a.Snapshot()

	mutants := map[string]func(ArrayState) ArrayState{
		"geometry": func(st ArrayState) ArrayState { st.Rows++; return st },
		"level overflow": func(st ArrayState) ArrayState {
			st.Eff = cloneLevels(st.Eff)
			st.Eff[0][0] = 200
			return st
		},
		"row map out of range": func(st ArrayState) ArrayState {
			st.RowMap = append([]int(nil), st.RowMap...)
			st.RowMap[0] = 99
			return st
		},
		"row map duplicate": func(st ArrayState) ArrayState {
			st.RowMap = append([]int(nil), st.RowMap...)
			st.RowMap[0] = st.RowMap[1]
			return st
		},
		"spare outside bank": func(st ArrayState) ArrayState {
			st.SpareFree = []int{0}
			return st
		},
		"spared count": func(st ArrayState) ArrayState { st.Spared = -1; return st },
		"stuck/eff disagree": func(st ArrayState) ArrayState {
			st.Stuck = append([]StuckCellState(nil), st.Stuck...)
			st.Stuck[0].Level ^= 1
			return st
		},
		"stuck duplicate": func(st ArrayState) ArrayState {
			st.Stuck = append(st.Stuck, st.Stuck[0])
			return st
		},
	}
	for name, mutate := range mutants {
		b := NewArrayWithSpares(8, 16, 2, 2)
		if err := b.Restore(mutate(good)); err == nil {
			t.Errorf("%s: malformed snapshot restored silently", name)
			continue
		}
		// Refusal must be side-effect free: the pristine array still
		// restores the good snapshot and matches the original.
		if err := b.Restore(good); err != nil {
			t.Errorf("%s: refusal left array unusable: %v", name, err)
		}
	}
}

func cloneLevels(in [][]uint8) [][]uint8 {
	out := make([][]uint8, len(in))
	for i := range in {
		out[i] = append([]uint8(nil), in[i]...)
	}
	return out
}
