package nn

import "fmt"

// BatchMVMFunc evaluates one mapped layer's MVM for several lockstep
// forward passes at once. layer is the paused layer's index, idx the lane
// indices paused there (ascending), and xs their per-lane input vectors
// (aligned with idx). It returns the per-lane outputs aligned with idx; a
// nil outs[j] fails lane idx[j] without disturbing its batchmates, with
// errs[j] (when errs is non-nil) as the reason. Output slices only need to
// stay valid until the lane's layer copies them (Dense/Conv2D copy the MVM
// result into their own buffers immediately), so per-lane scratch may be
// reused across calls.
type BatchMVMFunc func(layer int, idx []int, xs [][]float64) (outs [][]float64, errs []error)

// fbAbort is the panic sentinel that unwinds a lane out of a forward pass
// the coordinator has failed (batched-MVM error for that lane).
type fbAbort struct{}

// fbLane is one parked forward-pass goroutine plus its coordinator-visible
// mailbox. All mailbox fields are handed off through the start/ready/resume
// channels, which provide the happens-before edges: the lane writes x/layer
// before sending ready, the coordinator writes res/abortErr before sending
// resume.
type fbLane struct {
	net  *Network
	mvms []MVMFunc

	in       *Tensor
	out      *Tensor
	err      error
	x        []float64 // input of the MVM the lane is paused at
	res      []float64 // coordinator-provided MVM result
	layer    int
	waiting  bool // paused at an MVM (vs finished the pass)
	abort    bool
	abortErr error
	done     bool // coordinator-side: no more ready events this run

	start  chan struct{}
	ready  chan struct{}
	resume chan struct{}
}

// ForwardBatcher drives B forward passes in lockstep over per-lane clones
// of one network: every lane runs its digital layers on its own goroutine
// (private clone, private buffers, no RNG), and parks at each externally
// mapped layer so the coordinator can evaluate all paused lanes' MVMs in a
// single batched pass. Every stochastic draw therefore happens on the
// caller's goroutine, in lane order within each paused group — the outputs
// are independent of goroutine scheduling.
//
// A ForwardBatcher owns parked goroutines: call Close when done with it.
// It is not safe for concurrent use.
type ForwardBatcher struct {
	clone  func() *Network
	layers []int
	lanes  []*fbLane
	closed bool

	// reusable per-Run gather state (coordinator-private snapshots: lane
	// fields must not be read after that lane's resume is sent)
	outs []*Tensor
	errs []error
	pidx []int       // lane index of each lane paused this round
	play []int       // its paused layer (-2 once served)
	pxs  [][]float64 // its MVM input
	idx  []int       // current group: lane indices
	gj   []int       // current group: positions in pidx
	xs   [][]float64 // current group: MVM inputs
}

// NewForwardBatcher builds a batcher that clones lane networks with clone
// (typically Network.CloneForInference + EnableBufferReuse) and pauses at
// the given mapped layer indices. Lanes are spawned lazily as batch sizes
// grow and reused across runs.
func NewForwardBatcher(clone func() *Network, layers []int) *ForwardBatcher {
	return &ForwardBatcher{clone: clone, layers: append([]int(nil), layers...)}
}

// grow ensures at least n lanes exist.
func (fb *ForwardBatcher) grow(n int) {
	for len(fb.lanes) < n {
		l := &fbLane{
			net:    fb.clone(),
			start:  make(chan struct{}, 1),
			ready:  make(chan struct{}, 1),
			resume: make(chan struct{}, 1),
		}
		maxLayer := -1
		for _, li := range fb.layers {
			if li > maxLayer {
				maxLayer = li
			}
		}
		l.mvms = make([]MVMFunc, maxLayer+1)
		for _, li := range fb.layers {
			layer := li
			l.mvms[layer] = func(x []float64) []float64 {
				l.layer = layer
				l.x = x
				l.waiting = true
				l.ready <- struct{}{}
				<-l.resume
				if l.abort {
					panic(fbAbort{})
				}
				return l.res
			}
		}
		go l.run()
		fb.lanes = append(fb.lanes, l)
	}
}

// run is the lane goroutine: one forward pass per start token, until the
// start channel is closed.
func (l *fbLane) run() {
	for range l.start {
		l.out, l.err = l.forward()
		l.waiting = false
		l.ready <- struct{}{}
	}
}

// forward runs one pass, converting panics — the coordinator's abort
// sentinel, or a genuine failure in the lane's own layers (e.g. an input
// shape mismatch) — into per-lane errors so batchmates are untouched.
func (l *fbLane) forward() (out *Tensor, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(fbAbort); ok {
				err = l.abortErr
			} else {
				err = fmt.Errorf("nn: batched forward lane panic: %v", r)
			}
			out = nil
		}
	}()
	return l.net.ForwardWith(l.in, l.mvms), nil
}

// Run executes one lockstep batch. It returns per-image outputs and errors,
// aligned with xs; outs[i] is nil exactly when errs[i] is non-nil. A failed
// image (bad shape, failed batched MVM) never fails its batchmates. Both
// returned slices and the output tensors are reused by the next Run.
func (fb *ForwardBatcher) Run(xs []*Tensor, mvm BatchMVMFunc) ([]*Tensor, []error) {
	if fb.closed {
		panic("nn: ForwardBatcher used after Close")
	}
	fb.grow(len(xs))
	lanes := fb.lanes[:len(xs)]
	for i, l := range lanes {
		l.in = xs[i]
		l.out, l.err = nil, nil
		l.abort, l.abortErr = false, nil
		l.done = false
		l.start <- struct{}{}
	}
	live := len(lanes)
	for live > 0 {
		// One ready event per live lane: each is now either finished or
		// paused at a mapped layer. Snapshot the paused lanes' state here —
		// once a lane is resumed it may race ahead and re-pause, so its
		// fields must not be read again until its next ready is consumed.
		fb.pidx, fb.play, fb.pxs = fb.pidx[:0], fb.play[:0], fb.pxs[:0]
		for i, l := range lanes {
			if l.done {
				continue
			}
			<-l.ready
			if !l.waiting {
				l.done = true
				live--
				continue
			}
			fb.pidx = append(fb.pidx, i)
			fb.play = append(fb.play, l.layer)
			fb.pxs = append(fb.pxs, l.x)
		}
		// Evaluate paused lanes layer by layer, in lane order — lanes share
		// one topology so normally all sit at the same layer, but a lane
		// with a divergent shape must not derail the group.
		for served := 0; served < len(fb.pidx); {
			layer := -1
			fb.idx, fb.gj, fb.xs = fb.idx[:0], fb.gj[:0], fb.xs[:0]
			for j, ly := range fb.play {
				if ly == -2 {
					continue
				}
				if layer == -1 {
					layer = ly
				}
				if ly == layer {
					fb.idx = append(fb.idx, fb.pidx[j])
					fb.gj = append(fb.gj, j)
					fb.xs = append(fb.xs, fb.pxs[j])
				}
			}
			outs, errs := fb.callMVM(layer, fb.idx, fb.xs, mvm)
			for j, i := range fb.idx {
				l := lanes[i]
				fb.play[fb.gj[j]] = -2
				served++
				switch {
				case errs != nil && errs[j] != nil:
					l.abort, l.abortErr = true, errs[j]
				case outs == nil || outs[j] == nil:
					l.abort, l.abortErr = true, fmt.Errorf("nn: batched mvm failed at layer %d", layer)
				default:
					l.res = outs[j]
				}
				l.resume <- struct{}{}
			}
		}
	}
	fb.outs = fb.outs[:0]
	fb.errs = fb.errs[:0]
	for _, l := range lanes {
		fb.outs = append(fb.outs, l.out)
		fb.errs = append(fb.errs, l.err)
	}
	return fb.outs, fb.errs
}

// callMVM invokes the batched MVM callback, converting a panic into
// per-lane failures for just this group.
func (fb *ForwardBatcher) callMVM(layer int, idx []int, xs [][]float64, mvm BatchMVMFunc) (outs [][]float64, errs []error) {
	defer func() {
		if r := recover(); r != nil {
			outs = nil
			fb.errs = fb.errs[:0]
			for range idx {
				fb.errs = append(fb.errs, fmt.Errorf("nn: batched mvm panic at layer %d: %v", layer, r))
			}
			errs = fb.errs
		}
	}()
	return mvm(layer, idx, xs)
}

// Lanes reports how many lanes have been spawned (test hook).
func (fb *ForwardBatcher) Lanes() int { return len(fb.lanes) }

// Close releases the parked lane goroutines. The batcher must not be used
// afterwards.
func (fb *ForwardBatcher) Close() {
	if fb.closed {
		return
	}
	fb.closed = true
	for _, l := range fb.lanes {
		close(l.start)
	}
	fb.lanes = nil
}
