package nn

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// MVMFunc computes y = W*x on an external engine (the crossbar simulator).
// x is the layer's flattened input (or one convolution patch); the result
// has one entry per output row of the layer's weight matrix.
type MVMFunc func(x []float64) []float64

// Layer is one differentiable stage of a network.
type Layer interface {
	// Forward computes the layer output and caches what Backward needs.
	Forward(x *Tensor) *Tensor
	// Backward consumes dL/dout, accumulates parameter gradients, and
	// returns dL/din.
	Backward(grad *Tensor) *Tensor
	// Params returns the trainable parameters (nil for stateless layers).
	Params() []*Param
	// OutShape maps an input shape to the layer's output shape.
	OutShape(in []int) []int
	// Name identifies the layer type in logs and DESIGN bookkeeping.
	Name() string
}

// InferenceLayer is implemented by layers whose arithmetic the accelerator
// can take over: ForwardWith runs the forward pass using the supplied MVM
// in place of the internal matrix product.
type InferenceLayer interface {
	Layer
	ForwardWith(x *Tensor, mvm MVMFunc) *Tensor
}

// Param is one trainable weight array with its gradient and momentum state.
type Param struct {
	W, Grad, Vel []float64
}

func newParam(n int) *Param {
	return &Param{W: make([]float64, n), Grad: make([]float64, n), Vel: make([]float64, n)}
}

// Dense is a fully connected layer: y = W*x + b, W is Out x In row-major.
type Dense struct {
	In, Out int
	Weight  *Param
	Bias    *Param
	lastIn  *Tensor
	reuse   bool
	outBuf  *Tensor
}

func (d *Dense) enableReuse() { d.reuse = true }

// NewDense builds a dense layer with He-uniform initialization.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, Weight: newParam(in * out), Bias: newParam(out)}
	bound := math.Sqrt(6.0 / float64(in))
	for i := range d.Weight.W {
		d.Weight.W[i] = (2*rng.Float64() - 1) * bound
	}
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%dx%d)", d.Out, d.In) }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) []int { return []int{d.Out} }

// WeightAt returns W[r][c]; the accelerator mapper reads weights through
// this to stay layout-agnostic.
func (d *Dense) WeightAt(r, c int) float64 { return d.Weight.W[r*d.In+c] }

// Forward implements Layer.
func (d *Dense) Forward(x *Tensor) *Tensor {
	return d.ForwardWith(x, nil)
}

// ForwardWith implements InferenceLayer.
func (d *Dense) ForwardWith(x *Tensor, mvm MVMFunc) *Tensor {
	if x.Len() != d.In {
		panic(fmt.Sprintf("nn: dense input %d, want %d", x.Len(), d.In))
	}
	d.lastIn = x
	out := outVec(&d.outBuf, d.reuse, d.Out)
	if mvm != nil {
		copy(out.Data, mvm(x.Data))
	} else {
		for r := 0; r < d.Out; r++ {
			row := d.Weight.W[r*d.In : (r+1)*d.In]
			s := 0.0
			for c, xv := range x.Data {
				s += row[c] * xv
			}
			out.Data[r] = s
		}
	}
	for r := 0; r < d.Out; r++ {
		out.Data[r] += d.Bias.W[r]
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *Tensor) *Tensor {
	x := d.lastIn
	din := NewTensor(d.In)
	for r := 0; r < d.Out; r++ {
		g := grad.Data[r]
		d.Bias.Grad[r] += g
		row := d.Weight.W[r*d.In : (r+1)*d.In]
		grow := d.Weight.Grad[r*d.In : (r+1)*d.In]
		for c := 0; c < d.In; c++ {
			grow[c] += g * x.Data[c]
			din.Data[c] += g * row[c]
		}
	}
	return din
}

// Conv2D is a 2-D convolution over CHW tensors with square stride and
// symmetric zero padding. Weights are stored as an OutC x (InC*KH*KW)
// matrix, which is exactly the MVM the crossbar performs per output
// position.
type Conv2D struct {
	InC, OutC, KH, KW int
	Stride, Pad       int
	Weight            *Param
	Bias              *Param
	lastIn            *Tensor
	reuse             bool
	outBuf            *Tensor
	patchBuf          []float64
}

func (c *Conv2D) enableReuse() { c.reuse = true }

// NewConv2D builds a convolution layer with He-uniform initialization.
func NewConv2D(inC, outC, kh, kw, stride, pad int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		Weight: newParam(outC * inC * kh * kw), Bias: newParam(outC)}
	fanIn := float64(inC * kh * kw)
	bound := math.Sqrt(6.0 / fanIn)
	for i := range c.Weight.W {
		c.Weight.W[i] = (2*rng.Float64() - 1) * bound
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv(%d->%d,%dx%d,s%d,p%d)", c.InC, c.OutC, c.KH, c.KW, c.Stride, c.Pad)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// PatchLen is the flattened patch size, the column count of the layer's
// weight matrix.
func (c *Conv2D) PatchLen() int { return c.InC * c.KH * c.KW }

// WeightAt returns row oc, column k of the weight matrix.
func (c *Conv2D) WeightAt(oc, k int) float64 { return c.Weight.W[oc*c.PatchLen()+k] }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.InC {
		panic(fmt.Sprintf("nn: conv input shape %v, want [%d H W]", in, c.InC))
	}
	oh := (in[1]+2*c.Pad-c.KH)/c.Stride + 1
	ow := (in[2]+2*c.Pad-c.KW)/c.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: conv output collapsed for input %v", in))
	}
	return []int{c.OutC, oh, ow}
}

// Patch extracts the flattened input patch feeding output position
// (oy, ox) into buf (length PatchLen), zero-filling the padding.
func (c *Conv2D) Patch(x *Tensor, oy, ox int, buf []float64) {
	_, h, w := x.chw()
	i := 0
	for ic := 0; ic < c.InC; ic++ {
		for ky := 0; ky < c.KH; ky++ {
			iy := oy*c.Stride + ky - c.Pad
			for kx := 0; kx < c.KW; kx++ {
				ix := ox*c.Stride + kx - c.Pad
				if iy < 0 || iy >= h || ix < 0 || ix >= w {
					buf[i] = 0
				} else {
					buf[i] = x.At(ic, iy, ix)
				}
				i++
			}
		}
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *Tensor) *Tensor {
	return c.ForwardWith(x, nil)
}

// ForwardWith implements InferenceLayer: when mvm is non-nil every patch
// product K*patch runs on the external engine.
func (c *Conv2D) ForwardWith(x *Tensor, mvm MVMFunc) *Tensor {
	c.lastIn = x
	os := c.OutShape(x.Shape)
	out := outTensor(&c.outBuf, c.reuse, os)
	oh, ow := os[1], os[2]
	pl := c.PatchLen()
	var patch []float64
	if c.reuse {
		if cap(c.patchBuf) < pl {
			c.patchBuf = make([]float64, pl)
		}
		patch = c.patchBuf[:pl]
	} else {
		patch = make([]float64, pl)
	}
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			c.Patch(x, oy, ox, patch)
			if mvm != nil {
				ys := mvm(patch)
				for oc := 0; oc < c.OutC; oc++ {
					out.SetAt(oc, oy, ox, ys[oc]+c.Bias.W[oc])
				}
			} else {
				for oc := 0; oc < c.OutC; oc++ {
					row := c.Weight.W[oc*len(patch) : (oc+1)*len(patch)]
					s := c.Bias.W[oc]
					for k, pv := range patch {
						s += row[k] * pv
					}
					out.SetAt(oc, oy, ox, s)
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *Tensor) *Tensor {
	x := c.lastIn
	_, h, w := x.chw()
	din := NewTensor(x.Shape...)
	oh, ow := grad.Shape[1], grad.Shape[2]
	pl := c.PatchLen()
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for oc := 0; oc < c.OutC; oc++ {
				g := grad.At(oc, oy, ox)
				if g == 0 {
					continue
				}
				c.Bias.Grad[oc] += g
				row := c.Weight.W[oc*pl : (oc+1)*pl]
				grow := c.Weight.Grad[oc*pl : (oc+1)*pl]
				i := 0
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.KH; ky++ {
						iy := oy*c.Stride + ky - c.Pad
						for kx := 0; kx < c.KW; kx++ {
							ix := ox*c.Stride + kx - c.Pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								grow[i] += g * x.At(ic, iy, ix)
								din.Data[(ic*h+iy)*w+ix] += g * row[i]
							}
							i++
						}
					}
				}
			}
		}
	}
	return din
}

// ReLU is the rectified-linear activation.
type ReLU struct {
	lastOut *Tensor
	reuse   bool
	outBuf  *Tensor
}

func (r *ReLU) enableReuse() { r.reuse = true }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (r *ReLU) Forward(x *Tensor) *Tensor {
	out := outTensor(&r.outBuf, r.reuse, x.Shape)
	for i, v := range x.Data {
		if v < 0 {
			out.Data[i] = 0
		} else {
			out.Data[i] = v
		}
	}
	r.lastOut = out
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *Tensor) *Tensor {
	din := grad.Clone()
	for i, v := range r.lastOut.Data {
		if v <= 0 {
			din.Data[i] = 0
		}
	}
	return din
}

// MaxPool2D is non-overlapping max pooling over CHW tensors.
type MaxPool2D struct {
	Size    int
	lastIn  *Tensor
	lastIdx []int
	reuse   bool
	outBuf  *Tensor
}

func (m *MaxPool2D) enableReuse() { m.reuse = true }

// Name implements Layer.
func (m *MaxPool2D) Name() string { return fmt.Sprintf("maxpool(%d)", m.Size) }

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (m *MaxPool2D) OutShape(in []int) []int {
	return []int{in[0], in[1] / m.Size, in[2] / m.Size}
}

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *Tensor) *Tensor {
	m.lastIn = x
	os := m.OutShape(x.Shape)
	out := outTensor(&m.outBuf, m.reuse, os)
	if m.reuse && cap(m.lastIdx) >= out.Len() {
		m.lastIdx = m.lastIdx[:out.Len()]
	} else {
		m.lastIdx = make([]int, out.Len())
	}
	_, h, w := x.chw()
	i := 0
	for c := 0; c < os[0]; c++ {
		for oy := 0; oy < os[1]; oy++ {
			for ox := 0; ox < os[2]; ox++ {
				bestIdx := -1
				best := math.Inf(-1)
				for ky := 0; ky < m.Size; ky++ {
					for kx := 0; kx < m.Size; kx++ {
						iy, ix := oy*m.Size+ky, ox*m.Size+kx
						idx := (c*h+iy)*w + ix
						if v := x.Data[idx]; v > best {
							best, bestIdx = v, idx
						}
					}
				}
				out.Data[i] = best
				m.lastIdx[i] = bestIdx
				i++
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *Tensor) *Tensor {
	din := NewTensor(m.lastIn.Shape...)
	for i, g := range grad.Data {
		din.Data[m.lastIdx[i]] += g
	}
	return din
}

// Flatten reshapes CHW activations to a vector.
type Flatten struct {
	lastShape []int
	reuse     bool
	view      *Tensor
}

func (f *Flatten) enableReuse() { f.reuse = true }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}

// Forward implements Layer.
func (f *Flatten) Forward(x *Tensor) *Tensor {
	f.lastShape = x.Shape
	if f.reuse {
		// The flattened result is a view over x's data; cache the header and
		// repoint it instead of allocating a fresh one per pass.
		if f.view == nil || f.view.Shape[0] != x.Len() {
			f.view = x.Reshape(x.Len())
		} else {
			f.view.Data = x.Data
		}
		return f.view
	}
	return x.Reshape(x.Len())
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *Tensor) *Tensor {
	return grad.Reshape(f.lastShape...)
}
