package nn

import "math/rand/v2"

// The four evaluated networks of paper Table II. MLP1, MLP2 and CNN1 target
// the 28x28 grayscale digit task; MiniAlexNet keeps AlexNet's 8-layer
// 5-conv + 3-FC shape at a scale trainable in-repo and targets the 32x32
// RGB object task (see DESIGN.md section 1 for the substitution rationale).

// NewMLP1 is the paper's MLP1: a 3-layer perceptron with 500 and 150
// hidden units (LeCun et al.).
func NewMLP1(seed uint64) *Network {
	rng := rand.New(rand.NewPCG(seed, 1))
	return &Network{
		Name:    "MLP1",
		InShape: []int{1, 28, 28},
		Layers: []Layer{
			&Flatten{},
			NewDense(784, 500, rng), &ReLU{},
			NewDense(500, 150, rng), &ReLU{},
			NewDense(150, 10, rng),
		},
	}
}

// NewMLP2 is the paper's MLP2: a 2-layer perceptron with 800 hidden units
// (Simard et al.).
func NewMLP2(seed uint64) *Network {
	rng := rand.New(rand.NewPCG(seed, 2))
	return &Network{
		Name:    "MLP2",
		InShape: []int{1, 28, 28},
		Layers: []Layer{
			&Flatten{},
			NewDense(784, 800, rng), &ReLU{},
			NewDense(800, 10, rng),
		},
	}
}

// NewCNN1 is the paper's CNN1, the LeNet-5 shape: 6 then 16 5x5 feature
// maps with pooling, then 120- and 84-unit fully connected layers.
func NewCNN1(seed uint64) *Network {
	rng := rand.New(rand.NewPCG(seed, 3))
	return &Network{
		Name:    "CNN1",
		InShape: []int{1, 28, 28},
		Layers: []Layer{
			NewConv2D(1, 6, 5, 5, 1, 2, rng), &ReLU{}, // 6 x 28 x 28
			&MaxPool2D{Size: 2},                        // 6 x 14 x 14
			NewConv2D(6, 16, 5, 5, 1, 0, rng), &ReLU{}, // 16 x 10 x 10
			&MaxPool2D{Size: 2}, // 16 x 5 x 5
			&Flatten{},
			NewDense(400, 120, rng), &ReLU{},
			NewDense(120, 84, rng), &ReLU{},
			NewDense(84, 10, rng),
		},
	}
}

// NewMiniAlexNet is the AlexNet stand-in: 8 weight layers (5 convolutional,
// 3 fully connected) over 32x32 RGB inputs with numClasses outputs.
func NewMiniAlexNet(seed uint64, numClasses int) *Network {
	rng := rand.New(rand.NewPCG(seed, 4))
	return &Network{
		Name:    "MiniAlexNet",
		InShape: []int{3, 32, 32},
		Layers: []Layer{
			NewConv2D(3, 16, 3, 3, 1, 1, rng), &ReLU{}, // 16 x 32 x 32
			&MaxPool2D{Size: 2},                         // 16 x 16 x 16
			NewConv2D(16, 32, 3, 3, 1, 1, rng), &ReLU{}, // 32 x 16 x 16
			&MaxPool2D{Size: 2},                         // 32 x 8 x 8
			NewConv2D(32, 48, 3, 3, 1, 1, rng), &ReLU{}, // 48 x 8 x 8
			NewConv2D(48, 48, 3, 3, 1, 1, rng), &ReLU{}, // 48 x 8 x 8
			NewConv2D(48, 32, 3, 3, 1, 1, rng), &ReLU{}, // 32 x 8 x 8
			&MaxPool2D{Size: 2}, // 32 x 4 x 4
			&Flatten{},
			NewDense(512, 256, rng), &ReLU{},
			NewDense(256, 128, rng), &ReLU{},
			NewDense(128, numClasses, rng),
		},
	}
}
