package nn

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3)
	if x.Len() != 6 {
		t.Fatalf("Len = %d", x.Len())
	}
	y := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	z := y.Clone()
	z.Data[0] = 99
	if y.Data[0] != 1 {
		t.Fatal("Clone must deep copy")
	}
	r := y.Reshape(6)
	if len(r.Shape) != 1 || r.Shape[0] != 6 {
		t.Fatal("Reshape failed")
	}
	r.Data[0] = 42
	if y.Data[0] != 42 {
		t.Fatal("Reshape must share data")
	}
}

func TestTensorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTensor(0) },
		func() { FromSlice([]float64{1}, 3) },
		func() { NewTensor(4).Reshape(5) },
		func() { NewTensor(4).At(0, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTensorCHWIndexing(t *testing.T) {
	x := NewTensor(2, 3, 4)
	x.SetAt(1, 2, 3, 7)
	if x.At(1, 2, 3) != 7 {
		t.Fatal("CHW round trip failed")
	}
	if x.Data[1*12+2*4+3] != 7 {
		t.Fatal("CHW layout wrong")
	}
}

func TestArgMaxTopK(t *testing.T) {
	x := FromSlice([]float64{0.1, 0.9, 0.3, 0.7}, 4)
	if x.ArgMax() != 1 {
		t.Fatalf("ArgMax = %d", x.ArgMax())
	}
	top := x.TopK(3)
	if top[0] != 1 || top[1] != 3 || top[2] != 2 {
		t.Fatalf("TopK = %v", top)
	}
	if got := x.TopK(10); len(got) != 4 {
		t.Fatalf("TopK clamps to length, got %d", len(got))
	}
}

func TestDenseForwardKnown(t *testing.T) {
	d := NewDense(2, 2, rand.New(rand.NewPCG(1, 1)))
	copy(d.Weight.W, []float64{1, 2, 3, 4})
	copy(d.Bias.W, []float64{10, 20})
	y := d.Forward(FromSlice([]float64{1, 1}, 2))
	if y.Data[0] != 13 || y.Data[1] != 27 {
		t.Fatalf("y = %v", y.Data)
	}
	if d.WeightAt(1, 0) != 3 {
		t.Fatalf("WeightAt = %g", d.WeightAt(1, 0))
	}
}

func TestDenseForwardWithExternalMVM(t *testing.T) {
	d := NewDense(3, 2, rand.New(rand.NewPCG(1, 1)))
	copy(d.Bias.W, []float64{1, 2})
	called := false
	y := d.ForwardWith(FromSlice([]float64{1, 2, 3}, 3), func(x []float64) []float64 {
		called = true
		return []float64{100, 200}
	})
	if !called || y.Data[0] != 101 || y.Data[1] != 202 {
		t.Fatalf("external MVM not honored: %v", y.Data)
	}
}

// numericGradCheck verifies analytic gradients against central differences.
func numericGradCheck(t *testing.T, layers []Layer, inShape []int, seed uint64) {
	t.Helper()
	net := &Network{Name: "gradcheck", InShape: inShape, Layers: layers}
	rng := rand.New(rand.NewPCG(seed, 77))
	x := NewTensor(inShape...)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	label := 0
	lossAt := func() float64 {
		l, _ := SoftmaxCrossEntropy(net.Forward(x), label)
		return l
	}
	// Analytic gradients.
	for _, p := range net.Params() {
		clear(p.Grad)
	}
	logits := net.Forward(x)
	_, g := SoftmaxCrossEntropy(logits, label)
	net.Backward(g)
	const eps = 1e-5
	for pi, p := range net.Params() {
		for _, i := range []int{0, len(p.W) / 2, len(p.W) - 1} {
			orig := p.W[i]
			p.W[i] = orig + eps
			up := lossAt()
			p.W[i] = orig - eps
			down := lossAt()
			p.W[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-p.Grad[i]) > 1e-4*(1+math.Abs(numeric)) {
				t.Errorf("param %d idx %d: analytic %g vs numeric %g", pi, i, p.Grad[i], numeric)
			}
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	numericGradCheck(t, []Layer{NewDense(6, 5, rng), &ReLU{}, NewDense(5, 3, rng)}, []int{6}, 1)
}

func TestConvGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	numericGradCheck(t, []Layer{
		NewConv2D(2, 3, 3, 3, 1, 1, rng), &ReLU{},
		&MaxPool2D{Size: 2}, &Flatten{},
		NewDense(3*3*3, 4, rng),
	}, []int{2, 6, 6}, 2)
}

func TestConvStrideAndPadGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	numericGradCheck(t, []Layer{
		NewConv2D(1, 2, 3, 3, 2, 0, rng), &Flatten{},
		NewDense(2*2*2, 3, rng),
	}, []int{1, 5, 5}, 3)
}

func TestConvOutShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	c := NewConv2D(3, 8, 5, 5, 1, 2, rng)
	got := c.OutShape([]int{3, 28, 28})
	if got[0] != 8 || got[1] != 28 || got[2] != 28 {
		t.Fatalf("OutShape = %v", got)
	}
	c2 := NewConv2D(1, 4, 3, 3, 2, 0, rng)
	got = c2.OutShape([]int{1, 7, 7})
	if got[1] != 3 || got[2] != 3 {
		t.Fatalf("strided OutShape = %v", got)
	}
}

func TestConvForwardWithMatchesInternal(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	c := NewConv2D(2, 4, 3, 3, 1, 1, rng)
	x := NewTensor(2, 6, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	want := c.Forward(x)
	// External MVM that computes the same product.
	got := c.ForwardWith(x, func(patch []float64) []float64 {
		out := make([]float64, c.OutC)
		for oc := 0; oc < c.OutC; oc++ {
			s := 0.0
			for k, pv := range patch {
				s += c.WeightAt(oc, k) * pv
			}
			out[oc] = s
		}
		return out
	})
	for i := range want.Data {
		if math.Abs(want.Data[i]-got.Data[i]) > 1e-12 {
			t.Fatalf("mismatch at %d: %g vs %g", i, want.Data[i], got.Data[i])
		}
	}
}

func TestMaxPoolForward(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 3,
		1, 1, 4, 1,
	}, 1, 4, 4)
	m := &MaxPool2D{Size: 2}
	y := m.Forward(x)
	want := []float64{4, 8, 9, 4}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("pool = %v", y.Data)
		}
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	y := r.Forward(FromSlice([]float64{-1, 0, 2}, 3))
	if y.Data[0] != 0 || y.Data[2] != 2 {
		t.Fatalf("relu = %v", y.Data)
	}
	g := r.Backward(FromSlice([]float64{5, 5, 5}, 3))
	if g.Data[0] != 0 || g.Data[2] != 5 {
		t.Fatalf("relu grad = %v", g.Data)
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := FromSlice([]float64{1, 1, 1}, 3)
	loss, grad := SoftmaxCrossEntropy(logits, 1)
	if math.Abs(loss-math.Log(3)) > 1e-12 {
		t.Fatalf("uniform loss = %g", loss)
	}
	if math.Abs(grad.Data[1]-(1.0/3-1)) > 1e-12 || math.Abs(grad.Data[0]-1.0/3) > 1e-12 {
		t.Fatalf("grad = %v", grad.Data)
	}
	// Gradients sum to zero.
	s := grad.Data[0] + grad.Data[1] + grad.Data[2]
	if math.Abs(s) > 1e-12 {
		t.Fatalf("grad sum = %g", s)
	}
}

func TestSoftmaxStability(t *testing.T) {
	logits := FromSlice([]float64{1000, 1001, 999}, 3)
	loss, _ := SoftmaxCrossEntropy(logits, 1)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("unstable loss %g", loss)
	}
	p := Softmax(logits)
	sum := 0.0
	for _, v := range p.Data {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum to %g", sum)
	}
}

func TestModelShapes(t *testing.T) {
	cases := []struct {
		net    *Network
		in     []int
		out    int
		minPar int
	}{
		{NewMLP1(1), []int{1, 28, 28}, 10, 400_000},
		{NewMLP2(1), []int{1, 28, 28}, 10, 600_000},
		{NewCNN1(1), []int{1, 28, 28}, 10, 40_000},
		{NewMiniAlexNet(1, 40), []int{3, 32, 32}, 40, 150_000},
	}
	for _, c := range cases {
		x := NewTensor(c.in...)
		y := c.net.Forward(x)
		if y.Len() != c.out {
			t.Errorf("%s: output %d, want %d", c.net.Name, y.Len(), c.out)
		}
		if p := c.net.NumParams(); p < c.minPar {
			t.Errorf("%s: %d params, expected at least %d", c.net.Name, p, c.minPar)
		}
	}
}

func TestMiniAlexNetIsEightWeightLayers(t *testing.T) {
	net := NewMiniAlexNet(1, 40)
	convs, denses := 0, 0
	for _, l := range net.Layers {
		switch l.(type) {
		case *Conv2D:
			convs++
		case *Dense:
			denses++
		}
	}
	if convs != 5 || denses != 3 {
		t.Fatalf("MiniAlexNet has %d conv + %d fc, want 5 + 3 (AlexNet shape)", convs, denses)
	}
}

// TestTrainLearnsToy verifies SGD actually learns a separable problem.
func TestTrainLearnsToy(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	net := &Network{
		Name:    "toy",
		InShape: []int{2},
		Layers:  []Layer{NewDense(2, 16, rng), &ReLU{}, NewDense(16, 2, rng)},
	}
	var train []Example
	for i := 0; i < 400; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		label := 0
		if x[0]*x[0]+x[1]*x[1] > 1.2 {
			label = 1
		}
		train = append(train, Example{Input: FromSlice(x, 2), Label: label})
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 30
	cfg.LR = 0.1
	Train(net, train, cfg)
	if miss := Evaluate(net, train); miss > 0.12 {
		t.Fatalf("toy problem misclassification %.3f after training", miss)
	}
}

func TestTrainDeterministic(t *testing.T) {
	build := func() (*Network, []Example) {
		rng := rand.New(rand.NewPCG(7, 7))
		net := &Network{Name: "det", InShape: []int{4},
			Layers: []Layer{NewDense(4, 8, rng), &ReLU{}, NewDense(8, 3, rng)}}
		var exs []Example
		for i := 0; i < 60; i++ {
			x := make([]float64, 4)
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			exs = append(exs, Example{Input: FromSlice(x, 4), Label: i % 3})
		}
		return net, exs
	}
	n1, e1 := build()
	n2, e2 := build()
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	l1 := Train(n1, e1, cfg)
	l2 := Train(n2, e2, cfg)
	if l1 != l2 {
		t.Fatalf("training not deterministic: %g vs %g", l1, l2)
	}
}

func TestEvaluateTopK(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	net := &Network{Name: "e", InShape: []int{3},
		Layers: []Layer{NewDense(3, 5, rng)}}
	exs := []Example{{Input: FromSlice([]float64{1, 0, 0}, 3), Label: 2}}
	top1 := EvaluateTopK(net, exs, 1)
	top5 := EvaluateTopK(net, exs, 5)
	if top5 != 0 {
		t.Fatalf("top-5 over 5 classes must always hit, got %g", top5)
	}
	if top1 != 0 && top1 != 1 {
		t.Fatalf("top-1 = %g", top1)
	}
	if Evaluate(net, nil) != 0 || EvaluateTopK(net, nil, 3) != 0 {
		t.Fatal("empty sets must return 0")
	}
}

func TestSaveLoadWeights(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/w.gob"
	a := NewMLP2(3)
	if err := a.SaveWeights(path); err != nil {
		t.Fatal(err)
	}
	b := NewMLP2(99) // different init
	if err := b.LoadWeights(path); err != nil {
		t.Fatal(err)
	}
	x := NewTensor(1, 28, 28)
	x.Data[100] = 1
	ya, yb := a.Forward(x), b.Forward(x)
	for i := range ya.Data {
		if ya.Data[i] != yb.Data[i] {
			t.Fatal("loaded network disagrees with saved one")
		}
	}
	// Structural mismatch must error.
	c := NewMLP1(1)
	if err := c.LoadWeights(path); err == nil {
		t.Fatal("loading MLP2 weights into MLP1 must fail")
	}
	if err := c.LoadWeights(dir + "/missing.gob"); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestForwardWithPanicsOnNonMVMLayer(t *testing.T) {
	net := NewMLP2(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.ForwardWith(NewTensor(1, 28, 28), []MVMFunc{0: func(x []float64) []float64 { return nil }})
}

func TestSigmoidForwardBackward(t *testing.T) {
	s := &Sigmoid{}
	y := s.Forward(FromSlice([]float64{0, 100, -100}, 3))
	if math.Abs(y.Data[0]-0.5) > 1e-12 || y.Data[1] < 0.999 || y.Data[2] > 0.001 {
		t.Fatalf("sigmoid = %v", y.Data)
	}
	g := s.Backward(FromSlice([]float64{1, 1, 1}, 3))
	if math.Abs(g.Data[0]-0.25) > 1e-12 {
		t.Fatalf("sigmoid grad at 0 = %g, want 0.25", g.Data[0])
	}
}

func TestSigmoidGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 14))
	numericGradCheck(t, []Layer{NewDense(5, 4, rng), &Sigmoid{}, NewDense(4, 3, rng)}, []int{5}, 4)
}

func TestAvgPoolForward(t *testing.T) {
	x := FromSlice([]float64{
		1, 3, 5, 7,
		5, 7, 9, 11,
		2, 2, 4, 4,
		2, 2, 4, 4,
	}, 1, 4, 4)
	m := &AvgPool2D{Size: 2}
	y := m.Forward(x)
	want := []float64{4, 8, 2, 4}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("avgpool = %v", y.Data)
		}
	}
}

func TestAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 15))
	numericGradCheck(t, []Layer{
		NewConv2D(1, 2, 3, 3, 1, 1, rng), &AvgPool2D{Size: 2}, &Flatten{},
		NewDense(2*3*3, 3, rng),
	}, []int{1, 6, 6}, 5)
}

func TestCloneNewLayers(t *testing.T) {
	rng := rand.New(rand.NewPCG(16, 16))
	net := &Network{Name: "c", InShape: []int{1, 4, 4}, Layers: []Layer{
		NewConv2D(1, 2, 3, 3, 1, 1, rng), &Sigmoid{}, &AvgPool2D{Size: 2}, &Flatten{},
		NewDense(8, 2, rng),
	}}
	x := NewTensor(1, 4, 4)
	x.Data[5] = 1
	a, b := net.Forward(x), net.CloneForInference().Forward(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("clone with sigmoid/avgpool diverged")
		}
	}
}
