package nn

import (
	"math/rand/v2"
	"sync"
	"testing"
)

func TestCloneForInferenceSharesWeights(t *testing.T) {
	net := NewCNN1(1)
	clone := net.CloneForInference()
	if len(clone.Layers) != len(net.Layers) {
		t.Fatalf("layer count %d vs %d", len(clone.Layers), len(net.Layers))
	}
	// Parameters are shared by pointer: mutating the original must be
	// visible through the clone.
	orig := net.Layers[0].(*Conv2D)
	cl := clone.Layers[0].(*Conv2D)
	if orig.Weight != cl.Weight {
		t.Fatal("clone must share parameter storage")
	}
	x := NewTensor(1, 28, 28)
	x.Data[400] = 1
	a, b := net.Forward(x), clone.Forward(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("clone must compute identical outputs")
		}
	}
}

// TestCloneConcurrentForward runs many clones in parallel; under `go test
// -race` this validates that per-clone caches keep inference thread safe.
func TestCloneConcurrentForward(t *testing.T) {
	net := NewMLP2(2)
	want := net.Forward(testInput()).Data
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			clone := net.CloneForInference()
			rng := rand.New(rand.NewPCG(seed, 1))
			for i := 0; i < 20; i++ {
				// Interleave a different input to dirty the caches.
				noise := NewTensor(1, 28, 28)
				for j := range noise.Data {
					noise.Data[j] = rng.Float64()
				}
				clone.Forward(noise)
				got := clone.Forward(testInput())
				for j := range got.Data {
					if got.Data[j] != want[j] {
						errs <- "concurrent clone output diverged"
						return
					}
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func testInput() *Tensor {
	x := NewTensor(1, 28, 28)
	for i := 0; i < 784; i += 13 {
		x.Data[i] = 0.7
	}
	return x
}

func TestClonePanicsOnUnknownLayer(t *testing.T) {
	net := &Network{Name: "x", Layers: []Layer{fakeLayer{}}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown layer type")
		}
	}()
	net.CloneForInference()
}

type fakeLayer struct{}

func (fakeLayer) Forward(x *Tensor) *Tensor  { return x }
func (fakeLayer) Backward(g *Tensor) *Tensor { return g }
func (fakeLayer) Params() []*Param           { return nil }
func (fakeLayer) OutShape(in []int) []int    { return in }
func (fakeLayer) Name() string               { return "fake" }
