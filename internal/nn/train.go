package nn

import (
	"fmt"
	"io"
	"math/rand/v2"
)

// Example is one labelled training or test sample.
type Example struct {
	Input *Tensor
	Label int
}

// TrainConfig controls SGD training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	// LRDecay multiplies the learning rate after each epoch (1 = none).
	LRDecay float64
	// Seed shuffles minibatches deterministically.
	Seed uint64
	// Log, when non-nil, receives one progress line per epoch.
	Log io.Writer
}

// DefaultTrainConfig returns a conservative SGD setup.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 5, BatchSize: 32, LR: 0.05, Momentum: 0.9, LRDecay: 0.9, Seed: 1}
}

// Train fits the network to the examples with minibatch SGD + momentum and
// returns the final average training loss.
func Train(n *Network, examples []Example, cfg TrainConfig) float64 {
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 1
	}
	if cfg.LRDecay == 0 {
		cfg.LRDecay = 1
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5eed))
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	params := n.Params()
	lr := cfg.LR
	lastLoss := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(order))
			for _, p := range params {
				clear(p.Grad)
			}
			for _, idx := range order[start:end] {
				ex := examples[idx]
				logits := n.Forward(ex.Input)
				loss, grad := SoftmaxCrossEntropy(logits, ex.Label)
				epochLoss += loss
				n.Backward(grad)
			}
			scale := lr / float64(end-start)
			for _, p := range params {
				for i := range p.W {
					p.Vel[i] = cfg.Momentum*p.Vel[i] - scale*p.Grad[i]
					p.W[i] += p.Vel[i]
				}
			}
		}
		lastLoss = epochLoss / float64(len(order))
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "%s epoch %d/%d: loss %.4f (lr %.4g)\n", n.Name, epoch+1, cfg.Epochs, lastLoss, lr)
		}
		lr *= cfg.LRDecay
	}
	return lastLoss
}

// Evaluate returns the misclassification rate of the float network on a
// test set — the paper's "Software" column.
func Evaluate(n *Network, examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	wrong := 0
	for _, ex := range examples {
		if n.Predict(ex.Input) != ex.Label {
			wrong++
		}
	}
	return float64(wrong) / float64(len(examples))
}

// EvaluateTopK returns the top-k misclassification rate: the fraction of
// examples whose label is absent from the k highest logits.
func EvaluateTopK(n *Network, examples []Example, k int) float64 {
	if len(examples) == 0 {
		return 0
	}
	wrong := 0
	for _, ex := range examples {
		hit := false
		for _, c := range n.Forward(ex.Input).TopK(k) {
			if c == ex.Label {
				hit = true
				break
			}
		}
		if !hit {
			wrong++
		}
	}
	return float64(wrong) / float64(len(examples))
}
