package nn

import "fmt"

// CloneForInference returns a network whose layers share this network's
// parameters but carry their own forward-pass caches, so multiple goroutines
// can run inference concurrently against one set of weights.
func (n *Network) CloneForInference() *Network {
	out := &Network{Name: n.Name, InShape: append([]int(nil), n.InShape...)}
	for _, l := range n.Layers {
		switch v := l.(type) {
		case *Dense:
			out.Layers = append(out.Layers, &Dense{In: v.In, Out: v.Out, Weight: v.Weight, Bias: v.Bias})
		case *Conv2D:
			out.Layers = append(out.Layers, &Conv2D{InC: v.InC, OutC: v.OutC, KH: v.KH, KW: v.KW,
				Stride: v.Stride, Pad: v.Pad, Weight: v.Weight, Bias: v.Bias})
		case *ReLU:
			out.Layers = append(out.Layers, &ReLU{})
		case *MaxPool2D:
			out.Layers = append(out.Layers, &MaxPool2D{Size: v.Size})
		case *AvgPool2D:
			out.Layers = append(out.Layers, &AvgPool2D{Size: v.Size})
		case *Sigmoid:
			out.Layers = append(out.Layers, &Sigmoid{})
		case *Flatten:
			out.Layers = append(out.Layers, &Flatten{})
		default:
			panic(fmt.Sprintf("nn: cannot clone layer %s", l.Name()))
		}
	}
	return out
}
