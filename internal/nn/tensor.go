// Package nn is a compact neural-network substrate: tensors, the layer types
// the paper's workloads need (dense, convolution, max pooling, ReLU),
// softmax cross-entropy training with SGD+momentum, and constructors for the
// four evaluated networks of paper Table II (MLP1, MLP2, CNN1, and the
// AlexNet-shaped MiniAlexNet). It replaces the paper's TensorFlow training
// step; inference layers additionally accept an external matrix-vector
// multiply so the accelerator simulator can take over their arithmetic.
package nn

import "fmt"

// Tensor is a dense float64 tensor with row-major (outermost-first) layout.
// Convolutional activations use CHW order.
type Tensor struct {
	Shape []int
	Data  []float64
}

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("nn: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	t := NewTensor(shape...)
	if len(data) != len(t.Data) {
		panic(fmt.Sprintf("nn: %d values for shape %v", len(data), shape))
	}
	copy(t.Data, data)
	return t
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	return FromSlice(t.Data, t.Shape...)
}

// Reshape returns a view with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("nn: cannot reshape %v to %v", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at a 3-D CHW index (for conv activations).
func (t *Tensor) At(c, h, w int) float64 {
	_, hh, ww := t.chw()
	return t.Data[(c*hh+h)*ww+w]
}

// SetAt stores the element at a 3-D CHW index.
func (t *Tensor) SetAt(c, h, w int, v float64) {
	_, hh, ww := t.chw()
	t.Data[(c*hh+h)*ww+w] = v
}

func (t *Tensor) chw() (c, h, w int) {
	if len(t.Shape) != 3 {
		panic(fmt.Sprintf("nn: shape %v is not CHW", t.Shape))
	}
	return t.Shape[0], t.Shape[1], t.Shape[2]
}

// ArgMax returns the index of the largest element — the predicted class of
// a logit vector.
func (t *Tensor) ArgMax() int {
	best := 0
	for i, v := range t.Data {
		if v > t.Data[best] {
			best = i
		}
	}
	return best
}

// TopK returns the indices of the k largest elements in descending order
// (used for top-5 misclassification on the ILSVRC stand-in).
func (t *Tensor) TopK(k int) []int {
	if k > len(t.Data) {
		k = len(t.Data)
	}
	idx := make([]int, 0, k)
	used := make([]bool, len(t.Data))
	for n := 0; n < k; n++ {
		best := -1
		for i, v := range t.Data {
			if used[i] {
				continue
			}
			if best < 0 || v > t.Data[best] {
				best = i
			}
		}
		used[best] = true
		idx = append(idx, best)
	}
	return idx
}
