package nn

// Buffer reuse turns the forward pass of a fixed-topology network into a
// zero-allocation loop: each layer keeps its output tensor (and any forward
// scratch, such as the convolution patch buffer) and overwrites it on the
// next call instead of allocating a fresh one.
//
// Reuse is opt-in per network instance because it changes the lifetime of
// forward results: with reuse enabled, the tensor returned by Forward /
// ForwardWith is valid only until the layer's next forward call. Training
// keeps the default allocate-per-call behavior; inference sessions enable
// reuse on their private CloneForInference copy, where each forward result
// is consumed before the next pass begins.

// reusable is implemented by layers that can recycle forward-pass buffers.
type reusable interface {
	enableReuse()
}

// EnableBufferReuse switches every capable layer of this network instance to
// recycled forward buffers. After this call, tensors returned by Forward and
// ForwardWith are owned by the layers and valid only until the next forward
// pass through the same network. Intended for private inference clones (see
// CloneForInference); do not enable it on a network being trained or shared
// across goroutines.
func (n *Network) EnableBufferReuse() {
	for _, l := range n.Layers {
		if r, ok := l.(reusable); ok {
			r.enableReuse()
		}
	}
}

func sameShape(a []int, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, d := range a {
		if d != b[i] {
			return false
		}
	}
	return true
}

// outTensor returns the output tensor for one forward call: a fresh
// allocation when reuse is off, the cached buffer when it is on and the
// shape matches (the steady state for a fixed topology). Callers must
// overwrite every element — reused buffers keep the previous pass's values.
func outTensor(cached **Tensor, reuse bool, shape []int) *Tensor {
	if reuse && *cached != nil && sameShape((*cached).Shape, shape) {
		return *cached
	}
	t := NewTensor(shape...)
	if reuse {
		*cached = t
	}
	return t
}

// outVec is outTensor for rank-1 outputs. It exists so vector layers (Dense)
// stay allocation-free when warm: the shape literal is built only on the
// cache-miss path, never per call.
func outVec(cached **Tensor, reuse bool, n int) *Tensor {
	if reuse && *cached != nil && len((*cached).Shape) == 1 && (*cached).Shape[0] == n {
		return *cached
	}
	t := NewTensor(n)
	if reuse {
		*cached = t
	}
	return t
}
