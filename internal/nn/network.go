package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"os"
)

// Network is a sequential stack of layers.
type Network struct {
	// Name labels the network in experiment tables ("MLP1", ...).
	Name string
	// InShape is the expected input tensor shape.
	InShape []int
	Layers  []Layer
}

// Forward runs a full float forward pass — the paper's "Software" baseline.
func (n *Network) Forward(x *Tensor) *Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// ForwardWith runs the forward pass with external MVM engines substituted
// for the layers whose slice entry is non-nil (indexed by layer position) —
// the hook the crossbar simulator uses to take over the arithmetic. The
// slice may be shorter than the layer stack; missing or nil entries run the
// layer's own float arithmetic.
func (n *Network) ForwardWith(x *Tensor, mvms []MVMFunc) *Tensor {
	for i, l := range n.Layers {
		var mvm MVMFunc
		if i < len(mvms) {
			mvm = mvms[i]
		}
		if mvm != nil {
			il, okCast := l.(InferenceLayer)
			if !okCast {
				panic(fmt.Sprintf("nn: layer %d (%s) cannot host an external MVM", i, l.Name()))
			}
			x = il.ForwardWith(x, mvm)
		} else {
			x = l.Forward(x)
		}
	}
	return x
}

// Backward propagates the loss gradient through all layers.
func (n *Network) Backward(grad *Tensor) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// Params returns all trainable parameters.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams counts scalar parameters, for Table II style reporting.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W)
	}
	return total
}

// Predict returns the argmax class of the network on an input.
func (n *Network) Predict(x *Tensor) int {
	return n.Forward(x).ArgMax()
}

// SoftmaxCrossEntropy computes the loss against an integer label and the
// gradient with respect to the logits. The softmax is folded into the
// gradient (probs - onehot), the numerically standard formulation.
func SoftmaxCrossEntropy(logits *Tensor, label int) (loss float64, grad *Tensor) {
	maxL := math.Inf(-1)
	for _, v := range logits.Data {
		if v > maxL {
			maxL = v
		}
	}
	sum := 0.0
	grad = NewTensor(logits.Shape...)
	for i, v := range logits.Data {
		e := math.Exp(v - maxL)
		grad.Data[i] = e
		sum += e
	}
	for i := range grad.Data {
		grad.Data[i] /= sum
	}
	loss = -math.Log(math.Max(grad.Data[label], 1e-300))
	grad.Data[label] -= 1
	return loss, grad
}

// Softmax converts logits to probabilities (used for reporting only).
func Softmax(logits *Tensor) *Tensor {
	_, g := SoftmaxCrossEntropy(logits, 0)
	g.Data[0] += 1
	return g
}

// netState is the gob wire form of a trained network's parameters.
type netState struct {
	Name    string
	Weights [][]float64
}

// SaveWeights serializes the network parameters to a file.
func (n *Network) SaveWeights(path string) error {
	st := netState{Name: n.Name}
	for _, p := range n.Params() {
		st.Weights = append(st.Weights, p.W)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return fmt.Errorf("nn: encoding %s: %w", n.Name, err)
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadWeights restores parameters saved by SaveWeights into a structurally
// identical network.
func (n *Network) LoadWeights(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var st netState
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&st); err != nil {
		return fmt.Errorf("nn: decoding %s: %w", path, err)
	}
	params := n.Params()
	if len(st.Weights) != len(params) {
		return fmt.Errorf("nn: %s has %d parameter arrays, file has %d", n.Name, len(params), len(st.Weights))
	}
	for i, p := range params {
		if len(st.Weights[i]) != len(p.W) {
			return fmt.Errorf("nn: parameter %d size %d, file has %d", i, len(p.W), len(st.Weights[i]))
		}
		copy(p.W, st.Weights[i])
	}
	return nil
}
