package nn

import (
	"fmt"
	"math"
)

// Sigmoid is the logistic activation; ISAAC tiles include dedicated sigmoid
// units (paper Section II-B2), so networks with sigmoid outputs map onto
// the same accelerator.
type Sigmoid struct {
	lastOut *Tensor
	reuse   bool
	outBuf  *Tensor
}

func (s *Sigmoid) enableReuse() { s.reuse = true }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "sigmoid" }

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// OutShape implements Layer.
func (s *Sigmoid) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *Tensor) *Tensor {
	out := outTensor(&s.outBuf, s.reuse, x.Shape)
	for i, v := range x.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	s.lastOut = out
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *Tensor) *Tensor {
	din := grad.Clone()
	for i, y := range s.lastOut.Data {
		din.Data[i] *= y * (1 - y)
	}
	return din
}

// AvgPool2D is non-overlapping average pooling over CHW tensors.
type AvgPool2D struct {
	Size   int
	lastIn []int // input shape for backward
	reuse  bool
	outBuf *Tensor
}

func (m *AvgPool2D) enableReuse() { m.reuse = true }

// Name implements Layer.
func (m *AvgPool2D) Name() string { return fmt.Sprintf("avgpool(%d)", m.Size) }

// Params implements Layer.
func (m *AvgPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (m *AvgPool2D) OutShape(in []int) []int {
	return []int{in[0], in[1] / m.Size, in[2] / m.Size}
}

// Forward implements Layer.
func (m *AvgPool2D) Forward(x *Tensor) *Tensor {
	m.lastIn = x.Shape
	os := m.OutShape(x.Shape)
	out := outTensor(&m.outBuf, m.reuse, os)
	_, h, w := x.chw()
	inv := 1 / float64(m.Size*m.Size)
	i := 0
	for c := 0; c < os[0]; c++ {
		for oy := 0; oy < os[1]; oy++ {
			for ox := 0; ox < os[2]; ox++ {
				sum := 0.0
				for ky := 0; ky < m.Size; ky++ {
					for kx := 0; kx < m.Size; kx++ {
						sum += x.Data[(c*h+oy*m.Size+ky)*w+ox*m.Size+kx]
					}
				}
				out.Data[i] = sum * inv
				i++
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *AvgPool2D) Backward(grad *Tensor) *Tensor {
	din := NewTensor(m.lastIn...)
	_, h, w := din.chw()
	os := grad.Shape
	inv := 1 / float64(m.Size*m.Size)
	i := 0
	for c := 0; c < os[0]; c++ {
		for oy := 0; oy < os[1]; oy++ {
			for ox := 0; ox < os[2]; ox++ {
				g := grad.Data[i] * inv
				i++
				for ky := 0; ky < m.Size; ky++ {
					for kx := 0; kx < m.Size; kx++ {
						din.Data[(c*h+oy*m.Size+ky)*w+ox*m.Size+kx] += g
					}
				}
			}
		}
	}
	return din
}
