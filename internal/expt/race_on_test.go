//go:build race

package expt

// raceEnabled reports whether the race detector instruments this build;
// compute-bound validation tests skip themselves under it.
const raceEnabled = true
