package expt

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/accel"
	"repro/internal/fault"
	"repro/internal/noise"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/stats"
)

// ScenarioSweepConfig drives the environment-adaptation matrix: every named
// device profile crosses every named scenario timeline, and each cell runs
// twice — a static arm with a fixed protection posture, and an adaptive arm
// where the closed-loop controller retunes patrol cadence on the same step
// clock. Everything — traffic, timeline, campaign, control decisions — is a
// pure function of the seed, so a cell replays bit for bit.
type ScenarioSweepConfig struct {
	// Devices are registry names from internal/noise (default: the Table-I
	// device plus the high-RTN and PCM-drift corners).
	Devices []string
	Scheme  accel.Scheme
	// Scenarios are timeline names from internal/scenario (default: all).
	Scenarios []string
	Retries   int
	Images    int // test images served per lifetime step (0 = all)
	Seed      uint64
	// Steps is the lifetime length; the timeline spans Steps+1 entries so
	// step 0 (pre-wear baseline) has an environment too (default 6).
	Steps int
	// Lifetime is the base per-step wear the scenario's wear windows
	// multiply. Steps inside is overridden by the sweep's Steps.
	Lifetime fault.LifetimeParams
	// SpareRows per array, the patrol scrubber's repair budget (default 8).
	SpareRows int
	// TightenRate is the controller's pressure threshold for the adaptive
	// arm (default 0.01; open breakers always count as pressure).
	TightenRate float64
}

// Arm labels for the two protection postures of each matrix cell.
const (
	ArmStatic   = "static"
	ArmAdaptive = "adaptive"
)

// ScenarioPoint is one (device, scenario, arm, step) measurement.
type ScenarioPoint struct {
	Workload string
	Device   string
	Scheme   string
	Scenario string
	Arm      string
	Step     int
	Miss     stats.Counter
	// ServeErrors is the 5xx budget; SoftAnswers the requests that needed
	// the software fallback, Availability their complement.
	ServeErrors    int
	SoftAnswers    int
	Availability   float64
	DegradedLayers int
	// Level is the controller's protection level after this step (static
	// arm: always 0). PatrolPasses is how many patrol passes this step ran
	// — the adaptive arm's visible cadence tightening.
	Level        int
	PatrolPasses int
	// RowsSpared / CellsReprogrammed are the cumulative scrub repairs.
	RowsSpared        uint64
	CellsReprogrammed uint64
	// Tightens / Relaxes are the cumulative controller decisions.
	Tightens uint64
	Relaxes  uint64
	// Degrades is the cumulative rung-3 count — the accuracy the ladder
	// already conceded to the software path.
	Degrades uint64
}

func (c ScenarioSweepConfig) withDefaults() ScenarioSweepConfig {
	if len(c.Devices) == 0 {
		c.Devices = []string{noise.DefaultDeviceName, "high-rtn", "pcm-drift"}
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = scenario.Names()
	}
	if c.Steps <= 0 {
		c.Steps = 6
	}
	if c.SpareRows == 0 {
		c.SpareRows = 8
	}
	if c.TightenRate == 0 {
		c.TightenRate = 0.01
	}
	return c
}

// baseScrubInterval is the static patrol cadence both arms start from. In
// manual mode the wall-clock value is only the controller's arithmetic
// anchor: passes per step = base / live interval, so level L runs 2^L
// patrol passes on the step clock.
const baseScrubInterval = 800 * time.Millisecond

// RunScenarioSweep runs the device x scenario x arm matrix.
func RunScenarioSweep(w Workload, cfg ScenarioSweepConfig, prog Progress) ([]ScenarioPoint, error) {
	cfg = cfg.withDefaults()
	if cfg.Lifetime.StuckPerStep == 0 && cfg.Lifetime.DriftRate == 0 {
		return nil, fmt.Errorf("expt: scenario sweep needs a non-trivial Lifetime")
	}
	var points []ScenarioPoint
	for _, devName := range cfg.Devices {
		dev, err := noise.Device(devName)
		if err != nil {
			return nil, err
		}
		for _, scenName := range cfg.Scenarios {
			tl, err := scenario.Generate(scenName, cfg.Seed, cfg.Steps+1)
			if err != nil {
				return nil, err
			}
			for _, arm := range []string{ArmStatic, ArmAdaptive} {
				pts, err := runScenarioArm(w, cfg, devName, dev, tl, arm, prog)
				if err != nil {
					return nil, fmt.Errorf("expt: %s/%s/%s: %w", devName, scenName, arm, err)
				}
				points = append(points, pts...)
			}
		}
	}
	return points, nil
}

// runScenarioArm runs one matrix cell: a fresh engine under the scenario's
// environment and wear timeline, served on the step clock with either a
// fixed or controller-driven protection posture.
func runScenarioArm(w Workload, cfg ScenarioSweepConfig, devName string, dev noise.DeviceParams, tl scenario.Timeline, arm string, prog Progress) ([]ScenarioPoint, error) {
	acfg := accel.DefaultConfig(cfg.Scheme)
	acfg.Device = dev
	acfg.DeviceName = devName
	if cfg.Retries > 0 {
		acfg.Retries = cfg.Retries
	}
	acfg.Seed = cfg.Seed
	acfg.SpareRows = cfg.SpareRows
	eng, err := accel.Map(w.Net, acfg)
	if err != nil {
		return nil, err
	}
	scfg := serve.Config{
		Workers: 1, QueueDepth: 16, TopK: 1,
		Recovery: serve.RecoveryConfig{
			Enabled:       true,
			Monitor:       fault.MonitorConfig{Window: 2048, MinReads: 64, TripRate: 0.05},
			RetryAttempts: 1, RetryBackoff: -1, MaxRemaps: 1,
		},
		Scrub: serve.ScrubConfig{
			Enabled: true, Manual: true,
			Interval: baseScrubInterval, Seed: cfg.Seed,
		},
	}
	if arm == ArmAdaptive {
		scfg.Controller = serve.ControllerConfig{
			Enabled: true, Manual: true,
			TightenRate: cfg.TightenRate,
			Hysteresis:  1, Cooldown: 1, MaxLevel: 3,
		}
	}
	sched, err := serve.NewScheduler(eng, scfg)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	life := cfg.Lifetime
	life.Steps = cfg.Steps
	campaign := tl.ScaleCampaign(fault.LifetimeCampaign(cfg.Seed, eng.Layers(), life))
	runner, err := fault.NewRunner(campaign, eng)
	if err != nil {
		return nil, err
	}

	test := clipTest(w.Test, cfg.Images)
	var points []ScenarioPoint
	for step := 0; step <= cfg.Steps; step++ {
		// Environment first: the step's excursion retunes the live arrays,
		// then its (wear-scaled) faults land, then traffic is served.
		if err := sched.ApplyEnv(tl.At(step).Apply(dev)); err != nil {
			return nil, err
		}
		if step > 0 {
			if _, err := runner.Advance(step); err != nil {
				return nil, err
			}
		}
		p := ScenarioPoint{
			Workload: w.Name, Device: devName, Scheme: cfg.Scheme.Name,
			Scenario: tl.Spec, Arm: arm, Step: step,
		}
		streamBase := cfg.Seed*100_000 + uint64(step)*1_000_000_000
		for i, ex := range test {
			pred, err := sched.Predict(ctx, ex.Input, streamBase+uint64(i)+1, 1)
			if err != nil {
				p.ServeErrors++
				continue
			}
			p.Miss.AddOutcome(pred.Class != ex.Label)
			if pred.Stats.SoftMVMs > 0 {
				p.SoftAnswers++
			}
		}
		if n := len(test); n > 0 {
			p.Availability = float64(n-p.SoftAnswers-p.ServeErrors) / float64(n)
		}

		// Protection work on the step clock: the adaptive arm decides from
		// this step's measured traffic, then patrols at the level's cadence;
		// the static arm patrols once per step, always.
		passes := 1
		if arm == ArmAdaptive {
			if _, err := sched.ControllerTick(); err != nil {
				return nil, err
			}
			if iv := sched.ScrubInterval(); iv > 0 {
				passes = int(baseScrubInterval / iv)
			}
			if st, ok := sched.ControllerStatus(); ok {
				p.Level = st.Level
				p.Tightens = st.Decisions["tighten"]
				p.Relaxes = st.Decisions["relax"]
			}
		}
		for i := 0; i < passes; i++ {
			if err := sched.PatrolNow(); err != nil {
				return nil, err
			}
		}
		p.PatrolPasses = passes
		if st, ok := sched.ScrubStatus(); ok {
			p.RowsSpared = st.Totals.RowsSpared
			p.CellsReprogrammed = st.Totals.CellsReprogrammed
		}
		p.DegradedLayers = len(eng.DegradedLayers())
		p.Degrades = sched.RecoveryCounters().Degrades
		points = append(points, p)
		prog.Printf("scenario %s/%s/%s/%s step %d/%d: miss=%.4f avail=%.4f level=%d passes=%d spared=%d degraded=%d\n",
			w.Name, devName, tl.Spec, arm, step, cfg.Steps,
			p.Miss.Rate(), p.Availability, p.Level, p.PatrolPasses, p.RowsSpared, p.DegradedLayers)
	}
	if _, err := sched.Close(ctx); err != nil {
		return nil, err
	}
	return points, nil
}

// ScenarioVerdict compares the two arms of one (device, scenario) cell over
// the whole service life.
type ScenarioVerdict struct {
	Device, Scenario string
	// StaticMiss/AdaptiveMiss are lifetime miss rates — total wrong answers
	// over total images served across every step, not the final step alone.
	// Patrol eventually spares every damaged row, so both arms tend to
	// converge at end of life; what separates them is how much accuracy was
	// lost while damage sat unrepaired, and the lifetime fold captures
	// exactly that. StaticAvail/AdaptiveAvail are lifetime-minimum
	// availability.
	StaticMiss, AdaptiveMiss   float64
	StaticAvail, AdaptiveAvail float64
	// AdaptiveWins: the adaptive arm serves at least as accurately and at
	// least as available over the run, and strictly better on one of the two.
	AdaptiveWins bool
}

// Verdicts folds sweep points into per-cell static-vs-adaptive comparisons.
func Verdicts(points []ScenarioPoint) []ScenarioVerdict {
	type key struct{ dev, scen string }
	type acc struct {
		v                    ScenarioVerdict
		sHits, sN, aHits, aN int
	}
	cells := map[key]*acc{}
	var order []key
	for _, p := range points {
		k := key{p.Device, p.Scenario}
		c, ok := cells[k]
		if !ok {
			c = &acc{v: ScenarioVerdict{Device: p.Device, Scenario: p.Scenario,
				StaticAvail: 1, AdaptiveAvail: 1}}
			cells[k] = c
			order = append(order, k)
		}
		switch p.Arm {
		case ArmStatic:
			c.sHits += p.Miss.Hits
			c.sN += p.Miss.Trials
			if p.Availability < c.v.StaticAvail {
				c.v.StaticAvail = p.Availability
			}
		case ArmAdaptive:
			c.aHits += p.Miss.Hits
			c.aN += p.Miss.Trials
			if p.Availability < c.v.AdaptiveAvail {
				c.v.AdaptiveAvail = p.Availability
			}
		}
	}
	out := make([]ScenarioVerdict, 0, len(order))
	for _, k := range order {
		c := cells[k]
		v := c.v
		if c.sN > 0 {
			v.StaticMiss = float64(c.sHits) / float64(c.sN)
		}
		if c.aN > 0 {
			v.AdaptiveMiss = float64(c.aHits) / float64(c.aN)
		}
		notWorse := v.AdaptiveMiss <= v.StaticMiss && v.AdaptiveAvail >= v.StaticAvail
		better := v.AdaptiveMiss < v.StaticMiss || v.AdaptiveAvail > v.StaticAvail
		v.AdaptiveWins = notWorse && better
		out = append(out, v)
	}
	return out
}

// RenderScenarios prints the matrix and the static-vs-adaptive verdicts.
func RenderScenarios(w io.Writer, points []ScenarioPoint) {
	if len(points) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%s environment-adaptation matrix (%s)\n", points[0].Workload, points[0].Scheme)
	fmt.Fprintf(w, "%-14s %-12s %-9s %-5s %8s %8s %6s %7s %7s %9s\n",
		"device", "scenario", "arm", "step", "miss", "avail", "level", "passes", "spared", "degraded")
	for _, p := range points {
		fmt.Fprintf(w, "%-14s %-12s %-9s %-5d %8.4f %8.4f %6d %7d %7d %9d\n",
			p.Device, p.Scenario, p.Arm, p.Step, p.Miss.Rate(), p.Availability,
			p.Level, p.PatrolPasses, p.RowsSpared, p.DegradedLayers)
	}
	fmt.Fprintf(w, "\nservice-life verdicts (lifetime miss, lifetime-min availability):\n")
	fmt.Fprintf(w, "%-14s %-12s %10s %10s %10s %10s %9s\n",
		"device", "scenario", "miss/stat", "miss/adpt", "avail/stat", "avail/adpt", "adaptive")
	for _, v := range Verdicts(points) {
		verdict := "ties"
		if v.AdaptiveWins {
			verdict = "WINS"
		} else if v.AdaptiveMiss > v.StaticMiss || v.AdaptiveAvail < v.StaticAvail {
			verdict = "loses"
		}
		fmt.Fprintf(w, "%-14s %-12s %10.4f %10.4f %10.4f %10.4f %9s\n",
			v.Device, v.Scenario, v.StaticMiss, v.AdaptiveMiss, v.StaticAvail, v.AdaptiveAvail, verdict)
	}
}

// WriteScenariosCSV emits the sweep points as CSV.
func WriteScenariosCSV(w io.Writer, points []ScenarioPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "device", "scheme", "scenario", "arm", "step",
		"miss", "halfwidth95", "availability", "soft_answers", "serve_errors",
		"degraded_layers", "level", "patrol_passes", "rows_spared",
		"cells_reprogrammed", "tightens", "relaxes", "degrades"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			p.Workload, p.Device, p.Scheme, p.Scenario, p.Arm, strconv.Itoa(p.Step),
			fmt.Sprintf("%.6f", p.Miss.Rate()),
			fmt.Sprintf("%.6f", p.Miss.HalfWidth95()),
			fmt.Sprintf("%.6f", p.Availability),
			strconv.Itoa(p.SoftAnswers),
			strconv.Itoa(p.ServeErrors),
			strconv.Itoa(p.DegradedLayers),
			strconv.Itoa(p.Level),
			strconv.Itoa(p.PatrolPasses),
			strconv.FormatUint(p.RowsSpared, 10),
			strconv.FormatUint(p.CellsReprogrammed, 10),
			strconv.FormatUint(p.Tightens, 10),
			strconv.FormatUint(p.Relaxes, 10),
			strconv.FormatUint(p.Degrades, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
