package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/hwmodel"
)

// RenderSweep prints a Figure 10/11 style table: one block per workload,
// rows per scheme, columns per bits-per-cell.
func RenderSweep(w io.Writer, cells []CellResult) {
	byWorkload := map[string][]CellResult{}
	var workloads []string
	for _, c := range cells {
		if _, ok := byWorkload[c.Workload]; !ok {
			workloads = append(workloads, c.Workload)
		}
		byWorkload[c.Workload] = append(byWorkload[c.Workload], c)
	}
	for _, name := range workloads {
		group := byWorkload[name]
		bitsSet := map[int]bool{}
		schemes := []string{}
		seen := map[string]bool{}
		var software *CellResult
		for i, c := range group {
			if c.Scheme == SchemeSoftware {
				software = &group[i]
				continue
			}
			bitsSet[c.Bits] = true
			if !seen[c.Scheme] {
				seen[c.Scheme] = true
				schemes = append(schemes, c.Scheme)
			}
		}
		var bits []int
		for b := range bitsSet {
			bits = append(bits, b)
		}
		sort.Ints(bits)

		fmt.Fprintf(w, "\n%s misclassification rate\n", name)
		header := fmt.Sprintf("%-11s", "scheme")
		for _, b := range bits {
			header += fmt.Sprintf("  %6d-bit", b)
		}
		fmt.Fprintln(w, header)
		fmt.Fprintln(w, strings.Repeat("-", len(header)))
		if software != nil {
			row := fmt.Sprintf("%-11s", SchemeSoftware)
			for range bits {
				row += fmt.Sprintf("  %9.4f", software.MissRate())
			}
			fmt.Fprintln(w, row)
		}
		for _, s := range schemes {
			row := fmt.Sprintf("%-11s", s)
			for _, b := range bits {
				val := "        - "
				for _, c := range group {
					if c.Scheme == s && c.Bits == b {
						val = fmt.Sprintf("  %9.4f", c.MissRate())
					}
				}
				row += val
			}
			fmt.Fprintln(w, row)
		}
	}
}

// WriteSweepCSV emits the sweep cells as CSV.
func WriteSweepCSV(w io.Writer, cells []CellResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "scheme", "bits", "miss", "halfwidth95",
		"drift", "row_error_rate", "corrected", "detected", "retries", "residual"}); err != nil {
		return err
	}
	for _, c := range cells {
		rec := []string{
			c.Workload, c.Scheme, strconv.Itoa(c.Bits),
			fmt.Sprintf("%.6f", c.MissRate()),
			fmt.Sprintf("%.6f", c.Miss.HalfWidth95()),
			fmt.Sprintf("%.6e", c.Drift.Mean()),
			fmt.Sprintf("%.6e", c.Stats.RowErrorRate()),
			strconv.FormatUint(c.Stats.Corrected, 10),
			strconv.FormatUint(c.Stats.Detected, 10),
			strconv.FormatUint(c.Stats.Retries, 10),
			strconv.FormatUint(c.Stats.Residual, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderFig12 prints the sensitivity table: misclassification and, because
// the 2-bit operating point often saturates at the software baseline, the
// mean logit drift, which resolves the RTN sensitivity far below the
// misclassification threshold.
func RenderFig12(w io.Writer, pts []Fig12Point) {
	fmt.Fprintln(w, "\nMLP1 @ 2-bit sensitivity (misclassification rate | mean logit drift)")
	for _, pt := range pts {
		fmt.Fprintf(w, "%s = %-7.3g", pt.Knob, pt.Value)
		for _, c := range pt.Cells {
			if c.Scheme == SchemeSoftware {
				fmt.Fprintf(w, "  %s=%.4f", c.Scheme, c.MissRate())
				continue
			}
			fmt.Fprintf(w, "  %s=%.4f|%.3g", c.Scheme, c.MissRate(), c.Drift.Mean())
		}
		fmt.Fprintln(w)
	}
}

// RenderTable3 prints the AlexNet stand-in results in the Table III shape.
func RenderTable3(w io.Writer, r Table3Result) {
	fmt.Fprintln(w, "\nMiniAlexNet (ILSVRC stand-in), 2-bit cells, ABN-9")
	fmt.Fprintf(w, "%-24s %10s %12s %8s\n", "", "Software", "Uncorrected", "ABN-9")
	fmt.Fprintf(w, "%-24s %9.2f%% %11.2f%% %7.2f%%\n", "Top-1 misclassification",
		100*r.Software.Miss.Rate(), 100*r.Uncorrected.Miss.Rate(), 100*r.ABN9.Miss.Rate())
	fmt.Fprintf(w, "%-24s %9.2f%% %11.2f%% %7.2f%%\n", "Top-5 misclassification",
		100*r.Software.MissTopK.Rate(), 100*r.Uncorrected.MissTopK.Rate(), 100*r.ABN9.MissTopK.Rate())
}

// RenderTable4 prints the hardware budget in the Table IV shape plus the
// Section VIII-B percentages.
func RenderTable4(w io.Writer, o hwmodel.Overheads) {
	fmt.Fprintln(w, "\nPower and area of the 9-bit error correction hardware (32 nm)")
	fmt.Fprintf(w, "%-30s %12s %10s\n", "Component", "Area", "Power")
	fmt.Fprintf(w, "%-30s %9.4f mm2 %7.2f mW\n", "Error Correction Unit (ECU)", o.ECUUnit.AreaMM2, o.ECUUnit.PowerMW)
	fmt.Fprintf(w, "%-30s %9.4f mm2 %7.2f mW\n", "Error Correction Table", o.TableUnit.AreaMM2, o.TableUnit.PowerMW)
	fmt.Fprintf(w, "\nECU area overhead per tile:    %5.1f%%\n", 100*o.ECUAreaPct)
	fmt.Fprintf(w, "Check-bit row overhead (tile): %5.1f%%\n", 100*o.RowAreaPct)
	fmt.Fprintf(w, "Total tile area overhead:      %5.1f%%\n", 100*o.TileArea)
	fmt.Fprintf(w, "Chip area overhead:            %5.1f%%\n", 100*o.ChipArea)
	fmt.Fprintf(w, "ECU power overhead per tile:   %5.1f%%\n", 100*o.ECUPowerPc)
	fmt.Fprintf(w, "Chip power overhead:           %5.1f%%\n", 100*o.ChipPower)
}

// RenderFig7 prints the transient summary and optionally the trace as CSV.
func RenderFig7(w io.Writer, res *circuit.Result) {
	fmt.Fprintln(w, "\n128-cell row transient (Figure 7 configuration)")
	fmt.Fprintf(w, "ideal current:    %.4g A\n", res.IdealCurrent)
	fmt.Fprintf(w, "ADC step:         %.4g A\n", res.StepCurrent)
	fmt.Fprintf(w, "error rate:       %.2f%% total (%.2f%% high, %.2f%% low)\n",
		100*res.TotalRate, 100*res.HighRate, 100*res.LowRate)
	fmt.Fprintf(w, "RTN occupancy:    %.1f%%\n", 100*res.RTNOccupancy)
	fmt.Fprintf(w, "samples:          %d\n", len(res.Samples))
}

// WriteFig7CSV writes the transient trace for plotting.
func WriteFig7CSV(w io.Writer, res *circuit.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "current_a", "error_steps"}); err != nil {
		return err
	}
	for _, s := range res.Samples {
		if err := cw.Write([]string{
			fmt.Sprintf("%.6e", s.Time),
			fmt.Sprintf("%.6e", s.Current),
			strconv.Itoa(s.ErrorSteps),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
