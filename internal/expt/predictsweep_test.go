package expt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadSweepCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.csv")
	body := "workload,scheme,bits,miss,halfwidth95,drift,row_error_rate,corrected,detected,retries,residual\n" +
		"MLP1,ABN-9,2,0.0300,0.033,1.5e-03,0.001,12,0,3,0\n" +
		"MLP1,Static128,5,0.7400,0.086,2.1e+00,0.002,7,44,9,2\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, err := LoadSweepCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	r := rows[0]
	if r.Workload != "MLP1" || r.Scheme != "ABN-9" || r.Bits != 2 ||
		r.Miss != 0.03 || r.Halfwidth != 0.033 || r.Drift != 1.5e-03 {
		t.Fatalf("row 0 parsed wrong: %+v", r)
	}
	if rows[1].Scheme != "Static128" || rows[1].Bits != 5 || rows[1].Miss != 0.74 {
		t.Fatalf("row 1 parsed wrong: %+v", rows[1])
	}

	// Missing required column must error, not silently zero-fill.
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("workload,scheme,bits,miss\nMLP1,ABN-9,2,0.03\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSweepCSV(bad); err == nil || !strings.Contains(err.Error(), "lacks column") {
		t.Fatalf("missing column: err = %v", err)
	}
	if _, err := LoadSweepCSV(filepath.Join(dir, "nope.csv")); err == nil {
		t.Fatal("missing file must error")
	}
}

// sweepCell selects one measured Monte-Carlo cell for validation. collapse
// marks cells measured deep in the failure regime, where the asserted
// contract changes (see TestPredictorValidationAgainstSweeps).
type sweepCell struct {
	scheme   string
	bits     int
	collapse bool
}

func pickRows(t *testing.T, path string, cells []sweepCell) []SweepRow {
	t.Helper()
	all, err := LoadSweepCSV(path)
	if err != nil {
		if os.IsNotExist(err) {
			t.Skipf("measured sweep %s not present", path)
		}
		t.Fatal(err)
	}
	var rows []SweepRow
	for _, c := range cells {
		found := false
		for _, r := range all {
			if r.Workload == "MLP1" && r.Scheme == c.scheme && r.Bits == c.bits {
				rows = append(rows, r)
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s lacks MLP1 %s %d-bit cell", path, c.scheme, c.bits)
		}
	}
	return rows
}

// TestPredictorValidationAgainstSweeps asserts predicted-vs-measured miss on
// a fixed subset of the committed Monte-Carlo cells, rebuilding each cell's
// engine seed-for-seed (the full grid is RunPredictorValidation; CI runs
// this subset). The tolerance is stated per regime, not eyeballed:
//
//   - operating-regime cells (measured miss < 0.3 — the regime an SLO
//     planner actually operates in): |predicted - measured| must be within
//     max(0.08, 3x the cell's 95% Monte-Carlo halfwidth). The committed
//     sweeps ran 100 images, so chance alone moves a measured value by
//     ~±0.033 at miss 0.03.
//   - deep-collapse cells (measured miss >= 0.3): the Gaussian-margin model
//     saturates low once a single revert-to-garbage event dominates the
//     logits, so the miss prediction there is a lower bound, not an
//     estimate — asserted as such (predicted <= measured + halfwidth).
//     What rejects these configurations in the planner is not the miss
//     channel but the availability channel: their predicted detected-
//     uncorrectable rate makes (1-PDetect)^reads collapse (DESIGN.md
//     "Predicting instead of sweeping" documents the breakdown).
func TestPredictorValidationAgainstSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("remaps real engines; minutes of work")
	}
	if raceEnabled {
		t.Skip("compute-bound engine remapping; CI runs this without -race")
	}
	train := DefaultTrainOptions()
	train.CacheDir = filepath.Join("..", "..", "testdata", "weights")
	if _, err := os.Stat(train.CacheDir); err != nil {
		t.Skip("trained-weight cache not present")
	}

	figures := []struct {
		path        string
		failureRate float64
		cells       []sweepCell
	}{
		{filepath.Join("..", "..", "results", "fig10.csv"), 0, []sweepCell{
			{scheme: "ABN-9", bits: 2},                     // the paper's headline operating point
			{scheme: "Static128", bits: 5, collapse: true}, // 5-bit cells overwhelm the code
		}},
		{filepath.Join("..", "..", "results", "fig11.csv"), 0.001, []sweepCell{
			{scheme: "ABN-10", bits: 1},                    // strongest code under faults: in-regime
			{scheme: "ABN-8", bits: 2},                     // mid-strength code under faults
			{scheme: "Static128", bits: 2, collapse: true}, // static table defeated by stuck cells
		}},
	}
	for _, fig := range figures {
		rows := pickRows(t, fig.path, fig.cells)
		out, err := RunPredictorValidation(PredictorValidationOptions{
			Train:       train,
			Rows:        rows,
			FailureRate: fig.failureRate,
			Workloads:   []string{"MLP1"},
			Images:      100, // matches the committed sweeps' Monte-Carlo budget
			Seed:        1,   // matches the committed sweeps' map seeds
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(rows) {
			t.Fatalf("%s: predicted %d cells, want %d", fig.path, len(out), len(rows))
		}
		for i, r := range out {
			if r.PredictedMiss < 0 || r.PredictedMiss > 1 {
				t.Errorf("%s %d-bit %s: predicted miss %v out of [0,1]", fig.path, r.Bits, r.Scheme, r.PredictedMiss)
			}
			if fig.cells[i].collapse {
				if r.MeasuredMiss < 0.3 {
					t.Errorf("%s %d-bit %s: expected a collapse cell, measured %.3f", fig.path, r.Bits, r.Scheme, r.MeasuredMiss)
				}
				if r.PredictedMiss > r.MeasuredMiss+r.Halfwidth {
					t.Errorf("%s %d-bit %s: collapse lower bound violated: predicted %.3f > measured %.3f + hw %.3f",
						fig.path, r.Bits, r.Scheme, r.PredictedMiss, r.MeasuredMiss, r.Halfwidth)
				}
				continue
			}
			tol := 3 * r.Halfwidth
			if tol < 0.08 {
				tol = 0.08
			}
			if gap := r.MissError(); gap < -tol || gap > tol {
				t.Errorf("%s %d-bit %s (fr=%g): measured %.3f, predicted %.3f, gap %+.3f outside ±%.3f",
					fig.path, r.Bits, r.Scheme, fig.failureRate,
					r.MeasuredMiss, r.PredictedMiss, gap, tol)
			}
		}
	}
}
