package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/accel"
	"repro/internal/fault"
	"repro/internal/noise"
	"repro/internal/scrub"
	"repro/internal/stats"
)

// ScrubSweepConfig drives the closed-loop lifetime study: the same seeded
// wear-out campaign is replayed twice — once open-loop (scrub off) and once
// with a patrol scrub pass after every campaign step — and the question is
// how many steps each arm keeps the accelerator inside the software
// baseline's accuracy band.
type ScrubSweepConfig struct {
	Device      noise.DeviceParams
	Scheme      accel.Scheme
	Retries     int
	Images      int // test images evaluated per lifetime step (0 = all)
	Seed        uint64
	Workers     int // 0 = GOMAXPROCS
	Lifetime    fault.LifetimeParams
	SpareRows   int     // spare lines per array for patrol sparing
	VerifyIters int     // closed-loop programming bound (0 = default)
	BandSlack   float64 // allowed miss-rate excess over the software baseline
}

// DefaultScrubLifetime is a drift-dominated wear-out schedule: the damage
// mode patrol scrubbing repairs in place (conductance drift) arrives every
// step at a rate that breaks the open-loop arm immediately, while a thin
// stream of stuck-at faults forces row sparing. The stuck rate is set so a
// realistic spare pool can retire every arrival — online stuck cells are
// uncharacterized and interact with transient noise (one stuck error spends
// the code's whole correction budget), so any unretired population is
// catastrophic for the coded schemes regardless of scrubbing.
func DefaultScrubLifetime(steps int) fault.LifetimeParams {
	return fault.LifetimeParams{
		Steps:        steps,
		StuckPerStep: 0.00002,
		LRSFrac:      0.5,
		DriftEvery:   1,
		DriftRate:    0.02,
		DriftDelta:   1,
	}
}

// ScrubPoint is one (arm, lifetime step) measurement.
type ScrubPoint struct {
	Workload     string
	Scrub        bool
	Step         int
	StuckCells   int
	DriftedCells int
	Miss         stats.Counter
	InBand       bool
	// Patrol accounting cumulative up to this step (zero when Scrub=false).
	Totals scrub.Totals
	Stats  accel.Stats
}

// ScrubSweepResult pairs the two arms with the shared baseline band.
type ScrubSweepResult struct {
	Workload     string
	BaselineMiss float64 // software float baseline
	Band         float64 // BaselineMiss + BandSlack
	Points       []ScrubPoint
	SustainedOff int // consecutive steps from 0 inside the band, scrub off
	SustainedOn  int // same with patrol scrubbing enabled
}

// RunScrubSweep replays one seeded lifetime campaign through both arms.
// Everything is deterministic from (workload, config): the campaign events,
// the per-image noise streams, and — in the scrub arm — the patrol repair
// programming, so the sustained-step comparison is exactly reproducible.
func RunScrubSweep(w Workload, cfg ScrubSweepConfig, prog Progress) (ScrubSweepResult, error) {
	if cfg.Lifetime.Steps <= 0 {
		return ScrubSweepResult{}, fmt.Errorf("expt: scrub sweep needs Lifetime.Steps >= 1")
	}
	if cfg.BandSlack <= 0 {
		cfg.BandSlack = 0.02
	}
	sw := EvaluateSoftware(w, cfg.Images, 0)
	res := ScrubSweepResult{
		Workload:     w.Name,
		BaselineMiss: sw.Miss.Rate(),
		Band:         sw.Miss.Rate() + cfg.BandSlack,
	}
	for _, scrubOn := range []bool{false, true} {
		pts, err := runScrubArm(w, cfg, scrubOn, res.Band, prog)
		if err != nil {
			return ScrubSweepResult{}, err
		}
		sustained := sustainedSteps(pts)
		if scrubOn {
			res.SustainedOn = sustained
		} else {
			res.SustainedOff = sustained
		}
		res.Points = append(res.Points, pts...)
	}
	return res, nil
}

// runScrubArm runs one arm of the comparison: identical engine, identical
// campaign, with or without a patrol pass after each step's damage.
func runScrubArm(w Workload, cfg ScrubSweepConfig, scrubOn bool, band float64, prog Progress) ([]ScrubPoint, error) {
	acfg := accel.DefaultConfig(cfg.Scheme)
	acfg.Device = cfg.Device
	if cfg.Retries > 0 {
		acfg.Retries = cfg.Retries
	}
	acfg.Seed = cfg.Seed
	if scrubOn {
		acfg.SpareRows = cfg.SpareRows
	}
	if cfg.VerifyIters > 0 {
		acfg.VerifyIters = cfg.VerifyIters
	}
	eng, err := accel.Map(w.Net, acfg)
	if err != nil {
		return nil, fmt.Errorf("expt: mapping %s under %s: %w", w.Name, cfg.Scheme.Name, err)
	}
	runner, err := fault.NewRunner(fault.LifetimeCampaign(cfg.Seed, eng.Layers(), cfg.Lifetime), eng)
	if err != nil {
		return nil, err
	}
	var sc *scrub.Scrubber
	if scrubOn {
		sc = scrub.New(eng, scrub.Config{VerifyIters: cfg.VerifyIters, Seed: cfg.Seed})
	}
	evalCfg := EvalConfig{Scheme: cfg.Scheme, Images: cfg.Images, Seed: cfg.Seed, Workers: cfg.Workers}
	var pts []ScrubPoint
	for step := 0; step <= cfg.Lifetime.Steps; step++ {
		if step > 0 {
			if _, err := runner.Advance(step); err != nil {
				return nil, err
			}
			if sc != nil {
				if _, err := sc.PatrolAll(); err != nil {
					return nil, err
				}
			}
		}
		cell := runEval(eng, w, evalCfg, cfg.Seed*100_000+uint64(step)*1_000_000_000)
		stuck, drifted := countFaults(eng)
		p := ScrubPoint{
			Workload: w.Name, Scrub: scrubOn, Step: step,
			StuckCells: stuck, DriftedCells: drifted,
			Miss: cell.Miss, InBand: cell.Miss.Rate() <= band,
			Stats: cell.Stats,
		}
		if sc != nil {
			p.Totals = sc.Totals()
		}
		pts = append(pts, p)
		prog.Printf("scrub=%-5v %s step %d/%d: stuck=%d drifted=%d miss=%.4f in-band=%v repaired=%d spared=%d\n",
			scrubOn, w.Name, step, cfg.Lifetime.Steps, stuck, drifted,
			p.Miss.Rate(), p.InBand, p.Totals.RowsRepaired, p.Totals.RowsSpared)
	}
	return pts, nil
}

// sustainedSteps counts consecutive in-band steps starting at step 0.
func sustainedSteps(pts []ScrubPoint) int {
	n := 0
	for _, p := range pts {
		if !p.InBand {
			break
		}
		n++
	}
	return n
}

// RenderScrub prints the two lifetime decay rows and the sustained-step
// verdict.
func RenderScrub(w io.Writer, res ScrubSweepResult) {
	if len(res.Points) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%s lifetime with patrol scrubbing (band = software %.4f + slack -> %.4f)\n",
		res.Workload, res.BaselineMiss, res.Band)
	arms := map[bool][]ScrubPoint{}
	for _, p := range res.Points {
		arms[p.Scrub] = append(arms[p.Scrub], p)
	}
	header := fmt.Sprintf("%-10s", "arm")
	for _, p := range arms[false] {
		header += fmt.Sprintf("  step %2d", p.Step)
	}
	fmt.Fprintln(w, header)
	for _, scrubOn := range []bool{false, true} {
		name := "scrub-off"
		if scrubOn {
			name = "scrub-on"
		}
		row := fmt.Sprintf("%-10s", name)
		for _, p := range arms[scrubOn] {
			mark := ' '
			if !p.InBand {
				mark = '*'
			}
			row += fmt.Sprintf("  %6.4f%c", p.Miss.Rate(), mark)
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintf(w, "(* = outside band)\nsustained steps in band: scrub-off=%d scrub-on=%d\n",
		res.SustainedOff, res.SustainedOn)
	if on := arms[true]; len(on) > 0 {
		t := on[len(on)-1].Totals
		fmt.Fprintf(w, "patrol totals: passes=%d patrolled=%d repaired=%d spared=%d uncorrectable=%d cells-reprogrammed=%d verify-giveups=%d\n",
			t.Passes, t.RowsPatrolled, t.RowsRepaired, t.RowsSpared,
			t.RowsUncorrectable, t.CellsReprogrammed, t.Verify.GaveUp)
	}
}

// WriteScrubCSV emits both arms' lifetime points as CSV.
func WriteScrubCSV(w io.Writer, res ScrubSweepResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "scrub", "step", "stuck_cells", "drifted_cells",
		"miss", "halfwidth95", "in_band", "rows_repaired", "rows_spared",
		"rows_uncorrectable", "cells_reprogrammed", "verify_giveups"}); err != nil {
		return err
	}
	for _, p := range res.Points {
		rec := []string{
			p.Workload, strconv.FormatBool(p.Scrub), strconv.Itoa(p.Step),
			strconv.Itoa(p.StuckCells), strconv.Itoa(p.DriftedCells),
			fmt.Sprintf("%.6f", p.Miss.Rate()),
			fmt.Sprintf("%.6f", p.Miss.HalfWidth95()),
			strconv.FormatBool(p.InBand),
			strconv.FormatUint(p.Totals.RowsRepaired, 10),
			strconv.FormatUint(p.Totals.RowsSpared, 10),
			strconv.FormatUint(p.Totals.RowsUncorrectable, 10),
			strconv.FormatUint(p.Totals.CellsReprogrammed, 10),
			strconv.FormatUint(p.Totals.Verify.GaveUp, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
