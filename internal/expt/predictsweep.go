package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/accel"
	"repro/internal/predict"
)

// SweepRow is one measured Monte-Carlo cell parsed from a results CSV
// (the files mnnsim figures writes).
type SweepRow struct {
	Workload  string
	Scheme    string
	Bits      int
	Miss      float64
	Halfwidth float64 // 95% confidence halfwidth of Miss
	Drift     float64
}

// LoadSweepCSV parses a fig10/fig11-style results CSV into sweep rows.
func LoadSweepCSV(path string) ([]SweepRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	recs, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("expt: parsing %s: %w", path, err)
	}
	if len(recs) < 2 {
		return nil, fmt.Errorf("expt: %s has no data rows", path)
	}
	col := make(map[string]int, len(recs[0]))
	for i, name := range recs[0] {
		col[strings.TrimSpace(name)] = i
	}
	for _, need := range []string{"workload", "scheme", "bits", "miss", "halfwidth95", "drift"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("expt: %s lacks column %q", path, need)
		}
	}
	var rows []SweepRow
	for _, rec := range recs[1:] {
		bits, err := strconv.Atoi(rec[col["bits"]])
		if err != nil {
			return nil, fmt.Errorf("expt: %s bits column: %w", path, err)
		}
		var vals [3]float64
		for i, name := range []string{"miss", "halfwidth95", "drift"} {
			if vals[i], err = strconv.ParseFloat(rec[col[name]], 64); err != nil {
				return nil, fmt.Errorf("expt: %s %s column: %w", path, name, err)
			}
		}
		rows = append(rows, SweepRow{
			Workload: rec[col["workload"]], Scheme: rec[col["scheme"]], Bits: bits,
			Miss: vals[0], Halfwidth: vals[1], Drift: vals[2],
		})
	}
	return rows, nil
}

// PredictorRow is one predicted-vs-measured validation cell.
type PredictorRow struct {
	Workload       string
	Scheme         string
	Bits           int
	FailureRate    float64
	MeasuredMiss   float64
	PredictedMiss  float64
	Halfwidth      float64
	MeasuredDrift  float64
	PredictedDrift float64
}

// MissError is the signed predicted-minus-measured miss gap.
func (r PredictorRow) MissError() float64 { return r.PredictedMiss - r.MeasuredMiss }

// PredictorValidationOptions drive one predicted-vs-measured comparison.
type PredictorValidationOptions struct {
	Train TrainOptions
	// Rows are the measured Monte-Carlo cells to predict (from
	// LoadSweepCSV); Software rows are skipped.
	Rows []SweepRow
	// FailureRate is the stuck-cell rate the measured sweep ran under
	// (0 for fig10, 0.001 for fig11).
	FailureRate float64
	// Workloads filters by name (empty = all rows).
	Workloads []string
	// Images is the calibration image budget (0 = the full test set).
	Images int
	// Seed must match the measured sweep's seed so the analytic model
	// enumerates the same fault populations and code tables.
	Seed     uint64
	Retries  int
	Progress Progress
}

// RunPredictorValidation maps each measured sweep cell's exact accelerator
// configuration (same scheme, cell precision, failure rate, and seeds as the
// Monte-Carlo sweep), runs the analytic moment propagator over it, and
// returns predicted-vs-measured rows. No Monte-Carlo inference happens here:
// the measured side comes from Rows, the predicted side from one calibration
// pass per workload plus one Moments enumeration per cell.
func RunPredictorValidation(opt PredictorValidationOptions) ([]PredictorRow, error) {
	if len(opt.Rows) == 0 {
		return nil, fmt.Errorf("expt: predictor validation needs measured rows")
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	workloads, err := DigitWorkloads(opt.Train)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]Workload, len(workloads))
	for _, w := range workloads {
		byName[w.Name] = w
	}
	schemes := make(map[string]accel.Scheme)
	for _, s := range FigureSchemes() {
		schemes[s.Name] = s
	}
	wanted := func(name string) bool {
		if len(opt.Workloads) == 0 {
			return true
		}
		for _, w := range opt.Workloads {
			if strings.EqualFold(w, name) {
				return true
			}
		}
		return false
	}

	cals := make(map[string]*predict.Calibration)
	var out []PredictorRow
	for _, row := range opt.Rows {
		if row.Scheme == SchemeSoftware || !wanted(row.Workload) {
			continue
		}
		w, ok := byName[row.Workload]
		if !ok {
			return nil, fmt.Errorf("expt: sweep row references unknown workload %q", row.Workload)
		}
		sch, ok := schemes[row.Scheme]
		if !ok {
			return nil, fmt.Errorf("expt: sweep row references unknown scheme %q", row.Scheme)
		}
		cal := cals[row.Workload]
		if cal == nil {
			if cal, err = predict.Calibrate(w.Net, clipTest(w.Test, opt.Images), accel.DefaultConfig(sch).InputBits); err != nil {
				return nil, err
			}
			cals[row.Workload] = cal
		}

		// Rebuild the measured cell's engine bit for bit: EvaluateScheme's
		// configuration with the sweep's device and seed.
		acfg := accel.DefaultConfig(sch)
		acfg.Device.BitsPerCell = row.Bits
		acfg.Device.FailureRate = opt.FailureRate
		if opt.Retries > 0 {
			acfg.Retries = opt.Retries
		}
		acfg.Seed = opt.Seed
		eng, err := accel.Map(w.Net, acfg)
		if err != nil {
			return nil, fmt.Errorf("expt: mapping %s %d-bit %s: %w", row.Workload, row.Bits, row.Scheme, err)
		}
		var noises []predict.LayerNoise
		for _, li := range eng.Layers() {
			ln, err := cal.NoiseFromMoments(li, eng.Mapped(li).Moments(cal.Alphas(li)))
			if err != nil {
				return nil, err
			}
			noises = append(noises, ln)
		}
		p := cal.Predict(noises)
		out = append(out, PredictorRow{
			Workload: row.Workload, Scheme: row.Scheme, Bits: row.Bits,
			FailureRate:  opt.FailureRate,
			MeasuredMiss: row.Miss, PredictedMiss: p.Miss, Halfwidth: row.Halfwidth,
			MeasuredDrift: row.Drift, PredictedDrift: p.Drift,
		})
		opt.Progress.Printf("%s %d-bit %-10s measured=%.4f predicted=%.4f drift %.4f/%.4f\n",
			row.Workload, row.Bits, row.Scheme, row.Miss, p.Miss, row.Drift, p.Drift)
	}
	return out, nil
}

// WritePredictorCSV renders validation rows as CSV.
func WritePredictorCSV(w io.Writer, rows []PredictorRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "scheme", "bits", "failure_rate",
		"measured_miss", "predicted_miss", "halfwidth95", "measured_drift", "predicted_drift"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Workload, r.Scheme, strconv.Itoa(r.Bits),
			strconv.FormatFloat(r.FailureRate, 'g', -1, 64),
			strconv.FormatFloat(r.MeasuredMiss, 'f', 6, 64),
			strconv.FormatFloat(r.PredictedMiss, 'f', 6, 64),
			strconv.FormatFloat(r.Halfwidth, 'f', 6, 64),
			strconv.FormatFloat(r.MeasuredDrift, 'e', 6, 64),
			strconv.FormatFloat(r.PredictedDrift, 'e', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
