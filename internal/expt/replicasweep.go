package expt

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/accel"
	"repro/internal/fault"
	"repro/internal/hwmodel"
	"repro/internal/noise"
	"repro/internal/replica"
	"repro/internal/serve"
	"repro/internal/stats"
)

// ReplicaSweepConfig drives the closed-loop spatial-redundancy study: the
// same seeded wear-out campaign damages the primary copy while a serving
// pool with R = 1, 2, 3 replicas answers live traffic through its recovery
// ladder. The question is what the extra copies buy — accuracy and crossbar
// availability over the lifetime — against their honest R× area/energy
// price.
type ReplicaSweepConfig struct {
	Device  noise.DeviceParams
	Scheme  accel.Scheme
	Retries int
	Images  int // test images evaluated per lifetime step (0 = all)
	Seed    uint64
	// Replicas are the R values swept (default 1, 2, 3).
	Replicas []int
	// VoteThreshold is the consecutive-flag count at which a layer's reads
	// majority-vote across 3 replicas (0 disables voting).
	VoteThreshold int
	// SpareRows per array, so repairs have somewhere to retire rows
	// (default 8).
	SpareRows int
	Lifetime  fault.LifetimeParams
}

// ReplicaPoint is one (R, lifetime step) measurement.
type ReplicaPoint struct {
	Workload string
	Replicas int
	Step     int
	Miss     stats.Counter
	// ServeErrors counts requests answered with an error — the 5xx budget,
	// which spatial redundancy must keep at zero.
	ServeErrors int
	// SoftAnswers counts requests that needed the software fallback for at
	// least one layer; Availability is its complement — the fraction served
	// entirely from crossbars.
	SoftAnswers    int
	Availability   float64
	DegradedLayers int
	// Cumulative ladder and router activity at the end of this step.
	Failovers     uint64
	Degrades      uint64
	Votes         uint64
	Disagreements uint64
	// AreaMM2 / PowerMW are the replicated floorplan bill (constant per R).
	AreaMM2 float64
	PowerMW float64
	// EnergyPerImageJ is the measured read-path energy per image at this
	// step (row reads and group reads across every replica consulted).
	EnergyPerImageJ float64
}

// RunReplicaSweep runs the same lifetime campaign against pools of
// increasing replication. Traffic, campaign schedule, and per-image noise
// streams are all seed-derived, so a run is exactly replayable.
func RunReplicaSweep(w Workload, cfg ReplicaSweepConfig, prog Progress) ([]ReplicaPoint, error) {
	if cfg.Lifetime.Steps <= 0 {
		return nil, fmt.Errorf("expt: replica sweep needs Lifetime.Steps >= 1")
	}
	rs := cfg.Replicas
	if len(rs) == 0 {
		rs = []int{1, 2, 3}
	}
	if cfg.SpareRows == 0 {
		cfg.SpareRows = 8
	}
	test := clipTest(w.Test, cfg.Images)
	tech := hwmodel.Default32nm()
	energy := tech.Energy(hwmodel.DefaultECUSpec(), hwmodel.DefaultLatencyModel().ClockHz)

	var points []ReplicaPoint
	for _, r := range rs {
		acfg := accel.DefaultConfig(cfg.Scheme)
		acfg.Device = cfg.Device
		if cfg.Retries > 0 {
			acfg.Retries = cfg.Retries
		}
		acfg.Seed = cfg.Seed
		acfg.SpareRows = cfg.SpareRows
		eng, err := accel.Map(w.Net, acfg)
		if err != nil {
			return nil, fmt.Errorf("expt: mapping %s for R=%d: %w", w.Name, r, err)
		}
		mon := fault.MonitorConfig{Window: 2048, MinReads: 64, TripRate: 0.05}
		sched, err := serve.NewScheduler(eng, serve.Config{
			Workers: 1, QueueDepth: 16, TopK: 1,
			Recovery: serve.RecoveryConfig{
				Enabled: true, Monitor: mon,
				RetryAttempts: 1, RetryBackoff: -1,
			},
			Replicas: replica.Config{N: r, VoteThreshold: cfg.VoteThreshold, Monitor: mon},
		})
		if err != nil {
			return nil, err
		}
		// The campaign wears out the primary copy only — the chaos scenario
		// of one replica aging ahead of its siblings. With R=1 that copy is
		// all there is.
		runner, err := fault.NewRunner(fault.LifetimeCampaign(cfg.Seed, eng.Layers(), cfg.Lifetime), eng)
		if err != nil {
			return nil, err
		}
		fp := tech.PlanReplicatedNetwork(eng.PhysicalRows, eng.NumGroups(), hwmodel.DefaultTileConfig(), hwmodel.DefaultECUSpec(), r)

		ctx := context.Background()
		for step := 0; step <= cfg.Lifetime.Steps; step++ {
			if step > 0 {
				if _, err := runner.Advance(step); err != nil {
					return nil, err
				}
			}
			p := ReplicaPoint{Workload: w.Name, Replicas: r, Step: step,
				AreaMM2: fp.Area.AreaMM2, PowerMW: fp.Area.PowerMW}
			var reads hwmodel.ReadCounts
			streamBase := cfg.Seed*100_000 + uint64(step)*1_000_000_000
			for i, ex := range test {
				pred, err := sched.Predict(ctx, ex.Input, streamBase+uint64(i)+1, 1)
				if err != nil {
					p.ServeErrors++
					continue
				}
				p.Miss.AddOutcome(pred.Class != ex.Label)
				if pred.Stats.SoftMVMs > 0 {
					p.SoftAnswers++
				}
				reads.RowReads += pred.Stats.RowReads
				reads.GroupReads += pred.Stats.GroupReads()
				reads.Retries += pred.Stats.Retries
			}
			if n := len(test); n > 0 {
				p.Availability = float64(n-p.SoftAnswers-p.ServeErrors) / float64(n)
				p.EnergyPerImageJ = energy.InferenceEnergy(reads) / float64(n)
			}
			p.DegradedLayers = len(eng.DegradedLayers())
			rc := sched.RecoveryCounters()
			p.Failovers, p.Degrades = rc.Failovers, rc.Degrades
			if set := sched.ReplicaSet(); set != nil {
				st := set.Status()
				p.Votes, p.Disagreements = st.Votes, st.Disagreements
			}
			points = append(points, p)
			prog.Printf("replicas %s R=%d step %d/%d: miss=%.4f avail=%.4f degraded=%d failovers=%d degrades=%d\n",
				w.Name, r, step, cfg.Lifetime.Steps, p.Miss.Rate(), p.Availability, p.DegradedLayers, p.Failovers, p.Degrades)
		}
		if _, err := sched.Close(ctx); err != nil {
			return nil, err
		}
	}
	return points, nil
}

// RenderReplicas prints the R-sweep summary: accuracy and availability per
// lifetime step per R, then the hardware bill.
func RenderReplicas(w io.Writer, points []ReplicaPoint) {
	if len(points) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%s spatial-redundancy sweep (campaign wears the primary copy)\n", points[0].Workload)
	fmt.Fprintf(w, "%-3s %-5s %8s %8s %9s %10s %9s %9s %6s\n",
		"R", "step", "miss", "avail", "degraded", "failovers", "degrades", "votes", "5xx")
	last := map[int]ReplicaPoint{}
	for _, p := range points {
		fmt.Fprintf(w, "%-3d %-5d %8.4f %8.4f %9d %10d %9d %9d %6d\n",
			p.Replicas, p.Step, p.Miss.Rate(), p.Availability, p.DegradedLayers,
			p.Failovers, p.Degrades, p.Votes, p.ServeErrors)
		last[p.Replicas] = p
	}
	var base ReplicaPoint
	if b, ok := last[1]; ok {
		base = b
	}
	fmt.Fprintf(w, "\nhardware bill (honest R× cost):\n")
	fmt.Fprintf(w, "%-3s %12s %12s %16s %10s %10s\n", "R", "area mm^2", "power mW", "energy/img J", "area x", "energy x")
	for _, p := range points {
		if p.Step != 0 {
			continue
		}
		ax, ex := 1.0, 1.0
		if base.AreaMM2 > 0 {
			ax = p.AreaMM2 / base.AreaMM2
		}
		lb := last[p.Replicas]
		if b, ok := last[1]; ok && b.EnergyPerImageJ > 0 {
			ex = lb.EnergyPerImageJ / b.EnergyPerImageJ
		}
		fmt.Fprintf(w, "%-3d %12.3f %12.1f %16.3e %9.2fx %9.2fx\n",
			p.Replicas, p.AreaMM2, p.PowerMW, lb.EnergyPerImageJ, ax, ex)
	}
}

// WriteReplicasCSV emits the sweep points as CSV.
func WriteReplicasCSV(w io.Writer, points []ReplicaPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "replicas", "step", "miss", "halfwidth95",
		"availability", "soft_answers", "serve_errors", "degraded_layers",
		"failovers", "degrades", "votes", "disagreements",
		"area_mm2", "power_mw", "energy_per_image_j"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			p.Workload, strconv.Itoa(p.Replicas), strconv.Itoa(p.Step),
			fmt.Sprintf("%.6f", p.Miss.Rate()),
			fmt.Sprintf("%.6f", p.Miss.HalfWidth95()),
			fmt.Sprintf("%.6f", p.Availability),
			strconv.Itoa(p.SoftAnswers),
			strconv.Itoa(p.ServeErrors),
			strconv.Itoa(p.DegradedLayers),
			strconv.FormatUint(p.Failovers, 10),
			strconv.FormatUint(p.Degrades, 10),
			strconv.FormatUint(p.Votes, 10),
			strconv.FormatUint(p.Disagreements, 10),
			fmt.Sprintf("%.4f", p.AreaMM2),
			fmt.Sprintf("%.2f", p.PowerMW),
			fmt.Sprintf("%.6e", p.EnergyPerImageJ),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
