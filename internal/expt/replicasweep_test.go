package expt

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/fault"
)

func replicaSweepConfig() ReplicaSweepConfig {
	return ReplicaSweepConfig{
		Device:   defaultDevice(2),
		Scheme:   accel.SchemeABN(8),
		Images:   20,
		Seed:     7,
		Replicas: []int{1, 2},
		// A stuck-heavy campaign: drift can be remapped away, stuck cells
		// are what force the spatial-vs-software choice this sweep studies.
		Lifetime: fault.LifetimeParams{
			Steps:        2,
			StuckPerStep: 0.002,
			LRSFrac:      1.0,
			DriftEvery:   1,
			DriftRate:    0.002,
			DriftDelta:   1,
		},
		SpareRows: 4,
	}
}

// TestReplicaSweepDeterministic: every point of the R-sweep — accuracy,
// availability, ladder counters, energy — is a pure function of
// (workload, config); two back-to-back runs must be identical.
func TestReplicaSweepDeterministic(t *testing.T) {
	w := tinyWorkload(t)
	cfg := replicaSweepConfig()
	a, err := RunReplicaSweep(w, cfg, Progress{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReplicaSweep(w, cfg, Progress{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replica sweep not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestReplicaSweepRedundancyHoldsAvailability is the headline claim: under
// a campaign that wears the primary copy, the replicated pool keeps every
// answer on crossbars (availability 1.0, zero degrades, zero 5xx) by
// failing over spatially, while paying an honest 2x area bill.
func TestReplicaSweepRedundancyHoldsAvailability(t *testing.T) {
	if testing.Short() {
		t.Skip("replica sweep: skipped in -short")
	}
	w := tinyWorkload(t)
	cfg := replicaSweepConfig()
	cfg.Lifetime.StuckPerStep = 0.02 // age the primary hard
	points, err := RunReplicaSweep(w, cfg, Progress{})
	if err != nil {
		t.Fatal(err)
	}
	last := map[int]ReplicaPoint{}
	for _, p := range points {
		if p.ServeErrors != 0 {
			t.Fatalf("R=%d step %d served %d errors — the 5xx budget is zero", p.Replicas, p.Step, p.ServeErrors)
		}
		last[p.Replicas] = p
	}
	r1, r2 := last[1], last[2]
	if r2.Availability != 1.0 || r2.Degrades != 0 || r2.DegradedLayers != 0 {
		t.Fatalf("R=2 should hold full crossbar availability: %+v", r2)
	}
	if r2.Failovers == 0 {
		t.Fatal("R=2 absorbed the campaign without a single spatial failover — damage never landed")
	}
	// The same damage with no sibling must cost the single copy something:
	// degraded layers (the usual outcome) or at least ladder degrades.
	if r1.DegradedLayers == 0 && r1.Degrades == 0 {
		t.Fatalf("R=1 survived a campaign meant to overwhelm it: %+v", r1)
	}
	if got, want := r2.AreaMM2, 2*r1.AreaMM2; got != want {
		t.Fatalf("R=2 area %g, want the honest 2x bill %g", got, want)
	}
}

// TestReplicaSweepRendering: table and CSV writers cover every (R, step).
func TestReplicaSweepRendering(t *testing.T) {
	w := tinyWorkload(t)
	cfg := replicaSweepConfig()
	cfg.Lifetime.Steps = 1
	cfg.Images = 10
	points, err := RunReplicaSweep(w, cfg, Progress{})
	if err != nil {
		t.Fatal(err)
	}
	var tbl bytes.Buffer
	RenderReplicas(&tbl, points)
	for _, want := range []string{"spatial-redundancy sweep", "hardware bill", "failovers"} {
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, tbl.String())
		}
	}
	var csvBuf bytes.Buffer
	if err := WriteReplicasCSV(&csvBuf, points); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(csvBuf.String()), "\n")
	if want := len(points); lines != want {
		t.Fatalf("csv rows = %d, want %d", lines, want)
	}
}
