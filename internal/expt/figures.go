package expt

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/circuit"
	"repro/internal/hwmodel"
	"repro/internal/noise"
)

// SweepOptions control the misclassification sweeps of Figures 10 and 11.
type SweepOptions struct {
	Train    TrainOptions
	Device   noise.DeviceParams
	Bits     []int
	Images   int
	Seed     uint64
	Workers  int
	Retries  int
	Progress Progress
}

// DefaultSweepOptions returns the paper's sweep shape at a laptop-scale
// image budget.
func DefaultSweepOptions() SweepOptions {
	return SweepOptions{
		Train:  DefaultTrainOptions(),
		Device: noise.DefaultDeviceParams(),
		Bits:   []int{1, 2, 3, 4, 5},
		Images: 300,
		Seed:   1,
	}
}

// RunFig10 reproduces Figure 10: misclassification of MLP1/MLP2/CNN1 over
// 1-5 bits per cell under every scheme, fault-free.
func RunFig10(opt SweepOptions) ([]CellResult, error) {
	opt.Device.FailureRate = 0
	return runSweep(opt)
}

// RunFig11 reproduces Figure 11: the same sweep with 0.1% stuck-at cell
// faults (Table I failure rate).
func RunFig11(opt SweepOptions) ([]CellResult, error) {
	opt.Device.FailureRate = 0.001
	return runSweep(opt)
}

func runSweep(opt SweepOptions) ([]CellResult, error) {
	workloads, err := DigitWorkloads(opt.Train)
	if err != nil {
		return nil, err
	}
	var out []CellResult
	for _, w := range workloads {
		sw := EvaluateSoftware(w, opt.Images, 0)
		out = append(out, sw)
		opt.Progress.Printf("%s software miss=%.4f\n", w.Name, sw.MissRate())
		for _, bits := range opt.Bits {
			dev := opt.Device
			dev.BitsPerCell = bits
			for _, sch := range FigureSchemes() {
				cell, err := EvaluateScheme(w, EvalConfig{
					Device: dev, Scheme: sch, Retries: opt.Retries,
					Images: opt.Images, Seed: opt.Seed, Workers: opt.Workers,
				})
				if err != nil {
					return nil, err
				}
				out = append(out, cell)
				opt.Progress.Printf("%s %d-bit %-10s miss=%.4f (rowErr=%.2e corr=%d det=%d)\n",
					w.Name, bits, sch.Name, cell.MissRate(), cell.Stats.RowErrorRate(),
					cell.Stats.Corrected, cell.Stats.Detected)
			}
		}
	}
	return out, nil
}

// Fig12Point is one sensitivity cell of Figure 12.
type Fig12Point struct {
	Knob  string // "deltaR" or "prtn"
	Value float64
	Cells []CellResult
}

// RunFig12 reproduces Figure 12: MLP1 at 2 bits per cell, sweeping the RTN
// amplitude (RLo DeltaR/R, which scales both the Ielmini curve and the
// giant-event amplitude proportionally) and the RTN error-state probability
// (scaling both the background occupancy and the giant flicker rate).
func RunFig12(opt SweepOptions) ([]Fig12Point, error) {
	workloads, err := DigitWorkloads(opt.Train)
	if err != nil {
		return nil, err
	}
	var mlp1 Workload
	for _, w := range workloads {
		if w.Name == "MLP1" {
			mlp1 = w
		}
	}
	if mlp1.Net == nil {
		return nil, fmt.Errorf("expt: MLP1 workload missing")
	}
	base := opt.Device
	base.BitsPerCell = 2
	var out []Fig12Point
	for _, frac := range []float64{0.014, 0.021, 0.028, 0.035, 0.042} {
		dev := base
		scale := frac / 0.028
		dev.DeltaRLoFrac = frac
		dev.GiantDeltaR = clamp01(base.GiantDeltaR * scale)
		p, err := fig12Point(mlp1, dev, "deltaR", frac, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	for _, prob := range []float64{0.17, 0.22, 0.27, 0.32, 0.37} {
		dev := base
		scale := prob / 0.27
		dev.PRTN = prob
		dev.GiantFlickerProb = clamp01(base.GiantFlickerProb * scale)
		p, err := fig12Point(mlp1, dev, "prtn", prob, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func clamp01(x float64) float64 {
	if x > 0.999 {
		return 0.999
	}
	return x
}

func fig12Point(w Workload, dev noise.DeviceParams, knob string, val float64, opt SweepOptions) (Fig12Point, error) {
	pt := Fig12Point{Knob: knob, Value: val}
	pt.Cells = append(pt.Cells, EvaluateSoftware(w, opt.Images, 0))
	for _, sch := range FigureSchemes() {
		cell, err := EvaluateScheme(w, EvalConfig{
			Device: dev, Scheme: sch, Retries: opt.Retries,
			Images: opt.Images, Seed: opt.Seed, Workers: opt.Workers,
		})
		if err != nil {
			return pt, err
		}
		pt.Cells = append(pt.Cells, cell)
		opt.Progress.Printf("fig12 %s=%.3g %-10s miss=%.4f\n", knob, val, sch.Name, cell.MissRate())
	}
	return pt, nil
}

// Table3Result reproduces Table III for the AlexNet stand-in.
type Table3Result struct {
	Software, Uncorrected, ABN9 CellResult
}

// RunTable3 evaluates MiniAlexNet at the paper's single design point:
// 2 bits per cell, 9 ECC bits, top-1 and top-5 misclassification.
func RunTable3(opt SweepOptions) (Table3Result, error) {
	w, err := ObjectWorkload(opt.Train)
	if err != nil {
		return Table3Result{}, err
	}
	dev := opt.Device
	dev.BitsPerCell = 2
	var res Table3Result
	res.Software = EvaluateSoftware(w, opt.Images, 5)
	opt.Progress.Printf("table3 software top1=%.4f top5=%.4f\n",
		res.Software.Miss.Rate(), res.Software.MissTopK.Rate())
	res.Uncorrected, err = EvaluateScheme(w, EvalConfig{
		Device: dev, Scheme: accel.SchemeNoECC(), Retries: opt.Retries,
		Images: opt.Images, Seed: opt.Seed, Workers: opt.Workers, TopK: 5,
	})
	if err != nil {
		return res, err
	}
	opt.Progress.Printf("table3 uncorrected top1=%.4f top5=%.4f\n",
		res.Uncorrected.Miss.Rate(), res.Uncorrected.MissTopK.Rate())
	res.ABN9, err = EvaluateScheme(w, EvalConfig{
		Device: dev, Scheme: accel.SchemeABN(9), Retries: opt.Retries,
		Images: opt.Images, Seed: opt.Seed, Workers: opt.Workers, TopK: 5,
	})
	if err != nil {
		return res, err
	}
	opt.Progress.Printf("table3 ABN-9 top1=%.4f top5=%.4f\n",
		res.ABN9.Miss.Rate(), res.ABN9.MissTopK.Rate())
	return res, nil
}

// RunFig7 executes the Figure 7 row transient.
func RunFig7(cfg circuit.Config) (*circuit.Result, error) {
	return circuit.Run(cfg)
}

// RunTable4 evaluates the hardware model.
func RunTable4() hwmodel.Overheads {
	return hwmodel.ComputeOverheads(hwmodel.Default32nm(), hwmodel.DefaultTileConfig(), hwmodel.DefaultECUSpec())
}
