package expt

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/accel"
)

func scrubSweepConfig() ScrubSweepConfig {
	return ScrubSweepConfig{
		Device:      defaultDevice(2),
		Scheme:      accel.SchemeABN(8),
		Images:      30,
		Seed:        7,
		Workers:     2,
		Lifetime:    DefaultScrubLifetime(4),
		SpareRows:   4,
		VerifyIters: 5,
		BandSlack:   0.05,
	}
}

// TestScrubSweepDeterministic: the full two-arm result — every point, both
// sustained-step counts, and the patrol totals — is a pure function of
// (workload, config).
func TestScrubSweepDeterministic(t *testing.T) {
	w := tinyWorkload(t)
	cfg := scrubSweepConfig()
	cfg.Lifetime = DefaultScrubLifetime(2)
	a, err := RunScrubSweep(w, cfg, Progress{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScrubSweep(w, cfg, Progress{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scrub sweep not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestScrubSweepOnOutlastsOff: under the drift-heavy default campaign the
// patrol arm stays in the software baseline band strictly longer than the
// open-loop arm — the headline claim of the scrub experiment.
func TestScrubSweepOnOutlastsOff(t *testing.T) {
	w := tinyWorkload(t)
	cfg := scrubSweepConfig()
	cfg.Lifetime.DriftRate = 0.10 // age fast so the off arm leaves the band
	res, err := RunScrubSweep(w, cfg, Progress{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SustainedOn <= res.SustainedOff {
		t.Fatalf("scrub-on should outlast scrub-off: on=%d off=%d\n%+v",
			res.SustainedOn, res.SustainedOff, res.Points)
	}
	// The patrol arm must actually have repaired something to earn it.
	var on *ScrubPoint
	for i := range res.Points {
		if res.Points[i].Scrub && res.Points[i].Step == cfg.Lifetime.Steps {
			on = &res.Points[i]
		}
	}
	if on == nil || on.Totals.CellsReprogrammed == 0 {
		t.Fatalf("scrub arm reported no repairs: %+v", on)
	}
}

// TestScrubSweepRendering: table and CSV writers cover both arms.
func TestScrubSweepRendering(t *testing.T) {
	w := tinyWorkload(t)
	cfg := scrubSweepConfig()
	cfg.Lifetime = DefaultScrubLifetime(1)
	cfg.Images = 15
	res, err := RunScrubSweep(w, cfg, Progress{})
	if err != nil {
		t.Fatal(err)
	}
	var tbl bytes.Buffer
	RenderScrub(&tbl, res)
	for _, want := range []string{"scrub-off", "scrub-on", "sustained steps"} {
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, tbl.String())
		}
	}
	var csvBuf bytes.Buffer
	if err := WriteScrubCSV(&csvBuf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(csvBuf.String()), "\n")
	if want := len(res.Points); lines != want {
		t.Fatalf("csv rows = %d, want %d", lines, want)
	}
}
