package expt

import (
	"os"
	"testing"

	"repro/internal/accel"
	"repro/internal/fault"
	"repro/internal/noise"
	"repro/internal/persist"
)

func campaignFixture(t *testing.T, w Workload) (*accel.Engine, *fault.Runner, fault.LifetimeParams) {
	t.Helper()
	acfg := accel.DefaultConfig(accel.SchemeABN(8))
	acfg.Device.BitsPerCell = 2
	acfg.Seed = 11
	eng, err := accel.Map(w.Net, acfg)
	if err != nil {
		t.Fatal(err)
	}
	life := fault.LifetimeParams{Steps: 3, StuckPerStep: 0.002, DriftEvery: 1, DriftRate: 0.002}
	runner, err := fault.NewRunner(fault.LifetimeCampaign(11, eng.Layers(), life), eng)
	if err != nil {
		t.Fatal(err)
	}
	return eng, runner, life
}

// TestCampaignCheckpointResume: checkpoint an aged engine mid-campaign,
// resume onto a freshly-mapped twin, and the twin carries the same fault
// population and cursor; a checkpoint from a different campaign is refused
// with the twin left pristine.
func TestCampaignCheckpointResume(t *testing.T) {
	w := tinyWorkload(t)
	dir := t.TempDir()

	eng, runner, life := campaignFixture(t, w)
	for step := 1; step <= 2; step++ {
		if _, err := runner.Advance(step); err != nil {
			t.Fatal(err)
		}
	}
	if err := checkpointCampaign(dir, w.Name, eng, runner, 2); err != nil {
		t.Fatal(err)
	}

	twin, twinRunner, _ := campaignFixture(t, w)
	from, err := resumeCampaign(dir, twin, twinRunner)
	if err != nil {
		t.Fatal(err)
	}
	if from != 2 {
		t.Fatalf("resumed at step %d, want 2", from)
	}
	wantStuck, wantDrift := countFaults(eng)
	gotStuck, gotDrift := countFaults(twin)
	if wantStuck != gotStuck || wantDrift != gotDrift {
		t.Fatalf("resumed fault population %d/%d, want %d/%d", gotStuck, gotDrift, wantStuck, wantDrift)
	}
	if twinRunner.Snapshot() != runner.Snapshot() {
		t.Fatalf("resumed cursor %+v, want %+v", twinRunner.Snapshot(), runner.Snapshot())
	}
	// The remaining lifetime lands identically on both.
	if _, err := runner.Advance(life.Steps); err != nil {
		t.Fatal(err)
	}
	if _, err := twinRunner.Advance(life.Steps); err != nil {
		t.Fatal(err)
	}
	wantStuck, wantDrift = countFaults(eng)
	gotStuck, gotDrift = countFaults(twin)
	if wantStuck != gotStuck || wantDrift != gotDrift {
		t.Fatalf("post-resume trajectory diverged: %d/%d vs %d/%d", gotStuck, gotDrift, wantStuck, wantDrift)
	}

	// A cursor from a different campaign is refused before anything is
	// applied.
	other, otherRunner, _ := campaignFixture(t, w)
	otherLife := fault.LifetimeParams{Steps: 5, StuckPerStep: 0.002}
	otherRunner, err = fault.NewRunner(fault.LifetimeCampaign(99, other.Layers(), otherLife), other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumeCampaign(dir, other, otherRunner); err == nil {
		t.Fatal("foreign checkpoint resumed silently")
	}
	if s, d := countFaults(other); s != 0 || d != 0 {
		t.Fatalf("refused resume still aged the engine: %d/%d", s, d)
	}

	// A corrupt checkpoint is refused too.
	raw, err := os.ReadFile(persist.Path(dir))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x01
	if err := os.WriteFile(persist.Path(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, freshRunner, _ := campaignFixture(t, w)
	if _, err := resumeCampaign(dir, fresh, freshRunner); err == nil {
		t.Fatal("corrupt checkpoint resumed silently")
	}
}

// TestRunFaultCampaignCheckpointed: a checkpointed sweep finishes, leaves a
// loadable per-scheme checkpoint at the final step, and a re-run resumes
// past the completed work instead of re-aging the arrays.
func TestRunFaultCampaignCheckpointed(t *testing.T) {
	w := tinyWorkload(t)
	dir := t.TempDir()
	cfg := FaultSweepConfig{
		Device:   testDevice(),
		Schemes:  []accel.Scheme{accel.SchemeABN(8)},
		Images:   6,
		Seed:     5,
		Workers:  1,
		Lifetime: fault.LifetimeParams{Steps: 2, StuckPerStep: 0.002},
		StateDir: dir,
	}
	prog := Progress{}
	points, err := RunFaultCampaign(w, cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != cfg.Lifetime.Steps+1 {
		t.Fatalf("first run produced %d points, want %d", len(points), cfg.Lifetime.Steps+1)
	}
	st, err := persist.Load(dir + "/tiny-" + accel.SchemeABN(8).Name)
	if err != nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	if int(st.Scheduler.Served) != cfg.Lifetime.Steps {
		t.Fatalf("checkpoint at step %d, want %d", st.Scheduler.Served, cfg.Lifetime.Steps)
	}

	// Second run: everything is already done — resume yields no new points.
	again, err := RunFaultCampaign(w, cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("completed campaign re-measured %d points", len(again))
	}
}

// testDevice is the default device at 2 bits/cell.
func testDevice() noise.DeviceParams {
	d := noise.DefaultDeviceParams()
	d.BitsPerCell = 2
	return d
}
