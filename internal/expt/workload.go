// Package expt is the evaluation harness: it trains (or loads) the Table II
// workloads, runs the Monte-Carlo classification experiments behind
// Figures 10-12 and Table III, drives the Figure 7 transient and the
// Table IV hardware model, and renders the results as aligned text tables
// and CSV files. Every experiment is deterministic in its seed and
// parallelized over images.
package expt

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/nn"
)

// Workload is one trained network with its held-out test set.
type Workload struct {
	Name string
	Net  *nn.Network
	Test []nn.Example
}

// TrainOptions sizes the workload training runs.
type TrainOptions struct {
	Seed     uint64
	Train    int // training examples per dataset
	Test     int // held-out examples
	Epochs   int
	Classes  int // object classes for the MiniAlexNet workload
	CacheDir string
	Log      io.Writer
}

// DefaultTrainOptions returns a laptop-scale configuration.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Seed: 42, Train: 4000, Test: 1000, Epochs: 5, Classes: 40}
}

// DigitWorkloads trains (or restores from cache) the three MNIST-class
// networks of Table II: MLP1, MLP2, and CNN1 on SynthDigits.
func DigitWorkloads(opt TrainOptions) ([]Workload, error) {
	ds := dataset.SynthDigits(opt.Seed, opt.Train, opt.Test)
	nets := []*nn.Network{nn.NewMLP1(opt.Seed), nn.NewMLP2(opt.Seed), nn.NewCNN1(opt.Seed)}
	out := make([]Workload, 0, len(nets))
	for _, net := range nets {
		if err := fitOrLoad(net, ds.Train, opt); err != nil {
			return nil, err
		}
		out = append(out, Workload{Name: net.Name, Net: net, Test: ds.Test})
	}
	return out, nil
}

// ObjectWorkload trains (or restores) the AlexNet stand-in on SynthObjects.
func ObjectWorkload(opt TrainOptions) (Workload, error) {
	ds := dataset.SynthObjects(opt.Seed, opt.Classes, opt.Train, opt.Test)
	net := nn.NewMiniAlexNet(opt.Seed, opt.Classes)
	if err := fitOrLoad(net, ds.Train, opt); err != nil {
		return Workload{}, err
	}
	return Workload{Name: net.Name, Net: net, Test: ds.Test}, nil
}

// fitOrLoad restores cached weights when available, otherwise trains and
// caches.
func fitOrLoad(net *nn.Network, train []nn.Example, opt TrainOptions) error {
	var cache string
	if opt.CacheDir != "" {
		cache = filepath.Join(opt.CacheDir, fmt.Sprintf("%s-s%d-n%d-e%d.gob",
			net.Name, opt.Seed, len(train), opt.Epochs))
		if err := net.LoadWeights(cache); err == nil {
			if opt.Log != nil {
				fmt.Fprintf(opt.Log, "%s: loaded cached weights from %s\n", net.Name, cache)
			}
			return nil
		}
	}
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = opt.Epochs
	cfg.Seed = opt.Seed
	cfg.Log = opt.Log
	if net.Name == "MiniAlexNet" {
		// The deep stand-in diverges at the MLP learning rate.
		cfg.LR = 0.01
		cfg.BatchSize = 16
	}
	nn.Train(net, train, cfg)
	if cache != "" {
		if err := os.MkdirAll(opt.CacheDir, 0o755); err != nil {
			return err
		}
		if err := net.SaveWeights(cache); err != nil {
			return err
		}
	}
	return nil
}
