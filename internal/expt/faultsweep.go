package expt

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/accel"
	"repro/internal/crossbar"
	"repro/internal/fault"
	"repro/internal/noise"
	"repro/internal/persist"
	"repro/internal/stats"
)

// FaultSweepConfig drives an open-loop lifetime study: a deterministic
// wear-out campaign degrades the mapped arrays step by step while the test
// set is re-evaluated at each step, with no recovery acting — the question
// is how each protection scheme's accuracy decays as the device ages.
type FaultSweepConfig struct {
	Device   noise.DeviceParams
	Schemes  []accel.Scheme
	Retries  int
	Images   int // test images evaluated per lifetime step (0 = all)
	Seed     uint64
	Workers  int // 0 = GOMAXPROCS
	Lifetime fault.LifetimeParams
	// StateDir, when set, checkpoints each scheme's aged arrays and campaign
	// cursor there after every lifetime step, and resumes an interrupted
	// campaign from the last completed step at the next run. A refused
	// checkpoint (corrupt, version-mismatched, or from a different
	// configuration) restarts that scheme from step 0, loudly.
	StateDir string
}

// FaultPoint is one (scheme, lifetime step) measurement.
type FaultPoint struct {
	Workload string
	Scheme   string
	Step     int
	// StuckCells and DriftedCells are the cumulative fault population
	// across every array of the mapped network at this step.
	StuckCells   int
	DriftedCells int
	Miss         stats.Counter
	// DetectedRate is the fraction of group reads the ECU flagged
	// detected-but-uncorrectable at this step — the health signal the
	// online monitor would trip on.
	DetectedRate float64
	Stats        accel.Stats
}

// RunFaultCampaign sweeps every scheme through the same seeded wear-out
// schedule. Step 0 is the pristine baseline; each later step applies that
// step's campaign events and re-measures. The campaign seed, event
// schedule, and per-image noise streams are all deterministic, so a run is
// exactly replayable from (workload, config).
func RunFaultCampaign(w Workload, cfg FaultSweepConfig, prog Progress) ([]FaultPoint, error) {
	if cfg.Lifetime.Steps <= 0 {
		return nil, fmt.Errorf("expt: fault campaign needs Lifetime.Steps >= 1")
	}
	var points []FaultPoint
	for _, sch := range cfg.Schemes {
		acfg := accel.DefaultConfig(sch)
		acfg.Device = cfg.Device
		if cfg.Retries > 0 {
			acfg.Retries = cfg.Retries
		}
		acfg.Seed = cfg.Seed
		eng, err := accel.Map(w.Net, acfg)
		if err != nil {
			return nil, fmt.Errorf("expt: mapping %s under %s: %w", w.Name, sch.Name, err)
		}
		runner, err := fault.NewRunner(fault.LifetimeCampaign(cfg.Seed, eng.Layers(), cfg.Lifetime), eng)
		if err != nil {
			return nil, err
		}
		evalCfg := EvalConfig{Scheme: sch, Images: cfg.Images, Seed: cfg.Seed, Workers: cfg.Workers}
		startStep := 0
		var stateDir string
		if cfg.StateDir != "" {
			stateDir = filepath.Join(cfg.StateDir, w.Name+"-"+sch.Name)
			if from, err := resumeCampaign(stateDir, eng, runner); err != nil {
				if !errors.Is(err, os.ErrNotExist) {
					prog.Printf("faults %s %s: CHECKPOINT REFUSED (%v) — restarting from step 0\n", w.Name, sch.Name, err)
				}
			} else {
				startStep = from + 1
				prog.Printf("faults %s %s: resumed from checkpoint at step %d\n", w.Name, sch.Name, from)
			}
		}
		for step := startStep; step <= cfg.Lifetime.Steps; step++ {
			if step > 0 {
				if _, err := runner.Advance(step); err != nil {
					return nil, err
				}
			}
			// Distinct noise-stream block per step so the Monte-Carlo
			// draws are independent across the lifetime.
			cell := runEval(eng, w, evalCfg, cfg.Seed*100_000+uint64(step)*1_000_000_000)
			stuck, drifted := countFaults(eng)
			p := FaultPoint{
				Workload: w.Name, Scheme: sch.Name, Step: step,
				StuckCells: stuck, DriftedCells: drifted,
				Miss: cell.Miss, DetectedRate: cell.Stats.DetectedRate(),
				Stats: cell.Stats,
			}
			points = append(points, p)
			prog.Printf("faults %s %s step %d/%d: stuck=%d drifted=%d miss=%.4f detected=%.4f\n",
				w.Name, sch.Name, step, cfg.Lifetime.Steps, stuck, drifted, p.Miss.Rate(), p.DetectedRate)
			if stateDir != "" {
				if err := checkpointCampaign(stateDir, w.Name, eng, runner, step); err != nil {
					return nil, err
				}
			}
		}
	}
	return points, nil
}

// checkpointCampaign writes one scheme's aged arrays, campaign cursor, and
// completed step into a crash-consistent snapshot.
func checkpointCampaign(dir, workload string, eng *accel.Engine, runner *fault.Runner, step int) error {
	es := eng.Snapshot()
	rs := runner.Snapshot()
	st := &persist.State{
		Workload: workload,
		Engine:   &es,
		Campaign: &rs,
		// The sweep has no served-request clock; the wear clock here is the
		// completed lifetime step.
		Scheduler: persist.SchedulerState{Served: uint64(step)},
	}
	return persist.Save(dir, st)
}

// resumeCampaign restores a checkpointed campaign in place: the engine's
// aged arrays and the runner's cursor. It returns the last completed step. A
// missing checkpoint returns os.ErrNotExist (fresh start); anything refused
// by validation leaves the pristine engine untouched.
func resumeCampaign(dir string, eng *accel.Engine, runner *fault.Runner) (int, error) {
	st, err := persist.Load(dir)
	if err != nil {
		return 0, err
	}
	if st.Engine == nil || st.Campaign == nil {
		return 0, fmt.Errorf("expt: checkpoint carries no engine+campaign state")
	}
	if err := eng.CheckRestore(*st.Engine); err != nil {
		return 0, err
	}
	// Validate the cursor against this campaign before mutating the engine,
	// so a refusal leaves everything pristine.
	cur := runner.Snapshot()
	if st.Campaign.Seed != cur.Seed || st.Campaign.Events != cur.Events {
		return 0, fmt.Errorf("expt: checkpoint belongs to a different campaign (seed %d/%d events, want %d/%d)",
			st.Campaign.Seed, st.Campaign.Events, cur.Seed, cur.Events)
	}
	if st.Campaign.Next < 0 || st.Campaign.Next > st.Campaign.Events {
		return 0, fmt.Errorf("expt: checkpoint campaign cursor %d outside [0,%d]", st.Campaign.Next, st.Campaign.Events)
	}
	if err := eng.Restore(*st.Engine); err != nil {
		return 0, err
	}
	if err := runner.Restore(*st.Campaign); err != nil {
		return 0, err // unreachable: seed and event count verified above
	}
	return int(st.Scheduler.Served), nil
}

// RenderFaults prints the lifetime decay table: one row per scheme, columns
// per lifetime step.
func RenderFaults(w io.Writer, points []FaultPoint) {
	if len(points) == 0 {
		return
	}
	stepSet := map[int]bool{}
	var schemes []string
	seen := map[string]bool{}
	byKey := map[string]FaultPoint{}
	for _, p := range points {
		stepSet[p.Step] = true
		if !seen[p.Scheme] {
			seen[p.Scheme] = true
			schemes = append(schemes, p.Scheme)
		}
		byKey[fmt.Sprintf("%s/%d", p.Scheme, p.Step)] = p
	}
	var steps []int
	for s := range stepSet {
		steps = append(steps, s)
	}
	sort.Ints(steps)

	fmt.Fprintf(w, "\n%s misclassification over lifetime (step 0 = pristine)\n", points[0].Workload)
	header := fmt.Sprintf("%-11s", "scheme")
	for _, s := range steps {
		header += fmt.Sprintf("  step %2d", s)
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for _, sch := range schemes {
		row := fmt.Sprintf("%-11s", sch)
		for _, s := range steps {
			if p, ok := byKey[fmt.Sprintf("%s/%d", sch, s)]; ok {
				row += fmt.Sprintf("  %7.4f", p.Miss.Rate())
			} else {
				row += "      - "
			}
		}
		fmt.Fprintln(w, row)
	}
	last := steps[len(steps)-1]
	fmt.Fprintf(w, "\nfault population and ECU health at step %d:\n", last)
	for _, sch := range schemes {
		if p, ok := byKey[fmt.Sprintf("%s/%d", sch, last)]; ok {
			fmt.Fprintf(w, "%-11s stuck=%d drifted=%d detected-rate=%.4f corrected=%d detected=%d\n",
				sch, p.StuckCells, p.DriftedCells, p.DetectedRate,
				p.Stats.Corrected, p.Stats.Detected)
		}
	}
}

// WriteFaultsCSV emits the lifetime points as CSV.
func WriteFaultsCSV(w io.Writer, points []FaultPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "scheme", "step", "stuck_cells", "drifted_cells",
		"miss", "halfwidth95", "detected_rate", "corrected", "detected", "retries", "residual"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			p.Workload, p.Scheme, strconv.Itoa(p.Step),
			strconv.Itoa(p.StuckCells), strconv.Itoa(p.DriftedCells),
			fmt.Sprintf("%.6f", p.Miss.Rate()),
			fmt.Sprintf("%.6f", p.Miss.HalfWidth95()),
			fmt.Sprintf("%.6f", p.DetectedRate),
			strconv.FormatUint(p.Stats.Corrected, 10),
			strconv.FormatUint(p.Stats.Detected, 10),
			strconv.FormatUint(p.Stats.Retries, 10),
			strconv.FormatUint(p.Stats.Residual, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// countFaults sums the live stuck and drifted cell populations.
func countFaults(eng *accel.Engine) (stuck, drifted int) {
	for _, layer := range eng.Layers() {
		eng.WithArrays(layer, func(arrays []*crossbar.Array) {
			for _, a := range arrays {
				stuck += a.StuckCount()
				drifted += a.DriftedCount()
			}
		})
	}
	return stuck, drifted
}
