package expt

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/fault"
	"repro/internal/stats"
)

func scenarioSweepConfig() ScenarioSweepConfig {
	return ScenarioSweepConfig{
		Devices:   []string{"hpca2018-rram"},
		Scheme:    accel.SchemeABN(8),
		Scenarios: []string{"calm", "heatwave"},
		Images:    10,
		Seed:      7,
		Steps:     2,
		Lifetime: fault.LifetimeParams{
			Steps:        2,
			StuckPerStep: 0.002,
			LRSFrac:      1.0,
			DriftEvery:   1,
			DriftRate:    0.002,
			DriftDelta:   1,
		},
		SpareRows: 4,
	}
}

// TestScenarioSweepDeterministic: every point of the matrix — miss,
// availability, controller decisions, patrol tallies — is a pure function of
// (workload, config); two back-to-back runs must be bit-identical.
func TestScenarioSweepDeterministic(t *testing.T) {
	w := tinyWorkload(t)
	cfg := scenarioSweepConfig()
	a, err := RunScenarioSweep(w, cfg, Progress{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenarioSweep(w, cfg, Progress{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scenario sweep not deterministic:\n%+v\nvs\n%+v", a, b)
	}
	// Both arms of both cells cover every step, in order.
	if want := len(cfg.Devices) * len(cfg.Scenarios) * 2 * (cfg.Steps + 1); len(a) != want {
		t.Fatalf("points = %d, want %d", len(a), want)
	}
	for _, p := range a {
		if p.ServeErrors != 0 {
			t.Fatalf("%s/%s/%s step %d served %d errors — the 5xx budget is zero",
				p.Device, p.Scenario, p.Arm, p.Step, p.ServeErrors)
		}
		if p.Arm == ArmStatic && (p.Level != 0 || p.PatrolPasses != 1) {
			t.Fatalf("static arm must stay at level 0 with one pass per step: %+v", p)
		}
		if p.Arm == ArmAdaptive && p.PatrolPasses != 1<<p.Level {
			t.Fatalf("adaptive arm passes %d at level %d, want %d", p.PatrolPasses, p.Level, 1<<p.Level)
		}
	}
}

// TestScenarioVerdicts folds synthetic points so each verdict branch is
// pinned: wins needs not-worse on both axes and strictly better on one.
func TestScenarioVerdicts(t *testing.T) {
	miss := func(n, total int) stats.Counter {
		var c stats.Counter
		for i := 0; i < total; i++ {
			c.AddOutcome(i < n)
		}
		return c
	}
	pts := []ScenarioPoint{
		// Cell A: adaptive strictly better on miss, equal availability → WINS.
		{Device: "d", Scenario: "a", Arm: ArmStatic, Step: 0, Miss: miss(4, 10), Availability: 1},
		{Device: "d", Scenario: "a", Arm: ArmAdaptive, Step: 0, Miss: miss(2, 10), Availability: 1},
		// Cell B: identical arms → ties.
		{Device: "d", Scenario: "b", Arm: ArmStatic, Step: 0, Miss: miss(1, 10), Availability: 1},
		{Device: "d", Scenario: "b", Arm: ArmAdaptive, Step: 0, Miss: miss(1, 10), Availability: 1},
		// Cell C: adaptive more accurate but less available → not a win.
		{Device: "d", Scenario: "c", Arm: ArmStatic, Step: 0, Miss: miss(4, 10), Availability: 1},
		{Device: "d", Scenario: "c", Arm: ArmAdaptive, Step: 0, Miss: miss(2, 10), Availability: 0.9},
	}
	vs := Verdicts(pts)
	if len(vs) != 3 {
		t.Fatalf("verdicts = %d, want 3", len(vs))
	}
	if !vs[0].AdaptiveWins {
		t.Errorf("cell a: strict miss improvement must win: %+v", vs[0])
	}
	if vs[1].AdaptiveWins {
		t.Errorf("cell b: a tie is not a win: %+v", vs[1])
	}
	if vs[2].AdaptiveWins {
		t.Errorf("cell c: trading availability away is not a win: %+v", vs[2])
	}
}

// TestScenarioSweepRendering: table and CSV writers cover every point.
func TestScenarioSweepRendering(t *testing.T) {
	w := tinyWorkload(t)
	cfg := scenarioSweepConfig()
	cfg.Scenarios = []string{"wear-spike"}
	cfg.Steps = 1
	points, err := RunScenarioSweep(w, cfg, Progress{})
	if err != nil {
		t.Fatal(err)
	}
	var tbl bytes.Buffer
	RenderScenarios(&tbl, points)
	for _, want := range []string{"environment-adaptation matrix", "service-life verdicts", "wear-spike"} {
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, tbl.String())
		}
	}
	var csvBuf bytes.Buffer
	if err := WriteScenariosCSV(&csvBuf, points); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(csvBuf.String()), "\n")
	if want := len(points); lines != want {
		t.Fatalf("csv rows = %d, want %d", lines, want)
	}
}
