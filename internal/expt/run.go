package expt

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/accel"
	"repro/internal/nn"
	"repro/internal/noise"
	"repro/internal/stats"
)

// SchemeSoftware is the sentinel name for the float forward pass baseline.
const SchemeSoftware = "Software"

// EvalConfig drives one Monte-Carlo classification cell.
type EvalConfig struct {
	Device  noise.DeviceParams
	Scheme  accel.Scheme
	Retries int
	Images  int // test images evaluated (0 = all)
	Seed    uint64
	Workers int // 0 = GOMAXPROCS
	TopK    int // additionally report top-K misclassification (0 = skip)
}

// CellResult is one (workload, scheme, device) evaluation.
type CellResult struct {
	Workload string
	Scheme   string
	Bits     int
	Miss     stats.Counter
	MissTopK stats.Counter
	// Drift is the mean absolute logit deviation from the software
	// forward pass — the silent output perturbation that remains even
	// when the argmax survives.
	Drift stats.Summary
	Stats accel.Stats
}

// MissRate returns the top-1 misclassification rate.
func (c CellResult) MissRate() float64 { return c.Miss.Rate() }

// EvaluateSoftware runs the float baseline over the test subset.
func EvaluateSoftware(w Workload, images, topK int) CellResult {
	test := clipTest(w.Test, images)
	res := CellResult{Workload: w.Name, Scheme: SchemeSoftware}
	for _, ex := range test {
		logits := w.Net.Forward(ex.Input)
		res.Miss.AddOutcome(logits.ArgMax() != ex.Label)
		if topK > 0 {
			res.MissTopK.AddOutcome(!containsLabel(logits.TopK(topK), ex.Label))
		}
	}
	return res
}

// EvaluateScheme maps the workload onto the accelerator under the scheme
// and measures misclassification over the test subset, parallelized over
// images with per-worker sessions.
func EvaluateScheme(w Workload, cfg EvalConfig) (CellResult, error) {
	acfg := accel.DefaultConfig(cfg.Scheme)
	acfg.Device = cfg.Device
	if cfg.Retries > 0 {
		acfg.Retries = cfg.Retries
	}
	acfg.Seed = cfg.Seed
	return evaluateMapped(w, acfg, cfg)
}

// evaluateMapped runs the Monte-Carlo over a fully specified accelerator
// configuration.
func evaluateMapped(w Workload, acfg accel.Config, cfg EvalConfig) (CellResult, error) {
	eng, err := accel.Map(w.Net, acfg)
	if err != nil {
		return CellResult{}, fmt.Errorf("expt: mapping %s under %s: %w", w.Name, cfg.Scheme.Name, err)
	}
	return runEval(eng, w, cfg, cfg.Seed*100_000), nil
}

// runEval measures misclassification over the test subset against an
// already-mapped engine, parallelized over images with per-worker sessions.
// Image i uses noise stream streamBase+i, so results are independent of how
// images are distributed across workers; lifetime sweeps vary streamBase
// per step so every step draws fresh noise.
func runEval(eng *accel.Engine, w Workload, cfg EvalConfig, streamBase uint64) CellResult {
	test := clipTest(w.Test, cfg.Images)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(test) {
		workers = max(1, len(test))
	}

	results := make([]CellResult, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			sess := eng.NewSession(cfg.Seed*1000 + uint64(wk))
			soft := w.Net.CloneForInference()
			r := &results[wk]
			for i := wk; i < len(test); i += workers {
				ex := test[i]
				sess.Reseed(streamBase + uint64(i))
				logits := sess.Forward(ex.Input)
				r.Miss.AddOutcome(logits.ArgMax() != ex.Label)
				if cfg.TopK > 0 {
					r.MissTopK.AddOutcome(!containsLabel(logits.TopK(cfg.TopK), ex.Label))
				}
				ref := soft.Forward(ex.Input)
				for j := range logits.Data {
					r.Drift.Add(abs(logits.Data[j] - ref.Data[j]))
				}
			}
			r.Stats = sess.Stats
		}(wk)
	}
	wg.Wait()

	out := CellResult{Workload: w.Name, Scheme: cfg.Scheme.Name, Bits: eng.Config().Device.BitsPerCell}
	for _, r := range results {
		out.Miss.Merge(r.Miss)
		out.MissTopK.Merge(r.MissTopK)
		out.Drift.Merge(&r.Drift)
		out.Stats.Merge(r.Stats)
	}
	return out
}

// FigureSchemes returns the seven protected configurations of Figures 10
// and 11 (the Software baseline is evaluated separately).
func FigureSchemes() []accel.Scheme {
	return []accel.Scheme{
		accel.SchemeNoECC(),
		accel.SchemeStatic16(),
		accel.SchemeStatic128(),
		accel.SchemeABN(7),
		accel.SchemeABN(8),
		accel.SchemeABN(9),
		accel.SchemeABN(10),
	}
}

func clipTest(test []nn.Example, images int) []nn.Example {
	if images <= 0 || images >= len(test) {
		return test
	}
	return test[:images]
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func containsLabel(topk []int, label int) bool {
	for _, c := range topk {
		if c == label {
			return true
		}
	}
	return false
}

// Progress optionally reports experiment progress lines.
type Progress struct {
	W io.Writer
}

// Printf writes a progress line when a writer is configured.
func (p Progress) Printf(format string, args ...any) {
	if p.W != nil {
		fmt.Fprintf(p.W, format, args...)
	}
}
