package expt

import (
	"repro/internal/accel"
)

// AblationResult is one design-choice variant evaluated on the same
// workload and device point.
type AblationResult struct {
	Name string
	Cell CellResult
}

// AblationSpecs returns the design-choice variants DESIGN.md calls out,
// all anchored on the ABN-9 configuration:
//
//   - abn9:            the shipped configuration (guard bits, 5 hardware
//     candidate As, detect-and-retry)
//   - full-search:     exhaustive A search instead of the 5-candidate
//     hardware divider (Section V-B4 vs Section VI)
//   - no-retry:        the throughput-preserving revert-on-detect policy
//     (Section VI-A)
//   - zero-guard:      the paper's exact bit accounting with no lane guard
//     bits, exposing inter-lane carry bleed (DESIGN.md section 1)
//   - group-4:         four operands per coded group instead of eight
//   - ungrouped:       one operand per code word (constant-overhead
//     grouping disabled)
//   - differential:    PRIME-style positive/negative row pairs instead of
//     ISAAC's offset-binary negative-weight encoding
func AblationSpecs() []struct {
	Name    string
	Scheme  accel.Scheme
	Retries int
} {
	base := accel.SchemeABN(9)
	full := base
	full.FullSearch = true
	full.Name = "full-search"
	zg := base
	zg.ZeroGuard = true
	zg.Name = "zero-guard"
	g4 := base
	g4.GroupOps = 4
	g4.Name = "group-4"
	g1 := base
	g1.GroupOps = 1
	g1.Name = "ungrouped"
	diff := base
	diff.Name = "differential"
	return []struct {
		Name    string
		Scheme  accel.Scheme
		Retries int
	}{
		{"abn9", base, 0},
		{"full-search", full, 0},
		{"no-retry", base, -1}, // -1 encodes "force zero retries"
		{"zero-guard", zg, 0},
		{"group-4", g4, 0},
		{"ungrouped", g1, 0},
		{"differential", diff, -2}, // -2 encodes the PRIME-style encoding
	}
}

// RunAblations evaluates the variants on one workload at one device point.
func RunAblations(w Workload, opt SweepOptions) ([]AblationResult, error) {
	dev := opt.Device
	dev.BitsPerCell = 2
	var out []AblationResult
	for _, spec := range AblationSpecs() {
		cfg := EvalConfig{
			Device: dev, Scheme: spec.Scheme, Retries: opt.Retries,
			Images: opt.Images, Seed: opt.Seed, Workers: opt.Workers,
		}
		if spec.Retries < 0 {
			// Negative values are variant selectors handled by
			// evaluateWithRetryOverride, not retry counts.
			cfg.Retries = spec.Retries
		}
		cell, err := evaluateWithRetryOverride(w, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{Name: spec.Name, Cell: cell})
		opt.Progress.Printf("ablation %-12s miss=%.4f corr=%d det=%d\n",
			spec.Name, cell.MissRate(), cell.Stats.Corrected, cell.Stats.Detected)
	}
	return out, nil
}

// evaluateWithRetryOverride is EvaluateScheme plus support for the two
// variants the plain config cannot express: the zero-retry revert policy
// (cfg.Retries == -1) and differential weight encoding (cfg.Retries == -2).
func evaluateWithRetryOverride(w Workload, cfg EvalConfig) (CellResult, error) {
	switch cfg.Retries {
	case -1:
		acfg := accel.DefaultConfig(cfg.Scheme)
		acfg.Device = cfg.Device
		acfg.Retries = 0
		acfg.Seed = cfg.Seed
		return evaluateMapped(w, acfg, cfg)
	case -2:
		acfg := accel.DefaultConfig(cfg.Scheme)
		acfg.Device = cfg.Device
		acfg.Encoding = accel.EncodingDifferential
		acfg.Seed = cfg.Seed
		return evaluateMapped(w, acfg, cfg)
	default:
		return EvaluateScheme(w, cfg)
	}
}
