package expt

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/circuit"
	"repro/internal/nn"
	"repro/internal/noise"
)

// tinyWorkload builds a fast, trained-enough workload for harness tests.
func tinyWorkload(t *testing.T) Workload {
	t.Helper()
	rng := rand.New(rand.NewPCG(3, 3))
	net := &nn.Network{Name: "tiny", InShape: []int{12},
		Layers: []nn.Layer{nn.NewDense(12, 10, rng), &nn.ReLU{}, nn.NewDense(10, 3, rng)}}
	var train, test []nn.Example
	gen := func(n int) []nn.Example {
		var out []nn.Example
		for i := 0; i < n; i++ {
			x := make([]float64, 12)
			label := i % 3
			for j := range x {
				x[j] = rng.Float64() * 0.3
			}
			x[label*4] += 0.8
			out = append(out, nn.Example{Input: nn.FromSlice(x, 12), Label: label})
		}
		return out
	}
	train, test = gen(150), gen(60)
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 15
	nn.Train(net, train, cfg)
	return Workload{Name: "tiny", Net: net, Test: test}
}

func TestEvaluateSoftware(t *testing.T) {
	w := tinyWorkload(t)
	cell := EvaluateSoftware(w, 0, 2)
	if cell.Scheme != SchemeSoftware || cell.Miss.Trials != len(w.Test) {
		t.Fatalf("software cell: %+v", cell)
	}
	if cell.MissRate() > 0.2 {
		t.Fatalf("tiny problem should be learnable, miss=%g", cell.MissRate())
	}
	if cell.MissTopK.Trials != len(w.Test) {
		t.Fatal("top-k not recorded")
	}
	clipped := EvaluateSoftware(w, 10, 0)
	if clipped.Miss.Trials != 10 {
		t.Fatalf("image clipping failed: %d", clipped.Miss.Trials)
	}
}

func TestEvaluateSchemeParallelMatchesSerial(t *testing.T) {
	w := tinyWorkload(t)
	run := func(workers int) CellResult {
		cell, err := EvaluateScheme(w, EvalConfig{
			Device:  defaultDevice(2),
			Scheme:  accel.SchemeABN(8),
			Images:  40,
			Seed:    7,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cell
	}
	serial := run(1)
	parallel := run(4)
	// Workers partition images and own RNG streams, so aggregate counts
	// must match in size; rates should agree loosely.
	if serial.Miss.Trials != parallel.Miss.Trials {
		t.Fatalf("trial counts differ: %d vs %d", serial.Miss.Trials, parallel.Miss.Trials)
	}
	if serial.Stats.RowReads == 0 || parallel.Stats.RowReads == 0 {
		t.Fatal("row reads not recorded")
	}
}

func TestEvaluateSchemeRecordsDrift(t *testing.T) {
	w := tinyWorkload(t)
	cell, err := EvaluateScheme(w, EvalConfig{
		Device: defaultDevice(5), // noisy point
		Scheme: accel.SchemeNoECC(),
		Images: 20,
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cell.Drift.N() == 0 {
		t.Fatal("drift not recorded")
	}
}

func TestFigureSchemes(t *testing.T) {
	schemes := FigureSchemes()
	if len(schemes) != 7 {
		t.Fatalf("want 7 schemes, got %d", len(schemes))
	}
	names := map[string]bool{}
	for _, s := range schemes {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"NoECC", "Static16", "Static128", "ABN-7", "ABN-8", "ABN-9", "ABN-10"} {
		if !names[want] {
			t.Errorf("missing scheme %s", want)
		}
	}
}

func TestAblationSpecs(t *testing.T) {
	specs := AblationSpecs()
	if len(specs) != 7 {
		t.Fatalf("want 7 ablations, got %d", len(specs))
	}
	for _, sp := range specs {
		if err := sp.Scheme.Validate(); err != nil {
			t.Errorf("%s: %v", sp.Name, err)
		}
	}
}

func TestRunAblationsOnTinyWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	w := tinyWorkload(t)
	opt := DefaultSweepOptions()
	opt.Images = 15
	res, err := RunAblations(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(AblationSpecs()) {
		t.Fatalf("got %d results", len(res))
	}
}

func TestRenderSweepAndCSV(t *testing.T) {
	cells := []CellResult{
		{Workload: "W", Scheme: SchemeSoftware},
		{Workload: "W", Scheme: "NoECC", Bits: 2},
		{Workload: "W", Scheme: "ABN-9", Bits: 2},
		{Workload: "W", Scheme: "ABN-9", Bits: 4},
	}
	cells[1].Miss.Hits, cells[1].Miss.Trials = 3, 100
	var buf bytes.Buffer
	RenderSweep(&buf, cells)
	out := buf.String()
	for _, want := range []string{"W misclassification rate", "NoECC", "ABN-9", "2-bit", "4-bit", "0.0300"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := WriteSweepCSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "workload,scheme,bits,miss") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestRenderTable4(t *testing.T) {
	var buf bytes.Buffer
	RenderTable4(&buf, RunTable4())
	out := buf.String()
	for _, want := range []string{"Error Correction Unit", "Error Correction Table", "Chip power overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("table4 missing %q", want)
		}
	}
}

func TestFig7RenderAndCSV(t *testing.T) {
	cfg := circuit.DefaultConfig()
	cfg.Cells = 32
	cfg.Duration = 0.01
	res, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFig7(&buf, res)
	if !strings.Contains(buf.String(), "error rate") {
		t.Fatal("fig7 summary missing error rate")
	}
	buf.Reset()
	if err := WriteFig7CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(res.Samples)+1 {
		t.Fatalf("CSV rows = %d, want %d", lines, len(res.Samples)+1)
	}
}

func TestWorkloadCaching(t *testing.T) {
	dir := t.TempDir()
	opt := TrainOptions{Seed: 5, Train: 60, Test: 20, Epochs: 1, CacheDir: dir}
	rng := rand.New(rand.NewPCG(1, 1))
	net1 := &nn.Network{Name: "cachetest", InShape: []int{4},
		Layers: []nn.Layer{nn.NewDense(4, 3, rng)}}
	var exs []nn.Example
	for i := 0; i < 30; i++ {
		exs = append(exs, nn.Example{Input: nn.FromSlice([]float64{1, 0, 0, 0}, 4), Label: i % 3})
	}
	if err := fitOrLoad(net1, exs, opt); err != nil {
		t.Fatal(err)
	}
	// Second call with a fresh net must load the cache and agree exactly.
	net2 := &nn.Network{Name: "cachetest", InShape: []int{4},
		Layers: []nn.Layer{nn.NewDense(4, 3, rand.New(rand.NewPCG(9, 9)))}}
	var logbuf bytes.Buffer
	opt.Log = &logbuf
	if err := fitOrLoad(net2, exs, opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logbuf.String(), "cached") {
		t.Fatal("second fit must hit the cache")
	}
	x := nn.FromSlice([]float64{0.3, 0.1, 0.5, 0.2}, 4)
	a, b := net1.Forward(x), net2.Forward(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("cached weights differ")
		}
	}
}

func defaultDevice(bits int) noise.DeviceParams {
	d := noise.DefaultDeviceParams()
	d.BitsPerCell = bits
	return d
}

func TestClamp01(t *testing.T) {
	if clamp01(0.5) != 0.5 || clamp01(1.7) != 0.999 {
		t.Fatal("clamp01 incorrect")
	}
}

func TestRenderFig12(t *testing.T) {
	pts := []Fig12Point{{
		Knob:  "deltaR",
		Value: 0.028,
		Cells: []CellResult{{Scheme: SchemeSoftware}, {Scheme: "ABN-9", Bits: 2}},
	}}
	var buf bytes.Buffer
	RenderFig12(&buf, pts)
	out := buf.String()
	for _, want := range []string{"sensitivity", "deltaR", "ABN-9"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig12 render missing %q", want)
		}
	}
}

func TestRenderTable3(t *testing.T) {
	var r Table3Result
	r.Software.Miss.Hits, r.Software.Miss.Trials = 43, 100
	r.Software.MissTopK.Hits, r.Software.MissTopK.Trials = 20, 100
	r.Uncorrected.Miss.Trials = 100
	r.ABN9.Miss.Trials = 100
	var buf bytes.Buffer
	RenderTable3(&buf, r)
	out := buf.String()
	if !strings.Contains(out, "43.00%") || !strings.Contains(out, "Top-5") {
		t.Errorf("table3 render wrong:\n%s", out)
	}
}

func TestProgressPrintf(t *testing.T) {
	var buf bytes.Buffer
	Progress{W: &buf}.Printf("x=%d\n", 5)
	if buf.String() != "x=5\n" {
		t.Fatalf("progress wrote %q", buf.String())
	}
	Progress{}.Printf("ignored") // nil writer must not panic
}

func TestContainsLabel(t *testing.T) {
	if !containsLabel([]int{3, 1, 4}, 4) || containsLabel([]int{3, 1}, 4) {
		t.Fatal("containsLabel incorrect")
	}
}

// TestWorkerCountInvariance: per-image noise streams make the measured
// rates independent of the degree of parallelism.
func TestWorkerCountInvariance(t *testing.T) {
	w := tinyWorkload(t)
	run := func(workers int) CellResult {
		cell, err := EvaluateScheme(w, EvalConfig{
			Device:  defaultDevice(5), // noisy point so errors occur
			Scheme:  accel.SchemeABN(8),
			Images:  30,
			Seed:    11,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cell
	}
	a, b := run(1), run(3)
	if a.Miss.Hits != b.Miss.Hits {
		t.Fatalf("miss counts differ across worker counts: %d vs %d", a.Miss.Hits, b.Miss.Hits)
	}
	if a.Stats.RowErrors != b.Stats.RowErrors {
		t.Fatalf("row errors differ: %d vs %d", a.Stats.RowErrors, b.Stats.RowErrors)
	}
}

// TestEvaluateSchemeWorkerCountInvariance is the determinism regression the
// serving layer relies on: because sessions are reseeded per image id, the
// Monte-Carlo outcome is a pure function of (engine, seed, image) — 1 worker
// and 8 workers must produce byte-identical miss counters and ECU tallies.
func TestEvaluateSchemeWorkerCountInvariance(t *testing.T) {
	w := tinyWorkload(t)
	dev := defaultDevice(2)
	dev.FailureRate = 0.001
	run := func(workers int) CellResult {
		cell, err := EvaluateScheme(w, EvalConfig{
			Device:  dev,
			Scheme:  accel.SchemeABN(8),
			Images:  32,
			Seed:    9,
			Workers: workers,
			TopK:    2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cell
	}
	one := run(1)
	eight := run(8)
	if one.Miss != eight.Miss {
		t.Fatalf("miss counters differ across worker counts: %+v vs %+v", one.Miss, eight.Miss)
	}
	if one.MissTopK != eight.MissTopK {
		t.Fatalf("top-k counters differ: %+v vs %+v", one.MissTopK, eight.MissTopK)
	}
	if one.Stats != eight.Stats {
		t.Fatalf("ECU tallies differ: %+v vs %+v", one.Stats, eight.Stats)
	}
}
