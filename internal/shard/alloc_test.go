package shard

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/replica"
)

// TestPoolSessionAllocParity is the hot-path gate for the routing layer: a
// warm pool session's Forward and ForwardBatch must allocate no more than
// the bare replica session it delegates to. Every routing structure — the
// owner table, the per-layer MVM closures, the lockstep batcher — is built
// at session construction; steady state only walks them.
func TestPoolSessionAllocParity(t *testing.T) {
	setSes := func() interface {
		Reseed(uint64)
		Forward(*nn.Tensor) *nn.Tensor
		ForwardBatch([]*nn.Tensor, []uint64) ([]*nn.Tensor, []error)
	} {
		set, err := replica.NewSet(noisyEngine(t), poolConfig(1).Replicas)
		if err != nil {
			t.Fatal(err)
		}
		return set.NewSession(1)
	}
	poolSes := func(n int) interface {
		Reseed(uint64)
		Forward(*nn.Tensor) *nn.Tensor
		ForwardBatch([]*nn.Tensor, []uint64) ([]*nn.Tensor, []error)
	} {
		pool, err := NewPool(noisyEngine(t), poolConfig(n))
		if err != nil {
			t.Fatal(err)
		}
		return pool.NewSession(1)
	}

	x := testInput(1)
	xs := []*nn.Tensor{testInput(1), testInput(2), testInput(3), testInput(4)}
	streams := []uint64{11, 12, 13, 14}

	measure := func(ses interface {
		Reseed(uint64)
		Forward(*nn.Tensor) *nn.Tensor
		ForwardBatch([]*nn.Tensor, []uint64) ([]*nn.Tensor, []error)
	}) (forward, batch float64) {
		// Warm: arm the batcher and fill every lazily-grown scratch buffer.
		for i := 0; i < 8; i++ {
			ses.Reseed(uint64(i + 1))
			ses.Forward(x)
			if _, errs := ses.ForwardBatch(xs, streams); errs != nil {
				for _, err := range errs {
					if err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		seed := uint64(100)
		forward = testing.AllocsPerRun(100, func() {
			seed++
			ses.Reseed(seed)
			ses.Forward(x)
		})
		batch = testing.AllocsPerRun(100, func() {
			ses.ForwardBatch(xs, streams)
		})
		return forward, batch
	}

	baseForward, baseBatch := measure(setSes())
	for _, n := range []int{2, 4} {
		gotForward, gotBatch := measure(poolSes(n))
		if gotForward > baseForward {
			t.Errorf("%d shards: warm Forward allocates %.0f/op, bare replica set %.0f/op — routing must add zero",
				n, gotForward, baseForward)
		}
		if gotBatch > baseBatch {
			t.Errorf("%d shards: warm ForwardBatch allocates %.0f/op, bare replica set %.0f/op — routing must add zero",
				n, gotBatch, baseBatch)
		}
	}
}
