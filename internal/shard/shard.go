package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/replica"
	"repro/internal/scrub"
)

// ShardState is a shard's serving state.
type ShardState int32

const (
	// Serving: the shard answers layer MVMs from its crossbar replicas.
	Serving ShardState = iota
	// Draining: the shard's layers are routed to the software fixed-point
	// path while the crossbars are repaired — traffic keeps flowing with
	// deterministic answers, siblings untouched.
	Draining
	// Degraded: the shard's layers are pinned to the software path
	// (terminal ladder rung for this fault domain) until an operator or
	// repair cycle rejoins it.
	Degraded
)

// String names the state for logs, metrics, and /readyz rows.
func (s ShardState) String() string {
	switch s {
	case Serving:
		return "serving"
	case Draining:
		return "draining"
	case Degraded:
		return "degraded"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Shard is one fault domain: a contiguous slice of the network's layers
// with its own replica set, routing breakers, and maintenance lifecycle.
// Layer evaluation goes through the set (concurrency-safe); maintenance
// (Drain, Repair, Rejoin) is serialized per shard by mu, so an admin drain
// and the scheduler's shard ladder cannot interleave half-finished repairs.
type Shard struct {
	id     int
	layers []int
	set    *replica.Set

	// mu serializes maintenance transitions; state is the read side for
	// hot-path-free status checks.
	mu    sync.Mutex
	state atomic.Int32

	drains  atomic.Uint64 // drain transitions (admin + ladder)
	repairs atomic.Uint64 // completed repair cycles
	remaps  atomic.Uint64 // layer remaps performed by repair cycles
	rejoins atomic.Uint64 // rejoin transitions back to serving
}

func newShard(id int, layers []int, set *replica.Set) *Shard {
	return &Shard{id: id, layers: append([]int(nil), layers...), set: set}
}

// ID returns the shard's position in the pool.
func (sh *Shard) ID() int { return sh.id }

// Layers returns the shard's owned layer indices in ascending order.
func (sh *Shard) Layers() []int { return append([]int(nil), sh.layers...) }

// Owns reports whether the shard owns a layer.
func (sh *Shard) Owns(layer int) bool {
	for _, li := range sh.layers {
		if li == layer {
			return true
		}
	}
	return false
}

// Set returns the shard's replica set.
func (sh *Shard) Set() *replica.Set { return sh.set }

// State returns the shard's serving state.
func (sh *Shard) State() ShardState { return ShardState(sh.state.Load()) }

// RepairCount returns how many repair cycles the shard has completed — the
// budget the scheduler's ladder checks before another drain-and-remap.
func (sh *Shard) RepairCount() uint64 { return sh.repairs.Load() }

// Drain routes every layer of the shard to the software fixed-point path —
// on every replica at once — and marks the shard Draining. Requests keep
// being answered (deterministically, from the digital fallback) the whole
// time; sibling shards are untouched. Idempotent while already draining.
func (sh *Shard) Drain() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.drainLocked(Draining)
}

// Degrade is Drain with the terminal state: the shard's layers are pinned
// to software until something rejoins them. The ladder uses it when repair
// verification keeps failing.
func (sh *Shard) Degrade() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.drainLocked(Degraded)
}

func (sh *Shard) drainLocked(to ShardState) error {
	for _, li := range sh.layers {
		if err := sh.set.SetFallback(li, true); err != nil {
			return fmt.Errorf("shard %d: draining layer %d: %w", sh.id, li, err)
		}
	}
	if ShardState(sh.state.Swap(int32(to))) != to {
		sh.drains.Add(1)
	}
	return nil
}

// Repair re-programs every layer of the shard onto spare arrays, replica by
// replica, and patrol-verifies each remap (scrub pass with verifyIters
// programming iterations under the given seed). Call it on a drained shard:
// traffic is answering from the software path, so the reprogram stalls
// nobody. It returns the number of layers whose verify still reports
// uncorrectable rows (0 = the shard is clean and safe to Rejoin).
func (sh *Shard) Repair(verifyIters int, seed uint64) (dirty int, err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for r := 0; r < sh.set.Size(); r++ {
		eng := sh.set.Engine(r)
		sc := scrub.New(eng, scrub.Config{VerifyIters: verifyIters, Seed: seed})
		for _, li := range sh.layers {
			if err := eng.Remap(li); err != nil {
				return dirty, fmt.Errorf("shard %d: remapping layer %d replica %d: %w", sh.id, li, r, err)
			}
			sh.remaps.Add(1)
			rep, err := sc.PatrolLayer(li)
			if err != nil {
				return dirty, fmt.Errorf("shard %d: verifying layer %d replica %d: %w", sh.id, li, r, err)
			}
			if !rep.Clean() {
				dirty++
			}
		}
	}
	sh.repairs.Add(1)
	return dirty, nil
}

// Rejoin returns a drained (or degraded) shard to crossbar serving: every
// layer's software-fallback flag is cleared — Repair's remaps already clear
// it on the remapped copies, this also covers layers degraded without a
// remap — and every replica's routing monitor is reset, so the shard
// re-earns trust from fresh evidence. Idempotent while already serving.
func (sh *Shard) Rejoin() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, li := range sh.layers {
		if err := sh.set.SetFallback(li, false); err != nil {
			return fmt.Errorf("shard %d: rejoining layer %d: %w", sh.id, li, err)
		}
	}
	for r := 0; r < sh.set.Size(); r++ {
		sh.set.Monitor(r).ResetAll()
	}
	if ShardState(sh.state.Swap(int32(Serving))) != Serving {
		sh.rejoins.Add(1)
	}
	return nil
}

// ShardStatus is one shard's row in the operator view (/readyz, metrics,
// /admin/shards).
type ShardStatus struct {
	ID     int    `json:"id"`
	State  string `json:"state"`
	Layers []int  `json:"layers"`
	// DegradedLayers are the shard's layers currently on the software path
	// (all of them while drained; possibly a subset after partial repair).
	DegradedLayers []int `json:"degraded_layers,omitempty"`
	// Drains/Repairs/Remaps/Rejoins count the shard's maintenance
	// lifecycle transitions.
	Drains  uint64 `json:"drains"`
	Repairs uint64 `json:"repairs"`
	Remaps  uint64 `json:"remaps"`
	Rejoins uint64 `json:"rejoins"`
	// Replicas is the shard's replica-set view (attachment, open breakers,
	// routing counters).
	Replicas replica.SetStatus `json:"replicas"`
}

// Status snapshots the shard.
func (sh *Shard) Status() ShardStatus {
	st := ShardStatus{
		ID:       sh.id,
		State:    sh.State().String(),
		Layers:   sh.Layers(),
		Drains:   sh.drains.Load(),
		Repairs:  sh.repairs.Load(),
		Remaps:   sh.remaps.Load(),
		Rejoins:  sh.rejoins.Load(),
		Replicas: sh.set.Status(),
	}
	for _, li := range sh.layers {
		if sh.set.Engine(0).Fallback(li) {
			st.DegradedLayers = append(st.DegradedLayers, li)
		}
	}
	return st
}
