// Package shard partitions a mapped network into engine shards — contiguous
// slices of layers, each programmed as its own fault domain with a full
// reliability stack: an independent replica set, per-replica routing
// breakers, its own scrubber rotation, and its own persistence snapshot.
//
// The partitioning mirrors ISAAC-style tile allocation: layers are assigned
// to shards in network order, so a shard owns the crossbar tiles of a
// pipeline stage. What the paper does on-chip (protect the unit that fails,
// not the whole accelerator) this package does at serving scale: a wrecked
// array set, a remap storm, or a refused snapshot inside one shard is a
// shard event — the shard drains to the software path, repairs, and rejoins
// while its siblings keep serving from hardware.
//
// Outputs are shard-count invariant: a layer's programmed arrays depend
// only on (engine config, global layer index) and its noise draws only on
// (replica engine, request stream, layer), so slicing the network across 1,
// 2, or 4 shards yields bit-identical predictions for the same request
// seed.
package shard

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/nn"
	"repro/internal/noise"
	"repro/internal/replica"
)

// maxShards bounds the pool: a shard must own at least one layer, and past
// a handful of fault domains the bookkeeping outweighs the isolation.
const maxShards = 16

// Config sizes a shard pool.
type Config struct {
	// N is the shard count; 1 (or 0) puts every layer in one shard.
	N int
	// Replicas is each shard's replica-set configuration. Every shard gets
	// its own independent set (engines, monitors, router state).
	Replicas replica.Config
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 1
	}
	return c
}

// Validate rejects nonsensical pool settings.
func (c Config) Validate() error {
	if c.N > maxShards {
		return fmt.Errorf("shard: %d shards exceeds the maximum %d", c.N, maxShards)
	}
	return c.Replicas.Validate()
}

// Pool is N engine shards over one mapped network plus the layer-ownership
// table that routes each mapped layer to its owning shard.
type Pool struct {
	cfg     Config
	primary *accel.Engine
	net     *nn.Network
	shards  []*Shard
	// owner maps layer index -> owning shard id (-1 for unmapped layers);
	// dense so the per-MVM route is a bounds check, like engine slots.
	owner []int
	// layers is every mapped layer in ascending order (the batcher's pause
	// points).
	layers []int
}

// NewPool slices the primary engine's mapped layers into cfg.N contiguous
// shards and programs each shard's replica set. The primary's arrays are
// shared as each shard's replica 0 (no re-programming); replicas 1..R-1 are
// mapped fresh per shard, covering only that shard's layers.
func NewPool(primary *accel.Engine, cfg Config) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	layers := primary.Layers()
	if len(layers) < cfg.N {
		return nil, fmt.Errorf("shard: %d shards over %d mapped layers — a shard must own at least one layer", cfg.N, len(layers))
	}
	net := primary.Network()
	p := &Pool{
		cfg:     cfg,
		primary: primary,
		net:     net,
		shards:  make([]*Shard, cfg.N),
		owner:   make([]int, len(net.Layers)),
		layers:  layers,
	}
	for i := range p.owner {
		p.owner[i] = -1
	}
	// Contiguous balanced split: the first (len % N) shards get one extra
	// layer, so shard boundaries are a pure function of (layer count, N).
	per, extra := len(layers)/cfg.N, len(layers)%cfg.N
	lo := 0
	for id := 0; id < cfg.N; id++ {
		n := per
		if id < extra {
			n++
		}
		slice := layers[lo : lo+n]
		lo += n
		part, err := primary.Partition(slice)
		if err != nil {
			return nil, fmt.Errorf("shard: partitioning shard %d: %w", id, err)
		}
		set, err := replica.NewSet(part, cfg.Replicas)
		if err != nil {
			return nil, fmt.Errorf("shard: programming shard %d: %w", id, err)
		}
		p.shards[id] = newShard(id, slice, set)
		for _, li := range slice {
			p.owner[li] = id
		}
	}
	return p, nil
}

// Size returns the shard count.
func (p *Pool) Size() int { return len(p.shards) }

// Config returns the resolved pool configuration.
func (p *Pool) Config() Config { return p.cfg }

// Shard returns shard id (panics out of range, like a slice).
func (p *Pool) Shard(id int) *Shard { return p.shards[id] }

// Owner returns the shard owning a layer, or nil for unmapped layers.
func (p *Pool) Owner(layer int) *Shard {
	if layer < 0 || layer >= len(p.owner) || p.owner[layer] < 0 {
		return nil
	}
	return p.shards[p.owner[layer]]
}

// Layers returns every mapped layer in ascending order.
func (p *Pool) Layers() []int { return p.layers }

// Network returns the partitioned network (read-only while sessions are
// live).
func (p *Pool) Network() *nn.Network { return p.net }

// Retune applies an environment-adjusted device model to every shard's
// every replica — the environment is shared by all physical tiles.
func (p *Pool) Retune(dev noise.DeviceParams) error {
	for _, sh := range p.shards {
		if err := sh.set.Retune(dev); err != nil {
			return fmt.Errorf("shard: shard %d: %w", sh.id, err)
		}
	}
	return nil
}

// Status snapshots every shard for /readyz and the mnn_shard_* series.
func (p *Pool) Status() []ShardStatus {
	out := make([]ShardStatus, len(p.shards))
	for i, sh := range p.shards {
		out[i] = sh.Status()
	}
	return out
}
