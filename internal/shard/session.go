package shard

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/nn"
)

// Session is one concurrent evaluation stream over the pool: one replica
// session per shard plus a private forward-pass clone of the full network.
// Each layer MVM is delegated to the owning shard's session, so routing,
// failover, and voting happen inside the fault domain that owns the layer.
// Like the sessions underneath it must be driven from a single goroutine.
type Session struct {
	pool *Pool
	subs []*sessionSub
	net  *nn.Network
	mvms []nn.MVMFunc
	// fb is the pool-level lockstep batcher, armed by the first
	// ForwardBatch. Each paused layer group belongs to exactly one shard,
	// so batched evaluation delegates whole groups.
	fb  *nn.ForwardBatcher
	tmp map[int]accel.Stats
}

// sessionSub pairs a shard with this session's evaluation stream on it.
type sessionSub struct {
	sh  *Shard
	ses sessionStream
}

// sessionStream is the slice of replica.Session the pool session drives —
// an interface seam so shard tests can fake a shard's evaluator.
type sessionStream interface {
	Reseed(stream uint64)
	MVMLayer(layer int, x []float64) []float64
	BeginBatch(streams []uint64)
	BatchMVM(layer int, idx []int, xs [][]float64) ([][]float64, []error)
	DrainStats() accel.Stats
	DrainLayerStatsInto(out map[int]accel.Stats)
	DrainBatchStats(i int) accel.Stats
	DrainBatchLayerStatsInto(i int, out map[int]accel.Stats)
	Close()
}

// NewSession creates an evaluation stream across every shard.
func (p *Pool) NewSession(seed uint64) *Session {
	s := &Session{
		pool: p,
		subs: make([]*sessionSub, len(p.shards)),
		net:  p.primary.InferenceNet(),
		tmp:  make(map[int]accel.Stats),
	}
	for i, sh := range p.shards {
		s.subs[i] = &sessionSub{sh: sh, ses: sh.set.NewSession(seed)}
	}
	s.mvms = make([]nn.MVMFunc, len(s.net.Layers))
	for _, layer := range p.layers {
		layer := layer
		sub := s.subs[p.owner[layer]]
		s.mvms[layer] = func(x []float64) []float64 {
			return sub.ses.MVMLayer(layer, x)
		}
	}
	return s
}

// Reseed repoints the request stream on every shard's session. Each shard
// derives the same per-layer sub-streams the monolithic session would, so
// the evaluation stays a pure function of (engines, stream, input)
// regardless of the shard count.
func (s *Session) Reseed(stream uint64) {
	for _, sub := range s.subs {
		sub.ses.Reseed(stream)
	}
}

// Forward runs one routed inference pass across the shards. The returned
// tensor is owned by the session's network clone and valid until the next
// forward pass.
func (s *Session) Forward(x *nn.Tensor) *nn.Tensor {
	return s.net.ForwardWith(x, s.mvms)
}

// ForwardBatch runs one routed noisy inference per input, batched: images
// advance in lockstep through the full network and each paused layer group
// is delegated to the shard owning that layer, which evaluates it with the
// same per-replica grouping, failover, and voting as the monolithic batch
// path. streams[i] plays the role of Reseed(streams[i]) for image i.
// Outputs are valid until the session's next ForwardBatch.
func (s *Session) ForwardBatch(xs []*nn.Tensor, streams []uint64) ([]*nn.Tensor, []error) {
	if len(streams) != len(xs) {
		panic(fmt.Sprintf("shard: %d inputs, %d streams", len(xs), len(streams)))
	}
	if s.fb == nil {
		s.fb = nn.NewForwardBatcher(s.pool.primary.InferenceNet, s.pool.layers)
	}
	for _, sub := range s.subs {
		sub.ses.BeginBatch(streams)
	}
	return s.fb.Run(xs, s.batchMVM)
}

// batchMVM routes one paused layer group to the owning shard.
func (s *Session) batchMVM(layer int, idx []int, xs [][]float64) ([][]float64, []error) {
	return s.subs[s.pool.owner[layer]].ses.BatchMVM(layer, idx, xs)
}

// DrainStats returns the ECU statistics accumulated across every shard
// since the last drain and resets them.
func (s *Session) DrainStats() accel.Stats {
	var st accel.Stats
	for _, sub := range s.subs {
		st.Merge(sub.ses.DrainStats())
	}
	return st
}

// DrainLayerStatsInto drains the per-layer statistics of every shard,
// merged by layer, into the caller-owned map (cleared first). Shards own
// disjoint layers, so the merge is a union.
func (s *Session) DrainLayerStatsInto(out map[int]accel.Stats) {
	clear(out)
	for _, sub := range s.subs {
		sub.ses.DrainLayerStatsInto(s.tmp)
		for layer, st := range s.tmp {
			agg := out[layer]
			agg.Merge(st)
			out[layer] = agg
		}
	}
}

// DrainBatchStats returns lane i's stats summed across every shard since
// the last drain and resets them.
func (s *Session) DrainBatchStats(i int) accel.Stats {
	var st accel.Stats
	for _, sub := range s.subs {
		st.Merge(sub.ses.DrainBatchStats(i))
	}
	return st
}

// DrainBatchLayerStatsInto drains lane i's per-layer stats, merged across
// shards, into the caller-owned map (cleared first). Call it before
// DrainBatchStats for the same lane.
func (s *Session) DrainBatchLayerStatsInto(i int, out map[int]accel.Stats) {
	clear(out)
	for _, sub := range s.subs {
		sub.ses.DrainBatchLayerStatsInto(i, s.tmp)
		for layer, st := range s.tmp {
			agg := out[layer]
			agg.Merge(st)
			out[layer] = agg
		}
	}
}

// Close releases the session's batch machinery across every shard. The
// serial path stays usable; the batched path re-arms lazily.
func (s *Session) Close() {
	if s.fb != nil {
		s.fb.Close()
		s.fb = nil
	}
	for _, sub := range s.subs {
		sub.ses.Close()
	}
}
