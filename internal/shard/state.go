package shard

import (
	"fmt"

	"repro/internal/replica"
)

// ShardSnap is one shard's durable state: its identity (position and owned
// layers — the restore-time topology check), its serving state, its
// maintenance counters, and its full replica-set state.
type ShardSnap struct {
	ID       int              `json:"id"`
	Layers   []int            `json:"layers"`
	State    int32            `json:"state"`
	Drains   uint64           `json:"drains"`
	Repairs  uint64           `json:"repairs"`
	Remaps   uint64           `json:"remaps"`
	Rejoins  uint64           `json:"rejoins"`
	Replicas replica.SetState `json:"replicas"`
}

// PoolState is the durable state of the whole pool. The shard count is the
// topology fingerprint: a snapshot taken at M shards names M fault domains
// with M distinct layer slices and M independent replica populations, so it
// cannot be poured into a pool partitioned differently — restore refuses it
// and the caller falls back to the fresh mapping.
type PoolState struct {
	Shards []ShardSnap `json:"shards"`
}

// Snapshot captures the pool's durable state.
func (p *Pool) Snapshot() PoolState {
	st := PoolState{Shards: make([]ShardSnap, len(p.shards))}
	for i, sh := range p.shards {
		st.Shards[i] = ShardSnap{
			ID:       sh.id,
			Layers:   sh.Layers(),
			State:    sh.state.Load(),
			Drains:   sh.drains.Load(),
			Repairs:  sh.repairs.Load(),
			Remaps:   sh.remaps.Load(),
			Rejoins:  sh.rejoins.Load(),
			Replicas: sh.set.Snapshot(),
		}
	}
	return st
}

// CheckRestore validates a snapshot against this pool without touching any
// state: shard count (the topology check), each shard's identity and layer
// slice, each shard's serving state, and every replica set underneath.
func (p *Pool) CheckRestore(st PoolState) error {
	if len(st.Shards) != len(p.shards) {
		return fmt.Errorf("shard: snapshot has %d shards, pool has %d — topology changed, snapshot refused", len(st.Shards), len(p.shards))
	}
	for i, ss := range st.Shards {
		sh := p.shards[i]
		if ss.ID != sh.id {
			return fmt.Errorf("shard: snapshot shard %d has id %d", i, ss.ID)
		}
		if !equalInts(ss.Layers, sh.layers) {
			return fmt.Errorf("shard: snapshot shard %d owns layers %v, pool shard owns %v", i, ss.Layers, sh.layers)
		}
		if s := ShardState(ss.State); s != Serving && s != Draining && s != Degraded {
			return fmt.Errorf("shard: snapshot shard %d has unknown state %d", i, ss.State)
		}
		if err := sh.set.CheckRestore(ss.Replicas); err != nil {
			return fmt.Errorf("shard: snapshot shard %d: %w", i, err)
		}
	}
	return nil
}

// Restore rebuilds every shard from a snapshot: replica sets (engines,
// monitors, router state), serving state, and maintenance counters. Every
// shard is validated before any is touched, so a refused snapshot leaves
// the pool as it was.
func (p *Pool) Restore(st PoolState) error {
	if err := p.CheckRestore(st); err != nil {
		return err
	}
	for i, ss := range st.Shards {
		sh := p.shards[i]
		sh.mu.Lock()
		err := sh.set.Restore(ss.Replicas)
		if err == nil {
			sh.state.Store(ss.State)
			sh.drains.Store(ss.Drains)
			sh.repairs.Store(ss.Repairs)
			sh.remaps.Store(ss.Remaps)
			sh.rejoins.Store(ss.Rejoins)
		}
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard: restoring shard %d: %w", i, err)
		}
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
