package shard

import (
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/replica"
)

// noisyNet builds a small four-MVM-layer network: enough mapped layers to
// slice into four single-layer shards.
func noisyNet() *nn.Network {
	rng := rand.New(rand.NewPCG(7, 3))
	return &nn.Network{Name: "tiny4", InShape: []int{16},
		Layers: []nn.Layer{
			nn.NewDense(16, 14, rng), &nn.ReLU{},
			nn.NewDense(14, 12, rng), &nn.ReLU{},
			nn.NewDense(12, 8, rng), &nn.ReLU{},
			nn.NewDense(8, 4, rng),
		}}
}

// noisyEngine maps the network with the default (noisy) device model, so
// the invariance test exercises real per-layer noise streams, not just
// deterministic arithmetic.
func noisyEngine(t testing.TB) *accel.Engine {
	t.Helper()
	cfg := accel.DefaultConfig(accel.SchemeABN(8))
	cfg.Device.BitsPerCell = 2
	eng, err := accel.Map(noisyNet(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func poolConfig(n int) Config {
	return Config{N: n, Replicas: replica.Config{
		N:       2,
		Monitor: fault.MonitorConfig{Window: 4096, MinReads: 8, TripRate: 0.05},
	}}
}

func testInput(seed uint64) *nn.Tensor {
	rng := rand.New(rand.NewPCG(seed, 9))
	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.Float64()
	}
	return nn.FromSlice(x, 16)
}

// TestShardCountInvariance pins the tentpole contract: a prediction is a
// pure function of (engine config, request stream, input) and does not
// depend on how many shards the layers are sliced across — serially and
// through the batched path, which must also match the serial path bit for
// bit.
func TestShardCountInvariance(t *testing.T) {
	streams := []uint64{1, 2, 3, 11, 99, 1 << 33}
	var ref map[uint64][]float64
	for _, n := range []int{1, 2, 4} {
		pool, err := NewPool(noisyEngine(t), poolConfig(n))
		if err != nil {
			t.Fatalf("%d shards: %v", n, err)
		}
		ses := pool.NewSession(1)
		serial := make(map[uint64][]float64, len(streams))
		for _, stream := range streams {
			ses.Reseed(stream)
			serial[stream] = append([]float64(nil), ses.Forward(testInput(stream)).Data...)
		}
		if ref == nil {
			ref = serial
		} else {
			for _, stream := range streams {
				if !equalF64(serial[stream], ref[stream]) {
					t.Fatalf("%d shards: stream %d diverged from 1-shard output\n got %v\nwant %v",
						n, stream, serial[stream], ref[stream])
				}
			}
		}
		// Batched: same streams coalesced into one multi-image pass.
		xs := make([]*nn.Tensor, len(streams))
		for i, stream := range streams {
			xs[i] = testInput(stream)
		}
		outs, errs := ses.ForwardBatch(xs, streams)
		for i, stream := range streams {
			if errs[i] != nil {
				t.Fatalf("%d shards: batched stream %d: %v", n, stream, errs[i])
			}
			if !equalF64(outs[i].Data, ref[stream]) {
				t.Fatalf("%d shards: batched stream %d diverged from serial\n got %v\nwant %v",
					n, stream, outs[i].Data, ref[stream])
			}
		}
		ses.Close()
	}
}

// TestPoolMatchesReplicaSet pins the 1-shard pool against the bare replica
// set it wraps: the pool adds routing indirection, not arithmetic.
func TestPoolMatchesReplicaSet(t *testing.T) {
	set, err := replica.NewSet(noisyEngine(t), poolConfig(1).Replicas)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(noisyEngine(t), poolConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	rs, ps := set.NewSession(1), pool.NewSession(1)
	for _, stream := range []uint64{5, 6, 7} {
		rs.Reseed(stream)
		ps.Reseed(stream)
		want := rs.Forward(testInput(stream)).Data
		got := ps.Forward(testInput(stream)).Data
		if !equalF64(got, want) {
			t.Fatalf("stream %d: pool %v, replica set %v", stream, got, want)
		}
	}
}

// TestDrainRepairRejoin walks one shard through the maintenance lifecycle
// while a sibling keeps serving from hardware, and checks the lifecycle is
// observable in Status.
func TestDrainRepairRejoin(t *testing.T) {
	pool, err := NewPool(noisyEngine(t), poolConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	sh := pool.Shard(0)
	if got := sh.State(); got != Serving {
		t.Fatalf("fresh shard state = %v", got)
	}
	if err := sh.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := sh.State(); got != Draining {
		t.Fatalf("state after drain = %v", got)
	}
	st := sh.Status()
	if len(st.DegradedLayers) != len(sh.Layers()) {
		t.Fatalf("drained shard degrades %v of layers %v", st.DegradedLayers, sh.Layers())
	}
	// Traffic still answers while drained: the shard's layers run software.
	ses := pool.NewSession(1)
	ses.Reseed(42)
	if out := ses.Forward(testInput(42)); len(out.Data) != 4 {
		t.Fatalf("drained forward returned %d outputs", len(out.Data))
	}
	// Sibling untouched.
	if got := pool.Shard(1).State(); got != Serving {
		t.Fatalf("sibling state = %v", got)
	}
	if dl := pool.Shard(1).Status().DegradedLayers; len(dl) != 0 {
		t.Fatalf("sibling degraded layers = %v", dl)
	}
	dirty, err := sh.Repair(3, 99)
	if err != nil {
		t.Fatal(err)
	}
	if dirty != 0 {
		t.Fatalf("repair left %d dirty layers on healthy hardware", dirty)
	}
	if err := sh.Rejoin(); err != nil {
		t.Fatal(err)
	}
	if got := sh.State(); got != Serving {
		t.Fatalf("state after rejoin = %v", got)
	}
	st = sh.Status()
	if st.Drains != 1 || st.Repairs != 1 || st.Rejoins != 1 {
		t.Fatalf("lifecycle counters = drains %d repairs %d rejoins %d", st.Drains, st.Repairs, st.Rejoins)
	}
	if st.Remaps == 0 {
		t.Fatal("repair performed no remaps")
	}
	if len(st.DegradedLayers) != 0 {
		t.Fatalf("rejoined shard still degrades %v", st.DegradedLayers)
	}
	ses.Reseed(43)
	if out := ses.Forward(testInput(43)); len(out.Data) != 4 {
		t.Fatalf("rejoined forward returned %d outputs", len(out.Data))
	}
}

// TestSnapshotRoundTrip pins pool persistence: snapshot, mutate, restore,
// and the pre-mutation state is back.
func TestSnapshotRoundTrip(t *testing.T) {
	pool, err := NewPool(noisyEngine(t), poolConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Shard(1).Drain(); err != nil {
		t.Fatal(err)
	}
	snap := pool.Snapshot()
	if err := pool.Shard(1).Rejoin(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := pool.Shard(1).State(); got != Draining {
		t.Fatalf("restored shard 1 state = %v, want draining", got)
	}
	if got := pool.Shard(0).State(); got != Serving {
		t.Fatalf("restored shard 0 state = %v, want serving", got)
	}
}

// TestRestoreRefusesTopologyChange pins the satellite contract: a snapshot
// taken at M shards is refused cleanly by a pool partitioned at M' != M.
func TestRestoreRefusesTopologyChange(t *testing.T) {
	at2, err := NewPool(noisyEngine(t), poolConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	at4, err := NewPool(noisyEngine(t), poolConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	snap := at2.Snapshot()
	err = at4.Restore(snap)
	if err == nil {
		t.Fatal("4-shard pool accepted a 2-shard snapshot")
	}
	if !strings.Contains(err.Error(), "topology") {
		t.Fatalf("refusal does not name the topology change: %v", err)
	}
	// The refused pool still serves, untouched.
	for i := 0; i < at4.Size(); i++ {
		if got := at4.Shard(i).State(); got != Serving {
			t.Fatalf("shard %d state after refusal = %v", i, got)
		}
	}
}

func equalF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
