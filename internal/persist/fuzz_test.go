package persist

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

// FuzzSnapshotRestore is the corruption-safety contract: for arbitrary
// input bytes, Decode either returns a state tree that re-encodes to a
// valid envelope, or a typed refusal (ErrCorrupt / ErrVersion). No input
// may restore silently wrong — a payload that passes must survive a full
// decode→encode→decode round trip with the engine/replica shape invariant
// intact.
func FuzzSnapshotRestore(f *testing.F) {
	// Seed the corpus with a valid envelope and near-miss mutants so the
	// fuzzer starts at the interesting boundary instead of random noise.
	valid, err := Encode(sampleState())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("MNNSNAP 1 00 0\n"))
	f.Add([]byte("MNNSNAP 999 deadbeef 4\nnull"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) && !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("untyped refusal: %v", err)
			}
			if st != nil {
				t.Fatal("refused decode still returned a state")
			}
			return
		}
		// Accepted: the invariants Decode promises must hold.
		if (st.Engine == nil) == (st.Replicas == nil) {
			t.Fatalf("accepted snapshot violates exactly-one-engine-shape: engine=%v replicas=%v",
				st.Engine != nil, st.Replicas != nil)
		}
		// And it must round-trip: re-encoding and re-decoding yields the
		// same bytes, so nothing was silently dropped or reinterpreted.
		out, err := Encode(st)
		if err != nil {
			t.Fatalf("accepted snapshot fails to re-encode: %v", err)
		}
		again, err := Decode(out)
		if err != nil {
			t.Fatalf("re-encoded snapshot refused: %v", err)
		}
		out2, err := Encode(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatal("decode→encode not a fixed point")
		}
	})
}
