// Package persist makes the simulated hardware non-volatile: it snapshots
// the full device + protection state of a serving stack — per-array
// programmed/effective levels, row sparing, fault-campaign cursor, breaker
// windows, replica trust, scrub rotation, controller level — into a
// versioned, checksummed file written atomically, and restores it at boot
// so a restarted server resumes the exact lifetime trajectory it was killed
// in. Everything RNG-driven is reconstructed from (seed, position) cursors;
// no generator internals are serialized.
//
// The file format is a single header line
//
//	MNNSNAP <schema-version> <sha256-of-payload-hex> <payload-length>\n
//
// followed by the JSON payload. Any byte flip fails the checksum, a schema
// bump fails the version check, and both are surfaced as typed errors so
// the caller can refuse the snapshot loudly and fall back to a fresh Map.
package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/accel"
	"repro/internal/fault"
	"repro/internal/replica"
	"repro/internal/scrub"
	"repro/internal/shard"
)

// SchemaVersion is bumped whenever the payload layout changes
// incompatibly; older snapshots are refused, never reinterpreted.
const SchemaVersion = 1

// magic is the header sentinel.
const magic = "MNNSNAP"

// FileName is the snapshot file inside a state directory.
const FileName = "state.snap"

// Typed refusal reasons, distinguished so the serve layer can annotate
// /healthz and the mnn_persist_* metrics with what exactly was wrong.
var (
	// ErrCorrupt means the envelope or payload failed structural or
	// checksum validation — the file is not a snapshot this code wrote.
	ErrCorrupt = errors.New("persist: corrupt snapshot")
	// ErrVersion means the envelope is intact but carries a different
	// schema version.
	ErrVersion = errors.New("persist: snapshot schema version mismatch")
)

// SchedulerState is the serving scheduler's durable counters. Served is
// the wear clock: the campaign and scenario drivers advance on it, so
// restoring it resumes the lifetime trajectory mid-flight.
type SchedulerState struct {
	Served   uint64      `json:"served"`
	Canceled uint64      `json:"canceled"`
	AutoSeed uint64      `json:"auto_seed"`
	ECC      accel.Stats `json:"ecc"`
}

// RecoveryState is the recovery ladder's lifetime rung accounting.
type RecoveryState struct {
	Retries   uint64 `json:"retries"`
	Failovers uint64 `json:"failovers"`
	Remaps    uint64 `json:"remaps"`
	Degrades  uint64 `json:"degrades"`
}

// ScrubState is the patroller's durable state: the replica rotation cursor
// plus one scrub.State per replica scrubber.
type ScrubState struct {
	Cursor    int           `json:"cursor"`
	Scrubbers []scrub.State `json:"scrubbers"`
}

// ControllerState is the closed-loop protection controller's durable core:
// the posture level and the hysteresis bookkeeping that decides the next
// transition, plus the decision accounting.
type ControllerState struct {
	Level         int               `json:"level"`
	TightenStreak int               `json:"tighten_streak"`
	RelaxStreak   int               `json:"relax_streak"`
	Cooldown      int               `json:"cooldown"`
	Ticks         uint64            `json:"ticks"`
	Decisions     map[string]uint64 `json:"decisions,omitempty"`
}

// State is the full durable state of one serving stack. Exactly one of
// Engine (single-copy), Replicas (replicated), or Shards (sharded pool) is
// set — the section is the topology fingerprint, so a snapshot can never be
// poured into a pool partitioned differently. Optional sections are nil
// when the corresponding subsystem was not armed.
type State struct {
	// Workload labels the snapshot for operators; the binding identity
	// checks (seed, scheme, network) live in the engine states.
	Workload   string              `json:"workload,omitempty"`
	Engine     *accel.EngineState  `json:"engine,omitempty"`
	Replicas   *replica.SetState   `json:"replicas,omitempty"`
	Shards     *shard.PoolState    `json:"shards,omitempty"`
	Monitor    *fault.MonitorState `json:"monitor,omitempty"`
	Recovery   *RecoveryState      `json:"recovery,omitempty"`
	Campaign   *fault.RunnerState  `json:"campaign,omitempty"`
	Scrub      *ScrubState         `json:"scrub,omitempty"`
	Controller *ControllerState    `json:"controller,omitempty"`
	Scheduler  SchedulerState      `json:"scheduler"`
}

// Encode serializes a state tree into the checksummed envelope.
func Encode(st *State) ([]byte, error) {
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("persist: encoding snapshot: %w", err)
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %d %s %d\n", magic, SchemaVersion, hex.EncodeToString(sum[:]), len(payload))
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	out = append(out, payload...)
	return out, nil
}

// Decode validates an envelope end to end — magic, schema version, payload
// length, checksum, JSON — and returns the state tree. Every failure maps
// to ErrCorrupt or ErrVersion.
func Decode(data []byte) (*State, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: no header line", ErrCorrupt)
	}
	fields := bytes.Fields(data[:nl])
	if len(fields) != 4 {
		return nil, fmt.Errorf("%w: header has %d fields, want 4", ErrCorrupt, len(fields))
	}
	if string(fields[0]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, string(fields[0]))
	}
	version, err := strconv.Atoi(string(fields[1]))
	if err != nil {
		return nil, fmt.Errorf("%w: unreadable schema version %q", ErrCorrupt, string(fields[1]))
	}
	if version != SchemaVersion {
		return nil, fmt.Errorf("%w: snapshot is v%d, this build reads v%d", ErrVersion, version, SchemaVersion)
	}
	wantLen, err := strconv.Atoi(string(fields[3]))
	if err != nil || wantLen < 0 {
		return nil, fmt.Errorf("%w: unreadable payload length %q", ErrCorrupt, string(fields[3]))
	}
	payload := data[nl+1:]
	if len(payload) != wantLen {
		return nil, fmt.Errorf("%w: payload is %d bytes, header says %d", ErrCorrupt, len(payload), wantLen)
	}
	wantSum := make([]byte, sha256.Size)
	if n, err := hex.Decode(wantSum, fields[2]); err != nil || n != sha256.Size {
		return nil, fmt.Errorf("%w: unreadable checksum", ErrCorrupt)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], wantSum) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	var st State
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&st); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	topologies := 0
	for _, set := range []bool{st.Engine != nil, st.Replicas != nil, st.Shards != nil} {
		if set {
			topologies++
		}
	}
	if topologies > 1 {
		return nil, fmt.Errorf("%w: snapshot carries more than one engine-topology section", ErrCorrupt)
	}
	if topologies == 0 {
		return nil, fmt.Errorf("%w: snapshot carries no engine state", ErrCorrupt)
	}
	return &st, nil
}

// Path returns the snapshot file path inside a state directory.
func Path(dir string) string { return filepath.Join(dir, FileName) }

// Save atomically writes the state snapshot into dir: the envelope goes to
// a temporary file in the same directory, is fsynced, and renamed over the
// previous snapshot, so a crash mid-write leaves either the old snapshot or
// the new one — never a torn file.
func Save(dir string, st *State) error {
	data, err := Encode(st)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("persist: creating state dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, FileName+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: creating temp snapshot: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: closing snapshot: %w", err)
	}
	if err := os.Rename(tmpName, Path(dir)); err != nil {
		return fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	// Durability of the rename itself: fsync the directory when possible
	// (best-effort — some filesystems refuse directory syncs).
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and validates the snapshot in dir. A missing file returns an
// error satisfying errors.Is(err, os.ErrNotExist) — the fresh-boot case —
// while a present-but-unreadable snapshot maps to ErrCorrupt/ErrVersion.
func Load(dir string) (*State, error) {
	data, err := os.ReadFile(Path(dir))
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
