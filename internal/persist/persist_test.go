package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/accel"
	"repro/internal/crossbar"
	"repro/internal/fault"
)

// sampleState builds a small but fully-populated state tree, exercising
// every optional section the envelope can carry.
func sampleState() *State {
	return &State{
		Workload: "tiny",
		Engine: &accel.EngineState{
			Seed: 7, Scheme: "abn-8", Network: "tiny",
			Layers: []accel.LayerState{{
				Layer:  0,
				Remaps: 2,
				Arrays: []crossbar.ArrayState{{
					Rows: 2, Cols: 2, BitsPerCell: 2, Phys: 3,
					Prog:   [][]uint8{{1, 2}, {3, 0}, {0, 0}},
					Eff:    [][]uint8{{1, 2}, {3, 0}, {0, 0}},
					Stuck:  []StuckCellStateAlias{{Phys: 1, Col: 0, Level: 3}},
					RowMap: []int{0, 1},
					Spared: 0,
				}},
			}},
		},
		Monitor: &fault.MonitorState{Layers: []fault.MonitorLayerState{
			{Layer: 0, Reads: 100, Detected: 3, Trips: 1},
		}},
		Recovery: &RecoveryState{Retries: 9, Remaps: 1},
		Campaign: &fault.RunnerState{Seed: 42, Events: 3, Next: 2},
		Scrub:    &ScrubState{Cursor: 1},
		Controller: &ControllerState{
			Level: 2, Cooldown: 1, Ticks: 100,
			Decisions: map[string]uint64{"tighten": 2},
		},
		Scheduler: SchedulerState{Served: 1234, Canceled: 5, AutoSeed: 77},
	}
}

// StuckCellStateAlias keeps the sample literal readable.
type StuckCellStateAlias = crossbar.StuckCellState

func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := sampleState()
	data, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	// A second Encode of the decoded tree must be byte-identical: the
	// envelope is canonical, which is what the restart drill's final-state
	// comparison relies on.
	again, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("decode→encode is not byte-identical")
	}
	if got.Scheduler.Served != 1234 || got.Campaign.Next != 2 || got.Controller.Level != 2 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
}

func TestDecodeRefusesVersionMismatch(t *testing.T) {
	data, err := Encode(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	bumped := bytes.Replace(data, []byte("MNNSNAP 1 "), []byte("MNNSNAP 2 "), 1)
	if bytes.Equal(bumped, data) {
		t.Fatal("test setup: version field not found in header")
	}
	if _, err := Decode(bumped); !errors.Is(err, ErrVersion) {
		t.Fatalf("version bump: got %v, want ErrVersion", err)
	}
}

func TestDecodeRefusesCorruption(t *testing.T) {
	data, err := Encode(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	nl := bytes.IndexByte(data, '\n')

	cases := map[string]func() []byte{
		"payload bit flip": func() []byte {
			d := append([]byte(nil), data...)
			d[nl+10] ^= 0x40
			return d
		},
		"checksum flip": func() []byte {
			d := append([]byte(nil), data...)
			// The checksum is the third header field; flip a hex digit.
			i := bytes.IndexByte(d, ' ') // after magic
			i += 1 + bytes.IndexByte(d[i+1:], ' ') + 2
			if d[i] == '0' {
				d[i] = '1'
			} else {
				d[i] = '0'
			}
			return d
		},
		"truncated payload": func() []byte { return data[:len(data)-3] },
		"truncated header":  func() []byte { return data[:4] },
		"empty":             func() []byte { return nil },
		"bad magic": func() []byte {
			return append([]byte("XXXSNAP"), data[len(magic):]...)
		},
		"unknown field": func() []byte {
			// Re-envelope a payload with an extra key: the checksum passes
			// but DisallowUnknownFields must refuse it.
			payload := append([]byte(nil), data[nl+1:]...)
			payload = bytes.Replace(payload, []byte(`{"workload"`), []byte(`{"smuggled":1,"workload"`), 1)
			return envelope(t, payload)
		},
		"no engine section": func() []byte {
			return envelope(t, []byte(`{"scheduler":{"served":1}}`))
		},
		"both engine sections": func() []byte {
			return envelope(t, []byte(`{"engine":{"seed":1,"scheme":"s","network":"n"},"replicas":{"replicas":[]},"scheduler":{}}`))
		},
	}
	for name, build := range cases {
		if _, err := Decode(build()); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

// envelope wraps an arbitrary payload in a structurally valid header, so
// tests can reach past the checksum into the JSON validation.
func envelope(t *testing.T, payload []byte) []byte {
	t.Helper()
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %d %s %d\n", magic, SchemaVersion, hex.EncodeToString(sum[:]), len(payload))
	return append([]byte(header), payload...)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := sampleState()
	if err := Save(dir, st); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheduler.Served != st.Scheduler.Served {
		t.Fatalf("load: served %d, want %d", got.Scheduler.Served, st.Scheduler.Served)
	}

	// Overwrite with a newer snapshot: Save must replace atomically and
	// leave no temp files behind.
	st.Scheduler.Served = 9999
	if err := Save(dir, st); err != nil {
		t.Fatal(err)
	}
	got, err = Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheduler.Served != 9999 {
		t.Fatalf("second save not visible: served %d", got.Scheduler.Served)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != FileName {
		t.Fatalf("state dir not clean after save: %v", entries)
	}
}

func TestLoadMissingIsNotExist(t *testing.T) {
	if _, err := Load(t.TempDir()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing snapshot: got %v, want os.ErrNotExist", err)
	}
}

func TestLoadRefusesTornFile(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, sampleState()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(Path(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: half the file.
	if err := os.WriteFile(Path(dir), raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn file: got %v, want ErrCorrupt", err)
	}
}

func TestSaveCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "state")
	if err := Save(dir, sampleState()); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err != nil {
		t.Fatal(err)
	}
}
