package fault

import (
	"testing"

	"repro/internal/accel"
)

// TestObserveOnePerLayer: the per-MVM observation path trips exactly the
// observed layer, reports its window rate, and leaves siblings untouched —
// the contract the replica router's per-replica monitors rely on.
func TestObserveOnePerLayer(t *testing.T) {
	mon, err := NewMonitor(MonitorConfig{Window: 64, MinReads: 8, TripRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if st := mon.ObserveOne(0, accel.Stats{Clean: 8}); st != BreakerClosed {
		t.Fatalf("clean reads tripped the breaker: %v", st)
	}
	if r := mon.Rate(0); r != 0 {
		t.Fatalf("rate after clean reads = %g, want 0", r)
	}
	if st := mon.ObserveOne(0, accel.Stats{Detected: 8}); st != BreakerOpen {
		t.Fatalf("50%% detected rate left the breaker %v", st)
	}
	if r := mon.Rate(0); r != 0.5 {
		t.Fatalf("rate = %g, want 0.5", r)
	}
	if st := mon.State(1); st != BreakerClosed {
		t.Fatalf("layer 1 breaker %v, want closed — layers must be isolated", st)
	}
	if mon.Rate(7) != 0 {
		t.Fatal("unseen layer must report rate 0")
	}
}

// TestResetAllRestoresTrust: ResetAll closes every breaker and clears every
// window (the rejoin-after-verified-repair reset), and a layer can re-trip
// from fresh evidence afterwards.
func TestResetAllRestoresTrust(t *testing.T) {
	mon, err := NewMonitor(MonitorConfig{Window: 64, MinReads: 8, TripRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for layer := 0; layer < 3; layer++ {
		mon.ObserveOne(layer, accel.Stats{Detected: 16})
	}
	if n := mon.OpenCount(); n != 3 {
		t.Fatalf("open breakers = %d, want 3", n)
	}
	mon.ResetAll()
	if n := mon.OpenCount(); n != 0 {
		t.Fatalf("open breakers after ResetAll = %d, want 0", n)
	}
	for layer := 0; layer < 3; layer++ {
		if r := mon.Rate(layer); r != 0 {
			t.Fatalf("layer %d rate after ResetAll = %g, want 0", layer, r)
		}
	}
	if st := mon.ObserveOne(1, accel.Stats{Detected: 16}); st != BreakerOpen {
		t.Fatalf("layer could not re-trip after ResetAll: %v", st)
	}
	// Lifetime trip counts survive the reset: the snapshot still shows the
	// layer's history even though its window restarted.
	for _, h := range mon.Snapshot() {
		if h.Layer == 1 && h.Trips != 2 {
			t.Fatalf("layer 1 trips = %d, want 2", h.Trips)
		}
	}
}

// TestRatesExposesDetectedAndCorrected: the Rates() accessor reports both
// windowed rates as plain floats, tracks the halving decay alongside reads,
// and is cleared by Reset — the measured-error contract internal/predict
// plans from.
func TestRatesExposesDetectedAndCorrected(t *testing.T) {
	mon, err := NewMonitor(MonitorConfig{Window: 1024, MinReads: 64, TripRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	mon.ObserveOne(0, accel.Stats{Clean: 60, Corrected: 30, Detected: 10})
	mon.ObserveOne(2, accel.Stats{Clean: 50})
	rates := mon.Rates()
	if len(rates) != 2 {
		t.Fatalf("Rates rows = %d, want 2", len(rates))
	}
	if rates[0].Layer != 0 || rates[1].Layer != 2 {
		t.Fatalf("Rates not sorted by layer: %+v", rates)
	}
	if got, want := rates[0].Detected, 0.1; got != want {
		t.Fatalf("layer 0 detected rate = %g, want %g", got, want)
	}
	if got, want := rates[0].Corrected, 0.3; got != want {
		t.Fatalf("layer 0 corrected rate = %g, want %g", got, want)
	}
	if rates[0].Reads != 100 {
		t.Fatalf("layer 0 window reads = %d, want 100", rates[0].Reads)
	}
	if rates[1].Detected != 0 || rates[1].Corrected != 0 {
		t.Fatalf("clean layer rates nonzero: %+v", rates[1])
	}

	// The corrected tally decays with the same halving as reads/detected,
	// so the rate stays stable (not inflated) across window overflow.
	for i := 0; i < 20; i++ {
		mon.ObserveOne(0, accel.Stats{Clean: 600, Corrected: 300, Detected: 100})
	}
	r0 := mon.Rates()[0]
	if r0.Corrected < 0.25 || r0.Corrected > 0.35 {
		t.Fatalf("decayed corrected rate = %g, want about 0.3", r0.Corrected)
	}
	if r0.Reads > 1024 {
		t.Fatalf("window reads %d exceed Window after decay", r0.Reads)
	}

	mon.Reset(0)
	for _, lr := range mon.Rates() {
		if lr.Layer == 0 && (lr.Corrected != 0 || lr.Detected != 0 || lr.Reads != 0) {
			t.Fatalf("Reset left residue in rates: %+v", lr)
		}
	}
}
