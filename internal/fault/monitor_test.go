package fault

import (
	"testing"

	"repro/internal/accel"
)

// TestObserveOnePerLayer: the per-MVM observation path trips exactly the
// observed layer, reports its window rate, and leaves siblings untouched —
// the contract the replica router's per-replica monitors rely on.
func TestObserveOnePerLayer(t *testing.T) {
	mon, err := NewMonitor(MonitorConfig{Window: 64, MinReads: 8, TripRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if st := mon.ObserveOne(0, accel.Stats{Clean: 8}); st != BreakerClosed {
		t.Fatalf("clean reads tripped the breaker: %v", st)
	}
	if r := mon.Rate(0); r != 0 {
		t.Fatalf("rate after clean reads = %g, want 0", r)
	}
	if st := mon.ObserveOne(0, accel.Stats{Detected: 8}); st != BreakerOpen {
		t.Fatalf("50%% detected rate left the breaker %v", st)
	}
	if r := mon.Rate(0); r != 0.5 {
		t.Fatalf("rate = %g, want 0.5", r)
	}
	if st := mon.State(1); st != BreakerClosed {
		t.Fatalf("layer 1 breaker %v, want closed — layers must be isolated", st)
	}
	if mon.Rate(7) != 0 {
		t.Fatal("unseen layer must report rate 0")
	}
}

// TestResetAllRestoresTrust: ResetAll closes every breaker and clears every
// window (the rejoin-after-verified-repair reset), and a layer can re-trip
// from fresh evidence afterwards.
func TestResetAllRestoresTrust(t *testing.T) {
	mon, err := NewMonitor(MonitorConfig{Window: 64, MinReads: 8, TripRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for layer := 0; layer < 3; layer++ {
		mon.ObserveOne(layer, accel.Stats{Detected: 16})
	}
	if n := mon.OpenCount(); n != 3 {
		t.Fatalf("open breakers = %d, want 3", n)
	}
	mon.ResetAll()
	if n := mon.OpenCount(); n != 0 {
		t.Fatalf("open breakers after ResetAll = %d, want 0", n)
	}
	for layer := 0; layer < 3; layer++ {
		if r := mon.Rate(layer); r != 0 {
			t.Fatalf("layer %d rate after ResetAll = %g, want 0", layer, r)
		}
	}
	if st := mon.ObserveOne(1, accel.Stats{Detected: 16}); st != BreakerOpen {
		t.Fatalf("layer could not re-trip after ResetAll: %v", st)
	}
	// Lifetime trip counts survive the reset: the snapshot still shows the
	// layer's history even though its window restarted.
	for _, h := range mon.Snapshot() {
		if h.Layer == 1 && h.Trips != 2 {
			t.Fatalf("layer 1 trips = %d, want 2", h.Trips)
		}
	}
}
