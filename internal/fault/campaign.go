package fault

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/crossbar"
	"repro/internal/noise"
	"repro/internal/stats"
)

// Kind is the physical fault class an Event injects.
type Kind int

const (
	// StuckLRS pins sampled cells at the lowest-resistance (top) level —
	// the dominant endurance failure mode of Section III.
	StuckLRS Kind = iota
	// StuckHRS pins sampled cells at the highest-resistance (zero) level.
	StuckHRS
	// Drift shifts sampled cells' effective conductance by Event.Drift
	// levels without touching the programmed target; a re-program erases
	// it, a stuck cell ignores it.
	Drift
)

func (k Kind) String() string {
	switch k {
	case StuckLRS:
		return "stuck-lrs"
	case StuckHRS:
		return "stuck-hrs"
	case Drift:
		return "drift"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fault injection: at lifetime step Step, sample
// each cell of layer Layer's arrays with probability Rate and apply Kind.
type Event struct {
	Step  int
	Layer int
	Kind  Kind
	// Rate is the per-cell Bernoulli probability of this event hitting.
	Rate float64
	// Drift is the signed level shift for Kind == Drift (ignored
	// otherwise).
	Drift int
}

// Campaign is a deterministic fault schedule: the same Seed and Events
// produce bit-identical fault populations regardless of request timing,
// worker count, or how often layers were remapped in between — each
// event's cell sample is keyed by its position in the schedule, not by any
// shared RNG state.
type Campaign struct {
	Seed   uint64
	Events []Event
}

// Validate checks the schedule is well-formed and replayable.
func (c Campaign) Validate() error {
	last := -1 << 62
	for i, ev := range c.Events {
		if ev.Rate < 0 || ev.Rate > 1 {
			return fmt.Errorf("fault: event %d rate %g outside [0,1]", i, ev.Rate)
		}
		if ev.Step < last {
			return fmt.Errorf("fault: event %d at step %d after step %d — events must be step-sorted", i, ev.Step, last)
		}
		last = ev.Step
		if ev.Kind == Drift && ev.Drift == 0 {
			return fmt.Errorf("fault: event %d is a zero drift", i)
		}
		if ev.Kind != StuckLRS && ev.Kind != StuckHRS && ev.Kind != Drift {
			return fmt.Errorf("fault: event %d has unknown kind %d", i, int(ev.Kind))
		}
	}
	return nil
}

// Injector is the surface the runner needs from the accelerator — the
// accel.Engine satisfies it.
type Injector interface {
	Layers() []int
	WithArrays(layer int, f func(arrays []*crossbar.Array)) error
}

// Runner walks a campaign's events over an injector as lifetime advances.
// It is safe for concurrent use: the snapshotter reads the cursor while the
// lifetime driver advances it.
type Runner struct {
	camp Campaign
	inj  Injector

	mu   sync.Mutex
	next int // index of the first unapplied event
}

// NewRunner validates the campaign and prepares a runner positioned before
// the first event.
func NewRunner(camp Campaign, inj Injector) (*Runner, error) {
	if err := camp.Validate(); err != nil {
		return nil, err
	}
	return &Runner{camp: camp, inj: inj}, nil
}

// Remaining returns how many events have not yet been applied.
func (r *Runner) Remaining() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.camp.Events) - r.next
}

// Advance applies every event scheduled at or before the given lifetime
// step, returning the events applied. Steps are a logical wear clock (for
// the server, ticks of served requests; for open-loop experiments, the
// sweep index) so campaigns replay exactly across runs with different
// wall-clock timing.
func (r *Runner) Advance(step int) ([]Event, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var applied []Event
	for r.next < len(r.camp.Events) && r.camp.Events[r.next].Step <= step {
		idx := r.next
		ev := r.camp.Events[idx]
		if err := r.apply(idx, ev); err != nil {
			return applied, err
		}
		applied = append(applied, ev)
		r.next++
	}
	return applied, nil
}

// apply injects one event. The RNG stream of each (event, array) pair is
// derived purely from the campaign seed and the pair's schedule position,
// so replay is exact even if earlier events targeted layers that have
// since been remapped.
func (r *Runner) apply(idx int, ev Event) error {
	return r.inj.WithArrays(ev.Layer, func(arrays []*crossbar.Array) {
		for ai, a := range arrays {
			rng := stats.SubRNG(r.camp.Seed, uint64(idx)<<20|uint64(ai))
			cells := noise.SampleCells(rng, a.Rows*a.Cols, ev.Rate)
			for _, cell := range cells {
				row, col := cell/a.Cols, cell%a.Cols
				switch ev.Kind {
				case StuckLRS:
					a.SetStuck(row, col, uint8(a.NumLevels()-1))
				case StuckHRS:
					a.SetStuck(row, col, 0)
				case Drift:
					a.DriftCell(row, col, ev.Drift)
				}
			}
		}
	})
}

// LifetimeParams shapes a synthetic wear-out schedule.
type LifetimeParams struct {
	// Steps is the number of lifetime steps the schedule spans.
	Steps int
	// StuckPerStep is the per-cell probability of a new stuck fault per
	// layer per step (split between LRS and HRS by LRSFrac).
	StuckPerStep float64
	// LRSFrac is the fraction of stuck faults pinned at LRS (default 0.5
	// when the struct is zero; Section III reports stuck-at-LRS dominates
	// real devices, so campaigns typically set it higher).
	LRSFrac float64
	// DriftEvery inserts a Drift event on each layer every DriftEvery
	// steps (0 disables drift).
	DriftEvery int
	// DriftRate is the per-cell probability of each drift event.
	DriftRate float64
	// DriftDelta is the signed level shift of each drift event (default
	// -1: conductance decays toward HRS).
	DriftDelta int
}

// LifetimeCampaign generates a deterministic wear-out schedule over the
// given layers: every step each layer accrues stuck-at faults, with
// periodic drift waves layered on top.
func LifetimeCampaign(seed uint64, layers []int, p LifetimeParams) Campaign {
	if p.LRSFrac == 0 {
		p.LRSFrac = 0.5
	}
	if p.DriftDelta == 0 {
		p.DriftDelta = -1
	}
	sorted := append([]int(nil), layers...)
	sort.Ints(sorted)
	var events []Event
	for step := 1; step <= p.Steps; step++ {
		for _, layer := range sorted {
			if p.StuckPerStep > 0 {
				events = append(events,
					Event{Step: step, Layer: layer, Kind: StuckLRS, Rate: p.StuckPerStep * p.LRSFrac},
					Event{Step: step, Layer: layer, Kind: StuckHRS, Rate: p.StuckPerStep * (1 - p.LRSFrac)},
				)
			}
			if p.DriftEvery > 0 && step%p.DriftEvery == 0 && p.DriftRate > 0 {
				events = append(events, Event{
					Step: step, Layer: layer, Kind: Drift,
					Rate: p.DriftRate, Drift: p.DriftDelta,
				})
			}
		}
	}
	return Campaign{Seed: seed, Events: events}
}
