// Package fault models the lifetime-reliability side of the memristive
// accelerator: seeded stuck-at and drift fault campaigns injected into live
// crossbar arrays, and an ECU-driven health monitor whose per-layer circuit
// breaker feeds the serving recovery ladder (retry, remap, degrade).
package fault

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/accel"
)

// BreakerState is the per-layer circuit-breaker position.
type BreakerState int

const (
	// BreakerClosed means the layer is healthy: requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen means the detected-uncorrectable rate crossed the trip
	// threshold: the recovery ladder should act before trusting the layer.
	BreakerOpen
)

func (s BreakerState) String() string {
	if s == BreakerOpen {
		return "open"
	}
	return "closed"
}

// MonitorConfig tunes the per-layer health windows.
type MonitorConfig struct {
	// Window is the sliding group-read window size per layer; once a
	// layer's tally exceeds it, the window halves (exponential forgetting)
	// so old history cannot mask a fresh fault burst. Default 4096.
	Window uint64
	// MinReads is the minimum group reads before a layer may trip, so a
	// single unlucky read on a cold layer does not open the breaker.
	// Default 256.
	MinReads uint64
	// TripRate is the detected-uncorrectable rate (Detected / group reads
	// in window) at which the breaker opens. Default 0.05.
	TripRate float64
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.Window == 0 {
		c.Window = 4096
	}
	if c.MinReads == 0 {
		c.MinReads = 256
	}
	if c.TripRate == 0 {
		c.TripRate = 0.05
	}
	return c
}

// Validate rejects nonsensical monitor settings.
func (c MonitorConfig) Validate() error {
	if c.TripRate < 0 || c.TripRate > 1 {
		return fmt.Errorf("fault: trip rate %g outside [0,1]", c.TripRate)
	}
	if c.MinReads > c.Window && c.Window != 0 {
		return fmt.Errorf("fault: MinReads %d exceeds Window %d", c.MinReads, c.Window)
	}
	return nil
}

// layerWindow is one layer's decayed ECU tally.
type layerWindow struct {
	reads     uint64 // Clean + Corrected + Detected seen in window
	detected  uint64
	corrected uint64
	state     BreakerState
	trips     uint64 // lifetime count of Closed -> Open transitions
}

// LayerHealth is a monitor snapshot row.
type LayerHealth struct {
	Layer        int
	State        BreakerState
	DetectedRate float64
	WindowReads  uint64
	Trips        uint64
}

// Monitor watches per-layer ECU outcomes and trips a circuit breaker when a
// layer's detected-uncorrectable rate crosses the threshold. It is safe for
// concurrent use by serving workers.
type Monitor struct {
	cfg MonitorConfig

	mu     sync.Mutex
	layers map[int]*layerWindow
}

// NewMonitor builds a health monitor (zero-value config fields take
// defaults).
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Monitor{cfg: cfg, layers: make(map[int]*layerWindow)}, nil
}

// Config returns the resolved monitor configuration.
func (m *Monitor) Config() MonitorConfig { return m.cfg }

// Observe folds one request's per-layer ECU stats into the windows and
// returns the layers whose breaker is now open (nil when all healthy).
func (m *Monitor) Observe(perLayer map[int]accel.Stats) []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var open []int
	for layer, st := range perLayer {
		m.observeLocked(layer, st)
	}
	for layer, lw := range m.layers {
		if lw.state == BreakerOpen {
			open = append(open, layer)
		}
	}
	sort.Ints(open)
	return open
}

// ObserveOne folds a single layer's per-call ECU stats into its window and
// returns the layer's breaker state afterwards. It is the per-MVM variant of
// Observe for the replica router's per-replica monitors, where building a
// map per layer evaluation would put garbage on the serving hot path.
func (m *Monitor) ObserveOne(layer int, st accel.Stats) BreakerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.observeLocked(layer, st)
}

// observeLocked updates one layer's window under m.mu and returns the
// resulting breaker state.
func (m *Monitor) observeLocked(layer int, st accel.Stats) BreakerState {
	lw := m.layers[layer]
	if lw == nil {
		lw = &layerWindow{}
		m.layers[layer] = lw
	}
	lw.reads += st.GroupReads()
	lw.detected += st.Detected
	lw.corrected += st.Corrected
	// Exponential forgetting: halve the window once it overflows so the
	// rate tracks recent behavior, not lifetime averages.
	for lw.reads > m.cfg.Window {
		lw.reads /= 2
		lw.detected /= 2
		lw.corrected /= 2
	}
	if lw.state == BreakerClosed && lw.reads >= m.cfg.MinReads {
		if float64(lw.detected) > m.cfg.TripRate*float64(lw.reads) {
			lw.state = BreakerOpen
			lw.trips++
		}
	}
	return lw.state
}

// State returns a layer's current breaker position.
func (m *Monitor) State(layer int) BreakerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if lw := m.layers[layer]; lw != nil {
		return lw.state
	}
	return BreakerClosed
}

// Reset closes a layer's breaker and clears its window, called after a
// recovery action (retry validated the layer, or it was remapped or moved
// to the software path) so the layer re-earns trust from scratch.
func (m *Monitor) Reset(layer int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if lw := m.layers[layer]; lw != nil {
		lw.reads, lw.detected, lw.corrected = 0, 0, 0
		lw.state = BreakerClosed
	}
}

// ResetAll closes every breaker and clears every window — the trust reset a
// replica receives when it rejoins its set after a verified repair: it
// re-earns health from fresh evidence rather than pre-repair history.
func (m *Monitor) ResetAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, lw := range m.layers {
		lw.reads, lw.detected, lw.corrected = 0, 0, 0
		lw.state = BreakerClosed
	}
}

// Rate returns a layer's current detected-uncorrectable window rate (0 for
// an unseen or empty window) — the router's tiebreaker when it must pick
// among replicas none of which has a clean breaker.
func (m *Monitor) Rate(layer int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if lw := m.layers[layer]; lw != nil && lw.reads > 0 {
		return float64(lw.detected) / float64(lw.reads)
	}
	return 0
}

// OpenCount returns how many layers currently have an open breaker.
func (m *Monitor) OpenCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, lw := range m.layers {
		if lw.state == BreakerOpen {
			n++
		}
	}
	return n
}

// LayerRates is one layer's windowed ECU outcome rates as plain floats —
// the measured-error interface the analytic predictor consumes (it needs
// corrected rates too, which LayerHealth does not carry).
type LayerRates struct {
	Layer     int
	Detected  float64 // detected-uncorrectable per group read
	Corrected float64 // table-corrected per group read
	Reads     uint64  // window size backing the rates
}

// Rates returns per-layer detected and corrected rates over the current
// windows, sorted by layer index. Layers with empty windows report zero
// rates rather than being omitted, so a caller can distinguish "observed
// clean" from "never observed" via Reads.
func (m *Monitor) Rates() []LayerRates {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]LayerRates, 0, len(m.layers))
	for layer, lw := range m.layers {
		lr := LayerRates{Layer: layer, Reads: lw.reads}
		if lw.reads > 0 {
			lr.Detected = float64(lw.detected) / float64(lw.reads)
			lr.Corrected = float64(lw.corrected) / float64(lw.reads)
		}
		out = append(out, lr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Layer < out[j].Layer })
	return out
}

// Snapshot returns per-layer health rows sorted by layer index.
func (m *Monitor) Snapshot() []LayerHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]LayerHealth, 0, len(m.layers))
	for layer, lw := range m.layers {
		rate := 0.0
		if lw.reads > 0 {
			rate = float64(lw.detected) / float64(lw.reads)
		}
		out = append(out, LayerHealth{
			Layer: layer, State: lw.state, DetectedRate: rate,
			WindowReads: lw.reads, Trips: lw.trips,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Layer < out[j].Layer })
	return out
}
