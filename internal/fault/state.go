package fault

import (
	"fmt"
	"sort"
)

// RunnerState is the durable position of a fault campaign. The campaign
// itself (seed + schedule) is regenerated deterministically at boot; only
// the cursor is state, because every (event, array) RNG stream is derived
// from the seed and the event's schedule position and is fully consumed
// when the event applies — there is no live generator to checkpoint.
type RunnerState struct {
	// Seed and Events fingerprint the campaign so a cursor cannot be
	// restored onto a different schedule.
	Seed   uint64 `json:"seed"`
	Events int    `json:"events"`
	// Next is the index of the first unapplied event.
	Next int `json:"next"`
}

// Snapshot captures the runner's durable state.
func (r *Runner) Snapshot() RunnerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RunnerState{Seed: r.camp.Seed, Events: len(r.camp.Events), Next: r.next}
}

// Restore positions the runner at a persisted cursor after verifying the
// snapshot belongs to this campaign. The events before the cursor are not
// re-applied — their effects live in the restored array state.
func (r *Runner) Restore(st RunnerState) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st.Seed != r.camp.Seed {
		return fmt.Errorf("fault: snapshot campaign seed %d does not match %d", st.Seed, r.camp.Seed)
	}
	if st.Events != len(r.camp.Events) {
		return fmt.Errorf("fault: snapshot campaign has %d events, this one %d", st.Events, len(r.camp.Events))
	}
	if st.Next < 0 || st.Next > len(r.camp.Events) {
		return fmt.Errorf("fault: snapshot cursor %d outside [0,%d]", st.Next, len(r.camp.Events))
	}
	r.next = st.Next
	return nil
}

// MonitorLayerState is one layer's durable breaker window.
type MonitorLayerState struct {
	Layer     int    `json:"layer"`
	Reads     uint64 `json:"reads"`
	Detected  uint64 `json:"detected"`
	Corrected uint64 `json:"corrected"`
	Open      bool   `json:"open,omitempty"`
	Trips     uint64 `json:"trips,omitempty"`
}

// MonitorState is the durable state of a health monitor: every layer's
// decayed ECU window and breaker position.
type MonitorState struct {
	Layers []MonitorLayerState `json:"layers,omitempty"`
}

// StateSnapshot captures the monitor's durable state, sorted by layer.
// (Snapshot already names the human-facing health view.)
func (m *Monitor) StateSnapshot() MonitorState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := MonitorState{Layers: make([]MonitorLayerState, 0, len(m.layers))}
	for layer, lw := range m.layers {
		st.Layers = append(st.Layers, MonitorLayerState{
			Layer: layer, Reads: lw.reads, Detected: lw.detected, Corrected: lw.corrected,
			Open: lw.state == BreakerOpen, Trips: lw.trips,
		})
	}
	sort.Slice(st.Layers, func(i, j int) bool { return st.Layers[i].Layer < st.Layers[j].Layer })
	return st
}

// Validate checks the snapshot's internal consistency.
func (st MonitorState) Validate() error {
	seen := make(map[int]bool, len(st.Layers))
	for _, ls := range st.Layers {
		if seen[ls.Layer] {
			return fmt.Errorf("fault: snapshot describes monitor layer %d twice", ls.Layer)
		}
		seen[ls.Layer] = true
		if ls.Detected > ls.Reads || ls.Corrected > ls.Reads {
			return fmt.Errorf("fault: snapshot monitor layer %d counts exceed its window", ls.Layer)
		}
	}
	return nil
}

// RestoreState replaces the monitor's windows with a persisted snapshot.
func (m *Monitor) RestoreState(st MonitorState) error {
	if err := st.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.layers = make(map[int]*layerWindow, len(st.Layers))
	for _, ls := range st.Layers {
		lw := &layerWindow{reads: ls.Reads, detected: ls.Detected, corrected: ls.Corrected, trips: ls.Trips}
		if ls.Open {
			lw.state = BreakerOpen
		}
		m.layers[ls.Layer] = lw
	}
	return nil
}
