package fault

import (
	"math/rand/v2"
	"testing"

	"repro/internal/accel"
	"repro/internal/crossbar"
	"repro/internal/nn"
)

func testEngine(t *testing.T) *accel.Engine {
	t.Helper()
	rng := rand.New(rand.NewPCG(31, 31))
	net := &nn.Network{Name: "fault", InShape: []int{12},
		Layers: []nn.Layer{nn.NewDense(12, 10, rng), &nn.ReLU{}, nn.NewDense(10, 4, rng)}}
	cfg := accel.DefaultConfig(accel.SchemeABN(8))
	cfg.Device.BitsPerCell = 2
	cfg.Device.PRTN = 0
	cfg.Device.ProgErrFrac = 0
	cfg.Device.SampleFreq = 0
	cfg.Device.GiantProneProb = 0
	cfg.Device.FailureRate = 0
	eng, err := accel.Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// faultMap flattens every array's stuck and drift population for equality
// checks.
func faultMap(t *testing.T, eng *accel.Engine) map[int][]uint8 {
	t.Helper()
	out := make(map[int][]uint8)
	for _, layer := range eng.Layers() {
		err := eng.WithArrays(layer, func(arrays []*crossbar.Array) {
			for ai, a := range arrays {
				key := layer<<16 | ai
				levels := make([]uint8, 0, a.Rows*a.Cols)
				for r := 0; r < a.Rows; r++ {
					for c := 0; c < a.Cols; c++ {
						levels = append(levels, a.Level(r, c))
					}
				}
				out[key] = levels
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestCampaignReplayExact: the same campaign against two identical engines
// produces bit-identical effective levels, step by step — and replays
// identically even when advanced with different step granularity.
func TestCampaignReplayExact(t *testing.T) {
	engA, engB := testEngine(t), testEngine(t)
	camp := LifetimeCampaign(99, engA.Layers(), LifetimeParams{
		Steps: 6, StuckPerStep: 0.002, LRSFrac: 0.7,
		DriftEvery: 2, DriftRate: 0.01,
	})
	if len(camp.Events) == 0 {
		t.Fatal("empty campaign")
	}
	ra, err := NewRunner(camp, engA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRunner(camp, engB)
	if err != nil {
		t.Fatal(err)
	}
	// A advances one step at a time; B jumps straight to the end.
	total := 0
	for step := 1; step <= 6; step++ {
		applied, err := ra.Advance(step)
		if err != nil {
			t.Fatal(err)
		}
		total += len(applied)
	}
	if total != len(camp.Events) {
		t.Fatalf("applied %d of %d events", total, len(camp.Events))
	}
	if ra.Remaining() != 0 {
		t.Fatalf("%d events remaining after final step", ra.Remaining())
	}
	if _, err := rb.Advance(6); err != nil {
		t.Fatal(err)
	}
	ma, mb := faultMap(t, engA), faultMap(t, engB)
	if len(ma) != len(mb) {
		t.Fatalf("array counts differ: %d vs %d", len(ma), len(mb))
	}
	for key, la := range ma {
		lb := mb[key]
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("array %x cell %d: %d vs %d", key, i, la[i], lb[i])
			}
		}
	}

	// A different seed must produce a different fault population.
	engC := testEngine(t)
	campC := camp
	campC.Seed = 100
	rc, err := NewRunner(campC, engC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Advance(6); err != nil {
		t.Fatal(err)
	}
	mc := faultMap(t, engC)
	same := true
	for key, la := range ma {
		lc := mc[key]
		for i := range la {
			if la[i] != lc[i] {
				same = false
				break
			}
		}
		if !same {
			break
		}
	}
	if same {
		t.Fatal("seeds 99 and 100 produced identical fault populations")
	}
}

// TestCampaignValidation: malformed schedules are rejected up front.
func TestCampaignValidation(t *testing.T) {
	bad := []Campaign{
		{Events: []Event{{Step: 1, Kind: StuckLRS, Rate: 1.5}}},
		{Events: []Event{{Step: 2, Kind: StuckLRS, Rate: 0.1}, {Step: 1, Kind: StuckLRS, Rate: 0.1}}},
		{Events: []Event{{Step: 1, Kind: Drift, Rate: 0.1, Drift: 0}}},
		{Events: []Event{{Step: 1, Kind: Kind(9), Rate: 0.1}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("campaign %d validated", i)
		}
	}
	if _, err := NewRunner(bad[0], testEngine(t)); err == nil {
		t.Fatal("NewRunner accepted an invalid campaign")
	}
}

// TestMonitorTripAndReset: sustained detected reads open the breaker once
// MinReads is met; Reset closes it and clears the window.
func TestMonitorTripAndReset(t *testing.T) {
	mon, err := NewMonitor(MonitorConfig{Window: 1000, MinReads: 100, TripRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	clean := map[int]accel.Stats{3: {Clean: 50}}
	if open := mon.Observe(clean); open != nil {
		t.Fatalf("clean traffic opened breaker: %v", open)
	}
	// 10% detected rate, but below MinReads — must stay closed.
	if open := mon.Observe(map[int]accel.Stats{3: {Clean: 36, Detected: 4}}); open != nil {
		t.Fatalf("breaker tripped below MinReads: %v", open)
	}
	// Push past MinReads with the same rate — must trip.
	open := mon.Observe(map[int]accel.Stats{3: {Clean: 90, Detected: 10}})
	if len(open) != 1 || open[0] != 3 {
		t.Fatalf("breaker did not trip: %v", open)
	}
	if mon.State(3) != BreakerOpen || mon.OpenCount() != 1 {
		t.Fatal("state inconsistent after trip")
	}
	snap := mon.Snapshot()
	if len(snap) != 1 || snap[0].Layer != 3 || snap[0].Trips != 1 || snap[0].State != BreakerOpen {
		t.Fatalf("snapshot %+v", snap)
	}
	mon.Reset(3)
	if mon.State(3) != BreakerClosed || mon.OpenCount() != 0 {
		t.Fatal("Reset did not close the breaker")
	}
	// The window restarted: the same sub-MinReads burst must not re-trip.
	if open := mon.Observe(map[int]accel.Stats{3: {Clean: 36, Detected: 4}}); open != nil {
		t.Fatalf("breaker re-tripped on a fresh window: %v", open)
	}
}

// TestMonitorWindowDecay: a long clean history must not keep the rate
// diluted forever — after decay, a fresh fault burst still trips.
func TestMonitorWindowDecay(t *testing.T) {
	mon, err := NewMonitor(MonitorConfig{Window: 1000, MinReads: 100, TripRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// 100k clean reads; without forgetting, 10k detections at 50% rate
	// would still be under a lifetime-average 5% threshold.
	for i := 0; i < 100; i++ {
		mon.Observe(map[int]accel.Stats{0: {Clean: 1000}})
	}
	tripped := false
	for i := 0; i < 10 && !tripped; i++ {
		open := mon.Observe(map[int]accel.Stats{0: {Clean: 500, Detected: 500}})
		tripped = len(open) > 0
	}
	if !tripped {
		t.Fatal("windowed monitor behaved like a lifetime average")
	}
}

// TestMonitorDefaults: zero-value config resolves to usable defaults.
func TestMonitorDefaults(t *testing.T) {
	mon, err := NewMonitor(MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mon.Config()
	if cfg.Window == 0 || cfg.MinReads == 0 || cfg.TripRate == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if _, err := NewMonitor(MonitorConfig{TripRate: 2}); err == nil {
		t.Fatal("TripRate 2 accepted")
	}
}

// TestCampaignDegradesECU: a wear-out campaign visibly shifts the ECU
// outcome mix on a quiet engine, and the monitor trips on it — the
// end-to-end open-loop story.
func TestCampaignDegradesECU(t *testing.T) {
	eng := testEngine(t)
	camp := LifetimeCampaign(7, eng.Layers(), LifetimeParams{Steps: 1, StuckPerStep: 0.05, LRSFrac: 0.7})
	run, err := NewRunner(camp, eng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Advance(1); err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(MonitorConfig{Window: 4096, MinReads: 64, TripRate: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	sess := eng.NewSession(1)
	x := nn.FromSlice(make([]float64, 12), 12)
	for i := range x.Data {
		x.Data[i] = float64(i%5) / 5
	}
	var open []int
	for i := 0; i < 50 && len(open) == 0; i++ {
		sess.Predict(x)
		open = mon.Observe(sess.DrainLayerStats())
		sess.DrainStats()
	}
	if len(open) == 0 {
		t.Fatal("5% stuck cells never tripped the monitor")
	}
}
