package stats

import (
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
)

// Binomial is a fixed-p binomial sampler that caches the per-n CDF tables
// SampleBinomial's inversion path rebuilds on every call. The hot MVM loop
// draws Binomial(n, PRTN) once per (row, input-bit) with p fixed for the
// lifetime of the device model, so the pmf recurrence — dominated by a
// math.Pow per draw — is pure rework; the cache amortizes it to a single
// table build per distinct n.
//
// Sample is draw-for-draw identical to SampleBinomial(rng, n, p): the same
// inputs consume the same number and kind of RNG variates and return the
// same value, including the p>0.5 reflection, the normal-approximation
// regime, and the Bernoulli underflow fallback. The CDF tables are built
// with the exact float recurrence of binomialInversion so the inverted
// values match bit for bit.
//
// Sample is safe for concurrent use by multiple goroutines (each with its
// own rng); the table cache grows under a mutex and publishes atomically.
type Binomial struct {
	p    float64 // the caller's p, used for edge cases and Bernoulli trials
	pEff float64 // min(p, 1-p): the p the tables are built for
	refl bool    // p > 0.5: return n - k

	mu     sync.Mutex
	tables atomic.Pointer[[]*binomTable]
}

// binomTable is the cached inversion state for one n. Immutable once
// published.
type binomTable struct {
	// bernoulli marks ns whose pmf head math.Pow(q, n) underflowed to 0;
	// SampleBinomial falls back to counting n Bernoulli trials there, and
	// the cached path must consume draws identically.
	bernoulli bool
	// cdf[k] = P(X <= k) accumulated with the exact binomialInversion
	// recurrence (not the closed form), so inversion results match bit for
	// bit. Non-decreasing; may plateau below 1 from float rounding.
	cdf []float64
}

// NewBinomial builds a sampler for the fixed success probability p.
func NewBinomial(p float64) *Binomial {
	b := &Binomial{p: p, pEff: p}
	if p > 0.5 && p < 1 {
		b.refl = true
		b.pEff = 1 - p
	}
	return b
}

// P returns the success probability the sampler was built for.
func (b *Binomial) P() float64 { return b.p }

// Sample draws from Binomial(n, p), equivalently to
// SampleBinomial(rng, n, p) in both value and RNG consumption.
func (b *Binomial) Sample(rng *rand.Rand, n int) int {
	if n <= 0 || b.p <= 0 {
		return 0
	}
	if b.p >= 1 {
		return n
	}
	k := b.sampleEff(rng, n)
	if b.refl {
		return n - k
	}
	return k
}

// sampleEff samples Binomial(n, pEff) with pEff <= 0.5.
func (b *Binomial) sampleEff(rng *rand.Rand, n int) int {
	np := float64(n) * b.pEff
	if np >= 12 && n >= 30 {
		sigma := math.Sqrt(np * (1 - b.pEff))
		k := int(math.Round(np + sigma*rng.NormFloat64()))
		if k < 0 {
			k = 0
		}
		if k > n {
			k = n
		}
		return k
	}
	return b.sampleTable(rng, n, b.table(n))
}

// sampleTable is the cached counterpart of binomialInversion.
func (b *Binomial) sampleTable(rng *rand.Rand, n int, t *binomTable) int {
	// binomialInversion draws u before it can detect pmf underflow, so the
	// Bernoulli fallback burns one Float64 ahead of its n trial draws.
	u := rng.Float64()
	if t.bernoulli {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < b.pEff {
				k++
			}
		}
		return k
	}
	// Inversion returns the first k with u <= cdf[k], capped at n. A
	// sequential scan finds it in E[k]+1 ~ np+1 cache-friendly probes —
	// cheaper than a binary search's scattered ones for the small np this
	// regime implies (np >= 12 goes to the normal approximation instead).
	for k, c := range t.cdf {
		if u <= c {
			return k
		}
	}
	return n
}

// BinomSnapshot is a per-call-site view of a Binomial's table cache for the
// FastRand hot path: Snapshot loads the atomic table pointer once, so the
// per-draw Sample skips the atomic load (and its branches) that
// Binomial.Sample pays on every call. A snapshot taken before an MVM stays
// valid forever — tables are immutable once published — and ns it predates
// simply fall through to the locked builder.
type BinomSnapshot struct {
	b      *Binomial
	tables []*binomTable
}

// Snapshot captures the current table cache. Cheap (one atomic load); take
// one per MVM, not per draw.
func (b *Binomial) Snapshot() BinomSnapshot {
	sn := BinomSnapshot{b: b}
	if p := b.tables.Load(); p != nil {
		sn.tables = *p
	}
	return sn
}

// Sample draws from Binomial(n, p) identically (value and RNG consumption)
// to Binomial.Sample over the same rng state.
func (sn *BinomSnapshot) Sample(rng *FastRand, n int) int {
	b := sn.b
	if n <= 0 || b.p <= 0 {
		return 0
	}
	if b.p >= 1 {
		return n
	}
	np := float64(n) * b.pEff
	var k int
	if np >= 12 && n >= 30 {
		sigma := math.Sqrt(np * (1 - b.pEff))
		k = int(math.Round(np + sigma*rng.NormFloat64()))
		if k < 0 {
			k = 0
		}
		if k > n {
			k = n
		}
	} else {
		t := (*binomTable)(nil)
		if n < len(sn.tables) {
			t = sn.tables[n]
		}
		if t == nil {
			t = b.table(n)
		}
		k = sn.sampleTable(rng, n, t)
	}
	if b.refl {
		return n - k
	}
	return k
}

// sampleTable mirrors Binomial.sampleTable for the FastRand path.
func (sn *BinomSnapshot) sampleTable(rng *FastRand, n int, t *binomTable) int {
	u := rng.Float64()
	if t.bernoulli {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < sn.b.pEff {
				k++
			}
		}
		return k
	}
	for k, c := range t.cdf {
		if u <= c {
			return k
		}
	}
	return n
}

// table returns the cached inversion table for n, building it on first use.
func (b *Binomial) table(n int) *binomTable {
	if p := b.tables.Load(); p != nil && n < len(*p) && (*p)[n] != nil {
		return (*p)[n]
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var cur []*binomTable
	if p := b.tables.Load(); p != nil {
		cur = *p
	}
	if n < len(cur) && cur[n] != nil {
		return cur[n]
	}
	grown := make([]*binomTable, max(n+1, len(cur)))
	copy(grown, cur)
	t := buildBinomTable(n, b.pEff)
	grown[n] = t
	b.tables.Store(&grown)
	return t
}

// buildBinomTable accumulates the CDF with binomialInversion's exact float
// sequence: pmf(0) = Pow(q, n), pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/q.
func buildBinomTable(n int, p float64) *binomTable {
	q := 1 - p
	ratio := p / q
	pmf := math.Pow(q, float64(n))
	if pmf == 0 {
		return &binomTable{bernoulli: true}
	}
	cdf := make([]float64, n+1)
	c := pmf
	cdf[0] = c
	for k := 0; k < n; k++ {
		pmf *= float64(n-k) / float64(k+1) * ratio
		c += pmf
		cdf[k+1] = c
	}
	return &binomTable{cdf: cdf}
}
