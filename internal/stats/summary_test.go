package stats

import (
	"math"
	"testing"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %g", s.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %g", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary must be all zeros")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	rng := NewRNG(11)
	var all, a, b Summary
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 1
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d", a.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 || math.Abs(a.Var()-all.Var()) > 1e-9 {
		t.Fatalf("merge mismatch: mean %g vs %g, var %g vs %g", a.Mean(), all.Mean(), a.Var(), all.Var())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged extrema mismatch")
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(3)
	b.Merge(&a)
	if b.N() != 1 || b.Mean() != 3 {
		t.Fatal("merge into empty must copy")
	}
	var c Summary
	b.Merge(&c)
	if b.N() != 1 {
		t.Fatal("merging empty must be a no-op")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Rate() != 0 || c.HalfWidth95() != 0 {
		t.Fatal("empty counter must be zero")
	}
	for i := 0; i < 100; i++ {
		c.AddOutcome(i < 25)
	}
	if c.Rate() != 0.25 {
		t.Fatalf("rate = %g", c.Rate())
	}
	hw := c.HalfWidth95()
	want := 1.96 * math.Sqrt(0.25*0.75/100)
	if math.Abs(hw-want) > 1e-12 {
		t.Fatalf("half width = %g, want %g", hw, want)
	}
	var d Counter
	d.AddOutcome(true)
	c.Merge(d)
	if c.Trials != 101 || c.Hits != 26 {
		t.Fatalf("merge gave %d/%d", c.Hits, c.Trials)
	}
}
