package stats

import (
	"math/rand/v2"
	"sync"
	"testing"
)

// TestBinomialMatchesSampleBinomial proves the cached sampler is
// draw-for-draw interchangeable with SampleBinomial: identical values AND
// identical RNG consumption (checked by comparing a canary draw after each
// sampling sequence), across the inversion, reflection, normal, and
// Bernoulli-fallback regimes.
func TestBinomialMatchesSampleBinomial(t *testing.T) {
	ps := []float64{0, 1e-9, 0.01, 0.27, 0.5, 0.73, 0.999, 1, 1.5, -0.1}
	ns := []int{-3, 0, 1, 2, 7, 29, 30, 31, 64, 100, 128, 333, 1024}
	for _, p := range ps {
		b := NewBinomial(p)
		for _, n := range ns {
			for seed := uint64(1); seed <= 5; seed++ {
				ra := rand.New(rand.NewPCG(seed, 99))
				rb := rand.New(rand.NewPCG(seed, 99))
				// Interleave several draws so per-call state also matches.
				for i := 0; i < 4; i++ {
					want := SampleBinomial(ra, n, p)
					got := b.Sample(rb, n)
					if got != want {
						t.Fatalf("p=%g n=%d seed=%d draw %d: cached %d, reference %d", p, n, seed, i, got, want)
					}
				}
				if ca, cb := ra.Uint64(), rb.Uint64(); ca != cb {
					t.Fatalf("p=%g n=%d seed=%d: RNG canary diverged (%d vs %d) — draw consumption differs", p, n, seed, ca, cb)
				}
			}
		}
	}
}

// TestBinomialBernoulliFallback pins the Pow-underflow regime. The live
// thresholds make it unreachable (inversion requires np < 12 or n < 30, and
// q^n with q >= 0.5, n < ~1000 never underflows), but a future threshold
// change could expose it, so the table builder and sampleEff must already
// consume draws exactly like binomialInversion: one discarded u, then n
// Bernoulli trials.
func TestBinomialBernoulliFallback(t *testing.T) {
	const n, p = 3000, 0.4
	tab := buildBinomTable(n, p)
	if !tab.bernoulli {
		t.Fatalf("expected Pow(%g, %d) to underflow into the Bernoulli regime", 1-p, n)
	}
	ra := rand.New(rand.NewPCG(7, 1))
	rb := rand.New(rand.NewPCG(7, 1))
	_ = ra.Float64() // the u binomialInversion draws before detecting underflow
	want := 0
	for i := 0; i < n; i++ {
		if ra.Float64() < p {
			want++
		}
	}
	b := NewBinomial(p)
	if got := b.sampleTable(rb, n, tab); got != want {
		t.Fatalf("bernoulli fallback: cached %d, manual %d", got, want)
	}
	if ra.Uint64() != rb.Uint64() {
		t.Fatalf("bernoulli fallback consumed a different number of draws")
	}
}

// TestBinomialConcurrent exercises the lazy table growth under concurrent
// first use; the race detector is the real assertion.
func TestBinomialConcurrent(t *testing.T) {
	b := NewBinomial(0.27)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 1; n < 128; n++ {
				ref := rand.New(rand.NewPCG(uint64(g), uint64(n)))
				chk := rand.New(rand.NewPCG(uint64(g), uint64(n)))
				if b.Sample(chk, n) != SampleBinomial(ref, n, 0.27) {
					t.Errorf("goroutine %d n=%d diverged", g, n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
