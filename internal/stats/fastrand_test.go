package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestFastRandMatchesRand: FastRand must be draw-for-draw and bit-for-bit
// identical to rand.Rand over the same PCG state, including interleaved
// variate kinds (the MVM read path mixes binomial inversion Float64s,
// ziggurat NormFloat64s, and flicker Float64s on one stream).
func TestFastRandMatchesRand(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		ref := rand.New(rand.NewPCG(seed, seed^streamSalt))
		fr := NewFast(seed)
		for i := 0; i < 200000; i++ {
			switch i % 4 {
			case 0, 2:
				a, b := ref.Float64(), fr.Float64()
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, a, b)
				}
			case 1:
				a, b := ref.NormFloat64(), fr.NormFloat64()
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, a, b)
				}
			case 3:
				if a, b := ref.Uint64(), fr.Uint64(); a != b {
					t.Fatalf("seed %d draw %d: Uint64 %d != %d", seed, i, a, b)
				}
			}
		}
	}
}

// TestBinomSnapshotMatchesSample: the snapshot fast path must sample
// identically to Binomial.Sample — same values, same RNG consumption — for
// table, normal-approximation, reflection, and Bernoulli-fallback regimes.
func TestBinomSnapshotMatchesSample(t *testing.T) {
	for _, p := range []float64{0.27, 0.73, 1e-18, 0.5} {
		b := NewBinomial(p)
		ref := rand.New(rand.NewPCG(7, 7))
		fr := FastSub(0, 0)
		ReseedSub(fr.Source(), 7, 0)
		fr.Source().Seed(7, 7) // identical raw state to ref
		sn := b.Snapshot()     // empty snapshot: every n falls through
		for i := 0; i < 3000; i++ {
			n := i % 200
			a := b.Sample(ref, n)
			c := sn.Sample(fr, n)
			if a != c {
				t.Fatalf("p=%g n=%d draw %d: %d != %d", p, n, i, a, c)
			}
		}
		// Warm snapshot (tables now built): same again.
		sn = b.Snapshot()
		for i := 0; i < 3000; i++ {
			n := i % 200
			a := b.Sample(ref, n)
			c := sn.Sample(fr, n)
			if a != c {
				t.Fatalf("warm p=%g n=%d draw %d: %d != %d", p, n, i, a, c)
			}
		}
		// Streams must still be aligned after all regimes.
		if ref.Uint64() != fr.Uint64() {
			t.Fatalf("p=%g: stream desynchronized", p)
		}
	}
}
