package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomPMFSmallCases(t *testing.T) {
	// Binomial(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16.
	want := []float64{0.0625, 0.25, 0.375, 0.25, 0.0625}
	for k, w := range want {
		if got := BinomPMF(k, 4, 0.5); math.Abs(got-w) > 1e-12 {
			t.Errorf("PMF(%d;4,0.5) = %g, want %g", k, got, w)
		}
	}
}

func TestBinomPMFEdges(t *testing.T) {
	if BinomPMF(-1, 5, 0.3) != 0 || BinomPMF(6, 5, 0.3) != 0 {
		t.Error("out-of-range k must give 0")
	}
	if BinomPMF(0, 5, 0) != 1 || BinomPMF(1, 5, 0) != 0 {
		t.Error("p=0 must concentrate at k=0")
	}
	if BinomPMF(5, 5, 1) != 1 || BinomPMF(4, 5, 1) != 0 {
		t.Error("p=1 must concentrate at k=n")
	}
}

func TestBinomCDFMatchesSummation(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.3}, {50, 0.1}, {128, 0.27}, {7, 0.9}} {
		cum := 0.0
		for k := 0; k < tc.n; k++ {
			cum += BinomPMF(k, tc.n, tc.p)
			got := BinomCDF(k, tc.n, tc.p)
			if math.Abs(got-cum) > 1e-9 {
				t.Fatalf("CDF(%d;%d,%g) = %g, want %g", k, tc.n, tc.p, got, cum)
			}
		}
	}
}

func TestBinomCDFEdges(t *testing.T) {
	if BinomCDF(-1, 10, 0.5) != 0 {
		t.Error("CDF below support must be 0")
	}
	if BinomCDF(10, 10, 0.5) != 1 {
		t.Error("CDF at n must be 1")
	}
	if BinomCDF(3, 10, 0) != 1 {
		t.Error("p=0: CDF(k>=0) must be 1")
	}
	if BinomCDF(3, 10, 1) != 0 {
		t.Error("p=1: CDF(k<n) must be 0")
	}
}

func TestBinomSFComplement(t *testing.T) {
	for k := 0; k <= 20; k++ {
		s := BinomSF(k, 20, 0.35)
		c := BinomCDF(k, 20, 0.35)
		if math.Abs(s+c-1) > 1e-9 {
			t.Fatalf("SF+CDF at k=%d = %g", k, s+c)
		}
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%g(1,1) = %g", x, got)
		}
	}
	// I_0.5(a,a) = 0.5 by symmetry.
	for _, a := range []float64{2, 5, 17} {
		if got := RegIncBeta(a, a, 0.5); math.Abs(got-0.5) > 1e-10 {
			t.Errorf("I_0.5(%g,%g) = %g", a, a, got)
		}
	}
	if RegIncBeta(3, 4, 0) != 0 || RegIncBeta(3, 4, 1) != 1 {
		t.Error("bounds must be exact")
	}
}

func TestSampleBinomialMoments(t *testing.T) {
	rng := NewRNG(99)
	for _, tc := range []struct {
		n int
		p float64
	}{{16, 0.25}, {128, 0.27}, {40, 0.8}, {200, 0.02}} {
		var s Summary
		for i := 0; i < 20000; i++ {
			s.Add(float64(SampleBinomial(rng, tc.n, tc.p)))
		}
		wantMean := float64(tc.n) * tc.p
		wantStd := math.Sqrt(wantMean * (1 - tc.p))
		if math.Abs(s.Mean()-wantMean) > 4*wantStd/math.Sqrt(20000) {
			t.Errorf("n=%d p=%g: mean %g, want %g", tc.n, tc.p, s.Mean(), wantMean)
		}
		if math.Abs(s.Std()-wantStd) > 0.1*wantStd {
			t.Errorf("n=%d p=%g: std %g, want %g", tc.n, tc.p, s.Std(), wantStd)
		}
	}
}

func TestSampleBinomialEdges(t *testing.T) {
	rng := NewRNG(1)
	if SampleBinomial(rng, 0, 0.5) != 0 || SampleBinomial(rng, 10, 0) != 0 {
		t.Error("degenerate cases must be 0")
	}
	if SampleBinomial(rng, 10, 1) != 10 {
		t.Error("p=1 must return n")
	}
}

// Property: samples always lie in [0, n].
func TestSampleBinomialRangeQuick(t *testing.T) {
	rng := NewRNG(7)
	f := func(n8 uint8, pRaw uint16) bool {
		n := int(n8)
		p := float64(pRaw) / 65535
		k := SampleBinomial(rng, n, p)
		return k >= 0 && k <= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(6)
	same := true
	a = NewRNG(5)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}

func TestSubRNGIndependentStreams(t *testing.T) {
	a := SubRNG(1, 0)
	b := SubRNG(1, 1)
	collisions := 0
	for i := 0; i < 50; i++ {
		if a.Uint64() == b.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("streams 0 and 1 collided %d times", collisions)
	}
	// Determinism across construction.
	c, d := SubRNG(9, 42), SubRNG(9, 42)
	for i := 0; i < 20; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("SubRNG must be deterministic")
		}
	}
}

// Property: CDF is monotone in k and complementary to SF.
func TestBinomCDFMonotoneQuick(t *testing.T) {
	f := func(n8 uint8, pRaw uint16, k8 uint8) bool {
		n := int(n8%64) + 1
		p := float64(pRaw) / 65535
		k := int(k8) % n
		c1 := BinomCDF(k, n, p)
		c2 := BinomCDF(k+1, n, p)
		if c2 < c1-1e-12 {
			return false
		}
		return c1 >= -1e-12 && c1 <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RegIncBeta satisfies the reflection identity
// I_x(a,b) + I_{1-x}(b,a) = 1.
func TestRegIncBetaReflectionQuick(t *testing.T) {
	f := func(aRaw, bRaw, xRaw uint16) bool {
		a := 0.5 + float64(aRaw%1000)/10
		b := 0.5 + float64(bRaw%1000)/10
		x := float64(xRaw) / 65535
		lhs := RegIncBeta(a, b, x) + RegIncBeta(b, a, 1-x)
		return math.Abs(lhs-1) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
