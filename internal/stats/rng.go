// Package stats provides the deterministic random-number plumbing and the
// probability machinery shared by the simulator: PCG-based RNG streams,
// Gaussian and binomial samplers, a regularized-incomplete-beta binomial CDF,
// and the row error-rate prediction model of Section V-B5 of the paper.
package stats

import "math/rand/v2"

// streamSalt decorrelates derived RNG streams; it is an arbitrary odd
// constant and must never change, or recorded experiment seeds would no
// longer reproduce.
const streamSalt = 0x9e3779b97f4a7c15

// NewRNG returns a deterministic PCG random source for the given seed.
// Two RNGs built from the same seed produce identical streams.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^streamSalt))
}

// SubRNG derives an independent deterministic stream from a base seed and a
// stream index. It is used to give each Monte-Carlo worker, image, or array
// its own stream so that parallel runs are order-independent.
func SubRNG(seed, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, mix(stream)))
}

// SubPCG returns the raw PCG source behind SubRNG(seed, stream). Callers
// that reseed per evaluation (serve sessions, Monte-Carlo workers) keep the
// source and rewind it with ReseedSub instead of allocating a fresh
// rand.Rand per stream.
func SubPCG(seed, stream uint64) *rand.PCG {
	return rand.NewPCG(seed, mix(stream))
}

// ReseedSub repoints src at the (seed, stream) sub-stream. A rand.Rand
// wrapping src then produces exactly the sequence SubRNG(seed, stream)
// would, with no allocation.
func ReseedSub(src *rand.PCG, seed, stream uint64) {
	src.Seed(seed, mix(stream))
}

// mix is the splitmix64 finalizer; it spreads small stream indices across
// the full 64-bit space so PCG sequences do not overlap.
func mix(x uint64) uint64 {
	x += streamSalt
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
