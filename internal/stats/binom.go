package stats

import (
	"math"
	"math/rand/v2"
)

// BinomPMF returns P(X = k) for X ~ Binomial(n, p).
func BinomPMF(k, n int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return math.Exp(lg - lk - lnk + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

// BinomCDF returns P(X <= k) for X ~ Binomial(n, p), computed through the
// regularized incomplete beta function: P(X <= k) = I_{1-p}(n-k, k+1).
// This is the binomial CDF the paper's row error-rate prediction
// (Section V-B5) is built on.
func BinomCDF(k, n int, p float64) float64 {
	switch {
	case k < 0:
		return 0
	case k >= n:
		return 1
	case p <= 0:
		return 1
	case p >= 1:
		return 0
	}
	return RegIncBeta(float64(n-k), float64(k+1), 1-p)
}

// BinomSF returns the survival function P(X > k) = 1 - CDF(k), computed
// directly for accuracy in the small-probability tail.
func BinomSF(k, n int, p float64) float64 {
	switch {
	case k < 0:
		return 1
	case k >= n:
		return 0
	case p <= 0:
		return 0
	case p >= 1:
		return 1
	}
	return RegIncBeta(float64(k+1), float64(n-k), p)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the Lentz continued-fraction expansion (Numerical Recipes 6.4).
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	la, _ := math.Lgamma(a + b)
	lb, _ := math.Lgamma(a)
	lc, _ := math.Lgamma(b)
	front := math.Exp(la - lb - lc + a*math.Log(x) + b*math.Log(1-x))
	// The continued fraction converges rapidly for x <= (a+1)/(a+b+2);
	// otherwise use the symmetry relation. The inclusive bound guarantees
	// the recursion terminates: the reflected argument 1-x then falls
	// strictly below the reflected threshold.
	if x <= (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - RegIncBeta(b, a, 1-x)
}

func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-15
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// SampleBinomial draws from Binomial(n, p). Small expected counts use CDF
// inversion; large ones use a normal approximation with continuity
// correction, which is accurate to well under the quantization granularity
// of the simulated ADCs.
func SampleBinomial(rng *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - SampleBinomial(rng, n, 1-p)
	}
	np := float64(n) * p
	if np < 12 || n < 30 {
		return binomialInversion(rng, n, p)
	}
	sigma := math.Sqrt(np * (1 - p))
	k := int(math.Round(np + sigma*rng.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// binomialInversion walks the CDF using the pmf recurrence
// pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p). Expected cost O(np).
func binomialInversion(rng *rand.Rand, n int, p float64) int {
	u := rng.Float64()
	q := 1 - p
	ratio := p / q
	pmf := math.Pow(q, float64(n))
	if pmf == 0 {
		// Underflow guard for large n with moderate p: fall back to
		// counting Bernoulli trials, which cannot underflow.
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	cdf := pmf
	k := 0
	for u > cdf && k < n {
		pmf *= float64(n-k) / float64(k+1) * ratio
		k++
		cdf += pmf
	}
	return k
}
