package stats

import "math"

// Summary holds streaming first- and second-moment statistics plus extrema.
// The zero value is ready to use.
type Summary struct {
	n          int
	mean, m2   float64
	min, max   float64
	haveSample bool
}

// Add folds one observation into the summary (Welford update).
func (s *Summary) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if !s.haveSample || x < s.min {
		s.min = x
	}
	if !s.haveSample || x > s.max {
		s.max = x
	}
	s.haveSample = true
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the unbiased sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Merge folds another summary into this one (parallel Welford merge), so
// per-worker summaries can be combined deterministically.
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	mean := s.mean + d*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Counter tallies successes out of trials and reports a rate with a normal
// approximation confidence half-width; used for misclassification rates.
type Counter struct {
	Hits, Trials int
}

// AddOutcome records one trial.
func (c *Counter) AddOutcome(hit bool) {
	c.Trials++
	if hit {
		c.Hits++
	}
}

// Rate returns Hits/Trials, or 0 for an empty counter.
func (c *Counter) Rate() float64 {
	if c.Trials == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Trials)
}

// HalfWidth95 returns the 95% normal-approximation confidence half-width
// of the rate.
func (c *Counter) HalfWidth95() float64 {
	if c.Trials == 0 {
		return 0
	}
	p := c.Rate()
	return 1.96 * math.Sqrt(p*(1-p)/float64(c.Trials))
}

// Merge adds another counter's tallies.
func (c *Counter) Merge(o Counter) {
	c.Hits += o.Hits
	c.Trials += o.Trials
}
