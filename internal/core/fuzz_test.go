package core

import "testing"

// FuzzDecode throws arbitrary shift-weighted corruptions at encoded words
// and checks the ECU's safety contract: a word whose arithmetic invariant
// is broken (not divisible by A*B) must NEVER come back StatusClean — the
// one outcome that would silently feed a wrong value to the reduction tree.
// (A corruption that lands on another multiple of A*B is undetectable by
// any AN code and legitimately decodes Clean; that is the code-distance
// limit, not an ECU bug.) It also pins the revert-to-uncorrected policy
// and the divisibility of every corrected result.
func FuzzDecode(f *testing.F) {
	const dataBits = 16
	abn, err := NewStaticCode(dataBits, 3)
	if err != nil {
		f.Fatal(err)
	}
	an, err := NewStaticCode(dataBits, 1)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(uint64(0), uint8(0), int8(0), uint8(0), int8(0), false)
	f.Add(uint64(1), uint8(0), int8(1), uint8(0), int8(0), false)
	f.Add(uint64(65535), uint8(3), int8(-1), uint8(9), int8(2), true)
	f.Add(uint64(40000), uint8(20), int8(4), uint8(1), int8(-4), false)
	f.Add(uint64(12345), uint8(7), int8(127), uint8(7), int8(-127), true)

	f.Fuzz(func(t *testing.T, data uint64, shift1 uint8, mag1 int8, shift2 uint8, mag2 int8, useAN bool) {
		c := abn
		if useAN {
			c = an
		}
		data &= (1 << dataBits) - 1
		enc, err := c.EncodeU64(data)
		if err != nil {
			t.Fatalf("encoding %d: %v", data, err)
		}
		wordBits := uint(dataBits + c.CheckBits())

		// Apply up to two injected errors of the physical form +/-mag*2^s
		// (a cell stuck or drifted in bit plane s). Corruptions that would
		// underflow below zero or overflow the Word are skipped: the ADC
		// clamps, so such values cannot reach the ECU.
		corrupted := enc
		for _, e := range [...]struct {
			shift uint8
			mag   int8
		}{{shift1, mag1}, {shift2, mag2}} {
			s := uint(e.shift) % wordBits
			switch {
			case e.mag > 0:
				next := corrupted
				if next.AddShifted(uint64(e.mag), s) {
					corrupted = next
				}
			case e.mag < 0:
				delta := WordFromU64(uint64(-int64(e.mag))).Lsh(s)
				if next, borrow := corrupted.Sub(delta); borrow == 0 {
					corrupted = next
				}
			}
		}

		fixed, status := c.Correct(corrupted)
		broken := corrupted.ModU64(c.M()) != 0

		// The core safety property: a detectably-corrupted word must
		// never be declared Clean.
		if broken && status == StatusClean {
			t.Fatalf("corrupted word %v (enc %v, residue %d mod %d) decoded Clean",
				corrupted, enc, corrupted.ModU64(c.M()), c.M())
		}
		switch status {
		case StatusClean:
			if fixed != corrupted {
				t.Fatalf("Clean changed the word: %v -> %v", corrupted, fixed)
			}
		case StatusCorrected:
			if fixed.ModU64(c.M()) != 0 {
				t.Fatalf("Corrected result %v not divisible by M=%d", fixed, c.M())
			}
			if !broken {
				t.Fatalf("valid word %v was 'corrected' to %v", corrupted, fixed)
			}
		case StatusDetected:
			// Section VI-A: the hardware reverts to the uncorrected value.
			if fixed != corrupted {
				t.Fatalf("Detected did not revert: %v -> %v", corrupted, fixed)
			}
		default:
			t.Fatalf("unknown status %v", status)
		}

		if status != StatusDetected {
			if _, rem := c.Decode(fixed); rem != 0 {
				t.Fatalf("status %v left remainder %d at the decoder", status, rem)
			}
		}
		// An untouched word round-trips exactly.
		if corrupted == enc {
			if status != StatusClean {
				t.Fatalf("unmodified encoding flagged %v", status)
			}
			if q, _ := c.Decode(fixed); q.Low64() != data {
				t.Fatalf("round trip %d -> %d", data, q.Low64())
			}
		}
	})
}
