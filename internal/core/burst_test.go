package core

import "testing"

func TestBurstTableCorrectsBurstErrors(t *testing.T) {
	const wordBits = 24
	a := MinimalBurstA(wordBits, 3)
	table, err := NewBurstTable(a, wordBits)
	if err != nil {
		t.Fatal(err)
	}
	code := &Code{A: a, B: 3, Table: table}
	if err := code.Validate(); err != nil {
		t.Fatal(err)
	}
	enc, err := code.EncodeU64(4000)
	if err != nil {
		t.Fatal(err)
	}
	// Every single-bit and every 2-bit burst (quantization error up to 3
	// in one row) must correct.
	for i := 0; i < 12; i++ {
		for _, mult := range []uint64{1, 3} {
			mag, _ := Pow2Word(i).MulU64(mult)
			bad, _ := enc.Add(mag)
			fixed, status := code.Correct(bad)
			if status != StatusCorrected || fixed != enc {
				t.Fatalf("+%d<<%d not corrected: %v", mult, i, status)
			}
			bad2, borrow := enc.Sub(mag)
			if borrow == 0 {
				fixed2, status2 := code.Correct(bad2)
				if status2 != StatusCorrected || fixed2 != enc {
					t.Fatalf("-%d<<%d not corrected: %v", mult, i, status2)
				}
			}
		}
	}
}

// TestBurstCodesLessEfficient reproduces the Section V-A remark: the
// minimal single-error codes use every residue (A=19 for 9-bit words, A=79
// for 39-bit), while burst codes waste a noticeable fraction.
func TestBurstCodesLessEfficient(t *testing.T) {
	single, err := NewStaticTable(19, 9)
	if err != nil {
		t.Fatal(err)
	}
	if e := ResidueEfficiency(single); e != 1.0 {
		t.Fatalf("A=19 efficiency = %g, want 1.0", e)
	}
	single79, err := NewStaticTable(79, 39)
	if err != nil {
		t.Fatal(err)
	}
	if e := ResidueEfficiency(single79); e != 1.0 {
		t.Fatalf("A=79 efficiency = %g, want 1.0", e)
	}

	const wordBits = 24
	a := MinimalBurstA(wordBits, 1)
	burst, err := NewBurstTable(a, wordBits)
	if err != nil {
		t.Fatal(err)
	}
	if e := ResidueEfficiency(burst); e > 0.95 {
		t.Fatalf("burst efficiency = %g; the paper expects noticeable waste", e)
	}
	if e := ResidueEfficiency(burst); e < 0.5 {
		t.Fatalf("burst efficiency = %g; implausibly wasteful", e)
	}
}

// TestBurstAGrowsFasterThanSingle verifies the Mandelbaum observation the
// paper cites: correcting wider error classes inflates A quickly.
func TestBurstAGrowsFasterThanSingle(t *testing.T) {
	const wordBits = 20
	single := MinimalSingleErrorA(wordBits, 1)
	burst := MinimalBurstA(wordBits, 1)
	if burst <= single {
		t.Fatalf("burst A=%d must exceed single-error A=%d", burst, single)
	}
	if burst < 2*single-10 {
		t.Fatalf("burst A=%d suspiciously small vs single A=%d", burst, single)
	}
}

func TestBurstTableCollisionDetection(t *testing.T) {
	// A too-small modulus must be rejected.
	if _, err := NewBurstTable(31, 24); err == nil {
		t.Fatal("A=31 cannot host 94 burst syndromes")
	}
}

func TestResidueEfficiencyEmpty(t *testing.T) {
	if ResidueEfficiency(NewTable(3)) != 0 {
		t.Fatal("empty table efficiency must be 0")
	}
}
