package core

import (
	"testing"
	"testing/quick"
)

func TestSyndromeFromSteps(t *testing.T) {
	s := SyndromeFromSteps(2, 10)
	if s.Neg || s.Mag != WordFromU64(2048) {
		t.Fatalf("2<<10 syndrome = %v", s)
	}
	n := SyndromeFromSteps(-1, 0)
	if !n.Neg || n.Mag != WordFromU64(1) {
		t.Fatalf("-1 syndrome = %v", n)
	}
	if !SyndromeFromSteps(0, 5).IsZero() {
		t.Fatal("zero steps must give zero syndrome")
	}
}

func TestSyndromeAddTo(t *testing.T) {
	a := SyndromeFromSteps(1, 4)  // +16
	b := SyndromeFromSteps(1, 2)  // +4
	c := SyndromeFromSteps(-1, 4) // -16
	if sum := a.AddTo(b); sum.Neg || sum.Mag.Low64() != 20 {
		t.Fatalf("+16 + +4 = %v", sum)
	}
	if diff := a.AddTo(c); !diff.IsZero() {
		t.Fatalf("+16 + -16 = %v", diff)
	}
	if diff := b.AddTo(c); !diff.Neg || diff.Mag.Low64() != 12 {
		t.Fatalf("+4 + -16 = %v", diff)
	}
	if diff := c.AddTo(b); !diff.Neg || diff.Mag.Low64() != 12 {
		t.Fatalf("-16 + +4 = %v", diff)
	}
}

func TestSyndromeResidue(t *testing.T) {
	if r := SyndromeFromSteps(1, 3).Residue(19); r != 8 {
		t.Fatalf("+8 mod 19 = %d", r)
	}
	if r := SyndromeFromSteps(-1, 3).Residue(19); r != 11 {
		t.Fatalf("-8 mod 19 = %d, want 11", r)
	}
	if r := (Syndrome{Neg: true, Mag: WordFromU64(19)}).Residue(19); r != 0 {
		t.Fatalf("-19 mod 19 = %d, want 0", r)
	}
}

func TestSyndromeApplyTo(t *testing.T) {
	v := WordFromU64(100)
	pos := SyndromeFromSteps(1, 3) // error +8, correction subtracts 8
	got, ok := pos.ApplyTo(v)
	if !ok || got.Low64() != 92 {
		t.Fatalf("ApplyTo = %v,%v", got, ok)
	}
	neg := SyndromeFromSteps(-1, 3) // error -8, correction adds 8
	got, ok = neg.ApplyTo(v)
	if !ok || got.Low64() != 108 {
		t.Fatalf("ApplyTo = %v,%v", got, ok)
	}
	_, ok = SyndromeFromSteps(1, 10).ApplyTo(WordFromU64(5))
	if ok {
		t.Fatal("underflowing correction must report failure")
	}
}

func TestSyndromeString(t *testing.T) {
	if s := SyndromeFromSteps(1, 2).String(); s != "+4" {
		t.Fatalf("String = %q", s)
	}
	if s := SyndromeFromSteps(-3, 1).String(); s != "-6" {
		t.Fatalf("String = %q", s)
	}
}

func TestTableAddAndLookup(t *testing.T) {
	tb := NewTable(19)
	if tb.Capacity() != 18 {
		t.Fatalf("capacity = %d", tb.Capacity())
	}
	s := SyndromeFromSteps(1, 1)
	if !tb.Add(s) {
		t.Fatal("first add must succeed")
	}
	if tb.Add(s) {
		t.Fatal("duplicate residue must be rejected")
	}
	if tb.Add(SyndromeFromSteps(0, 0)) {
		t.Fatal("zero syndrome must be rejected")
	}
	if tb.Add(Syndrome{Mag: WordFromU64(19)}) {
		t.Fatal("residue-zero syndrome must be rejected")
	}
	got, ok := tb.Lookup(2)
	if !ok || got != s {
		t.Fatalf("Lookup(2) = %v,%v", got, ok)
	}
	if _, ok := tb.Lookup(5); ok {
		t.Fatal("unallocated residue must miss")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestTableSyndromesSorted(t *testing.T) {
	tb := NewTable(19)
	tb.Add(SyndromeFromSteps(1, 3))
	tb.Add(SyndromeFromSteps(1, 0))
	tb.Add(SyndromeFromSteps(-1, 0))
	all := tb.Syndromes()
	if len(all) != 3 {
		t.Fatalf("len = %d", len(all))
	}
	// Residues: +8 -> 8, +1 -> 1, -1 -> 18; sorted by residue.
	if all[0] != SyndromeFromSteps(1, 0) || all[1] != SyndromeFromSteps(1, 3) || all[2] != SyndromeFromSteps(-1, 0) {
		t.Fatalf("unexpected order: %v", all)
	}
}

func TestStaticTableTooSmallA(t *testing.T) {
	if _, err := NewStaticTable(17, 9); err == nil {
		t.Fatal("A=17 has only 16 usable residues; 9-bit words need 18")
	}
}

// Property: every static table's residues are unique and every syndrome it
// stores corrects the corresponding single-bit error exactly.
func TestStaticTableCorrectsAllQuick(t *testing.T) {
	table, err := NewStaticTable(79, 39)
	if err != nil {
		t.Fatal(err)
	}
	code := &Code{A: 79, B: 1, Table: table}
	f := func(v uint32, bit uint8, neg bool) bool {
		b := int(bit) % 39
		enc, err := code.EncodeU64(uint64(v))
		if err != nil {
			return false
		}
		var bad Word
		if neg {
			var borrow uint64
			bad, borrow = enc.Sub(Pow2Word(b))
			if borrow != 0 {
				return true // skip underflow cases
			}
		} else {
			bad, _ = enc.Add(Pow2Word(b))
		}
		fixed, status := code.Correct(bad)
		return status == StatusCorrected && fixed == enc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinimalSingleErrorARespectsCoprimality(t *testing.T) {
	a := MinimalSingleErrorA(20, 3)
	if a%3 == 0 {
		t.Fatalf("A=%d must be coprime to B=3", a)
	}
	if a%2 == 0 {
		t.Fatalf("A=%d must be odd", a)
	}
}
