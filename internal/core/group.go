package core

import "fmt"

// GroupLayout describes the multi-operand packing of paper Section V-B2:
// several operands are concatenated into one wide word and encoded together,
// so the constant check-bit budget is amortized over the whole group.
//
// Each operand occupies a lane of OperandBits data bits plus GuardBits of
// headroom. The guard bits absorb the growth of a lane's partial dot product
// when up to 2^GuardBits crossbar columns accumulate into it, so the lanes of
// a decoded result can be split apart exactly. The paper packs 8x16-bit
// operands with no guard bits and accepts inter-lane carry bleed; both modes
// are supported (see DESIGN.md section 1).
type GroupLayout struct {
	// Operands is the number of values packed per group (paper: 8).
	Operands int
	// OperandBits is the data width of each operand (paper: 16).
	OperandBits int
	// GuardBits is the per-lane headroom reserved for dot-product growth.
	GuardBits int
}

// LaneBits returns the total width of one lane.
func (g GroupLayout) LaneBits() int { return g.OperandBits + g.GuardBits }

// DataBits returns the width of the packed (unencoded) group.
func (g GroupLayout) DataBits() int { return g.Operands * g.LaneBits() }

// Validate checks the layout fits the fixed Word width with room for check
// bits and per-input-bit accumulation.
func (g GroupLayout) Validate() error {
	switch {
	case g.Operands < 1:
		return fmt.Errorf("core: group needs at least one operand, got %d", g.Operands)
	case g.OperandBits < 1 || g.OperandBits > 64:
		return fmt.Errorf("core: operand width %d out of range [1,64]", g.OperandBits)
	case g.GuardBits < 0:
		return fmt.Errorf("core: negative guard bits %d", g.GuardBits)
	case g.LaneBits() > 64:
		return fmt.Errorf("core: lane width %d exceeds 64 bits", g.LaneBits())
	case g.DataBits()+16 > WordBits:
		return fmt.Errorf("core: group of %d bits leaves no room for check bits in a %d-bit Word", g.DataBits(), WordBits)
	}
	return nil
}

// Pack concatenates operands into a group word, operand 0 in the least
// significant lane. Each operand must fit in OperandBits.
func (g GroupLayout) Pack(ops []uint64) (Word, error) {
	if len(ops) != g.Operands {
		return Word{}, fmt.Errorf("core: packing %d operands into a %d-operand group", len(ops), g.Operands)
	}
	limit := operandLimit(g.OperandBits)
	var w Word
	lane := uint(g.LaneBits())
	for i, op := range ops {
		if op > limit {
			return Word{}, fmt.Errorf("core: operand %d value %d exceeds %d bits", i, op, g.OperandBits)
		}
		if !w.AddShifted(op, uint(i)*lane) {
			return Word{}, fmt.Errorf("core: group overflowed Word while packing operand %d", i)
		}
	}
	return w, nil
}

// Unpack splits a decoded group word into its lane values. With sufficient
// guard bits each lane is an exact partial sum; with GuardBits=0 this models
// the paper's split, including any carry bleed between lanes.
func (g GroupLayout) Unpack(w Word) []uint64 {
	return g.UnpackInto(nil, w)
}

// UnpackInto is Unpack writing into dst, reusing dst's backing array when it
// is large enough — the per-read allocation this removes dominated the MVM
// hot path's garbage.
func (g GroupLayout) UnpackInto(dst []uint64, w Word) []uint64 {
	if cap(dst) < g.Operands {
		dst = make([]uint64, g.Operands)
	}
	dst = dst[:g.Operands]
	lane := uint(g.LaneBits())
	for i := range dst {
		dst[i] = w.ExtractBits(uint(i)*lane, lane)
	}
	return dst
}

// GuardBitsFor returns the guard width needed so a lane can absorb the sum
// of up to columns operands without overflowing: ceil(log2(columns)).
func GuardBitsFor(columns int) int {
	g := 0
	for (1 << g) < columns {
		g++
	}
	return g
}

func operandLimit(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << bits) - 1
}
