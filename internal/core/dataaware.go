package core

import (
	"math"
	"math/bits"
	"sort"
)

// RowErr models the error susceptibility of one physical crossbar row for
// data-aware syndrome allocation (paper Section V-B1). BitOffset is the
// arithmetic weight of the row's least significant bit in the reduced
// output (row index times bits-per-cell), and StepProb gives the probability
// of each small quantization error the row can produce.
type RowErr struct {
	BitOffset int
	// StepProb holds P(+1), P(-1), P(+2), P(-2) quantization-step errors.
	StepProb [4]float64
	// Extra lists additional step magnitudes this row can produce (for
	// example the combined excess of multiple characterized giant-RTN
	// cells sharing the row).
	Extra []ExtraStep
}

// ExtraStep is one additional signed step error with its probability.
type ExtraStep struct {
	Steps int
	P     float64
}

// stepForIndex maps a StepProb index to its signed step value.
func stepForIndex(i int) int {
	switch i {
	case 0:
		return 1
	case 1:
		return -1
	case 2:
		return 2
	default:
		return -2
	}
}

// StuckErr models a stuck-at fault (paper Section V-B1): when the faulty
// cell's column is driven, the row output deviates by a fixed number of
// quantization steps with probability PActive (the chance the column is
// active in a given cycle).
type StuckErr struct {
	BitOffset int
	Steps     int
	PActive   float64
}

// DataAwareSpec carries everything needed to build a data-aware table for
// one array: per-row error models, stuck-at faults, and search bounds.
type DataAwareSpec struct {
	Rows  []RowErr
	Stuck []StuckErr
	// MaxCombine bounds the number of rows combined into one syndrome
	// (paper: 4). Zero selects the default.
	MaxCombine int
	// TopRows bounds how many of the most error-prone rows participate in
	// multi-row combinations. Zero selects the default.
	TopRows int
}

const (
	defaultMaxCombine = 4
	defaultTopRows    = 12
	// pruneHarmRatio is the maximum tolerated ratio of silent-miscorrection
	// probability to covered probability for one table entry. Transient
	// (RTN) errors are recoverable once detected — a re-read draws fresh
	// noise — while a silent miscorrection smears garbage through the
	// decode, so a transient entry must be practically alias-free to be
	// worth keeping. Stuck-at entries correct persistent faults that
	// re-reads cannot fix, so they tolerate real collateral.
	pruneHarmRatio      = 1e-3
	pruneHarmRatioStuck = 0.25
	// probFloor discards combinations too improbable to be worth a table
	// entry; the paper stops combining "until the probability of a
	// combination falls outside of the total number of available syndromes".
	probFloor = 1e-15
)

// candidate is one scored error pattern competing for a table entry.
type candidate struct {
	syn   Syndrome
	prob  float64
	score float64 // log2(prob) + MSB bit position (paper Figure 8 weighting)
	stuck bool    // true if the pattern involves a stuck-at fault
}

func scoreOf(prob float64, syn Syndrome) float64 {
	msb := syn.Mag.BitLen() - 1
	return math.Log2(prob) + float64(msb)
}

// buildCandidates enumerates the scored error list of paper Figure 8:
// single-row one- and two-step errors, multi-row combinations drawn from the
// most error-prone rows, and (if present) stuck-at patterns alone and
// combined with single-row RTN errors.
//
// Following Section V-B1, rows are "combined to form 2, 3, and 4 physical
// row combinations until the probability of a combination falls outside of
// the total number of available syndromes": a combination qualifies only if
// its raw probability ranks within the table capacity against the
// single-row errors — otherwise low-probability combinations of
// high-significance rows would flood the capacity-th highest scores and
// displace single-row errors that actually occur. The qualified candidates
// are then ordered by the MSB-weighted score for allocation.
func buildCandidates(spec DataAwareSpec, capacity int) []candidate {
	maxCombine := spec.MaxCombine
	if maxCombine <= 0 {
		maxCombine = defaultMaxCombine
	}
	topRows := spec.TopRows
	if topRows <= 0 {
		topRows = defaultTopRows
	}

	var cands []candidate
	add := func(syn Syndrome, prob float64, stuck bool) {
		if prob < probFloor || syn.IsZero() {
			return
		}
		cands = append(cands, candidate{syn: syn, prob: prob, score: scoreOf(prob, syn), stuck: stuck})
	}

	// Single-row errors, all step sizes.
	var singleProbs []float64
	for _, r := range spec.Rows {
		for i, p := range r.StepProb {
			if p <= 0 {
				continue
			}
			add(SyndromeFromSteps(stepForIndex(i), r.BitOffset), p, false)
			singleProbs = append(singleProbs, p)
		}
		for _, ex := range r.Extra {
			if ex.P <= 0 || ex.Steps == 0 {
				continue
			}
			add(SyndromeFromSteps(ex.Steps, r.BitOffset), ex.P, false)
			singleProbs = append(singleProbs, ex.P)
		}
	}

	// Qualification threshold: a combination must be at least as probable
	// as the capacity-th most probable single-row error.
	qual := probFloor
	if len(singleProbs) > 0 && capacity > 0 {
		sort.Sort(sort.Reverse(sort.Float64Slice(singleProbs)))
		k := min(capacity, len(singleProbs)) - 1
		if singleProbs[k] > qual {
			qual = singleProbs[k]
		}
	}
	addQualified := func(syn Syndrome, prob float64, stuck bool) {
		if prob < qual {
			return
		}
		add(syn, prob, stuck)
	}

	// Multi-row combinations over the most susceptible rows, single-step
	// errors with every sign pattern.
	idx := topRowIndices(spec.Rows, topRows)
	if maxCombine >= 2 && len(idx) >= 2 {
		combineRows(spec.Rows, idx, maxCombine, addQualified)
	}

	// Stuck-at pairs: two faults in one group are regularly driven in the
	// same cycle, and their combined syndrome is a persistent pattern a
	// re-read cannot clear.
	for i := range spec.Stuck {
		a := spec.Stuck[i]
		if a.Steps == 0 || a.PActive <= 0 {
			continue
		}
		for j := i + 1; j < len(spec.Stuck); j++ {
			bst := spec.Stuck[j]
			if bst.Steps == 0 || bst.PActive <= 0 {
				continue
			}
			syn := SyndromeFromSteps(a.Steps, a.BitOffset).
				AddTo(SyndromeFromSteps(bst.Steps, bst.BitOffset))
			add(syn, a.PActive*bst.PActive, true)
		}
	}

	// Stuck-at patterns: the fault alone, and combined with each
	// single-row single-step RTN error. A stuck fault is near-certain when
	// driven, so its standalone pattern always qualifies.
	for _, st := range spec.Stuck {
		if st.Steps == 0 || st.PActive <= 0 {
			continue
		}
		base := SyndromeFromSteps(st.Steps, st.BitOffset)
		add(base, st.PActive, true)
		for _, r := range spec.Rows {
			for i := 0; i < 2; i++ { // +/- 1 step only
				p := st.PActive * r.StepProb[i]
				if p < probFloor {
					continue
				}
				add(base.AddTo(SyndromeFromSteps(stepForIndex(i), r.BitOffset)), p, true)
			}
		}
	}

	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		// Deterministic tie-break on magnitude then sign.
		c := cands[i].syn.Mag.Cmp(cands[j].syn.Mag)
		if c != 0 {
			return c < 0
		}
		return !cands[i].syn.Neg && cands[j].syn.Neg
	})
	return cands
}

// topRowIndices returns the indices of the n rows with the highest
// single-step error probability, in descending order.
func topRowIndices(rows []RowErr, n int) []int {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	key := func(i int) float64 { return rows[i].StepProb[0] + rows[i].StepProb[1] }
	sort.Slice(idx, func(a, b int) bool {
		ka, kb := key(idx[a]), key(idx[b])
		if ka != kb {
			return ka > kb
		}
		return idx[a] < idx[b]
	})
	if n < len(idx) {
		idx = idx[:n]
	}
	// Drop rows with no error probability at all.
	out := idx[:0]
	for _, i := range idx {
		if key(i) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// combineRows enumerates 2..maxCombine row subsets of idx with every +/-1
// sign pattern and emits the composed syndromes.
func combineRows(rows []RowErr, idx []int, maxCombine int, add func(Syndrome, float64, bool)) {
	var chosen []int
	var rec func(start int)
	rec = func(start int) {
		if len(chosen) >= 2 {
			emitSignPatterns(rows, chosen, add)
		}
		if len(chosen) == maxCombine {
			return
		}
		for i := start; i < len(idx); i++ {
			chosen = append(chosen, idx[i])
			rec(i + 1)
			chosen = chosen[:len(chosen)-1]
		}
	}
	rec(0)
}

func emitSignPatterns(rows []RowErr, chosen []int, add func(Syndrome, float64, bool)) {
	n := len(chosen)
	for pattern := 0; pattern < 1<<n; pattern++ {
		prob := 1.0
		var syn Syndrome
		for k, ri := range chosen {
			signIdx := (pattern >> k) & 1 // 0 => +1 step, 1 => -1 step
			p := rows[ri].StepProb[signIdx]
			if p <= 0 {
				prob = 0
				break
			}
			prob *= p
			step := 1
			if signIdx == 1 {
				step = -1
			}
			syn = syn.AddTo(SyndromeFromSteps(step, rows[ri].BitOffset))
		}
		if prob < probFloor {
			continue
		}
		add(syn, prob, false)
	}
}

// BuildDataAwareTable constructs the correction table for one array under a
// given A by greedy allocation of the scored candidate list. When stuck-at
// faults are present the capacity is split in half between fault-combined
// and fault-free patterns (paper Section V-B1), which keeps the array usable
// around hard faults at some cost in RTN coverage. The returned table
// records the probability mass it covers, the metric the A-search maximizes.
//
// Beyond the paper's greedy fill, the builder resolves residue collisions in
// favor of the more probable pattern and prunes entries whose expected
// silent-miscorrection harm exceeds their coverage: an entry s at residue r
// silently miscorrects every occurring pattern x with the same residue for
// which (x - s) is divisible by B, so if those patterns are collectively
// more probable than s itself, leaving the residue empty (detect-and-retry)
// loses less accuracy than correcting with s.
func BuildDataAwareTable(a, b uint64, spec DataAwareSpec) *Table {
	return allocate(a, b, buildCandidates(spec, int(a)-1), len(spec.Stuck) > 0)
}

func allocate(a, b uint64, cands []candidate, split bool) *Table {
	capTotal := int(a) - 1
	budgetStuck, budgetPlain := 0, capTotal
	if split {
		budgetStuck = capTotal / 2
		budgetPlain = capTotal - budgetStuck
	}
	// Group candidates by residue; duplicates of one syndrome merge their
	// probability.
	type slotCand struct {
		syn   Syndrome
		prob  float64
		score float64
		stuck bool
	}
	byRes := make(map[uint64][]slotCand)
	order := make([]uint64, 0, len(cands))
	// zeroResStuck accumulates persistent (stuck-at) patterns whose
	// syndrome is divisible by A under this modulus: they are permanently
	// undetectable, the worst possible outcome, and the A search must
	// avoid such moduli.
	var zeroResStuck float64
	for _, c := range cands {
		res := c.syn.Residue(a)
		if res == 0 {
			if c.stuck && (b <= 1 || c.syn.Mag.ModU64(b) == 0) {
				zeroResStuck += c.prob
			}
			continue
		}
		list := byRes[res]
		merged := false
		for i := range list {
			if list[i].syn == c.syn {
				list[i].prob += c.prob
				merged = true
				break
			}
		}
		if !merged {
			if len(list) == 0 {
				order = append(order, res)
			}
			list = append(list, slotCand{syn: c.syn, prob: c.prob, score: c.score, stuck: c.stuck})
		}
		byRes[res] = list
	}
	// Within each residue, the most probable pattern wins the slot (ties
	// broken by score): correcting the pattern that actually occurs
	// minimizes silent miscorrections.
	type chosenEntry struct {
		res uint64
		slotCand
		harm float64
	}
	entries := make([]chosenEntry, 0, len(order))
	for _, res := range order {
		list := byRes[res]
		best := 0
		for i := 1; i < len(list); i++ {
			if list[i].prob > list[best].prob ||
				(list[i].prob == list[best].prob && list[i].score > list[best].score) {
				best = i
			}
		}
		e := chosenEntry{res: res, slotCand: list[best]}
		// Harm: probability mass of same-residue patterns this entry would
		// silently miscorrect (difference divisible by B).
		for i, sc := range list {
			if i == best {
				continue
			}
			diff := sc.syn.AddTo(Syndrome{Neg: !e.syn.Neg, Mag: e.syn.Mag})
			if b <= 1 || diff.Mag.ModU64(b) == 0 {
				e.harm += sc.prob
			}
		}
		// Prune contested slots: a detected error is recoverable (revert,
		// or re-read — RTN is transient), while a silent miscorrection is
		// not, so an entry must clearly dominate its aliases to be worth
		// keeping.
		ratio := pruneHarmRatio
		if e.stuck {
			ratio = pruneHarmRatioStuck
		}
		if e.harm > ratio*e.prob {
			continue
		}
		entries = append(entries, e)
	}
	// Fill the table by the paper's MSB-weighted score, respecting the
	// stuck/plain capacity split.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].score != entries[j].score {
			return entries[i].score > entries[j].score
		}
		return entries[i].res < entries[j].res
	})
	t := NewTable(a)
	usedStuck, usedPlain := 0, 0
	var leftover []chosenEntry
	for _, e := range entries {
		if usedStuck+usedPlain >= capTotal {
			break
		}
		if split {
			if e.stuck && usedStuck >= budgetStuck {
				leftover = append(leftover, e)
				continue
			}
			if !e.stuck && usedPlain >= budgetPlain {
				leftover = append(leftover, e)
				continue
			}
		}
		if t.Add(e.syn) {
			t.coveredProb += e.prob
			if e.stuck {
				usedStuck++
			} else {
				usedPlain++
			}
		}
	}
	// Backfill any remaining capacity from patterns that exceeded their
	// half's budget; better a useful entry than an empty slot.
	for _, e := range leftover {
		if t.Len() >= capTotal {
			break
		}
		if t.Add(e.syn) {
			t.coveredProb += e.prob
		}
	}
	// A permanently undetectable persistent pattern corrupts every read it
	// occurs in; weight it heavily so SearchA steers to a safer modulus.
	t.coveredProb -= 10 * zeroResStuck
	return t
}

// CandidateAs returns every legal A for a check-bit budget: odd values
// coprime to b, at least 3, no larger than (2^checkBits - 1)/b so that A*b
// still fits the budget (paper Section V-B4).
func CandidateAs(checkBits int, b uint64) []uint64 {
	if b < 1 {
		b = 1
	}
	maxA := ((uint64(1) << uint(checkBits)) - 1) / b
	var out []uint64
	for a := uint64(3); a <= maxA; a += 2 {
		if b > 1 && a%b == 0 {
			continue
		}
		out = append(out, a)
	}
	return out
}

// HardwareCandidateAs returns the fixed five-entry candidate set the
// hardware divider supports (paper Section VI): the five largest primes in
// the legal range, which empirically dominate the full search because large
// prime A maximizes both table capacity and residue spread.
func HardwareCandidateAs(checkBits int, b uint64) []uint64 {
	all := CandidateAs(checkBits, b)
	var primes []uint64
	for i := len(all) - 1; i >= 0 && len(primes) < 5; i-- {
		if isPrime(all[i]) {
			primes = append(primes, all[i])
		}
	}
	if len(primes) == 0 && len(all) > 0 {
		primes = append(primes, all[len(all)-1])
	}
	return primes
}

func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	for d := uint64(37); d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// SearchA evaluates candidate A values against a data-aware spec and returns
// the code (A, B, table) whose table covers the greatest error probability
// mass (paper Section V-B4). A nil candidates slice searches the full legal
// range for the check-bit budget.
func SearchA(checkBits int, b uint64, spec DataAwareSpec, candidates []uint64) *Code {
	if candidates == nil {
		candidates = CandidateAs(checkBits, b)
	}
	maxA := uint64(0)
	for _, a := range candidates {
		if a > maxA {
			maxA = a
		}
	}
	cands := buildCandidates(spec, int(maxA)-1)
	split := len(spec.Stuck) > 0
	var best *Code
	var bestCovered float64
	for _, a := range candidates {
		t := allocate(a, b, cands, split)
		if best == nil || t.CoveredProb() > bestCovered ||
			(t.CoveredProb() == bestCovered && a > best.A) {
			best = &Code{A: a, B: b, Table: t}
			bestCovered = t.CoveredProb()
		}
	}
	return best
}

// MaxBitOffset returns the highest bit position any candidate syndrome can
// disturb, used by callers to size encoded words. It is the maximum row
// offset plus one step bit.
func (s DataAwareSpec) MaxBitOffset() int {
	m := 0
	for _, r := range s.Rows {
		if r.BitOffset+1 > m {
			m = r.BitOffset + 1
		}
	}
	for _, st := range s.Stuck {
		w := st.BitOffset + bits.Len(uint(abs(st.Steps)))
		if w > m {
			m = w
		}
	}
	return m
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
