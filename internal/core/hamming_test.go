package core

import "testing"

func TestHamming84RoundTrip(t *testing.T) {
	for d := uint8(0); d < 16; d++ {
		w := Hamming84Encode(d)
		got, corrected, ok := Hamming84Decode(w)
		if !ok || corrected || got != d {
			t.Fatalf("clean decode of %d: got %d corrected=%v ok=%v", d, got, corrected, ok)
		}
	}
}

func TestHamming84CorrectsSingleBit(t *testing.T) {
	for d := uint8(0); d < 16; d++ {
		w := Hamming84Encode(d)
		for b := 0; b < 8; b++ {
			got, corrected, ok := Hamming84Decode(w ^ (1 << b))
			if !ok || !corrected || got != d {
				t.Fatalf("data %d bit %d: got %d corrected=%v ok=%v", d, b, got, corrected, ok)
			}
		}
	}
}

func TestHamming84DetectsDoubleBit(t *testing.T) {
	misses := 0
	for d := uint8(0); d < 16; d++ {
		w := Hamming84Encode(d)
		for b1 := 0; b1 < 8; b1++ {
			for b2 := b1 + 1; b2 < 8; b2++ {
				if _, _, ok := Hamming84Decode(w ^ (1 << b1) ^ (1 << b2)); ok {
					misses++
				}
			}
		}
	}
	if misses != 0 {
		t.Fatalf("%d double errors went undetected", misses)
	}
}

// TestFigure3ArithmeticVsHammingDistance replays the paper's Figure 3: an
// additive error of +1 turns 0111 (7) into 1000 (8) — one arithmetic error
// but Hamming distance four, outside SECDED's reach.
func TestFigure3ArithmeticVsHammingDistance(t *testing.T) {
	if d := HammingDistance(0b0111, 0b1000); d != 4 {
		t.Fatalf("Hamming distance = %d, want 4", d)
	}
}

// TestSECDEDDoesNotConserveAddition replays Figure 5: encoding 3 and 4 with
// the (8,4) Hamming code and adding the code words does not produce the
// code word of 7, and the gap is Hamming distance two — uncorrectable even
// though no error occurred.
func TestSECDEDDoesNotConserveAddition(t *testing.T) {
	if SECDEDConservesAddition(3, 4) {
		t.Fatal("SECDED must not conserve 3+4")
	}
	sum := uint16(Hamming84Encode(3)) + uint16(Hamming84Encode(4))
	direct := uint16(Hamming84Encode(7))
	if sum == direct {
		t.Fatal("sums unexpectedly equal")
	}
	if sum < 256 {
		if d := HammingDistance(uint64(sum), uint64(direct)); d < 2 {
			t.Fatalf("expected Hamming distance >= 2, got %d", d)
		}
	}
	// Contrast: the AN code conserves the same addition exactly.
	code := &Code{A: 19, B: 1}
	e3, _ := code.EncodeU64(3)
	e4, _ := code.EncodeU64(4)
	e7, _ := code.EncodeU64(7)
	if sum, _ := e3.Add(e4); sum != e7 {
		t.Fatal("AN code must conserve addition")
	}
}

// TestSECDEDConservationIsRare scans all operand pairs: conservation can
// only hold by coincidence, never in general.
func TestSECDEDConservationIsRare(t *testing.T) {
	conserved := 0
	for x := uint8(0); x < 16; x++ {
		for y := uint8(0); y < 16; y++ {
			if SECDEDConservesAddition(x, y) {
				conserved++
			}
		}
	}
	if conserved > 64 { // far fewer than all 256 pairs
		t.Fatalf("SECDED conserved %d/256 pairs; should be rare", conserved)
	}
}
