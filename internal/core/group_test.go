package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestGroupLayoutWidths(t *testing.T) {
	g := GroupLayout{Operands: 8, OperandBits: 16, GuardBits: 7}
	if g.LaneBits() != 23 || g.DataBits() != 184 {
		t.Fatalf("lane=%d data=%d", g.LaneBits(), g.DataBits())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPaperBitAccounting checks the paper's Section VIII-A arithmetic: an
// eight-operand group of 16-bit operands with 9 check bits is 137 bits and
// needs 35 bit slices at 4 bits per cell (zero-guard accounting mode).
func TestPaperBitAccounting(t *testing.T) {
	g := GroupLayout{Operands: 8, OperandBits: 16, GuardBits: 0}
	encodedBits := g.DataBits() + 9
	if encodedBits != 137 {
		t.Fatalf("encoded bits = %d, want 137", encodedBits)
	}
	slices := (encodedBits + 3) / 4
	if slices != 35 {
		t.Fatalf("slices = %d, want 35", slices)
	}
}

func TestGroupValidateRejections(t *testing.T) {
	bad := []GroupLayout{
		{Operands: 0, OperandBits: 16},
		{Operands: 4, OperandBits: 0},
		{Operands: 4, OperandBits: 65},
		{Operands: 4, OperandBits: 16, GuardBits: -1},
		{Operands: 4, OperandBits: 60, GuardBits: 10}, // lane > 64
		{Operands: 16, OperandBits: 16, GuardBits: 0}, // 256 data bits, no room
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Errorf("case %d: expected validation error for %+v", i, g)
		}
	}
}

func TestGroupPackUnpackRoundTrip(t *testing.T) {
	g := GroupLayout{Operands: 8, OperandBits: 16, GuardBits: 7}
	rng := rand.New(rand.NewPCG(21, 22))
	for i := 0; i < 300; i++ {
		ops := make([]uint64, g.Operands)
		for j := range ops {
			ops[j] = rng.Uint64() & 0xFFFF
		}
		w, err := g.Pack(ops)
		if err != nil {
			t.Fatal(err)
		}
		back := g.Unpack(w)
		for j := range ops {
			if back[j] != ops[j] {
				t.Fatalf("lane %d: got %d want %d", j, back[j], ops[j])
			}
		}
	}
}

func TestGroupPackRejectsOversizedOperand(t *testing.T) {
	g := GroupLayout{Operands: 2, OperandBits: 8, GuardBits: 0}
	if _, err := g.Pack([]uint64{256, 0}); err == nil {
		t.Fatal("operand exceeding width must be rejected")
	}
	if _, err := g.Pack([]uint64{1}); err == nil {
		t.Fatal("wrong operand count must be rejected")
	}
}

// TestGuardBitsPreserveLaneSums is the key linearity property: with guard
// bits sized for the column count, the lanes of a sum of packed groups are
// the sums of the lanes — the property in-situ MVM over grouped operands
// depends on.
func TestGuardBitsPreserveLaneSums(t *testing.T) {
	const cols = 100
	g := GroupLayout{Operands: 8, OperandBits: 8, GuardBits: GuardBitsFor(cols)}
	rng := rand.New(rand.NewPCG(31, 32))
	var acc Word
	want := make([]uint64, g.Operands)
	for j := 0; j < cols; j++ {
		ops := make([]uint64, g.Operands)
		for k := range ops {
			ops[k] = rng.Uint64() & 0xFF
			want[k] += ops[k]
		}
		w, err := g.Pack(ops)
		if err != nil {
			t.Fatal(err)
		}
		var carry uint64
		acc, carry = acc.Add(w)
		if carry != 0 {
			t.Fatal("accumulation overflow")
		}
	}
	got := g.Unpack(acc)
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("lane %d: got %d want %d", k, got[k], want[k])
		}
	}
}

// TestZeroGuardCarryBleed documents the paper-mode hazard: without guard
// bits, lane sums that overflow the operand width corrupt the next lane.
func TestZeroGuardCarryBleed(t *testing.T) {
	g := GroupLayout{Operands: 2, OperandBits: 4, GuardBits: 0}
	var acc Word
	// Two columns each holding operand value 15 in lane 0 -> lane sum 30
	// overflows 4 bits.
	for j := 0; j < 2; j++ {
		w, err := g.Pack([]uint64{15, 1})
		if err != nil {
			t.Fatal(err)
		}
		acc, _ = acc.Add(w)
	}
	lanes := g.Unpack(acc)
	if lanes[0] == 30 {
		t.Fatal("zero-guard lane cannot represent 30")
	}
	if lanes[1] == 2 {
		t.Fatal("expected carry bleed into lane 1")
	}
}

func TestGuardBitsFor(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 127: 7, 128: 7, 129: 8}
	for cols, want := range cases {
		if got := GuardBitsFor(cols); got != want {
			t.Errorf("GuardBitsFor(%d) = %d, want %d", cols, got, want)
		}
	}
}

// Property: pack/unpack round-trips for arbitrary layouts and operands.
func TestGroupRoundTripQuick(t *testing.T) {
	f := func(raw [6]uint16, guard uint8) bool {
		g := GroupLayout{Operands: 6, OperandBits: 16, GuardBits: int(guard % 8)}
		if g.Validate() != nil {
			return true
		}
		ops := make([]uint64, 6)
		for i, v := range raw {
			ops[i] = uint64(v)
		}
		w, err := g.Pack(ops)
		if err != nil {
			return false
		}
		back := g.Unpack(w)
		for i := range ops {
			if back[i] != ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
