package core

import (
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func randWord(r *rand.Rand, maxBits int) Word {
	var w Word
	for i := range w {
		w[i] = r.Uint64()
	}
	// Mask down to maxBits.
	if maxBits < WordBits {
		keep := maxBits
		for i := range w {
			switch {
			case keep >= 64:
				keep -= 64
			case keep > 0:
				w[i] &= (uint64(1) << keep) - 1
				keep = 0
			default:
				w[i] = 0
			}
		}
	}
	return w
}

func TestWordFromU64RoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 2, 255, 1 << 40, ^uint64(0)} {
		w := WordFromU64(v)
		if w.Low64() != v {
			t.Errorf("Low64 = %d, want %d", w.Low64(), v)
		}
		if got := w.Big().Uint64(); got != v {
			t.Errorf("Big = %d, want %d", got, v)
		}
	}
}

func TestWordBigRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 200; i++ {
		w := randWord(r, WordBits)
		back, err := WordFromBig(w.Big())
		if err != nil {
			t.Fatalf("WordFromBig: %v", err)
		}
		if back != w {
			t.Fatalf("round trip mismatch: %v != %v", back, w)
		}
	}
}

func TestWordFromBigRejectsNegative(t *testing.T) {
	if _, err := WordFromBig(big.NewInt(-1)); err == nil {
		t.Fatal("expected error for negative big.Int")
	}
}

func TestWordFromBigRejectsOverflow(t *testing.T) {
	b := new(big.Int).Lsh(big.NewInt(1), WordBits)
	if _, err := WordFromBig(b); err == nil {
		t.Fatal("expected error for 257-bit value")
	}
}

func TestWordAddMatchesBig(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 500; i++ {
		a, b := randWord(r, 255), randWord(r, 255)
		sum, carry := a.Add(b)
		if carry != 0 {
			t.Fatalf("unexpected carry for 255-bit operands")
		}
		want := new(big.Int).Add(a.Big(), b.Big())
		if sum.Big().Cmp(want) != 0 {
			t.Fatalf("%v + %v = %v, want %v", a, b, sum, want)
		}
	}
}

func TestWordAddCarryOut(t *testing.T) {
	var all1 Word
	for i := range all1 {
		all1[i] = ^uint64(0)
	}
	sum, carry := all1.Add(WordFromU64(1))
	if carry != 1 || !sum.IsZero() {
		t.Fatalf("max+1: got sum=%v carry=%d", sum, carry)
	}
}

func TestWordSubMatchesBig(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 500; i++ {
		a, b := randWord(r, 256), randWord(r, 256)
		if a.Cmp(b) < 0 {
			a, b = b, a
		}
		diff, borrow := a.Sub(b)
		if borrow != 0 {
			t.Fatalf("unexpected borrow when a >= b")
		}
		want := new(big.Int).Sub(a.Big(), b.Big())
		if diff.Big().Cmp(want) != 0 {
			t.Fatalf("%v - %v = %v, want %v", a, b, diff, want)
		}
	}
}

func TestWordSubBorrow(t *testing.T) {
	_, borrow := WordFromU64(1).Sub(WordFromU64(2))
	if borrow != 1 {
		t.Fatal("1-2 should borrow")
	}
}

func TestWordMulU64MatchesBig(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 500; i++ {
		a := randWord(r, 190)
		m := r.Uint64() % (1 << 16)
		p, ok := a.MulU64(m)
		if !ok {
			t.Fatalf("190-bit * 16-bit should not overflow")
		}
		want := new(big.Int).Mul(a.Big(), new(big.Int).SetUint64(m))
		if p.Big().Cmp(want) != 0 {
			t.Fatalf("%v * %d = %v, want %v", a, m, p, want)
		}
	}
}

func TestWordMulU64Overflow(t *testing.T) {
	w := Pow2Word(255)
	if _, ok := w.MulU64(2); ok {
		t.Fatal("2^255 * 2 must report overflow")
	}
}

func TestWordDivModMatchesBig(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 10))
	for i := 0; i < 500; i++ {
		a := randWord(r, 256)
		d := r.Uint64()
		if d == 0 {
			d = 1
		}
		q, rem := a.DivModU64(d)
		db := new(big.Int).SetUint64(d)
		wantQ, wantR := new(big.Int).DivMod(a.Big(), db, new(big.Int))
		if q.Big().Cmp(wantQ) != 0 || new(big.Int).SetUint64(rem).Cmp(wantR) != 0 {
			t.Fatalf("%v / %d: got (%v,%d) want (%v,%v)", a, d, q, rem, wantQ, wantR)
		}
		if got := a.ModU64(d); got != rem {
			t.Fatalf("ModU64 = %d disagrees with DivModU64 remainder %d", got, rem)
		}
	}
}

func TestWordDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on division by zero")
		}
	}()
	WordFromU64(1).DivModU64(0)
}

func TestWordShiftsMatchBig(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 12))
	mask := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), WordBits), big.NewInt(1))
	for i := 0; i < 300; i++ {
		a := randWord(r, 256)
		n := uint(r.IntN(300))
		gotL := a.Lsh(n).Big()
		wantL := new(big.Int).And(new(big.Int).Lsh(a.Big(), n), mask)
		if gotL.Cmp(wantL) != 0 {
			t.Fatalf("%v << %d = %v, want %v", a, n, gotL, wantL)
		}
		gotR := a.Rsh(n).Big()
		wantR := new(big.Int).Rsh(a.Big(), n)
		if gotR.Cmp(wantR) != 0 {
			t.Fatalf("%v >> %d = %v, want %v", a, n, gotR, wantR)
		}
	}
}

func TestWordAddShiftedMatchesBig(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 14))
	for i := 0; i < 500; i++ {
		var w Word
		want := new(big.Int)
		for j := 0; j < 20; j++ {
			v := r.Uint64() % (1 << 20)
			shift := uint(r.IntN(230))
			if !w.AddShifted(v, shift) {
				t.Fatalf("unexpected overflow")
			}
			want.Add(want, new(big.Int).Lsh(new(big.Int).SetUint64(v), shift))
		}
		if w.Big().Cmp(want) != 0 {
			t.Fatalf("AddShifted accumulation mismatch: %v vs %v", w, want)
		}
	}
}

func TestWordAddShiftedOverflow(t *testing.T) {
	var w Word
	if w.AddShifted(1, WordBits) {
		t.Fatal("shift beyond word width must fail")
	}
	w = Pow2Word(255)
	if w.AddShifted(1, 255) {
		t.Fatal("2^255 + 2^255 must overflow")
	}
}

func TestWordAddShiftedZeroValue(t *testing.T) {
	var w Word
	if !w.AddShifted(0, 1000) {
		t.Fatal("adding zero must succeed regardless of shift")
	}
	if !w.IsZero() {
		t.Fatal("word must remain zero")
	}
}

func TestWordExtractBits(t *testing.T) {
	r := rand.New(rand.NewPCG(15, 16))
	one := big.NewInt(1)
	for i := 0; i < 300; i++ {
		a := randWord(r, 256)
		off := uint(r.IntN(256))
		width := uint(1 + r.IntN(64))
		got := a.ExtractBits(off, width)
		mask := new(big.Int).Sub(new(big.Int).Lsh(one, width), one)
		want := new(big.Int).And(new(big.Int).Rsh(a.Big(), off), mask).Uint64()
		if got != want {
			t.Fatalf("ExtractBits(%d,%d) = %d, want %d", off, width, got, want)
		}
	}
}

func TestWordExtractBitsWidthZero(t *testing.T) {
	if got := WordFromU64(255).ExtractBits(0, 0); got != 0 {
		t.Fatalf("width 0 must return 0, got %d", got)
	}
}

func TestWordBitLen(t *testing.T) {
	if got := (Word{}).BitLen(); got != 0 {
		t.Fatalf("zero BitLen = %d", got)
	}
	for _, n := range []int{0, 1, 63, 64, 65, 127, 200, 255} {
		if got := Pow2Word(n).BitLen(); got != n+1 {
			t.Fatalf("Pow2Word(%d).BitLen = %d, want %d", n, got, n+1)
		}
	}
}

func TestWordBit(t *testing.T) {
	w := Pow2Word(70)
	if w.Bit(70) != 1 || w.Bit(69) != 0 || w.Bit(-1) != 0 || w.Bit(300) != 0 {
		t.Fatal("Bit indexing incorrect")
	}
}

func TestWordCmp(t *testing.T) {
	a, b := WordFromU64(5), Pow2Word(128)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatal("Cmp ordering incorrect")
	}
}

func TestWordStringDecimal(t *testing.T) {
	if got := WordFromU64(12345).String(); got != "12345" {
		t.Fatalf("String = %q", got)
	}
	if got := Pow2Word(64).String(); got != "18446744073709551616" {
		t.Fatalf("2^64 String = %q", got)
	}
}

func TestPow2WordPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pow2Word(WordBits)
}

// Property: (a+b)-b == a whenever a+b does not overflow.
func TestWordAddSubInverseProperty(t *testing.T) {
	f := func(a0, a1, b0, b1 uint64) bool {
		a := Word{a0, a1}
		b := Word{b0, b1}
		sum, carry := a.Add(b)
		if carry != 0 {
			return true
		}
		diff, borrow := sum.Sub(b)
		return borrow == 0 && diff == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DivModU64 reconstructs its input: q*d + r == x, r < d.
func TestWordDivModReconstructionProperty(t *testing.T) {
	f := func(x0, x1, x2 uint64, d uint64) bool {
		if d == 0 {
			d = 7
		}
		x := Word{x0, x1, x2}
		q, r := x.DivModU64(d)
		if r >= d {
			return false
		}
		back, ok := q.MulU64(d)
		if !ok {
			return false
		}
		back2, carry := back.Add(WordFromU64(r))
		return carry == 0 && back2 == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
