package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// uniformRows builds n rows with identical step probabilities at consecutive
// cellBits offsets.
func uniformRows(n, cellBits int, pPlus, pMinus float64) []RowErr {
	rows := make([]RowErr, n)
	for i := range rows {
		rows[i] = RowErr{
			BitOffset: i * cellBits,
			StepProb:  [4]float64{pPlus, pMinus, pPlus * pPlus, pMinus * pMinus},
		}
	}
	return rows
}

func TestBuildCandidatesOrdering(t *testing.T) {
	// Two rows: a high-significance row with moderate probability and a
	// low-significance row with slightly higher probability. The Figure 8
	// MSB weighting must rank the high-significance row first.
	spec := DataAwareSpec{Rows: []RowErr{
		{BitOffset: 0, StepProb: [4]float64{0.02, 0.001, 0, 0}},
		{BitOffset: 20, StepProb: [4]float64{0.01, 0.001, 0, 0}},
	}}
	cands := buildCandidates(spec, 300)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	first := cands[0]
	if first.syn.Mag != Pow2Word(20) || first.syn.Neg {
		t.Fatalf("top candidate should be +2^20, got %v", first.syn)
	}
}

func TestBuildCandidatesIncludesMultiRow(t *testing.T) {
	spec := DataAwareSpec{Rows: uniformRows(6, 2, 0.2, 0.05)}
	cands := buildCandidates(spec, 100)
	foundPair := false
	for _, c := range cands {
		// A pair of +1 steps at offsets 8 and 10 composes to 0b101 << 8.
		if !c.syn.Neg && c.syn.Mag.Low64() == (1<<8)+(1<<10) {
			foundPair = true
			break
		}
	}
	if !foundPair {
		t.Fatal("expected two-row combination among candidates")
	}
}

func TestBuildDataAwareTableCorrectsTopErrors(t *testing.T) {
	spec := DataAwareSpec{Rows: uniformRows(10, 2, 0.1, 0.02)}
	// Let the Section V-B4 search pick A: a hand-picked composite like 341
	// has ord(2)=10 and aliases nearly every single-row error.
	code := SearchA(10, 3, spec, nil)
	if code.Table.Len() == 0 {
		t.Fatal("empty table")
	}
	if code.Table.CoveredProb() <= 0 {
		t.Fatal("no covered probability recorded")
	}
	base, err := code.EncodeU64(50_000)
	if err != nil {
		t.Fatal(err)
	}
	// The most significant rows' errors carry the highest Figure 8 scores,
	// so their +1 patterns are guaranteed table entries. (Low-significance
	// rows may legitimately lose their residues to higher-scoring
	// multi-row combinations — that is the point of the scheme.)
	for _, r := range []int{8, 9} {
		bad, _ := base.Add(Pow2Word(2 * r))
		fixed, status := code.Correct(bad)
		if status != StatusCorrected || fixed != base {
			t.Fatalf("row %d +1 error not corrected (status %v)", r, status)
		}
	}
	// The top row's 2-step error also outranks every multi-row combination.
	bad, _ := base.Add(Pow2Word(19))
	fixed, status := code.Correct(bad)
	if status != StatusCorrected || fixed != base {
		t.Fatalf("row 9 +2 error not corrected (status %v)", status)
	}
}

func TestBuildDataAwareTableSmallACoversHotRow(t *testing.T) {
	// With a tiny A the table can hold few syndromes; a dominant hot row
	// must keep its slot against the background rows that share residues.
	rows := uniformRows(20, 2, 1e-6, 1e-7)
	rows[19].StepProb[0] = 0.3
	tb := BuildDataAwareTable(11, 3, DataAwareSpec{Rows: rows})
	top := SyndromeFromSteps(1, 38)
	got, ok := tb.Lookup(top.Residue(11))
	if !ok || got != top {
		t.Fatalf("hot row error not allocated; got %v ok=%v", got, ok)
	}
	if tb.Len() > tb.Capacity() {
		t.Fatalf("table exceeds capacity: %d/%d", tb.Len(), tb.Capacity())
	}
}

// TestHarmAwarePruneEmptiesHopelessTable: with no detection term and many
// equally probable patterns per residue, correcting is more likely to make
// things worse than to help, and the builder must leave residues empty
// (pure detect-and-retry).
func TestHarmAwarePruneEmptiesHopelessTable(t *testing.T) {
	rows := uniformRows(20, 2, 0.1, 0.1)
	tb := BuildDataAwareTable(11, 1, DataAwareSpec{Rows: rows})
	if tb.Len() != 0 {
		t.Fatalf("hopeless table should be empty, has %d entries", tb.Len())
	}
}

// TestCollisionResolvedByProbability: when two patterns share a residue,
// the more probable one wins the slot even if the rarer one is more
// significant: miscorrecting the frequent pattern would dominate the harm.
func TestCollisionResolvedByProbability(t *testing.T) {
	// Under A=11 (ord(2)=10), -2^0 ≡ 10 and +2^5 = 32 ≡ 10 collide.
	rows := []RowErr{
		{BitOffset: 0, StepProb: [4]float64{0, 0.4, 0, 0}}, // -1 frequent
		{BitOffset: 5, StepProb: [4]float64{1e-5, 0, 0, 0}},
	}
	tb := BuildDataAwareTable(11, 3, DataAwareSpec{Rows: rows})
	want := SyndromeFromSteps(-1, 0)
	got, ok := tb.Lookup(want.Residue(11))
	if !ok || got != want {
		t.Fatalf("frequent pattern must win the residue; got %v ok=%v", got, ok)
	}
}

func TestStuckAtSplitTable(t *testing.T) {
	rows := uniformRows(8, 2, 0.05, 0.01)
	stuck := []StuckErr{{BitOffset: 6, Steps: 2, PActive: 0.5}}
	tb := BuildDataAwareTable(101, 3, DataAwareSpec{Rows: rows, Stuck: stuck})
	// The stuck fault's standalone syndrome (+2 steps at offset 6 = +512)
	// must be correctable: it has probability 0.5, dominating everything.
	syn := SyndromeFromSteps(2, 6)
	got, ok := tb.Lookup(syn.Residue(101))
	if !ok || got != syn {
		t.Fatal("stuck-at syndrome not allocated")
	}
	// Combined stuck + RTN patterns must also appear (residues are shared
	// across the two halves, so check that most of them landed).
	combined := 0
	for r := 0; r < 8; r++ {
		comb := syn.AddTo(SyndromeFromSteps(1, 2*r))
		if got, ok := tb.Lookup(comb.Residue(101)); ok && got == comb {
			combined++
		}
	}
	if combined < 4 {
		t.Fatalf("only %d/8 stuck+RTN combinations allocated", combined)
	}
	// Plain RTN singles must still get entries from their half.
	plain := 0
	for r := 0; r < 8; r++ {
		s := SyndromeFromSteps(1, 2*r)
		if got, ok := tb.Lookup(s.Residue(101)); ok && got == s {
			plain++
		}
	}
	if plain < 4 {
		t.Fatalf("only %d/8 plain RTN syndromes allocated", plain)
	}
}

func TestCandidateAsRange(t *testing.T) {
	as := CandidateAs(7, 3)
	if len(as) == 0 {
		t.Fatal("no candidates")
	}
	maxA := uint64(127) / 3 // 42
	for _, a := range as {
		if a < 3 || a > maxA || a%2 == 0 || a%3 == 0 {
			t.Fatalf("illegal candidate %d", a)
		}
	}
	// Largest legal: 41.
	if as[len(as)-1] != 41 {
		t.Fatalf("largest candidate = %d, want 41", as[len(as)-1])
	}
}

func TestHardwareCandidateAs(t *testing.T) {
	as := HardwareCandidateAs(10, 3)
	if len(as) != 5 {
		t.Fatalf("want 5 hardware candidates, got %d", len(as))
	}
	for _, a := range as {
		if !isPrime(a) || a*3 > 1023 {
			t.Fatalf("bad hardware candidate %d", a)
		}
	}
	// Largest prime <= 341 not divisible by 3: 337.
	if as[0] != 337 {
		t.Fatalf("first candidate = %d, want 337", as[0])
	}
}

func TestIsPrime(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 11, 13, 37, 41, 79, 337, 1009}
	for _, p := range primes {
		if !isPrime(p) {
			t.Errorf("%d should be prime", p)
		}
	}
	composites := []uint64{0, 1, 4, 9, 21, 39, 49, 91, 339, 341}
	for _, c := range composites {
		if isPrime(c) {
			t.Errorf("%d should be composite", c)
		}
	}
}

func TestSearchAPicksHighCoverage(t *testing.T) {
	spec := DataAwareSpec{Rows: uniformRows(12, 2, 0.08, 0.02)}
	full := SearchA(8, 3, spec, nil)
	if full == nil {
		t.Fatal("no code found")
	}
	if err := full.Validate(); err != nil {
		t.Fatal(err)
	}
	if full.CheckBits() > 8 {
		t.Fatalf("check bits %d exceed budget", full.CheckBits())
	}
	// The chosen A must cover at least as much probability as a mid-range
	// alternative.
	alt := BuildDataAwareTable(19, 3, spec)
	if full.Table.CoveredProb() < alt.CoveredProb() {
		t.Fatalf("search result covers %g < alternative %g", full.Table.CoveredProb(), alt.CoveredProb())
	}
}

func TestSearchAHardwareModeCloseToFull(t *testing.T) {
	spec := DataAwareSpec{Rows: uniformRows(16, 2, 0.06, 0.01)}
	full := SearchA(9, 3, spec, nil)
	hw := SearchA(9, 3, spec, HardwareCandidateAs(9, 3))
	if hw.Table.CoveredProb() < 0.8*full.Table.CoveredProb() {
		t.Fatalf("hardware candidates cover %g, full search %g: gap too large",
			hw.Table.CoveredProb(), full.Table.CoveredProb())
	}
}

func TestDataAwareSpecMaxBitOffset(t *testing.T) {
	spec := DataAwareSpec{
		Rows:  []RowErr{{BitOffset: 10}, {BitOffset: 30}},
		Stuck: []StuckErr{{BitOffset: 28, Steps: 3}},
	}
	if got := spec.MaxBitOffset(); got != 31 {
		t.Fatalf("MaxBitOffset = %d, want 31", got)
	}
}

func TestStepForIndex(t *testing.T) {
	want := []int{1, -1, 2, -2}
	for i, w := range want {
		if got := stepForIndex(i); got != w {
			t.Errorf("stepForIndex(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestTopRowIndicesDropsZeroRows(t *testing.T) {
	rows := []RowErr{
		{BitOffset: 0, StepProb: [4]float64{0, 0, 0, 0}},
		{BitOffset: 2, StepProb: [4]float64{0.5, 0, 0, 0}},
		{BitOffset: 4, StepProb: [4]float64{0.3, 0.1, 0, 0}},
	}
	idx := topRowIndices(rows, 3)
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 2 {
		t.Fatalf("topRowIndices = %v", idx)
	}
}

// TestDataAwareInvariantsQuick: for randomized susceptibility profiles the
// builder must respect capacity, keep residues unique and nonzero, never
// claim more coverage than the candidate mass, and produce tables whose
// every entry actually corrects its own syndrome.
func TestDataAwareInvariantsQuick(t *testing.T) {
	f := func(seed uint64, aRaw uint16, nRows uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		rows := make([]RowErr, int(nRows%40)+2)
		total := 0.0
		for i := range rows {
			p := rng.Float64() * rng.Float64() * 0.1
			rows[i] = RowErr{BitOffset: 2 * i, StepProb: [4]float64{p, p / 4, p / 10, p / 50}}
			total += p + p/4 + p/10 + p/50
		}
		a := uint64(aRaw%300)*2 + 5
		if a%3 == 0 {
			a += 2
		}
		tb := BuildDataAwareTable(a, 3, DataAwareSpec{Rows: rows})
		if tb.Len() > tb.Capacity() {
			return false
		}
		// Coverage cannot exceed the total candidate probability mass by
		// more than the multi-row combination mass (bounded by total^2).
		if tb.CoveredProb() > total+total*total {
			return false
		}
		code := &Code{A: a, B: 3, Table: tb}
		base, err := code.EncodeU64(1 << 20)
		if err != nil {
			return false
		}
		for _, syn := range tb.Syndromes() {
			bad, ok := (Syndrome{Neg: !syn.Neg, Mag: syn.Mag}).ApplyTo(base)
			if !ok {
				continue // would underflow; skip
			}
			fixed, status := code.Correct(bad)
			if status != StatusCorrected || fixed != base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
