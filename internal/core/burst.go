package core

import "fmt"

// Burst-error AN codes (paper Section V-A): beyond single +/-2^i errors,
// "the burst error correction code for 2 bits can correct all errors of
// S = +/-2^i or +/-(2^i + 2^(i+1))" — a quantization error of up to 3 in one
// physical row. The paper notes these codes waste roughly 15% of the
// residues relative to the perfectly efficient single-error codes, and that
// correcting multiple uncorrelated errors requires impractically large A
// (Mandelbaum); both observations are reproduced by the tests.

// NewBurstTable builds the 2-bit burst-error table: syndromes +/-2^i and
// +/-(2^i + 2^(i+1)) for every bit position below wordBits. It fails if any
// two syndromes collide mod a.
func NewBurstTable(a uint64, wordBits int) (*Table, error) {
	t := NewTable(a)
	addBoth := func(mag Word, what string) error {
		for _, neg := range [2]bool{false, true} {
			if !t.Add(Syndrome{Neg: neg, Mag: mag}) {
				return fmt.Errorf("core: A=%d cannot uniquely correct %s over %d-bit words", a, what, wordBits)
			}
		}
		return nil
	}
	for i := 0; i < wordBits; i++ {
		if err := addBoth(Pow2Word(i), fmt.Sprintf("±2^%d", i)); err != nil {
			return nil, err
		}
	}
	for i := 0; i+1 < wordBits; i++ {
		mag, _ := Pow2Word(i).Add(Pow2Word(i + 1))
		if err := addBoth(mag, fmt.Sprintf("±3·2^%d", i)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MinimalBurstA returns the smallest odd A, coprime to b, that admits the
// 2-bit burst table over wordBits-bit words.
func MinimalBurstA(wordBits int, b uint64) uint64 {
	// Burst tables need at least 2*wordBits + 2*(wordBits-1) residues.
	for a := uint64(4*wordBits - 1); ; a += 2 {
		if a%2 == 0 {
			continue
		}
		if b > 1 && a%b == 0 {
			continue
		}
		if _, err := NewBurstTable(a, wordBits); err == nil {
			return a
		}
	}
}

// ResidueEfficiency reports the fraction of a table's usable residues that
// carry syndromes — 1.0 for the perfectly efficient minimal single-error
// codes like A=19 and A=79, lower for burst codes (the paper's ~15% waste).
func ResidueEfficiency(t *Table) float64 {
	if t.Capacity() == 0 {
		return 0
	}
	return float64(t.Len()) / float64(t.Capacity())
}
