package core

import (
	"fmt"
	"sort"
)

// Syndrome is a signed additive error value. Errors in a bit-sliced crossbar
// manifest as +/- q * 2^(row offset) terms added to the reduced dot product;
// a Syndrome records one such term (or a combination of up to four of them).
type Syndrome struct {
	Neg bool // true if the error decreases the result
	Mag Word // magnitude of the additive error
}

// SyndromeFromSteps builds the syndrome steps * 2^bitOffset from a signed
// quantization-step error at a physical-row bit offset.
func SyndromeFromSteps(steps int, bitOffset int) Syndrome {
	neg := steps < 0
	if neg {
		steps = -steps
	}
	mag, ok := Pow2Word(bitOffset).MulU64(uint64(steps))
	if !ok {
		panic(fmt.Sprintf("core: syndrome %d<<%d overflows Word", steps, bitOffset))
	}
	return Syndrome{Neg: neg, Mag: mag}
}

// AddTo folds another syndrome term into s (used to compose multi-row
// combinations).
func (s Syndrome) AddTo(o Syndrome) Syndrome {
	if s.Neg == o.Neg {
		mag, carry := s.Mag.Add(o.Mag)
		if carry != 0 {
			panic("core: syndrome magnitude overflow")
		}
		return Syndrome{Neg: s.Neg, Mag: mag}
	}
	// Opposite signs: subtract the smaller magnitude from the larger.
	if s.Mag.Cmp(o.Mag) >= 0 {
		mag, _ := s.Mag.Sub(o.Mag)
		return Syndrome{Neg: s.Neg, Mag: mag}
	}
	mag, _ := o.Mag.Sub(s.Mag)
	return Syndrome{Neg: o.Neg, Mag: mag}
}

// IsZero reports whether the syndrome is the zero error.
func (s Syndrome) IsZero() bool { return s.Mag.IsZero() }

// Residue returns the syndrome's residue mod a, the value the decoder
// observes when this error corrupts a computation.
func (s Syndrome) Residue(a uint64) uint64 {
	r := s.Mag.ModU64(a)
	if s.Neg && r != 0 {
		r = a - r
	}
	return r
}

// ApplyTo returns value - s (the correction step). ok is false if the
// correction would drive the value negative, which the hardware treats as an
// uncorrectable error.
func (s Syndrome) ApplyTo(v Word) (Word, bool) {
	if s.Neg {
		r, carry := v.Add(s.Mag)
		return r, carry == 0
	}
	r, borrow := v.Sub(s.Mag)
	return r, borrow == 0
}

// String renders the syndrome with its sign.
func (s Syndrome) String() string {
	if s.Neg {
		return "-" + s.Mag.String()
	}
	return "+" + s.Mag.String()
}

// Table maps residues mod A to the syndromes they correct. It models the
// correction-table SRAM in the error correction unit (paper Figure 9): the
// residue of the reduced row output indexes the table, and the stored
// syndrome is subtracted from the result.
type Table struct {
	a       uint64
	entries map[uint64]Syndrome
	// coveredProb is the total probability mass of the error patterns this
	// table corrects, accumulated during data-aware construction; zero for
	// statically built tables.
	coveredProb float64
}

// NewTable returns an empty correction table for residues mod a.
func NewTable(a uint64) *Table {
	return &Table{a: a, entries: make(map[uint64]Syndrome)}
}

// A returns the modulus the table is indexed by.
func (t *Table) A() uint64 { return t.a }

// Len returns the number of allocated syndromes.
func (t *Table) Len() int { return len(t.entries) }

// Capacity returns the number of usable residues (A-1: residue zero means
// "no error" and cannot address a correction).
func (t *Table) Capacity() int { return int(t.a) - 1 }

// CoveredProb returns the probability mass covered during data-aware
// construction (0 for static tables).
func (t *Table) CoveredProb() float64 { return t.coveredProb }

// Lookup returns the syndrome allocated to a residue.
func (t *Table) Lookup(res uint64) (Syndrome, bool) {
	s, ok := t.entries[res]
	return s, ok
}

// Add allocates a syndrome if its residue is nonzero and not yet taken,
// reporting whether it was inserted.
func (t *Table) Add(s Syndrome) bool {
	res := s.Residue(t.a)
	if res == 0 || s.IsZero() {
		return false
	}
	if _, taken := t.entries[res]; taken {
		return false
	}
	t.entries[res] = s
	return true
}

// Syndromes returns the allocated syndromes sorted by residue, for display
// and deterministic iteration in tests.
func (t *Table) Syndromes() []Syndrome {
	keys := make([]uint64, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Syndrome, len(keys))
	for i, k := range keys {
		out[i] = t.entries[k]
	}
	return out
}

// NewStaticTable builds the classical single-error-correcting AN table:
// syndromes +/- 2^i for every bit position i below wordBits (paper
// Section V-A). It fails if two syndromes collide mod a, meaning a is too
// small to correct single-bit errors on words of that length.
func NewStaticTable(a uint64, wordBits int) (*Table, error) {
	t := NewTable(a)
	for i := 0; i < wordBits; i++ {
		for _, neg := range [2]bool{false, true} {
			s := Syndrome{Neg: neg, Mag: Pow2Word(i)}
			if !t.Add(s) {
				return nil, fmt.Errorf("core: A=%d cannot uniquely correct ±2^%d over %d-bit words", a, i, wordBits)
			}
		}
	}
	return t, nil
}

// MinimalSingleErrorA returns the smallest odd A, coprime to b, whose
// residues distinguish all +/- 2^i single-bit errors over wordBits-bit
// words. For 5-bit encoded words this recovers the paper's A=19 example; for
// 39-bit encoded words it recovers A=79.
func MinimalSingleErrorA(wordBits int, b uint64) uint64 {
	for a := uint64(2*wordBits + 1); ; a += 2 {
		if b > 1 && a%b == 0 {
			continue
		}
		if _, err := NewStaticTable(a, wordBits); err == nil {
			return a
		}
	}
}
