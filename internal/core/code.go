package core

import (
	"fmt"
	"math/bits"
)

// Status describes the outcome of one correction attempt in the ECU.
type Status int

const (
	// StatusClean means the residue was zero and the B check passed: no
	// error was observed.
	StatusClean Status = iota
	// StatusCorrected means a nonzero residue indexed a table entry and the
	// corrected value passed the B detection check.
	StatusCorrected
	// StatusDetected means an error was observed but could not be corrected
	// (missing table entry, failed B check, or a correction that underflowed).
	// Per paper Section VI-A the hardware reverts to the uncorrected value.
	StatusDetected
)

// String names the status for logs and tables.
func (s Status) String() string {
	switch s {
	case StatusClean:
		return "clean"
	case StatusCorrected:
		return "corrected"
	case StatusDetected:
		return "detected"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Code is an AN or ABN arithmetic code: data is encoded by multiplying by
// A*B, errors are corrected by residue-mod-A table lookup, and B provides
// post-correction detection (B=1 yields a plain AN code).
type Code struct {
	// A is the correction multiplier; residues mod A index the table.
	A uint64
	// B is the detection multiplier (1 disables detection; the paper uses 3).
	B uint64
	// Table maps residues to syndromes. A nil table gives a detect-only code.
	Table *Table
}

// M returns the full code multiplier A*B.
func (c *Code) M() uint64 { return c.A * c.B }

// CheckBits returns the number of bits the multiplier adds to an operand.
func (c *Code) CheckBits() int { return bits.Len64(c.M() - 1) }

// Validate checks the structural invariants: A odd, coprime to B, and the
// table (if any) indexed by the same A.
func (c *Code) Validate() error {
	if c.A < 3 || c.A%2 == 0 {
		return fmt.Errorf("core: A=%d must be an odd integer >= 3", c.A)
	}
	if c.B < 1 {
		return fmt.Errorf("core: B=%d must be >= 1", c.B)
	}
	if c.B > 1 && gcd(c.A, c.B) != 1 {
		return fmt.Errorf("core: A=%d and B=%d must be coprime", c.A, c.B)
	}
	if c.Table != nil && c.Table.A() != c.A {
		return fmt.Errorf("core: table indexed mod %d does not match A=%d", c.Table.A(), c.A)
	}
	return nil
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Encode multiplies a data word by A*B. It fails if the encoded value would
// exceed the Word width.
func (c *Code) Encode(v Word) (Word, error) {
	e, ok := v.MulU64(c.M())
	if !ok {
		return Word{}, fmt.Errorf("core: encoding %d-bit value by M=%d overflows Word", v.BitLen(), c.M())
	}
	return e, nil
}

// EncodeU64 encodes a value that fits in 64 bits.
func (c *Code) EncodeU64(v uint64) (Word, error) {
	return c.Encode(WordFromU64(v))
}

// Correct runs the ECU pipeline of paper Figure 9 on a reduced row output:
// residue mod A, correction-table lookup and subtraction, then the B
// detection check on the corrected value. On any detected-uncorrectable
// condition it returns the input unchanged with StatusDetected (the paper's
// revert-to-uncorrected policy, Section VI-A / VIII-A).
func (c *Code) Correct(r Word) (Word, Status) {
	res := r.ModU64(c.A)
	if res == 0 {
		if c.B > 1 && r.ModU64(c.B) != 0 {
			return r, StatusDetected
		}
		return r, StatusClean
	}
	if c.Table == nil {
		return r, StatusDetected
	}
	syn, ok := c.Table.Lookup(res)
	if !ok {
		return r, StatusDetected
	}
	fixed, ok := syn.ApplyTo(r)
	if !ok {
		return r, StatusDetected
	}
	if c.B > 1 && fixed.ModU64(c.B) != 0 {
		return r, StatusDetected
	}
	return fixed, StatusCorrected
}

// Decode divides an encoded (and presumed corrected) value by A*B, returning
// the data word and the leftover remainder. A nonzero remainder means a
// residual (undetected or reverted) error reached the decoder; the hardware
// truncates it, and callers use the quotient as the best-effort result.
func (c *Code) Decode(r Word) (Word, uint64) {
	return r.DivModU64(c.M())
}

// NewStaticCode builds the naive single-error-correcting AN code of paper
// Section V-A for dataBits-wide operands: the minimal A whose +/- 2^i
// residues are unique over the full encoded word (data plus check bits),
// with an optional B detection term. The check-bit count depends on A, and A
// depends on the encoded width, so the builder iterates to a fixed point.
func NewStaticCode(dataBits int, b uint64) (*Code, error) {
	if dataBits <= 0 {
		return nil, fmt.Errorf("core: dataBits must be positive, got %d", dataBits)
	}
	if b < 1 {
		return nil, fmt.Errorf("core: B=%d must be >= 1", b)
	}
	check := 1
	for iter := 0; iter < 64; iter++ {
		a := MinimalSingleErrorA(dataBits+check, b)
		newCheck := bits.Len64(a*b - 1)
		if dataBits+newCheck >= WordBits {
			return nil, fmt.Errorf("core: static code for %d data bits exceeds Word width", dataBits)
		}
		if newCheck == check {
			table, err := NewStaticTable(a, dataBits+check)
			if err != nil {
				return nil, err
			}
			return &Code{A: a, B: b, Table: table}, nil
		}
		check = newCheck
	}
	return nil, fmt.Errorf("core: static code search for %d data bits did not converge", dataBits)
}
