package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestFigure4Example replays the paper's Figure 4 walk-through: an A=19 code
// encoding the sum 26 as 494, a +2 error producing 496, residue 496%19 = 2
// indexing the syndrome +2, and correction restoring 494.
func TestFigure4Example(t *testing.T) {
	table, err := NewStaticTable(19, 9)
	if err != nil {
		t.Fatalf("A=19 static table over 9 bits: %v", err)
	}
	code := &Code{A: 19, B: 1, Table: table}
	enc, err := code.EncodeU64(26)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Low64() != 494 {
		t.Fatalf("encoded 26 = %d, want 494", enc.Low64())
	}
	corrupted, _ := enc.Add(WordFromU64(2))
	if corrupted.Low64() != 496 {
		t.Fatalf("corrupted = %d, want 496", corrupted.Low64())
	}
	if res := corrupted.ModU64(19); res != 2 {
		t.Fatalf("residue = %d, want 2", res)
	}
	fixed, status := code.Correct(corrupted)
	if status != StatusCorrected || fixed.Low64() != 494 {
		t.Fatalf("Correct = (%d, %v), want (494, corrected)", fixed.Low64(), status)
	}
	dec, rem := code.Decode(fixed)
	if rem != 0 || dec.Low64() != 26 {
		t.Fatalf("Decode = (%d, %d), want (26, 0)", dec.Low64(), rem)
	}
}

// TestMinimalAValues checks the minimal single-error-correcting A values the
// paper cites: A=19 for 5-bit operands (9-bit encoded words) and A=79 for
// 32-bit operands (39-bit encoded words).
func TestMinimalAValues(t *testing.T) {
	if a := MinimalSingleErrorA(9, 1); a != 19 {
		t.Errorf("minimal A for 9-bit words = %d, want 19", a)
	}
	if a := MinimalSingleErrorA(39, 1); a != 79 {
		t.Errorf("minimal A for 39-bit words = %d, want 79", a)
	}
}

// TestA3DetectsButCannotCorrect mirrors Section II-D: A=3 detects every
// single-bit error (nonzero residue) but has too few residues to localize it.
func TestA3DetectsButCannotCorrect(t *testing.T) {
	for i := 0; i < 40; i++ {
		if res := Pow2Word(i).ModU64(3); res == 0 {
			t.Fatalf("A=3 failed to detect ±2^%d", i)
		}
	}
	if _, err := NewStaticTable(3, 2); err == nil {
		t.Fatal("A=3 must not admit a single-error-correcting table")
	}
}

// TestA79MiscorrectionExample replays Section V-A: with A=79 and value 1024
// (encoded 80896), a two-bit syndrome of +9 aliases the residue of +2^20, so
// blind correction subtracts 1048576 and drives the result far from truth.
// Our unsigned datapath refuses the underflowing subtraction and reverts
// (detected), and on larger values the miscorrection proceeds silently when
// B detection is disabled.
func TestA79MiscorrectionExample(t *testing.T) {
	table, err := NewStaticTable(79, 39)
	if err != nil {
		t.Fatal(err)
	}
	code := &Code{A: 79, B: 1, Table: table}

	// The aliasing the paper exploits: 9 ≡ 2^20 (mod 79).
	if Pow2Word(20).ModU64(79) != 9 {
		t.Fatal("expected 2^20 ≡ 9 (mod 79)")
	}

	enc, _ := code.EncodeU64(1024)
	if enc.Low64() != 80896 {
		t.Fatalf("encoded = %d, want 80896", enc.Low64())
	}
	corrupted, _ := enc.Add(WordFromU64(9))
	fixed, status := code.Correct(corrupted)
	if status != StatusDetected || fixed != corrupted {
		t.Fatalf("underflowing miscorrection should revert, got (%v, %v)", fixed, status)
	}

	// A large enough value lets the miscorrection proceed silently.
	big, _ := code.EncodeU64(2_000_000)
	corrupted2, _ := big.Add(WordFromU64(9))
	fixed2, status2 := code.Correct(corrupted2)
	if status2 != StatusCorrected {
		t.Fatalf("expected silent miscorrection, got %v", status2)
	}
	dec, _ := code.Decode(fixed2)
	if dec.Low64() == 2_000_000 {
		t.Fatal("miscorrection should not restore the true value")
	}
}

// TestBDetectionCatchesMiscorrection shows the ABN improvement: the same
// aliased syndrome that silently miscorrects under a plain AN code is caught
// by the B=3 check, and the decoder reverts to the uncorrected value.
func TestBDetectionCatchesMiscorrection(t *testing.T) {
	a := MinimalSingleErrorA(41, 3)
	table, err := NewStaticTable(a, 41)
	if err != nil {
		t.Fatal(err)
	}
	code := &Code{A: a, B: 3, Table: table}
	if err := code.Validate(); err != nil {
		t.Fatal(err)
	}
	enc, _ := code.EncodeU64(2_000_000)
	// Find a two-bit syndrome whose residue aliases a single-bit entry and
	// whose miscorrected value fails the mod-3 check.
	found := false
	for i := 0; i < 30 && !found; i++ {
		for j := i + 1; j < 30 && !found; j++ {
			syn, _ := Pow2Word(i).Add(Pow2Word(j))
			corrupted, _ := enc.Add(syn)
			entry, ok := table.Lookup(corrupted.ModU64(a))
			if !ok {
				continue
			}
			if mis, okApply := entry.ApplyTo(corrupted); okApply && mis.ModU64(3) != 0 {
				fixed, status := code.Correct(corrupted)
				if status != StatusDetected || fixed != corrupted {
					t.Fatalf("B check should revert, got status %v", status)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no aliasing syndrome found to exercise the B check")
	}
}

func TestCorrectCleanPath(t *testing.T) {
	code := mustStaticCode(t, 16, 3)
	enc, _ := code.EncodeU64(12345)
	fixed, status := code.Correct(enc)
	if status != StatusClean || fixed != enc {
		t.Fatalf("clean value flagged %v", status)
	}
}

func TestCorrectEverySingleBitError(t *testing.T) {
	code := mustStaticCode(t, 16, 3)
	wordBits := 16 + code.CheckBits()
	enc, _ := code.EncodeU64(40000)
	for i := 0; i < wordBits; i++ {
		for _, neg := range []bool{false, true} {
			var bad Word
			if neg {
				var borrow uint64
				bad, borrow = enc.Sub(Pow2Word(i))
				if borrow != 0 {
					continue // error would drive the analog sum negative
				}
			} else {
				bad, _ = enc.Add(Pow2Word(i))
			}
			fixed, status := code.Correct(bad)
			if status != StatusCorrected {
				t.Fatalf("±2^%d (neg=%v) not corrected: %v", i, neg, status)
			}
			if fixed != enc {
				t.Fatalf("±2^%d (neg=%v) corrected to wrong value", i, neg)
			}
		}
	}
}

func TestCodeValidate(t *testing.T) {
	cases := []struct {
		code Code
		ok   bool
	}{
		{Code{A: 19, B: 3}, true},
		{Code{A: 19, B: 1}, true},
		{Code{A: 18, B: 3}, false}, // even A
		{Code{A: 1, B: 3}, false},  // A too small
		{Code{A: 21, B: 3}, false}, // gcd(A,B) != 1
		{Code{A: 19, B: 0}, false}, // bad B
	}
	for _, c := range cases {
		err := c.code.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(A=%d,B=%d) err=%v, want ok=%v", c.code.A, c.code.B, err, c.ok)
		}
	}
	mismatched := &Code{A: 23, B: 1, Table: NewTable(19)}
	if mismatched.Validate() == nil {
		t.Error("table modulus mismatch must fail validation")
	}
}

func TestEncodeOverflow(t *testing.T) {
	code := &Code{A: 1023, B: 3}
	if _, err := code.Encode(Pow2Word(250)); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestNewStaticCodeSizes(t *testing.T) {
	for _, tc := range []struct {
		dataBits int
		b        uint64
	}{{5, 1}, {16, 1}, {16, 3}, {32, 1}, {64, 3}, {128, 3}} {
		code, err := NewStaticCode(tc.dataBits, tc.b)
		if err != nil {
			t.Fatalf("NewStaticCode(%d,%d): %v", tc.dataBits, tc.b, err)
		}
		if err := code.Validate(); err != nil {
			t.Fatalf("invalid code: %v", err)
		}
		// The table must cover the full encoded width.
		wordBits := tc.dataBits + code.CheckBits()
		for i := 0; i < wordBits; i++ {
			if _, ok := code.Table.Lookup(Pow2Word(i).ModU64(code.A)); !ok {
				t.Fatalf("dataBits=%d: +2^%d uncovered", tc.dataBits, i)
			}
		}
	}
}

func TestNewStaticCodeRejectsBadInput(t *testing.T) {
	if _, err := NewStaticCode(0, 1); err == nil {
		t.Fatal("dataBits=0 must fail")
	}
	if _, err := NewStaticCode(16, 0); err == nil {
		t.Fatal("B=0 must fail")
	}
	if _, err := NewStaticCode(250, 3); err == nil {
		t.Fatal("near-word-width data must fail")
	}
}

// Property: AN codes conserve addition — Encode(x) + Encode(y) equals
// Encode(x+y), the distributive property the whole scheme rests on.
func TestDistributivePropertyQuick(t *testing.T) {
	code := mustStaticCode(t, 16, 3)
	f := func(x, y uint16) bool {
		ex, err1 := code.EncodeU64(uint64(x))
		ey, err2 := code.EncodeU64(uint64(y))
		exy, err3 := code.EncodeU64(uint64(x) + uint64(y))
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		sum, carry := ex.Add(ey)
		return carry == 0 && sum == exy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: decode inverts encode for arbitrary 180-bit group values.
func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	code := mustStaticCode(t, 16, 3)
	rng := rand.New(rand.NewPCG(42, 43))
	for i := 0; i < 1000; i++ {
		v := randWord(rng, 180)
		enc, err := code.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		if enc.ModU64(code.A) != 0 || enc.ModU64(code.B) != 0 {
			t.Fatal("encoded value must be divisible by A and B")
		}
		dec, rem := code.Decode(enc)
		if rem != 0 || dec != v {
			t.Fatalf("round trip failed for %v", v)
		}
	}
}

func TestStatusString(t *testing.T) {
	if StatusClean.String() != "clean" || StatusCorrected.String() != "corrected" ||
		StatusDetected.String() != "detected" || Status(9).String() != "Status(9)" {
		t.Fatal("Status.String mismatch")
	}
}

func mustStaticCode(t *testing.T, dataBits int, b uint64) *Code {
	t.Helper()
	code, err := NewStaticCode(dataBits, b)
	if err != nil {
		t.Fatal(err)
	}
	return code
}
