package core

import "math/bits"

// This file implements the (8,4) extended Hamming SECDED code used by the
// paper's Section III argument (Figure 5): unlike AN codes, Hamming codes do
// not conserve addition, so they cannot protect an in-situ dot product —
// f(x) + f(y) != f(x+y) even with no errors at all. The implementation also
// powers the Figure 3 illustration of arithmetic versus Hamming distance.

// Hamming84Encode encodes a 4-bit value into the (8,4) extended Hamming
// code word: data bits d0..d3, parity bits p1 p2 p4 at the power-of-two
// positions, and an overall parity bit for double-error detection. The
// returned layout is [p0 p1 p2 d0 p4 d1 d2 d3] from bit 7 down to bit 0 in
// the classical positional arrangement (positions 1..7 plus overall).
func Hamming84Encode(data uint8) uint8 {
	d := data & 0xF
	d0 := d & 1
	d1 := d >> 1 & 1
	d2 := d >> 2 & 1
	d3 := d >> 3 & 1
	p1 := d0 ^ d1 ^ d3
	p2 := d0 ^ d2 ^ d3
	p4 := d1 ^ d2 ^ d3
	// Positions 1..7: p1 p2 d0 p4 d1 d2 d3; bit 0 is overall parity.
	word := p1<<7 | p2<<6 | d0<<5 | p4<<4 | d1<<3 | d2<<2 | d3<<1
	overall := uint8(bits.OnesCount8(word)) & 1
	return word | overall
}

// Hamming84Decode corrects a single flipped bit and reports the outcome:
// ok=false signals a detected double error. The corrected data nibble is
// returned in either case.
func Hamming84Decode(word uint8) (data uint8, corrected bool, ok bool) {
	bit := func(pos int) uint8 { return word >> (8 - pos) & 1 } // pos 1..7
	s1 := bit(1) ^ bit(3) ^ bit(5) ^ bit(7)
	s2 := bit(2) ^ bit(3) ^ bit(6) ^ bit(7)
	s4 := bit(4) ^ bit(5) ^ bit(6) ^ bit(7)
	syndrome := int(s1) | int(s2)<<1 | int(s4)<<2
	overallOK := uint8(bits.OnesCount8(word))&1 == 0
	switch {
	case syndrome == 0 && overallOK:
		// clean
	case syndrome != 0 && !overallOK:
		word ^= 1 << (8 - syndrome) // single error at position `syndrome`
		corrected = true
	case syndrome == 0 && !overallOK:
		word ^= 1 // overall parity bit itself flipped
		corrected = true
	default:
		// Syndrome set but overall parity consistent: double error.
		return extractData(word), false, false
	}
	return extractData(word), corrected, true
}

func extractData(word uint8) uint8 {
	bit := func(pos int) uint8 { return word >> (8 - pos) & 1 }
	return bit(3) | bit(5)<<1 | bit(6)<<2 | bit(7)<<3
}

// HammingDistance counts differing bits between two words, the metric of
// the paper's Figure 3 contrast between arithmetic and Hamming error
// models.
func HammingDistance(a, b uint64) int {
	return bits.OnesCount64(a ^ b)
}

// SECDEDConservesAddition checks whether the (8,4) code commutes with
// addition for a given operand pair: Hamming84Encode(x) + Hamming84Encode(y)
// == Hamming84Encode(x+y). The paper's Section III shows this fails (for
// 3 + 4 = 7 the two sides differ by Hamming distance two), which is why
// SECDED cannot protect in-situ analog accumulation.
func SECDEDConservesAddition(x, y uint8) bool {
	sum := uint16(Hamming84Encode(x)) + uint16(Hamming84Encode(y))
	return sum == uint16(Hamming84Encode((x+y)&0xF))
}
