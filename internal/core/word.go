// Package core implements the paper's primary contribution: AN arithmetic
// error-correcting codes and data-aware ABN codes for in-situ analog
// matrix-vector multiplication (Feinberg, Wang, Ipek; HPCA 2018).
//
// An AN code encodes an integer x as A*x. Because multiplication distributes
// over addition (A*x + A*y = A*(x+y)), a dot product computed over encoded
// operands yields an encoded result, and any additive error E leaves a
// nonzero residue (A*x + E) mod A = E mod A that indexes a correction table.
// ABN codes multiply by A*B, using A for correction and a small B (3 in the
// paper and here) as a post-correction detection check, analogous to the
// parity bit that turns a Hamming code into SECDED.
//
// The data-aware construction (paper Section V-B) allocates the scarce
// correction-table entries to the error patterns that are simultaneously most
// probable — derived from the state-dependent random-telegraph-noise
// susceptibility of each physical crossbar row — and most damaging, weighted
// by the arithmetic significance of the most significant bit they disturb.
package core

import (
	"fmt"
	"math/big"
	"math/bits"
)

// WordBits is the fixed width of a Word in bits. It comfortably holds the
// widest values in the system: an encoded 8-operand group (~200 bits) summed
// across a 128-column crossbar.
const WordBits = 256

// wordLimbs is the number of 64-bit limbs in a Word.
const wordLimbs = WordBits / 64

// Word is a fixed-width 256-bit unsigned integer with little-endian limbs.
// It replaces math/big in the Monte-Carlo hot path, where millions of
// encode/accumulate/correct operations run per simulated image.
type Word [wordLimbs]uint64

// WordFromU64 returns a Word holding x.
func WordFromU64(x uint64) Word { return Word{x} }

// WordFromBig converts a non-negative big.Int to a Word.
// It returns an error if b is negative or exceeds 256 bits.
func WordFromBig(b *big.Int) (Word, error) {
	var w Word
	if b.Sign() < 0 {
		return w, fmt.Errorf("core: negative value %s cannot be a Word", b)
	}
	if b.BitLen() > WordBits {
		return w, fmt.Errorf("core: value of %d bits exceeds Word width", b.BitLen())
	}
	for i, limb := range b.Bits() {
		w[i] = uint64(limb)
	}
	return w, nil
}

// Big returns the Word as a big.Int (for tests and display paths only).
func (w Word) Big() *big.Int {
	b := new(big.Int)
	for i := wordLimbs - 1; i >= 0; i-- {
		b.Lsh(b, 64)
		b.Or(b, new(big.Int).SetUint64(w[i]))
	}
	return b
}

// String renders the Word in decimal.
func (w Word) String() string { return w.Big().String() }

// IsZero reports whether the Word is zero.
func (w Word) IsZero() bool { return w == Word{} }

// Low64 returns the least significant 64 bits.
func (w Word) Low64() uint64 { return w[0] }

// BitLen returns the minimum number of bits needed to represent the Word.
func (w Word) BitLen() int {
	for i := wordLimbs - 1; i >= 0; i-- {
		if w[i] != 0 {
			return 64*i + bits.Len64(w[i])
		}
	}
	return 0
}

// Bit returns bit i (0 = least significant) as 0 or 1.
func (w Word) Bit(i int) uint {
	if i < 0 || i >= WordBits {
		return 0
	}
	return uint(w[i/64]>>(uint(i)%64)) & 1
}

// Cmp compares two Words, returning -1, 0, or +1.
func (w Word) Cmp(o Word) int {
	for i := wordLimbs - 1; i >= 0; i-- {
		switch {
		case w[i] < o[i]:
			return -1
		case w[i] > o[i]:
			return 1
		}
	}
	return 0
}

// Add returns w+o and the outgoing carry (0 or 1).
func (w Word) Add(o Word) (Word, uint64) {
	var r Word
	var c uint64
	for i := 0; i < wordLimbs; i++ {
		r[i], c = bits.Add64(w[i], o[i], c)
	}
	return r, c
}

// Sub returns w-o and the outgoing borrow (0 or 1). A borrow of 1 means the
// subtraction underflowed.
func (w Word) Sub(o Word) (Word, uint64) {
	var r Word
	var b uint64
	for i := 0; i < wordLimbs; i++ {
		r[i], b = bits.Sub64(w[i], o[i], b)
	}
	return r, b
}

// AddShifted adds v << shift into the Word in place, returning false on
// overflow. This is the crossbar reduction-tree primitive: it folds one ADC
// row sample into the running shift-and-add sum.
func (w *Word) AddShifted(v uint64, shift uint) bool {
	if v == 0 {
		return true
	}
	if shift >= WordBits {
		return false
	}
	limb := int(shift / 64)
	off := shift % 64
	lo := v << off
	hi := uint64(0)
	if off != 0 {
		hi = v >> (64 - off)
	}
	var c uint64
	w[limb], c = bits.Add64(w[limb], lo, 0)
	if limb+1 < wordLimbs {
		w[limb+1], c = bits.Add64(w[limb+1], hi, c)
	} else if hi != 0 || c != 0 {
		return false
	}
	for i := limb + 2; i < wordLimbs && c != 0; i++ {
		w[i], c = bits.Add64(w[i], 0, c)
	}
	return c == 0
}

// MulU64 returns w*m and reports whether the product fit in 256 bits.
func (w Word) MulU64(m uint64) (Word, bool) {
	var r Word
	var carry uint64
	for i := 0; i < wordLimbs; i++ {
		hi, lo := bits.Mul64(w[i], m)
		var c uint64
		r[i], c = bits.Add64(lo, carry, 0)
		carry = hi + c // cannot overflow: hi <= 2^64-2 when c=1
	}
	return r, carry == 0
}

// DivModU64 returns the quotient w/d and remainder w%d. d must be nonzero.
func (w Word) DivModU64(d uint64) (Word, uint64) {
	if d == 0 {
		panic("core: division by zero")
	}
	var q Word
	var rem uint64
	for i := wordLimbs - 1; i >= 0; i-- {
		q[i], rem = bits.Div64(rem, w[i], d)
	}
	return q, rem
}

// ModU64 returns w mod d. d must be nonzero.
func (w Word) ModU64(d uint64) uint64 {
	if d == 0 {
		panic("core: division by zero")
	}
	var rem uint64
	for i := wordLimbs - 1; i >= 0; i-- {
		_, rem = bits.Div64(rem, w[i], d)
	}
	return rem
}

// Lsh returns w << n.
func (w Word) Lsh(n uint) Word {
	if n >= WordBits {
		return Word{}
	}
	limb := int(n / 64)
	off := n % 64
	var r Word
	for i := wordLimbs - 1; i >= limb; i-- {
		r[i] = w[i-limb] << off
		if off != 0 && i-limb-1 >= 0 {
			r[i] |= w[i-limb-1] >> (64 - off)
		}
	}
	return r
}

// Rsh returns w >> n.
func (w Word) Rsh(n uint) Word {
	if n >= WordBits {
		return Word{}
	}
	limb := int(n / 64)
	off := n % 64
	var r Word
	for i := 0; i+limb < wordLimbs; i++ {
		r[i] = w[i+limb] >> off
		if off != 0 && i+limb+1 < wordLimbs {
			r[i] |= w[i+limb+1] << (64 - off)
		}
	}
	return r
}

// ExtractBits returns the width-bit field starting at bit offset as a uint64.
// width must be at most 64.
func (w Word) ExtractBits(offset, width uint) uint64 {
	if width == 0 {
		return 0
	}
	if width > 64 {
		panic("core: ExtractBits width exceeds 64")
	}
	s := w.Rsh(offset)
	v := s[0]
	if width < 64 {
		v &= (uint64(1) << width) - 1
	}
	return v
}

// Pow2Word returns 2^n as a Word; n must be below WordBits.
func Pow2Word(n int) Word {
	if n < 0 || n >= WordBits {
		panic(fmt.Sprintf("core: Pow2Word exponent %d out of range", n))
	}
	var w Word
	w[n/64] = 1 << (uint(n) % 64)
	return w
}
