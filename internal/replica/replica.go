// Package replica adds spatial redundancy over the accelerator engine: each
// layer is programmed onto R independent crossbar array sets — independent
// map-time fault populations, independent noise streams, independently
// remappable and scrubbable — fronted by a health-aware router.
//
// The temporal answer to a detected-uncorrectable group read (the ECU's
// in-read retries, the serve ladder's reseeded re-evaluations) re-reads the
// same damaged rows, which is useless against stuck-at faults that read back
// identically every time. Spatial retry re-executes the layer on a sibling
// whose fault population is independent, so the second answer comes from
// different hardware rather than the same hardware again; for persistently
// flagged layers a 3-replica majority vote outvotes the damaged copy even
// when its errors alias into plausible magnitudes. A replica can also be
// detached for remap/scrub/sparing while its siblings keep serving, then
// rejoin after a verify pass — maintenance without the halt-before-drain
// pause a single programmed copy forces.
package replica

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/accel"
	"repro/internal/fault"
	"repro/internal/noise"
)

// maxReplicas bounds the set size: past a handful of copies the area cost
// dwarfs any reliability return (the R-sweep in expt quantifies this).
const maxReplicas = 8

// Config sizes and tunes a replica set.
type Config struct {
	// N is the replica count R; 1 (or 0) means no replication.
	N int
	// VoteThreshold is how many consecutive flagged (detected-uncorrectable)
	// MVMs a layer must accumulate in one session before its reads
	// majority-vote across 3 replicas; 0 disables voting.
	VoteThreshold int
	// VoteTolerance is the relative deviation from the element-wise median
	// at which a voter's output element is tallied as a disagreement
	// (default 0.25). Purely observational: the median is returned either
	// way.
	VoteTolerance float64
	// Monitor tunes the per-replica per-layer health windows that drive
	// routing (zero fields take fault defaults).
	Monitor fault.MonitorConfig
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 1
	}
	if c.VoteTolerance <= 0 {
		c.VoteTolerance = 0.25
	}
	return c
}

// Validate rejects nonsensical replication settings.
func (c Config) Validate() error {
	switch {
	case c.N > maxReplicas:
		return fmt.Errorf("replica: %d replicas exceeds the maximum %d", c.N, maxReplicas)
	case c.VoteThreshold < 0:
		return fmt.Errorf("replica: negative vote threshold %d", c.VoteThreshold)
	case c.VoteTolerance < 0:
		return fmt.Errorf("replica: negative vote tolerance %g", c.VoteTolerance)
	}
	return c.Monitor.Validate()
}

// Set is R independently programmed engines over the same network plus the
// routing state: one health monitor per replica, attachment flags, and the
// failover/vote accounting. Engines and monitors are concurrency-safe; the
// attachment flags are guarded here.
type Set struct {
	cfg     Config
	engines []*accel.Engine
	mons    []*fault.Monitor

	mu        sync.RWMutex
	attached  []bool
	nAttached int

	routed        []atomic.Uint64 // layer MVMs served per replica
	failovers     []atomic.Uint64 // flagged MVMs re-executed on a sibling, per flagged replica
	detaches      []atomic.Uint64 // maintenance detach count per replica
	votes         atomic.Uint64   // majority-vote rounds
	disagreements atomic.Uint64   // output elements where a voter was outvoted

	// voteThreshold is the live vote trigger, seeded from
	// cfg.VoteThreshold and adjustable at runtime by the protection
	// controller while sessions read it per flagged MVM.
	voteThreshold atomic.Int64
}

// NewSet programs cfg.N independent copies of the primary engine's network
// and wires the router state. The primary is replica 0; copies 1..N-1 are
// mapped fresh under offset engine seeds, so every copy carries its own
// fault population and noise streams.
func NewSet(primary *accel.Engine, cfg Config) (*Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Set{
		cfg:       cfg,
		engines:   make([]*accel.Engine, cfg.N),
		mons:      make([]*fault.Monitor, cfg.N),
		attached:  make([]bool, cfg.N),
		nAttached: cfg.N,
		routed:    make([]atomic.Uint64, cfg.N),
		failovers: make([]atomic.Uint64, cfg.N),
		detaches:  make([]atomic.Uint64, cfg.N),
	}
	s.voteThreshold.Store(int64(cfg.VoteThreshold))
	for r := 0; r < cfg.N; r++ {
		eng, err := primary.Replicate(uint64(r))
		if err != nil {
			return nil, fmt.Errorf("replica: programming replica %d: %w", r, err)
		}
		mon, err := fault.NewMonitor(cfg.Monitor)
		if err != nil {
			return nil, err
		}
		s.engines[r], s.mons[r] = eng, mon
		s.attached[r] = true
	}
	return s, nil
}

// Size returns the replica count R.
func (s *Set) Size() int { return len(s.engines) }

// Config returns the resolved replication configuration. Its
// VoteThreshold field is the configured starting point; VoteThreshold()
// reports the live value.
func (s *Set) Config() Config { return s.cfg }

// VoteThreshold returns the live vote trigger: how many consecutive
// flagged reads move a layer to 3-copy voting (0 disables voting).
func (s *Set) VoteThreshold() int { return int(s.voteThreshold.Load()) }

// SetVoteThreshold adjusts the live vote trigger. Negative values clamp
// to 0 (voting off). Safe against concurrent serving sessions — the
// threshold is consulted per flagged MVM, so a tightened value takes
// effect on the next flag.
func (s *Set) SetVoteThreshold(th int) {
	if th < 0 {
		th = 0
	}
	s.voteThreshold.Store(int64(th))
}

// Engine returns replica r's engine (panics out of range, like a slice).
func (s *Set) Engine(r int) *accel.Engine { return s.engines[r] }

// Retune applies an environment-adjusted device model to every replica,
// attached or not — the environment is shared by all physical copies.
func (s *Set) Retune(dev noise.DeviceParams) error {
	for r, eng := range s.engines {
		if err := eng.Retune(dev); err != nil {
			return fmt.Errorf("replica: retuning replica %d: %w", r, err)
		}
	}
	return nil
}

// Monitor returns replica r's routing health monitor.
func (s *Set) Monitor(r int) *fault.Monitor { return s.mons[r] }

// Attached reports whether replica r is in the serving rotation.
func (s *Set) Attached(r int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return r >= 0 && r < len(s.attached) && s.attached[r]
}

// AttachedCount returns how many replicas are currently serving.
func (s *Set) AttachedCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nAttached
}

// Detach takes a replica out of the serving rotation for maintenance
// (remap, scrub, sparing) while its siblings keep serving. The last
// attached replica cannot be detached: someone must answer traffic.
func (s *Set) Detach(r int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r < 0 || r >= len(s.attached) {
		return fmt.Errorf("replica: no replica %d in a set of %d", r, len(s.attached))
	}
	if !s.attached[r] {
		return fmt.Errorf("replica: replica %d is already detached", r)
	}
	if s.nAttached == 1 {
		return fmt.Errorf("replica: refusing to detach the last attached replica %d", r)
	}
	s.attached[r] = false
	s.nAttached--
	s.detaches[r].Add(1)
	return nil
}

// Attach returns a detached replica to the rotation and clears its health
// monitor: rejoin happens after a verify pass, so the replica re-earns
// trust from fresh evidence rather than pre-repair history. Idempotent.
func (s *Set) Attach(r int) {
	if r < 0 || r >= len(s.attached) {
		return
	}
	s.mu.Lock()
	if !s.attached[r] {
		s.attached[r] = true
		s.nAttached++
	}
	s.mu.Unlock()
	s.mons[r].ResetAll()
}

// pick chooses the replica to serve one layer MVM: attached replicas whose
// routing breaker for the layer is closed, rotated by (stream, layer) so
// equals share load; when every attached replica's breaker is open, the
// same rotation runs over all attached replicas (the maintenance rung will
// repair them — someone still has to answer). The choice is a pure function
// of (layer, stream, set state), so a prediction stays deterministic given
// the request seed regardless of which worker serves it.
func (s *Set) pick(layer int, stream uint64) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pickLocked(layer, stream, -1)
}

// alternate chooses a spatial-retry target: the same policy as pick with
// replica `not` excluded. ok is false when `not` is the only attached
// replica.
func (s *Set) alternate(layer int, stream uint64, not int) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.pickLocked(layer, stream, not)
	return r, r >= 0
}

func (s *Set) pickLocked(layer int, stream uint64, exclude int) int {
	rot := stream + uint64(layer)
	// First preference: attached with a closed breaker for this layer.
	if r := s.rotateLocked(rot, func(r int) bool {
		return s.attached[r] && r != exclude && s.mons[r].State(layer) == fault.BreakerClosed
	}); r >= 0 {
		return r
	}
	// Everyone eligible is sick: serve from any attached replica.
	return s.rotateLocked(rot, func(r int) bool { return s.attached[r] && r != exclude })
}

// rotateLocked returns the rot-th eligible replica in rotation order, -1
// when none is eligible.
func (s *Set) rotateLocked(rot uint64, eligible func(int) bool) int {
	n := 0
	for r := range s.engines {
		if eligible(r) {
			n++
		}
	}
	if n == 0 {
		return -1
	}
	k := int(rot % uint64(n))
	for r := range s.engines {
		if eligible(r) {
			if k == 0 {
				return r
			}
			k--
		}
	}
	return -1
}

// voters returns up to k attached replicas for a majority vote, closed
// breakers before open ones, ascending replica id within each class — a
// deterministic panel given the set state.
func (s *Set) voters(layer, k int) []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, 0, k)
	for r := range s.engines {
		if len(out) < k && s.attached[r] && s.mons[r].State(layer) == fault.BreakerClosed {
			out = append(out, r)
		}
	}
	for r := range s.engines {
		if len(out) < k && s.attached[r] && s.mons[r].State(layer) != fault.BreakerClosed {
			out = append(out, r)
		}
	}
	return out
}

// OpenLayers returns the union, across attached replicas, of layers whose
// routing breaker is open — the layers where redundancy is currently
// degraded. The router keeps answers correct by steering around those
// copies, which also keeps the damage invisible to request-level stats, so
// the serve maintenance rung polls this instead of waiting for a
// request-level trip that may never come.
func (s *Set) OpenLayers() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []int
	for r := range s.engines {
		if !s.attached[r] {
			continue
		}
		for _, h := range s.mons[r].Snapshot() {
			if h.State != fault.BreakerOpen {
				continue
			}
			seen := false
			for _, l := range out {
				if l == h.Layer {
					seen = true
					break
				}
			}
			if !seen {
				out = append(out, h.Layer)
			}
		}
	}
	sort.Ints(out)
	return out
}

// OpenFor returns the attached replicas whose routing breaker for the layer
// is open — the candidates the serve maintenance rung detaches and repairs.
func (s *Set) OpenFor(layer int) []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []int
	for r := range s.engines {
		if s.attached[r] && s.mons[r].State(layer) == fault.BreakerOpen {
			out = append(out, r)
		}
	}
	return out
}

// SickestFor returns the attached replica with the highest detected-rate
// window for the layer — the repair candidate when a request-level breaker
// trips before any per-replica breaker has enough reads to open. ok is
// false when no attached replica has a nonzero rate or fewer than two are
// attached (with one copy there is no spatial rung to run).
func (s *Set) SickestFor(layer int) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.nAttached < 2 {
		return -1, false
	}
	best, bestRate := -1, 0.0
	for r := range s.engines {
		if !s.attached[r] {
			continue
		}
		if rate := s.mons[r].Rate(layer); rate > bestRate {
			best, bestRate = r, rate
		}
	}
	return best, best >= 0
}

// SetFallback routes a layer to (or back from) the software fixed-point
// path on every replica at once — degradation is a property of the layer,
// not of one copy, so the router must not "fail over" from a degraded
// replica to a sibling still trusting broken crossbars.
func (s *Set) SetFallback(layer int, on bool) error {
	for r, eng := range s.engines {
		if err := eng.SetFallback(layer, on); err != nil {
			return fmt.Errorf("replica: fallback on replica %d: %w", r, err)
		}
	}
	return nil
}

// ReplicaStatus is one replica's row in the operator view.
type ReplicaStatus struct {
	ID       int
	Attached bool
	// OpenLayers are the layers whose routing breaker is open on this
	// replica (traffic is steered away from them).
	OpenLayers []int
	// Routed counts the layer MVMs this replica served.
	Routed uint64
	// Failovers counts flagged MVMs on this replica that were re-executed
	// on a sibling.
	Failovers uint64
	// Detaches counts maintenance detach cycles.
	Detaches uint64
}

// SetStatus is the point-in-time operator view of the whole set.
type SetStatus struct {
	Replicas []ReplicaStatus
	// Votes counts majority-vote rounds across the set's lifetime.
	Votes uint64
	// Disagreements counts output elements where a voter deviated from the
	// element-wise median past the tolerance — the damaged-copy signal.
	Disagreements uint64
}

// Status snapshots the set for /readyz and the mnn_replica_* series.
func (s *Set) Status() SetStatus {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := SetStatus{
		Replicas:      make([]ReplicaStatus, len(s.engines)),
		Votes:         s.votes.Load(),
		Disagreements: s.disagreements.Load(),
	}
	for r := range s.engines {
		rs := ReplicaStatus{
			ID:        r,
			Attached:  s.attached[r],
			Routed:    s.routed[r].Load(),
			Failovers: s.failovers[r].Load(),
			Detaches:  s.detaches[r].Load(),
		}
		for _, h := range s.mons[r].Snapshot() {
			if h.State == fault.BreakerOpen {
				rs.OpenLayers = append(rs.OpenLayers, h.Layer)
			}
		}
		st.Replicas[r] = rs
	}
	return st
}
