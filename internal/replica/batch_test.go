package replica

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/accel"
	"repro/internal/nn"
)

// noisyEngine maps the tiny network with the full default noise model, so
// the batched path's per-lane RNG isolation actually carries draws.
func noisyEngine(t testing.TB) *accel.Engine {
	t.Helper()
	rng := rand.New(rand.NewPCG(7, 3))
	net := &nn.Network{Name: "tiny", InShape: []int{16},
		Layers: []nn.Layer{nn.NewDense(16, 12, rng), &nn.ReLU{}, nn.NewDense(12, 4, rng)}}
	cfg := accel.DefaultConfig(accel.SchemeABN(8))
	cfg.Device.BitsPerCell = 2
	eng, err := accel.Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestReplicaForwardBatchMatchesSerial: on healthy hardware the routed
// batched forward must be bit-identical, stream for stream, to the serial
// routed session — picks, per-layer stream derivation, and noise draws all
// preserved — and the per-lane stat drains must equal the serial
// per-request drains.
func TestReplicaForwardBatchMatchesSerial(t *testing.T) {
	const b = 8
	streams := make([]uint64, b)
	xs := make([]*nn.Tensor, b)
	for i := range streams {
		streams[i] = uint64(300 + i)
		xs[i] = testInput(streams[i])
	}

	eng := noisyEngine(t)
	set, err := NewSet(eng, Config{N: 3, Monitor: testMonitor()})
	if err != nil {
		t.Fatal(err)
	}
	ser := set.NewSession(1)
	want := make([][]float64, b)
	wantSt := make([]accel.Stats, b)
	for i, stream := range streams {
		ser.Reseed(stream)
		want[i] = append([]float64(nil), ser.Forward(xs[i]).Data...)
		wantSt[i] = ser.DrainStats()
	}

	eng2 := noisyEngine(t)
	set2, err := NewSet(eng2, Config{N: 3, Monitor: testMonitor()})
	if err != nil {
		t.Fatal(err)
	}
	ses := set2.NewSession(1)
	defer ses.Close()
	outs, errs := ses.ForwardBatch(xs, streams)
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("image %d: %v", i, errs[i])
		}
		for k, v := range outs[i].Data {
			if math.Float64bits(v) != math.Float64bits(want[i][k]) {
				t.Fatalf("image %d logit %d: batch %v != serial %v", i, k, v, want[i][k])
			}
		}
		st := ses.DrainBatchStats(i)
		st.BatchMVMs = 0 // the only field allowed to differ: it marks the path
		if st != wantSt[i] {
			t.Fatalf("image %d stats: batch %+v != serial %+v", i, st, wantSt[i])
		}
	}
}

// TestReplicaForwardBatchFailover: with one replica's layer saturated, a
// batch routed through the set must still answer every image with the
// clean sibling's output — the failover rung runs inside the batch without
// failing batchmates.
func TestReplicaForwardBatchFailover(t *testing.T) {
	const b = 8
	streams := make([]uint64, b)
	xs := make([]*nn.Tensor, b)
	for i := range streams {
		streams[i] = uint64(500 + i)
		xs[i] = testInput(streams[i])
	}
	want := reference(t, streams)

	eng := quietEngine(t)
	set, err := NewSet(eng, Config{N: 2, Monitor: testMonitor()})
	if err != nil {
		t.Fatal(err)
	}
	saturate(t, set.Engine(1), 0)
	ses := set.NewSession(1)
	defer ses.Close()
	outs, errs := ses.ForwardBatch(xs, streams)
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("image %d: %v", i, errs[i])
		}
		for k, v := range outs[i].Data {
			if math.Float64bits(v) != math.Float64bits(want[streams[i]][k]) {
				t.Fatalf("image %d logit %d: %v != clean reference %v", i, k, v, want[streams[i]][k])
			}
		}
	}
	st := set.Status()
	var failovers uint64
	for _, r := range st.Replicas {
		failovers += r.Failovers
	}
	if failovers == 0 {
		t.Fatal("saturated replica never triggered an in-batch failover")
	}
}

// TestReplicaForwardBatchVote: a persistently flagged layer must escalate
// to the 3-replica majority vote inside a batch, and the median must
// out-vote the damaged copy.
func TestReplicaForwardBatchVote(t *testing.T) {
	const b = 6
	streams := make([]uint64, b)
	xs := make([]*nn.Tensor, b)
	for i := range streams {
		streams[i] = uint64(700 + i)
		xs[i] = testInput(streams[i])
	}
	want := reference(t, streams)

	eng := quietEngine(t)
	set, err := NewSet(eng, Config{N: 3, VoteThreshold: 1, Monitor: testMonitor()})
	if err != nil {
		t.Fatal(err)
	}
	saturate(t, set.Engine(0), 0)
	ses := set.NewSession(1)
	defer ses.Close()
	outs, errs := ses.ForwardBatch(xs, streams)
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("image %d: %v", i, errs[i])
		}
		for k, v := range outs[i].Data {
			if math.Abs(v-want[streams[i]][k]) > 1e-9 {
				t.Fatalf("image %d logit %d: %v too far from clean reference %v", i, k, v, want[streams[i]][k])
			}
		}
	}
	if set.Status().Votes == 0 {
		t.Fatal("saturated replica never triggered an in-batch vote")
	}
}
