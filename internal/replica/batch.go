package replica

import (
	"fmt"
	"math"

	"repro/internal/accel"
	"repro/internal/nn"
)

// batchState is the session's batched-forward machinery, built lazily on
// the first ForwardBatch: a lockstep batcher over per-lane clones of the
// primary's inference network, the per-lane request streams of the active
// run, and the coordinator's reusable gather scratch. All of it lives on
// the session (single goroutine); the per-replica evaluation state lives in
// each sub-session's own batch arena.
type batchState struct {
	fb      *nn.ForwardBatcher
	streams []uint64

	// per-dispatch gather scratch (grow-never-shrink)
	picks []int
	outs  [][]float64
	diffs []accel.Stats
	gIdx  []int
	gStr  []uint64
	gXs   [][]float64
	gOuts [][]float64
	gDif  []accel.Stats
	gPos  []int

	// single-image buffers for the failover/vote escalations
	one1i []int
	one1s []uint64
	one1x [][]float64
	one1o [][]float64
	one1d []accel.Stats
}

func (b *batchState) grow(n int) {
	if cap(b.picks) < n {
		b.picks = make([]int, n)
		b.outs = make([][]float64, n)
		b.diffs = make([]accel.Stats, n)
		b.gIdx = make([]int, 0, n)
		b.gStr = make([]uint64, 0, n)
		b.gXs = make([][]float64, 0, n)
		b.gOuts = make([][]float64, 0, n)
		b.gDif = make([]accel.Stats, 0, n)
		b.gPos = make([]int, 0, n)
	}
}

// ensureBatchState arms the coordinator-side batch scratch without the
// lockstep batcher — enough for an external coordinator (the shard pool)
// to drive BatchMVM directly.
func (s *Session) ensureBatchState() {
	if s.bs == nil {
		s.bs = &batchState{
			one1i: make([]int, 1), one1s: make([]uint64, 1),
			one1x: make([][]float64, 1), one1o: make([][]float64, 1),
			one1d: make([]accel.Stats, 1),
		}
	}
}

// ensureBatch arms the full batched path, lockstep batcher included.
func (s *Session) ensureBatch() {
	s.ensureBatchState()
	if s.bs.fb == nil {
		s.bs.fb = nn.NewForwardBatcher(s.set.engines[0].InferenceNet, s.set.engines[0].Layers())
	}
}

// ForwardBatch runs one routed noisy inference per input, batched: the
// images advance in lockstep and at each mapped layer the paused group is
// routed per image (each image's pick is a pure function of set health,
// layer, and its own stream) and evaluated replica by replica in a single
// multi-image pass over that replica's arrays. streams[i] plays the role of
// Reseed(streams[i]) for image i, so on healthy hardware outs[i] is
// bit-identical to the serial routed Forward of the same stream. Outputs
// are valid until the session's next ForwardBatch. errs[i] is non-nil (and
// outs[i] nil) when image i alone failed; batchmates are unaffected.
func (s *Session) ForwardBatch(xs []*nn.Tensor, streams []uint64) ([]*nn.Tensor, []error) {
	if len(streams) != len(xs) {
		panic(fmt.Sprintf("replica: %d inputs, %d streams", len(xs), len(streams)))
	}
	s.ensureBatch()
	s.bs.streams = append(s.bs.streams[:0], streams...)
	return s.bs.fb.Run(xs, s.batchMVM)
}

// BeginBatch arms the batched evaluation state for an externally
// coordinated multi-image pass: streams[i] is lane i's request stream,
// playing the role of Reseed per image exactly as in ForwardBatch. Call it
// once per batch, before the first BatchMVM of that batch.
func (s *Session) BeginBatch(streams []uint64) {
	s.ensureBatchState()
	s.bs.streams = append(s.bs.streams[:0], streams...)
}

// BatchMVM is the routed multi-image evaluation of one layer group —
// batchMVM exported for an external lockstep coordinator (the shard pool's
// batcher) that owns the forward pass and delegates each paused layer to
// the session owning it. idx holds the lane index of each image (indexing
// the streams given to BeginBatch), xs the corresponding MVM inputs.
// Outputs land in per-lane arenas and stay valid until the lane's next
// evaluation; the error slice is always nil (per-lane failures surface as
// panics in the lane's own layers, not here).
func (s *Session) BatchMVM(layer int, idx []int, xs [][]float64) ([][]float64, []error) {
	return s.batchMVM(layer, idx, xs)
}

// batchMVM is the coordinator-side routed dispatch of one paused layer
// group: pick a replica per image, evaluate each replica's images in one
// MVMLayerBatch pass, then walk the images in lane order applying the same
// flagged/vote/failover escalation the serial mvmLayer applies — so replica
// routing and voting stay at layer-MVM granularity inside a batch.
func (s *Session) batchMVM(layer int, idx []int, xs [][]float64) ([][]float64, []error) {
	bs := s.bs
	bs.grow(len(s.bs.streams))
	picks := bs.picks[:len(idx)]
	outs := bs.outs[:len(idx)]
	diffs := bs.diffs[:len(idx)]
	for j, lane := range idx {
		picks[j] = s.set.pick(layer, bs.streams[lane])
	}
	// Evaluate each replica's group in one batched pass. Replicas are
	// visited in first-occurrence order; the result is order-independent
	// because every image's draws are a pure function of (replica engine,
	// derived stream).
	for j := range idx {
		r := picks[j]
		if r < 0 {
			continue // already evaluated as part of an earlier group
		}
		bs.gIdx, bs.gStr, bs.gXs = bs.gIdx[:0], bs.gStr[:0], bs.gXs[:0]
		bs.gOuts, bs.gDif, bs.gPos = bs.gOuts[:0], bs.gDif[:0], bs.gPos[:0]
		for k := j; k < len(idx); k++ {
			if picks[k] != r {
				continue
			}
			picks[k] = -1
			lane := idx[k]
			bs.gIdx = append(bs.gIdx, lane)
			bs.gStr = append(bs.gStr, bs.streams[lane]^uint64(layer+1)*layerStreamStride)
			bs.gXs = append(bs.gXs, xs[k])
			bs.gOuts = append(bs.gOuts, nil)
			bs.gDif = append(bs.gDif, accel.Stats{})
			bs.gPos = append(bs.gPos, k)
		}
		s.sub[r].MVMLayerBatch(layer, bs.gIdx, bs.gStr, bs.gXs, bs.gOuts, bs.gDif)
		s.set.routed[r].Add(uint64(len(bs.gIdx)))
		for g, k := range bs.gPos {
			s.set.mons[r].ObserveOne(layer, bs.gDif[g])
			outs[k] = bs.gOuts[g]
			diffs[k] = bs.gDif[g]
			picks[k] = ^r // remember the evaluator for the escalation walk
		}
	}
	// Escalation walk, image by image in lane order — the exact serial
	// mvmLayer tail, sharing the session's consecutive-flag counters.
	for j := range idx {
		r := ^picks[j]
		st := diffs[j]
		if st.Detected == 0 {
			s.flagged[layer] = 0
			continue
		}
		s.flagged[layer]++
		if th := s.set.VoteThreshold(); th > 0 && s.flagged[layer] >= th {
			if v, ok := s.voteLane(layer, idx[j], xs[j]); ok {
				outs[j] = v
				continue
			}
		}
		alt, ok := s.set.alternate(layer, bs.streams[idx[j]], r)
		if !ok {
			continue
		}
		s.set.failovers[r].Add(1)
		out2, st2 := s.evalLane(alt, layer, idx[j], xs[j])
		if st2.Detected < st.Detected {
			outs[j] = out2
		}
	}
	return outs, nil
}

// evalLane is eval for one image of a batch: the same replica, stream
// derivation, and monitor feed, but evaluated through the sub-session's
// batch lane so the output lands in that image's private arena instead of
// the shared serial scratch (batchmates' outputs stay live).
func (s *Session) evalLane(r, layer, lane int, x []float64) ([]float64, accel.Stats) {
	bs := s.bs
	bs.one1i[0] = lane
	bs.one1s[0] = bs.streams[lane] ^ uint64(layer+1)*layerStreamStride
	bs.one1x[0] = x
	bs.one1o[0] = nil
	s.sub[r].MVMLayerBatch(layer, bs.one1i, bs.one1s, bs.one1x, bs.one1o, bs.one1d)
	s.set.routed[r].Add(1)
	s.set.mons[r].ObserveOne(layer, bs.one1d[0])
	return bs.one1o[0], bs.one1d[0]
}

// voteLane is vote for one image of a batch: a 3-replica panel evaluated
// through the image's own lane on each panelist, median written in place
// into the first output. The three outputs live in three distinct engines'
// lane arenas, so they are simultaneously valid like the serial vote's.
func (s *Session) voteLane(layer, lane int, x []float64) ([]float64, bool) {
	vs := s.set.voters(layer, 3)
	if len(vs) < 3 {
		return nil, false
	}
	a, _ := s.evalLane(vs[0], layer, lane, x)
	b, _ := s.evalLane(vs[1], layer, lane, x)
	c, _ := s.evalLane(vs[2], layer, lane, x)
	s.set.votes.Add(1)
	tol := s.set.cfg.VoteTolerance
	var dis uint64
	for i := range a {
		av, bv, cv := a[i], b[i], c[i]
		m := av + bv + cv - math.Min(av, math.Min(bv, cv)) - math.Max(av, math.Max(bv, cv))
		lim := tol * math.Max(math.Abs(m), 1)
		if math.Abs(av-m) > lim {
			dis++
		}
		if math.Abs(bv-m) > lim {
			dis++
		}
		if math.Abs(cv-m) > lim {
			dis++
		}
		a[i] = m
	}
	if dis > 0 {
		s.set.disagreements.Add(dis)
	}
	return a, true
}

// DrainBatchStats returns lane i's stats summed across every replica since
// the last drain and resets them — the batched, per-image counterpart of
// DrainStats.
func (s *Session) DrainBatchStats(i int) accel.Stats {
	var st accel.Stats
	for _, sub := range s.sub {
		st.Merge(sub.DrainBatchStats(i))
	}
	return st
}

// DrainBatchLayerStatsInto drains lane i's per-layer stats, merged across
// replicas, into the caller-owned map (cleared first). Call it before
// DrainBatchStats for the same lane.
func (s *Session) DrainBatchLayerStatsInto(i int, out map[int]accel.Stats) {
	clear(out)
	for _, sub := range s.sub {
		sub.DrainBatchLayerStatsInto(i, s.tmp)
		for layer, st := range s.tmp {
			agg := out[layer]
			agg.Merge(st)
			out[layer] = agg
		}
	}
}

// Close releases the session's batch machinery across every replica. The
// serial path stays usable; the batched path re-arms lazily.
func (s *Session) Close() {
	if s.bs != nil {
		if s.bs.fb != nil {
			s.bs.fb.Close()
		}
		s.bs = nil
	}
	for _, sub := range s.sub {
		sub.Close()
	}
}
