package replica

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/fault"
)

// ReplicaState is one replica's durable state: its engine and routing
// monitor, whether it was in the serving rotation, and its router counters.
type ReplicaState struct {
	Attached  bool               `json:"attached"`
	Routed    uint64             `json:"routed"`
	Failovers uint64             `json:"failovers"`
	Detaches  uint64             `json:"detaches"`
	Engine    accel.EngineState  `json:"engine"`
	Monitor   fault.MonitorState `json:"monitor"`
}

// SetState is the durable state of a replica set.
type SetState struct {
	Replicas      []ReplicaState `json:"replicas"`
	Votes         uint64         `json:"votes"`
	Disagreements uint64         `json:"disagreements"`
	VoteThreshold int            `json:"vote_threshold"`
}

// Snapshot captures the set's durable state.
func (s *Set) Snapshot() SetState {
	s.mu.RLock()
	attached := append([]bool(nil), s.attached...)
	s.mu.RUnlock()
	st := SetState{
		Replicas:      make([]ReplicaState, len(s.engines)),
		Votes:         s.votes.Load(),
		Disagreements: s.disagreements.Load(),
		VoteThreshold: int(s.voteThreshold.Load()),
	}
	for r := range s.engines {
		st.Replicas[r] = ReplicaState{
			Attached:  attached[r],
			Routed:    s.routed[r].Load(),
			Failovers: s.failovers[r].Load(),
			Detaches:  s.detaches[r].Load(),
			Engine:    s.engines[r].Snapshot(),
			Monitor:   s.mons[r].StateSnapshot(),
		}
	}
	return st
}

// CheckRestore validates a snapshot against this set without touching any
// state: replica count, every engine fingerprint and payload, every monitor
// window, and that at least one replica stays attached.
func (s *Set) CheckRestore(st SetState) error {
	if len(st.Replicas) != len(s.engines) {
		return fmt.Errorf("replica: snapshot has %d replicas, set has %d", len(st.Replicas), len(s.engines))
	}
	nAttached := 0
	for r, rs := range st.Replicas {
		if rs.Attached {
			nAttached++
		}
		if err := s.engines[r].CheckRestore(rs.Engine); err != nil {
			return fmt.Errorf("replica: snapshot replica %d: %w", r, err)
		}
		if err := rs.Monitor.Validate(); err != nil {
			return fmt.Errorf("replica: snapshot replica %d monitor: %w", r, err)
		}
	}
	if nAttached == 0 {
		return fmt.Errorf("replica: snapshot detaches every replica")
	}
	return nil
}

// Restore rebuilds every replica's engine and monitor from a snapshot and
// reinstates the router state. Every replica is validated before any is
// touched, so a refused snapshot leaves the set as it was.
func (s *Set) Restore(st SetState) error {
	if err := s.CheckRestore(st); err != nil {
		return err
	}
	nAttached := 0
	for _, rs := range st.Replicas {
		if rs.Attached {
			nAttached++
		}
	}
	for r, rs := range st.Replicas {
		if err := s.engines[r].Restore(rs.Engine); err != nil {
			return fmt.Errorf("replica: restoring replica %d: %w", r, err)
		}
		if err := s.mons[r].RestoreState(rs.Monitor); err != nil {
			return fmt.Errorf("replica: restoring replica %d monitor: %w", r, err)
		}
		s.routed[r].Store(rs.Routed)
		s.failovers[r].Store(rs.Failovers)
		s.detaches[r].Store(rs.Detaches)
	}
	s.votes.Store(st.Votes)
	s.disagreements.Store(st.Disagreements)
	s.SetVoteThreshold(st.VoteThreshold)
	s.mu.Lock()
	for r, rs := range st.Replicas {
		s.attached[r] = rs.Attached
	}
	s.nAttached = nAttached
	s.mu.Unlock()
	return nil
}
