package replica

import (
	"math"

	"repro/internal/accel"
	"repro/internal/nn"
)

// layerStreamStride separates the per-layer noise streams inside one request
// stream. Reseeding each layer MVM to (stream ^ (layer+1)*stride) makes the
// evaluation a pure function of (replica engine, request stream, layer,
// input): re-executing a layer on a sibling — or re-reading it during a vote
// — always sees the same device noise it would have seen the first time, so
// routing decisions never perturb results and failover is bit-deterministic
// under a fixed seed.
const layerStreamStride = uint64(1) << 40

// Session is one concurrent evaluation stream over a replica set: one
// accel.Session per replica (each with its own RNG and scratch arena), a
// private forward-pass network clone, and the per-layer MVM closures that
// route, fail over, and vote. Like accel.Session it must be driven from a
// single goroutine.
type Session struct {
	set  *Set
	sub  []*accel.Session
	net  *nn.Network
	mvms []nn.MVMFunc
	// stream is the request-level noise stream set by Reseed.
	stream uint64
	// flagged counts consecutive detected-uncorrectable evaluations per
	// layer; it resets when the routed read comes back clean and, at the
	// vote threshold, escalates the layer to majority voting.
	flagged []int
	// tmp stages one sub-session's per-layer drain during the merged drain.
	tmp map[int]accel.Stats
	// bs is the batched-forward machinery, armed by the first ForwardBatch.
	bs *batchState
}

// NewSession creates an evaluation stream across every replica.
func (s *Set) NewSession(seed uint64) *Session {
	ses := &Session{
		set: s,
		sub: make([]*accel.Session, len(s.engines)),
		net: s.engines[0].InferenceNet(),
		tmp: make(map[int]accel.Stats),
	}
	for r, eng := range s.engines {
		ses.sub[r] = eng.NewSession(seed)
	}
	ses.mvms = make([]nn.MVMFunc, len(ses.net.Layers))
	ses.flagged = make([]int, len(ses.net.Layers))
	for _, layer := range s.engines[0].Layers() {
		layer := layer
		ses.mvms[layer] = func(x []float64) []float64 {
			return ses.mvmLayer(layer, x)
		}
	}
	return ses
}

// Reseed repoints the session's request stream; per-layer sub-streams are
// derived from it at each evaluation.
func (s *Session) Reseed(stream uint64) { s.stream = stream }

// eval runs one layer MVM on one replica under the derived per-layer
// stream, feeds the replica's health monitor, and returns the output (alias
// of that replica session's scratch arena) with the call's ECU stats.
func (s *Session) eval(r, layer int, x []float64) ([]float64, accel.Stats) {
	sub := s.sub[r]
	sub.Reseed(s.stream ^ uint64(layer+1)*layerStreamStride)
	out, st := sub.MVMLayer(layer, x)
	s.set.routed[r].Add(1)
	s.set.mons[r].ObserveOne(layer, st)
	return out, st
}

// mvmLayer is the routed evaluation of one layer: pick the healthiest live
// replica; on a detected-uncorrectable read either majority-vote (once the
// layer is persistently flagged) or re-execute on a sibling whose fault
// population is independent — spatial first, because temporal retry re-reads
// the same stuck cells.
func (s *Session) mvmLayer(layer int, x []float64) []float64 {
	r := s.set.pick(layer, s.stream)
	out, st := s.eval(r, layer, x)
	if st.Detected == 0 {
		s.flagged[layer] = 0
		return out
	}
	s.flagged[layer]++
	if th := s.set.VoteThreshold(); th > 0 && s.flagged[layer] >= th {
		if v, ok := s.vote(layer, x); ok {
			return v
		}
	}
	alt, ok := s.set.alternate(layer, s.stream, r)
	if !ok {
		return out
	}
	s.set.failovers[r].Add(1)
	out2, st2 := s.eval(alt, layer, x)
	if st2.Detected < st.Detected {
		return out2
	}
	return out
}

// MVMLayer is the routed evaluation of one layer under the session's
// current request stream — mvmLayer exported for callers that compose
// their own forward pass over a partition of the network (the shard pool).
// The returned slice aliases a replica session's scratch arena and is
// valid until this session's next serial MVM.
func (s *Session) MVMLayer(layer int, x []float64) []float64 {
	return s.mvmLayer(layer, x)
}

// vote evaluates the layer on a 3-replica panel and returns the
// element-wise median, tallying elements where a voter deviates past the
// tolerance — the signature of a damaged copy whose errors alias into
// plausible magnitudes. ok is false when fewer than 3 replicas are
// attached. The three outputs alias three distinct scratch arenas, so they
// are simultaneously live; the median is written into the first in place.
func (s *Session) vote(layer int, x []float64) ([]float64, bool) {
	vs := s.set.voters(layer, 3)
	if len(vs) < 3 {
		return nil, false
	}
	a, _ := s.eval(vs[0], layer, x)
	b, _ := s.eval(vs[1], layer, x)
	c, _ := s.eval(vs[2], layer, x)
	s.set.votes.Add(1)
	tol := s.set.cfg.VoteTolerance
	var dis uint64
	for i := range a {
		av, bv, cv := a[i], b[i], c[i]
		m := av + bv + cv - math.Min(av, math.Min(bv, cv)) - math.Max(av, math.Max(bv, cv))
		lim := tol * math.Max(math.Abs(m), 1)
		if math.Abs(av-m) > lim {
			dis++
		}
		if math.Abs(bv-m) > lim {
			dis++
		}
		if math.Abs(cv-m) > lim {
			dis++
		}
		a[i] = m
	}
	if dis > 0 {
		s.set.disagreements.Add(dis)
	}
	return a, true
}

// Forward runs one routed inference pass. The returned tensor is owned by
// the session's network clone and valid until the next forward pass.
func (s *Session) Forward(x *nn.Tensor) *nn.Tensor {
	return s.net.ForwardWith(x, s.mvms)
}

// DrainStats returns the ECU statistics accumulated across every replica
// since the last drain and resets them.
func (s *Session) DrainStats() accel.Stats {
	var st accel.Stats
	for _, sub := range s.sub {
		st.Merge(sub.DrainStats())
	}
	return st
}

// DrainLayerStatsInto drains the per-layer statistics of every replica,
// merged by layer, into the caller-owned map (cleared first).
func (s *Session) DrainLayerStatsInto(out map[int]accel.Stats) {
	clear(out)
	for _, sub := range s.sub {
		sub.DrainLayerStatsInto(s.tmp)
		for layer, st := range s.tmp {
			agg := out[layer]
			agg.Merge(st)
			out[layer] = agg
		}
	}
}
