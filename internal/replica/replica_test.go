package replica

import (
	"math/rand/v2"
	"testing"

	"repro/internal/accel"
	"repro/internal/crossbar"
	"repro/internal/fault"
	"repro/internal/nn"
)

// quietEngine maps a small network with every noise source zeroed, so any
// two healthy replicas produce bit-identical outputs and the only
// divergence a test can see is the one it injects.
func quietEngine(t testing.TB) *accel.Engine {
	t.Helper()
	rng := rand.New(rand.NewPCG(7, 3))
	net := &nn.Network{Name: "tiny", InShape: []int{16},
		Layers: []nn.Layer{nn.NewDense(16, 12, rng), &nn.ReLU{}, nn.NewDense(12, 4, rng)}}
	cfg := accel.DefaultConfig(accel.SchemeABN(8))
	cfg.Device.BitsPerCell = 2
	cfg.Device.PRTN = 0
	cfg.Device.ProgErrFrac = 0
	cfg.Device.SampleFreq = 0
	cfg.Device.GiantProneProb = 0
	cfg.Device.FailureRate = 0
	eng, err := accel.Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func testMonitor() fault.MonitorConfig {
	return fault.MonitorConfig{Window: 4096, MinReads: 8, TripRate: 0.05}
}

func testInput(seed uint64) *nn.Tensor {
	rng := rand.New(rand.NewPCG(seed, 9))
	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.Float64()
	}
	return nn.FromSlice(x, 16)
}

// saturate pins every cell of one replica's layer at the top level — a
// persistent fault population no temporal retry can see past.
func saturate(t *testing.T, eng *accel.Engine, layer int) {
	t.Helper()
	err := eng.WithArrays(layer, func(arrays []*crossbar.Array) {
		for _, a := range arrays {
			top := uint8(a.NumLevels() - 1)
			for r := 0; r < a.Rows; r++ {
				for c := 0; c < a.Cols; c++ {
					a.SetStuck(r, c, top)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// reference computes the quiet-hardware forward pass on a fresh, undamaged
// engine identical to the set's primary.
func reference(t *testing.T, streams []uint64) map[uint64][]float64 {
	t.Helper()
	eng := quietEngine(t)
	sess := eng.NewSession(1)
	out := make(map[uint64][]float64, len(streams))
	for _, stream := range streams {
		sess.Reseed(stream)
		out[stream] = append([]float64(nil), sess.Forward(testInput(stream)).Data...)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"ok", Config{N: 3, VoteThreshold: 2}, true},
		{"too many", Config{N: maxReplicas + 1}, false},
		{"negative threshold", Config{N: 2, VoteThreshold: -1}, false},
		{"negative tolerance", Config{N: 2, VoteTolerance: -0.5}, false},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestHealthyReplicasBitIdentical: on quiet hardware the routed output is
// bit-equal to a plain single-engine forward pass no matter which replica
// the rotation lands on, and load spreads across every copy.
func TestHealthyReplicasBitIdentical(t *testing.T) {
	eng := quietEngine(t)
	set, err := NewSet(eng, Config{N: 3, Monitor: testMonitor()})
	if err != nil {
		t.Fatal(err)
	}
	streams := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	want := reference(t, streams)
	sess := set.NewSession(1)
	for _, stream := range streams {
		sess.Reseed(stream)
		got := sess.Forward(testInput(stream))
		for i, w := range want[stream] {
			if got.Data[i] != w {
				t.Fatalf("stream %d output %d: %g, want %g", stream, i, got.Data[i], w)
			}
		}
	}
	st := set.Status()
	var routed uint64
	for _, r := range st.Replicas {
		routed += r.Routed
	}
	if wantMVMs := uint64(len(streams) * len(eng.Layers())); routed != wantMVMs {
		t.Fatalf("routed MVMs = %d, want %d", routed, wantMVMs)
	}
	spread := 0
	for _, r := range st.Replicas {
		if r.Routed > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("rotation served %d replicas, want load on at least 2", spread)
	}
}

// TestRoutingAvoidsOpenBreaker: once a replica's per-layer breakers open,
// the router steers every MVM to its siblings.
func TestRoutingAvoidsOpenBreaker(t *testing.T) {
	eng := quietEngine(t)
	set, err := NewSet(eng, Config{N: 2, Monitor: testMonitor()})
	if err != nil {
		t.Fatal(err)
	}
	for _, layer := range eng.Layers() {
		set.Monitor(1).ObserveOne(layer, accel.Stats{Detected: 64})
	}
	if open := set.OpenFor(eng.Layers()[0]); len(open) != 1 || open[0] != 1 {
		t.Fatalf("OpenFor = %v, want [1]", open)
	}
	sess := set.NewSession(1)
	for stream := uint64(1); stream <= 6; stream++ {
		sess.Reseed(stream)
		sess.Forward(testInput(stream))
	}
	st := set.Status()
	if st.Replicas[1].Routed != 0 {
		t.Fatalf("sick replica served %d MVMs, want 0", st.Replicas[1].Routed)
	}
	if st.Replicas[0].Routed == 0 {
		t.Fatal("healthy replica served nothing")
	}
	if len(st.Replicas[1].OpenLayers) != len(eng.Layers()) {
		t.Fatalf("status open layers = %v", st.Replicas[1].OpenLayers)
	}
}

// TestFailoverToSibling: a flagged read on a damaged replica re-executes on
// the sibling and returns the healthy answer — every output stays bit-equal
// to the clean reference even while half the rotation lands on wrecked
// hardware.
func TestFailoverToSibling(t *testing.T) {
	eng := quietEngine(t)
	set, err := NewSet(eng, Config{N: 2, Monitor: testMonitor()})
	if err != nil {
		t.Fatal(err)
	}
	saturate(t, set.Engine(1), 0)
	streams := make([]uint64, 16)
	for i := range streams {
		streams[i] = uint64(i + 1)
	}
	want := reference(t, streams)
	sess := set.NewSession(1)
	for _, stream := range streams {
		sess.Reseed(stream)
		got := sess.Forward(testInput(stream))
		for i, w := range want[stream] {
			if got.Data[i] != w {
				t.Fatalf("stream %d output %d: %g, want %g", stream, i, got.Data[i], w)
			}
		}
	}
	if st := set.Status(); st.Replicas[1].Failovers == 0 {
		t.Fatal("no failovers recorded despite a wrecked replica in rotation")
	}
}

// TestMajorityVoteOutvotesDamagedCopy: with three replicas and a threshold
// of one flagged read, a damaged copy's answer is replaced by the
// element-wise median of the panel — the healthy value — and its deviation
// is tallied as disagreements.
func TestMajorityVoteOutvotesDamagedCopy(t *testing.T) {
	eng := quietEngine(t)
	set, err := NewSet(eng, Config{N: 3, VoteThreshold: 1, Monitor: testMonitor()})
	if err != nil {
		t.Fatal(err)
	}
	saturate(t, set.Engine(1), 0)
	streams := make([]uint64, 12)
	for i := range streams {
		streams[i] = uint64(i + 1)
	}
	want := reference(t, streams)
	sess := set.NewSession(1)
	for _, stream := range streams {
		sess.Reseed(stream)
		got := sess.Forward(testInput(stream))
		for i, w := range want[stream] {
			if got.Data[i] != w {
				t.Fatalf("stream %d output %d: %g, want %g", stream, i, got.Data[i], w)
			}
		}
	}
	st := set.Status()
	if st.Votes == 0 {
		t.Fatal("no vote rounds despite threshold 1 and a damaged copy")
	}
	if st.Disagreements == 0 {
		t.Fatal("vote rounds tallied no disagreements from the damaged copy")
	}
}

// TestDetachAttachSemantics: detach refuses nonsense and the last copy,
// detached replicas serve nothing, and rejoin resets the replica's health
// so it re-earns trust from fresh evidence.
func TestDetachAttachSemantics(t *testing.T) {
	eng := quietEngine(t)
	set, err := NewSet(eng, Config{N: 2, Monitor: testMonitor()})
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Detach(5); err == nil {
		t.Fatal("detaching a replica out of range must fail")
	}
	if err := set.Detach(0); err != nil {
		t.Fatal(err)
	}
	if set.Attached(0) || set.AttachedCount() != 1 {
		t.Fatal("replica 0 still attached after Detach")
	}
	if err := set.Detach(0); err == nil {
		t.Fatal("double-detach must fail")
	}
	if err := set.Detach(1); err == nil {
		t.Fatal("the last attached replica must not be detachable")
	}

	// Traffic keeps flowing on the sibling alone.
	sess := set.NewSession(1)
	for stream := uint64(1); stream <= 4; stream++ {
		sess.Reseed(stream)
		sess.Forward(testInput(stream))
	}
	st := set.Status()
	if st.Replicas[0].Routed != 0 {
		t.Fatalf("detached replica served %d MVMs", st.Replicas[0].Routed)
	}
	if st.Replicas[0].Detaches != 1 {
		t.Fatalf("detach count = %d, want 1", st.Replicas[0].Detaches)
	}

	// Rejoin clears the health monitor.
	set.Monitor(0).ObserveOne(0, accel.Stats{Detected: 64})
	set.Attach(0)
	if !set.Attached(0) || set.AttachedCount() != 2 {
		t.Fatal("replica 0 not attached after Attach")
	}
	if st := set.Monitor(0).State(0); st != fault.BreakerClosed {
		t.Fatalf("rejoined replica's breaker %v, want closed", st)
	}
	set.Attach(0) // idempotent
	if set.AttachedCount() != 2 {
		t.Fatal("idempotent Attach changed the attached count")
	}
}

// TestSetFallbackReachesEveryReplica: degradation is a property of the
// layer, so it must flip on every copy at once.
func TestSetFallbackReachesEveryReplica(t *testing.T) {
	eng := quietEngine(t)
	set, err := NewSet(eng, Config{N: 2, Monitor: testMonitor()})
	if err != nil {
		t.Fatal(err)
	}
	if err := set.SetFallback(0, true); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < set.Size(); r++ {
		if !set.Engine(r).Fallback(0) {
			t.Fatalf("replica %d missed the set-wide degrade", r)
		}
	}
	if err := set.SetFallback(0, false); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < set.Size(); r++ {
		if set.Engine(r).Fallback(0) {
			t.Fatalf("replica %d missed the set-wide un-degrade", r)
		}
	}
}
