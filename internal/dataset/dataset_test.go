package dataset

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/nn"
)

func nnRand(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0)) }

func TestSynthDigitsShapeAndLabels(t *testing.T) {
	d := SynthDigits(1, 50, 30)
	if d.Classes != 10 || len(d.Train) != 50 || len(d.Test) != 30 {
		t.Fatalf("sizes: %d classes, %d train, %d test", d.Classes, len(d.Train), len(d.Test))
	}
	seen := make(map[int]bool)
	for _, ex := range d.Train {
		if ex.Label < 0 || ex.Label > 9 {
			t.Fatalf("label %d out of range", ex.Label)
		}
		seen[ex.Label] = true
		if len(ex.Input.Shape) != 3 || ex.Input.Shape[1] != 28 {
			t.Fatalf("shape %v", ex.Input.Shape)
		}
		for _, v := range ex.Input.Data {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %g out of [0,1]", v)
			}
		}
	}
	if len(seen) != 10 {
		t.Fatalf("only %d classes present in 50 samples", len(seen))
	}
}

func TestSynthDigitsDeterministic(t *testing.T) {
	a := SynthDigits(7, 10, 10)
	b := SynthDigits(7, 10, 10)
	for i := range a.Train {
		for j := range a.Train[i].Input.Data {
			if a.Train[i].Input.Data[j] != b.Train[i].Input.Data[j] {
				t.Fatal("same seed must generate identical data")
			}
		}
	}
	c := SynthDigits(8, 10, 10)
	same := true
	for j := range a.Train[0].Input.Data {
		if a.Train[0].Input.Data[j] != c.Train[0].Input.Data[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}

func TestSynthDigitsTrainTestDisjointStreams(t *testing.T) {
	d := SynthDigits(3, 10, 10)
	same := true
	for j := range d.Train[0].Input.Data {
		if d.Train[0].Input.Data[j] != d.Test[0].Input.Data[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("train and test streams must be independent")
	}
}

func TestSynthDigitsHaveInk(t *testing.T) {
	d := SynthDigits(5, 20, 0)
	for i, ex := range d.Train {
		sum := 0.0
		for _, v := range ex.Input.Data {
			sum += v
		}
		// A glyph should cover a meaningful fraction of the image but not
		// dominate it.
		if sum < 20 || sum > 500 {
			t.Fatalf("sample %d (label %d) ink mass %g implausible", i, ex.Label, sum)
		}
	}
}

// TestSynthDigitsLearnable: a small MLP must reach high accuracy quickly,
// confirming the classes are separable like MNIST.
func TestSynthDigitsLearnable(t *testing.T) {
	d := SynthDigits(11, 1500, 300)
	net := &nn.Network{Name: "probe", InShape: []int{1, 28, 28}, Layers: nil}
	rng := nnRand(1)
	net.Layers = []nn.Layer{&nn.Flatten{}, nn.NewDense(784, 96, rng), &nn.ReLU{}, nn.NewDense(96, 10, rng)}
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 10
	nn.Train(net, d.Train, cfg)
	if miss := nn.Evaluate(net, d.Test); miss > 0.15 {
		t.Fatalf("probe misclassification %.3f; digits should be learnable", miss)
	}
}

// TestSynthObjectsHarderThanDigits: the ILSVRC stand-in must be
// substantially harder for a small probe model, mirroring the
// MNIST-vs-ImageNet difficulty gap the paper's baselines reflect.
func TestSynthObjectsHarderThanDigits(t *testing.T) {
	classes := 20
	d := SynthObjects(13, classes, 800, 300)
	net := &nn.Network{Name: "probe", InShape: []int{3, 32, 32}}
	rng := nnRand(2)
	net.Layers = []nn.Layer{&nn.Flatten{}, nn.NewDense(3072, 48, rng), &nn.ReLU{}, nn.NewDense(48, classes, rng)}
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 6
	nn.Train(net, d.Train, cfg)
	miss := nn.Evaluate(net, d.Test)
	chance := 1 - 1/float64(classes)
	if miss >= chance {
		t.Fatalf("probe does no better than chance (%.3f)", miss)
	}
	if miss < 0.10 {
		t.Fatalf("objects too easy (%.3f); Table III needs a hard baseline", miss)
	}
}

func TestSynthObjectsShape(t *testing.T) {
	d := SynthObjects(1, 40, 40, 40)
	if d.Classes != 40 {
		t.Fatalf("classes = %d", d.Classes)
	}
	labels := make(map[int]bool)
	for _, ex := range d.Test {
		labels[ex.Label] = true
		if ex.Input.Shape[0] != 3 || ex.Input.Shape[1] != 32 || ex.Input.Shape[2] != 32 {
			t.Fatalf("shape %v", ex.Input.Shape)
		}
		for _, v := range ex.Input.Data {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("pixel %g out of range", v)
			}
		}
	}
	if len(labels) != 40 {
		t.Fatalf("%d distinct labels in test set", len(labels))
	}
}

func TestSynthObjectsClassesDiffer(t *testing.T) {
	d := SynthObjects(21, 4, 8, 0)
	// Mean images of different classes should differ noticeably more than
	// samples within a class differ from their own mean.
	byClass := map[int][]*nn.Tensor{}
	for _, ex := range d.Train {
		byClass[ex.Label] = append(byClass[ex.Label], ex.Input)
	}
	m0 := meanImage(byClass[0])
	m1 := meanImage(byClass[1])
	if dist(m0, m1) < 0.5 {
		t.Fatalf("class means too similar: %g", dist(m0, m1))
	}
}

func meanImage(xs []*nn.Tensor) []float64 {
	out := make([]float64, xs[0].Len())
	for _, x := range xs {
		for i, v := range x.Data {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(xs))
	}
	return out
}

func dist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestPointSegDist(t *testing.T) {
	if d := pointSegDist(0, 1, 0, 0, 2, 0); d != 1 {
		t.Fatalf("perpendicular distance = %g", d)
	}
	if d := pointSegDist(-3, 0, 0, 0, 2, 0); d != 3 {
		t.Fatalf("endpoint distance = %g", d)
	}
	if d := pointSegDist(1, 0, 1, 0, 1, 0); d != 0 {
		t.Fatalf("degenerate segment distance = %g", d)
	}
}
