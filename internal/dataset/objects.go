package dataset

import (
	"math"
	"math/rand/v2"

	"repro/internal/nn"
	"repro/internal/stats"
)

// SynthObjects generates the ILSVRC stand-in: 32x32 RGB images of
// procedurally textured shapes, one texture/shape/palette family per class,
// under heavy per-sample jitter, noise, and occlusion. The jitter levels
// are tuned so a briefly trained MiniAlexNet lands in the same software
// top-1 regime as AlexNet on ILSVRC (~40%+ misclassification), which is
// what Table III's deltas are measured against.
func SynthObjects(seed uint64, classes, nTrain, nTest int) *Dataset {
	d := &Dataset{Name: "SynthObjects", Classes: classes, Shape: []int{3, 32, 32}}
	trainRNG := stats.SubRNG(seed, 2)
	testRNG := stats.SubRNG(seed, 3)
	protos := make([]objectClass, classes)
	for c := range protos {
		protos[c] = newObjectClass(stats.SubRNG(seed, 100+uint64(c)))
	}
	for i := 0; i < nTrain; i++ {
		c := i % classes
		d.Train = append(d.Train, protos[c].render(trainRNG, c))
	}
	for i := 0; i < nTest; i++ {
		c := i % classes
		d.Test = append(d.Test, protos[c].render(testRNG, c))
	}
	return d
}

// objectClass is the fixed prototype of one class: a texture family with
// its parameters and palette.
type objectClass struct {
	pattern   int // 0 grating, 1 checker, 2 rings, 3 blobs, 4 spiral
	freq      float64
	orient    float64
	shape     int // 0 disc, 1 square, 2 triangle mask
	fg, bg    [3]float64
	blobSeedX [4]float64
	blobSeedY [4]float64
}

func newObjectClass(rng *rand.Rand) objectClass {
	oc := objectClass{
		pattern: rng.IntN(5),
		freq:    0.25 + rng.Float64()*0.9,
		orient:  rng.Float64() * math.Pi,
		shape:   rng.IntN(3),
	}
	for i := 0; i < 3; i++ {
		oc.fg[i] = 0.35 + 0.65*rng.Float64()
		oc.bg[i] = 0.5 * rng.Float64()
	}
	for i := range oc.blobSeedX {
		oc.blobSeedX[i] = rng.Float64() * 32
		oc.blobSeedY[i] = rng.Float64() * 32
	}
	return oc
}

func (oc objectClass) render(rng *rand.Rand, label int) nn.Example {
	const size = 32
	img := nn.NewTensor(3, size, size)
	// Per-sample jitter: phase, orientation wobble, center shift, contrast,
	// brightness, occluding bar.
	phase := rng.Float64() * 2 * math.Pi
	orient := oc.orient + (2*rng.Float64()-1)*0.35
	cx := 16 + (2*rng.Float64()-1)*5
	cy := 16 + (2*rng.Float64()-1)*5
	radius := 9 + rng.Float64()*5
	contrast := 0.55 + rng.Float64()*0.45
	bright := (2*rng.Float64() - 1) * 0.15
	occX, occY := rng.Float64()*size, rng.Float64()*size
	occW, occH := 3+rng.Float64()*6, 3+rng.Float64()*6
	cosO, sinO := math.Cos(orient), math.Sin(orient)

	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			fx, fy := float64(x), float64(y)
			// Rotated texture coordinates.
			u := cosO*(fx-cx) + sinO*(fy-cy)
			v := -sinO*(fx-cx) + cosO*(fy-cy)
			var tex float64
			switch oc.pattern {
			case 0: // grating
				tex = 0.5 + 0.5*math.Sin(oc.freq*u+phase)
			case 1: // checker
				a := math.Sin(oc.freq*u+phase) * math.Sin(oc.freq*v+phase)
				if a > 0 {
					tex = 1
				}
			case 2: // rings
				tex = 0.5 + 0.5*math.Sin(oc.freq*math.Hypot(u, v)*2+phase)
			case 3: // blobs
				for i := range oc.blobSeedX {
					d := math.Hypot(fx-oc.blobSeedX[i], fy-oc.blobSeedY[i])
					tex += math.Exp(-d * d / 30)
				}
				if tex > 1 {
					tex = 1
				}
			case 4: // spiral
				ang := math.Atan2(v, u)
				tex = 0.5 + 0.5*math.Sin(3*ang+oc.freq*math.Hypot(u, v)+phase)
			}
			// Shape mask selects figure vs ground.
			inside := false
			switch oc.shape {
			case 0:
				inside = math.Hypot(fx-cx, fy-cy) < radius
			case 1:
				inside = math.Abs(fx-cx) < radius*0.85 && math.Abs(fy-cy) < radius*0.85
			case 2:
				inside = fy-cy < radius*0.7 && math.Abs(fx-cx) < (fy-cy+radius)*0.55
			}
			occluded := fx >= occX && fx < occX+occW && fy >= occY && fy < occY+occH
			for ch := 0; ch < 3; ch++ {
				var val float64
				if inside {
					val = oc.bg[ch] + (oc.fg[ch]-oc.bg[ch])*tex
				} else {
					val = oc.bg[ch] * 0.6
				}
				if occluded {
					val = 0.5
				}
				val = (val-0.5)*contrast + 0.5 + bright + rng.NormFloat64()*0.18
				if val < 0 {
					val = 0
				}
				if val > 1 {
					val = 1
				}
				img.SetAt(ch, y, x, val)
			}
		}
	}
	return nn.Example{Input: img, Label: label}
}
