// Package dataset generates the synthetic workloads that stand in for the
// paper's datasets (see DESIGN.md section 1): SynthDigits replaces MNIST
// with procedurally rendered 28x28 stroke digits under affine jitter and
// pixel noise, and SynthObjects replaces ILSVRC-2012 with a deliberately
// hard 32x32 RGB procedural-texture classification task. Both are fully
// deterministic given a seed, so every experiment is reproducible offline.
package dataset

import (
	"math"
	"math/rand/v2"

	"repro/internal/nn"
	"repro/internal/stats"
)

// Dataset is a labelled train/test split.
type Dataset struct {
	Name    string
	Classes int
	// Shape is the CHW input shape of each example.
	Shape []int
	Train []nn.Example
	Test  []nn.Example
}

// segment is one stroke of a digit glyph in unit-square coordinates
// (x right, y down).
type segment struct{ x0, y0, x1, y1 float64 }

// arc appends a polyline approximation of an elliptical arc.
func arc(cx, cy, rx, ry, a0, a1 float64, n int) []segment {
	out := make([]segment, 0, n)
	px, py := cx+rx*math.Cos(a0), cy+ry*math.Sin(a0)
	for i := 1; i <= n; i++ {
		a := a0 + (a1-a0)*float64(i)/float64(n)
		x, y := cx+rx*math.Cos(a), cy+ry*math.Sin(a)
		out = append(out, segment{px, py, x, y})
		px, py = x, y
	}
	return out
}

func line(pts ...float64) []segment {
	out := make([]segment, 0, len(pts)/2-1)
	for i := 2; i+1 < len(pts); i += 2 {
		out = append(out, segment{pts[i-2], pts[i-1], pts[i], pts[i+1]})
	}
	return out
}

// glyphs defines stroke skeletons for the digits 0-9.
var glyphs = [10][]segment{
	0: arc(0.5, 0.5, 0.26, 0.34, 0, 2*math.Pi, 16),
	1: append(line(0.35, 0.3, 0.55, 0.15, 0.55, 0.85), line(0.38, 0.85, 0.72, 0.85)...),
	2: append(arc(0.5, 0.32, 0.25, 0.18, math.Pi, 2.2*math.Pi, 8),
		line(0.72, 0.42, 0.25, 0.85, 0.78, 0.85)...),
	3: append(arc(0.48, 0.32, 0.24, 0.17, 1.15*math.Pi, 2.4*math.Pi, 8),
		arc(0.48, 0.67, 0.26, 0.19, 1.6*math.Pi, 2.85*math.Pi, 8)...),
	4: line(0.65, 0.85, 0.65, 0.15, 0.25, 0.62, 0.8, 0.62),
	5: append(line(0.75, 0.15, 0.3, 0.15, 0.28, 0.48),
		arc(0.5, 0.63, 0.26, 0.2, 1.35*math.Pi, 2.8*math.Pi, 10)...),
	6: append(arc(0.48, 0.63, 0.24, 0.21, 0, 2*math.Pi, 12),
		line(0.3, 0.55, 0.52, 0.15)...),
	7: line(0.22, 0.15, 0.78, 0.15, 0.45, 0.85),
	8: append(arc(0.5, 0.32, 0.21, 0.16, 0, 2*math.Pi, 12),
		arc(0.5, 0.68, 0.25, 0.19, 0, 2*math.Pi, 12)...),
	9: append(arc(0.52, 0.37, 0.24, 0.21, 0, 2*math.Pi, 12),
		line(0.7, 0.45, 0.48, 0.85)...),
}

// DigitParams controls the SynthDigits difficulty knobs.
type DigitParams struct {
	// Thickness is the stroke half-width in pixels.
	Thickness float64
	// MaxShift, MaxRotate, ScaleJitter bound the affine jitter.
	MaxShift    float64 // pixels
	MaxRotate   float64 // radians
	ScaleJitter float64 // fractional
	// PixelNoise is the additive Gaussian sigma on [0,1] intensities.
	PixelNoise float64
}

// DefaultDigitParams gives a separable-but-nontrivial task on which the
// paper's MLPs land near their MNIST software baselines (~1-2% error).
func DefaultDigitParams() DigitParams {
	return DigitParams{
		Thickness:   1.2,
		MaxShift:    3.2,
		MaxRotate:   0.38,
		ScaleJitter: 0.24,
		PixelNoise:  0.26,
	}
}

// SynthDigits generates the MNIST stand-in: nTrain training and nTest test
// examples of 28x28 grayscale digits, deterministic in seed.
func SynthDigits(seed uint64, nTrain, nTest int) *Dataset {
	return SynthDigitsWith(seed, nTrain, nTest, DefaultDigitParams())
}

// SynthDigitsWith generates digits with explicit difficulty parameters.
func SynthDigitsWith(seed uint64, nTrain, nTest int, p DigitParams) *Dataset {
	d := &Dataset{Name: "SynthDigits", Classes: 10, Shape: []int{1, 28, 28}}
	trainRNG := stats.SubRNG(seed, 0)
	testRNG := stats.SubRNG(seed, 1)
	for i := 0; i < nTrain; i++ {
		d.Train = append(d.Train, renderDigit(trainRNG, i%10, p))
	}
	for i := 0; i < nTest; i++ {
		d.Test = append(d.Test, renderDigit(testRNG, i%10, p))
	}
	return d
}

func renderDigit(rng *rand.Rand, label int, p DigitParams) nn.Example {
	const size = 28
	img := nn.NewTensor(1, size, size)
	// Random affine: rotate, scale, shift around the glyph center.
	theta := (2*rng.Float64() - 1) * p.MaxRotate
	scale := 1 + (2*rng.Float64()-1)*p.ScaleJitter
	dx := (2*rng.Float64() - 1) * p.MaxShift
	dy := (2*rng.Float64() - 1) * p.MaxShift
	cosT, sinT := math.Cos(theta)*scale, math.Sin(theta)*scale
	tx := func(x, y float64) (float64, float64) {
		// Unit square -> pixel coordinates with margin, centered affine.
		px, py := x*22+3, y*22+3
		cx, cy := px-14, py-14
		return cosT*cx - sinT*cy + 14 + dx, sinT*cx + cosT*cy + 14 + dy
	}
	segs := glyphs[label]
	for py := 0; py < size; py++ {
		for px := 0; px < size; px++ {
			// Intensity from distance to the nearest transformed stroke.
			best := math.Inf(1)
			for _, s := range segs {
				x0, y0 := tx(s.x0, s.y0)
				x1, y1 := tx(s.x1, s.y1)
				if d := pointSegDist(float64(px), float64(py), x0, y0, x1, y1); d < best {
					best = d
				}
			}
			v := 1 - (best-p.Thickness)/1.2 // soft edge over ~1.2 px
			if v > 1 {
				v = 1
			}
			if v < 0 {
				v = 0
			}
			v += rng.NormFloat64() * p.PixelNoise
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			img.Data[py*size+px] = v
		}
	}
	return nn.Example{Input: img, Label: label}
}

func pointSegDist(px, py, x0, y0, x1, y1 float64) float64 {
	dx, dy := x1-x0, y1-y0
	l2 := dx*dx + dy*dy
	t := 0.0
	if l2 > 0 {
		t = ((px-x0)*dx + (py-y0)*dy) / l2
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
	}
	ex, ey := x0+t*dx-px, y0+t*dy-py
	return math.Hypot(ex, ey)
}
