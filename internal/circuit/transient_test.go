package circuit

import (
	"math"
	"testing"

	"repro/internal/noise"
)

func TestRunRejectsBadConfigs(t *testing.T) {
	mod := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	bad := []Config{
		mod(func(c *Config) { c.Cells = 0 }),
		mod(func(c *Config) { c.TimeStep = 0 }),
		mod(func(c *Config) { c.Duration = 0 }),
		mod(func(c *Config) { c.TimeStep = 2; c.Duration = 1 }),
		mod(func(c *Config) { c.RTNCycle = 0 }),
		mod(func(c *Config) { c.Levels = []uint8{1} }), // wrong length
		mod(func(c *Config) { c.Device.BitsPerCell = 0 }),
	}
	for i, c := range bad {
		if _, err := Run(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	c := DefaultConfig()
	c.Cells = 2
	c.Levels = []uint8{1, 200}
	if _, err := Run(c); err == nil {
		t.Error("out-of-range level must be rejected")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cells = 16
	cfg.Duration = 0.01
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("sample counts differ")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same seed must reproduce the trace")
		}
	}
}

// TestFig7ErrorRateShape reproduces the Section IV observations for the
// Figure 7 configuration: a double-digit total error rate with high-side
// errors dominating, and mean current held near the ideal by the RTN offset.
func TestFig7ErrorRateShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRate < 0.05 || res.TotalRate > 0.35 {
		t.Errorf("total error rate %.3f outside the Section IV regime (~14.5%%)", res.TotalRate)
	}
	if res.HighRate < 2*res.LowRate {
		t.Errorf("high errors must dominate: high=%.4f low=%.4f", res.HighRate, res.LowRate)
	}
	// The RTN offset keeps the average current within one step of ideal.
	var mean float64
	for _, s := range res.Samples {
		mean += s.Current
	}
	mean /= float64(len(res.Samples))
	if math.Abs(mean-res.IdealCurrent) > res.StepCurrent {
		t.Errorf("mean current %.4g drifted more than one step from ideal %.4g", mean, res.IdealCurrent)
	}
}

func TestRTNOccupancyTracksPRTN(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 0.5
	cfg.Device.PRTN = 0.3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RTNOccupancy-0.3) > 0.05 {
		t.Errorf("occupancy %.3f, want ~0.30", res.RTNOccupancy)
	}
}

func TestNoRTNNoErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 0.05
	cfg.Device.PRTN = 1e-9 // effectively off
	cfg.Device.ProgErrFrac = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Thermal + shot alone are far below half a step (Section IV: RTN is
	// the dominant source).
	if res.TotalRate > 0.001 {
		t.Errorf("error rate %.4f without RTN; thermal/shot should be negligible", res.TotalRate)
	}
}

func TestErrorStepsConsistentWithCurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cells = 32
	cfg.Duration = 0.02
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		want := int(math.Round((s.Current - res.IdealCurrent) / res.StepCurrent))
		if s.ErrorSteps != want {
			t.Fatalf("sample at %g: steps %d, want %d", s.Time, s.ErrorSteps, want)
		}
	}
}

func TestEqualLevels(t *testing.T) {
	lv := equalLevels(8, 4)
	counts := make([]int, 4)
	for _, l := range lv {
		counts[l]++
	}
	for k, c := range counts {
		if c != 2 {
			t.Fatalf("level %d has %d cells, want 2", k, c)
		}
	}
}

// TestTransientAgreesWithRowSampler cross-validates the two error models:
// with the ADC temporal averaging disabled and the same partial-calibration
// residual removed, the instantaneous row sampler must land in the same
// error-rate regime as the circuit transient. (With the default averaging
// of 64 configurations per conversion, the accelerator path sees a far
// lower rate — that gap is the modelling point, not a bug.)
func TestTransientAgreesWithRowSampler(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := cfg.Device
	dev.RTNAveraging = 1
	s, err := noise.NewRowSampler(dev)
	if err != nil {
		t.Fatal(err)
	}
	pred := s.PredictStepProbs([]int{32, 32, 32, 32}).Total()
	// The transient additionally carries the partial-calibration mean
	// shift, so allow a generous factor.
	ratio := res.TotalRate / pred
	if ratio < 0.2 || ratio > 8 {
		t.Errorf("transient rate %.4f vs instantaneous sampler prediction %.4f: ratio %.2f", res.TotalRate, pred, ratio)
	}
}
