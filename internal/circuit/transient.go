// Package circuit is the discrete-time replacement for the paper's SPICE
// model of a single crossbar row (Section IV, Figures 6 and 7): a chain of
// programmable resistors driven by ideal voltage sources, each with a
// two-state random-telegraph-noise Markov process (exponential dwell times),
// plus Johnson-Nyquist thermal and shot-noise current sources, sampled over
// a transient window. It reproduces the Figure 7 current trace and the
// Section IV error-rate split.
package circuit

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/noise"
	"repro/internal/stats"
)

// Config describes one row transient experiment.
type Config struct {
	// Device holds the cell physics (Table I).
	Device noise.DeviceParams
	// Cells is the row length (paper: 128).
	Cells int
	// Levels assigns a programmed level per cell; nil distributes cells
	// equally across all levels as in Figure 7.
	Levels []uint8
	// Duration is the simulated wall time in seconds (paper: 1 s).
	Duration float64
	// TimeStep is the integration step in seconds.
	TimeStep float64
	// RTNCycle is the mean RTN dwell cycle tauErr+tauNormal in seconds;
	// the two dwell times are split to give the configured PRTN occupancy.
	RTNCycle float64
	// Seed drives the deterministic RNG.
	Seed uint64
}

// DefaultConfig returns the Figure 7 setup: 128 cells, 2 bits per cell,
// equal level occupancy, one second at 0.1 ms resolution.
func DefaultConfig() Config {
	return Config{
		Device:   noise.DefaultDeviceParams(),
		Cells:    128,
		Duration: 1.0,
		TimeStep: 1e-4,
		RTNCycle: 20e-3,
		Seed:     1,
	}
}

// Sample is one point of the simulated current transient.
type Sample struct {
	Time    float64 // seconds
	Current float64 // amps
	// ErrorSteps is the quantization error the ADC would emit at this
	// instant: round((I - Iexpected) / Istep).
	ErrorSteps int
}

// Result holds the transient trace and its error statistics.
type Result struct {
	Samples []Sample
	// IdealCurrent is the error-free current the ADC lattice is centered
	// on (the dotted line of Figure 7).
	IdealCurrent float64
	// StepCurrent is one ADC quantization step in amps; the ±1 and ±2
	// error thresholds sit at ±0.5 and ±1.5 steps around IdealCurrent.
	StepCurrent float64
	// HighRate, LowRate, TotalRate are the fractions of samples quantizing
	// above, below, and away from the correct output.
	HighRate, LowRate, TotalRate float64
	// RTNOccupancy is the observed fraction of cell-time spent in the RTN
	// error state (should track DeviceParams.PRTN).
	RTNOccupancy float64
}

type cell struct {
	gProg   float64 // programmed conductance (with RTN offset compensation)
	gErr    float64 // conductance while in the RTN error state
	tauErr  float64
	tauNorm float64
	inErr   bool
}

// Run executes the transient simulation.
func Run(cfg Config) (*Result, error) {
	dev := cfg.Device
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cells <= 0 {
		return nil, fmt.Errorf("circuit: need at least one cell, got %d", cfg.Cells)
	}
	if cfg.TimeStep <= 0 || cfg.Duration <= 0 || cfg.TimeStep > cfg.Duration {
		return nil, fmt.Errorf("circuit: bad time base dt=%g T=%g", cfg.TimeStep, cfg.Duration)
	}
	if cfg.RTNCycle <= 0 {
		return nil, fmt.Errorf("circuit: RTN cycle must be positive")
	}
	levels := cfg.Levels
	if levels == nil {
		levels = equalLevels(cfg.Cells, dev.NumLevels())
	}
	if len(levels) != cfg.Cells {
		return nil, fmt.Errorf("circuit: %d levels for %d cells", len(levels), cfg.Cells)
	}

	rng := stats.NewRNG(cfg.Seed)
	conds := dev.LevelConductances()
	dg := dev.DeltaG()
	cells := make([]cell, cfg.Cells)
	ideal := 0.0 // lattice current: level-weighted steps plus the GMin floor
	for i, lv := range levels {
		if int(lv) >= dev.NumLevels() {
			return nil, fmt.Errorf("circuit: cell %d level %d out of range", i, lv)
		}
		g := conds[lv]
		ideal += dev.VHi * g
		x := dev.DeltaROverR(1 / g)
		// Programming-time RTN offset (Section IV): shave the mean RTN
		// excess off the programmed conductance, clamped at GMin, then
		// apply the iterative-programming tolerance.
		comp := dev.CompensationFactor * dev.PRTN * g * x
		if g-comp < dev.GMin() {
			comp = g - dev.GMin()
		}
		tol := dev.ProgErrFrac
		if lsb := dev.ProgVerifyLSB * dg / g; dev.ProgVerifyLSB > 0 && tol > lsb {
			tol = lsb
		}
		gProg := (g - comp) * (1 + tol*(2*rng.Float64()-1))
		cells[i] = cell{
			gProg:   gProg,
			gErr:    gProg * (1 + x),
			tauErr:  dev.PRTN * cfg.RTNCycle,
			tauNorm: (1 - dev.PRTN) * cfg.RTNCycle,
			inErr:   rng.Float64() < dev.PRTN,
		}
	}

	stepI := dev.VHi * dg
	nSteps := int(cfg.Duration / cfg.TimeStep)
	res := &Result{
		Samples:      make([]Sample, 0, nSteps),
		IdealCurrent: ideal,
		StepCurrent:  stepI,
	}
	high, low, occupied := 0, 0, 0
	for s := 0; s < nSteps; s++ {
		i := 0.0
		for c := range cells {
			cl := &cells[c]
			if flip(rng, cfg.TimeStep, cl.tau()) {
				cl.inErr = !cl.inErr
			}
			if cl.inErr {
				occupied++
				i += dev.VHi * cl.gErr
			} else {
				i += dev.VHi * cl.gProg
			}
			// Thermal noise of this cell at its current resistance.
			g := cl.gProg
			if cl.inErr {
				g = cl.gErr
			}
			i += rng.NormFloat64() * dev.ThermalNoiseSigma(1/g)
		}
		i += rng.NormFloat64() * dev.ShotNoiseSigma(i)
		e := int(math.Round((i - ideal) / stepI))
		if e > 0 {
			high++
		} else if e < 0 {
			low++
		}
		res.Samples = append(res.Samples, Sample{
			Time:       float64(s) * cfg.TimeStep,
			Current:    i,
			ErrorSteps: e,
		})
	}
	n := float64(nSteps)
	res.HighRate = float64(high) / n
	res.LowRate = float64(low) / n
	res.TotalRate = float64(high+low) / n
	res.RTNOccupancy = float64(occupied) / (n * float64(cfg.Cells))
	return res, nil
}

func (c *cell) tau() float64 {
	if c.inErr {
		return c.tauErr
	}
	return c.tauNorm
}

// flip returns true if an exponential dwell of mean tau expires within dt.
func flip(rng *rand.Rand, dt, tau float64) bool {
	return rng.Float64() < -math.Expm1(-dt/tau)
}

// equalLevels spreads cells evenly across all levels (Figure 7: "an equal
// number of elements in each state").
func equalLevels(cells, numLevels int) []uint8 {
	out := make([]uint8, cells)
	for i := range out {
		out[i] = uint8(i % numLevels)
	}
	return out
}
