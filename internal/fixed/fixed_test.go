package fixed

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestQuantizeRoundTripAccuracy(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	q := Quantize(vals, 16)
	for i, v := range vals {
		if err := math.Abs(q.Dequantize(i) - v); err > q.Scale/2+1e-12 {
			t.Fatalf("element %d: error %g exceeds half step %g", i, err, q.Scale/2)
		}
	}
}

func TestQuantizeFullScaleMapsToLimit(t *testing.T) {
	q := Quantize([]float64{-2, 1, 2}, 8)
	if q.Values[2] != 127 || q.Values[0] != -127 {
		t.Fatalf("full scale mapped to %d/%d", q.Values[0], q.Values[2])
	}
}

func TestQuantizeAllZeros(t *testing.T) {
	q := Quantize([]float64{0, 0}, 16)
	if q.Scale != 1 || q.Values[0] != 0 {
		t.Fatal("all-zero input must quantize to zeros with scale 1")
	}
}

func TestQuantizePanicsOnBadBits(t *testing.T) {
	for _, bits := range []int{1, 63} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bits=%d must panic", bits)
				}
			}()
			Quantize(nil, bits)
		}()
	}
}

func TestBiasUnbiasRoundTrip(t *testing.T) {
	for _, v := range []int64{-32768, -1, 0, 1, 32767} {
		u := Bias(v, 16)
		if u > 65535 {
			t.Fatalf("biased %d out of 16-bit unsigned range: %d", v, u)
		}
		if got := Unbias(u, 16); got != v {
			t.Fatalf("round trip %d -> %d -> %d", v, u, got)
		}
	}
}

func TestBiasPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Bias(128, 8)
}

// TestBiasedDotProductIdentity checks the ISAAC identity the mapper relies
// on: sum((w+half)*v) - half*sum(v) == sum(w*v) exactly, for all integers.
func TestBiasedDotProductIdentity(t *testing.T) {
	f := func(ws [8]int16, vs [8]uint8) bool {
		var biased, plain, vsum int64
		for i := range ws {
			w := int64(ws[i])
			v := int64(vs[i])
			biased += int64(Bias(w, 16)) * v
			plain += w * v
			vsum += v
		}
		return biased-BiasCorrection(16, vsum) == plain
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeUnsignedClampsNegatives(t *testing.T) {
	q := QuantizeUnsigned([]float64{-1, 0, 0.5, 1}, 8)
	if q.Values[0] != 0 || q.Values[1] != 0 {
		t.Fatal("negatives must clamp to zero")
	}
	if q.Values[3] != 255 {
		t.Fatalf("max value = %d, want 255", q.Values[3])
	}
	if q.Values[2] != 128 {
		t.Fatalf("half scale = %d, want 128", q.Values[2])
	}
}

func TestQuantizeUnsignedSum(t *testing.T) {
	q := QuantizedU{Values: []uint64{1, 2, 3}}
	if q.Sum() != 6 {
		t.Fatalf("Sum = %d", q.Sum())
	}
}

func TestQuantizeUnsignedAllZero(t *testing.T) {
	q := QuantizeUnsigned([]float64{0, 0}, 8)
	if q.Scale != 1 || q.Sum() != 0 {
		t.Fatal("zero input must give zero sum, scale 1")
	}
}

func TestQuantizeUnsignedRoundTripAccuracy(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = rng.Float64() * 10
	}
	q := QuantizeUnsigned(vals, 8)
	for i, v := range vals {
		if err := math.Abs(q.Dequantize(i) - v); err > q.Scale/2+1e-12 {
			t.Fatalf("element %d: error %g exceeds half step", i, err)
		}
	}
}

func TestQuantizeUnsignedPanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	QuantizeUnsigned(nil, 0)
}
