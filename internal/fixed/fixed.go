// Package fixed provides the fixed-point quantization used to map trained
// floating-point networks onto the crossbar substrate: symmetric signed
// quantization of weights, unsigned quantization of activations, and the
// offset-binary ("biased") encoding of negative weights from ISAAC that the
// paper adopts (Section VII-D). With offset binary, a signed weight w is
// stored as w + 2^(bits-1) >= 0; the dot product picks up a bias of
// 2^(bits-1) * sum(inputs) that the digital periphery subtracts exactly.
package fixed

import (
	"fmt"
	"math"
)

// Quantized holds a signed fixed-point view of a float vector.
type Quantized struct {
	// Values are the quantized integers in [-(2^(Bits-1)-1), 2^(Bits-1)-1].
	Values []int64
	// Scale converts back to floats: real ~= Value * Scale.
	Scale float64
	// Bits is the signed word width.
	Bits int
}

// Quantize maps vals to symmetric signed fixed point with the given width.
// The scale is chosen from the maximum magnitude so the largest value maps
// to full scale; an all-zero input gets scale 1 to stay invertible.
func Quantize(vals []float64, bits int) Quantized {
	if bits < 2 || bits > 62 {
		panic(fmt.Sprintf("fixed: signed width %d out of range [2,62]", bits))
	}
	maxMag := 0.0
	for _, v := range vals {
		if m := math.Abs(v); m > maxMag {
			maxMag = m
		}
	}
	limit := float64(int64(1)<<(bits-1) - 1)
	scale := 1.0
	if maxMag > 0 {
		scale = maxMag / limit
	}
	q := make([]int64, len(vals))
	for i, v := range vals {
		x := math.Round(v / scale)
		if x > limit {
			x = limit
		}
		if x < -limit {
			x = -limit
		}
		q[i] = int64(x)
	}
	return Quantized{Values: q, Scale: scale, Bits: bits}
}

// Dequantize returns the float approximation of element i.
func (q Quantized) Dequantize(i int) float64 { return float64(q.Values[i]) * q.Scale }

// Bias converts a signed fixed-point value to offset binary for crossbar
// storage: u = v + 2^(bits-1), always non-negative.
func Bias(v int64, bits int) uint64 {
	half := int64(1) << (bits - 1)
	if v < -half || v >= half {
		panic(fmt.Sprintf("fixed: value %d out of %d-bit signed range", v, bits))
	}
	return uint64(v + half)
}

// Unbias inverts Bias.
func Unbias(u uint64, bits int) int64 {
	half := int64(1) << (bits - 1)
	return int64(u) - half
}

// BiasCorrection returns the term the digital periphery subtracts from a
// biased dot product: 2^(bits-1) * inputSum, where inputSum is the exact
// integer sum of the input elements that multiplied the biased weights.
func BiasCorrection(bits int, inputSum int64) int64 {
	return (int64(1) << (bits - 1)) * inputSum
}

// QuantizedU holds an unsigned fixed-point view of a non-negative vector
// (activations after ReLU, or normalized input pixels).
type QuantizedU struct {
	Values []uint64
	Scale  float64
	Bits   int
}

// QuantizeUnsigned maps non-negative vals to unsigned fixed point. Negative
// inputs are clamped to zero (the accelerator applies it after ReLU).
func QuantizeUnsigned(vals []float64, bits int) QuantizedU {
	return QuantizeUnsignedInto(nil, vals, bits)
}

// QuantizeUnsignedInto is QuantizeUnsigned quantizing into dst, reusing its
// backing array when it is large enough. The returned Values alias dst.
func QuantizeUnsignedInto(dst []uint64, vals []float64, bits int) QuantizedU {
	if bits < 1 || bits > 62 {
		panic(fmt.Sprintf("fixed: unsigned width %d out of range [1,62]", bits))
	}
	maxV := 0.0
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	limit := float64(uint64(1)<<bits - 1)
	scale := 1.0
	if maxV > 0 {
		scale = maxV / limit
	}
	if cap(dst) < len(vals) {
		dst = make([]uint64, len(vals))
	}
	q := dst[:len(vals)]
	for i, v := range vals {
		if v <= 0 {
			q[i] = 0 // explicit: a reused dst carries stale values
			continue
		}
		x := math.Round(v / scale)
		if x > limit {
			x = limit
		}
		q[i] = uint64(x)
	}
	return QuantizedU{Values: q, Scale: scale, Bits: bits}
}

// Dequantize returns the float approximation of element i.
func (q QuantizedU) Dequantize(i int) float64 { return float64(q.Values[i]) * q.Scale }

// Sum returns the exact integer sum of the quantized values, the quantity
// the bias correction needs.
func (q QuantizedU) Sum() int64 {
	var s int64
	for _, v := range q.Values {
		s += int64(v)
	}
	return s
}
