// Package scenario generates deterministic, seeded environment timelines on
// the served-request clock. A Timeline assigns every campaign step an Env —
// temperature excursion, RTN dwell-time shift, wear acceleration, transient
// burst intensity — that the serving stack replays bit-for-bit the way
// fault campaigns replay: the timeline is a pure function of (spec, seed,
// steps), environment retunes derive from Env.Apply on the base device, and
// wear windows rescale fault.Campaign arrival rates without touching the
// campaign's own RNG streams.
package scenario

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/noise"
	"repro/internal/stats"
)

// Env is the environment at one step of the served-request clock. The
// neutral element is TempDeltaK 0 with every scale 1.
type Env struct {
	// Step is the campaign step this state applies to.
	Step int
	// TempDeltaK is added to DeviceParams.TempK: thermal noise sigma
	// scales as sqrt(T) (ThermalNoiseSigma), so a +60 K excursion raises
	// the Johnson-Nyquist floor ~8.2%.
	TempDeltaK float64
	// RTNScale multiplies PRTN — the dwell-time asymmetry of
	// PRTNFromDwellTimes shifts with temperature, putting cells in their
	// error state a larger fraction of each conversion.
	RTNScale float64
	// WearScale multiplies fault-campaign arrival rates at this step
	// (ScaleCampaign): thermal stress accelerates endurance failures.
	WearScale float64
	// BurstScale multiplies the giant-RTN flicker probability — transient
	// burst events where the defective population flickers far faster.
	BurstScale float64
}

// Neutral is the identity environment: applying it leaves a device as-is.
func Neutral(step int) Env {
	return Env{Step: step, RTNScale: 1, WearScale: 1, BurstScale: 1}
}

// IsNeutral reports whether the Env changes nothing.
func (e Env) IsNeutral() bool {
	return e.TempDeltaK == 0 && e.RTNScale == 1 && e.WearScale == 1 && e.BurstScale == 1
}

func clamp01(x float64) float64 {
	return math.Min(1, math.Max(0, x))
}

// Apply derives the environment-adjusted device from a base device. The
// result always passes DeviceParams.Validate() when the base does: the
// probability terms clamp to [0,1] and temperature floors at 1 K, so a
// hostile timeline can degrade a device but never produce an invalid one.
func (e Env) Apply(base noise.DeviceParams) noise.DeviceParams {
	p := base
	p.TempK = math.Max(1, p.TempK+e.TempDeltaK)
	p.PRTN = clamp01(p.PRTN * e.RTNScale)
	p.GiantFlickerProb = clamp01(p.GiantFlickerProb * e.BurstScale)
	return p
}

// Timeline is a dense per-step environment schedule.
type Timeline struct {
	// Spec and Seed identify the generation inputs for replay.
	Spec string
	Seed uint64
	Envs []Env
}

// Steps returns the timeline length.
func (t Timeline) Steps() int { return len(t.Envs) }

// At returns the environment at a step, clamped to the timeline ends, and
// neutral for an empty timeline.
func (t Timeline) At(step int) Env {
	if len(t.Envs) == 0 {
		return Neutral(step)
	}
	if step < 0 {
		step = 0
	}
	if step >= len(t.Envs) {
		step = len(t.Envs) - 1
	}
	return t.Envs[step]
}

// ScaleCampaign rescales a fault campaign's arrival rates by the wear
// window at each event's step, clamped to [0,1]. The campaign's seed and
// event structure are untouched, so the scaled campaign replays exactly
// like any other: the scenario changes how many faults arrive, never which
// RNG stream decides where they land.
func (t Timeline) ScaleCampaign(c fault.Campaign) fault.Campaign {
	out := fault.Campaign{Seed: c.Seed, Events: make([]fault.Event, len(c.Events))}
	for i, ev := range c.Events {
		ev.Rate = clamp01(ev.Rate * t.At(ev.Step).WearScale)
		out.Events[i] = ev
	}
	return out
}

// MaxWearScale reports the peak wear window, for logging and assertions.
func (t Timeline) MaxWearScale() float64 {
	peak := 1.0
	for _, e := range t.Envs {
		peak = math.Max(peak, e.WearScale)
	}
	return peak
}

// Names returns the registered scenario specs in sorted order.
func Names() []string {
	names := make([]string, 0, len(specs))
	for n := range specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// rng streams per generated quantity, keyed off the timeline seed so each
// spec parameter draws from an independent deterministic stream.
const (
	streamWindow = 0x5ce1
	streamPeak   = 0x5ce2
	streamBurst  = 0x5ce3
)

type specFn func(seed uint64, steps int) []Env

var specs = map[string]specFn{
	// calm is the identity timeline: the control arm of every matrix.
	"calm": func(_ uint64, steps int) []Env {
		envs := make([]Env, steps)
		for i := range envs {
			envs[i] = Neutral(i)
		}
		return envs
	},
	// heatwave is a temperature excursion: a seeded window covering about
	// a third of the run ramps to a +40..+80 K peak, scaling the thermal
	// floor and stretching RTN error-state dwell up to 1.5x at the peak.
	"heatwave": genHeatwave,
	// wear-spike is a wear-acceleration window: a seeded half-run window
	// multiplies fault arrival rates 4..8x at its plateau, with a mild
	// +15 K thermal signature. The window is long on purpose: sustained
	// elevated arrivals are what separate a fixed patrol rotation (stale
	// layers accumulate several steps of damage) from an adaptive one.
	"wear-spike": genWearSpike,
	// burst-storm is a train of 1-2 step transient bursts: giant-RTN
	// flicker scaled 6..10x at seeded positions, roughly one burst per
	// six steps.
	"burst-storm": genBurstStorm,
}

// window picks a deterministic excursion window [start, start+span) within
// steps, with span = steps*frac (at least 1 step).
func window(seed uint64, steps int, frac float64) (start, span int) {
	span = int(math.Max(1, math.Round(float64(steps)*frac)))
	if span >= steps {
		return 0, steps
	}
	r := stats.SubRNG(seed, streamWindow)
	start = r.IntN(steps - span)
	return start, span
}

// ramp is a plateau profile over [0, span): it climbs linearly from the
// window edges to exactly 1 at the middle and never evaluates to 0 inside
// the window — a 2-step window is two full-intensity steps, not two zeros,
// so short timelines still feel their excursions.
func ramp(i, span int) float64 {
	if span <= 1 {
		return 1
	}
	half := (span + 1) / 2
	d := i
	if span-1-i < d {
		d = span - 1 - i
	}
	f := float64(d+1) / float64(half)
	return math.Min(1, f)
}

func genHeatwave(seed uint64, steps int) []Env {
	start, span := window(seed, steps, 1.0/3)
	peakK := 40 + 40*stats.SubRNG(seed, streamPeak).Float64() // +40..+80 K
	envs := make([]Env, steps)
	for i := range envs {
		envs[i] = Neutral(i)
		if i >= start && i < start+span {
			f := ramp(i-start, span)
			envs[i].TempDeltaK = peakK * f
			envs[i].RTNScale = 1 + 0.5*f
		}
	}
	return envs
}

func genWearSpike(seed uint64, steps int) []Env {
	start, span := window(seed, steps, 1.0/2)
	peak := 4 + 4*stats.SubRNG(seed, streamPeak).Float64() // 4..8x arrivals
	envs := make([]Env, steps)
	for i := range envs {
		envs[i] = Neutral(i)
		if i >= start && i < start+span {
			f := ramp(i-start, span)
			envs[i].WearScale = 1 + (peak-1)*f
			envs[i].TempDeltaK = 15 * f
		}
	}
	return envs
}

func genBurstStorm(seed uint64, steps int) []Env {
	envs := make([]Env, steps)
	for i := range envs {
		envs[i] = Neutral(i)
	}
	r := stats.SubRNG(seed, streamBurst)
	bursts := steps / 6
	if bursts < 1 {
		bursts = 1
	}
	for b := 0; b < bursts; b++ {
		at := r.IntN(steps)
		width := 1 + r.IntN(2)
		scale := 6 + 4*r.Float64() // 6..10x flicker
		for i := at; i < at+width && i < steps; i++ {
			envs[i].BurstScale = math.Max(envs[i].BurstScale, scale)
			envs[i].RTNScale = math.Max(envs[i].RTNScale, 1.2)
		}
	}
	return envs
}

// Generate builds the named scenario's timeline for a run of the given
// length. The result is a pure function of (name, seed, steps).
func Generate(name string, seed uint64, steps int) (Timeline, error) {
	fn, ok := specs[name]
	if !ok {
		return Timeline{}, fmt.Errorf("scenario: unknown scenario %q (valid: %v)", name, Names())
	}
	if steps < 1 {
		return Timeline{}, fmt.Errorf("scenario: need at least 1 step, got %d", steps)
	}
	return Timeline{Spec: name, Seed: seed, Envs: fn(seed, steps)}, nil
}
