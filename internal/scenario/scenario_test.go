package scenario

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/noise"
)

// Same (spec, seed, steps) → bit-identical timeline. This is the replay
// contract the chaos drill and the expt matrix lean on.
func TestTimelineDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, err := Generate(name, 42, 24)
		if err != nil {
			t.Fatalf("Generate(%q): %v", name, err)
		}
		b, _ := Generate(name, 42, 24)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("scenario %q: same seed produced different timelines", name)
		}
		if len(a.Envs) != 24 {
			t.Errorf("scenario %q: %d envs, want 24", name, len(a.Envs))
		}
	}
}

// Different seeds must be able to move the excursion windows — otherwise
// the seed is decorative.
func TestTimelineSeedMatters(t *testing.T) {
	for _, name := range []string{"heatwave", "wear-spike", "burst-storm"} {
		var distinct bool
		base, _ := Generate(name, 1, 48)
		for seed := uint64(2); seed < 12 && !distinct; seed++ {
			other, _ := Generate(name, seed, 48)
			distinct = !reflect.DeepEqual(base.Envs, other.Envs)
		}
		if !distinct {
			t.Errorf("scenario %q: ten seeds produced identical timelines", name)
		}
	}
}

// Applying any generated Env to any registry device must keep the device
// valid: the serve retune path calls Validate-sensitive code with the result.
func TestEnvApplyKeepsDevicesValid(t *testing.T) {
	for _, name := range Names() {
		tl, _ := Generate(name, 7, 32)
		for _, dev := range noise.DeviceNames() {
			base := noise.MustDevice(dev)
			for _, env := range tl.Envs {
				adj := env.Apply(base)
				if err := adj.Validate(); err != nil {
					t.Fatalf("scenario %q step %d on device %q: %v", name, env.Step, dev, err)
				}
			}
		}
	}
	// Extreme hand-built Env still clamps to validity.
	hostile := Env{TempDeltaK: -1e6, RTNScale: 1e9, WearScale: 1e9, BurstScale: 1e9}
	if err := hostile.Apply(noise.DefaultDeviceParams()).Validate(); err != nil {
		t.Fatalf("hostile env produced invalid device: %v", err)
	}
}

func TestScenarioShapes(t *testing.T) {
	heat, _ := Generate("heatwave", 5, 30)
	var peakT float64
	for _, e := range heat.Envs {
		if e.TempDeltaK > peakT {
			peakT = e.TempDeltaK
		}
	}
	if peakT < 40 || peakT > 80 {
		t.Errorf("heatwave peak %g K outside [40,80]", peakT)
	}

	wear, _ := Generate("wear-spike", 5, 30)
	if peak := wear.MaxWearScale(); peak < 4 || peak > 8 {
		t.Errorf("wear-spike peak %gx outside [4,8]", peak)
	}

	calm, _ := Generate("calm", 5, 30)
	for _, e := range calm.Envs {
		if !e.IsNeutral() {
			t.Fatalf("calm step %d not neutral: %+v", e.Step, e)
		}
	}

	if _, err := Generate("no-such", 1, 10); err == nil {
		t.Fatal("want error for unknown scenario")
	}
	if _, err := Generate("calm", 1, 0); err == nil {
		t.Fatal("want error for zero steps")
	}
}

// Wear windows rescale campaign arrival rates at window steps, leave the
// seed untouched, and keep every event valid.
func TestScaleCampaign(t *testing.T) {
	camp := fault.LifetimeCampaign(9, []int{0, 2, 4}, fault.LifetimeParams{
		Steps: 30, StuckPerStep: 0.002, DriftEvery: 4, DriftRate: 0.01,
	})
	wear, _ := Generate("wear-spike", 5, 30)
	scaled := wear.ScaleCampaign(camp)
	if scaled.Seed != camp.Seed {
		t.Fatalf("ScaleCampaign changed seed %d → %d", camp.Seed, scaled.Seed)
	}
	if err := scaled.Validate(); err != nil {
		t.Fatalf("scaled campaign invalid: %v", err)
	}
	var boosted bool
	for i, ev := range scaled.Events {
		orig := camp.Events[i]
		if ev.Rate > orig.Rate {
			boosted = true
		}
		if ev.Rate < orig.Rate {
			t.Fatalf("event %d rate shrank %g → %g (wear windows only accelerate)", i, orig.Rate, ev.Rate)
		}
	}
	if !boosted {
		t.Fatal("wear-spike scaled no event rates up")
	}

	calm, _ := Generate("calm", 5, 30)
	if got := calm.ScaleCampaign(camp); !reflect.DeepEqual(got.Events, camp.Events) {
		t.Fatal("calm timeline changed the campaign")
	}
}
