package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/nn"
	"repro/internal/predict"
)

// testCalibration calibrates the tiny test network on self-labelled random
// inputs (labels from the software forward pass, so every margin is defined).
func testCalibration(t *testing.T, net *nn.Network, inputBits int) *predict.Calibration {
	t.Helper()
	var examples []nn.Example
	for s := uint64(1); s <= 24; s++ {
		x := testInput(s)
		examples = append(examples, nn.Example{Input: x, Label: net.Predict(x)})
	}
	cal, err := predict.Calibrate(net, examples, inputBits)
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

func TestPlanEndpoint(t *testing.T) {
	eng, net := testEngine(t, 0)
	cal := testCalibration(t, net, eng.Config().InputBits)
	cfg := Config{Workers: 1, Plan: PlanConfig{
		Enabled:     true,
		Calibration: cal,
		SLO:         predict.SLO{MaxMiss: 0.2},
	}}
	srv, err := NewServer(eng, Model{Name: net.Name, InShape: net.InShape}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown(t.Context()) })

	get := func() planResponse {
		t.Helper()
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/plan", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /plan status %d: %s", rec.Code, rec.Body)
		}
		var resp planResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := get()
	if resp.Workload != "tiny" || resp.Deployed != "ABN-8" {
		t.Fatalf("identity fields wrong: %+v", resp)
	}
	if resp.SLOMaxMiss != 0.2 {
		t.Fatalf("SLO echo wrong: %+v", resp)
	}
	if len(resp.Layers) == 0 {
		t.Fatal("plan has no per-layer rows")
	}
	for _, lp := range resp.Layers {
		if lp.Scheme == "" || lp.Kappa <= 0 {
			t.Fatalf("layer row malformed: %+v", lp)
		}
	}
	if resp.PredictedMiss < 0 || resp.PredictedMiss > 1 {
		t.Fatalf("predicted miss out of range: %v", resp.PredictedMiss)
	}
	if resp.Searched <= 0 {
		t.Fatalf("planner searched nothing: %+v", resp)
	}
	if resp.TotalAreaMM2 <= 0 || resp.TotalPowerMW <= 0 {
		t.Fatalf("hardware bill missing: %+v", resp)
	}
	// No recovery monitor is armed, so no measured rates informed the plan.
	if resp.MeasuredLayers != 0 {
		t.Fatalf("measured layers %d without a monitor", resp.MeasuredLayers)
	}

	// Determinism: a second request must return the identical plan.
	if again := get(); again.PredictedMiss != resp.PredictedMiss ||
		again.Searched != resp.Searched || len(again.Layers) != len(resp.Layers) {
		t.Fatalf("plan not deterministic: %+v vs %+v", resp, again)
	}
}

func TestPlanEndpointMethodAndConfig(t *testing.T) {
	eng, net := testEngine(t, 0)
	cal := testCalibration(t, net, eng.Config().InputBits)

	// Enabled without a calibration must be rejected at config time.
	bad := Config{Plan: PlanConfig{Enabled: true, SLO: predict.SLO{MaxMiss: 0.1}}}
	if _, err := NewServer(eng, Model{Name: net.Name}, bad); err == nil {
		t.Fatal("plan endpoint without calibration must fail validation")
	}
	// Enabled without a positive SLO likewise.
	bad = Config{Plan: PlanConfig{Enabled: true, Calibration: cal}}
	if _, err := NewServer(eng, Model{Name: net.Name}, bad); err == nil {
		t.Fatal("plan endpoint without SLO must fail validation")
	}

	// POST is rejected; disabled config leaves /plan unregistered.
	srv, err := NewServer(eng, Model{Name: net.Name, InShape: net.InShape},
		Config{Workers: 1, Plan: PlanConfig{Enabled: true, Calibration: cal, SLO: predict.SLO{MaxMiss: 0.2}}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown(t.Context()) })
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/plan", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /plan = %d, want 405", rec.Code)
	}

	off, err := NewServer(eng, Model{Name: net.Name, InShape: net.InShape}, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { off.Shutdown(t.Context()) })
	rec = httptest.NewRecorder()
	off.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/plan", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /plan on disabled server = %d, want 404", rec.Code)
	}
}
