package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/accel"
	"repro/internal/crossbar"
	"repro/internal/fault"
	"repro/internal/replica"
	"repro/internal/shard"
)

// Request-counter outcome labels.
const (
	outcomeOK         = "ok"
	outcomeBadRequest = "bad_request"
	outcomeQueueFull  = "queue_full"
	outcomeTimeout    = "timeout"
	outcomeCanceled   = "canceled"
	outcomeError      = "error"
)

// latencyBuckets are the histogram upper bounds in seconds.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// batchSizeBuckets are the coalesced-batch-size histogram bounds (images
// per worker pass).
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// coalesceWaitBuckets are the histogram bounds, in seconds, for how long a
// worker held a dequeued request open gathering batchmates.
var coalesceWaitBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1}

// batchTelemetry accumulates the scheduler's coalescing histograms: how
// large the multi-image passes actually are, and what the coalescing added
// to queue latency. Updated once per worker pass, not per image.
type batchTelemetry struct {
	mu        sync.Mutex
	sizeCount []uint64
	sizeSum   uint64
	waitCount []uint64
	waitSum   float64
	n         uint64
}

func (b *batchTelemetry) observe(size int, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.sizeCount == nil {
		b.sizeCount = make([]uint64, len(batchSizeBuckets)+1)
		b.waitCount = make([]uint64, len(coalesceWaitBuckets)+1)
	}
	idx := len(batchSizeBuckets)
	for i, ub := range batchSizeBuckets {
		if float64(size) <= ub {
			idx = i
			break
		}
	}
	b.sizeCount[idx]++
	b.sizeSum += uint64(size)
	sec := wait.Seconds()
	idx = len(coalesceWaitBuckets)
	for i, ub := range coalesceWaitBuckets {
		if sec <= ub {
			idx = i
			break
		}
	}
	b.waitCount[idx]++
	b.waitSum += sec
	b.n++
}

// BatchStatus is a scrape-time snapshot of the coalescing telemetry.
type BatchStatus struct {
	// SizeCount / WaitCount are per-bucket tallies aligned with
	// batchSizeBuckets / coalesceWaitBuckets, one extra slot for +Inf.
	SizeCount []uint64
	WaitCount []uint64
	// SizeSum is the total images served through worker passes, WaitSum the
	// total coalesce-hold seconds, Batches the number of passes.
	SizeSum uint64
	WaitSum float64
	Batches uint64
	// BatchMVMs is the cumulative count of per-image layer MVMs evaluated
	// through the coalesced kernel. It lives here — not in the per-request
	// Stats — because which path served an image is pool telemetry, never
	// part of the (engine, seed)-pure answer.
	BatchMVMs uint64
}

func (b *batchTelemetry) snapshot() BatchStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BatchStatus{SizeSum: b.sizeSum, WaitSum: b.waitSum, Batches: b.n}
	st.SizeCount = append(st.SizeCount, b.sizeCount...)
	st.WaitCount = append(st.WaitCount, b.waitCount...)
	return st
}

// BatchStatus returns the scheduler's coalescing snapshot.
func (s *Scheduler) BatchStatus() BatchStatus {
	st := s.bat.snapshot()
	st.BatchMVMs = s.ecc.Snapshot().BatchMVMs
	return st
}

// Metrics accumulates serving telemetry and renders it in the Prometheus
// text exposition format. One mutex guards everything: scrapes and updates
// are both rare relative to crossbar reads.
type Metrics struct {
	mu       sync.Mutex
	requests map[string]uint64
	images   uint64
	latCount []uint64 // per bucket; one extra slot for +Inf
	latSum   float64
	latN     uint64
	ecc      accel.Stats
}

func newMetrics() *Metrics {
	return &Metrics{
		requests: make(map[string]uint64),
		latCount: make([]uint64, len(latencyBuckets)+1),
	}
}

// observe records one finished request: its outcome, how many images it
// carried, its wall time, and the ECU activity it caused (merged into the
// cumulative tallies via Stats.Merge).
func (m *Metrics) observe(outcome string, images int, dur time.Duration, st accel.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[outcome]++
	m.images += uint64(images)
	sec := dur.Seconds()
	m.latSum += sec
	m.latN++
	idx := len(latencyBuckets)
	for i, ub := range latencyBuckets {
		if sec <= ub {
			idx = i
			break
		}
	}
	m.latCount[idx]++
	m.ecc.Merge(st)
}

// ECCSnapshot returns the cumulative ECU tallies.
func (m *Metrics) ECCSnapshot() accel.Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ecc
}

// GaugeView carries the live values a scrape samples from the scheduler
// and engine (they belong there, not in the accumulator).
type GaugeView struct {
	QueueDepth     int
	Workers        int
	Health         []fault.LayerHealth // nil when recovery is disabled
	DegradedLayers []int
	Recovery       RecoveryCounters
	// Scrub is the patroller snapshot (nil when scrubbing is disabled).
	Scrub *ScrubStatus
	// Verify is the cumulative closed-loop programming accounting —
	// mapping-time plus every scrub repair (nil when unavailable).
	Verify *crossbar.VerifyTally
	// Shards is the per-fault-domain snapshot (nil when unsharded).
	Shards []shard.ShardStatus
	// Replicas is the replica-set snapshot (nil without replication).
	Replicas *replica.SetStatus
	// Controller is the protection-controller snapshot (nil when disabled).
	Controller *ControllerStatus
	// Persist is the snapshotter status (nil when persistence is disabled).
	Persist *PersistStatus
	// Batch is the scheduler's coalescing snapshot (zero Batches before
	// any traffic).
	Batch BatchStatus
	// Device is the active device model's library name ("" when custom).
	Device string
	// Scheme is the deployed protection scheme name.
	Scheme string
}

// WritePrometheus renders every metric.
func (m *Metrics) WritePrometheus(w io.Writer, g GaugeView) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP mnn_build_info Deployment identity; the labels carry the active device model and protection scheme.\n")
	fmt.Fprintf(w, "# TYPE mnn_build_info gauge\n")
	fmt.Fprintf(w, "mnn_build_info{device=%q,scheme=%q} 1\n", g.Device, g.Scheme)

	fmt.Fprintf(w, "# HELP mnn_requests_total Predict requests by outcome.\n")
	fmt.Fprintf(w, "# TYPE mnn_requests_total counter\n")
	outcomes := make([]string, 0, len(m.requests))
	for o := range m.requests {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	for _, o := range outcomes {
		fmt.Fprintf(w, "mnn_requests_total{outcome=%q} %d\n", o, m.requests[o])
	}

	fmt.Fprintf(w, "# HELP mnn_images_total Images classified.\n")
	fmt.Fprintf(w, "# TYPE mnn_images_total counter\n")
	fmt.Fprintf(w, "mnn_images_total %d\n", m.images)

	fmt.Fprintf(w, "# HELP mnn_queue_depth Requests waiting in the admission queue.\n")
	fmt.Fprintf(w, "# TYPE mnn_queue_depth gauge\n")
	fmt.Fprintf(w, "mnn_queue_depth %d\n", g.QueueDepth)

	fmt.Fprintf(w, "# HELP mnn_workers Session-pool size.\n")
	fmt.Fprintf(w, "# TYPE mnn_workers gauge\n")
	fmt.Fprintf(w, "mnn_workers %d\n", g.Workers)

	fmt.Fprintf(w, "# HELP mnn_request_seconds Request wall time.\n")
	fmt.Fprintf(w, "# TYPE mnn_request_seconds histogram\n")
	cum := uint64(0)
	for i, ub := range latencyBuckets {
		cum += m.latCount[i]
		fmt.Fprintf(w, "mnn_request_seconds_bucket{le=%q} %d\n", formatFloat(ub), cum)
	}
	fmt.Fprintf(w, "mnn_request_seconds_bucket{le=\"+Inf\"} %d\n", m.latN)
	fmt.Fprintf(w, "mnn_request_seconds_sum %g\n", m.latSum)
	fmt.Fprintf(w, "mnn_request_seconds_count %d\n", m.latN)

	fmt.Fprintf(w, "# HELP mnn_ecc_reads_total Coded group reads by ECU outcome.\n")
	fmt.Fprintf(w, "# TYPE mnn_ecc_reads_total counter\n")
	fmt.Fprintf(w, "mnn_ecc_reads_total{status=\"clean\"} %d\n", m.ecc.Clean)
	fmt.Fprintf(w, "mnn_ecc_reads_total{status=\"corrected\"} %d\n", m.ecc.Corrected)
	fmt.Fprintf(w, "mnn_ecc_reads_total{status=\"detected\"} %d\n", m.ecc.Detected)

	fmt.Fprintf(w, "# HELP mnn_ecc_retries_total Re-reads after detected-uncorrectable errors.\n")
	fmt.Fprintf(w, "# TYPE mnn_ecc_retries_total counter\n")
	fmt.Fprintf(w, "mnn_ecc_retries_total %d\n", m.ecc.Retries)

	fmt.Fprintf(w, "# HELP mnn_ecc_residual_total Decodes with nonzero remainder (errors past the ECU).\n")
	fmt.Fprintf(w, "# TYPE mnn_ecc_residual_total counter\n")
	fmt.Fprintf(w, "mnn_ecc_residual_total %d\n", m.ecc.Residual)

	fmt.Fprintf(w, "# HELP mnn_row_reads_total Physical-row ADC conversions.\n")
	fmt.Fprintf(w, "# TYPE mnn_row_reads_total counter\n")
	fmt.Fprintf(w, "mnn_row_reads_total %d\n", m.ecc.RowReads)

	fmt.Fprintf(w, "# HELP mnn_row_errors_total Row reads whose quantized output deviated from ideal.\n")
	fmt.Fprintf(w, "# TYPE mnn_row_errors_total counter\n")
	fmt.Fprintf(w, "mnn_row_errors_total %d\n", m.ecc.RowErrors)

	fmt.Fprintf(w, "# HELP mnn_soft_mvms_total Matrix-vector products answered by the software fallback.\n")
	fmt.Fprintf(w, "# TYPE mnn_soft_mvms_total counter\n")
	fmt.Fprintf(w, "mnn_soft_mvms_total %d\n", m.ecc.SoftMVMs)

	fmt.Fprintf(w, "# HELP mnn_batch_mvms_total Per-image layer MVMs served through the coalesced multi-image kernel.\n")
	fmt.Fprintf(w, "# TYPE mnn_batch_mvms_total counter\n")
	fmt.Fprintf(w, "mnn_batch_mvms_total %d\n", g.Batch.BatchMVMs)

	fmt.Fprintf(w, "# HELP mnn_batch_size Images per worker evaluation pass (1 = no coalescing).\n")
	fmt.Fprintf(w, "# TYPE mnn_batch_size histogram\n")
	cumB := uint64(0)
	for i, ub := range batchSizeBuckets {
		if i < len(g.Batch.SizeCount) {
			cumB += g.Batch.SizeCount[i]
		}
		fmt.Fprintf(w, "mnn_batch_size_bucket{le=%q} %d\n", formatFloat(ub), cumB)
	}
	fmt.Fprintf(w, "mnn_batch_size_bucket{le=\"+Inf\"} %d\n", g.Batch.Batches)
	fmt.Fprintf(w, "mnn_batch_size_sum %d\n", g.Batch.SizeSum)
	fmt.Fprintf(w, "mnn_batch_size_count %d\n", g.Batch.Batches)

	fmt.Fprintf(w, "# HELP mnn_batch_coalesce_wait_seconds Time a worker held a dequeued request open gathering batchmates.\n")
	fmt.Fprintf(w, "# TYPE mnn_batch_coalesce_wait_seconds histogram\n")
	cumW := uint64(0)
	for i, ub := range coalesceWaitBuckets {
		if i < len(g.Batch.WaitCount) {
			cumW += g.Batch.WaitCount[i]
		}
		fmt.Fprintf(w, "mnn_batch_coalesce_wait_seconds_bucket{le=%q} %d\n", formatFloat(ub), cumW)
	}
	fmt.Fprintf(w, "mnn_batch_coalesce_wait_seconds_bucket{le=\"+Inf\"} %d\n", g.Batch.Batches)
	fmt.Fprintf(w, "mnn_batch_coalesce_wait_seconds_sum %g\n", g.Batch.WaitSum)
	fmt.Fprintf(w, "mnn_batch_coalesce_wait_seconds_count %d\n", g.Batch.Batches)

	if g.Health != nil {
		fmt.Fprintf(w, "# HELP mnn_breaker_open Per-layer health-breaker state (1 = open).\n")
		fmt.Fprintf(w, "# TYPE mnn_breaker_open gauge\n")
		fmt.Fprintf(w, "# HELP mnn_breaker_trips_total Lifetime breaker trips per layer.\n")
		fmt.Fprintf(w, "# TYPE mnn_breaker_trips_total counter\n")
		for _, h := range g.Health {
			open := 0
			if h.State == fault.BreakerOpen {
				open = 1
			}
			fmt.Fprintf(w, "mnn_breaker_open{layer=\"%d\"} %d\n", h.Layer, open)
			fmt.Fprintf(w, "mnn_breaker_trips_total{layer=\"%d\"} %d\n", h.Layer, h.Trips)
		}

		fmt.Fprintf(w, "# HELP mnn_recovery_actions_total Recovery-ladder transitions by rung.\n")
		fmt.Fprintf(w, "# TYPE mnn_recovery_actions_total counter\n")
		fmt.Fprintf(w, "mnn_recovery_actions_total{rung=\"retry\"} %d\n", g.Recovery.Retries)
		fmt.Fprintf(w, "mnn_recovery_actions_total{rung=\"failover\"} %d\n", g.Recovery.Failovers)
		fmt.Fprintf(w, "mnn_recovery_actions_total{rung=\"remap\"} %d\n", g.Recovery.Remaps)
		fmt.Fprintf(w, "mnn_recovery_actions_total{rung=\"degrade\"} %d\n", g.Recovery.Degrades)
	}

	if len(g.Shards) > 0 {
		fmt.Fprintf(w, "# HELP mnn_shard_state Per-shard fault-domain state (one-hot over serving/draining/degraded).\n")
		fmt.Fprintf(w, "# TYPE mnn_shard_state gauge\n")
		for _, sh := range g.Shards {
			for _, st := range []string{"serving", "draining", "degraded"} {
				v := 0
				if sh.State == st {
					v = 1
				}
				fmt.Fprintf(w, "mnn_shard_state{shard=\"%d\",state=%q} %d\n", sh.ID, st, v)
			}
		}

		fmt.Fprintf(w, "# HELP mnn_shard_layers Layers owned by each shard.\n")
		fmt.Fprintf(w, "# TYPE mnn_shard_layers gauge\n")
		fmt.Fprintf(w, "# HELP mnn_shard_degraded_layers Shard layers currently on the software path.\n")
		fmt.Fprintf(w, "# TYPE mnn_shard_degraded_layers gauge\n")
		fmt.Fprintf(w, "# HELP mnn_shard_breaker_open_layers Shard layers with an open routing breaker on any of its replicas.\n")
		fmt.Fprintf(w, "# TYPE mnn_shard_breaker_open_layers gauge\n")
		for _, sh := range g.Shards {
			fmt.Fprintf(w, "mnn_shard_layers{shard=\"%d\"} %d\n", sh.ID, len(sh.Layers))
			fmt.Fprintf(w, "mnn_shard_degraded_layers{shard=\"%d\"} %d\n", sh.ID, len(sh.DegradedLayers))
			open := 0
			for _, r := range sh.Replicas.Replicas {
				open += len(r.OpenLayers)
			}
			fmt.Fprintf(w, "mnn_shard_breaker_open_layers{shard=\"%d\"} %d\n", sh.ID, open)
		}

		fmt.Fprintf(w, "# HELP mnn_shard_maintenance_total Shard lifecycle transitions by kind.\n")
		fmt.Fprintf(w, "# TYPE mnn_shard_maintenance_total counter\n")
		for _, sh := range g.Shards {
			fmt.Fprintf(w, "mnn_shard_maintenance_total{shard=\"%d\",kind=\"drain\"} %d\n", sh.ID, sh.Drains)
			fmt.Fprintf(w, "mnn_shard_maintenance_total{shard=\"%d\",kind=\"repair\"} %d\n", sh.ID, sh.Repairs)
			fmt.Fprintf(w, "mnn_shard_maintenance_total{shard=\"%d\",kind=\"remap\"} %d\n", sh.ID, sh.Remaps)
			fmt.Fprintf(w, "mnn_shard_maintenance_total{shard=\"%d\",kind=\"rejoin\"} %d\n", sh.ID, sh.Rejoins)
		}
	}

	if g.Replicas != nil {
		fmt.Fprintf(w, "# HELP mnn_replica_attached Replica attachment state (1 = serving).\n")
		fmt.Fprintf(w, "# TYPE mnn_replica_attached gauge\n")
		fmt.Fprintf(w, "# HELP mnn_replica_breaker_open_layers Layers with an open routing breaker per replica.\n")
		fmt.Fprintf(w, "# TYPE mnn_replica_breaker_open_layers gauge\n")
		fmt.Fprintf(w, "# HELP mnn_replica_routed_mvms_total Layer MVMs served per replica.\n")
		fmt.Fprintf(w, "# TYPE mnn_replica_routed_mvms_total counter\n")
		fmt.Fprintf(w, "# HELP mnn_replica_failovers_total Flagged MVMs re-executed on a sibling, per flagged replica.\n")
		fmt.Fprintf(w, "# TYPE mnn_replica_failovers_total counter\n")
		fmt.Fprintf(w, "# HELP mnn_replica_detaches_total Maintenance detach cycles per replica.\n")
		fmt.Fprintf(w, "# TYPE mnn_replica_detaches_total counter\n")
		for _, r := range g.Replicas.Replicas {
			attached := 0
			if r.Attached {
				attached = 1
			}
			fmt.Fprintf(w, "mnn_replica_attached{replica=\"%d\"} %d\n", r.ID, attached)
			fmt.Fprintf(w, "mnn_replica_breaker_open_layers{replica=\"%d\"} %d\n", r.ID, len(r.OpenLayers))
			fmt.Fprintf(w, "mnn_replica_routed_mvms_total{replica=\"%d\"} %d\n", r.ID, r.Routed)
			fmt.Fprintf(w, "mnn_replica_failovers_total{replica=\"%d\"} %d\n", r.ID, r.Failovers)
			fmt.Fprintf(w, "mnn_replica_detaches_total{replica=\"%d\"} %d\n", r.ID, r.Detaches)
		}

		fmt.Fprintf(w, "# HELP mnn_replica_votes_total Majority-vote rounds across the replica set.\n")
		fmt.Fprintf(w, "# TYPE mnn_replica_votes_total counter\n")
		fmt.Fprintf(w, "mnn_replica_votes_total %d\n", g.Replicas.Votes)

		fmt.Fprintf(w, "# HELP mnn_replica_vote_disagreements_total Output elements where a voter deviated from the median past tolerance.\n")
		fmt.Fprintf(w, "# TYPE mnn_replica_vote_disagreements_total counter\n")
		fmt.Fprintf(w, "mnn_replica_vote_disagreements_total %d\n", g.Replicas.Disagreements)
	}

	fmt.Fprintf(w, "# HELP mnn_degraded_layers Layers currently served from the software fallback.\n")
	fmt.Fprintf(w, "# TYPE mnn_degraded_layers gauge\n")
	fmt.Fprintf(w, "mnn_degraded_layers %d\n", len(g.DegradedLayers))

	if g.Scrub != nil {
		t := g.Scrub.Totals
		fmt.Fprintf(w, "# HELP mnn_scrub_passes_total Completed patrol passes over individual layers.\n")
		fmt.Fprintf(w, "# TYPE mnn_scrub_passes_total counter\n")
		fmt.Fprintf(w, "mnn_scrub_passes_total %d\n", t.Passes)

		fmt.Fprintf(w, "# HELP mnn_scrub_rows_total Word lines by patrol outcome.\n")
		fmt.Fprintf(w, "# TYPE mnn_scrub_rows_total counter\n")
		fmt.Fprintf(w, "mnn_scrub_rows_total{action=\"patrolled\"} %d\n", t.RowsPatrolled)
		fmt.Fprintf(w, "mnn_scrub_rows_total{action=\"repaired\"} %d\n", t.RowsRepaired)
		fmt.Fprintf(w, "mnn_scrub_rows_total{action=\"spared\"} %d\n", t.RowsSpared)
		fmt.Fprintf(w, "mnn_scrub_rows_total{action=\"uncorrectable\"} %d\n", t.RowsUncorrectable)

		fmt.Fprintf(w, "# HELP mnn_scrub_cells_reprogrammed_total Deviating cells rewritten by patrol repairs.\n")
		fmt.Fprintf(w, "# TYPE mnn_scrub_cells_reprogrammed_total counter\n")
		fmt.Fprintf(w, "mnn_scrub_cells_reprogrammed_total %d\n", t.CellsReprogrammed)

		fmt.Fprintf(w, "# HELP mnn_scrub_layer_age_seconds Time since each layer's last completed patrol pass.\n")
		fmt.Fprintf(w, "# TYPE mnn_scrub_layer_age_seconds gauge\n")
		layers := make([]int, 0, len(g.Scrub.LayerAge))
		for l := range g.Scrub.LayerAge {
			layers = append(layers, l)
		}
		sort.Ints(layers)
		for _, l := range layers {
			fmt.Fprintf(w, "mnn_scrub_layer_age_seconds{layer=\"%d\"} %g\n", l, g.Scrub.LayerAge[l].Seconds())
		}
	}

	if g.Controller != nil {
		c := g.Controller
		fmt.Fprintf(w, "# HELP mnn_controller_level Protection level (0 = configured baseline).\n")
		fmt.Fprintf(w, "# TYPE mnn_controller_level gauge\n")
		fmt.Fprintf(w, "mnn_controller_level %d\n", c.Level)

		fmt.Fprintf(w, "# HELP mnn_controller_scrub_interval_seconds Live patrol cadence chosen by the controller.\n")
		fmt.Fprintf(w, "# TYPE mnn_controller_scrub_interval_seconds gauge\n")
		fmt.Fprintf(w, "mnn_controller_scrub_interval_seconds %g\n", c.ScrubInterval.Seconds())

		if c.VoteThreshold >= 0 {
			fmt.Fprintf(w, "# HELP mnn_controller_vote_threshold Live replica vote trigger chosen by the controller.\n")
			fmt.Fprintf(w, "# TYPE mnn_controller_vote_threshold gauge\n")
			fmt.Fprintf(w, "mnn_controller_vote_threshold %d\n", c.VoteThreshold)
		}

		fmt.Fprintf(w, "# HELP mnn_controller_ticks_total Decision-loop iterations.\n")
		fmt.Fprintf(w, "# TYPE mnn_controller_ticks_total counter\n")
		fmt.Fprintf(w, "mnn_controller_ticks_total %d\n", c.Ticks)

		fmt.Fprintf(w, "# HELP mnn_controller_decisions_total Applied controller actions by name.\n")
		fmt.Fprintf(w, "# TYPE mnn_controller_decisions_total counter\n")
		for _, a := range []string{"tighten", "relax", "repair", "degrade"} {
			fmt.Fprintf(w, "mnn_controller_decisions_total{action=%q} %d\n", a, c.Decisions[a])
		}
	}

	if g.Persist != nil {
		p := g.Persist
		fmt.Fprintf(w, "# HELP mnn_persist_restore_info Boot-time restore outcome (the labeled series is 1).\n")
		fmt.Fprintf(w, "# TYPE mnn_persist_restore_info gauge\n")
		for _, o := range []RestoreOutcome{RestoreFresh, RestoreRestored, RestoreFallback} {
			v := 0
			if p.Outcome == o {
				v = 1
			}
			fmt.Fprintf(w, "mnn_persist_restore_info{outcome=%q} %d\n", string(o), v)
		}

		fmt.Fprintf(w, "# HELP mnn_persist_snapshot_age_seconds Time since the last published snapshot (0 before the first save).\n")
		fmt.Fprintf(w, "# TYPE mnn_persist_snapshot_age_seconds gauge\n")
		fmt.Fprintf(w, "mnn_persist_snapshot_age_seconds %g\n", p.SnapshotAge.Seconds())

		fmt.Fprintf(w, "# HELP mnn_persist_saves_total Snapshot save attempts.\n")
		fmt.Fprintf(w, "# TYPE mnn_persist_saves_total counter\n")
		fmt.Fprintf(w, "mnn_persist_saves_total %d\n", p.Saves)

		fmt.Fprintf(w, "# HELP mnn_persist_save_errors_total Snapshot saves that failed.\n")
		fmt.Fprintf(w, "# TYPE mnn_persist_save_errors_total counter\n")
		fmt.Fprintf(w, "mnn_persist_save_errors_total %d\n", p.SaveErrors)
	}

	if g.Verify != nil {
		// Convergence histogram: bucket le=i counts cells that verified
		// within i pulses; +Inf adds the cells that gave up; sum is total
		// pulses issued.
		fmt.Fprintf(w, "# HELP mnn_verify_pulses Write pulses per cell for closed-loop programming.\n")
		fmt.Fprintf(w, "# TYPE mnn_verify_pulses histogram\n")
		cum := uint64(0)
		for i, n := range g.Verify.Hist {
			cum += n
			fmt.Fprintf(w, "mnn_verify_pulses_bucket{le=\"%d\"} %d\n", i+1, cum)
		}
		fmt.Fprintf(w, "mnn_verify_pulses_bucket{le=\"+Inf\"} %d\n", g.Verify.Cells)
		fmt.Fprintf(w, "mnn_verify_pulses_sum %d\n", g.Verify.Pulses)
		fmt.Fprintf(w, "mnn_verify_pulses_count %d\n", g.Verify.Cells)

		fmt.Fprintf(w, "# HELP mnn_verify_giveups_total Cells that never verified within the pulse budget.\n")
		fmt.Fprintf(w, "# TYPE mnn_verify_giveups_total counter\n")
		fmt.Fprintf(w, "mnn_verify_giveups_total %d\n", g.Verify.GaveUp)
	}
}

// formatFloat renders a bucket bound the way Prometheus expects (no
// exponent for these magnitudes).
func formatFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
