package serve

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/nn"
)

// testEngine maps a tiny dense network (untrained weights are fine: the
// scheduler's contract is about scheduling, not accuracy). failureRate
// injects stuck cells for the telemetry tests.
func testEngine(t testing.TB, failureRate float64) (*accel.Engine, *nn.Network) {
	t.Helper()
	rng := rand.New(rand.NewPCG(1, 2))
	net := &nn.Network{Name: "tiny", InShape: []int{16},
		Layers: []nn.Layer{nn.NewDense(16, 12, rng), &nn.ReLU{}, nn.NewDense(12, 4, rng)}}
	cfg := accel.DefaultConfig(accel.SchemeABN(8))
	cfg.Device.BitsPerCell = 2
	cfg.Device.FailureRate = failureRate
	eng, err := accel.Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, net
}

func testInput(seed uint64) *nn.Tensor {
	rng := rand.New(rand.NewPCG(seed, 9))
	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.Float64()
	}
	return nn.FromSlice(x, 16)
}

func TestPredictBasic(t *testing.T) {
	eng, _ := testEngine(t, 0)
	s, err := NewScheduler(eng, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	p, err := s.Predict(context.Background(), testInput(1), 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.TopK) != 2 || p.TopK[0] != p.Class {
		t.Fatalf("prediction malformed: %+v", p)
	}
	if p.Stats.RowReads == 0 {
		t.Fatal("per-request stats empty")
	}
}

// TestPredictPlacementIndependent: the same seed must give the same class
// and the same ECU tallies regardless of pool size or traffic interleaving.
func TestPredictPlacementIndependent(t *testing.T) {
	eng, _ := testEngine(t, 0.01)
	run := func(workers int) []Prediction {
		s, err := NewScheduler(eng, Config{Workers: workers, QueueDepth: 64})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close(context.Background())
		inputs := make([]*nn.Tensor, 24)
		for i := range inputs {
			inputs[i] = testInput(uint64(i))
		}
		preds, err := s.PredictBatch(context.Background(), inputs, 1000, 0)
		if err != nil {
			t.Fatal(err)
		}
		return preds
	}
	one, eight := run(1), run(8)
	for i := range one {
		if one[i].Class != eight[i].Class || one[i].Stats != eight[i].Stats {
			t.Fatalf("image %d differs across pool sizes: %+v vs %+v", i, one[i], eight[i])
		}
	}
}

// TestAutoSeedsAreFresh: unseeded requests get distinct noise streams.
func TestAutoSeedsAreFresh(t *testing.T) {
	eng, _ := testEngine(t, 0)
	s, err := NewScheduler(eng, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	a, err := s.Predict(context.Background(), testInput(1), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Predict(context.Background(), testInput(1), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seed == b.Seed {
		t.Fatalf("auto seeds collided: %d", a.Seed)
	}
}

// blockingScheduler builds a 1-worker scheduler whose worker parks on gate
// after signalling entered, so tests can fill the queue deterministically.
func blockingScheduler(t *testing.T, eng *accel.Engine, depth int, timeout time.Duration) (*Scheduler, chan struct{}, chan struct{}) {
	t.Helper()
	entered := make(chan struct{}, 64)
	gate := make(chan struct{})
	cfg := Config{Workers: 1, QueueDepth: depth, QueueTimeout: timeout}
	cfg.dequeueHook = func() {
		entered <- struct{}{}
		<-gate
	}
	s, err := NewScheduler(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, entered, gate
}

// TestQueueFullBackpressure floods past the queue depth and expects an
// immediate ErrQueueFull, not blocking.
func TestQueueFullBackpressure(t *testing.T) {
	eng, _ := testEngine(t, 0)
	const depth = 2
	s, entered, gate := blockingScheduler(t, eng, depth, time.Hour)

	ctx := context.Background()
	results := make(chan error, depth+1)
	submitAsync := func(seed uint64) {
		go func() {
			_, err := s.Predict(ctx, testInput(seed), seed, 0)
			results <- err
		}()
	}
	// First job: admitted, dequeued, worker parks holding it.
	submitAsync(1)
	<-entered
	// Fill the queue behind the parked worker.
	for i := 0; i < depth; i++ {
		submitAsync(uint64(i + 2))
	}
	waitFor(t, func() bool { return s.QueueLen() == depth })
	// One more must bounce immediately.
	if _, err := s.Predict(ctx, testInput(99), 99, 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	// Release the worker; every admitted request must still be answered.
	close(gate)
	for i := 0; i < depth+1; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
	}
	s.Close(ctx)
}

// TestQueueTimeout: a request that waits in the queue past the deadline is
// rejected by the worker instead of evaluated.
func TestQueueTimeout(t *testing.T) {
	eng, _ := testEngine(t, 0)
	s, entered, gate := blockingScheduler(t, eng, 4, time.Nanosecond)
	ctx := context.Background()
	first := make(chan error, 1)
	go func() {
		_, err := s.Predict(ctx, testInput(1), 1, 0)
		first <- err
	}()
	<-entered
	second := make(chan error, 1)
	go func() {
		_, err := s.Predict(ctx, testInput(2), 2, 0)
		second <- err
	}()
	waitFor(t, func() bool { return s.QueueLen() == 1 })
	close(gate)
	if err := <-second; !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("want ErrQueueTimeout, got %v", err)
	}
	<-first // the held job ages past 1ns too; just reap it
	s.Close(ctx)
}

// TestGracefulDrain: Close answers every admitted request and then rejects
// new ones.
func TestGracefulDrain(t *testing.T) {
	eng, _ := testEngine(t, 0)
	s, entered, gate := blockingScheduler(t, eng, 8, time.Hour)
	ctx := context.Background()
	const n = 4
	results := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(seed uint64) {
			_, err := s.Predict(ctx, testInput(seed), seed, 0)
			results <- err
		}(uint64(i + 1))
	}
	<-entered // worker holds one job; the rest are queued or in flight
	waitFor(t, func() bool { return s.QueueLen() == n-1 })

	closed := make(chan error, 1)
	go func() {
		_, err := s.Close(ctx)
		closed <- err
	}()
	close(gate)
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued request dropped during drain: %v", err)
		}
	}
	if _, err := s.Predict(ctx, testInput(9), 9, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after drain, got %v", err)
	}
	sum, err := s.Close(ctx)
	if err != nil {
		t.Fatalf("second close: %v", err)
	}
	if sum.Served < n || sum.Abandoned != 0 || sum.ECC.RowReads == 0 {
		t.Fatalf("drain summary %+v", sum)
	}
}

// TestCloseDeadlinePartialDrain: when the drain deadline fires with work
// still queued, Close reports what it served and what it abandoned instead
// of returning empty-handed.
func TestCloseDeadlinePartialDrain(t *testing.T) {
	eng, _ := testEngine(t, 0)
	s, entered, gate := blockingScheduler(t, eng, 8, time.Hour)
	ctx := context.Background()

	// One served request establishes nonzero drain stats: the worker
	// parks on the gate, we hand it a single release token.
	first := make(chan error, 1)
	go func() {
		_, err := s.Predict(ctx, testInput(1), 1, 0)
		first <- err
	}()
	<-entered
	gate <- struct{}{}
	if err := <-first; err != nil {
		t.Fatal(err)
	}

	// Park the worker on a second job and queue two more behind it.
	results := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func(seed uint64) {
			_, err := s.Predict(ctx, testInput(seed), seed, 0)
			results <- err
		}(uint64(i + 2))
	}
	<-entered
	waitFor(t, func() bool { return s.QueueLen() == 2 })

	expired, cancel := context.WithCancel(ctx)
	cancel()
	sum, err := s.Close(expired)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if sum.Served != 1 {
		t.Fatalf("partial summary served %d, want 1", sum.Served)
	}
	if sum.Abandoned != 3 { // 1 in flight + 2 queued
		t.Fatalf("partial summary abandoned %d, want 3", sum.Abandoned)
	}
	if sum.ECC.RowReads == 0 {
		t.Fatal("partial summary lost the ECC tallies")
	}

	// Release the worker: the abandoned jobs still drain, and a full
	// Close now reports a clean summary.
	close(gate)
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted request dropped: %v", err)
		}
	}
	sum, err = s.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Served != 4 || sum.Abandoned != 0 {
		t.Fatalf("final summary %+v", sum)
	}
}

// TestEvaluatePanicIsContained: a malformed tensor must fail the request,
// not the worker.
func TestEvaluatePanicIsContained(t *testing.T) {
	eng, _ := testEngine(t, 0)
	s, err := NewScheduler(eng, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	ctx := context.Background()
	if _, err := s.Predict(ctx, nn.FromSlice([]float64{1, 2}, 2), 1, 0); err == nil {
		t.Fatal("short tensor must fail")
	}
	// The pool must still serve well-formed requests afterwards.
	if _, err := s.Predict(ctx, testInput(1), 1, 0); err != nil {
		t.Fatalf("worker died after panic: %v", err)
	}
}

// waitFor polls a condition with a deadline (used only to sequence test
// goroutine visibility, never to assert timing).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	// Generous under -race with parallel package runs on small CI boxes.
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
