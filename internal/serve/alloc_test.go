package serve

import (
	"context"
	"testing"
)

// TestWarmPredictAllocBound: once a worker's session arena is warm, the
// whole request path must allocate only the O(1) per-request bookkeeping —
// the job, its response channel, and the TopK result — never anything
// proportional to the model (the hardware MVM path is allocation-free, see
// accel's TestWarmForwardZeroAllocs). The bound has headroom over the
// measured count (~5) to tolerate scheduler-internal churn, while still
// catching any per-row or per-layer allocation sneaking back in.
func TestWarmPredictAllocBound(t *testing.T) {
	eng, _ := testEngine(t, 0)
	s, err := NewScheduler(eng, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	x := testInput(1)
	for i := 0; i < 20; i++ {
		if _, err := s.Predict(context.Background(), x, uint64(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	seed := uint64(100)
	allocs := testing.AllocsPerRun(200, func() {
		seed++
		if _, err := s.Predict(context.Background(), x, seed, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 12 {
		t.Fatalf("warm Predict allocates %.0f times per request, want <= 12", allocs)
	}
}
