package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/accel"
	"repro/internal/crossbar"
	"repro/internal/fault"
	"repro/internal/nn"
)

// quietEngine maps a network with every stochastic noise source disabled,
// so any ECU activity in these tests is attributable to injected faults.
func quietEngine(t testing.TB) *accel.Engine {
	return quietEngineWith(t, nil)
}

// quietEngineWith lets a test adjust the quiet config (e.g. spare rows)
// before mapping.
func quietEngineWith(t testing.TB, adjust func(*accel.Config)) *accel.Engine {
	t.Helper()
	rng := rand.New(rand.NewPCG(1, 2))
	net := &nn.Network{Name: "tiny", InShape: []int{16},
		Layers: []nn.Layer{nn.NewDense(16, 12, rng), &nn.ReLU{}, nn.NewDense(12, 4, rng)}}
	cfg := accel.DefaultConfig(accel.SchemeABN(8))
	cfg.Device.BitsPerCell = 2
	cfg.Device.PRTN = 0
	cfg.Device.ProgErrFrac = 0
	cfg.Device.SampleFreq = 0
	cfg.Device.GiantProneProb = 0
	cfg.Device.FailureRate = 0
	if adjust != nil {
		adjust(&cfg)
	}
	eng, err := accel.Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// recoveryConfig is a deterministic ladder setup: tiny windows so a single
// request's reads can trip the breaker, no backoff sleeps.
func recoveryConfig(maxRemaps int) RecoveryConfig {
	return RecoveryConfig{
		Enabled:       true,
		Monitor:       fault.MonitorConfig{Window: 4096, MinReads: 8, TripRate: 0.05},
		RetryAttempts: 2,
		RetryBackoff:  -1,
		MaxRemaps:     maxRemaps,
	}
}

// wreckLayer pins every cell of a layer at the top level — a persistent
// fault no retry can clear.
func wreckLayer(t *testing.T, eng *accel.Engine, layer int) {
	t.Helper()
	err := eng.WithArrays(layer, func(arrays []*crossbar.Array) {
		for _, a := range arrays {
			top := uint8(a.NumLevels() - 1)
			for r := 0; r < a.Rows; r++ {
				for c := 0; c < a.Cols; c++ {
					a.SetStuck(r, c, top)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLadderRetryClearsTransientTrip: a breaker opened by a transient burst
// closes on the first clean retry — no remap, no degradation.
func TestLadderRetryClearsTransientTrip(t *testing.T) {
	eng := quietEngine(t)
	s, err := NewScheduler(eng, Config{Workers: 1, Recovery: recoveryConfig(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	// Simulate a transient burst: force the breaker open by feeding the
	// monitor fake heavily-detected traffic on layer 0. The hardware
	// itself is healthy, so the ladder's retry comes back clean.
	s.Monitor().Observe(map[int]accel.Stats{0: {Clean: 10, Detected: 10}})
	if s.Monitor().State(0) != fault.BreakerOpen {
		t.Fatal("breaker did not open on fake burst")
	}

	p, err := s.Predict(context.Background(), testInput(1), 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.LadderRetries != 1 {
		t.Fatalf("ladder retries %d, want 1 (first retry is clean)", p.LadderRetries)
	}
	if len(p.Remapped) != 0 || len(p.Degraded) != 0 {
		t.Fatalf("transient trip escalated: %+v", p)
	}
	if s.Monitor().State(0) != fault.BreakerClosed {
		t.Fatal("clean retry did not close the breaker")
	}
	if got := s.RecoveryCounters(); got.Retries != 1 || got.Remaps != 0 || got.Degrades != 0 {
		t.Fatalf("counters %+v", got)
	}
	if eng.RemapCount(0) != 0 {
		t.Fatal("retry rung must not remap")
	}
}

// TestLadderRemapHealsPersistentFault: a wrecked layer trips the breaker,
// survives the retries, and is re-programmed onto spares; traffic then
// flows clean on fresh hardware.
func TestLadderRemapHealsPersistentFault(t *testing.T) {
	eng := quietEngine(t)
	s, err := NewScheduler(eng, Config{Workers: 1, Recovery: recoveryConfig(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	const layer = 2
	wreckLayer(t, eng, layer)
	p, err := s.Predict(context.Background(), testInput(1), 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.LadderRetries != 2 {
		t.Fatalf("ladder retries %d, want both attempts consumed", p.LadderRetries)
	}
	if len(p.Remapped) != 1 || p.Remapped[0] != layer {
		t.Fatalf("remapped %v, want [%d]", p.Remapped, layer)
	}
	if len(p.Degraded) != 0 {
		t.Fatalf("remap rung degraded the layer: %v", p.Degraded)
	}
	if p.Seed != 7 {
		t.Fatalf("final evaluation must use the request seed, got %d", p.Seed)
	}
	if eng.RemapCount(layer) != 1 || eng.Fallback(layer) {
		t.Fatalf("engine state after remap: remaps=%d fallback=%v", eng.RemapCount(layer), eng.Fallback(layer))
	}
	if got := s.RecoveryCounters(); got.Remaps != 1 || got.Degrades != 0 {
		t.Fatalf("counters %+v", got)
	}
	// Fresh hardware serves clean without ladder involvement.
	p2, err := s.Predict(context.Background(), testInput(2), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2.LadderRetries != 0 || p2.Stats.Detected != 0 {
		t.Fatalf("post-remap request not clean: %+v", p2)
	}
}

// TestLadderDegradesWhenRemapBudgetSpent: with remapping forbidden, a
// persistent fault sends the layer to the software fallback; the answer is
// still served, flagged degraded.
func TestLadderDegradesWhenRemapBudgetSpent(t *testing.T) {
	eng := quietEngine(t)
	s, err := NewScheduler(eng, Config{Workers: 1, Recovery: recoveryConfig(-1)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	const layer = 0
	wreckLayer(t, eng, layer)
	p, err := s.Predict(context.Background(), testInput(1), 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Degraded) != 1 || p.Degraded[0] != layer {
		t.Fatalf("degraded %v, want [%d]", p.Degraded, layer)
	}
	if len(p.Remapped) != 0 || eng.RemapCount(layer) != 0 {
		t.Fatal("MaxRemaps<0 must never remap")
	}
	if !eng.Fallback(layer) {
		t.Fatal("layer not in software fallback")
	}
	if p.Stats.SoftMVMs == 0 {
		t.Fatal("degraded answer shows no soft MVMs")
	}
	if got := s.RecoveryCounters(); got.Degrades != 1 {
		t.Fatalf("counters %+v", got)
	}
	// The wrecked crossbars are out of the serving path: later requests
	// stay degraded but never see detected errors.
	p2, err := s.Predict(context.Background(), testInput(2), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Stats.Detected != 0 || p2.Stats.SoftMVMs == 0 || len(p2.Degraded) != 1 {
		t.Fatalf("steady-state degraded request: %+v", p2)
	}
}

// TestRecoveryDisabledIsPure: without recovery, wrecked hardware changes
// answers but triggers no ladder machinery — the legacy contract.
func TestRecoveryDisabledIsPure(t *testing.T) {
	eng := quietEngine(t)
	s, err := NewScheduler(eng, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	wreckLayer(t, eng, 0)
	p, err := s.Predict(context.Background(), testInput(1), 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.LadderRetries != 0 || p.Remapped != nil || p.Degraded != nil {
		t.Fatalf("disabled recovery acted: %+v", p)
	}
	if eng.RemapCount(0) != 0 || eng.Fallback(0) {
		t.Fatal("engine mutated with recovery disabled")
	}
}

// TestChaosCampaignZeroServerErrors is the end-to-end chaos drill: a
// lifetime fault campaign wrecks layers mid-serving while HTTP traffic
// flows. Every admitted request must be answered 200 — degradation is
// surfaced via response metadata and metrics, never as a 5xx.
func TestChaosCampaignZeroServerErrors(t *testing.T) {
	eng := quietEngine(t)
	cfg := Config{Workers: 2, QueueDepth: 32, Recovery: recoveryConfig(1)}
	srv, err := NewServer(eng, Model{Name: "tiny", InShape: []int{16}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	// A deterministic campaign: step 1 wrecks layer 0 outright, step 2
	// piles drift onto layer 2.
	camp := fault.Campaign{Seed: 42, Events: []fault.Event{
		{Step: 1, Layer: 0, Kind: fault.StuckLRS, Rate: 1.0},
		{Step: 2, Layer: 2, Kind: fault.StuckLRS, Rate: 0.5},
		{Step: 2, Layer: 2, Kind: fault.Drift, Rate: 0.5, Drift: -1},
	}}
	runner, err := fault.NewRunner(camp, eng)
	if err != nil {
		t.Fatal(err)
	}

	post := func(seed uint64) predictResponse {
		t.Helper()
		body := fmt.Sprintf(`{"image": %s, "seed": %d}`, imageJSON(seed), seed)
		rec := postPredict(t, srv, body)
		if rec.Code != http.StatusOK {
			t.Fatalf("request seed %d: status %d (%s) — chaos must not cause server errors",
				seed, rec.Code, rec.Body)
		}
		var resp predictResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Healthy warm-up.
	for seed := uint64(1); seed <= 3; seed++ {
		if resp := post(seed); resp.Degraded {
			t.Fatalf("degraded before any fault: %+v", resp)
		}
	}

	// Lifetime step 1: layer 0 dies. Serving continues.
	if _, err := runner.Advance(1); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(10); seed < 20; seed++ {
		post(seed)
	}
	// Lifetime step 2: layer 2 decays too.
	if _, err := runner.Advance(2); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(20); seed < 30; seed++ {
		post(seed)
	}

	sched := srv.Scheduler()
	counters := sched.RecoveryCounters()
	if counters.Retries == 0 {
		t.Fatal("campaign never exercised the retry rung")
	}
	if counters.Remaps+counters.Degrades == 0 {
		t.Fatal("campaign never escalated past retries")
	}
	trips := uint64(0)
	for _, h := range sched.Health() {
		trips += h.Trips
	}
	if trips == 0 {
		t.Fatal("no breaker ever tripped during the campaign")
	}

	// The drill is visible to operators: scrape the recovery series.
	if got := scrapeMetric(t, srv, `mnn_recovery_actions_total{rung="retry"}`); got == 0 {
		t.Fatal("retry transitions missing from metrics")
	}
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz during degraded-but-serving state: %d", rec.Code)
	}
	var ready readyzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Ready {
		t.Fatalf("instance must stay ready while the ladder holds: %+v", ready)
	}
}
