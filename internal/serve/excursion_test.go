package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/crossbar"
	"repro/internal/scenario"
)

// wreckRows pins every cell of the first k rows of a layer's arrays — damage
// big enough that ECC flags the hit groups as uncorrectable, small enough
// that the per-replica routing window stays below the breaker trip rate. The
// gap between those two thresholds is where the controller's pre-emptive
// maintenance acts before any breaker can.
func wreckRows(t *testing.T, eng *accel.Engine, layer, k int) {
	t.Helper()
	err := eng.WithArrays(layer, func(arrays []*crossbar.Array) {
		for _, a := range arrays {
			top := uint8(a.NumLevels() - 1)
			for r := 0; r < k && r < a.Rows; r++ {
				for c := 0; c < a.Cols; c++ {
					a.SetStuck(r, c, top)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// excursionTrace is everything the drill records on the deterministic step
// clock; two runs from the same seed must produce equal traces.
type excursionTrace struct {
	Classes   map[uint64]int
	Ticks     []string // "L<level>[:actions]" per synchronous controller tick
	Intervals []time.Duration
	Decisions map[string]uint64
}

// runExcursionDrill is one full pass of the environment-excursion drill. All
// control decisions run on the request-step clock (manual scrub + manual
// controller), so the trace is a pure function of the seeds.
func runExcursionDrill(t *testing.T, tl scenario.Timeline, seeds []uint64, ref map[uint64]int) excursionTrace {
	t.Helper()
	eng := quietEngine(t)
	cfg := replicaTestConfig(2)
	// Conservative monitors: any stuck row corrupts every group read of its
	// array (rate ~1.0), so the default MinReads would trip a breaker on the
	// first damaged MVM and the request-path ladder would self-heal before
	// the controller ever ticks. With both trip points pushed past what the
	// drill's traffic can deliver, the damage stays measurable but
	// un-tripped — the window where only the controller acts.
	cfg.Replicas.Monitor.MinReads = 4096
	cfg.Recovery.Monitor.MinReads = 2000
	cfg.Scrub = ScrubConfig{Enabled: true, Manual: true, Interval: 800 * time.Millisecond, Seed: 7}
	cfg.Controller = ControllerConfig{
		Enabled: true, Manual: true,
		TightenRate: 0.01, Hysteresis: 2, Cooldown: 1, MaxLevel: 2,
	}
	srv, err := NewServer(eng, Model{Name: "tiny", InShape: []int{16}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	s := srv.Scheduler()
	set := s.ReplicaSet()
	base := eng.Config().Device

	tr := excursionTrace{Classes: make(map[uint64]int)}
	var mu sync.Mutex
	post := func(seed uint64) {
		rec := postPredict(t, srv, fmt.Sprintf(`{"image": %s, "seed": %d, "top_k": 1}`, imageJSON(seed), seed))
		if rec.Code != http.StatusOK {
			t.Fatalf("seed %d answered %d — the drill allows zero 5xx", seed, rec.Code)
		}
		var resp predictResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := resp.Results[0].Class; got != ref[seed] {
			t.Fatalf("seed %d class %d, want the clean-hardware answer %d", seed, got, ref[seed])
		}
		mu.Lock()
		tr.Classes[seed] = resp.Results[0].Class
		mu.Unlock()
	}
	tick := func() []string {
		acts, err := s.ControllerTick()
		if err != nil {
			t.Fatal(err)
		}
		st, ok := s.ControllerStatus()
		if !ok {
			t.Fatal("controller status missing")
		}
		row := fmt.Sprintf("L%d", st.Level)
		if len(acts) > 0 {
			row += ":" + strings.Join(acts, "+")
		}
		tr.Ticks = append(tr.Ticks, row)
		tr.Intervals = append(tr.Intervals, s.ScrubInterval())
		return acts
	}

	// Phase A — calm baseline under the timeline's opening environment.
	if err := s.ApplyEnv(tl.At(0).Apply(base)); err != nil {
		t.Fatal(err)
	}
	for _, seed := range seeds[:8] {
		post(seed)
	}
	if err := s.PatrolNow(); err != nil {
		t.Fatal(err)
	}
	if acts := tick(); len(acts) != 0 {
		t.Fatalf("calm baseline produced actions %v", acts)
	}
	if got := s.ScrubInterval(); got != 800*time.Millisecond {
		t.Fatalf("baseline scrub interval %v", got)
	}

	// Phase B — the heatwave peak plus sub-breaker damage on replica 1.
	peak := 0
	for i := 0; i < tl.Steps(); i++ {
		if tl.At(i).TempDeltaK > tl.At(peak).TempDeltaK {
			peak = i
		}
	}
	if err := s.ApplyEnv(tl.At(peak).Apply(base)); err != nil {
		t.Fatal(err)
	}
	wreckRows(t, set.Engine(1), 0, 2)
	for _, seed := range seeds[8:16] {
		post(seed)
	}
	// The drill's load-bearing balance: the sick copy is measurable but no
	// breaker has tripped, so nothing has self-healed yet — the controller
	// must get there first.
	if sick, ok := set.SickestFor(0); !ok || sick != 1 {
		t.Fatalf("SickestFor = (%d, %v), want the damage on replica 1 measured", sick, ok)
	}
	if open := set.OpenLayers(); len(open) != 0 {
		t.Fatalf("replica breakers %v tripped — the drill needs sub-breaker damage", open)
	}

	// Excursion pressure on the primary monitor: a detected burst that
	// carries the window past MinReads at far over the 5% trip rate, so the
	// breaker opens and stays open — sustained pressure until the drill
	// clears it.
	s.Monitor().Observe(map[int]accel.Stats{0: {Detected: 1800}})
	if s.Monitor().OpenCount() == 0 {
		t.Fatal("excursion burst did not trip the primary breaker")
	}
	if acts := tick(); len(acts) != 0 {
		t.Fatalf("hysteresis must hold one pressure tick, got %v", acts)
	}
	acts := tick()
	if len(acts) != 2 || acts[0] != "tighten" || acts[1] != "repair" {
		t.Fatalf("pressure tick actions %v, want [tighten repair]", acts)
	}
	if got := s.ScrubInterval(); got != 400*time.Millisecond {
		t.Fatalf("tightened scrub interval %v, want 400ms", got)
	}
	if _, ok := set.SickestFor(0); ok {
		t.Fatal("replica 1 still measures sick after the controller's repair")
	}
	if err := s.PatrolNow(); err != nil {
		t.Fatal(err)
	}

	// Phase C — the excursion passes: clear the window, cool the arrays,
	// and the controller walks protection back to baseline.
	s.Monitor().Reset(0)
	if err := s.ApplyEnv(tl.At(tl.Steps() - 1).Apply(base)); err != nil {
		t.Fatal(err)
	}
	relaxed := false
	for i := 0; i < 5 && !relaxed; i++ {
		for _, a := range tick() {
			relaxed = relaxed || a == "relax"
		}
	}
	if !relaxed {
		t.Fatal("calm never relaxed the level")
	}
	if got := s.ScrubInterval(); got != 800*time.Millisecond {
		t.Fatalf("scrub interval %v after relax, want 800ms", got)
	}
	for _, seed := range seeds[16:20] {
		post(seed)
	}

	st, ok := s.ControllerStatus()
	if !ok || st.Level != 0 {
		t.Fatalf("controller did not return to baseline: %+v", st)
	}
	tr.Decisions = st.Decisions

	// Phase D — concurrent traffic for the race detector, after the trace's
	// deterministic portion is sealed. Answers stay bit-equal to clean
	// hardware; completion order is free to vary.
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 20 + g; i < len(seeds); i += 3 {
				post(seeds[i])
			}
		}(g)
	}
	wg.Wait()

	if d := eng.DegradedLayers(); len(d) != 0 {
		t.Fatalf("degraded layers %v — adaptation must keep crossbars serving", d)
	}
	if rc := s.RecoveryCounters(); rc.Degrades != 0 || rc.Failovers == 0 {
		t.Fatalf("recovery counters %+v, want zero degrades and a recorded repair", rc)
	}

	// Operator surfacing.
	if v := scrapeMetric(t, srv, `mnn_controller_decisions_total{action="tighten"}`); v == 0 {
		t.Fatal("tighten decision missing from the scrape")
	}
	if v := scrapeMetric(t, srv, `mnn_controller_decisions_total{action="repair"}`); v == 0 {
		t.Fatal("repair decision missing from the scrape")
	}
	if v := scrapeMetric(t, srv, `mnn_replica_detaches_total{replica="1"}`); v == 0 {
		t.Fatal("controller repair recorded no detach on the sick replica")
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	var rz readyzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rz); err != nil {
		t.Fatal(err)
	}
	if rz.Controller == nil || rz.Controller.Level != 0 {
		t.Fatalf("readyz controller row %+v, want level 0", rz.Controller)
	}
	return tr
}

// TestEnvironmentExcursionAdaptation is the environment chaos drill: a
// heatwave timeline raises the operating point while one replica carries
// damage below every breaker threshold. The closed-loop controller must
// tighten the patrol cadence, rotate the sick copy out for repair before its
// breaker trips, and relax back to baseline when the excursion passes — with
// zero 5xx, every answer bit-equal to clean hardware, and the whole run
// replaying bit-identically from the seed.
func TestEnvironmentExcursionAdaptation(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos drill: skipped in -short")
	}
	tl, err := scenario.Generate("heatwave", 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]uint64, 32)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	ref := referenceClasses(t, seeds)

	a := runExcursionDrill(t, tl, seeds, ref)
	b := runExcursionDrill(t, tl, seeds, ref)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("drill not replayable:\n%+v\nvs\n%+v", a, b)
	}
	if a.Decisions["tighten"] != 1 || a.Decisions["relax"] != 1 || a.Decisions["repair"] != 1 {
		t.Fatalf("decision tallies %+v, want one tighten, one repair, one relax", a.Decisions)
	}
}
