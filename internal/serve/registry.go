package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/accel"
)

// Loader builds the engine for a named workload on demand: train or fetch
// the network, map it onto the simulated accelerator, and describe its
// input contract. The serve layer stays ignorant of where workloads come
// from — the binary injects this (mnnserve wires the Table II training
// pipeline in), so loading a model never drags dataset or training code
// into the serving path.
type Loader func(name string) (*accel.Engine, Model, error)

// modelEntry is one served workload: its scheduler pool (with whatever
// shard/replica topology the template config asks for) and its input
// contract.
type modelEntry struct {
	model   Model
	sched   *Scheduler
	inLen   int
	primary bool
}

// registry is the workload directory fronting the scheduler pools: the
// primary (boot-time) model plus anything loaded through /admin/models.
// Lookups are per request; loads and evicts are rare operator actions.
type registry struct {
	mu       sync.Mutex
	template Config
	loader   Loader
	entries  map[string]*modelEntry
	primary  string
}

func newRegistry(template Config, loader Loader, name string, primary *modelEntry) *registry {
	primary.primary = true
	return &registry{
		template: template,
		loader:   loader,
		entries:  map[string]*modelEntry{name: primary},
		primary:  name,
	}
}

// lookup resolves a model name ("" = the primary model).
func (r *registry) lookup(name string) (*modelEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if name == "" {
		name = r.primary
	}
	ent, ok := r.entries[name]
	return ent, ok
}

// load builds and registers a named workload through the injected Loader.
// The new pool gets the primary's template configuration minus persistence:
// one state directory belongs to one lifetime trajectory, so only the
// primary model snapshots.
func (r *registry) load(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.loader == nil {
		return fmt.Errorf("serve: no workload loader is configured")
	}
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("serve: model %q is already loaded", name)
	}
	eng, model, err := r.loader(name)
	if err != nil {
		return fmt.Errorf("serve: loading model %q: %w", name, err)
	}
	inLen := 1
	for _, d := range model.InShape {
		inLen *= d
	}
	if len(model.InShape) == 0 || inLen <= 0 {
		return fmt.Errorf("serve: loaded model %q has no input shape", name)
	}
	cfg := r.template
	cfg.Persist = PersistConfig{}
	sched, err := NewScheduler(eng, cfg)
	if err != nil {
		return fmt.Errorf("serve: starting pool for model %q: %w", name, err)
	}
	r.entries[name] = &modelEntry{model: model, sched: sched, inLen: inLen}
	return nil
}

// evict drains and removes a loaded model. The primary model is refused —
// it owns the HTTP identity (and the persistence directory); shut the
// server down instead.
func (r *registry) evict(ctx context.Context, name string) error {
	r.mu.Lock()
	ent, ok := r.entries[name]
	if ok && ent.primary {
		r.mu.Unlock()
		return fmt.Errorf("serve: model %q is the primary workload and cannot be evicted", name)
	}
	delete(r.entries, name)
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: model %q is not loaded", name)
	}
	if _, err := ent.sched.Close(ctx); err != nil {
		return fmt.Errorf("serve: draining model %q: %w", name, err)
	}
	return nil
}

// closeLoaded drains every non-primary pool (server shutdown).
func (r *registry) closeLoaded(ctx context.Context) {
	r.mu.Lock()
	var loaded []*modelEntry
	for name, ent := range r.entries {
		if !ent.primary {
			loaded = append(loaded, ent)
			delete(r.entries, name)
		}
	}
	r.mu.Unlock()
	for _, ent := range loaded {
		_, _ = ent.sched.Close(ctx)
	}
}

// ModelInfo is one workload's row in GET /admin/models.
type ModelInfo struct {
	Name    string `json:"name"`
	Primary bool   `json:"primary,omitempty"`
	// Shards is the pool's fault-domain count (0 = unsharded).
	Shards  int    `json:"shards,omitempty"`
	Workers int    `json:"workers"`
	Served  uint64 `json:"served"`
}

// list snapshots every registered workload, primary first then by name.
func (r *registry) list() []ModelInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ModelInfo, 0, len(r.entries))
	for name, ent := range r.entries {
		info := ModelInfo{
			Name:    name,
			Primary: ent.primary,
			Workers: ent.sched.Workers(),
			Served:  ent.sched.Served(),
		}
		if pool := ent.sched.ShardPool(); pool != nil {
			info.Shards = pool.Size()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Primary != out[j].Primary {
			return out[i].Primary
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// evictTimeout bounds how long an admin evict waits for the model's pool to
// drain before giving up (the entry is removed either way).
const evictTimeout = 10 * time.Second
