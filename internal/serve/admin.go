package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/shard"
)

// AdminConfig wires the operator API into the server mux: GET/POST
// /admin/shards (per-shard status, drain, repair, rejoin) and GET/POST
// /admin/models (workload registry: list, load, evict). Off by default —
// mutation endpoints on a serving port are an operator opt-in.
type AdminConfig struct {
	// Enabled registers the /admin routes.
	Enabled bool
	// Loader builds engines for named workloads on demand (POST
	// /admin/models {"action":"load"}). nil refuses loads; list and evict
	// still work.
	Loader Loader
}

// maxAdminBodyBytes bounds an admin request body: these are tiny operator
// commands, never bulk payloads.
const maxAdminBodyBytes = 4096

// shardAdminRequest is the POST /admin/shards body.
type shardAdminRequest struct {
	// Action is "drain" (route the shard's layers to software), "repair"
	// (re-program a drained shard's layers onto spares and verify), or
	// "rejoin" (return the shard to crossbar serving).
	Action string `json:"action"`
	// Shard is the target fault domain's id.
	Shard int `json:"shard"`
	// Model targets a registry workload ("" = the primary model).
	Model string `json:"model,omitempty"`
}

// decodeShardAdminRequest parses and validates a POST /admin/shards body.
// Unknown fields are rejected — an operator typo must fail loudly, not be
// silently ignored into a no-op (or worse, a default-target drain).
func decodeShardAdminRequest(data []byte) (shardAdminRequest, error) {
	var req shardAdminRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return shardAdminRequest{}, fmt.Errorf("bad JSON: %w", err)
	}
	if err := rejectTrailing(dec); err != nil {
		return shardAdminRequest{}, err
	}
	switch req.Action {
	case "drain", "repair", "rejoin":
	default:
		return shardAdminRequest{}, fmt.Errorf("unknown action %q (want drain|repair|rejoin)", req.Action)
	}
	if req.Shard < 0 {
		return shardAdminRequest{}, fmt.Errorf("negative shard id %d", req.Shard)
	}
	return req, nil
}

// modelAdminRequest is the POST /admin/models body.
type modelAdminRequest struct {
	// Action is "load" or "evict".
	Action string `json:"action"`
	// Model names the workload.
	Model string `json:"model"`
}

// decodeModelAdminRequest parses and validates a POST /admin/models body.
func decodeModelAdminRequest(data []byte) (modelAdminRequest, error) {
	var req modelAdminRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return modelAdminRequest{}, fmt.Errorf("bad JSON: %w", err)
	}
	if err := rejectTrailing(dec); err != nil {
		return modelAdminRequest{}, err
	}
	switch req.Action {
	case "load", "evict":
	default:
		return modelAdminRequest{}, fmt.Errorf("unknown action %q (want load|evict)", req.Action)
	}
	if req.Model == "" {
		return modelAdminRequest{}, fmt.Errorf("missing model name")
	}
	return req, nil
}

// rejectTrailing refuses bodies with content past the first JSON value —
// two concatenated commands must not half-apply.
func rejectTrailing(dec *json.Decoder) error {
	if dec.More() {
		return fmt.Errorf("trailing content after the request object")
	}
	return nil
}

// shardsAdminResponse is the GET /admin/shards (and post-action) body.
type shardsAdminResponse struct {
	Model string `json:"model"`
	// Shards is empty for an unsharded pool.
	Shards []shard.ShardStatus `json:"shards"`
}

func (s *Server) handleAdminShards(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		ent, ok := s.reg.lookup(r.URL.Query().Get("model"))
		if !ok {
			http.Error(w, "unknown model", http.StatusNotFound)
			return
		}
		s.writeShardStatus(w, ent)
	case http.MethodPost:
		body, err := readAdminBody(w, r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := decodeShardAdminRequest(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ent, ok := s.reg.lookup(req.Model)
		if !ok {
			http.Error(w, "unknown model", http.StatusNotFound)
			return
		}
		pool := ent.sched.ShardPool()
		if pool == nil {
			http.Error(w, "pool is not sharded", http.StatusConflict)
			return
		}
		if req.Shard >= pool.Size() {
			http.Error(w, fmt.Sprintf("shard %d out of range (pool has %d)", req.Shard, pool.Size()), http.StatusBadRequest)
			return
		}
		if err := s.applyShardAction(pool.Shard(req.Shard), req.Action); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		s.writeShardStatus(w, ent)
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

// applyShardAction runs one maintenance transition. Repair requires the
// shard to be drained first: re-programming a serving shard would stall
// traffic behind the layer write locks — exactly what the drain path exists
// to avoid.
func (s *Server) applyShardAction(sh *shard.Shard, action string) error {
	switch action {
	case "drain":
		return sh.Drain()
	case "repair":
		if sh.State() == shard.Serving {
			return fmt.Errorf("shard %d is serving — drain it before repairing", sh.ID())
		}
		eng := sh.Set().Engine(0)
		dirty, err := sh.Repair(eng.Config().VerifyIters, eng.Config().Seed)
		if err != nil {
			return err
		}
		if dirty > 0 {
			return fmt.Errorf("shard %d repair left %d layers dirty — it stays drained", sh.ID(), dirty)
		}
		return nil
	case "rejoin":
		return sh.Rejoin()
	}
	return fmt.Errorf("unknown action %q", action)
}

// writeShardStatus renders the pool's per-shard rows for one model.
func (s *Server) writeShardStatus(w http.ResponseWriter, ent *modelEntry) {
	resp := shardsAdminResponse{Model: ent.model.Name, Shards: []shard.ShardStatus{}}
	if pool := ent.sched.ShardPool(); pool != nil {
		resp.Shards = pool.Status()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// modelsAdminResponse is the GET /admin/models (and post-action) body.
type modelsAdminResponse struct {
	Models []ModelInfo `json:"models"`
}

func (s *Server) handleAdminModels(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		body, err := readAdminBody(w, r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := decodeModelAdminRequest(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch req.Action {
		case "load":
			if err := s.reg.load(req.Model); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
		case "evict":
			ctx, cancel := context.WithTimeout(r.Context(), evictTimeout)
			err := s.reg.evict(ctx, req.Model)
			cancel()
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
		}
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(modelsAdminResponse{Models: s.reg.list()})
}

// readAdminBody reads a bounded admin request body.
func readAdminBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxAdminBodyBytes)
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	return buf.Bytes(), nil
}
