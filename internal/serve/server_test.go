package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"
)

func testServer(t *testing.T, failureRate float64, cfg Config) *Server {
	t.Helper()
	eng, net := testEngine(t, failureRate)
	srv, err := NewServer(eng, Model{Name: net.Name, InShape: net.InShape}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	return srv
}

func postPredict(t *testing.T, srv *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewBufferString(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func imageJSON(seed uint64) string {
	x := testInput(seed)
	b, _ := json.Marshal(x.Data)
	return string(b)
}

func TestPredictEndpoint(t *testing.T) {
	srv := testServer(t, 0, Config{Workers: 2})
	rec := postPredict(t, srv, fmt.Sprintf(`{"image": %s, "top_k": 2, "seed": 5}`, imageJSON(1)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || len(resp.Results[0].TopK) != 2 || resp.Results[0].Seed != 5 {
		t.Fatalf("response malformed: %+v", resp)
	}
	if resp.Results[0].ECC.RowReads == 0 {
		t.Fatal("per-request ECC counts missing")
	}
	if resp.Scheme != "ABN-8" || resp.Workload != "tiny" {
		t.Fatalf("identity fields wrong: %+v", resp)
	}
}

func TestPredictBatchEndpoint(t *testing.T) {
	srv := testServer(t, 0, Config{Workers: 4, QueueDepth: 32})
	body := fmt.Sprintf(`{"images": [%s, %s, %s], "seed": 100}`,
		imageJSON(1), imageJSON(2), imageJSON(3))
	rec := postPredict(t, srv, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("want 3 results, got %d", len(resp.Results))
	}
	for i, r := range resp.Results {
		if r.Seed != 100+uint64(i) {
			t.Fatalf("result %d seed %d, want %d", i, r.Seed, 100+uint64(i))
		}
	}
}

func TestPredictRejectsBadRequests(t *testing.T) {
	srv := testServer(t, 0, Config{Workers: 1})
	for name, body := range map[string]string{
		"empty":       `{}`,
		"bad json":    `{"image": [1,2`,
		"wrong shape": `{"image": [1, 2, 3]}`,
	} {
		if rec := postPredict(t, srv, body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/predict", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET predict: status %d, want 405", rec.Code)
	}
}

// TestFloodReturns429 floods the server past its queue depth while the only
// worker is parked and asserts the overflow request gets HTTP 429.
func TestFloodReturns429(t *testing.T) {
	eng, net := testEngine(t, 0)
	const depth = 2
	entered := make(chan struct{}, 64)
	gate := make(chan struct{})
	cfg := Config{Workers: 1, QueueDepth: depth, QueueTimeout: time.Hour}
	cfg.dequeueHook = func() {
		entered <- struct{}{}
		<-gate
	}
	srv, err := NewServer(eng, Model{Name: net.Name, InShape: net.InShape}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	codes := make(chan int, depth+1)
	fire := func(seed uint64) {
		go func() {
			rec := postPredict(t, srv, fmt.Sprintf(`{"image": %s}`, imageJSON(seed)))
			codes <- rec.Code
		}()
	}
	fire(1)
	<-entered
	for i := 0; i < depth; i++ {
		fire(uint64(i + 2))
	}
	waitFor(t, func() bool { return srv.Scheduler().QueueLen() == depth })

	if rec := postPredict(t, srv, fmt.Sprintf(`{"image": %s}`, imageJSON(9))); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", rec.Code)
	}
	close(gate)
	for i := 0; i < depth+1; i++ {
		if c := <-codes; c != http.StatusOK {
			t.Fatalf("admitted request: status %d", c)
		}
	}
	if _, err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The rejection must be visible on the metrics endpoint.
	if got := scrapeMetric(t, srv, `mnn_requests_total{outcome="queue_full"}`); got < 1 {
		t.Fatalf("queue_full counter = %d, want >= 1", got)
	}
}

// TestMetricsECCCountersGrow scrapes /metrics under injected stuck-cell
// noise and asserts the corrected/detected ECU tallies increase as traffic
// flows.
func TestMetricsECCCountersGrow(t *testing.T) {
	srv := testServer(t, 0.02, Config{Workers: 2, QueueDepth: 16})
	if rec := postPredict(t, srv, fmt.Sprintf(`{"image": %s, "seed": 3}`, imageJSON(1))); rec.Code != http.StatusOK {
		t.Fatalf("predict: %d %s", rec.Code, rec.Body)
	}
	corrected := scrapeMetric(t, srv, `mnn_ecc_reads_total{status="corrected"}`)
	detectedPlusCorrected := corrected + scrapeMetric(t, srv, `mnn_ecc_reads_total{status="detected"}`)
	if detectedPlusCorrected == 0 {
		t.Fatal("ECU saw no corrected/detected reads under 2% stuck cells")
	}
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"images": [%s, %s], "seed": %d}`, imageJSON(uint64(i)), imageJSON(uint64(i+10)), 50+10*i)
		if rec := postPredict(t, srv, body); rec.Code != http.StatusOK {
			t.Fatalf("predict %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	after := scrapeMetric(t, srv, `mnn_ecc_reads_total{status="corrected"}`) +
		scrapeMetric(t, srv, `mnn_ecc_reads_total{status="detected"}`)
	if after <= detectedPlusCorrected {
		t.Fatalf("ECC counters did not grow: %d -> %d", detectedPlusCorrected, after)
	}
	if scrapeMetric(t, srv, "mnn_images_total") != 7 {
		t.Fatalf("images counter wrong: %d", scrapeMetric(t, srv, "mnn_images_total"))
	}
	if scrapeMetric(t, srv, "mnn_request_seconds_count") != 4 {
		t.Fatalf("latency histogram count wrong: %d", scrapeMetric(t, srv, "mnn_request_seconds_count"))
	}
}

func TestHealthz(t *testing.T) {
	srv := testServer(t, 0, Config{Workers: 1})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	var h healthzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workload != "tiny" || h.Scheme != "ABN-8" || h.Bits != 2 {
		t.Fatalf("healthz payload: %+v", h)
	}
	// After shutdown the health check must fail so load balancers drain.
	if _, err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown: %d, want 503", rec.Code)
	}
}

// TestReadyz: ready while serving, 503 with a draining flag once shutdown
// begins, and a full admission queue also flips readiness off.
func TestReadyz(t *testing.T) {
	srv := testServer(t, 0, Config{Workers: 1, QueueDepth: 4})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz: %d", rec.Code)
	}
	var ready readyzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Ready || ready.Draining || ready.QueueDepth != 4 {
		t.Fatalf("readyz payload: %+v", ready)
	}
	if _, err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown: %d, want 503", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Ready || !ready.Draining {
		t.Fatalf("readyz payload after shutdown: %+v", ready)
	}
}

// TestReadyzWedgedQueue: an instance whose queue is full must advertise
// not-ready so load balancers route around it.
func TestReadyzWedgedQueue(t *testing.T) {
	eng, net := testEngine(t, 0)
	const depth = 2
	entered := make(chan struct{}, 64)
	gate := make(chan struct{})
	cfg := Config{Workers: 1, QueueDepth: depth, QueueTimeout: time.Hour}
	cfg.dequeueHook = func() {
		entered <- struct{}{}
		<-gate
	}
	srv, err := NewServer(eng, Model{Name: net.Name, InShape: net.InShape}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	codes := make(chan int, depth+1)
	for i := 0; i <= depth; i++ {
		go func(seed uint64) {
			rec := postPredict(t, srv, fmt.Sprintf(`{"image": %s}`, imageJSON(seed)))
			codes <- rec.Code
		}(uint64(i + 1))
	}
	<-entered
	waitFor(t, func() bool { return srv.Scheduler().QueueLen() == depth })

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with wedged queue: %d, want 503", rec.Code)
	}

	close(gate)
	for i := 0; i <= depth; i++ {
		if c := <-codes; c != http.StatusOK {
			t.Fatalf("admitted request: %d", c)
		}
	}
	if _, err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// scrapeMetric fetches /metrics and returns the integer value of one series.
func scrapeMetric(t *testing.T, srv *Server, series string) uint64 {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(series) + ` (\d+)$`)
	m := re.FindStringSubmatch(rec.Body.String())
	if m == nil {
		t.Fatalf("series %q not found in scrape:\n%s", series, rec.Body.String())
	}
	v, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestPprofGated checks that the profiling handlers exist only when
// Config.Pprof opts in.
func TestPprofGated(t *testing.T) {
	off := testServer(t, 0, Config{Workers: 1})
	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	off.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("pprof off: GET /debug/pprof/ = %d, want 404", rec.Code)
	}

	on := testServer(t, 0, Config{Workers: 1, Pprof: true})
	rec = httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof on: GET /debug/pprof/ = %d, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof on: GET /debug/pprof/cmdline = %d, want 200", rec.Code)
	}
}
