package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/replica"
)

// shardTestEngine maps a four-MVM-layer network — enough mapped layers to
// partition into four single-layer fault domains.
func shardTestEngine(t testing.TB) (*accel.Engine, *nn.Network) {
	t.Helper()
	rng := rand.New(rand.NewPCG(7, 3))
	net := &nn.Network{Name: "tiny4", InShape: []int{16},
		Layers: []nn.Layer{
			nn.NewDense(16, 14, rng), &nn.ReLU{},
			nn.NewDense(14, 12, rng), &nn.ReLU{},
			nn.NewDense(12, 8, rng), &nn.ReLU{},
			nn.NewDense(8, 4, rng),
		}}
	cfg := accel.DefaultConfig(accel.SchemeABN(8))
	cfg.Device.BitsPerCell = 2
	eng, err := accel.Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, net
}

// shardTestConfig is the sharded pool's serving configuration: n fault
// domains, each with an R=2 replica set, the recovery ladder armed.
func shardTestConfig(n int) Config {
	return Config{
		Workers: 2, QueueDepth: 64, QueueTimeout: time.Minute,
		Recovery: recoveryConfig(1),
		Replicas: replica.Config{N: 2, Monitor: fault.MonitorConfig{Window: 4096, MinReads: 8, TripRate: 0.05}},
		Shards:   n,
	}
}

// TestServeShardCountInvariance lifts the tentpole contract to the serving
// layer: the full Prediction a client receives — class, ranking, seed, and
// per-request ECU tallies — is identical whether the pool slices the layers
// into 1, 2, or 4 fault domains.
func TestServeShardCountInvariance(t *testing.T) {
	const n = 24
	inputs := make([]*nn.Tensor, n)
	for i := range inputs {
		inputs[i] = testInput(uint64(i))
	}
	run := func(shards int) []Prediction {
		eng, _ := shardTestEngine(t)
		cfg := shardTestConfig(shards)
		// One worker: request-ordered monitor updates, so the comparison
		// covers the full Prediction including ECU tallies.
		cfg.Workers = 1
		s, err := NewScheduler(eng, cfg)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		defer s.Close(context.Background())
		preds, err := s.PredictBatch(context.Background(), inputs, 5000, 0)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		for i := range preds {
			preds[i].QueueWait, preds[i].Infer = 0, 0
		}
		return preds
	}
	ref := run(1)
	for _, shards := range []int{2, 4} {
		got := run(shards)
		for i := range ref {
			a, _ := json.Marshal(ref[i])
			b, _ := json.Marshal(got[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("image %d differs between 1 and %d shards:\n 1: %s\n%d: %s",
					i, shards, a, shards, b)
			}
		}
	}
}

// shardAdminServer builds a sharded HTTP server with the operator API armed.
func shardAdminServer(t *testing.T, shards int) *Server {
	t.Helper()
	eng, net := shardTestEngine(t)
	cfg := shardTestConfig(shards)
	cfg.Admin = AdminConfig{Enabled: true}
	srv, err := NewServer(eng, Model{Name: net.Name, InShape: net.InShape}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	return srv
}

// postAdmin sends one operator command and returns the recorder.
func postAdmin(t *testing.T, srv *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewBufferString(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// shardImageJSON flattens a 16-wide test input for the tiny4 network.
func shardImageJSON(seed uint64) string {
	x := testInput(seed)
	b, _ := json.Marshal(x.Data)
	return string(b)
}

// TestShardChaosDrill is the failover drill: a 2-shard pool takes live HTTP
// traffic while an operator drains, repairs, and rejoins one shard through
// the admin API. Not a single request may fail — drained layers serve from
// the software path, siblings from hardware — and the whole lifecycle must
// be observable afterward in /admin/shards, /readyz, and the mnn_shard_*
// series. Run under -race in CI.
func TestShardChaosDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos drill: skipped in -short")
	}
	srv := shardAdminServer(t, 2)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan string, 1)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for seed := uint64(g*1000 + 1); ; seed++ {
				select {
				case <-stop:
					return
				default:
				}
				body := fmt.Sprintf(`{"image": %s, "seed": %d}`, shardImageJSON(seed), seed)
				if rec := postPredict(t, srv, body); rec.Code != http.StatusOK {
					select {
					case errc <- fmt.Sprintf("seed %d: status %d (%s)", seed, rec.Code, rec.Body):
					default:
					}
					return
				}
			}
		}(g)
	}

	// The operator lifecycle, mid-traffic: kill shard 1 (drain), re-program
	// it on its spare arrays (repair), return it to hardware (rejoin).
	time.Sleep(20 * time.Millisecond)
	for _, action := range []string{"drain", "repair", "rejoin"} {
		rec := postAdmin(t, srv, "/admin/shards", fmt.Sprintf(`{"action":%q,"shard":1}`, action))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", action, rec.Code, rec.Body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatalf("request failed during the drill: %s", msg)
	default:
	}

	// The rejoin is visible on /admin/shards: both shards serving, nothing
	// degraded, and the lifecycle counters advanced on shard 1 only.
	req := httptest.NewRequest(http.MethodGet, "/admin/shards", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("admin status: %d", rec.Code)
	}
	var status shardsAdminResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
		t.Fatal(err)
	}
	if len(status.Shards) != 2 {
		t.Fatalf("admin reports %d shards, want 2", len(status.Shards))
	}
	for _, sh := range status.Shards {
		if sh.State != "serving" {
			t.Fatalf("shard %d state %q after the drill", sh.ID, sh.State)
		}
		if len(sh.DegradedLayers) != 0 {
			t.Fatalf("shard %d still degrades %v", sh.ID, sh.DegradedLayers)
		}
	}
	if sh := status.Shards[1]; sh.Drains != 1 || sh.Repairs != 1 || sh.Rejoins != 1 {
		t.Fatalf("shard 1 lifecycle counters: %+v", sh)
	}
	if sh := status.Shards[0]; sh.Drains != 0 || sh.Rejoins != 0 {
		t.Fatalf("sibling shard 0 was touched: %+v", sh)
	}

	// ... and in the Prometheus series ...
	for series, want := range map[string]uint64{
		`mnn_shard_maintenance_total{shard="1",kind="drain"}`:  1,
		`mnn_shard_maintenance_total{shard="1",kind="rejoin"}`: 1,
		`mnn_shard_state{shard="1",state="serving"}`:           1,
		`mnn_shard_state{shard="1",state="draining"}`:          0,
	} {
		if got := scrapeMetric(t, srv, series); got != want {
			t.Errorf("%s = %d, want %d", series, got, want)
		}
	}

	// ... and on /readyz, whose per-shard rows mirror the admin view.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz after drill: %d (%s)", rec.Code, rec.Body)
	}
	var rz readyzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rz); err != nil {
		t.Fatal(err)
	}
	if len(rz.Shards) != 2 {
		t.Fatalf("/readyz reports %d shard rows, want 2", len(rz.Shards))
	}
}

// TestShardDrainVisibleInStatus pins the mid-lifecycle view: while a shard
// is drained its state and degraded layers show on /admin/shards and
// /readyz, and a repair on a still-serving shard is refused.
func TestShardDrainVisibleInStatus(t *testing.T) {
	srv := shardAdminServer(t, 2)

	// Repair before drain: refused — re-programming a serving shard would
	// stall traffic on its layer write locks.
	if rec := postAdmin(t, srv, "/admin/shards", `{"action":"repair","shard":0}`); rec.Code != http.StatusConflict {
		t.Fatalf("repair on a serving shard: status %d, want 409 (%s)", rec.Code, rec.Body)
	}

	if rec := postAdmin(t, srv, "/admin/shards", `{"action":"drain","shard":0}`); rec.Code != http.StatusOK {
		t.Fatalf("drain: %d (%s)", rec.Code, rec.Body)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	var rz readyzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rz); err != nil {
		t.Fatal(err)
	}
	if len(rz.Shards) != 2 || rz.Shards[0].State != "draining" || len(rz.Shards[0].DegradedLayers) == 0 {
		t.Fatalf("/readyz does not show the drained shard: %+v", rz.Shards)
	}
	// Traffic still answers while drained (the drill asserts zero failures
	// at scale; this pins the annotated degraded path).
	body := fmt.Sprintf(`{"image": %s, "seed": 9}`, shardImageJSON(9))
	prec := postPredict(t, srv, body)
	if prec.Code != http.StatusOK {
		t.Fatalf("predict while drained: %d (%s)", prec.Code, prec.Body)
	}
	var resp predictResponse
	if err := json.Unmarshal(prec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("answer served over a drained shard is not flagged degraded")
	}
}

// TestShardSnapshotTopologyRefused pins the satellite contract end to end: a
// snapshot taken at 2 shards must be refused — loudly, with a fresh-map
// fallback and zero failed requests — when the pool is rebuilt at 4 shards,
// and equally when it is rebuilt unsharded.
func TestShardSnapshotTopologyRefused(t *testing.T) {
	dir := t.TempDir()
	build := func(shards int, stateDir string) *Scheduler {
		eng, _ := shardTestEngine(t)
		cfg := shardTestConfig(shards)
		cfg.Workers = 1
		if stateDir != "" {
			cfg.Persist = PersistConfig{Dir: stateDir, Manual: true}
		}
		s, err := NewScheduler(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	runA := build(2, dir)
	for seed := uint64(1); seed <= 6; seed++ {
		if _, err := runA.Predict(context.Background(), testInput(seed), seed, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := runA.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Reboot at 4 shards: the snapshot is refused by name, the wear clock
	// does not leak, and the fresh-mapped pool serves without a failure.
	runB := build(4, dir)
	defer runB.Close(context.Background())
	ps, ok := runB.PersistStatus()
	if !ok || ps.Outcome != RestoreFallback {
		t.Fatalf("topology-changed snapshot not refused: %+v", ps)
	}
	if !strings.Contains(ps.RestoreErr, "topology") {
		t.Fatalf("refusal does not name the topology change: %q", ps.RestoreErr)
	}
	if runB.Served() != 0 {
		t.Fatal("refused snapshot leaked its wear clock into the fresh pool")
	}
	for seed := uint64(1); seed <= 12; seed++ {
		if _, err := runB.Predict(context.Background(), testInput(seed), seed, 1); err != nil {
			t.Fatalf("request %d after topology refusal: %v", seed, err)
		}
	}

	// An unsharded reboot refuses the same snapshot the same way.
	eng, _ := shardTestEngine(t)
	cfg := shardTestConfig(0)
	cfg.Workers = 1
	cfg.Persist = PersistConfig{Dir: dir, Manual: true}
	runC, err := NewScheduler(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer runC.Close(context.Background())
	ps, ok = runC.PersistStatus()
	if !ok || ps.Outcome != RestoreFallback || !strings.Contains(ps.RestoreErr, "topology") {
		t.Fatalf("unsharded pool did not refuse the sharded snapshot: %+v", ps)
	}
}

// TestShardRestartRestoresDrainState: within an unchanged topology the
// snapshot round-trips shard maintenance state — a drained shard stays
// drained across the restart.
func TestShardRestartRestoresDrainState(t *testing.T) {
	dir := t.TempDir()
	build := func() *Scheduler {
		eng, _ := shardTestEngine(t)
		cfg := shardTestConfig(2)
		cfg.Workers = 1
		cfg.Persist = PersistConfig{Dir: dir, Manual: true}
		s, err := NewScheduler(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	runA := build()
	if _, err := runA.Predict(context.Background(), testInput(1), 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := runA.ShardPool().Shard(1).Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := runA.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	runB := build()
	defer runB.Close(context.Background())
	if ps, ok := runB.PersistStatus(); !ok || ps.Outcome != RestoreRestored {
		t.Fatalf("same-topology restart did not restore: %+v", ps)
	}
	if got := runB.ShardPool().Shard(1).State().String(); got != "draining" {
		t.Fatalf("restored shard 1 state %q, want draining", got)
	}
	if got := runB.ShardPool().Shard(0).State().String(); got != "serving" {
		t.Fatalf("restored shard 0 state %q, want serving", got)
	}
}
