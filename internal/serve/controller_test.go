package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/accel"
)

// coreConfig is a hysteresis setup with explicit small constants so the
// tick arithmetic in these tests is readable.
func coreConfig() ControllerConfig {
	return ControllerConfig{
		Enabled: true, Manual: true,
		TightenRate: 0.01, RelaxRate: 0.0025,
		Hysteresis: 3, Cooldown: 2, MaxLevel: 3,
	}.withDefaults()
}

// TestControllerCoreNoFlapping: a rate oscillating across the tighten
// threshold every tick must never move the level — each flip resets the
// streak before it reaches the hysteresis bound.
func TestControllerCoreNoFlapping(t *testing.T) {
	core := controllerCore{cfg: coreConfig()}
	for i := 0; i < 100; i++ {
		rate := 0.0
		if i%2 == 0 {
			rate = 0.02 // above TightenRate
		}
		level, tightened, relaxed := core.step(ctlObservation{rate: rate})
		if level != 0 || tightened || relaxed {
			t.Fatalf("tick %d: oscillating signal moved the level to %d", i, level)
		}
	}
	// A two-tick burst followed by a deadband tick must not tighten either:
	// the deadband resets both streaks.
	core = controllerCore{cfg: coreConfig()}
	seq := []float64{0.02, 0.02, 0.005, 0.02, 0.02, 0.005}
	for i, rate := range seq {
		if level, _, _ := core.step(ctlObservation{rate: rate}); level != 0 {
			t.Fatalf("tick %d: sub-hysteresis bursts moved the level to %d", i, level)
		}
	}
}

// TestControllerCoreTightenRelaxCycle: sustained pressure walks the level up
// to MaxLevel with the cooldown spacing each change; sustained calm walks it
// back to zero and no further.
func TestControllerCoreTightenRelaxCycle(t *testing.T) {
	core := controllerCore{cfg: coreConfig()}
	pressure := ctlObservation{rate: 0.02}
	calm := ctlObservation{}

	var changes []int
	for i := 0; i < 40; i++ {
		level, tightened, _ := core.step(pressure)
		if tightened {
			changes = append(changes, i)
			if level != len(changes) {
				t.Fatalf("tighten %d landed on level %d", len(changes), level)
			}
		}
	}
	if core.level != core.cfg.MaxLevel {
		t.Fatalf("sustained pressure stalled at level %d", core.level)
	}
	for i := 1; i < len(changes); i++ {
		if gap := changes[i] - changes[i-1]; gap < core.cfg.Cooldown+1 {
			t.Fatalf("level changes %v spaced %d ticks, cooldown %d demands more", changes, gap, core.cfg.Cooldown)
		}
	}

	relaxes := 0
	for i := 0; i < 60; i++ {
		level, _, relaxed := core.step(calm)
		if relaxed {
			relaxes++
		}
		if level < 0 {
			t.Fatal("level went negative")
		}
	}
	if core.level != 0 || relaxes != core.cfg.MaxLevel {
		t.Fatalf("calm left level %d after %d relaxes", core.level, relaxes)
	}
}

// TestControllerCoreBreakerIsPressure: an open breaker counts as pressure
// regardless of the measured rate.
func TestControllerCoreBreakerIsPressure(t *testing.T) {
	core := controllerCore{cfg: coreConfig()}
	obs := ctlObservation{rate: 0, openBreakers: 1}
	tightened := false
	for i := 0; i < 10 && !tightened; i++ {
		_, tightened, _ = core.step(obs)
	}
	if !tightened {
		t.Fatal("open breaker never tightened the level")
	}
}

// TestControllerVoteFor checks the level → vote-threshold mapping.
func TestControllerVoteFor(t *testing.T) {
	cases := []struct {
		baseVote, level, want int
	}{
		{3, 0, 3}, {3, 1, 2}, {3, 2, 1}, {3, 3, 1}, // configured drops per level, floor 1
		{0, 0, 0}, {0, 1, 0}, {0, 2, 1}, {0, 3, 1}, // off switches on at level 2
	}
	for _, c := range cases {
		ctl := &controller{baseVote: c.baseVote}
		if got := ctl.voteFor(c.level); got != c.want {
			t.Errorf("voteFor(base=%d, level=%d) = %d, want %d", c.baseVote, c.level, got, c.want)
		}
	}
}

// TestControllerManualActuation drives a manual controller through a
// tighten/relax cycle against the live scheduler: measured pressure below
// the breaker trip point must halve the patrol cadence after the hysteresis
// window, and measured calm must restore it.
func TestControllerManualActuation(t *testing.T) {
	eng := quietEngine(t)
	base := 800 * time.Millisecond
	s, err := NewScheduler(eng, Config{
		Workers:  1,
		Recovery: recoveryConfig(1),
		Scrub:    ScrubConfig{Enabled: true, Manual: true, Interval: base},
		Controller: ControllerConfig{
			Enabled: true, Manual: true,
			TightenRate: 0.01, Hysteresis: 2, Cooldown: 1, MaxLevel: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	// 2% detected: above the tighten threshold, below the 5% breaker trip.
	pressure := func() {
		s.Monitor().Observe(map[int]accel.Stats{0: {Clean: 98, Detected: 2}})
	}
	pressure()
	if acts, err := s.ControllerTick(); err != nil || len(acts) != 0 {
		t.Fatalf("tick 1: acts=%v err=%v, hysteresis should hold", acts, err)
	}
	pressure()
	acts, err := s.ControllerTick()
	if err != nil || len(acts) != 1 || acts[0] != "tighten" {
		t.Fatalf("tick 2: acts=%v err=%v, want [tighten]", acts, err)
	}
	if got := s.ScrubInterval(); got != base/2 {
		t.Fatalf("scrub interval %v after tighten, want %v", got, base/2)
	}

	// Clear the window: rate drops to 0, which is calm. Cooldown eats one
	// tick, then two calm ticks relax.
	s.Monitor().Reset(0)
	relaxed := false
	for i := 0; i < 5 && !relaxed; i++ {
		acts, err := s.ControllerTick()
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range acts {
			relaxed = relaxed || a == "relax"
		}
	}
	if !relaxed {
		t.Fatal("calm window never relaxed the level")
	}
	if got := s.ScrubInterval(); got != base {
		t.Fatalf("scrub interval %v after relax, want base %v", got, base)
	}

	st, ok := s.ControllerStatus()
	if !ok || st.Level != 0 || st.Decisions["tighten"] != 1 || st.Decisions["relax"] != 1 {
		t.Fatalf("status %+v", st)
	}
	if st.VoteThreshold != -1 {
		t.Fatalf("vote threshold %d without a replica set, want -1", st.VoteThreshold)
	}
}

// TestControllerTickRequiresManual: background controllers own their cadence.
func TestControllerTickRequiresManual(t *testing.T) {
	eng := quietEngine(t)
	s, err := NewScheduler(eng, Config{
		Workers:    1,
		Recovery:   recoveryConfig(1),
		Controller: ControllerConfig{Enabled: true, Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	if _, err := s.ControllerTick(); err == nil {
		t.Fatal("ControllerTick on a background controller must error")
	}

	s2, err := NewScheduler(quietEngine(t), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close(context.Background())
	if _, err := s2.ControllerTick(); err == nil {
		t.Fatal("ControllerTick with the controller disabled must error")
	}
	if _, ok := s2.ControllerStatus(); ok {
		t.Fatal("ControllerStatus must report disabled")
	}
}

// TestControllerRequiresRecovery: the config cross-check.
func TestControllerRequiresRecovery(t *testing.T) {
	err := Config{Controller: ControllerConfig{Enabled: true}}.Validate()
	if err == nil || !strings.Contains(err.Error(), "Recovery") {
		t.Fatalf("controller without recovery validated: %v", err)
	}
}

// TestControllerBackgroundSmoke runs the real decision goroutine at a fast
// cadence under live traffic — the -race exercise for the sensor and
// actuator paths.
func TestControllerBackgroundSmoke(t *testing.T) {
	eng := quietEngine(t)
	s, err := NewScheduler(eng, Config{
		Workers:    2,
		Recovery:   recoveryConfig(1),
		Scrub:      ScrubConfig{Enabled: true, Interval: time.Millisecond},
		Controller: ControllerConfig{Enabled: true, Interval: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Predict(context.Background(), testInput(uint64(i)), uint64(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		st, ok := s.ControllerStatus()
		return ok && st.Ticks > 0
	})
	if _, err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsExposeDeviceAndController: the build-info gauge carries the
// device label and the controller series appear once the controller is on.
func TestMetricsExposeDeviceAndController(t *testing.T) {
	srv := testServer(t, 0, Config{
		Workers:    1,
		Recovery:   recoveryConfig(1),
		Controller: ControllerConfig{Enabled: true, Manual: true},
	})
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		`mnn_build_info{device="hpca2018-rram",scheme="ABN-8"} 1`,
		"mnn_controller_level 0",
		"mnn_controller_ticks_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q:\n%s", want, body)
		}
	}
}
