package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/nn"
)

// TestServeBatchSizeInvariance is the serving-layer determinism contract for
// coalescing: a prediction is the same pure function of (engine, seed)
// whether the scheduler served its image alone (MaxBatch=1, the pre-batch
// serial worker) or folded it into a multi-image pass with batchmates.
// Classes, rankings, and the full per-request ECU tallies must all match.
func TestServeBatchSizeInvariance(t *testing.T) {
	eng, _ := testEngine(t, 0.01)
	const n = 24
	inputs := make([]*nn.Tensor, n)
	for i := range inputs {
		inputs[i] = testInput(uint64(i))
	}
	run := func(cfg Config) ([]Prediction, BatchStatus) {
		s, err := NewScheduler(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close(context.Background())
		preds, err := s.PredictBatch(context.Background(), inputs, 4000, 0)
		if err != nil {
			t.Fatal(err)
		}
		return preds, s.BatchStatus()
	}

	serial, _ := run(Config{Workers: 1, QueueDepth: 2 * n, MaxBatch: 1})
	batched, bst := run(Config{Workers: 1, QueueDepth: 2 * n, MaxBatch: 16,
		CoalesceWait: 2 * time.Millisecond})

	// The contract is only tested if coalescing actually happened.
	if bst.SizeSum <= bst.Batches {
		t.Fatalf("no coalescing occurred: %d images over %d passes", bst.SizeSum, bst.Batches)
	}
	if bst.BatchMVMs == 0 {
		t.Fatal("batched passes recorded no batch MVMs")
	}
	for i := range serial {
		a, b := serial[i], batched[i]
		if a.Seed != b.Seed || a.Class != b.Class {
			t.Fatalf("image %d: serial (seed %d, class %d) != batched (seed %d, class %d)",
				i, a.Seed, a.Class, b.Seed, b.Class)
		}
		if len(a.TopK) != len(b.TopK) {
			t.Fatalf("image %d: top-k lengths differ: %v vs %v", i, a.TopK, b.TopK)
		}
		for k := range a.TopK {
			if a.TopK[k] != b.TopK[k] {
				t.Fatalf("image %d: rankings differ: %v vs %v", i, a.TopK, b.TopK)
			}
		}
		if a.Stats != b.Stats {
			t.Fatalf("image %d: per-request stats differ across batch sizes:\nserial  %+v\nbatched %+v",
				i, a.Stats, b.Stats)
		}
	}
}

// TestServeBatchFaultMidBatch: a persistent fault surfacing inside a
// coalesced pass must climb the same retry → remap ladder a serial request
// would, without failing batchmates — zero errors across the whole batch,
// recovery counters advanced, and post-repair traffic clean.
func TestServeBatchFaultMidBatch(t *testing.T) {
	eng := quietEngine(t)
	s, err := NewScheduler(eng, Config{Workers: 1, QueueDepth: 64, MaxBatch: 16,
		CoalesceWait: 2 * time.Millisecond, Recovery: recoveryConfig(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	const n = 16
	inputs := make([]*nn.Tensor, n)
	for i := range inputs {
		inputs[i] = testInput(uint64(i))
	}
	if _, err := s.PredictBatch(context.Background(), inputs, 6000, 0); err != nil {
		t.Fatalf("healthy warmup batch failed: %v", err)
	}

	const layer = 2
	wreckLayer(t, eng, layer)
	preds, err := s.PredictBatch(context.Background(), inputs, 7000, 0)
	if err != nil {
		t.Fatalf("batch over wrecked layer failed: %v", err)
	}
	for i, p := range preds {
		if len(p.TopK) == 0 {
			t.Fatalf("image %d answered empty", i)
		}
		// A clean rung-1 retry legitimately answers under the retry stream
		// (request seed + attempt*retrySeedStride); the request seed must
		// survive in the low bits either way.
		if p.Seed%retrySeedStride != 7000+uint64(i) {
			t.Fatalf("image %d answered under seed %d", i, p.Seed)
		}
	}
	if got := s.RecoveryCounters(); got.Remaps == 0 {
		t.Fatalf("wrecked layer never remapped: %+v", got)
	}
	if eng.RemapCount(layer) == 0 {
		t.Fatal("engine shows no remap on the wrecked layer")
	}

	// Fresh hardware serves the next batch clean.
	post, err := s.PredictBatch(context.Background(), inputs, 8000, 0)
	if err != nil {
		t.Fatalf("post-repair batch failed: %v", err)
	}
	for i, p := range post {
		if p.Stats.Detected != 0 || p.LadderRetries != 0 {
			t.Fatalf("post-repair image %d not clean: %+v", i, p)
		}
	}
}

// TestBatchDropsCanceledBatchmates pins the coalescing window's blind spot:
// a client can vanish after the dequeue-time cancellation filter but before
// the multi-image pass runs. The canceled job must be answered with its
// context error and dropped from the pass — its MVMs never spent, never
// counted in mnn_batch_mvms_total — while its batchmates are served
// normally.
func TestBatchDropsCanceledBatchmates(t *testing.T) {
	eng, _ := testEngine(t, 0)
	// run coalesces exactly three jobs into one pass; when cancelOne is set,
	// the middle job's context is canceled inside the batch hook — after the
	// worker's dequeue-time filter, before the batched evaluation.
	run := func(cancelOne bool) (results [3]jobResult, bst BatchStatus, canceled uint64) {
		cfg := Config{Workers: 1, QueueDepth: 16, MaxBatch: 8, QueueTimeout: time.Minute}
		gate := make(chan struct{})
		first := true // dequeueHook runs only on the single worker goroutine
		cfg.dequeueHook = func() {
			if first {
				first = false
				<-gate
			}
		}
		var cancelMid context.CancelFunc
		cfg.batchHook = func(jobs []*job) {
			if cancelOne {
				cancelMid()
			}
		}
		s, err := NewScheduler(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close(context.Background())

		midCtx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cancelMid = cancel
		jobs := make([]*job, 3)
		for i, ctx := range []context.Context{context.Background(), midCtx, context.Background()} {
			j, err := s.submit(ctx, testInput(uint64(i+1)), uint64(9000+i), 1)
			if err != nil {
				t.Fatal(err)
			}
			jobs[i] = j
		}
		// All three are queued; release the worker to coalesce them into one
		// pass.
		close(gate)
		for i, j := range jobs {
			results[i] = <-j.resp
		}
		return results, s.BatchStatus(), s.Canceled()
	}

	clean, cleanBatch, cleanCanceled := run(false)
	for i, r := range clean {
		if r.err != nil {
			t.Fatalf("control job %d failed: %v", i, r.err)
		}
	}
	if cleanCanceled != 0 || cleanBatch.BatchMVMs == 0 {
		t.Fatalf("control pass malformed: canceled %d, batch MVMs %d", cleanCanceled, cleanBatch.BatchMVMs)
	}

	got, gotBatch, gotCanceled := run(true)
	if got[1].err == nil || !errors.Is(got[1].err, context.Canceled) {
		t.Fatalf("canceled batchmate answered %v, want context.Canceled", got[1].err)
	}
	if got[0].err != nil || got[2].err != nil {
		t.Fatalf("surviving batchmates failed: %v, %v", got[0].err, got[2].err)
	}
	if gotCanceled != 1 {
		t.Fatalf("cancellation tally = %d, want 1", gotCanceled)
	}
	// The dropped job's lane never ran: the batched-MVM counter carries two
	// images' layers, not three — 2/3 of the control pass exactly.
	if gotBatch.BatchMVMs == 0 || gotBatch.BatchMVMs*3 != cleanBatch.BatchMVMs*2 {
		t.Fatalf("canceled batchmate inflated mnn_batch_mvms_total: got %d with a drop, %d without",
			gotBatch.BatchMVMs, cleanBatch.BatchMVMs)
	}
	// The survivors' answers match the control run bit for bit.
	for _, i := range []int{0, 2} {
		if got[i].pred.Class != clean[i].pred.Class || got[i].pred.Stats != clean[i].pred.Stats {
			t.Fatalf("survivor %d diverged from control:\n with drop %+v\n  control %+v",
				i, got[i].pred, clean[i].pred)
		}
	}
}
