package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/accel"
	"repro/internal/persist"
	"repro/internal/replica"
	"repro/internal/scrub"
)

// ScrubConfig wires the patrol scrubber into the pool: a background
// goroutine that, during idle scheduler slots, walks one mapped layer per
// tick in deterministic rotation, heals drifted cells through the verify
// write path, and spares uncorrectable rows — so errors are removed before
// they can trip the reactive ladder's breakers.
type ScrubConfig struct {
	// Enabled starts the patroller. Off by default: with it off, the
	// engine's arrays are never touched outside requests and predictions
	// stay a pure function of (engine, seed).
	Enabled bool
	// Interval is the pause between patrol attempts (0 = 1s). A tick with
	// requests queued or in flight is skipped — patrol only steals idle
	// slots.
	Interval time.Duration
	// MaxStaleness is the patrol-cycle age past which /readyz flags the
	// scrub as stale (0 = 100x Interval). Staleness is informational: a
	// busy pool that never idles simply isn't scrubbing, and the reactive
	// ladder is still armed.
	MaxStaleness time.Duration
	// VerifyIters bounds closed-loop re-programming per repaired cell
	// (0 = the engine's configured VerifyIters, falling back to 5).
	VerifyIters int
	// Seed drives the verify-comparator draws of repair programming
	// (0 = the engine seed).
	Seed uint64
	// Manual builds the patroller without its background loop: passes run
	// only when the owner calls Scheduler.PatrolNow. Deterministic sweeps
	// and drills use this to put scrubbing on the request-step clock.
	Manual bool
}

// withDefaults resolves the zero values.
func (c ScrubConfig) withDefaults() ScrubConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.MaxStaleness <= 0 {
		c.MaxStaleness = 100 * c.Interval
	}
	return c
}

// Validate rejects nonsensical parameters.
func (c ScrubConfig) Validate() error {
	switch {
	case c.Interval < 0:
		return fmt.Errorf("serve: negative scrub interval %v", c.Interval)
	case c.MaxStaleness < 0:
		return fmt.Errorf("serve: negative scrub staleness bound %v", c.MaxStaleness)
	case c.VerifyIters < 0 || c.VerifyIters > 64:
		return fmt.Errorf("serve: scrub verify iterations %d out of range [0,64]", c.VerifyIters)
	}
	return nil
}

// ScrubStatus is a point-in-time snapshot of the patroller for metrics and
// readiness reporting.
type ScrubStatus struct {
	// Totals is the lifetime repair accounting.
	Totals scrub.Totals
	// LayerAge maps each mapped layer to the time since its last completed
	// patrol pass (since patroller start for layers not yet reached).
	LayerAge map[int]time.Duration
	// OldestAge is the maximum of LayerAge — the patrol-cycle age.
	OldestAge time.Duration
	// Stale reports OldestAge exceeding the configured bound.
	Stale bool
}

// patroller drives one scrub.Scrubber per programmed copy from a single
// background goroutine. Scrubbers are not concurrency-safe; all patrol
// calls happen here, and array access is serialized against live traffic
// and remaps by each engine's per-layer write lock. With a replica set the
// patroller detaches one copy per tick, scrubs it while its siblings absorb
// the traffic, and rejoins it — so patrol no longer has to wait for idle
// slots.
type patroller struct {
	sched *Scheduler
	scs   []*scrub.Scrubber // one per programmed copy; a single entry without replication
	// sets/reps align with scs: the replica set (and replica index within
	// it) each scrubber's engine belongs to, so a patrol pass can detach
	// exactly that copy. nil set = the unreplicated primary. Under sharding
	// there is one entry per (shard, replica) pair, so the rotation walks
	// every fault domain's every copy.
	sets []*replica.Set
	reps []int
	// detachable reports that patrolled copies can be taken out of their
	// serving rotation, so patrol does not need to wait for idle slots.
	detachable bool
	// layers is every mapped layer the rotation covers (staleness view).
	layers []int
	// baseInterval is the configured cadence; curInterval (nanoseconds) is
	// the live one, adjustable by the protection controller between ticks.
	baseInterval time.Duration
	curInterval  atomic.Int64
	maxStale     time.Duration
	manual       bool
	cursor       int // copy rotation position

	// scMu owns the scrubbers and the rotation cursor: the background loop
	// (or PatrolNow) holds it across a pass, and the snapshotter holds it
	// while capturing scrubber state — scrubbers themselves are not
	// concurrency-safe.
	scMu sync.Mutex

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	mu       sync.Mutex
	totals   scrub.Totals
	lastPass map[int]time.Time
	started  time.Time
}

// newPatroller builds the patroller without starting its loop, so boot-time
// state restoration can position the scrubbers before the first pass; the
// scheduler calls start once the pool is assembled.
func newPatroller(sched *Scheduler, cfg ScrubConfig) *patroller {
	cfg = cfg.withDefaults()
	p := &patroller{
		sched:        sched,
		baseInterval: cfg.Interval,
		maxStale:     cfg.MaxStaleness,
		manual:       cfg.Manual,
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		lastPass:     make(map[int]time.Time),
		started:      time.Now(),
	}
	p.curInterval.Store(int64(cfg.Interval))
	type target struct {
		eng *accel.Engine
		set *replica.Set
		rep int
	}
	var targets []target
	switch {
	case sched.pool != nil:
		// One scrubber per (shard, replica) pair: each covers only its
		// shard's layer slice, and together the rotation patrols every copy
		// of every fault domain.
		for i := 0; i < sched.pool.Size(); i++ {
			set := sched.pool.Shard(i).Set()
			for r := 0; r < set.Size(); r++ {
				targets = append(targets, target{eng: set.Engine(r), set: set, rep: r})
			}
		}
		p.layers = sched.pool.Layers()
	case sched.set != nil:
		for r := 0; r < sched.set.Size(); r++ {
			targets = append(targets, target{eng: sched.set.Engine(r), set: sched.set, rep: r})
		}
		p.layers = sched.eng.Layers()
	default:
		targets = []target{{eng: sched.eng}}
		p.layers = sched.eng.Layers()
	}
	for _, tg := range targets {
		iters := cfg.VerifyIters
		if iters <= 0 {
			iters = tg.eng.Config().VerifyIters
		}
		seed := cfg.Seed
		if seed == 0 {
			seed = tg.eng.Config().Seed
		}
		p.scs = append(p.scs, scrub.New(tg.eng, scrub.Config{VerifyIters: iters, Seed: seed}))
		p.sets = append(p.sets, tg.set)
		p.reps = append(p.reps, tg.rep)
		if tg.set != nil && tg.set.Size() > 1 {
			p.detachable = true
		}
	}
	return p
}

// start launches the patrol loop (or, in manual mode, marks it finished so
// halt does not wait for one).
func (p *patroller) start() {
	if p.manual {
		close(p.done) // no loop to wait for in halt
		return
	}
	go p.run()
}

// interval returns the live patrol cadence.
func (p *patroller) interval() time.Duration {
	return time.Duration(p.curInterval.Load())
}

// setInterval adjusts the live patrol cadence; the loop picks the new value
// up when its current wait fires. Non-positive values are ignored.
func (p *patroller) setInterval(d time.Duration) {
	if d > 0 {
		p.curInterval.Store(int64(d))
	}
}

// run is the patrol loop: tick, patrol one layer of one copy. Without a
// detachable copy the pool must be idle (patrol steals only idle slots);
// otherwise the patrolled copy is detached from its replica set — pool-wide
// or per shard — so traffic never waits on it.
func (p *patroller) run() {
	defer close(p.done)
	timer := time.NewTimer(p.interval())
	defer timer.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-timer.C:
			if p.detachable || p.idle() {
				p.patrolOnce()
			}
			timer.Reset(p.interval())
		}
	}
}

// idle reports whether the pool has no queued or in-flight work — the only
// slots single-copy patrol is allowed to steal.
func (p *patroller) idle() bool {
	return p.sched.inflight.Load() == 0 && p.sched.QueueLen() == 0
}

// patrolOnce runs one layer's patrol pass on the next copy in rotation and
// publishes its outcome.
func (p *patroller) patrolOnce() {
	p.scMu.Lock()
	defer p.scMu.Unlock()
	r := p.cursor % len(p.scs)
	p.cursor++
	if set := p.sets[r]; set != nil && set.Size() > 1 {
		// Take the copy out of its serving rotation while its arrays are
		// probed; if it is the last one attached, skip this tick rather
		// than stall traffic behind the layer write lock.
		if err := set.Detach(p.reps[r]); err != nil {
			return
		}
		defer set.Attach(p.reps[r])
	}
	rep, err := p.scs[r].Next()
	if err != nil {
		return
	}
	// A pass that repaired or spared anything removed the error sources the
	// health monitor was accumulating evidence against; reset the layer's
	// breaker window so the scrub finding pre-empts a (now moot) trip.
	if p.sched.rec != nil && rep.CellsReprogrammed+rep.RowsSpared > 0 {
		p.sched.rec.mon.Reset(rep.Layer)
	}
	p.mu.Lock()
	var t scrub.Totals
	for _, sc := range p.scs {
		t.Merge(sc.Totals())
	}
	p.totals = t
	p.lastPass[rep.Layer] = time.Now()
	p.mu.Unlock()
}

// status snapshots the patroller.
func (p *patroller) status() ScrubStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := ScrubStatus{
		Totals:   p.totals,
		LayerAge: make(map[int]time.Duration),
	}
	now := time.Now()
	for _, layer := range p.layers {
		last, ok := p.lastPass[layer]
		if !ok {
			last = p.started
		}
		age := now.Sub(last)
		st.LayerAge[layer] = age
		if age > st.OldestAge {
			st.OldestAge = age
		}
	}
	st.Stale = st.OldestAge > p.maxStale
	return st
}

// halt stops the patrol loop and waits for it to exit. Idempotent.
func (p *patroller) halt() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// stateSnapshot captures the patroller's durable state: the replica rotation
// cursor and every scrubber's rotation/pass position.
func (p *patroller) stateSnapshot() persist.ScrubState {
	p.scMu.Lock()
	defer p.scMu.Unlock()
	st := persist.ScrubState{
		Cursor:    p.cursor,
		Scrubbers: make([]scrub.State, len(p.scs)),
	}
	for i, sc := range p.scs {
		st.Scrubbers[i] = sc.Snapshot()
	}
	return st
}

// checkRestore validates a scrub snapshot against this patroller without
// touching any state; a nil error guarantees restoreState will succeed.
func (p *patroller) checkRestore(st persist.ScrubState) error {
	if len(st.Scrubbers) != len(p.scs) {
		return fmt.Errorf("serve: snapshot has %d scrubbers, patroller has %d", len(st.Scrubbers), len(p.scs))
	}
	if st.Cursor < 0 {
		return fmt.Errorf("serve: snapshot scrub rotation cursor %d is negative", st.Cursor)
	}
	for i, ss := range st.Scrubbers {
		if err := p.scs[i].CheckRestore(ss); err != nil {
			return fmt.Errorf("serve: snapshot scrubber %d: %w", i, err)
		}
	}
	return nil
}

// restoreState positions every scrubber and the rotation cursor at a
// persisted point. All scrubbers are validated before any is touched.
func (p *patroller) restoreState(st persist.ScrubState) error {
	p.scMu.Lock()
	defer p.scMu.Unlock()
	if err := p.checkRestore(st); err != nil {
		return err
	}
	for i, ss := range st.Scrubbers {
		if err := p.scs[i].Restore(ss); err != nil {
			return err // unreachable after checkRestore
		}
	}
	p.cursor = st.Cursor
	return nil
}

// ScrubStatus snapshots the patroller; ok is false when scrubbing is
// disabled.
func (s *Scheduler) ScrubStatus() (ScrubStatus, bool) {
	if s.pat == nil {
		return ScrubStatus{}, false
	}
	return s.pat.status(), true
}

// ScrubInterval returns the live patrol cadence (0 when scrubbing is
// disabled) — the knob the protection controller turns.
func (s *Scheduler) ScrubInterval() time.Duration {
	if s.pat == nil {
		return 0
	}
	return s.pat.interval()
}

// PatrolNow runs one synchronous patrol pass. Only manual-mode patrollers
// allow it: scrubbers are not concurrency-safe, so a running background
// loop owns them exclusively.
func (s *Scheduler) PatrolNow() error {
	if s.pat == nil {
		return fmt.Errorf("serve: scrubbing is disabled")
	}
	if !s.pat.manual {
		return fmt.Errorf("serve: patroller runs in the background; PatrolNow needs ScrubConfig.Manual")
	}
	s.pat.patrolOnce()
	return nil
}
