package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/scrub"
)

// ScrubConfig wires the patrol scrubber into the pool: a background
// goroutine that, during idle scheduler slots, walks one mapped layer per
// tick in deterministic rotation, heals drifted cells through the verify
// write path, and spares uncorrectable rows — so errors are removed before
// they can trip the reactive ladder's breakers.
type ScrubConfig struct {
	// Enabled starts the patroller. Off by default: with it off, the
	// engine's arrays are never touched outside requests and predictions
	// stay a pure function of (engine, seed).
	Enabled bool
	// Interval is the pause between patrol attempts (0 = 1s). A tick with
	// requests queued or in flight is skipped — patrol only steals idle
	// slots.
	Interval time.Duration
	// MaxStaleness is the patrol-cycle age past which /readyz flags the
	// scrub as stale (0 = 100x Interval). Staleness is informational: a
	// busy pool that never idles simply isn't scrubbing, and the reactive
	// ladder is still armed.
	MaxStaleness time.Duration
	// VerifyIters bounds closed-loop re-programming per repaired cell
	// (0 = the engine's configured VerifyIters, falling back to 5).
	VerifyIters int
	// Seed drives the verify-comparator draws of repair programming
	// (0 = the engine seed).
	Seed uint64
}

// withDefaults resolves the zero values.
func (c ScrubConfig) withDefaults() ScrubConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.MaxStaleness <= 0 {
		c.MaxStaleness = 100 * c.Interval
	}
	return c
}

// Validate rejects nonsensical parameters.
func (c ScrubConfig) Validate() error {
	switch {
	case c.Interval < 0:
		return fmt.Errorf("serve: negative scrub interval %v", c.Interval)
	case c.MaxStaleness < 0:
		return fmt.Errorf("serve: negative scrub staleness bound %v", c.MaxStaleness)
	case c.VerifyIters < 0 || c.VerifyIters > 64:
		return fmt.Errorf("serve: scrub verify iterations %d out of range [0,64]", c.VerifyIters)
	}
	return nil
}

// ScrubStatus is a point-in-time snapshot of the patroller for metrics and
// readiness reporting.
type ScrubStatus struct {
	// Totals is the lifetime repair accounting.
	Totals scrub.Totals
	// LayerAge maps each mapped layer to the time since its last completed
	// patrol pass (since patroller start for layers not yet reached).
	LayerAge map[int]time.Duration
	// OldestAge is the maximum of LayerAge — the patrol-cycle age.
	OldestAge time.Duration
	// Stale reports OldestAge exceeding the configured bound.
	Stale bool
}

// patroller drives a scrub.Scrubber from a single background goroutine.
// The scrubber itself is not concurrency-safe; all patrol calls happen
// here, and array access is serialized against live traffic and remaps by
// the engine's per-layer write lock.
type patroller struct {
	sched    *Scheduler
	sc       *scrub.Scrubber
	interval time.Duration
	maxStale time.Duration

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	mu       sync.Mutex
	totals   scrub.Totals
	lastPass map[int]time.Time
	started  time.Time
}

// newPatroller builds and starts the patrol goroutine.
func newPatroller(sched *Scheduler, cfg ScrubConfig) *patroller {
	cfg = cfg.withDefaults()
	iters := cfg.VerifyIters
	if iters <= 0 {
		iters = sched.eng.Config().VerifyIters
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = sched.eng.Config().Seed
	}
	p := &patroller{
		sched:    sched,
		sc:       scrub.New(sched.eng, scrub.Config{VerifyIters: iters, Seed: seed}),
		interval: cfg.Interval,
		maxStale: cfg.MaxStaleness,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		lastPass: make(map[int]time.Time),
		started:  time.Now(),
	}
	go p.run()
	return p
}

// run is the patrol loop: tick, patrol one layer if the pool is idle.
func (p *patroller) run() {
	defer close(p.done)
	ticker := time.NewTicker(p.interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			if !p.idle() {
				continue
			}
			p.patrolOnce()
		}
	}
}

// idle reports whether the pool has no queued or in-flight work — the only
// slots patrol is allowed to steal.
func (p *patroller) idle() bool {
	return p.sched.inflight.Load() == 0 && p.sched.QueueLen() == 0
}

// patrolOnce runs one layer's patrol pass and publishes its outcome.
func (p *patroller) patrolOnce() {
	rep, err := p.sc.Next()
	if err != nil {
		return
	}
	// A pass that repaired or spared anything removed the error sources the
	// health monitor was accumulating evidence against; reset the layer's
	// breaker window so the scrub finding pre-empts a (now moot) trip.
	if p.sched.rec != nil && rep.CellsReprogrammed+rep.RowsSpared > 0 {
		p.sched.rec.mon.Reset(rep.Layer)
	}
	p.mu.Lock()
	p.totals = p.sc.Totals()
	p.lastPass[rep.Layer] = time.Now()
	p.mu.Unlock()
}

// status snapshots the patroller.
func (p *patroller) status() ScrubStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := ScrubStatus{
		Totals:   p.totals,
		LayerAge: make(map[int]time.Duration),
	}
	now := time.Now()
	for _, layer := range p.sc.Layers() {
		last, ok := p.lastPass[layer]
		if !ok {
			last = p.started
		}
		age := now.Sub(last)
		st.LayerAge[layer] = age
		if age > st.OldestAge {
			st.OldestAge = age
		}
	}
	st.Stale = st.OldestAge > p.maxStale
	return st
}

// halt stops the patrol loop and waits for it to exit. Idempotent.
func (p *patroller) halt() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// ScrubStatus snapshots the patroller; ok is false when scrubbing is
// disabled.
func (s *Scheduler) ScrubStatus() (ScrubStatus, bool) {
	if s.pat == nil {
		return ScrubStatus{}, false
	}
	return s.pat.status(), true
}
