package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/predict"
)

// PlanConfig wires the GET /plan endpoint: the analytic SLO planner run
// against the live deployment. Each request re-runs the protection-space
// search with the health monitor's current measured rates folded in, so the
// answer drifts with the hardware — a fleet that ages past its margins shows
// up as a plan recommending a stronger scheme than the one deployed.
type PlanConfig struct {
	// Enabled registers GET /plan on the serving mux.
	Enabled bool
	// Calibration is the offline software-forward calibration of the served
	// network (logit margins, bit-plane activities). Required when Enabled:
	// the planner cannot predict accuracy without it.
	Calibration *predict.Calibration
	// SLO is the accuracy/availability target the planner sizes for.
	SLO predict.SLO
	// MaxReplicas bounds the availability search (0 = planner default).
	MaxReplicas int
}

// Validate rejects an enabled endpoint with missing inputs.
func (c PlanConfig) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.Calibration == nil {
		return fmt.Errorf("serve: plan endpoint needs a calibration")
	}
	if c.SLO.MaxMiss <= 0 {
		return fmt.Errorf("serve: plan endpoint needs a positive SLO max miss")
	}
	return nil
}

// planLayerJSON is one layer's chosen protection in the /plan response.
type planLayerJSON struct {
	Layer   int     `json:"layer"`
	Scheme  string  `json:"scheme"`
	PDetect float64 `json:"p_detect"`
	VarOut  float64 `json:"var_out"`
	AreaMM2 float64 `json:"area_mm2"`
	PowerMW float64 `json:"power_mw"`
	// Kappa is the measured/predicted recalibration factor that informed
	// this layer (1 = no usable measurement window).
	Kappa float64 `json:"kappa"`
}

// planResponse is the GET /plan body.
type planResponse struct {
	Workload string `json:"workload"`
	// Device names the device profile the plan was priced against.
	Device string `json:"device,omitempty"`
	// Deployed is the scheme currently serving traffic; the plan below may
	// disagree with it, which is the point.
	Deployed        string          `json:"deployed_scheme"`
	SLOMaxMiss      float64         `json:"slo_max_miss"`
	SLOAvailability float64         `json:"slo_min_availability,omitempty"`
	Satisfied       bool            `json:"satisfied"`
	PredictedMiss   float64         `json:"predicted_miss"`
	LogitSigma      float64         `json:"logit_sigma"`
	Availability    float64         `json:"availability"`
	Replicas        int             `json:"replicas"`
	SpareRows       int             `json:"spare_rows"`
	ScrubEvery      int             `json:"scrub_every,omitempty"`
	TotalAreaMM2    float64         `json:"total_area_mm2"`
	TotalPowerMW    float64         `json:"total_power_mw"`
	Searched        int             `json:"searched"`
	MeasuredLayers  int             `json:"measured_layers"`
	Layers          []planLayerJSON `json:"layers"`
}

// handlePlan runs the protection planner against the live engine: analytic
// rates recalibrated by whatever the health monitor has measured so far.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	eng := s.sched.Engine()
	pcfg := predict.PlannerConfig{
		Base:        eng.Config(),
		SLO:         s.plan.SLO,
		MaxReplicas: s.plan.MaxReplicas,
	}
	measured := 0
	if mon := s.sched.Monitor(); mon != nil {
		rates := mon.Rates()
		if len(rates) > 0 {
			pcfg.Measured = make(map[int]predict.MeasuredRates, len(rates))
			for _, lr := range rates {
				pcfg.Measured[lr.Layer] = predict.MeasuredRates{Detected: lr.Detected, Reads: lr.Reads}
				if lr.Reads > 0 {
					measured++
				}
			}
		}
	}
	plan, err := predict.BuildPlan(eng.Network(), s.plan.Calibration, pcfg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := planResponse{
		Workload:        s.model.Name,
		Device:          eng.Config().DeviceName,
		Deployed:        eng.Config().Scheme.Name,
		SLOMaxMiss:      s.plan.SLO.MaxMiss,
		SLOAvailability: s.plan.SLO.MinAvailability,
		Satisfied:       plan.Satisfied,
		PredictedMiss:   plan.Predicted.Miss,
		LogitSigma:      plan.Predicted.LogitSigma,
		Availability:    plan.Availability,
		Replicas:        plan.Replicas,
		SpareRows:       plan.SpareRows,
		ScrubEvery:      plan.ScrubEvery,
		TotalAreaMM2:    plan.Bill.Area.AreaMM2,
		TotalPowerMW:    plan.Bill.Area.PowerMW,
		Searched:        plan.Searched,
		MeasuredLayers:  measured,
	}
	for _, lp := range plan.Layers {
		resp.Layers = append(resp.Layers, planLayerJSON{
			Layer: lp.Layer, Scheme: lp.Scheme,
			PDetect: lp.PDetect, VarOut: lp.VarOut,
			AreaMM2: lp.AreaMM2, PowerMW: lp.PowerMW,
			Kappa: lp.Kappa,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
