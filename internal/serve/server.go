package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"repro/internal/accel"
	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/shard"
)

// maxBodyBytes bounds a predict request body (a MiniAlexNet batch of a few
// hundred images fits comfortably).
const maxBodyBytes = 64 << 20

// Model names the served network and fixes the input contract.
type Model struct {
	// Name labels the workload in /healthz and responses ("MLP1", ...).
	Name string
	// InShape is the tensor shape every image must flatten to.
	InShape []int
}

// Server is the HTTP front end: POST /v1/predict, GET /healthz (liveness),
// GET /readyz (readiness), GET /metrics, and — when AdminConfig.Enabled —
// the /admin operator surface (shard maintenance and the workload registry).
type Server struct {
	sched   *Scheduler
	metrics *Metrics
	model   Model
	inLen   int
	mux     *http.ServeMux
	ready   atomic.Bool
	plan    PlanConfig
	reg     *registry
}

// NewServer builds the scheduler pool over a mapped engine and wires the
// routes.
func NewServer(eng *accel.Engine, model Model, cfg Config) (*Server, error) {
	sched, err := NewScheduler(eng, cfg)
	if err != nil {
		return nil, err
	}
	inLen := 1
	for _, d := range model.InShape {
		inLen *= d
	}
	if len(model.InShape) == 0 || inLen <= 0 {
		return nil, fmt.Errorf("serve: model %q has no input shape", model.Name)
	}
	s := &Server{sched: sched, metrics: newMetrics(), model: model, inLen: inLen, mux: http.NewServeMux(), plan: cfg.Plan}
	s.reg = newRegistry(cfg, cfg.Admin.Loader, model.Name, &modelEntry{model: model, sched: sched, inLen: inLen})
	s.mux.HandleFunc("/v1/predict", s.handlePredict)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if cfg.Plan.Enabled {
		s.mux.HandleFunc("/plan", s.handlePlan)
	}
	if cfg.Admin.Enabled {
		s.mux.HandleFunc("/admin/shards", s.handleAdminShards)
		s.mux.HandleFunc("/admin/models", s.handleAdminModels)
	}
	if cfg.Pprof {
		// The stdlib handlers, on our mux rather than DefaultServeMux, so
		// profiling shares the admin surface and honors the same listener.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.ready.Store(true)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Scheduler exposes the pool (benchmarks and telemetry).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Metrics exposes the telemetry accumulator.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Shutdown marks the server not-ready (health checks start failing, so load
// balancers stop routing here), then drains the admission queue: every
// admitted request is answered before the workers exit. The summary is
// partial but still meaningful when ctx expires mid-drain.
func (s *Server) Shutdown(ctx context.Context) (DrainSummary, error) {
	s.ready.Store(false)
	s.reg.closeLoaded(ctx)
	return s.sched.Close(ctx)
}

// predictRequest is the POST /v1/predict body. Exactly one of Image or
// Images must be set.
type predictRequest struct {
	// Image is one flattened image (row-major, CHW for conv inputs).
	Image []float64 `json:"image,omitempty"`
	// Images is a batch, fanned across the worker pool.
	Images [][]float64 `json:"images,omitempty"`
	// TopK asks for that many ranked classes (0 = server default).
	TopK int `json:"top_k,omitempty"`
	// Seed pins the noise stream of the first image (entry i uses Seed+i);
	// 0 or absent lets the server assign fresh streams.
	Seed uint64 `json:"seed,omitempty"`
	// Model routes the request to a registry workload ("" = the primary
	// model this server booted with).
	Model string `json:"model,omitempty"`
}

// eccJSON is the per-request slice of accel.Stats.
type eccJSON struct {
	RowReads  uint64 `json:"row_reads"`
	RowErrors uint64 `json:"row_errors"`
	Clean     uint64 `json:"clean"`
	Corrected uint64 `json:"corrected"`
	Detected  uint64 `json:"detected"`
	Retries   uint64 `json:"retries"`
	Residual  uint64 `json:"residual"`
	SoftMVMs  uint64 `json:"soft_mvms,omitempty"`
}

type resultJSON struct {
	Class int     `json:"class"`
	TopK  []int   `json:"top_k"`
	Seed  uint64  `json:"seed"`
	ECC   eccJSON `json:"ecc"`
	// Recovery-ladder metadata: how many retries this answer consumed,
	// which layers were re-programmed on its behalf, and which layers it
	// was served from the software fallback (degraded accuracy).
	LadderRetries int   `json:"ladder_retries,omitempty"`
	Remapped      []int `json:"remapped_layers,omitempty"`
	Degraded      []int `json:"degraded_layers,omitempty"`
}

type predictResponse struct {
	Workload string       `json:"workload"`
	Scheme   string       `json:"scheme"`
	Results  []resultJSON `json:"results"`
	// Degraded warns that at least one answer came from the software
	// fallback path at reduced fidelity.
	Degraded  bool    `json:"degraded,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	var req predictRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, start, http.StatusBadRequest, outcomeBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	ent, ok := s.reg.lookup(req.Model)
	if !ok {
		s.fail(w, start, http.StatusNotFound, outcomeBadRequest, fmt.Sprintf("model %q is not loaded", req.Model))
		return
	}
	images := req.Images
	if len(req.Image) > 0 {
		images = append([][]float64{req.Image}, images...)
	}
	if len(images) == 0 {
		s.fail(w, start, http.StatusBadRequest, outcomeBadRequest, `need "image" or "images"`)
		return
	}
	inputs := make([]*nn.Tensor, len(images))
	for i, im := range images {
		if len(im) != ent.inLen {
			s.fail(w, start, http.StatusBadRequest, outcomeBadRequest,
				fmt.Sprintf("image %d has %d values, want %d for shape %v", i, len(im), ent.inLen, ent.model.InShape))
			return
		}
		inputs[i] = nn.FromSlice(im, ent.model.InShape...)
	}

	preds, err := ent.sched.PredictBatch(r.Context(), inputs, req.Seed, req.TopK)
	if err != nil {
		status, outcome := classifyErr(err)
		s.fail(w, start, status, outcome, err.Error())
		return
	}

	resp := predictResponse{
		Workload: ent.model.Name,
		Scheme:   ent.sched.Engine().Config().Scheme.Name,
		Results:  make([]resultJSON, len(preds)),
	}
	var total accel.Stats
	for i, p := range preds {
		total.Merge(p.Stats)
		if len(p.Degraded) > 0 {
			resp.Degraded = true
		}
		resp.Results[i] = resultJSON{
			Class: p.Class, TopK: p.TopK, Seed: p.Seed,
			ECC: eccJSON{
				RowReads: p.Stats.RowReads, RowErrors: p.Stats.RowErrors,
				Clean: p.Stats.Clean, Corrected: p.Stats.Corrected,
				Detected: p.Stats.Detected, Retries: p.Stats.Retries,
				Residual: p.Stats.Residual, SoftMVMs: p.Stats.SoftMVMs,
			},
			LadderRetries: p.LadderRetries,
			Remapped:      p.Remapped,
			Degraded:      p.Degraded,
		}
	}
	elapsed := time.Since(start)
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	s.metrics.observe(outcomeOK, len(preds), elapsed, total)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// fail records the outcome and writes the error status.
func (s *Server) fail(w http.ResponseWriter, start time.Time, status int, outcome, msg string) {
	s.metrics.observe(outcome, 0, time.Since(start), accel.Stats{})
	http.Error(w, msg, status)
}

// classifyErr maps scheduler errors to HTTP semantics: backpressure is the
// client's cue to retry with jitter (429), a queue-deadline miss or a
// draining pool is a service condition (503).
func classifyErr(err error) (status int, outcome string) {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, outcomeQueueFull
	case errors.Is(err, ErrQueueTimeout):
		return http.StatusServiceUnavailable, outcomeTimeout
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, outcomeError
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, outcomeCanceled
	default:
		return http.StatusInternalServerError, outcomeError
	}
}

// healthzResponse reports liveness and the mapped configuration.
type healthzResponse struct {
	Status   string `json:"status"`
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Device   string `json:"device,omitempty"`
	Bits     int    `json:"bits_per_cell"`
	Workers  int    `json:"workers"`
	Queue    int    `json:"queue_depth"`
	// Persist reports the snapshotter: how this boot restored (fresh map,
	// resumed from snapshot, or fallback after a refused snapshot) and how
	// stale the newest snapshot is. Omitted when persistence is disabled.
	Persist *persistJSON `json:"persist,omitempty"`
}

// persistJSON is the snapshotter's row in /healthz and /readyz.
type persistJSON struct {
	// Outcome is what the boot-time restore did: "fresh" (no snapshot),
	// "restored" (resumed the persisted trajectory), or "fallback" (a
	// snapshot existed but was refused — corrupt, version-mismatched, or
	// inconsistent with this configuration — and the pool booted fresh).
	Outcome string `json:"outcome"`
	// RestoreErr is why the snapshot was refused (fallback only).
	RestoreErr string `json:"restore_error,omitempty"`
	// SnapshotAgeSec is seconds since the last published snapshot (omitted
	// before the first save on a fresh boot).
	SnapshotAgeSec float64 `json:"snapshot_age_sec,omitempty"`
	// Saves / SaveErrors count snapshot attempts this process made.
	Saves      uint64 `json:"saves"`
	SaveErrors uint64 `json:"save_errors,omitempty"`
	// LastSaveErr is the most recent save failure ("" after a success).
	LastSaveErr string `json:"last_save_error,omitempty"`
}

// persistRow builds the shared /healthz//readyz persist annotation, nil when
// persistence is disabled.
func (s *Server) persistRow() *persistJSON {
	ps, ok := s.sched.PersistStatus()
	if !ok {
		return nil
	}
	return &persistJSON{
		Outcome:        string(ps.Outcome),
		RestoreErr:     ps.RestoreErr,
		SnapshotAgeSec: ps.SnapshotAge.Seconds(),
		Saves:          ps.Saves,
		SaveErrors:     ps.SaveErrors,
		LastSaveErr:    ps.LastSaveErr,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	cfg := s.sched.Engine().Config()
	resp := healthzResponse{
		Status:   "ok",
		Workload: s.model.Name,
		Scheme:   cfg.Scheme.Name,
		Device:   cfg.DeviceName,
		Bits:     cfg.Device.BitsPerCell,
		Workers:  s.sched.Workers(),
		Queue:    s.sched.QueueDepth(),
		Persist:  s.persistRow(),
	}
	w.Header().Set("Content-Type", "application/json")
	if !s.ready.Load() {
		resp.Status = "draining"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(resp)
}

// readyzResponse reports whether this instance should receive traffic,
// and why not when it shouldn't.
type readyzResponse struct {
	Ready bool `json:"ready"`
	// Draining is true once shutdown began.
	Draining bool `json:"draining,omitempty"`
	// Device names the active device profile the arrays are modeled on.
	Device string `json:"device,omitempty"`
	// QueueLen / QueueDepth expose admission backpressure; a wedged-full
	// queue makes the instance not ready so load balancers route around
	// it instead of collecting 429s.
	QueueLen   int `json:"queue_len"`
	QueueDepth int `json:"queue_depth"`
	// BreakerOpen lists layers whose health breaker is currently open —
	// the instance still answers (the ladder is working), but operators
	// see the degradation cause here.
	BreakerOpen []int `json:"breaker_open_layers,omitempty"`
	// DegradedLayers lists layers served from the software fallback.
	DegradedLayers []int `json:"degraded_layers,omitempty"`
	// ScrubOldestAgeSec is the patrol-cycle age: seconds since the
	// least-recently patrolled layer's last pass (omitted when scrubbing is
	// disabled).
	ScrubOldestAgeSec float64 `json:"scrub_oldest_age_sec,omitempty"`
	// ScrubStale flags a patrol-cycle age past the configured bound —
	// informational: the instance still serves (the reactive ladder is
	// armed), but operators see the proactive loop has fallen behind.
	ScrubStale bool `json:"scrub_stale,omitempty"`
	// Shards reports per-fault-domain state when the engine is sharded
	// (omitted otherwise). A draining or degraded shard is informational —
	// its layers serve from siblings or software — but operators see which
	// domain is out and why traffic survives.
	Shards []shard.ShardStatus `json:"shards,omitempty"`
	// Replicas reports per-replica attachment and health when the layer
	// slots are replicated (omitted otherwise).
	Replicas []replicaJSON `json:"replicas,omitempty"`
	// Controller reports the protection controller's posture (omitted when
	// it is not wired).
	Controller *controllerJSON `json:"controller,omitempty"`
	// Persist reports the snapshotter's restore outcome and snapshot age
	// (omitted when persistence is disabled). A "fallback" outcome is
	// informational — the instance serves from a fresh map — but operators
	// see here that the lifetime trajectory was not resumed.
	Persist *persistJSON `json:"persist,omitempty"`
}

// controllerJSON is the protection controller's row in /readyz.
type controllerJSON struct {
	// Level is the current protection level, 0 (baseline) .. MaxLevel.
	Level    int `json:"level"`
	MaxLevel int `json:"max_level"`
	// ScrubIntervalSec is the live patrol cadence under the current level.
	ScrubIntervalSec float64 `json:"scrub_interval_sec,omitempty"`
	// VoteThreshold is the live majority-vote trigger (omitted without a
	// replica set).
	VoteThreshold int    `json:"vote_threshold,omitempty"`
	Ticks         uint64 `json:"ticks"`
	// Decisions counts applied actions by name (tighten/relax/repair/degrade).
	Decisions map[string]uint64 `json:"decisions,omitempty"`
}

// replicaJSON is one replica's row in /readyz.
type replicaJSON struct {
	ID       int  `json:"id"`
	Attached bool `json:"attached"`
	// BreakerOpenLayers lists layers whose routing breaker is open on this
	// replica (traffic is steered to its siblings there).
	BreakerOpenLayers []int  `json:"breaker_open_layers,omitempty"`
	Failovers         uint64 `json:"failovers,omitempty"`
	Detaches          uint64 `json:"detaches,omitempty"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := readyzResponse{
		Draining:       !s.ready.Load(),
		Device:         s.sched.Engine().Config().DeviceName,
		QueueLen:       s.sched.QueueLen(),
		QueueDepth:     s.sched.QueueDepth(),
		DegradedLayers: s.sched.Engine().DegradedLayers(),
	}
	for _, h := range s.sched.Health() {
		if h.State == fault.BreakerOpen {
			resp.BreakerOpen = append(resp.BreakerOpen, h.Layer)
		}
	}
	if st, ok := s.sched.ScrubStatus(); ok {
		resp.ScrubOldestAgeSec = st.OldestAge.Seconds()
		resp.ScrubStale = st.Stale
	}
	if pool := s.sched.ShardPool(); pool != nil {
		resp.Shards = pool.Status()
	}
	if set := s.sched.ReplicaSet(); set != nil {
		for _, rs := range set.Status().Replicas {
			resp.Replicas = append(resp.Replicas, replicaJSON{
				ID: rs.ID, Attached: rs.Attached,
				BreakerOpenLayers: rs.OpenLayers,
				Failovers:         rs.Failovers,
				Detaches:          rs.Detaches,
			})
		}
	}
	if cs, ok := s.sched.ControllerStatus(); ok {
		cj := &controllerJSON{
			Level:            cs.Level,
			MaxLevel:         cs.MaxLevel,
			ScrubIntervalSec: cs.ScrubInterval.Seconds(),
			Ticks:            cs.Ticks,
			Decisions:        cs.Decisions,
		}
		if cs.VoteThreshold >= 0 {
			cj.VoteThreshold = cs.VoteThreshold
		}
		resp.Controller = cj
	}
	resp.Persist = s.persistRow()
	resp.Ready = !resp.Draining && resp.QueueLen < resp.QueueDepth
	w.Header().Set("Content-Type", "application/json")
	if !resp.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	cfg := s.sched.Engine().Config()
	g := GaugeView{
		QueueDepth:     s.sched.QueueLen(),
		Workers:        s.sched.Workers(),
		Health:         s.sched.Health(),
		DegradedLayers: s.sched.Engine().DegradedLayers(),
		Recovery:       s.sched.RecoveryCounters(),
		Batch:          s.sched.BatchStatus(),
		Device:         cfg.DeviceName,
		Scheme:         cfg.Scheme.Name,
	}
	if cs, ok := s.sched.ControllerStatus(); ok {
		g.Controller = &cs
	}
	verify := s.sched.Engine().VerifyStats()
	if st, ok := s.sched.ScrubStatus(); ok {
		g.Scrub = &st
		verify.Merge(st.Totals.Verify)
	}
	if verify.Cells > 0 {
		g.Verify = &verify
	}
	if pool := s.sched.ShardPool(); pool != nil {
		g.Shards = pool.Status()
	}
	if set := s.sched.ReplicaSet(); set != nil {
		st := set.Status()
		g.Replicas = &st
	}
	if ps, ok := s.sched.PersistStatus(); ok {
		g.Persist = &ps
	}
	s.metrics.WritePrometheus(w, g)
}
