package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/crossbar"
	"repro/internal/fault"
)

// scrubTestConfig is a fast patrol setup for tests: millisecond ticks so
// idle slots come quickly.
func scrubTestConfig() ScrubConfig {
	return ScrubConfig{Enabled: true, Interval: time.Millisecond}
}

// driftEngineLayer drifts a sample of a layer's cells and returns how many
// moved.
func driftEngineLayer(t *testing.T, eng *accel.Engine, layer int) int {
	t.Helper()
	n := 0
	err := eng.WithArrays(layer, func(arrays []*crossbar.Array) {
		for _, a := range arrays {
			for r := 0; r < a.Rows; r += 2 {
				for c := 0; c < a.Cols; c += 3 {
					if a.DriftCell(r, c, 1) {
						n++
					}
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// engineDrifted sums DriftedCount across a layer's arrays.
func engineDrifted(t *testing.T, eng *accel.Engine, layer int) int {
	t.Helper()
	n := 0
	if err := eng.WithArrays(layer, func(arrays []*crossbar.Array) {
		for _, a := range arrays {
			n += a.DriftedCount()
		}
	}); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestPatrollerHealsDriftDuringIdleSlots: drift injected into an idle pool
// is repaired by the background patroller without any request traffic.
func TestPatrollerHealsDriftDuringIdleSlots(t *testing.T) {
	eng := quietEngine(t)
	s, err := NewScheduler(eng, Config{Workers: 1, Scrub: scrubTestConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	if n := driftEngineLayer(t, eng, 0); n == 0 {
		t.Fatal("drift injection moved nothing")
	}
	waitFor(t, func() bool {
		return engineDrifted(t, eng, 0) == 0
	})
	st, ok := s.ScrubStatus()
	if !ok {
		t.Fatal("scrub status unavailable with scrubbing enabled")
	}
	if st.Totals.CellsReprogrammed == 0 || st.Totals.RowsRepaired == 0 {
		t.Fatalf("repairs not accounted: %+v", st.Totals)
	}
	if st.Totals.RowsSpared != 0 {
		t.Fatalf("drift-only patrol spared rows: %+v", st.Totals)
	}
}

// TestPatrollerDisabledLeavesArraysAlone: with scrub off, injected drift
// persists and ScrubStatus reports unavailable — the determinism contract.
func TestPatrollerDisabledLeavesArraysAlone(t *testing.T) {
	eng := quietEngine(t)
	s, err := NewScheduler(eng, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	if _, ok := s.ScrubStatus(); ok {
		t.Fatal("scrub status available with scrubbing disabled")
	}
	n := driftEngineLayer(t, eng, 0)
	time.Sleep(20 * time.Millisecond)
	if got := engineDrifted(t, eng, 0); got != n {
		t.Fatalf("drift changed with scrub disabled: %d -> %d", n, got)
	}
}

// TestPatrolResetsBreakerAfterRepair: a breaker opened by errors the patrol
// subsequently repairs is closed by the scrub finding — the proactive loop
// pre-empts the reactive ladder.
func TestPatrolResetsBreakerAfterRepair(t *testing.T) {
	eng := quietEngine(t)
	cfg := Config{Workers: 1, Recovery: recoveryConfig(1), Scrub: scrubTestConfig()}
	s, err := NewScheduler(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	driftEngineLayer(t, eng, 0)
	// Trip layer 0's breaker with fake detected-heavy traffic, as a burst
	// of drift-corrupted reads would.
	s.Monitor().Observe(map[int]accel.Stats{0: {Clean: 10, Detected: 10}})
	if s.Monitor().State(0) != fault.BreakerOpen {
		t.Fatal("breaker did not open")
	}
	waitFor(t, func() bool {
		return s.Monitor().State(0) == fault.BreakerClosed && engineDrifted(t, eng, 0) == 0
	})
}

// TestChaosWithScrubberZeroServerErrors extends the chaos drill: the
// patroller runs alongside a live fault campaign and live HTTP traffic.
// Every admitted request is answered 200, and the scrubber's repairs and
// sparings are visible in the Prometheus scrape. Run under -race, this is
// also the locking proof for patrol vs. traffic vs. campaign injection.
func TestChaosWithScrubberZeroServerErrors(t *testing.T) {
	eng := quietEngineSpares(t, 4)
	cfg := Config{Workers: 2, QueueDepth: 32, Recovery: recoveryConfig(1), Scrub: scrubTestConfig()}
	srv, err := NewServer(eng, Model{Name: "tiny", InShape: []int{16}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	// A drift-heavy campaign the scrubber can actually heal, plus stuck-at
	// damage that forces sparing decisions.
	camp := fault.Campaign{Seed: 42, Events: []fault.Event{
		{Step: 1, Layer: 0, Kind: fault.Drift, Rate: 0.4, Drift: 1},
		{Step: 2, Layer: 2, Kind: fault.Drift, Rate: 0.4, Drift: -1},
		{Step: 3, Layer: 0, Kind: fault.StuckLRS, Rate: 0.05},
	}}
	runner, err := fault.NewRunner(camp, eng)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	codes := make(chan int, 1024)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for seed := uint64(g*1000 + 1); ; seed++ {
				select {
				case <-stop:
					return
				default:
				}
				body := fmt.Sprintf(`{"image": %s, "seed": %d}`, imageJSON(seed), seed)
				rec := postPredict(t, srv, body)
				codes <- rec.Code
				time.Sleep(time.Millisecond)
			}
		}(g)
	}
	for step := 1; step <= 3; step++ {
		if _, err := runner.Advance(step); err != nil {
			t.Fatal(err)
		}
		// Let traffic and idle patrol slots interleave with the damage.
		time.Sleep(30 * time.Millisecond)
	}
	// Give the patroller idle room to finish healing, then stop traffic.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(codes)
	served := 0
	for c := range codes {
		served++
		if c >= 500 {
			t.Fatalf("server error %d during chaos+scrub", c)
		}
		if c != http.StatusOK && c != http.StatusTooManyRequests {
			t.Fatalf("unexpected status %d", c)
		}
	}
	if served == 0 {
		t.Fatal("no traffic served")
	}

	waitFor(t, func() bool {
		st, _ := srv.Scheduler().ScrubStatus()
		return st.Totals.CellsReprogrammed > 0
	})
	if got := scrapeMetric(t, srv, `mnn_scrub_cells_reprogrammed_total`); got == 0 {
		t.Fatal("scrub repairs missing from metrics")
	}
	if got := scrapeMetric(t, srv, `mnn_scrub_passes_total`); got == 0 {
		t.Fatal("scrub passes missing from metrics")
	}
	if got := scrapeMetric(t, srv, `mnn_scrub_rows_total{action="patrolled"}`); got == 0 {
		t.Fatal("patrolled rows missing from metrics")
	}
	// Readiness reports the scrub-staleness fields while serving.
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var ready readyzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.ScrubStale {
		t.Fatalf("millisecond patrol reported stale: %+v", ready)
	}
}

// quietEngineSpares is quietEngine with spare rows for sparing decisions.
func quietEngineSpares(t testing.TB, spares int) *accel.Engine {
	t.Helper()
	eng := quietEngineWith(t, func(cfg *accel.Config) { cfg.SpareRows = spares })
	return eng
}
