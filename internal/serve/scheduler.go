package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/accel"
	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/noise"
	"repro/internal/replica"
	"repro/internal/shard"
)

// Admission and lifecycle errors. The HTTP layer maps ErrQueueFull to 429
// and ErrQueueTimeout/ErrClosed to 503.
var (
	ErrQueueFull    = errors.New("serve: admission queue full")
	ErrQueueTimeout = errors.New("serve: request timed out waiting for a worker")
	ErrClosed       = errors.New("serve: scheduler closed")
)

// Prediction is the outcome of one image inference, including the ECU
// activity it alone caused.
type Prediction struct {
	// Class is the argmax class under the noisy hardware.
	Class int
	// TopK are the highest-scoring classes in descending order.
	TopK []int
	// Seed is the noise-stream id the session was reseeded with; replaying
	// the same seed against the same engine reproduces this result exactly.
	Seed uint64
	// Stats are the ECU and row-error tallies of this request only.
	Stats accel.Stats
	// QueueWait is how long the request sat in the admission queue.
	QueueWait time.Duration
	// Infer is the worker-side evaluation time.
	Infer time.Duration
	// LadderRetries is how many recovery re-evaluations this request
	// consumed (rung 1 of the ladder).
	LadderRetries int
	// Remapped lists layers re-programmed onto spare arrays while
	// recovering this request (rung 2).
	Remapped []int
	// Degraded lists the layers this answer was served from the software
	// fixed-point fallback instead of crossbars — the accuracy-loss
	// warning of rung 3.
	Degraded []int
}

type jobResult struct {
	pred Prediction
	err  error
}

// job is one queued image. resp is buffered so a worker never blocks on a
// caller that gave up.
type job struct {
	ctx      context.Context
	input    *nn.Tensor
	seed     uint64
	topK     int
	enqueued time.Time
	resp     chan jobResult
}

// autoSeedBase offsets scheduler-assigned stream ids away from the low
// range clients typically use for explicit, reproducible seeds.
const autoSeedBase = uint64(1) << 32

// poolSession is what a worker needs from its evaluation stream — satisfied
// by accel.Session (single copy) and replica.Session (routed set), so the
// R=1 hot path keeps the direct session untouched.
type poolSession interface {
	Reseed(stream uint64)
	DrainStats() accel.Stats
	DrainLayerStatsInto(out map[int]accel.Stats)
	Forward(x *nn.Tensor) *nn.Tensor
}

// batchSession is the batched growth of poolSession: one multi-image pass
// over the mapped arrays with per-image noise lanes and per-image stat
// drains. Both session kinds implement it; the interface stays separate so
// a custom poolSession (tests) still works, served serially.
type batchSession interface {
	poolSession
	ForwardBatch(xs []*nn.Tensor, streams []uint64) ([]*nn.Tensor, []error)
	DrainBatchStats(i int) accel.Stats
	DrainBatchLayerStatsInto(i int, out map[int]accel.Stats)
	Close()
}

// workerState is one worker's owned session.
type workerState struct {
	sess poolSession
	// perLayer is the worker's reusable per-request layer-stats map; the
	// monitor's Observe only reads it, so one map per worker suffices.
	perLayer map[int]accel.Stats
	// batch-gather scratch, reused across coalesced batches.
	bxs      []*nn.Tensor
	bstreams []uint64
	bjobs    []*job
	// timer is the reusable CoalesceWait timer (allocating one per pass
	// would put the scheduler loop back on the allocator).
	timer *time.Timer
}

// Scheduler owns a fixed pool of accel.Session workers fed by a bounded
// admission queue. Each worker reseeds its session per request id, so
// results are independent of placement and arrival order. With recovery
// enabled, workers also feed per-layer ECU outcomes to a health monitor
// and climb the retry → remap → degrade ladder when a breaker trips.
type Scheduler struct {
	cfg      Config
	eng      *accel.Engine
	queue    chan *job
	wg       sync.WaitGroup
	mu       sync.RWMutex // guards closed vs. in-flight queue sends
	closed   bool
	autoSeed atomic.Uint64

	rec   *recoveryState
	escMu sync.Mutex // serializes ladder escalations across workers

	// set is the replica set fronting the engine (nil when Replicas.N <= 1;
	// the single-copy path is then exactly the pre-replica scheduler).
	set *replica.Set

	// pool is the shard pool fronting the engine (nil when Shards == 0).
	// With it set, layer MVMs route to per-shard replica sets and the
	// ladder escalates per fault domain; set stays nil.
	pool *shard.Pool

	// pat is the background patrol scrubber (nil when disabled).
	pat *patroller

	// ctl is the closed-loop protection controller (nil when disabled).
	ctl *controller

	// per is the crash-consistency snapshotter (nil when persistence is
	// disabled).
	per *persister

	// camp is the fault-campaign runner registered via SetCampaign, so
	// snapshots capture its cursor (nil when no campaign drives the pool).
	campMu sync.Mutex
	camp   *fault.Runner

	served   atomic.Uint64 // requests answered (success or error)
	canceled atomic.Uint64 // requests whose client vanished while queued
	inflight atomic.Int64  // dequeued but not yet answered
	ecc      accel.SharedStats
	bat      batchTelemetry
}

// NewScheduler starts the worker pool over a mapped engine.
func NewScheduler(eng *accel.Engine, cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rec, err := newRecoveryState(cfg.Recovery)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		cfg.Recovery = rec.cfg
	}
	s := &Scheduler{cfg: cfg, eng: eng, queue: make(chan *job, cfg.QueueDepth), rec: rec}
	switch {
	case cfg.Shards > 0:
		pool, err := shard.NewPool(eng, shard.Config{N: cfg.Shards, Replicas: cfg.Replicas})
		if err != nil {
			return nil, err
		}
		s.pool = pool
	case cfg.Replicas.N > 1:
		set, err := replica.NewSet(eng, cfg.Replicas)
		if err != nil {
			return nil, err
		}
		s.set = set
	}
	// Assemble every subsystem before starting any goroutine, so the
	// boot-time restore owns the whole pool and either applies a snapshot
	// completely or refuses it completely — traffic and background loops
	// never see a half-restored engine.
	if cfg.Scrub.Enabled {
		s.pat = newPatroller(s, cfg.Scrub)
	}
	if cfg.Controller.Enabled {
		s.ctl = newController(s, cfg.Controller)
	}
	if cfg.Persist.Dir != "" {
		s.per = newPersister(s, cfg.Persist)
		if err := s.per.bootRestore(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(uint64(i))
	}
	if s.pat != nil {
		s.pat.start()
	}
	if s.ctl != nil {
		s.ctl.start()
	}
	if s.per != nil {
		s.per.start()
	}
	return s, nil
}

// ApplyEnv retunes every programmed copy to an environment-adjusted device
// model — the scenario engine's actuator. With a replica set, all copies
// share the environment; without one, only the primary exists.
func (s *Scheduler) ApplyEnv(dev noise.DeviceParams) error {
	if s.pool != nil {
		return s.pool.Retune(dev)
	}
	if s.set != nil {
		return s.set.Retune(dev)
	}
	return s.eng.Retune(dev)
}

// Engine returns the mapped engine the pool evaluates against (the primary
// replica when replication is on).
func (s *Scheduler) Engine() *accel.Engine { return s.eng }

// ReplicaSet returns the replica set fronting the pool, nil when the pool
// serves a single copy.
func (s *Scheduler) ReplicaSet() *replica.Set { return s.set }

// ShardPool returns the shard pool fronting the engine, nil when the
// scheduler serves an unsharded topology.
func (s *Scheduler) ShardPool() *shard.Pool { return s.pool }

// Canceled returns how many admitted requests were dropped because their
// client disconnected while they sat in the queue.
func (s *Scheduler) Canceled() uint64 { return s.canceled.Load() }

// newSession builds one worker's evaluation stream: a shard-routed session
// when the pool is sharded, a routed replica session when replication is
// on, the engine's own session otherwise.
func (s *Scheduler) newSession(id uint64) poolSession {
	if s.pool != nil {
		return s.pool.NewSession(id)
	}
	if s.set != nil {
		return s.set.NewSession(id)
	}
	return s.eng.NewSession(id)
}

// Workers returns the resolved session-pool size.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// QueueLen returns the current admission-queue depth (metrics gauge).
func (s *Scheduler) QueueLen() int { return len(s.queue) }

// QueueDepth returns the admission-queue capacity.
func (s *Scheduler) QueueDepth() int { return s.cfg.QueueDepth }

// Served returns how many requests have been answered so far — the logical
// wear clock fault campaigns advance on.
func (s *Scheduler) Served() uint64 { return s.served.Load() }

// Predict runs one image through the pool: admit (ErrQueueFull on
// backpressure), wait for a worker, evaluate. seed selects the noise
// stream; 0 asks the scheduler to assign a fresh one. topK 0 uses the
// configured default.
func (s *Scheduler) Predict(ctx context.Context, input *nn.Tensor, seed uint64, topK int) (Prediction, error) {
	j, err := s.submit(ctx, input, seed, topK)
	if err != nil {
		return Prediction{}, err
	}
	select {
	case r := <-j.resp:
		return r.pred, r.err
	case <-ctx.Done():
		return Prediction{}, ctx.Err()
	}
}

// PredictBatch fans a batch across the pool and gathers results in input
// order. Entry i uses noise stream baseSeed+i (baseSeed 0 = assign). If any
// entry is refused admission the whole batch fails with that error, after
// the already-admitted entries finish.
func (s *Scheduler) PredictBatch(ctx context.Context, inputs []*nn.Tensor, baseSeed uint64, topK int) ([]Prediction, error) {
	jobs := make([]*job, 0, len(inputs))
	var admitErr error
	for i, in := range inputs {
		var seed uint64
		if baseSeed != 0 {
			seed = baseSeed + uint64(i)
		}
		j, err := s.submit(ctx, in, seed, topK)
		if err != nil {
			admitErr = err
			break
		}
		jobs = append(jobs, j)
	}
	out := make([]Prediction, 0, len(jobs))
	firstErr := admitErr
	for _, j := range jobs {
		select {
		case r := <-j.resp:
			if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
			out = append(out, r.pred)
		case <-ctx.Done():
			// Remaining responses land in buffered channels and are
			// garbage collected; the workers are not blocked.
			if firstErr == nil {
				firstErr = ctx.Err()
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// submit admits one job or reports backpressure without blocking.
func (s *Scheduler) submit(ctx context.Context, input *nn.Tensor, seed uint64, topK int) (*job, error) {
	if seed == 0 {
		seed = autoSeedBase + s.autoSeed.Add(1)
	}
	j := &job{ctx: ctx, input: input, seed: seed, topK: topK,
		enqueued: time.Now(), resp: make(chan jobResult, 1)}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	select {
	case s.queue <- j:
		return j, nil
	default:
		return nil, ErrQueueFull
	}
}

// worker is one evaluation stream: it owns a session and serves queued jobs
// until the queue is closed and drained. When the session supports batching
// it coalesces whatever is already queued (plus an optional CoalesceWait
// window) into one multi-image layer-MVM pass, up to MaxBatch images.
func (s *Scheduler) worker(id uint64) {
	defer s.wg.Done()
	w := &workerState{sess: s.newSession(id), perLayer: make(map[int]accel.Stats)}
	bs, _ := w.sess.(batchSession)
	if bs != nil {
		defer bs.Close()
	}
	maxB := s.cfg.MaxBatch
	if bs == nil || maxB < 1 {
		maxB = 1
	}
	batch := make([]*job, 0, maxB)
	live := make([]*job, 0, maxB)
	for j := range s.queue {
		batch = append(batch[:0], j)
		s.inflight.Add(1)
		if s.cfg.dequeueHook != nil {
			s.cfg.dequeueHook()
		}
		coalesceStart := time.Now()
		s.coalesce(w, &batch, maxB)
		s.bat.observe(len(batch), time.Since(coalesceStart))

		// Per-job admission filtering: a vanished client or an overaged job
		// is answered without spending crossbar reads, exactly as before.
		start := time.Now()
		live = live[:0]
		for _, jb := range batch {
			if jb.ctx != nil && jb.ctx.Err() != nil {
				// The client vanished while the job was queued: no session
				// slot is spent on it and it does not count as served — only
				// the cancellation tally moves.
				s.canceled.Add(1)
				jb.resp <- jobResult{err: jb.ctx.Err()}
				s.inflight.Add(-1)
				continue
			}
			if start.Sub(jb.enqueued) > s.cfg.QueueTimeout {
				s.answer(jb, jobResult{err: ErrQueueTimeout})
				continue
			}
			live = append(live, jb)
		}
		if len(live) > 1 && bs != nil {
			s.serveBatch(w, bs, live, start)
			continue
		}
		for _, jb := range live {
			s.serveOne(w, jb, start)
		}
	}
}

// coalesce greedily drains already-queued jobs into the batch, then — when
// CoalesceWait is set and the batch is not full — holds the batch open for
// late batchmates. The dequeue hook fires once per job, like the serial
// loop's.
func (s *Scheduler) coalesce(w *workerState, batch *[]*job, maxB int) {
	for len(*batch) < maxB {
		select {
		case jb, ok := <-s.queue:
			if !ok {
				return
			}
			*batch = append(*batch, jb)
			s.inflight.Add(1)
			if s.cfg.dequeueHook != nil {
				s.cfg.dequeueHook()
			}
		default:
			if s.cfg.CoalesceWait <= 0 {
				return
			}
			s.coalesceWait(w, batch, maxB)
			return
		}
	}
}

// coalesceWait is the blocking tail of coalesce: wait up to CoalesceWait
// for more jobs, leaving early when the batch fills. The worker's timer is
// reused across passes.
func (s *Scheduler) coalesceWait(w *workerState, batch *[]*job, maxB int) {
	if w.timer == nil {
		w.timer = time.NewTimer(s.cfg.CoalesceWait)
	} else {
		w.timer.Reset(s.cfg.CoalesceWait)
	}
	defer func() {
		if !w.timer.Stop() {
			select {
			case <-w.timer.C:
			default:
			}
		}
	}()
	for len(*batch) < maxB {
		select {
		case jb, ok := <-s.queue:
			if !ok {
				return
			}
			*batch = append(*batch, jb)
			s.inflight.Add(1)
			if s.cfg.dequeueHook != nil {
				s.cfg.dequeueHook()
			}
		case <-w.timer.C:
			return
		}
	}
}

// serveOne evaluates one job on the serial path and answers it.
func (s *Scheduler) serveOne(w *workerState, j *job, start time.Time) {
	pred, err := s.serveJob(w, j)
	if err == nil {
		pred.QueueWait = start.Sub(j.enqueued)
		pred.Infer = time.Since(start)
		s.ecc.Add(pred.Stats)
	}
	s.answer(j, jobResult{pred: pred, err: err})
}

// serveBatch evaluates a coalesced batch in one multi-image pass. Per-image
// guarantees survive coalescing: each image keeps its own noise stream and
// per-lane stats, a failed image falls back to the serial path (which owns
// the recovery ladder) without disturbing batchmates, and a post-batch
// breaker trip climbs the same retry → remap → degrade ladder a serial
// request would.
func (s *Scheduler) serveBatch(w *workerState, bs batchSession, jobs []*job, start time.Time) {
	if s.cfg.batchHook != nil {
		s.cfg.batchHook(jobs)
	}
	w.bxs, w.bstreams, w.bjobs = w.bxs[:0], w.bstreams[:0], w.bjobs[:0]
	for _, j := range jobs {
		// A client can vanish between the dequeue-time filter and here — a
		// coalesce wait, or batchmates' ladder work on this worker's previous
		// pass. Dropping the job now keeps the multi-image pass from burning
		// a lane on an answer nobody reads, and keeps its MVMs out of the
		// batch telemetry.
		if j.ctx != nil && j.ctx.Err() != nil {
			s.canceled.Add(1)
			j.resp <- jobResult{err: j.ctx.Err()}
			s.inflight.Add(-1)
			continue
		}
		w.bjobs = append(w.bjobs, j)
		w.bxs = append(w.bxs, j.input)
		w.bstreams = append(w.bstreams, j.seed)
	}
	jobs = w.bjobs
	switch len(jobs) {
	case 0:
		return
	case 1:
		// A lone survivor gets the serial path — same answer, no batch
		// machinery.
		s.serveOne(w, jobs[0], start)
		return
	}
	outs, errs := s.forwardBatch(bs, w.bxs, w.bstreams)
	for i, j := range jobs {
		failed := outs == nil || outs[i] == nil || (errs != nil && errs[i] != nil)
		if failed {
			// Discard the lane's partial stats, then let the serial path —
			// ladder included — re-evaluate this image alone. Batchmates'
			// outputs live in their own lanes and are untouched.
			bs.DrainBatchStats(i)
			s.serveOne(w, j, start)
			continue
		}
		k := j.topK
		if k <= 0 {
			k = s.cfg.TopK
		}
		topk := outs[i].TopK(k)
		bs.DrainBatchLayerStatsInto(i, w.perLayer)
		pred := Prediction{Class: topk[0], TopK: topk, Seed: j.seed, Stats: bs.DrainBatchStats(i)}
		var err error
		if s.rec != nil {
			if open := s.rec.mon.Observe(w.perLayer); len(open) > 0 {
				pred, err = s.recover(w, j, open)
			}
		}
		if err == nil {
			if sick := s.openReplicaLayers(); len(sick) > 0 {
				s.maintainReplicas(sick)
			}
			if pred.Stats.SoftMVMs > 0 {
				pred.Degraded = s.eng.DegradedLayers()
			}
			pred.QueueWait = start.Sub(j.enqueued)
			pred.Infer = time.Since(start)
			s.ecc.Add(pred.Stats)
			// BatchMVMs marks which path served the image — pool telemetry,
			// not part of the answer. Stripping it keeps the per-request
			// Stats a pure function of (engine, seed), identical whether the
			// image was coalesced or served alone.
			pred.Stats.BatchMVMs = 0
		}
		s.answer(j, jobResult{pred: pred, err: err})
	}
}

// forwardBatch shields the pool from a coordinator-side panic: when the
// batched pass itself blows up, every image is reported failed and retried
// serially by the caller.
func (s *Scheduler) forwardBatch(bs batchSession, xs []*nn.Tensor, streams []uint64) (outs []*nn.Tensor, errs []error) {
	defer func() {
		if r := recover(); r != nil {
			outs, errs = nil, nil
		}
	}()
	return bs.ForwardBatch(xs, streams)
}

// answer delivers one result and updates the drain accounting.
func (s *Scheduler) answer(j *job, r jobResult) {
	j.resp <- r
	s.served.Add(1)
	s.inflight.Add(-1)
}

// serveJob evaluates one request and, when recovery is enabled, feeds the
// health monitor and climbs the ladder if this request's ECU outcomes
// tripped a breaker.
func (s *Scheduler) serveJob(w *workerState, j *job) (Prediction, error) {
	pred, perLayer, err := s.evaluateSeed(w, j, j.seed)
	if err != nil || s.rec == nil {
		return pred, err
	}
	if open := s.rec.mon.Observe(perLayer); len(open) > 0 {
		pred, err = s.recover(w, j, open)
		if err != nil {
			return pred, err
		}
	}
	// The router keeps answers clean by steering around a sick replica,
	// which also keeps the damage below the request-level trip rate — so
	// degraded redundancy must be polled from the per-replica breakers, not
	// inferred from this request's stats.
	if sick := s.openReplicaLayers(); len(sick) > 0 {
		s.maintainReplicas(sick)
	}
	if pred.Stats.SoftMVMs > 0 {
		pred.Degraded = s.eng.DegradedLayers()
	}
	return pred, nil
}

// evaluateSeed runs one inference on the worker's session under an explicit
// noise stream, converting panics (malformed tensors reaching the MVM
// layer) into errors so one bad request cannot take the pool down. It
// returns the request's own stats, total and per layer.
func (s *Scheduler) evaluateSeed(w *workerState, j *job, seed uint64) (pred Prediction, perLayer map[int]accel.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: inference failed: %v", r)
		}
	}()
	sess := w.sess
	sess.Reseed(seed)
	sess.DrainStats()
	logits := sess.Forward(j.input)
	k := j.topK
	if k <= 0 {
		k = s.cfg.TopK
	}
	topk := logits.TopK(k)
	sess.DrainLayerStatsInto(w.perLayer)
	return Prediction{Class: topk[0], TopK: topk, Seed: seed, Stats: sess.DrainStats()}, w.perLayer, nil
}

// DrainSummary reports what a Close drained — and what it had to abandon
// when its deadline fired first.
type DrainSummary struct {
	// Served is the lifetime count of answered requests.
	Served uint64
	// Abandoned is how many admitted requests were still queued or in
	// flight when the drain deadline expired (0 on a clean drain).
	Abandoned int
	// Canceled is how many admitted requests were dropped unserved because
	// their client disconnected while they waited in the queue.
	Canceled uint64
	// ECC is the cumulative ECU activity of every successfully answered
	// request.
	ECC accel.Stats
}

// Close stops admission, drains the queue (every admitted request is still
// answered), and waits for the workers. When ctx expires mid-drain it
// returns ctx's error together with a partial summary counting the
// requests left behind, so operators still see what the pool did.
func (s *Scheduler) Close(ctx context.Context) (DrainSummary, error) {
	// Halt the controller first (it turns the patroller's knobs), then the
	// patroller: a patrol pass holds a layer write lock, and draining
	// workers must not compete with background repairs on the way out.
	if s.ctl != nil {
		s.ctl.halt()
	}
	if s.pat != nil {
		s.pat.halt()
	}
	if s.per != nil {
		s.per.haltLoop()
	}
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Drain finished: flush a final snapshot so a restart resumes from
		// the last answered request, not the last periodic checkpoint.
		// Failure is recorded in PersistStatus, not returned — the drain
		// itself succeeded.
		if s.per != nil {
			_ = s.per.snapshotOnce()
		}
		return DrainSummary{
			Served:   s.served.Load(),
			Canceled: s.canceled.Load(),
			ECC:      s.ecc.Snapshot(),
		}, nil
	case <-ctx.Done():
		// Deadline expired mid-drain: still flush — workers may be live, but
		// every subsystem snapshot is taken under its own lock, so the file
		// is crash-consistent just like a periodic checkpoint.
		if s.per != nil {
			_ = s.per.snapshotOnce()
		}
		abandoned := s.QueueLen() + int(s.inflight.Load())
		return DrainSummary{
			Served:    s.served.Load(),
			Abandoned: abandoned,
			Canceled:  s.canceled.Load(),
			ECC:       s.ecc.Snapshot(),
		}, ctx.Err()
	}
}
