package serve

import (
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/replica"
	"repro/internal/scrub"
	"repro/internal/shard"
)

// retrySeedStride separates recovery-retry noise streams from the request's
// own stream and from other attempts (client seeds and scheduler auto-seeds
// live far below bit 56).
const retrySeedStride = uint64(1) << 56

// RecoveryConfig wires the ECU-driven health monitor and the
// retry → remap → degrade ladder into the scheduler. The zero value
// disables recovery entirely, preserving the pure
// prediction = f(engine, seed) contract.
type RecoveryConfig struct {
	// Enabled turns the ladder on.
	Enabled bool
	// Monitor tunes the per-layer breaker (zero fields take fault
	// defaults).
	Monitor fault.MonitorConfig
	// RetryAttempts bounds rung 1: re-evaluations with a reseeded session
	// before concluding the fault is persistent. Default 2.
	RetryAttempts int
	// RetryBackoff is the base pause before the first retry; each further
	// attempt doubles it (capped at RetryBackoffMax) and adds uniform
	// jitter up to the doubled value, so a burst of tripped workers does
	// not hammer a struggling layer in lockstep. The jitter RNG is seeded
	// from (request seed, attempt), so sleep lengths are deterministic in
	// tests. Default 2ms; negative disables.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential growth of the retry pause.
	// Default 8x RetryBackoff.
	RetryBackoffMax time.Duration
	// MaxRemaps bounds rung 2: how many times a layer may be
	// re-programmed onto spare arrays over its lifetime before the ladder
	// stops trusting crossbars and degrades it to the software path.
	// Default 1; negative means never remap (degrade immediately).
	MaxRemaps int
}

func (c RecoveryConfig) withDefaults() RecoveryConfig {
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 2
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.RetryBackoffMax == 0 {
		c.RetryBackoffMax = 8 * c.RetryBackoff
	}
	if c.MaxRemaps == 0 {
		c.MaxRemaps = 1
	}
	return c
}

// Validate rejects nonsensical ladder settings.
func (c RecoveryConfig) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.RetryAttempts < 0 {
		return fmt.Errorf("serve: negative retry attempts %d", c.RetryAttempts)
	}
	return c.Monitor.Validate()
}

// RecoveryCounters are the lifetime ladder-transition tallies.
type RecoveryCounters struct {
	// Retries counts rung-1 re-evaluations.
	Retries uint64
	// Failovers counts spatial repairs: replicas detached, re-programmed,
	// verified, and rejoined while their siblings kept serving (replicated
	// pools only).
	Failovers uint64
	// Remaps counts rung-2 layer re-programmings.
	Remaps uint64
	// Degrades counts rung-3 transitions to the software path.
	Degrades uint64
}

// recoveryState is the scheduler's ladder bookkeeping.
type recoveryState struct {
	cfg RecoveryConfig
	mon *fault.Monitor

	retries   atomic.Uint64
	failovers atomic.Uint64
	remaps    atomic.Uint64
	degrades  atomic.Uint64
}

func newRecoveryState(cfg RecoveryConfig) (*recoveryState, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled {
		return nil, nil
	}
	cfg = cfg.withDefaults()
	mon, err := fault.NewMonitor(cfg.Monitor)
	if err != nil {
		return nil, err
	}
	return &recoveryState{cfg: cfg, mon: mon}, nil
}

// recover runs the ladder for one request whose traffic tripped the given
// layers. It returns a replacement prediction evaluated on recovered (or
// degraded) hardware; the original result is never returned once the
// breaker is open, because its answer was computed through a layer the
// monitor no longer trusts.
func (s *Scheduler) recover(w *workerState, j *job, open []int) (Prediction, error) {
	rec := s.rec
	var retries int

	// Rung 1 — retry: a giant-RTN burst or an unlucky noise draw is
	// transient; a reseeded re-evaluation that comes back clean on every
	// suspect layer closes the breaker with no hardware action.
	for attempt := 1; attempt <= rec.cfg.RetryAttempts; attempt++ {
		rec.retries.Add(1)
		retries = attempt
		s.backoff(attempt, j.seed)
		pred, perLayer, err := s.evaluateSeed(w, j, j.seed+uint64(attempt)*retrySeedStride)
		if err != nil {
			return Prediction{}, err
		}
		suspect := false
		for _, layer := range open {
			if st, ok := perLayer[layer]; !ok || st.DetectedRate() > rec.cfg.Monitor.TripRate {
				suspect = true
				break
			}
		}
		if !suspect {
			for _, layer := range open {
				rec.mon.Reset(layer)
			}
			// With replicas, a clean retry often means the router steered
			// around a damaged copy rather than the fault being transient;
			// repair any replica whose own breaker is open so redundancy is
			// restored, not just hidden.
			s.maintainReplicas(open)
			pred.LadderRetries = retries
			pred.Seed = j.seed + uint64(attempt)*retrySeedStride
			return pred, nil
		}
	}

	// Rungs 2 and 3 — the fault is persistent: re-program the layer onto
	// spares, or if its remap budget is spent, degrade it to the software
	// fixed-point path.
	var remapped []int
	for _, layer := range open {
		action, err := s.escalate(layer)
		if err != nil {
			return Prediction{}, err
		}
		if action == actionRemap {
			remapped = append(remapped, layer)
		}
	}

	// Final evaluation on the recovered substrate, back on the request's
	// own seed so the response stays replayable against the new hardware
	// state.
	pred, _, err := s.evaluateSeed(w, j, j.seed)
	if err != nil {
		return Prediction{}, err
	}
	pred.LadderRetries = retries
	pred.Remapped = remapped
	return pred, nil
}

type escalation int

const (
	actionNone escalation = iota
	actionFailover
	actionRemap
	actionDegrade
)

// escalate applies the hardware rungs to one layer. The scheduler-wide
// mutex plus a breaker re-check make the action exactly-once when several
// workers trip on the same layer concurrently. With a replica set the
// spatial rung runs first: repair the sick copies while their siblings keep
// serving; only when no replica can be repaired does the layer degrade —
// set-wide, because degradation is a property of the layer, not of one
// copy. Single-copy pools keep the original inline remap-then-degrade.
func (s *Scheduler) escalate(layer int) (escalation, error) {
	s.escMu.Lock()
	defer s.escMu.Unlock()
	if s.rec.mon.State(layer) != fault.BreakerOpen {
		return actionNone, nil // another worker already recovered it
	}
	defer s.rec.mon.Reset(layer)
	if s.pool != nil {
		return s.escalateShard(layer)
	}
	if s.set != nil {
		if s.repairSetLayer(s.set, layer, false) > 0 {
			return actionFailover, nil
		}
		if s.eng.Fallback(layer) {
			return actionNone, nil
		}
		if err := s.set.SetFallback(layer, true); err != nil {
			return actionNone, fmt.Errorf("serve: recovery degrade: %w", err)
		}
		s.rec.degrades.Add(1)
		return actionDegrade, nil
	}
	if s.rec.cfg.MaxRemaps >= 0 && s.eng.RemapCount(layer) < s.rec.cfg.MaxRemaps && !s.eng.Fallback(layer) {
		if err := s.eng.Remap(layer); err != nil {
			return actionNone, fmt.Errorf("serve: recovery remap: %w", err)
		}
		s.rec.remaps.Add(1)
		return actionRemap, nil
	}
	if err := s.eng.SetFallback(layer, true); err != nil {
		return actionNone, fmt.Errorf("serve: recovery degrade: %w", err)
	}
	s.rec.degrades.Add(1)
	return actionDegrade, nil
}

// escalateShard climbs the shard-level ladder for one tripped layer: first
// the spatial rung inside the owning fault domain (repair its sick replicas
// while siblings keep serving), then — when the damage is wider than one
// copy — drain the whole shard to the software path, re-program every layer
// it owns onto spares across all its replicas, verify, and rejoin. Sibling
// shards never notice. Only when a repair cycle cannot verify clean (or the
// shard's repair budget is spent) is the shard degraded — pinned to
// software until an operator or a later repair rejoins it. Caller holds
// escMu; the breaker has been re-checked.
func (s *Scheduler) escalateShard(layer int) (escalation, error) {
	sh := s.pool.Owner(layer)
	if sh == nil {
		return actionNone, fmt.Errorf("serve: breaker tripped on layer %d no shard owns", layer)
	}
	if s.repairSetLayer(sh.Set(), layer, false) > 0 {
		return actionFailover, nil
	}
	if sh.State() == shard.Serving && s.rec.cfg.MaxRemaps >= 0 && sh.RepairCount() < uint64(s.rec.cfg.MaxRemaps) {
		if err := sh.Drain(); err != nil {
			return actionNone, fmt.Errorf("serve: shard drain: %w", err)
		}
		eng := sh.Set().Engine(0)
		dirty, err := sh.Repair(eng.Config().VerifyIters, eng.Config().Seed)
		if err != nil {
			return actionNone, fmt.Errorf("serve: shard repair: %w", err)
		}
		if dirty == 0 {
			if err := sh.Rejoin(); err != nil {
				return actionNone, fmt.Errorf("serve: shard rejoin: %w", err)
			}
			s.rec.remaps.Add(1)
			return actionRemap, nil
		}
		// Verification failed on remapped hardware: fall through and pin
		// the fault domain to software.
	}
	if err := sh.Degrade(); err != nil {
		return actionNone, fmt.Errorf("serve: shard degrade: %w", err)
	}
	s.rec.degrades.Add(1)
	return actionDegrade, nil
}

// openReplicaLayers returns the layers with an open per-replica routing
// breaker, across whichever topology fronts the engine (nil single-copy).
func (s *Scheduler) openReplicaLayers() []int {
	if s.set != nil {
		return s.set.OpenLayers()
	}
	if s.pool != nil {
		var sick []int
		for i := 0; i < s.pool.Size(); i++ {
			sick = append(sick, s.pool.Shard(i).Set().OpenLayers()...)
		}
		return sick
	}
	return nil
}

// replicaSetFor returns the replica set serving a layer: the pool-wide set,
// or the owning shard's set under sharding (nil when unreplicated or
// unowned).
func (s *Scheduler) replicaSetFor(layer int) *replica.Set {
	if s.set != nil {
		return s.set
	}
	if s.pool != nil {
		if sh := s.pool.Owner(layer); sh != nil {
			return sh.Set()
		}
	}
	return nil
}

// maintainReplicas repairs, for each tripped layer, any replica whose own
// routing breaker is open — the background half of spatial recovery, run
// once the request itself has a clean answer. No-op without replication.
func (s *Scheduler) maintainReplicas(open []int) {
	if s.set == nil && s.pool == nil {
		return
	}
	s.escMu.Lock()
	defer s.escMu.Unlock()
	for _, layer := range open {
		if set := s.replicaSetFor(layer); set != nil {
			s.repairSetLayer(set, layer, true)
		}
	}
}

// repairSetLayer runs the detach → remap → verify → rejoin cycle on the
// replicas of one set whose routing breaker for the layer is open (or, when
// openOnly is false and none has tripped yet, on the attached replica with
// the worst detected-rate window). Siblings keep serving throughout — this
// is the no-downtime maintenance a single programmed copy cannot have, and
// it is why MaxRemaps does not apply here: that budget bounds inline remaps
// that stall traffic, while a detached copy can be re-programmed as often
// as the wear-out demands without anyone waiting. Returns the number of
// replicas repaired and verified clean. Caller holds escMu.
func (s *Scheduler) repairSetLayer(set *replica.Set, layer int, openOnly bool) int {
	candidates := set.OpenFor(layer)
	if len(candidates) == 0 && !openOnly {
		if r, ok := set.SickestFor(layer); ok {
			candidates = []int{r}
		}
	}
	repaired := 0
	for _, r := range candidates {
		eng := set.Engine(r)
		if err := set.Detach(r); err != nil {
			continue // last attached replica: someone must keep serving
		}
		ok := false
		if err := eng.Remap(layer); err == nil {
			sc := scrub.New(eng, scrub.Config{
				VerifyIters: eng.Config().VerifyIters,
				Seed:        eng.Config().Seed,
			})
			if rep, err := sc.PatrolLayer(layer); err == nil && rep.Clean() {
				ok = true
			}
		}
		// Rejoin either way: a copy that failed verification re-earns (or
		// re-loses) trust from fresh evidence, and its breaker steers
		// traffic away again if the damage persists.
		set.Attach(r)
		if ok {
			s.rec.failovers.Add(1)
			repaired++
		}
	}
	return repaired
}

// backoff sleeps the jittered exponential retry pause (tests with
// RetryBackoff < 0 skip sleeping entirely).
func (s *Scheduler) backoff(attempt int, seed uint64) {
	if d := backoffDelay(s.rec.cfg.RetryBackoff, s.rec.cfg.RetryBackoffMax, attempt, seed); d > 0 {
		time.Sleep(d)
	}
}

// backoffDelay computes the pause before retry `attempt` (1-based): the base
// doubles per attempt, capped at max, plus uniform jitter up to the capped
// value. The jitter RNG is derived from (seed, attempt), so delays are a
// pure function of the request — deterministic under test seeds and never
// consuming shared RNG state.
func backoffDelay(base, max time.Duration, attempt int, seed uint64) time.Duration {
	if base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift < 0 {
		shift = 0 // attempt 0 or negative: treat as the first attempt
	}
	if shift > 20 {
		shift = 20 // past this the cap always wins; avoid shifting into the sign bit
	}
	d := base << shift
	if d < base {
		d = base // a pathological base shifted past int64 wraps; the cap decides below
	}
	if max > 0 && d > max {
		d = max
	}
	rng := rand.New(rand.NewPCG(seed, uint64(attempt)))
	return d + time.Duration(rng.Int64N(int64(d)))
}

// RecoveryCounters returns the lifetime ladder tallies (zero when recovery
// is disabled).
func (s *Scheduler) RecoveryCounters() RecoveryCounters {
	if s.rec == nil {
		return RecoveryCounters{}
	}
	return RecoveryCounters{
		Retries:   s.rec.retries.Load(),
		Failovers: s.rec.failovers.Load(),
		Remaps:    s.rec.remaps.Load(),
		Degrades:  s.rec.degrades.Load(),
	}
}

// Health returns the monitor's per-layer snapshot (nil when recovery is
// disabled).
func (s *Scheduler) Health() []fault.LayerHealth {
	if s.rec == nil {
		return nil
	}
	return s.rec.mon.Snapshot()
}

// Monitor exposes the health monitor (nil when recovery is disabled); fault
// campaigns and tests use it to inspect or force breaker state.
func (s *Scheduler) Monitor() *fault.Monitor {
	if s.rec == nil {
		return nil
	}
	return s.rec.mon
}
