package serve

import (
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// retrySeedStride separates recovery-retry noise streams from the request's
// own stream and from other attempts (client seeds and scheduler auto-seeds
// live far below bit 56).
const retrySeedStride = uint64(1) << 56

// RecoveryConfig wires the ECU-driven health monitor and the
// retry → remap → degrade ladder into the scheduler. The zero value
// disables recovery entirely, preserving the pure
// prediction = f(engine, seed) contract.
type RecoveryConfig struct {
	// Enabled turns the ladder on.
	Enabled bool
	// Monitor tunes the per-layer breaker (zero fields take fault
	// defaults).
	Monitor fault.MonitorConfig
	// RetryAttempts bounds rung 1: re-evaluations with a reseeded session
	// before concluding the fault is persistent. Default 2.
	RetryAttempts int
	// RetryBackoff is the base pause before each retry, jittered
	// uniformly up to 2x, so a burst of tripped workers does not hammer a
	// struggling layer in lockstep. Default 2ms; negative disables.
	RetryBackoff time.Duration
	// MaxRemaps bounds rung 2: how many times a layer may be
	// re-programmed onto spare arrays over its lifetime before the ladder
	// stops trusting crossbars and degrades it to the software path.
	// Default 1; negative means never remap (degrade immediately).
	MaxRemaps int
}

func (c RecoveryConfig) withDefaults() RecoveryConfig {
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 2
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.MaxRemaps == 0 {
		c.MaxRemaps = 1
	}
	return c
}

// Validate rejects nonsensical ladder settings.
func (c RecoveryConfig) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.RetryAttempts < 0 {
		return fmt.Errorf("serve: negative retry attempts %d", c.RetryAttempts)
	}
	return c.Monitor.Validate()
}

// RecoveryCounters are the lifetime ladder-transition tallies.
type RecoveryCounters struct {
	// Retries counts rung-1 re-evaluations.
	Retries uint64
	// Remaps counts rung-2 layer re-programmings.
	Remaps uint64
	// Degrades counts rung-3 transitions to the software path.
	Degrades uint64
}

// recoveryState is the scheduler's ladder bookkeeping.
type recoveryState struct {
	cfg RecoveryConfig
	mon *fault.Monitor

	retries  atomic.Uint64
	remaps   atomic.Uint64
	degrades atomic.Uint64
}

func newRecoveryState(cfg RecoveryConfig) (*recoveryState, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled {
		return nil, nil
	}
	cfg = cfg.withDefaults()
	mon, err := fault.NewMonitor(cfg.Monitor)
	if err != nil {
		return nil, err
	}
	return &recoveryState{cfg: cfg, mon: mon}, nil
}

// recover runs the ladder for one request whose traffic tripped the given
// layers. It returns a replacement prediction evaluated on recovered (or
// degraded) hardware; the original result is never returned once the
// breaker is open, because its answer was computed through a layer the
// monitor no longer trusts.
func (s *Scheduler) recover(w *workerState, j *job, open []int) (Prediction, error) {
	rec := s.rec
	var retries int

	// Rung 1 — retry: a giant-RTN burst or an unlucky noise draw is
	// transient; a reseeded re-evaluation that comes back clean on every
	// suspect layer closes the breaker with no hardware action.
	for attempt := 1; attempt <= rec.cfg.RetryAttempts; attempt++ {
		rec.retries.Add(1)
		retries = attempt
		s.backoff(attempt, j.seed)
		pred, perLayer, err := s.evaluateSeed(w, j, j.seed+uint64(attempt)*retrySeedStride)
		if err != nil {
			return Prediction{}, err
		}
		suspect := false
		for _, layer := range open {
			if st, ok := perLayer[layer]; !ok || st.DetectedRate() > rec.cfg.Monitor.TripRate {
				suspect = true
				break
			}
		}
		if !suspect {
			for _, layer := range open {
				rec.mon.Reset(layer)
			}
			pred.LadderRetries = retries
			pred.Seed = j.seed + uint64(attempt)*retrySeedStride
			return pred, nil
		}
	}

	// Rungs 2 and 3 — the fault is persistent: re-program the layer onto
	// spares, or if its remap budget is spent, degrade it to the software
	// fixed-point path.
	var remapped []int
	for _, layer := range open {
		action, err := s.escalate(layer)
		if err != nil {
			return Prediction{}, err
		}
		if action == actionRemap {
			remapped = append(remapped, layer)
		}
	}

	// Final evaluation on the recovered substrate, back on the request's
	// own seed so the response stays replayable against the new hardware
	// state.
	pred, _, err := s.evaluateSeed(w, j, j.seed)
	if err != nil {
		return Prediction{}, err
	}
	pred.LadderRetries = retries
	pred.Remapped = remapped
	return pred, nil
}

type escalation int

const (
	actionNone escalation = iota
	actionRemap
	actionDegrade
)

// escalate applies rung 2 or 3 to one layer. The scheduler-wide mutex plus
// a breaker re-check make the action exactly-once when several workers trip
// on the same layer concurrently.
func (s *Scheduler) escalate(layer int) (escalation, error) {
	s.escMu.Lock()
	defer s.escMu.Unlock()
	if s.rec.mon.State(layer) != fault.BreakerOpen {
		return actionNone, nil // another worker already recovered it
	}
	defer s.rec.mon.Reset(layer)
	if s.rec.cfg.MaxRemaps >= 0 && s.eng.RemapCount(layer) < s.rec.cfg.MaxRemaps && !s.eng.Fallback(layer) {
		if err := s.eng.Remap(layer); err != nil {
			return actionNone, fmt.Errorf("serve: recovery remap: %w", err)
		}
		s.rec.remaps.Add(1)
		return actionRemap, nil
	}
	if err := s.eng.SetFallback(layer, true); err != nil {
		return actionNone, fmt.Errorf("serve: recovery degrade: %w", err)
	}
	s.rec.degrades.Add(1)
	return actionDegrade, nil
}

// backoff sleeps the jittered retry pause. The jitter RNG is derived from
// the request seed and attempt, so sleep lengths never consume shared RNG
// state (and tests with RetryBackoff < 0 skip sleeping entirely).
func (s *Scheduler) backoff(attempt int, seed uint64) {
	base := s.rec.cfg.RetryBackoff
	if base <= 0 {
		return
	}
	rng := rand.New(rand.NewPCG(seed, uint64(attempt)))
	time.Sleep(base + time.Duration(rng.Int64N(int64(base))))
}

// RecoveryCounters returns the lifetime ladder tallies (zero when recovery
// is disabled).
func (s *Scheduler) RecoveryCounters() RecoveryCounters {
	if s.rec == nil {
		return RecoveryCounters{}
	}
	return RecoveryCounters{
		Retries:  s.rec.retries.Load(),
		Remaps:   s.rec.remaps.Load(),
		Degrades: s.rec.degrades.Load(),
	}
}

// Health returns the monitor's per-layer snapshot (nil when recovery is
// disabled).
func (s *Scheduler) Health() []fault.LayerHealth {
	if s.rec == nil {
		return nil
	}
	return s.rec.mon.Snapshot()
}

// Monitor exposes the health monitor (nil when recovery is disabled); fault
// campaigns and tests use it to inspect or force breaker state.
func (s *Scheduler) Monitor() *fault.Monitor {
	if s.rec == nil {
		return nil
	}
	return s.rec.mon
}
