package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/persist"
	"repro/internal/predict"
)

// ControllerConfig wires the closed-loop protection controller: a decision
// loop that watches the health monitor's measured rates, replica breaker
// state, and scrub tallies, and adjusts the deployed protection — patrol
// cadence, vote threshold, proactive replica maintenance, pre-emptive
// degradation — inside the SLO instead of waiting for breakers to trip.
type ControllerConfig struct {
	// Enabled starts the controller. Requires Recovery.Enabled: the
	// monitor is the controller's sensor.
	Enabled bool
	// Manual builds the controller without its background loop; decisions
	// run only via Scheduler.ControllerTick. Deterministic sweeps and
	// drills use this to put control on the request-step clock.
	Manual bool
	// Interval is the decision tick (0 = 1s; ignored in Manual mode).
	Interval time.Duration
	// TightenRate is the worst per-layer detected-uncorrectable rate at
	// which the controller starts counting toward a tighten (0 = 0.01).
	// An open breaker anywhere also counts as pressure.
	TightenRate float64
	// RelaxRate is the rate below which it counts toward a relax
	// (0 = TightenRate/4). The band between the two is the deadband:
	// neither streak advances, both reset.
	RelaxRate float64
	// Hysteresis is how many consecutive ticks a signal must persist
	// before the protection level moves (0 = 3).
	Hysteresis int
	// Cooldown is how many ticks after a level change the controller
	// refuses further changes, so one excursion cannot flap the level
	// (0 = 2).
	Cooldown int
	// MaxLevel bounds protection tightening (0 = 3). Level L halves the
	// patrol interval L times and lowers the vote threshold by L.
	MaxLevel int
	// MinScrubInterval floors cadence tightening (0 = base interval / 8).
	MinScrubInterval time.Duration
	// PredictEvery runs the SLO planner recalibration every this many
	// ticks, pre-emptively degrading the worst-measured layer when the
	// recalibrated prediction breaches the SLO (0 = 8; negative disables;
	// ignored unless Plan.Calibration is configured).
	PredictEvery int
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.TightenRate == 0 {
		c.TightenRate = 0.01
	}
	if c.RelaxRate == 0 {
		c.RelaxRate = c.TightenRate / 4
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2
	}
	if c.MaxLevel <= 0 {
		c.MaxLevel = 3
	}
	if c.PredictEvery == 0 {
		c.PredictEvery = 8
	}
	return c
}

// Validate rejects nonsensical controller settings.
func (c ControllerConfig) Validate() error {
	if !c.Enabled {
		return nil
	}
	switch {
	case c.Interval < 0:
		return fmt.Errorf("serve: negative controller interval %v", c.Interval)
	case c.TightenRate < 0 || c.TightenRate > 1:
		return fmt.Errorf("serve: controller tighten rate %g out of [0,1]", c.TightenRate)
	case c.RelaxRate < 0 || c.RelaxRate > 1:
		return fmt.Errorf("serve: controller relax rate %g out of [0,1]", c.RelaxRate)
	case c.RelaxRate != 0 && c.TightenRate != 0 && c.RelaxRate > c.TightenRate:
		return fmt.Errorf("serve: controller relax rate %g above tighten rate %g", c.RelaxRate, c.TightenRate)
	case c.Hysteresis < 0 || c.Cooldown < 0 || c.MaxLevel < 0:
		return fmt.Errorf("serve: negative controller hysteresis/cooldown/level")
	case c.MinScrubInterval < 0:
		return fmt.Errorf("serve: negative controller scrub floor %v", c.MinScrubInterval)
	}
	return nil
}

// ctlObservation is one decision tick's sensor snapshot.
type ctlObservation struct {
	// rate is the worst per-layer detected-uncorrectable rate over the
	// primary monitor's windows. Worst, not aggregate: breakers trip per
	// layer and patrol repairs per layer, so a read-weighted average
	// across healthy layers would dilute exactly the signal the
	// actuators answer to.
	rate float64
	// openBreakers counts open primary-monitor breakers plus layers with
	// any open replica routing breaker.
	openBreakers int
}

// controllerCore is the pure hysteresis state machine: feed it one
// observation per tick, get back the level transition. Separated from the
// scheduler so flapping behavior is unit-testable without hardware.
type controllerCore struct {
	cfg           ControllerConfig
	level         int
	tightenStreak int
	relaxStreak   int
	cooldown      int
}

// step advances the state machine one tick. It returns the new level and
// whether this tick tightened or relaxed it. Pressure above TightenRate
// (or any open breaker) must persist Hysteresis consecutive ticks to raise
// the level; calm below RelaxRate with no open breakers must persist the
// same way to lower it; the deadband between resets both streaks. After any
// change the core refuses further changes for Cooldown ticks, so a signal
// oscillating across a threshold cannot flap the level.
func (c *controllerCore) step(obs ctlObservation) (level int, tightened, relaxed bool) {
	pressure := obs.rate >= c.cfg.TightenRate || obs.openBreakers > 0
	calm := obs.rate <= c.cfg.RelaxRate && obs.openBreakers == 0
	switch {
	case pressure:
		c.tightenStreak++
		c.relaxStreak = 0
	case calm:
		c.relaxStreak++
		c.tightenStreak = 0
	default:
		c.tightenStreak, c.relaxStreak = 0, 0
	}
	if c.cooldown > 0 {
		c.cooldown--
		return c.level, false, false
	}
	if c.tightenStreak >= c.cfg.Hysteresis && c.level < c.cfg.MaxLevel {
		c.level++
		c.cooldown = c.cfg.Cooldown
		c.tightenStreak = 0
		return c.level, true, false
	}
	if c.relaxStreak >= c.cfg.Hysteresis && c.level > 0 {
		c.level--
		c.cooldown = c.cfg.Cooldown
		c.relaxStreak = 0
		return c.level, false, true
	}
	return c.level, false, false
}

// ControllerStatus is a point-in-time controller snapshot for metrics and
// readiness reporting.
type ControllerStatus struct {
	// Level is the current protection level, 0 (configured baseline) to
	// MaxLevel (tightest).
	Level    int
	MaxLevel int
	// ScrubInterval is the live patrol cadence (0 when scrubbing is off).
	ScrubInterval time.Duration
	// VoteThreshold is the live replica vote trigger (-1 without a set).
	VoteThreshold int
	// Ticks counts decision-loop iterations.
	Ticks uint64
	// Decisions counts applied actions by name (tighten, relax, repair,
	// degrade, predict).
	Decisions map[string]uint64
}

// controller binds the core to the scheduler's actuators.
type controller struct {
	sched *Scheduler
	cfg   ControllerConfig
	// baseScrub and baseVote are the configured operating points level 0
	// returns to.
	baseScrub time.Duration
	baseVote  int

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	mu        sync.Mutex
	core      controllerCore
	ticks     uint64
	decisions map[string]uint64
}

func newController(sched *Scheduler, cfg ControllerConfig) *controller {
	cfg = cfg.withDefaults()
	c := &controller{
		sched:     sched,
		cfg:       cfg,
		core:      controllerCore{cfg: cfg},
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		decisions: make(map[string]uint64),
	}
	if sched.pat != nil {
		c.baseScrub = sched.pat.baseInterval
		if c.cfg.MinScrubInterval <= 0 {
			c.cfg.MinScrubInterval = c.baseScrub / 8
		}
	}
	if sched.set != nil {
		c.baseVote = sched.set.Config().VoteThreshold
	}
	if sched.pool != nil {
		c.baseVote = sched.pool.Config().Replicas.VoteThreshold
	}
	return c
}

// start launches the decision loop (or, in manual mode, marks it finished so
// halt does not wait for one). Split from the constructor so boot-time state
// restoration can reinstate the core's level before the first tick.
func (c *controller) start() {
	if c.cfg.Manual {
		close(c.done)
		return
	}
	go c.run()
}

func (c *controller) run() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.tick()
		}
	}
}

// halt stops the decision loop and waits for it to exit. Idempotent.
func (c *controller) halt() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// stateSnapshot captures the controller's durable core: the protection level
// and the hysteresis bookkeeping that decides the next transition.
func (c *controller) stateSnapshot() persist.ControllerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := persist.ControllerState{
		Level:         c.core.level,
		TightenStreak: c.core.tightenStreak,
		RelaxStreak:   c.core.relaxStreak,
		Cooldown:      c.core.cooldown,
		Ticks:         c.ticks,
	}
	if len(c.decisions) > 0 {
		st.Decisions = make(map[string]uint64, len(c.decisions))
		for k, v := range c.decisions {
			st.Decisions[k] = v
		}
	}
	return st
}

// checkState validates a controller snapshot against this configuration
// without touching any state.
func (c *controller) checkState(st persist.ControllerState) error {
	if st.Level < 0 || st.Level > c.cfg.MaxLevel {
		return fmt.Errorf("serve: snapshot protection level %d outside [0,%d]", st.Level, c.cfg.MaxLevel)
	}
	if st.TightenStreak < 0 || st.RelaxStreak < 0 || st.Cooldown < 0 {
		return fmt.Errorf("serve: snapshot controller streaks/cooldown negative")
	}
	return nil
}

// restoreState reinstates a persisted controller core and moves the
// actuators (patrol cadence, vote threshold) to the restored level. Must run
// before the decision loop starts.
func (c *controller) restoreState(st persist.ControllerState) error {
	if err := c.checkState(st); err != nil {
		return err
	}
	c.mu.Lock()
	c.core.level = st.Level
	c.core.tightenStreak = st.TightenStreak
	c.core.relaxStreak = st.RelaxStreak
	c.core.cooldown = st.Cooldown
	c.ticks = st.Ticks
	c.decisions = make(map[string]uint64, len(st.Decisions))
	for k, v := range st.Decisions {
		c.decisions[k] = v
	}
	c.mu.Unlock()
	c.applyLevel(st.Level)
	return nil
}

// observe snapshots the controller's sensors.
func (c *controller) observe() ctlObservation {
	var obs ctlObservation
	s := c.sched
	if s.rec != nil {
		for _, lr := range s.rec.mon.Rates() {
			if lr.Reads > 0 && lr.Detected > obs.rate {
				obs.rate = lr.Detected
			}
		}
		obs.openBreakers = s.rec.mon.OpenCount()
	}
	if s.set != nil {
		obs.openBreakers += len(s.set.OpenLayers())
	}
	return obs
}

// tick runs one decision cycle and returns the applied action names.
func (c *controller) tick() []string {
	obs := c.observe()

	c.mu.Lock()
	c.ticks++
	ticks := c.ticks
	level, tightened, relaxed := c.core.step(obs)
	c.mu.Unlock()

	var actions []string
	if tightened {
		actions = append(actions, "tighten")
	}
	if relaxed {
		actions = append(actions, "relax")
	}
	if tightened || relaxed {
		c.applyLevel(level)
	}
	// Proactive maintenance: once tightened, rotate sick replicas out for
	// repair off the request path instead of waiting for request traffic
	// to trip them.
	if level > 0 && obs.openBreakers > 0 {
		if c.sched.proactiveRepair() > 0 {
			actions = append(actions, "repair")
		}
	}
	if c.cfg.PredictEvery > 0 && ticks%uint64(c.cfg.PredictEvery) == 0 {
		if a := c.predictAndPreempt(); a != "" {
			actions = append(actions, a)
		}
	}

	if len(actions) > 0 {
		c.mu.Lock()
		for _, a := range actions {
			c.decisions[a]++
		}
		c.mu.Unlock()
	}
	return actions
}

// applyLevel moves the actuators to a protection level: patrol cadence
// halves per level down to the floor, and the vote threshold drops by one
// per level (voting sooner) to a floor of 1.
func (c *controller) applyLevel(level int) {
	if c.sched.pat != nil && c.baseScrub > 0 {
		d := c.baseScrub >> uint(level)
		if d < c.cfg.MinScrubInterval {
			d = c.cfg.MinScrubInterval
		}
		c.sched.pat.setInterval(d)
	}
	if c.sched.set != nil {
		c.sched.set.SetVoteThreshold(c.voteFor(level))
	}
	if pool := c.sched.pool; pool != nil {
		for i := 0; i < pool.Size(); i++ {
			pool.Shard(i).Set().SetVoteThreshold(c.voteFor(level))
		}
	}
}

// voteFor maps a protection level to a vote threshold. A configured
// threshold drops by one per level (floor 1: voting always needs evidence);
// with voting configured off, level 2+ switches it on at the tightest
// setting — sustained pressure justifies paying the 3-copy read cost.
func (c *controller) voteFor(level int) int {
	if c.baseVote > 0 {
		th := c.baseVote - level
		if th < 1 {
			th = 1
		}
		return th
	}
	if level >= 2 {
		return 1
	}
	return 0
}

// predictAndPreempt folds the monitor's measured rates into the analytic
// planner and, when the recalibrated prediction breaches the SLO,
// pre-emptively degrades the worst-measured layer before accuracy is lost
// to it. Needs the /plan calibration; a no-op otherwise.
func (c *controller) predictAndPreempt() string {
	s := c.sched
	if !s.cfg.Plan.Enabled || s.cfg.Plan.Calibration == nil || s.rec == nil {
		return ""
	}
	pcfg := predict.PlannerConfig{
		Base:        s.eng.Config(),
		SLO:         s.cfg.Plan.SLO,
		MaxReplicas: s.cfg.Plan.MaxReplicas,
	}
	rates := s.rec.mon.Rates()
	pcfg.Measured = make(map[int]predict.MeasuredRates, len(rates))
	for _, lr := range rates {
		pcfg.Measured[lr.Layer] = predict.MeasuredRates{Detected: lr.Detected, Reads: lr.Reads}
	}
	plan, err := predict.BuildPlan(s.eng.Network(), s.cfg.Plan.Calibration, pcfg)
	if err != nil || plan.Satisfied {
		return ""
	}
	// SLO breach predicted: take the worst-measured layer off crossbars.
	sort.Slice(rates, func(i, j int) bool { return rates[i].Detected > rates[j].Detected })
	for _, lr := range rates {
		if lr.Reads == 0 || lr.Detected == 0 || s.eng.Fallback(lr.Layer) {
			continue
		}
		var err error
		if set := s.replicaSetFor(lr.Layer); set != nil {
			err = set.SetFallback(lr.Layer, true)
		} else {
			err = s.eng.SetFallback(lr.Layer, true)
		}
		if err == nil {
			if s.rec != nil {
				s.rec.degrades.Add(1)
			}
			return "degrade"
		}
	}
	return ""
}

// proactiveRepair runs replica maintenance off the request path: repair
// every copy with an open routing breaker, and when none has tripped yet,
// rotate out the sickest copy on the worst-measured layer. Returns replicas
// repaired and verified clean.
func (s *Scheduler) proactiveRepair() int {
	if (s.set == nil && s.pool == nil) || s.rec == nil {
		return 0
	}
	s.escMu.Lock()
	defer s.escMu.Unlock()
	repaired := 0
	open := s.openReplicaLayers()
	for _, layer := range open {
		if set := s.replicaSetFor(layer); set != nil {
			repaired += s.repairSetLayer(set, layer, true)
		}
	}
	if repaired == 0 && len(open) == 0 {
		if layer, ok := s.worstMeasuredLayer(); ok {
			if set := s.replicaSetFor(layer); set != nil {
				repaired += s.repairSetLayer(set, layer, false)
			}
		}
	}
	return repaired
}

// worstMeasuredLayer returns the layer with the highest measured detected
// rate over a non-empty window, false when nothing has been measured.
func (s *Scheduler) worstMeasuredLayer() (int, bool) {
	if s.rec == nil {
		return 0, false
	}
	best, rate := 0, -1.0
	for _, lr := range s.rec.mon.Rates() {
		if lr.Reads > 0 && lr.Detected > rate {
			best, rate = lr.Layer, lr.Detected
		}
	}
	return best, rate > 0
}

// status snapshots the controller.
func (c *controller) status() ControllerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ControllerStatus{
		Level:         c.core.level,
		MaxLevel:      c.cfg.MaxLevel,
		ScrubInterval: c.sched.ScrubInterval(),
		VoteThreshold: -1,
		Ticks:         c.ticks,
		Decisions:     make(map[string]uint64, len(c.decisions)),
	}
	if c.sched.set != nil {
		st.VoteThreshold = c.sched.set.VoteThreshold()
	}
	if pool := c.sched.pool; pool != nil {
		// Shards share one controller level, so any shard's live threshold
		// is the pool's.
		st.VoteThreshold = pool.Shard(0).Set().VoteThreshold()
	}
	for k, v := range c.decisions {
		st.Decisions[k] = v
	}
	return st
}

// ControllerTick runs one synchronous decision cycle, returning the applied
// action names. Only manual-mode controllers allow it — a running
// background loop owns the decision cadence.
func (s *Scheduler) ControllerTick() ([]string, error) {
	if s.ctl == nil {
		return nil, fmt.Errorf("serve: controller is disabled")
	}
	if !s.ctl.cfg.Manual {
		return nil, fmt.Errorf("serve: controller runs in the background; ControllerTick needs ControllerConfig.Manual")
	}
	return s.ctl.tick(), nil
}

// ControllerStatus snapshots the protection controller; ok is false when it
// is disabled.
func (s *Scheduler) ControllerStatus() (ControllerStatus, bool) {
	if s.ctl == nil {
		return ControllerStatus{}, false
	}
	return s.ctl.status(), true
}
